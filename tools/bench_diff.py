#!/usr/bin/env python3
"""Compare two machine-readable bench results (BENCH_<name>.json).

Walks both documents structurally: numeric leaves compare within a relative
tolerance (|a - b| <= rtol * max(1, |a|, |b|)), strings and booleans compare
exactly, and any structural mismatch (missing key, extra key, type change,
array length change) is always a difference. Either argument may be a
directory, in which case every BENCH_*.json inside is paired by filename.

Exit status: 0 when everything matches (within tolerance), 1 under --check
when any difference was found, 2 on usage/IO errors. Without --check the
differences are printed but the exit status stays 0, so the tool doubles as
a human-readable "what moved" report between two runs.
"""

import argparse
import json
import math
import os
import sys


def leaf_diffs(path, a, b, rtol, out):
    if isinstance(a, bool) or isinstance(b, bool):
        # bool is an int subclass; compare exactly and before the number case.
        if type(a) is not type(b) or a != b:
            out.append((path, a, b, "value"))
        return
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        fa, fb = float(a), float(b)
        if math.isnan(fa) and math.isnan(fb):
            return
        if abs(fa - fb) > rtol * max(1.0, abs(fa), abs(fb)):
            out.append((path, a, b, "value"))
        return
    if type(a) is not type(b):
        out.append((path, type(a).__name__, type(b).__name__, "type"))
        return
    if isinstance(a, dict):
        for key in sorted(set(a) | set(b)):
            sub = f"{path}.{key}" if path else key
            if key not in a:
                out.append((sub, "<missing>", b[key], "structure"))
            elif key not in b:
                out.append((sub, a[key], "<missing>", "structure"))
            else:
                leaf_diffs(sub, a[key], b[key], rtol, out)
        return
    if isinstance(a, list):
        if len(a) != len(b):
            out.append((path, f"len {len(a)}", f"len {len(b)}", "structure"))
            return
        for i, (ia, ib) in enumerate(zip(a, b)):
            leaf_diffs(f"{path}[{i}]", ia, ib, rtol, out)
        return
    if a != b:
        out.append((path, a, b, "value"))


def diff_files(path_a, path_b, rtol):
    with open(path_a) as f:
        a = json.load(f)
    with open(path_b) as f:
        b = json.load(f)
    out = []
    leaf_diffs("", a, b, rtol, out)
    return out


def pair_paths(a, b):
    """Yield (baseline, candidate, label) pairs from two files or dirs."""
    if os.path.isdir(a) and os.path.isdir(b):
        names = sorted(
            n for n in os.listdir(a)
            if n.startswith("BENCH_") and n.endswith(".json"))
        if not names:
            raise FileNotFoundError(f"no BENCH_*.json under {a}")
        for name in names:
            yield os.path.join(a, name), os.path.join(b, name), name
    else:
        yield a, b, os.path.basename(b)


def main():
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json results (files or directories).")
    parser.add_argument("baseline", help="baseline file or directory")
    parser.add_argument("candidate", help="candidate file or directory")
    parser.add_argument("--rtol", type=float, default=1e-6,
                        help="relative tolerance for numeric leaves "
                             "(default 1e-6)")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 if any difference is found")
    args = parser.parse_args()

    total = 0
    try:
        for path_a, path_b, label in pair_paths(args.baseline,
                                                args.candidate):
            diffs = diff_files(path_a, path_b, args.rtol)
            if diffs:
                total += len(diffs)
                print(f"{label}: {len(diffs)} difference(s)")
                for path, va, vb, kind in diffs:
                    print(f"  [{kind}] {path}: {va} -> {vb}")
            else:
                print(f"{label}: match (rtol {args.rtol:g})")
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_diff: {err}", file=sys.stderr)
        return 2
    if args.check and total > 0:
        print(f"bench_diff: {total} difference(s) exceed tolerance",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
