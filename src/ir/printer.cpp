#include "ir/printer.hpp"

#include <sstream>

namespace tdo::ir {

namespace {

void print_expr(std::ostringstream& os, const ExprPtr& expr, int parent_prec);

[[nodiscard]] int precedence(BinOpKind op) {
  switch (op) {
    case BinOpKind::kAdd:
    case BinOpKind::kSub:
      return 1;
    case BinOpKind::kMul:
    case BinOpKind::kDiv:
      return 2;
  }
  return 0;
}

void print_access(std::ostringstream& os, const std::string& array,
                  const std::vector<AffineExpr>& subscripts) {
  os << array;
  for (const AffineExpr& sub : subscripts) os << '[' << sub.to_string() << ']';
}

void print_expr(std::ostringstream& os, const ExprPtr& expr, int parent_prec) {
  if (!expr) {
    os << "<null>";
    return;
  }
  if (const auto* load = std::get_if<LoadExpr>(&expr->node)) {
    print_access(os, load->array, load->subscripts);
  } else if (const auto* c = std::get_if<ConstExpr>(&expr->node)) {
    os << c->value;
  } else if (const auto* p = std::get_if<ParamExpr>(&expr->node)) {
    os << p->name;
  } else if (const auto* na = std::get_if<NonAffineExpr>(&expr->node)) {
    os << "<non-affine:" << na->reason << ">";
  } else if (const auto* bin = std::get_if<BinExpr>(&expr->node)) {
    const int prec = precedence(bin->op);
    const bool parens = prec < parent_prec;
    if (parens) os << '(';
    print_expr(os, bin->lhs, prec);
    os << ' ' << to_string(bin->op) << ' ';
    print_expr(os, bin->rhs, prec + 1);
    if (parens) os << ')';
  }
}

void print_body(std::ostringstream& os, const std::vector<Node>& body,
                int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  for (const Node& node : body) {
    if (node.is_loop()) {
      const Loop& loop = node.loop();
      os << pad << "for (int " << loop.iv << " = " << loop.lower.to_string()
         << "; " << loop.iv << " < " << loop.upper.to_string() << "; "
         << loop.iv;
      if (loop.step == 1) {
        os << "++";
      } else {
        os << " += " << loop.step;
      }
      os << ")";
      if (loop.body.size() == 1 && loop.body.front().is_loop()) {
        os << "\n";
        print_body(os, loop.body, indent + 1);
      } else {
        os << " {\n";
        print_body(os, loop.body, indent + 1);
        os << pad << "}\n";
      }
    } else {
      os << pad << to_source(node.stmt()) << "\n";
    }
  }
}

}  // namespace

std::string to_source(const ExprPtr& expr) {
  std::ostringstream os;
  print_expr(os, expr, 0);
  return os.str();
}

std::string to_source(const Stmt& stmt) {
  std::ostringstream os;
  print_access(os, stmt.lhs.array, stmt.lhs.subscripts);
  os << (stmt.accumulate ? " += " : " = ");
  print_expr(os, stmt.rhs, 0);
  os << ";  // " << stmt.name;
  return os.str();
}

std::string to_source(const std::vector<Node>& body, int indent) {
  std::ostringstream os;
  print_body(os, body, indent);
  return os.str();
}

std::string to_source(const Function& fn) {
  std::ostringstream os;
  os << "// kernel " << fn.name << "\n";
  for (const ScalarDecl& s : fn.scalars) {
    os << "const float " << s.name << " = " << s.value << ";\n";
  }
  for (const ArrayDecl& a : fn.arrays) {
    os << "float " << a.name;
    for (const auto d : a.dims) os << '[' << d << ']';
    os << ";\n";
  }
  os << "void " << fn.name << "() {\n";
  print_body(os, fn.body, 1);
  os << "}\n";
  return os.str();
}

}  // namespace tdo::ir
