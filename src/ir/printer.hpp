// Pretty-printer: renders IR back to C-like source text.
//
// Used by the examples and tests to show before/after code the way the
// paper's Listings 1-3 do.
#pragma once

#include <string>

#include "ir/program.hpp"

namespace tdo::ir {

[[nodiscard]] std::string to_source(const Function& fn);
[[nodiscard]] std::string to_source(const std::vector<Node>& body,
                                    int indent = 0);
[[nodiscard]] std::string to_source(const Stmt& stmt);
[[nodiscard]] std::string to_source(const ExprPtr& expr);

}  // namespace tdo::ir
