#include "ir/program.hpp"

#include <functional>
#include <set>
#include <sstream>

namespace tdo::ir {

const char* to_string(BinOpKind op) {
  switch (op) {
    case BinOpKind::kAdd: return "+";
    case BinOpKind::kSub: return "-";
    case BinOpKind::kMul: return "*";
    case BinOpKind::kDiv: return "/";
  }
  return "?";
}

ExprPtr make_load(std::string array, std::vector<AffineExpr> subscripts) {
  return std::make_shared<const Expr>(
      Expr{LoadExpr{std::move(array), std::move(subscripts)}});
}

ExprPtr make_const(double value) {
  return std::make_shared<const Expr>(Expr{ConstExpr{value}});
}

ExprPtr make_param(std::string name) {
  return std::make_shared<const Expr>(Expr{ParamExpr{std::move(name)}});
}

ExprPtr make_binop(BinOpKind op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<const Expr>(
      Expr{BinExpr{op, std::move(lhs), std::move(rhs)}});
}

ExprPtr make_non_affine(std::string reason) {
  return std::make_shared<const Expr>(Expr{NonAffineExpr{std::move(reason)}});
}

const ArrayDecl* Function::find_array(const std::string& array_name) const {
  for (const auto& a : arrays) {
    if (a.name == array_name) return &a;
  }
  return nullptr;
}

const ScalarDecl* Function::find_scalar(const std::string& scalar_name) const {
  for (const auto& s : scalars) {
    if (s.name == scalar_name) return &s;
  }
  return nullptr;
}

double Function::scalar_value(const std::string& scalar_name,
                              double fallback) const {
  const ScalarDecl* s = find_scalar(scalar_name);
  return s != nullptr ? s->value : fallback;
}

namespace {

void renumber(std::vector<Node>& body, int& counter) {
  for (Node& node : body) {
    if (node.is_loop()) {
      renumber(node.loop().body, counter);
    } else {
      node.stmt().name = "S" + std::to_string(counter++);
    }
  }
}

}  // namespace

void Function::renumber_statements() {
  int counter = 0;
  renumber(body, counter);
}

void for_each_stmt(const std::vector<Node>& body,
                   const std::function<void(const Stmt&)>& fn) {
  for (const Node& node : body) {
    if (node.is_loop()) {
      for_each_stmt(node.loop().body, fn);
    } else {
      fn(node.stmt());
    }
  }
}

void collect_loads(const ExprPtr& expr, std::vector<const LoadExpr*>& out) {
  if (!expr) return;
  if (const auto* load = std::get_if<LoadExpr>(&expr->node)) {
    out.push_back(load);
    return;
  }
  if (const auto* bin = std::get_if<BinExpr>(&expr->node)) {
    collect_loads(bin->lhs, out);
    collect_loads(bin->rhs, out);
  }
}

bool has_non_affine(const ExprPtr& expr) {
  if (!expr) return false;
  if (std::holds_alternative<NonAffineExpr>(expr->node)) return true;
  if (const auto* bin = std::get_if<BinExpr>(&expr->node)) {
    return has_non_affine(bin->lhs) || has_non_affine(bin->rhs);
  }
  return false;
}

namespace {

support::Status validate_expr(const Function& fn, const ExprPtr& expr,
                              const std::set<std::string>& ivs);

support::Status validate_access(const Function& fn, const std::string& array,
                                const std::vector<AffineExpr>& subscripts,
                                const std::set<std::string>& ivs) {
  const ArrayDecl* decl = fn.find_array(array);
  if (decl == nullptr) {
    return support::not_found("undeclared array: " + array);
  }
  if (decl->dims.size() != subscripts.size()) {
    return support::invalid_argument("subscript arity mismatch on " + array);
  }
  for (const AffineExpr& sub : subscripts) {
    for (const auto& [var, _] : sub.coeffs()) {
      if (!ivs.contains(var)) {
        return support::invalid_argument("subscript of " + array +
                                         " uses unbound variable " + var);
      }
    }
  }
  return support::Status::ok();
}

support::Status validate_expr(const Function& fn, const ExprPtr& expr,
                              const std::set<std::string>& ivs) {
  if (!expr) return support::invalid_argument("null expression");
  if (const auto* load = std::get_if<LoadExpr>(&expr->node)) {
    return validate_access(fn, load->array, load->subscripts, ivs);
  }
  if (const auto* param = std::get_if<ParamExpr>(&expr->node)) {
    if (fn.find_scalar(param->name) == nullptr) {
      return support::not_found("undeclared scalar: " + param->name);
    }
    return support::Status::ok();
  }
  if (const auto* bin = std::get_if<BinExpr>(&expr->node)) {
    TDO_RETURN_IF_ERROR(validate_expr(fn, bin->lhs, ivs));
    return validate_expr(fn, bin->rhs, ivs);
  }
  return support::Status::ok();  // ConstExpr, NonAffineExpr
}

support::Status validate_body(const Function& fn, const std::vector<Node>& body,
                              std::set<std::string>& ivs) {
  for (const Node& node : body) {
    if (node.is_loop()) {
      const Loop& loop = node.loop();
      if (loop.step <= 0) {
        return support::invalid_argument("non-positive loop step on " + loop.iv);
      }
      if (ivs.contains(loop.iv)) {
        return support::invalid_argument("shadowed induction variable " + loop.iv);
      }
      ivs.insert(loop.iv);
      TDO_RETURN_IF_ERROR(validate_body(fn, loop.body, ivs));
      ivs.erase(loop.iv);
    } else {
      const Stmt& stmt = node.stmt();
      TDO_RETURN_IF_ERROR(
          validate_access(fn, stmt.lhs.array, stmt.lhs.subscripts, ivs));
      TDO_RETURN_IF_ERROR(validate_expr(fn, stmt.rhs, ivs));
    }
  }
  return support::Status::ok();
}

}  // namespace

support::Status Function::validate() const {
  std::set<std::string> names;
  for (const ArrayDecl& a : arrays) {
    if (!names.insert(a.name).second) {
      return support::invalid_argument("duplicate array " + a.name);
    }
    if (a.dims.empty()) {
      return support::invalid_argument("zero-dimensional array " + a.name);
    }
    for (const auto d : a.dims) {
      if (d <= 0) return support::invalid_argument("non-positive dim in " + a.name);
    }
  }
  for (const ScalarDecl& s : scalars) {
    if (!names.insert(s.name).second) {
      return support::invalid_argument("duplicate scalar " + s.name);
    }
  }
  std::set<std::string> ivs;
  return validate_body(*this, body, ivs);
}

}  // namespace tdo::ir
