#include "ir/affine.hpp"

#include <algorithm>
#include <sstream>

namespace tdo::ir {

std::int64_t AffineExpr::evaluate(
    const std::map<std::string, std::int64_t>& env) const {
  std::int64_t value = constant_;
  for (const auto& [name, coeff] : coeffs_) {
    const auto it = env.find(name);
    if (it != env.end()) value += coeff * it->second;
  }
  return value;
}

AffineExpr AffineExpr::substitute(const std::string& name,
                                  const AffineExpr& replacement) const {
  const std::int64_t k = coeff(name);
  if (k == 0) return *this;
  AffineExpr out = *this;
  out.coeffs_.erase(name);
  out += replacement * k;
  return out;
}

AffineExpr& AffineExpr::operator+=(const AffineExpr& other) {
  constant_ += other.constant_;
  for (const auto& [name, coeff] : other.coeffs_) {
    const std::int64_t merged = coeffs_[name] + coeff;
    if (merged == 0) {
      coeffs_.erase(name);
    } else {
      coeffs_[name] = merged;
    }
  }
  return *this;
}

AffineExpr& AffineExpr::operator-=(const AffineExpr& other) {
  *this += other * -1;
  return *this;
}

AffineExpr& AffineExpr::operator*=(std::int64_t k) {
  if (k == 0) {
    coeffs_.clear();
    constant_ = 0;
    return *this;
  }
  constant_ *= k;
  for (auto& [_, coeff] : coeffs_) coeff *= k;
  return *this;
}

std::string AffineExpr::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [name, coeff] : coeffs_) {
    if (!first) os << (coeff >= 0 ? " + " : " - ");
    const std::int64_t mag = first ? coeff : std::abs(coeff);
    if (mag == 1) {
      os << name;
    } else if (mag == -1) {
      os << "-" << name;
    } else {
      os << mag << "*" << name;
    }
    first = false;
  }
  if (constant_ != 0 || first) {
    if (!first) os << (constant_ >= 0 ? " + " : " - ");
    os << (first ? constant_ : std::abs(constant_));
  }
  return os.str();
}

std::int64_t Bound::evaluate(
    const std::map<std::string, std::int64_t>& env) const {
  const std::int64_t a = expr.evaluate(env);
  if (!min_with) return a;
  return std::min(a, min_with->evaluate(env));
}

std::string Bound::to_string() const {
  if (!min_with) return expr.to_string();
  return "min(" + expr.to_string() + ", " + min_with->to_string() + ")";
}

}  // namespace tdo::ir
