// Loop-nest intermediate representation.
//
// The role LLVM-IR + Polly's SCoP abstraction play in the paper is filled by
// this IR: functions contain (possibly imperfect) loop nests over affine
// bounds whose statements read/write arrays through affine subscripts.
// The front-end lowers restricted C into it; the core passes analyze and
// rewrite it; the exec interpreter runs it against the simulated host.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "ir/affine.hpp"
#include "support/status.hpp"

namespace tdo::ir {

enum class BinOpKind { kAdd, kSub, kMul, kDiv };

[[nodiscard]] const char* to_string(BinOpKind op);

struct Expr;
/// Expression trees are immutable and shared (SCEV-style): rewrites build
/// new trees instead of mutating, so subtrees can be reused freely.
using ExprPtr = std::shared_ptr<const Expr>;

/// Array read with affine subscripts, e.g. A[i][k].
struct LoadExpr {
  std::string array;
  std::vector<AffineExpr> subscripts;
};

/// Floating-point literal.
struct ConstExpr {
  double value = 0.0;
};

/// Scalar kernel parameter (alpha, beta, ...) with its bound value.
struct ParamExpr {
  std::string name;
};

/// Binary arithmetic.
struct BinExpr {
  BinOpKind op = BinOpKind::kAdd;
  ExprPtr lhs;
  ExprPtr rhs;
};

/// Non-affine subscript marker: produced by the front-end when a subscript
/// is not affine (e.g. A[i*i]); poisons SCoP detection like Polly's
// "non-affine access" rejection.
struct NonAffineExpr {
  std::string reason;
};

struct Expr {
  std::variant<LoadExpr, ConstExpr, ParamExpr, BinExpr, NonAffineExpr> node;
};

[[nodiscard]] ExprPtr make_load(std::string array,
                                std::vector<AffineExpr> subscripts);
[[nodiscard]] ExprPtr make_const(double value);
[[nodiscard]] ExprPtr make_param(std::string name);
[[nodiscard]] ExprPtr make_binop(BinOpKind op, ExprPtr lhs, ExprPtr rhs);
[[nodiscard]] ExprPtr make_non_affine(std::string reason);

/// Array element written by a statement.
struct AccessRef {
  std::string array;
  std::vector<AffineExpr> subscripts;
};

/// One assignment statement:  lhs = rhs   or   lhs += rhs.
struct Stmt {
  std::string name;  // S0, S1, ... unique within the function
  AccessRef lhs;
  bool accumulate = false;  // true for +=
  ExprPtr rhs;
};

struct Loop;

/// A body element: nested loop or statement.
struct Node;

struct Loop {
  std::string iv;
  AffineExpr lower;  // inclusive
  Bound upper;       // exclusive
  std::int64_t step = 1;
  std::vector<Node> body;
};

struct Node {
  std::variant<Loop, Stmt> value;

  [[nodiscard]] bool is_loop() const { return std::holds_alternative<Loop>(value); }
  [[nodiscard]] bool is_stmt() const { return std::holds_alternative<Stmt>(value); }
  [[nodiscard]] const Loop& loop() const { return std::get<Loop>(value); }
  [[nodiscard]] Loop& loop() { return std::get<Loop>(value); }
  [[nodiscard]] const Stmt& stmt() const { return std::get<Stmt>(value); }
  [[nodiscard]] Stmt& stmt() { return std::get<Stmt>(value); }
};

/// Declared array: name + constant dimensions (elements are float).
struct ArrayDecl {
  std::string name;
  std::vector<std::int64_t> dims;

  [[nodiscard]] std::int64_t element_count() const {
    std::int64_t n = 1;
    for (const auto d : dims) n *= d;
    return n;
  }
  [[nodiscard]] std::int64_t bytes() const { return element_count() * 4; }
};

/// Scalar parameter with its compile-time value (PolyBench alpha/beta).
struct ScalarDecl {
  std::string name;
  double value = 0.0;
};

/// A compilable function: declarations + a loop-nest body.
struct Function {
  std::string name;
  std::vector<ArrayDecl> arrays;
  std::vector<ScalarDecl> scalars;
  std::vector<Node> body;

  [[nodiscard]] const ArrayDecl* find_array(const std::string& array_name) const;
  [[nodiscard]] const ScalarDecl* find_scalar(const std::string& scalar_name) const;
  [[nodiscard]] double scalar_value(const std::string& scalar_name,
                                    double fallback = 0.0) const;

  /// Assigns fresh statement names S0.. in pre-order (used after rewrites).
  void renumber_statements();

  /// Structural sanity checks: declared arrays, subscript arity, iv scoping.
  [[nodiscard]] support::Status validate() const;
};

/// Visits every statement in pre-order.
void for_each_stmt(const std::vector<Node>& body,
                   const std::function<void(const Stmt&)>& fn);

/// Collects all loads in an expression tree (pre-order).
void collect_loads(const ExprPtr& expr, std::vector<const LoadExpr*>& out);

/// True when expression contains a NonAffineExpr node.
[[nodiscard]] bool has_non_affine(const ExprPtr& expr);

}  // namespace tdo::ir
