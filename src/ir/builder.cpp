#include "ir/builder.hpp"

namespace tdo::ir {

Node make_loop(std::string iv_name, std::int64_t extent, std::vector<Node> body) {
  return make_loop(std::move(iv_name), cst(0), Bound::of(cst(extent)), 1,
                   std::move(body));
}

Node make_loop(std::string iv_name, AffineExpr lower, Bound upper,
               std::int64_t step, std::vector<Node> body) {
  Loop loop;
  loop.iv = std::move(iv_name);
  loop.lower = std::move(lower);
  loop.upper = std::move(upper);
  loop.step = step;
  loop.body = std::move(body);
  return Node{std::move(loop)};
}

Node make_assign(AccessRef lhs, ExprPtr rhs) {
  Stmt stmt;
  stmt.lhs = std::move(lhs);
  stmt.accumulate = false;
  stmt.rhs = std::move(rhs);
  return Node{std::move(stmt)};
}

Node make_accumulate(AccessRef lhs, ExprPtr rhs) {
  Stmt stmt;
  stmt.lhs = std::move(lhs);
  stmt.accumulate = true;
  stmt.rhs = std::move(rhs);
  return Node{std::move(stmt)};
}

AccessRef ref(std::string array, std::vector<AffineExpr> subs) {
  return AccessRef{std::move(array), std::move(subs)};
}

ExprPtr mul(ExprPtr a, ExprPtr b) {
  return make_binop(BinOpKind::kMul, std::move(a), std::move(b));
}

ExprPtr add(ExprPtr a, ExprPtr b) {
  return make_binop(BinOpKind::kAdd, std::move(a), std::move(b));
}

ExprPtr sub(ExprPtr a, ExprPtr b) {
  return make_binop(BinOpKind::kSub, std::move(a), std::move(b));
}

}  // namespace tdo::ir
