// Affine expressions over loop induction variables.
//
// This is the quasi-affine fragment Polly's SCoP model is built on: every
// loop bound and every array subscript in a detectable kernel must be of the
// form  c0 + c1*i1 + ... + cn*in  with integer constants and enclosing-loop
// induction variables. Anything else makes the enclosing region non-affine
// and thus invisible to the detection passes (exactly like Polly).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace tdo::ir {

/// c0 + sum(coeff[v] * v) with v ranging over induction-variable names.
class AffineExpr {
 public:
  AffineExpr() = default;
  explicit AffineExpr(std::int64_t constant) : constant_{constant} {}

  [[nodiscard]] static AffineExpr constant(std::int64_t c) { return AffineExpr{c}; }
  [[nodiscard]] static AffineExpr var(const std::string& name,
                                      std::int64_t coeff = 1) {
    AffineExpr e;
    if (coeff != 0) e.coeffs_[name] = coeff;
    return e;
  }

  [[nodiscard]] std::int64_t constant_term() const { return constant_; }
  [[nodiscard]] std::int64_t coeff(const std::string& name) const {
    const auto it = coeffs_.find(name);
    return it == coeffs_.end() ? 0 : it->second;
  }
  [[nodiscard]] const std::map<std::string, std::int64_t>& coeffs() const {
    return coeffs_;
  }

  [[nodiscard]] bool is_constant() const { return coeffs_.empty(); }
  /// True when this is exactly one variable with coefficient 1 and no offset.
  [[nodiscard]] bool is_single_var() const {
    return constant_ == 0 && coeffs_.size() == 1 &&
           coeffs_.begin()->second == 1;
  }
  /// Name of the single variable (requires at least one term).
  [[nodiscard]] std::optional<std::string> single_var() const {
    if (coeffs_.size() != 1 || coeffs_.begin()->second != 1 || constant_ != 0) {
      return std::nullopt;
    }
    return coeffs_.begin()->first;
  }
  /// True when the expression mentions `name`.
  [[nodiscard]] bool uses(const std::string& name) const {
    return coeff(name) != 0;
  }

  /// Evaluates under an environment mapping iv names to values; missing
  /// variables evaluate as 0.
  [[nodiscard]] std::int64_t evaluate(
      const std::map<std::string, std::int64_t>& env) const;

  /// Substitutes variable `name` with `replacement` (affine composition).
  [[nodiscard]] AffineExpr substitute(const std::string& name,
                                      const AffineExpr& replacement) const;

  AffineExpr& operator+=(const AffineExpr& other);
  AffineExpr& operator-=(const AffineExpr& other);
  AffineExpr& operator*=(std::int64_t k);

  friend AffineExpr operator+(AffineExpr a, const AffineExpr& b) {
    a += b;
    return a;
  }
  friend AffineExpr operator-(AffineExpr a, const AffineExpr& b) {
    a -= b;
    return a;
  }
  friend AffineExpr operator*(AffineExpr a, std::int64_t k) {
    a *= k;
    return a;
  }
  friend bool operator==(const AffineExpr& a, const AffineExpr& b) {
    return a.constant_ == b.constant_ && a.coeffs_ == b.coeffs_;
  }

  [[nodiscard]] std::string to_string() const;

 private:
  std::int64_t constant_ = 0;
  std::map<std::string, std::int64_t> coeffs_;  // name -> coefficient
};

/// Loop bound: an affine expression, optionally clamped by a second one
/// (min(a, b)), which is what tail tiles produced by tiling need.
struct Bound {
  AffineExpr expr;
  std::optional<AffineExpr> min_with;

  [[nodiscard]] static Bound of(AffineExpr e) { return Bound{std::move(e), {}}; }
  [[nodiscard]] static Bound min_of(AffineExpr a, AffineExpr b) {
    return Bound{std::move(a), std::move(b)};
  }

  [[nodiscard]] std::int64_t evaluate(
      const std::map<std::string, std::int64_t>& env) const;
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] bool is_constant() const {
    return expr.is_constant() && (!min_with || min_with->is_constant());
  }

  friend bool operator==(const Bound& a, const Bound& b) {
    return a.expr == b.expr && a.min_with == b.min_with;
  }
};

}  // namespace tdo::ir
