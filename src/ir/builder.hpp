// Fluent construction helpers for IR functions.
//
// Tests and the PolyBench kernel library build loop nests either through the
// front-end (from C text) or through this builder; both paths produce
// identical IR, which the front-end tests assert.
#pragma once

#include <string>
#include <vector>

#include "ir/program.hpp"

namespace tdo::ir {

/// Shorthand: affine expression naming a loop iv.
[[nodiscard]] inline AffineExpr iv(const std::string& name) {
  return AffineExpr::var(name);
}
/// Shorthand: constant affine expression.
[[nodiscard]] inline AffineExpr cst(std::int64_t value) {
  return AffineExpr::constant(value);
}

/// Builds `for (iv = 0; iv < extent; ++iv) body`.
[[nodiscard]] Node make_loop(std::string iv_name, std::int64_t extent,
                             std::vector<Node> body);

/// Builds a general loop.
[[nodiscard]] Node make_loop(std::string iv_name, AffineExpr lower, Bound upper,
                             std::int64_t step, std::vector<Node> body);

/// Builds an assignment statement node.
[[nodiscard]] Node make_assign(AccessRef lhs, ExprPtr rhs);

/// Builds an accumulation (`+=`) statement node.
[[nodiscard]] Node make_accumulate(AccessRef lhs, ExprPtr rhs);

/// Access shorthand: ref("C", {iv("i"), iv("j")}).
[[nodiscard]] AccessRef ref(std::string array, std::vector<AffineExpr> subs);

/// Expression product / sum chains.
[[nodiscard]] ExprPtr mul(ExprPtr a, ExprPtr b);
[[nodiscard]] ExprPtr add(ExprPtr a, ExprPtr b);
[[nodiscard]] ExprPtr sub(ExprPtr a, ExprPtr b);

}  // namespace tdo::ir
