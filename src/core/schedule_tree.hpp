// Schedule trees + declarative tree matchers (Loop Tactics).
//
// Polly represents each detected SCoP's execution strategy as a schedule
// tree; Loop Tactics matches computational patterns with declarative tree
// matchers and rewrites the tree (paper Section III, refs [18][19][21]).
// Our schedule tree is a structural view over the loop-nest IR: band nodes
// wrap loops, sequence nodes order siblings, leaves carry statements, and
// mark nodes carry pass annotations. Matchers are the same combinator style
// as Loop Tactics' `band(band(leaf()))`.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/program.hpp"

namespace tdo::core {

enum class ScheduleNodeKind { kBand, kSequence, kLeaf, kMark };

/// One schedule-tree node. Band/leaf nodes reference (do not own) IR nodes
/// of the function the tree was built from; the function must stay alive and
/// unmodified while the tree is in use.
struct ScheduleNode {
  ScheduleNodeKind kind = ScheduleNodeKind::kLeaf;
  const ir::Loop* loop = nullptr;  // kBand
  const ir::Stmt* stmt = nullptr;  // kLeaf
  std::string mark;                // kMark
  std::vector<ScheduleNode> children;

  [[nodiscard]] std::string to_string(int indent = 0) const;
};

/// Builds the schedule tree of a function body (root is a sequence when the
/// body has several top-level nodes).
[[nodiscard]] ScheduleNode build_schedule_tree(const ir::Function& fn);

// ---------------------------------------------------------------------------
// Declarative matchers (Loop Tactics style)
// ---------------------------------------------------------------------------

/// Captured nodes by name after a successful match.
using Captures = std::map<std::string, const ScheduleNode*>;

/// A composable structural predicate over schedule trees.
class Matcher {
 public:
  using Fn = std::function<bool(const ScheduleNode&, Captures&)>;

  explicit Matcher(Fn fn) : fn_{std::move(fn)} {}

  [[nodiscard]] bool matches(const ScheduleNode& node, Captures& captures) const {
    return fn_(node, captures);
  }

 private:
  Fn fn_;
};

/// band(child): matches a band node whose only child matches `child`.
[[nodiscard]] Matcher band(Matcher child);
/// band("name", child): same, capturing the band node.
[[nodiscard]] Matcher band(std::string capture, Matcher child);
/// sequence(children...): matches a sequence node with exactly these children.
[[nodiscard]] Matcher sequence(std::vector<Matcher> children);
/// leaf(): matches any statement leaf.
[[nodiscard]] Matcher leaf();
/// leaf("name"): captures the leaf.
[[nodiscard]] Matcher leaf(std::string capture);
/// any(): matches anything (wildcard).
[[nodiscard]] Matcher any();
/// any("name"): wildcard with capture.
[[nodiscard]] Matcher any(std::string capture);

}  // namespace tdo::core
