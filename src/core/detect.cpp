#include "core/detect.hpp"

#include <cmath>
#include <sstream>

#include "support/log.hpp"

namespace tdo::core {

namespace {

using ir::AffineExpr;
using ir::ExprPtr;
using ir::LoadExpr;

/// Constant loop extent when the loop is `for (iv = c0; iv < c1; ++iv)`.
[[nodiscard]] std::optional<std::int64_t> const_extent(const ir::Loop& loop) {
  if (loop.step != 1) return std::nullopt;
  if (!loop.lower.is_constant() || !loop.upper.is_constant()) return std::nullopt;
  const std::int64_t lo = loop.lower.constant_term();
  const std::int64_t hi = loop.upper.expr.constant_term();
  if (loop.upper.min_with.has_value()) return std::nullopt;
  if (hi <= lo) return std::nullopt;
  return hi - lo;
}

/// Splits a multiplication chain into a scalar factor and load factors.
struct ProductInfo {
  bool pure = false;  // only mul nodes over consts/params/loads
  double scalar = 1.0;
  std::vector<const LoadExpr*> loads;
};

void flatten_product(const ir::Function& fn, const ExprPtr& expr,
                     ProductInfo& info) {
  if (const auto* bin = std::get_if<ir::BinExpr>(&expr->node)) {
    if (bin->op != ir::BinOpKind::kMul) {
      info.pure = false;
      return;
    }
    flatten_product(fn, bin->lhs, info);
    flatten_product(fn, bin->rhs, info);
    return;
  }
  if (const auto* load = std::get_if<LoadExpr>(&expr->node)) {
    info.loads.push_back(load);
    return;
  }
  if (const auto* c = std::get_if<ir::ConstExpr>(&expr->node)) {
    info.scalar *= c->value;
    return;
  }
  if (const auto* p = std::get_if<ir::ParamExpr>(&expr->node)) {
    info.scalar *= fn.scalar_value(p->name, 1.0);
    return;
  }
  info.pure = false;
}

[[nodiscard]] ProductInfo analyze_product(const ir::Function& fn,
                                          const ExprPtr& expr) {
  ProductInfo info;
  info.pure = true;
  flatten_product(fn, expr, info);
  return info;
}

/// True when `subs` is exactly [a] (single iv with coeff 1).
[[nodiscard]] bool subs_is(const std::vector<AffineExpr>& subs,
                           const std::string& a) {
  return subs.size() == 1 && subs[0].single_var() == a;
}
/// True when `subs` is exactly [a][b].
[[nodiscard]] bool subs_is(const std::vector<AffineExpr>& subs,
                           const std::string& a, const std::string& b) {
  return subs.size() == 2 && subs[0].single_var() == a &&
         subs[1].single_var() == b;
}

/// Recognizes `X[i][j] = beta * X[i][j]` (returns beta), `X[i][j] = 0`
/// (returns 0), else nullopt. `lhs` must match the update statement's output.
[[nodiscard]] std::optional<float> match_init_stmt(const ir::Function& fn,
                                                   const ir::Stmt& stmt,
                                                   const ir::AccessRef& lhs) {
  if (stmt.accumulate) return std::nullopt;
  if (stmt.lhs.array != lhs.array) return std::nullopt;
  if (stmt.lhs.subscripts.size() != lhs.subscripts.size()) return std::nullopt;
  for (std::size_t i = 0; i < lhs.subscripts.size(); ++i) {
    if (!(stmt.lhs.subscripts[i] == lhs.subscripts[i])) return std::nullopt;
  }
  const ProductInfo prod = analyze_product(fn, stmt.rhs);
  if (!prod.pure) return std::nullopt;
  if (prod.loads.empty()) {
    // X = const: only zero makes a valid beta-fold.
    return prod.scalar == 0.0 ? std::optional<float>(0.0f) : std::nullopt;
  }
  if (prod.loads.size() != 1) return std::nullopt;
  const LoadExpr& load = *prod.loads.front();
  if (load.array != lhs.array) return std::nullopt;
  for (std::size_t i = 0; i < lhs.subscripts.size(); ++i) {
    if (!(load.subscripts[i] == lhs.subscripts[i])) return std::nullopt;
  }
  return static_cast<float>(prod.scalar);
}

/// Tries to match a GEMM update statement under loops (i, j, k):
/// C[i][j] += alpha * A[i][k] * B[k][j].
[[nodiscard]] std::optional<GemmKernel> match_gemm_update(
    const ir::Function& fn, const ir::Stmt& stmt, const std::string& i,
    const std::string& j, const std::string& k, std::int64_t m, std::int64_t n,
    std::int64_t kk) {
  if (!stmt.accumulate) return std::nullopt;
  if (!subs_is(stmt.lhs.subscripts, i, j)) return std::nullopt;
  const ProductInfo prod = analyze_product(fn, stmt.rhs);
  if (!prod.pure || prod.loads.size() != 2) return std::nullopt;

  const LoadExpr* a = nullptr;
  const LoadExpr* b = nullptr;
  for (const LoadExpr* load : prod.loads) {
    if (subs_is(load->subscripts, i, k)) {
      a = load;
    } else if (subs_is(load->subscripts, k, j)) {
      b = load;
    }
  }
  if (a == nullptr || b == nullptr) return std::nullopt;
  // The accumulator must not appear as an input.
  if (a->array == stmt.lhs.array || b->array == stmt.lhs.array) {
    return std::nullopt;
  }

  GemmKernel kernel;
  kernel.c = stmt.lhs.array;
  kernel.a = a->array;
  kernel.b = b->array;
  kernel.m = m;
  kernel.n = n;
  kernel.k = kk;
  kernel.alpha = static_cast<float>(prod.scalar);
  kernel.beta = 1.0f;
  kernel.stmts.push_back(stmt.name);
  return kernel;
}

/// Tries to match a whole GEMM nest at a top-level band:
///   for i: for j: [init?]; for k: update
[[nodiscard]] std::optional<GemmKernel> match_gemm_nest(const ir::Function& fn,
                                                        const ir::Node& top) {
  if (!top.is_loop()) return std::nullopt;
  const ir::Loop& li = top.loop();
  if (li.body.size() != 1 || !li.body[0].is_loop()) return std::nullopt;
  const ir::Loop& lj = li.body[0].loop();

  const auto m = const_extent(li);
  const auto n = const_extent(lj);
  if (!m || !n) return std::nullopt;

  const ir::Stmt* init = nullptr;
  const ir::Loop* lk = nullptr;
  if (lj.body.size() == 1 && lj.body[0].is_loop()) {
    lk = &lj.body[0].loop();
  } else if (lj.body.size() == 2 && lj.body[0].is_stmt() &&
             lj.body[1].is_loop()) {
    init = &lj.body[0].stmt();
    lk = &lj.body[1].loop();
  } else {
    return std::nullopt;
  }
  if (lk->body.size() != 1 || !lk->body[0].is_stmt()) return std::nullopt;
  const auto kk = const_extent(*lk);
  if (!kk) return std::nullopt;

  auto kernel = match_gemm_update(fn, lk->body[0].stmt(), li.iv, lj.iv, lk->iv,
                                  *m, *n, *kk);
  if (!kernel) return std::nullopt;
  if (init != nullptr) {
    ir::AccessRef lhs{kernel->c,
                      {AffineExpr::var(li.iv), AffineExpr::var(lj.iv)}};
    const auto beta = match_init_stmt(fn, *init, lhs);
    if (!beta) return std::nullopt;  // foreign statement: not a clean GEMM
    kernel->beta = *beta;
    kernel->stmts.insert(kernel->stmts.begin(), init->name);
  }
  return kernel;
}

/// Tries to match one GEMV accumulation statement inside an (outer, inner)
/// loop pair. Returns orientation and operands.
[[nodiscard]] std::optional<GemvKernel> match_gemv_update(
    const ir::Function& fn, const ir::Stmt& stmt, const std::string& outer,
    const std::string& inner, std::int64_t outer_n, std::int64_t inner_n) {
  if (!stmt.accumulate) return std::nullopt;
  if (stmt.lhs.subscripts.size() != 1) return std::nullopt;
  const auto out_iv = stmt.lhs.subscripts[0].single_var();
  if (!out_iv || (*out_iv != outer && *out_iv != inner)) return std::nullopt;
  const std::string reduce_iv = (*out_iv == outer) ? inner : outer;

  const ProductInfo prod = analyze_product(fn, stmt.rhs);
  if (!prod.pure || prod.loads.size() != 2) return std::nullopt;

  const LoadExpr* mat = nullptr;
  const LoadExpr* vec = nullptr;
  for (const LoadExpr* load : prod.loads) {
    if (load->subscripts.size() == 2) mat = load;
    if (load->subscripts.size() == 1) vec = load;
  }
  if (mat == nullptr || vec == nullptr) return std::nullopt;
  if (!subs_is(vec->subscripts, reduce_iv)) return std::nullopt;
  if (mat->array == stmt.lhs.array || vec->array == stmt.lhs.array) {
    return std::nullopt;
  }

  GemvKernel kernel;
  kernel.y = stmt.lhs.array;
  kernel.a = mat->array;
  kernel.x = vec->array;
  kernel.alpha = static_cast<float>(prod.scalar);
  kernel.beta = 1.0f;
  kernel.stmts.push_back(stmt.name);

  const std::int64_t out_n = (*out_iv == outer) ? outer_n : inner_n;
  const std::int64_t red_n = (*out_iv == outer) ? inner_n : outer_n;
  if (subs_is(mat->subscripts, *out_iv, reduce_iv)) {
    // y[o] += A[o][r] * x[r]  ->  y = A x  (A is out_n x red_n)
    kernel.transpose = false;
    kernel.m = out_n;
    kernel.n = red_n;
  } else if (subs_is(mat->subscripts, reduce_iv, *out_iv)) {
    // y[o] += A[r][o] * x[r]  ->  y = A^T x  (A is red_n x out_n)
    kernel.transpose = true;
    kernel.m = red_n;
    kernel.n = out_n;
  } else {
    return std::nullopt;
  }
  // Verify declared dims match loop extents (guards partial-matrix nests,
  // which would need runtime sub-view support).
  const ir::ArrayDecl* decl = fn.find_array(kernel.a);
  if (decl == nullptr || decl->dims.size() != 2) return std::nullopt;
  if (decl->dims[0] != kernel.m || decl->dims[1] != kernel.n) {
    return std::nullopt;
  }
  return kernel;
}

/// Matches a GEMV-style nest: for outer { inits...; for inner { updates... };
/// residuals... }. Returns the recognized kernels; claimed statements are
/// the inits folded into beta plus the updates.
[[nodiscard]] std::vector<GemvKernel> match_gemv_nest(const ir::Function& fn,
                                                      const ir::Node& top) {
  std::vector<GemvKernel> kernels;
  if (!top.is_loop()) return kernels;
  const ir::Loop& lo = top.loop();
  const auto outer_n = const_extent(lo);
  if (!outer_n) return kernels;

  // Find the unique inner band; collect outer-level statements.
  const ir::Loop* li = nullptr;
  std::vector<const ir::Stmt*> outer_stmts;
  for (const ir::Node& node : lo.body) {
    if (node.is_loop()) {
      if (li != nullptr) return kernels;  // two inner bands: not GEMV-like
      li = &node.loop();
    } else {
      outer_stmts.push_back(&node.stmt());
    }
  }
  if (li == nullptr) return kernels;
  const auto inner_n = const_extent(*li);
  if (!inner_n) return kernels;

  for (const ir::Node& node : li->body) {
    if (!node.is_stmt()) return {};  // deeper nesting: not GEMV-like
    auto kernel =
        match_gemv_update(fn, node.stmt(), lo.iv, li->iv, *outer_n, *inner_n);
    if (!kernel) return {};  // unknown inner statement: bail out entirely
    kernels.push_back(*std::move(kernel));
  }

  // Fold outer-level init statements (y[outer] = 0) into kernel betas.
  for (const ir::Stmt* stmt : outer_stmts) {
    for (GemvKernel& kernel : kernels) {
      // Init must precede the inner band to be foldable.
      ir::AccessRef lhs{kernel.y, {AffineExpr::var(lo.iv)}};
      const auto beta = match_init_stmt(fn, *stmt, lhs);
      if (beta.has_value() && *beta == 0.0f &&
          kernel.stmts.size() == 1) {  // not yet folded
        // Only statements before the band can fold; statements after the
        // band are residual epilogues handled by loop distribution.
        bool before_band = false;
        for (const ir::Node& node : lo.body) {
          if (node.is_stmt() && &node.stmt() == stmt) {
            before_band = true;
            break;
          }
          if (node.is_loop()) break;
        }
        if (before_band) {
          kernel.beta = 0.0f;
          kernel.stmts.insert(kernel.stmts.begin(), stmt->name);
        }
      }
    }
  }
  return kernels;
}

/// Matches a flat-stencil convolution nest:
///   for i: for j: out[i+oi][j+oj] = sum of coeff * in[i+di][j+dj]
[[nodiscard]] std::optional<ConvKernel> match_conv_nest(const ir::Function& fn,
                                                        const ir::Node& top) {
  if (!top.is_loop()) return std::nullopt;
  const ir::Loop& li = top.loop();
  if (li.body.size() != 1 || !li.body[0].is_loop()) return std::nullopt;
  const ir::Loop& lj = li.body[0].loop();
  if (lj.body.size() != 1 || !lj.body[0].is_stmt()) return std::nullopt;
  const ir::Stmt& stmt = lj.body[0].stmt();
  if (stmt.accumulate) return std::nullopt;

  const auto hi = const_extent(li);
  const auto wj = const_extent(lj);
  if (!hi || !wj) return std::nullopt;

  // lhs must be out[i + c][j + c'] with unit coefficients.
  if (stmt.lhs.subscripts.size() != 2) return std::nullopt;
  const AffineExpr& si = stmt.lhs.subscripts[0];
  const AffineExpr& sj = stmt.lhs.subscripts[1];
  if (si.coeff(li.iv) != 1 || si.coeffs().size() != 1) return std::nullopt;
  if (sj.coeff(lj.iv) != 1 || sj.coeffs().size() != 1) return std::nullopt;

  // Flatten the sum of products.
  std::vector<ExprPtr> terms;
  std::function<bool(const ExprPtr&)> flatten_sum =
      [&](const ExprPtr& e) -> bool {
    if (const auto* bin = std::get_if<ir::BinExpr>(&e->node)) {
      if (bin->op == ir::BinOpKind::kAdd) {
        return flatten_sum(bin->lhs) && flatten_sum(bin->rhs);
      }
    }
    terms.push_back(e);
    return true;
  };
  if (!flatten_sum(stmt.rhs) || terms.size() < 2) return std::nullopt;

  ConvKernel kernel;
  kernel.out = stmt.lhs.array;
  kernel.out_h = *hi;
  kernel.out_w = *wj;
  kernel.i_offset = li.lower.constant_term();
  kernel.j_offset = lj.lower.constant_term();
  kernel.out_i0 = li.lower.constant_term() + si.constant_term();
  kernel.out_j0 = lj.lower.constant_term() + sj.constant_term();
  kernel.stmts.push_back(stmt.name);

  std::int64_t min_di = 0, max_di = 0, min_dj = 0, max_dj = 0;
  bool first = true;
  for (const ExprPtr& term : terms) {
    const ProductInfo prod = analyze_product(fn, term);
    if (!prod.pure || prod.loads.size() != 1) return std::nullopt;
    const LoadExpr& load = *prod.loads.front();
    if (load.subscripts.size() != 2) return std::nullopt;
    if (kernel.in.empty()) kernel.in = load.array;
    if (load.array != kernel.in || load.array == kernel.out) {
      return std::nullopt;
    }
    const AffineExpr& ti = load.subscripts[0];
    const AffineExpr& tj = load.subscripts[1];
    if (ti.coeff(li.iv) != 1 || ti.coeffs().size() != 1) return std::nullopt;
    if (tj.coeff(lj.iv) != 1 || tj.coeffs().size() != 1) return std::nullopt;
    const std::int64_t di = ti.constant_term();
    const std::int64_t dj = tj.constant_term();
    kernel.coeffs[{di, dj}] = static_cast<float>(prod.scalar);
    if (first) {
      min_di = max_di = di;
      min_dj = max_dj = dj;
      first = false;
    } else {
      min_di = std::min(min_di, di);
      max_di = std::max(max_di, di);
      min_dj = std::min(min_dj, dj);
      max_dj = std::max(max_dj, dj);
    }
  }
  // Normalize offsets so the window starts at (0, 0).
  std::map<std::pair<std::int64_t, std::int64_t>, float> normalized;
  for (const auto& [key, value] : kernel.coeffs) {
    normalized[{key.first - min_di, key.second - min_dj}] = value;
  }
  kernel.coeffs = std::move(normalized);
  kernel.taps_h = max_di - min_di + 1;
  kernel.taps_w = max_dj - min_dj + 1;
  // Effective input origin: loop lower bound + minimal offset must be >= 0.
  kernel.i_offset += min_di;
  kernel.j_offset += min_dj;
  if (kernel.i_offset < 0 || kernel.j_offset < 0) return std::nullopt;
  if (kernel.taps_h > 8 || kernel.taps_w > 8) return std::nullopt;

  const ir::ArrayDecl* in_decl = fn.find_array(kernel.in);
  if (in_decl == nullptr || in_decl->dims.size() != 2) return std::nullopt;
  kernel.in_h = in_decl->dims[0];
  kernel.in_w = in_decl->dims[1];
  if (kernel.i_offset + kernel.out_h + kernel.taps_h - 1 > kernel.in_h ||
      kernel.j_offset + kernel.out_w + kernel.taps_w - 1 > kernel.in_w) {
    return std::nullopt;
  }
  return kernel;
}

/// A nest is only detectable when fully affine (Polly's SCoP criterion).
[[nodiscard]] bool nest_is_affine(const ir::Node& top) {
  bool affine = true;
  std::function<void(const ir::Node&)> walk = [&](const ir::Node& node) {
    if (node.is_loop()) {
      for (const ir::Node& child : node.loop().body) walk(child);
    } else if (ir::has_non_affine(node.stmt().rhs)) {
      affine = false;
    }
  };
  walk(top);
  return affine;
}

}  // namespace

double DetectedKernel::macs_per_write() const {
  if (is_gemm()) {
    const GemmKernel& g = gemm();
    const double macs = static_cast<double>(g.m) * g.n * g.k;
    const double writes = static_cast<double>(g.k) * g.n;  // stationary B
    return macs / writes;
  }
  if (is_gemv()) {
    return 1.0;  // every weight written is used exactly once
  }
  const ConvKernel& c = conv();
  return static_cast<double>(c.out_h);  // Toeplitz tiles reused across rows
}

std::string DetectedKernel::description() const {
  std::ostringstream os;
  if (is_gemm()) {
    const GemmKernel& g = gemm();
    os << "GEMM " << g.c << "[" << g.m << "x" << g.n << "] (+)= " << g.alpha
       << " * " << g.a << " * " << g.b << " (k=" << g.k << ", beta=" << g.beta
       << ")";
  } else if (is_gemv()) {
    const GemvKernel& g = gemv();
    os << "GEMV " << g.y << " (+)= " << g.alpha << " * " << g.a
       << (g.transpose ? "^T" : "") << " * " << g.x << " (" << g.m << "x"
       << g.n << ", beta=" << g.beta << ")";
  } else {
    const ConvKernel& c = conv();
    os << "CONV " << c.out << "[" << c.out_h << "x" << c.out_w << "] = "
       << c.taps_h << "x" << c.taps_w << " stencil of " << c.in;
  }
  return os.str();
}

DetectionResult detect_kernels(const ir::Function& fn) {
  DetectionResult result;
  for (std::size_t idx = 0; idx < fn.body.size(); ++idx) {
    const ir::Node& top = fn.body[idx];
    if (!top.is_loop()) continue;
    if (!nest_is_affine(top)) {
      TDO_LOG(kInfo, "tactics") << "nest " << idx
                                << " is non-affine; skipping detection";
      continue;
    }
    if (auto gemm = match_gemm_nest(fn, top)) {
      DetectedKernel dk;
      dk.top_level_index = idx;
      dk.kernel = *std::move(gemm);
      for (const auto& s : dk.gemm().stmts) result.claimed_stmts.insert(s);
      result.kernel_nests.insert(idx);
      result.kernels.push_back(std::move(dk));
      continue;
    }
    if (auto conv = match_conv_nest(fn, top)) {
      DetectedKernel dk;
      dk.top_level_index = idx;
      dk.kernel = *std::move(conv);
      for (const auto& s : dk.conv().stmts) result.claimed_stmts.insert(s);
      result.kernel_nests.insert(idx);
      result.kernels.push_back(std::move(dk));
      continue;
    }
    const auto gemvs = match_gemv_nest(fn, top);
    for (const GemvKernel& kernel : gemvs) {
      DetectedKernel dk;
      dk.top_level_index = idx;
      dk.kernel = kernel;
      for (const auto& s : kernel.stmts) result.claimed_stmts.insert(s);
      result.kernel_nests.insert(idx);
      result.kernels.push_back(std::move(dk));
    }
  }
  return result;
}

}  // namespace tdo::core
