// Kernel fusion pass (paper Section III-B, "Revisited Loop Fusion").
//
// "Consider two consecutive kernels X and Y, with Y following X directly. We
// fuse X and Y if both kernels have the same access patterns (i.e., both are
// GEMM kernels) and are independent. Two kernels are independent if Y doesn't
// read from or write to any output of X, and Y does not write to any input
// of X."
//
// A fused group lowers to one polly_cimBlasGemmBatched call; when the group
// shares an input operand the batched job keeps it stationary in the
// crossbar, writing it once instead of once per kernel — the endurance
// "smart mapping" of Figure 5.
#pragma once

#include <cstddef>
#include <vector>

#include "cim/context_regs.hpp"
#include "core/detect.hpp"

namespace tdo::core {

struct FusionGroup {
  /// Indices into DetectionResult::kernels, in program order (size >= 2).
  std::vector<std::size_t> members;
  cim::StationaryOperand stationary = cim::StationaryOperand::kB;
  /// Name of the shared stationary operand ("" when none is shared and the
  /// batching only saves runtime-call overhead).
  std::string shared_operand;
};

/// True when GEMM kernels X then Y may be reordered into one batch.
[[nodiscard]] bool kernels_independent(const GemmKernel& x, const GemmKernel& y);

/// Finds fusable runs of adjacent GEMM kernels.
[[nodiscard]] std::vector<FusionGroup> find_fusion_groups(
    const DetectionResult& detection);

}  // namespace tdo::core
