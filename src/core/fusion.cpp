#include "core/fusion.hpp"

namespace tdo::core {

bool kernels_independent(const GemmKernel& x, const GemmKernel& y) {
  // Y must not read from or write to any output of X.
  if (y.a == x.c || y.b == x.c || y.c == x.c) return false;
  // Y must not write to any input of X.
  if (y.c == x.a || y.c == x.b) return false;
  return true;
}

namespace {

[[nodiscard]] bool same_shape(const GemmKernel& x, const GemmKernel& y) {
  return x.m == y.m && x.n == y.n && x.k == y.k && x.alpha == y.alpha &&
         x.beta == y.beta;
}

void finalize_group(const DetectionResult& detection, FusionGroup& group,
                    std::vector<FusionGroup>& out) {
  if (group.members.size() < 2) {
    group.members.clear();
    return;
  }
  // Shared-operand detection: prefer a shared A (stationary A, stream B/E —
  // exactly Listing 2), then a shared B.
  const GemmKernel& first = detection.kernels[group.members[0]].gemm();
  bool share_a = true;
  bool share_b = true;
  for (const std::size_t idx : group.members) {
    const GemmKernel& g = detection.kernels[idx].gemm();
    share_a = share_a && g.a == first.a;
    share_b = share_b && g.b == first.b;
  }
  if (share_a) {
    group.stationary = cim::StationaryOperand::kA;
    group.shared_operand = first.a;
  } else if (share_b) {
    group.stationary = cim::StationaryOperand::kB;
    group.shared_operand = first.b;
  } else {
    group.stationary = cim::StationaryOperand::kB;
    group.shared_operand.clear();
  }
  out.push_back(group);
  group.members.clear();
}

}  // namespace

std::vector<FusionGroup> find_fusion_groups(const DetectionResult& detection) {
  std::vector<FusionGroup> groups;
  FusionGroup current;

  for (std::size_t i = 0; i < detection.kernels.size(); ++i) {
    const DetectedKernel& dk = detection.kernels[i];
    if (!dk.is_gemm()) {
      finalize_group(detection, current, groups);
      continue;
    }
    if (current.members.empty()) {
      current.members.push_back(i);
      continue;
    }
    const DetectedKernel& prev = detection.kernels[current.members.back()];
    const bool adjacent =
        dk.top_level_index == prev.top_level_index + 1;
    bool independent = same_shape(prev.gemm(), dk.gemm());
    // Pairwise independence against every member of the group: batching
    // executes them as one job, so all orderings must be safe.
    for (const std::size_t idx : current.members) {
      independent = independent &&
                    kernels_independent(detection.kernels[idx].gemm(), dk.gemm()) &&
                    kernels_independent(dk.gemm(), detection.kernels[idx].gemm());
    }
    if (adjacent && independent) {
      current.members.push_back(i);
    } else {
      finalize_group(detection, current, groups);
      current.members.push_back(i);
    }
  }
  finalize_group(detection, current, groups);
  return groups;
}

}  // namespace tdo::core
