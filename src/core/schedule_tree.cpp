#include "core/schedule_tree.hpp"

#include <sstream>

namespace tdo::core {

namespace {

ScheduleNode build_node(const ir::Node& node);

ScheduleNode build_body(const std::vector<ir::Node>& body) {
  if (body.size() == 1) return build_node(body.front());
  ScheduleNode seq;
  seq.kind = ScheduleNodeKind::kSequence;
  seq.children.reserve(body.size());
  for (const ir::Node& n : body) seq.children.push_back(build_node(n));
  return seq;
}

ScheduleNode build_node(const ir::Node& node) {
  if (node.is_loop()) {
    ScheduleNode band;
    band.kind = ScheduleNodeKind::kBand;
    band.loop = &node.loop();
    band.children.push_back(build_body(node.loop().body));
    return band;
  }
  ScheduleNode leaf_node;
  leaf_node.kind = ScheduleNodeKind::kLeaf;
  leaf_node.stmt = &node.stmt();
  return leaf_node;
}

}  // namespace

ScheduleNode build_schedule_tree(const ir::Function& fn) {
  return build_body(fn.body);
}

std::string ScheduleNode::to_string(int indent) const {
  std::ostringstream os;
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  switch (kind) {
    case ScheduleNodeKind::kBand:
      os << pad << "band(" << loop->iv << " : " << loop->lower.to_string()
         << ".." << loop->upper.to_string() << ")\n";
      break;
    case ScheduleNodeKind::kSequence:
      os << pad << "sequence\n";
      break;
    case ScheduleNodeKind::kLeaf:
      os << pad << "leaf(" << stmt->name << ")\n";
      break;
    case ScheduleNodeKind::kMark:
      os << pad << "mark(" << mark << ")\n";
      break;
  }
  for (const ScheduleNode& child : children) os << child.to_string(indent + 1);
  return os.str();
}

Matcher band(Matcher child) {
  return Matcher{[child = std::move(child)](const ScheduleNode& node,
                                            Captures& captures) {
    return node.kind == ScheduleNodeKind::kBand && node.children.size() == 1 &&
           child.matches(node.children.front(), captures);
  }};
}

Matcher band(std::string capture, Matcher child) {
  return Matcher{[capture = std::move(capture), child = std::move(child)](
                     const ScheduleNode& node, Captures& captures) {
    if (node.kind != ScheduleNodeKind::kBand || node.children.size() != 1 ||
        !child.matches(node.children.front(), captures)) {
      return false;
    }
    captures[capture] = &node;
    return true;
  }};
}

Matcher sequence(std::vector<Matcher> children) {
  return Matcher{[children = std::move(children)](const ScheduleNode& node,
                                                  Captures& captures) {
    if (node.kind != ScheduleNodeKind::kSequence ||
        node.children.size() != children.size()) {
      return false;
    }
    for (std::size_t i = 0; i < children.size(); ++i) {
      if (!children[i].matches(node.children[i], captures)) return false;
    }
    return true;
  }};
}

Matcher leaf() {
  return Matcher{[](const ScheduleNode& node, Captures&) {
    return node.kind == ScheduleNodeKind::kLeaf;
  }};
}

Matcher leaf(std::string capture) {
  return Matcher{[capture = std::move(capture)](const ScheduleNode& node,
                                                Captures& captures) {
    if (node.kind != ScheduleNodeKind::kLeaf) return false;
    captures[capture] = &node;
    return true;
  }};
}

Matcher any() {
  return Matcher{[](const ScheduleNode&, Captures&) { return true; }};
}

Matcher any(std::string capture) {
  return Matcher{[capture = std::move(capture)](const ScheduleNode& node,
                                                Captures& captures) {
    captures[capture] = &node;
    return true;
  }};
}

}  // namespace tdo::core
