// The TDO-CIM compilation pipeline (paper Figure 4, Section III).
//
// compile() takes a front-end-produced IR function through:
//   1. SCoP validation + Loop Tactics kernel detection (detect.hpp);
//   2. offload policy (always, or the selective MACs-per-write cost model);
//   3. kernel fusion into batched calls (fusion.hpp);
//   4. endurance-aware tiling of oversized kernels (tiling.hpp);
//   5. runtime-call substitution with on-demand host/device coherence copies
//      (Listing 1's polly_cim* orchestration). Kernel calls AND copies
//      dispatch into the runtime's asynchronous command stream (copies ride
//      it as DMA commands, rectangle-hazard-ordered against producers); the
//      emitter inserts polly_cimSynchronize barriers only where host nests
//      consume data with a copy or kernel still in flight, so kernels,
//      fusion groups and transfers pipeline across the accelerator queues.
// The result carries both the untouched host program (the `-O3` baseline of
// the evaluation) and the CIM program (`-O3 -enable-loop-tactics`).
#pragma once

#include <string>
#include <vector>

#include "core/detect.hpp"
#include "core/fusion.hpp"
#include "core/tiling.hpp"
#include "exec/program.hpp"
#include "ir/program.hpp"

namespace tdo::core {

enum class OffloadPolicy {
  /// Offload every detected kernel (the paper's Figure 6 configuration).
  kAlways,
  /// Selective offload (the paper's "Selective Geomean"): the compile-time
  /// policy lowers `min_macs_per_write` into the runtime stream's dynamic
  /// dispatch threshold (StreamParams::min_macs_per_write) instead of
  /// dropping kernels statically — one knob decides both the static intent
  /// and the per-command runtime fallback.
  kSelective,
};

struct CompileOptions {
  bool enable_detection = true;
  bool enable_fusion = true;
  /// Reuse-friendly tiled call order (Listing 3 interchange). When false,
  /// oversized kernels are emitted in the naive jj-innermost order that
  /// reprograms the stationary tile per column chunk.
  bool enable_tiling = true;
  /// Mark batched and stationary-reuse call sites cacheable so the runtime's
  /// weight-residency cache may keep their stationary operands programmed
  /// across calls (serving loops re-running the program amortize the
  /// crossbar writes to zero). Off by default: the paper's ablations measure
  /// the reprogramming cost this cache would otherwise hide.
  bool cache_weights = false;
  OffloadPolicy policy = OffloadPolicy::kAlways;
  double min_macs_per_write = 16.0;
  /// Crossbar geometry the compiler plans against.
  std::uint32_t crossbar_rows = 256;
  std::uint32_t crossbar_cols = 256;
};

struct KernelReport {
  std::string description;
  double macs_per_write = 0.0;
  /// Emitted as a device call. True for every detected kernel: host-vs-
  /// device is decided per command at runtime by the stream's dynamic
  /// dispatch (see OffloadPolicy::kSelective); stream fallback counters
  /// report what actually ran where.
  bool offloaded = false;
  bool fused = false;
  bool tiled = false;
};

struct CompileResult {
  exec::Program host_program;  // baseline, no CIM
  exec::Program cim_program;   // transformed
  /// Runtime stream threshold the policy lowered to (0 = offload always).
  /// The harness merges this into StreamParams::min_macs_per_write.
  double stream_min_macs_per_write = 0.0;
  DetectionResult detection;
  std::vector<FusionGroup> fusion_groups;
  std::vector<KernelReport> reports;
  std::string schedule_tree_dump;

  [[nodiscard]] bool any_offloaded() const {
    for (const auto& r : reports) {
      if (r.offloaded) return true;
    }
    return false;
  }
};

/// Runs the full pipeline. The input function must validate().
[[nodiscard]] CompileResult compile(const ir::Function& fn,
                                    const CompileOptions& options = {});

}  // namespace tdo::core
