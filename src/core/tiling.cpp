#include "core/tiling.hpp"

#include "ir/builder.hpp"

namespace tdo::core {

TilePlan plan_gemm_tiling(const GemmKernel& kernel, std::uint32_t crossbar_rows,
                          std::uint32_t crossbar_cols,
                          cim::StationaryOperand stationary) {
  const std::int64_t cols_extent =
      stationary == cim::StationaryOperand::kA ? kernel.m : kernel.n;
  TilePlan plan;
  plan.tile_k = std::min<std::int64_t>(kernel.k, crossbar_rows);
  plan.tile_cols = std::min<std::int64_t>(cols_extent, crossbar_cols);
  plan.needed =
      kernel.k > crossbar_rows || cols_extent > crossbar_cols;
  return plan;
}

ir::Function make_tiled_view(const ir::Function& fn, const GemmKernel& kernel,
                             const TilePlan& plan) {
  using namespace ir;  // NOLINT: builder DSL

  Function out;
  out.name = fn.name + "_tiled";
  out.arrays = fn.arrays;
  out.scalars = fn.scalars;

  const std::int64_t tm = plan.tile_cols;
  const std::int64_t tk = plan.tile_k;
  const std::int64_t tn = plan.tile_cols;

  // Optional beta-init hoisted in front: C[i][j] = beta * C[i][j].
  if (kernel.beta != 1.0f) {
    ExprPtr init_rhs =
        kernel.beta == 0.0f
            ? make_const(0.0)
            : mul(make_const(kernel.beta),
                  make_load(kernel.c, {iv("i"), iv("j")}));
    out.body.push_back(make_loop(
        "i", kernel.m,
        {make_loop("j", kernel.n,
                   {make_assign(ref(kernel.c, {iv("i"), iv("j")}), init_rhs)})}));
  }

  // Listing 3: tile loops ii, kk, jj (note the kk/jj interchange), then
  // point loops i, j, k over min-clamped tile extents.
  ExprPtr update = mul(mul(make_const(kernel.alpha),
                           make_load(kernel.a, {iv("i"), iv("k")})),
                       make_load(kernel.b, {iv("k"), iv("j")}));
  Node point_k = make_loop(
      "k", iv("kk"), Bound::min_of(iv("kk") + cst(tk), cst(kernel.k)), 1,
      {make_accumulate(ref(kernel.c, {iv("i"), iv("j")}), update)});
  Node point_j = make_loop(
      "j", iv("jj"), Bound::min_of(iv("jj") + cst(tn), cst(kernel.n)), 1,
      {std::move(point_k)});
  Node point_i = make_loop(
      "i", iv("ii"), Bound::min_of(iv("ii") + cst(tm), cst(kernel.m)), 1,
      {std::move(point_j)});
  Node tile_jj = make_loop("jj", cst(0), Bound::of(cst(kernel.n)), tn,
                           {std::move(point_i)});
  Node tile_kk = make_loop("kk", cst(0), Bound::of(cst(kernel.k)), tk,
                           {std::move(tile_jj)});
  Node tile_ii = make_loop("ii", cst(0), Bound::of(cst(kernel.m)), tm,
                           {std::move(tile_kk)});
  out.body.push_back(std::move(tile_ii));
  out.renumber_statements();
  return out;
}

}  // namespace tdo::core
