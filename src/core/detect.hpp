// Kernel detection: Loop Tactics access-relation matchers.
//
// Walks the schedule tree of a SCoP and recognizes the computational
// patterns the CIM accelerator supports (paper Section III-A): GEMM with
// optional beta-init statement, GEMV in normal and transposed orientation
// (including multi-statement nests like bicg/gesummv, which decompose into
// several GEMV kernels plus a residual host epilogue), and 3x3-stencil
// convolution expressed as a flat coefficient sum.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "core/schedule_tree.hpp"
#include "ir/program.hpp"
#include "support/status.hpp"

namespace tdo::core {

/// C[MxN] (+)= alpha * A[MxK] * B[KxN]  with optional beta-scaling init.
struct GemmKernel {
  std::string c, a, b;
  std::int64_t m = 0, n = 0, k = 0;
  float alpha = 1.0f;
  float beta = 1.0f;  // 0 when init sets C to zero; 1 when accumulating
  /// Statement names folded into this kernel (init + update).
  std::vector<std::string> stmts;
};

/// y (+)= alpha * op(A[MxN]) * x  — one per accumulation statement.
struct GemvKernel {
  bool transpose = false;  // true: y[j] += A[i][j] * x[i]
  std::string y, a, x;
  std::int64_t m = 0, n = 0;
  float alpha = 1.0f;
  float beta = 1.0f;  // 0 when an init statement zeroes y
  std::vector<std::string> stmts;
};

/// out[i][j] = sum_{(di,dj)} coeff * in[i+di][j+dj]  (flat stencil form).
struct ConvKernel {
  std::string out, in;
  std::int64_t out_h = 0, out_w = 0;  // extents of i and j loops
  std::int64_t in_h = 0, in_w = 0;    // declared input dims
  std::int64_t i_offset = 0, j_offset = 0;  // input-region origin
  std::int64_t out_i0 = 0, out_j0 = 0;      // output-region origin
  /// Coefficients keyed by (di, dj) offsets relative to (i, j) iteration,
  /// normalized so the minimum offset is 0.
  std::map<std::pair<std::int64_t, std::int64_t>, float> coeffs;
  std::int64_t taps_h = 0, taps_w = 0;  // kernel window extents
  std::vector<std::string> stmts;
};

using KernelVariant = std::variant<GemmKernel, GemvKernel, ConvKernel>;

/// One detected kernel, anchored at a top-level IR node.
struct DetectedKernel {
  std::size_t top_level_index = 0;  // index into Function::body
  KernelVariant kernel;

  [[nodiscard]] bool is_gemm() const {
    return std::holds_alternative<GemmKernel>(kernel);
  }
  [[nodiscard]] bool is_gemv() const {
    return std::holds_alternative<GemvKernel>(kernel);
  }
  [[nodiscard]] bool is_conv() const {
    return std::holds_alternative<ConvKernel>(kernel);
  }
  [[nodiscard]] const GemmKernel& gemm() const {
    return std::get<GemmKernel>(kernel);
  }
  [[nodiscard]] const GemvKernel& gemv() const {
    return std::get<GemvKernel>(kernel);
  }
  [[nodiscard]] const ConvKernel& conv() const {
    return std::get<ConvKernel>(kernel);
  }

  /// Static compute-intensity estimate: MAC operations per crossbar weight
  /// write (Figure 6's metric), used by the selective offload policy.
  [[nodiscard]] double macs_per_write() const;

  [[nodiscard]] std::string description() const;
};

/// Result of detection over one function.
struct DetectionResult {
  std::vector<DetectedKernel> kernels;
  /// Statement names claimed by some kernel; the rest form host residuals.
  std::set<std::string> claimed_stmts;
  /// Top-level body indices that contain at least one kernel.
  std::set<std::size_t> kernel_nests;
};

/// Runs SCoP validation + pattern detection. Functions containing non-affine
/// accesses in a nest make that nest undetectable (it stays on the host).
[[nodiscard]] DetectionResult detect_kernels(const ir::Function& fn);

}  // namespace tdo::core
