#include "core/pipeline.hpp"

#include <cassert>
#include <map>
#include <set>

#include "core/schedule_tree.hpp"
#include "ir/builder.hpp"
#include "support/log.hpp"

namespace tdo::core {

namespace {

using exec::CimDevToHostOp;
using exec::CimFreeOp;
using exec::CimGemmBatchedOp;
using exec::CimGemmOp;
using exec::CimGemvOp;
using exec::CimHostToDevOp;
using exec::CimInitOp;
using exec::CimMallocOp;
using exec::CimSyncOp;
using exec::HostNest;
using exec::OperandRef;

/// Removes claimed statements from a nest; returns nullopt when nothing
/// remains (the loop-distribution residual builder).
[[nodiscard]] std::optional<ir::Node> strip_claimed(
    const ir::Node& node, const std::set<std::string>& claimed) {
  if (node.is_stmt()) {
    if (claimed.contains(node.stmt().name)) return std::nullopt;
    return node;
  }
  const ir::Loop& loop = node.loop();
  ir::Loop stripped;
  stripped.iv = loop.iv;
  stripped.lower = loop.lower;
  stripped.upper = loop.upper;
  stripped.step = loop.step;
  for (const ir::Node& child : loop.body) {
    if (auto kept = strip_claimed(child, claimed)) {
      stripped.body.push_back(*std::move(kept));
    }
  }
  if (stripped.body.empty()) return std::nullopt;
  return ir::Node{std::move(stripped)};
}

/// Read/write array sets of a host nest.
void nest_accesses(const std::vector<ir::Node>& body,
                   std::set<std::string>* reads, std::set<std::string>* writes) {
  ir::for_each_stmt(body, [&](const ir::Stmt& stmt) {
    writes->insert(stmt.lhs.array);
    if (stmt.accumulate) reads->insert(stmt.lhs.array);
    std::vector<const ir::LoadExpr*> loads;
    ir::collect_loads(stmt.rhs, loads);
    for (const auto* load : loads) reads->insert(load->array);
  });
}

/// Program emitter with host/device residency tracking.
class Emitter {
 public:
  Emitter(const ir::Function& fn, const CompileOptions& options)
      : fn_{fn}, options_{options} {
    program_.name = fn.name + "_cim";
    program_.arrays = fn.arrays;
    program_.scalars = fn.scalars;
  }

  [[nodiscard]] exec::Program take() && {
    // Final coherence (Listing 1's epilogue, asynchronous edition): enqueue
    // every copy-back — each orders itself behind its producer by rectangle
    // overlap — then release the device buffers. The frees and the
    // interpreter's terminal barrier drain whatever is still in flight; no
    // explicit polly_cimSynchronize is needed here.
    for (auto& [name, state] : location_) {
      if (state == Loc::kDeviceDirty) {
        program_.items.push_back(CimDevToHostOp{name, {}});
        state = Loc::kSynced;
      }
    }
    for (const std::string& name : device_buffers_) {
      program_.items.push_back(CimFreeOp{name});
    }
    return std::move(program_);
  }

  void declare_array(ir::ArrayDecl decl) { program_.arrays.push_back(std::move(decl)); }

  void emit_host_nest(std::vector<ir::Node> body) {
    std::set<std::string> reads;
    std::set<std::string> writes;
    nest_accesses(body, &reads, &writes);
    for (const auto& name : reads) ensure_host(name);
    // Partial writes must land on current data, so writes sync too.
    for (const auto& name : writes) ensure_host(name);
    // The nest's loads/stores bypass the stream's hazard tracker, so the
    // emitter places the barrier: before host code touches an array with a
    // copy still in flight, or overwrites a device-resident array an
    // in-flight kernel may read (WAR across the stream). Nests touching
    // neither run concurrently with the stream.
    bool barrier = false;
    for (const auto& name : reads) {
      barrier = barrier || pending_copies_.contains(name);
    }
    for (const auto& name : writes) {
      barrier = barrier || pending_copies_.contains(name) ||
                (kernels_in_flight_ && device_buffers_.contains(name));
    }
    if (barrier) emit_sync();
    program_.items.push_back(HostNest{std::move(body)});
    for (const auto& name : writes) mark_host_write(name);
  }

  void emit_device_op(exec::ProgramItem op, const std::set<std::string>& reads,
                      const std::set<std::string>& writes) {
    for (const auto& name : reads) ensure_device(name);
    // Device kernels may read the previous output (beta != 0) and write
    // sub-regions; conservatively sync outputs in as well.
    for (const auto& name : writes) ensure_device(name);
    program_.items.push_back(std::move(op));
    kernels_in_flight_ = true;
    for (const auto& name : writes) location_[name] = Loc::kDeviceDirty;
  }

 private:
  enum class Loc { kHostOnly, kSynced, kDeviceDirty, kHostDirty };

  /// Stream barrier: everything in flight (kernels and copies) retires.
  void emit_sync() {
    program_.items.push_back(CimSyncOp{});
    kernels_in_flight_ = false;
    pending_copies_.clear();
  }

  [[nodiscard]] Loc state(const std::string& name) const {
    const auto it = location_.find(name);
    return it == location_.end() ? Loc::kHostOnly : it->second;
  }

  void ensure_device(const std::string& name) {
    if (!init_emitted_) {
      program_.items.push_back(CimInitOp{0});
      init_emitted_ = true;
    }
    if (!device_buffers_.contains(name)) {
      program_.items.push_back(CimMallocOp{name});
      device_buffers_.insert(name);
    }
    switch (state(name)) {
      case Loc::kHostOnly:
      case Loc::kHostDirty:
        // The upload rides the stream as a DMA command; the runtime orders
        // it against in-flight producers by rectangle overlap, so no
        // barrier is emitted here and the copy overlaps ongoing compute.
        program_.items.push_back(CimHostToDevOp{name, {}});
        pending_copies_.insert(name);
        location_[name] = Loc::kSynced;
        break;
      case Loc::kSynced:
      case Loc::kDeviceDirty:
        break;
    }
  }

  void ensure_host(const std::string& name) {
    if (state(name) == Loc::kDeviceDirty) {
      // No barrier before the copy-back: the runtime synchronizes only if
      // the copy's source rectangle is still being written in flight. The
      // barrier lands later, when host code consumes the array.
      program_.items.push_back(CimDevToHostOp{name, {}});
      pending_copies_.insert(name);
      location_[name] = Loc::kSynced;
    }
  }

  void mark_host_write(const std::string& name) {
    location_[name] =
        device_buffers_.contains(name) ? Loc::kHostDirty : Loc::kHostOnly;
  }

  const ir::Function& fn_;
  const CompileOptions& options_;
  exec::Program program_;
  std::map<std::string, Loc> location_;
  std::set<std::string> device_buffers_;
  /// Arrays with an async copy potentially still in flight.
  std::set<std::string> pending_copies_;
  bool init_emitted_ = false;
  bool kernels_in_flight_ = false;
};

[[nodiscard]] std::uint64_t array_ld(const ir::Function& fn,
                                     const std::string& name) {
  const ir::ArrayDecl* decl = fn.find_array(name);
  assert(decl != nullptr);
  return decl->dims.size() >= 2
             ? static_cast<std::uint64_t>(decl->dims[1])
             : static_cast<std::uint64_t>(decl->dims[0]);
}

void emit_gemm(Emitter& emitter, const ir::Function& fn, const GemmKernel& g,
               const CompileOptions& options, bool* tiled_out) {
  const std::uint64_t lda = array_ld(fn, g.a);
  const std::uint64_t ldb = array_ld(fn, g.b);
  const std::uint64_t ldc = array_ld(fn, g.c);
  const std::set<std::string> reads = {g.a, g.b};
  const std::set<std::string> writes = {g.c};

  const TilePlan plan_a = plan_gemm_tiling(g, options.crossbar_rows,
                                           options.crossbar_cols,
                                           cim::StationaryOperand::kA);
  if (!plan_a.needed) {
    // Fits: single call, naive stationary-B mapping (paper default).
    CimGemmOp op;
    op.m = static_cast<std::uint64_t>(g.m);
    op.n = static_cast<std::uint64_t>(g.n);
    op.k = static_cast<std::uint64_t>(g.k);
    op.alpha = g.alpha;
    op.beta = g.beta;
    op.a = OperandRef{g.a, 0, 0, lda};
    op.b = OperandRef{g.b, 0, 0, ldb};
    op.c = OperandRef{g.c, 0, 0, ldc};
    op.stationary = cim::StationaryOperand::kB;
    op.cacheable = options.cache_weights;
    emitter.emit_device_op(std::move(op), reads, writes);
    if (tiled_out != nullptr) *tiled_out = false;
    return;
  }

  if (tiled_out != nullptr) *tiled_out = true;
  const std::int64_t tile_cols = plan_a.tile_cols;
  const std::int64_t tile_k = plan_a.tile_k;

  if (options.enable_tiling) {
    // Listing 3 order (ii, kk) with jj innermost-streamed: each stationary
    // A tile is programmed exactly once.
    for (std::int64_t ii = 0; ii < g.m; ii += tile_cols) {
      const std::int64_t ms = std::min(tile_cols, g.m - ii);
      for (std::int64_t kk = 0; kk < g.k; kk += tile_k) {
        const std::int64_t ks = std::min(tile_k, g.k - kk);
        CimGemmOp op;
        op.m = static_cast<std::uint64_t>(ms);
        op.n = static_cast<std::uint64_t>(g.n);
        op.k = static_cast<std::uint64_t>(ks);
        op.alpha = g.alpha;
        op.beta = kk == 0 ? g.beta : 1.0f;
        op.a = OperandRef{g.a, static_cast<std::uint64_t>(ii),
                          static_cast<std::uint64_t>(kk), lda};
        op.b = OperandRef{g.b, static_cast<std::uint64_t>(kk), 0, ldb};
        op.c = OperandRef{g.c, static_cast<std::uint64_t>(ii), 0, ldc};
        op.stationary = cim::StationaryOperand::kA;
        // Listing-3 order reuses each stationary tile; mark it cacheable so
        // a re-run of the program finds the tiles still resident.
        op.cacheable = options.cache_weights;
        emitter.emit_device_op(std::move(op), reads, writes);
      }
    }
    return;
  }

  // Naive order without the interchange: the jj chunk loop sits between ii
  // and kk, so the same A tile is reprogrammed once per column chunk.
  const std::int64_t tile_n =
      std::min<std::int64_t>(g.n, options.crossbar_cols);
  for (std::int64_t ii = 0; ii < g.m; ii += tile_cols) {
    const std::int64_t ms = std::min(tile_cols, g.m - ii);
    for (std::int64_t jj = 0; jj < g.n; jj += tile_n) {
      const std::int64_t njs = std::min(tile_n, g.n - jj);
      for (std::int64_t kk = 0; kk < g.k; kk += tile_k) {
        const std::int64_t ks = std::min(tile_k, g.k - kk);
        CimGemmOp op;
        op.m = static_cast<std::uint64_t>(ms);
        op.n = static_cast<std::uint64_t>(njs);
        op.k = static_cast<std::uint64_t>(ks);
        op.alpha = g.alpha;
        op.beta = kk == 0 ? g.beta : 1.0f;
        op.a = OperandRef{g.a, static_cast<std::uint64_t>(ii),
                          static_cast<std::uint64_t>(kk), lda};
        op.b = OperandRef{g.b, static_cast<std::uint64_t>(kk),
                          static_cast<std::uint64_t>(jj), ldb};
        op.c = OperandRef{g.c, static_cast<std::uint64_t>(ii),
                          static_cast<std::uint64_t>(jj), ldc};
        op.stationary = cim::StationaryOperand::kA;
        emitter.emit_device_op(std::move(op), reads, writes);
      }
    }
  }
}

void emit_gemv(Emitter& emitter, const ir::Function& fn, const GemvKernel& g,
               const CompileOptions& options) {
  CimGemvOp op;
  op.transpose = g.transpose;
  op.m = static_cast<std::uint64_t>(g.m);
  op.n = static_cast<std::uint64_t>(g.n);
  op.alpha = g.alpha;
  op.beta = g.beta;
  op.a = OperandRef{g.a, 0, 0, array_ld(fn, g.a)};
  op.x = g.x;
  op.y = g.y;
  op.cacheable = options.cache_weights;
  emitter.emit_device_op(std::move(op), {g.a, g.x, g.y}, {g.y});
}

void emit_conv(Emitter& emitter, const ir::Function& fn, const ConvKernel& c,
               std::size_t kernel_index, const CompileOptions& options) {
  using namespace ir;  // NOLINT: builder DSL
  // Lower the stencil to taps_h batched GEMMs against banded Toeplitz
  // matrices T_di[p][q] = coeff(di, p - q). T depends only on the stencil
  // coefficients and the tile width, so one T per tap row serves every
  // column tile of the output: the batched call keeps it stationary in the
  // crossbar and streams the input rows of all column tiles (endurance).
  const std::uint64_t ld_out = array_ld(fn, c.out);
  const std::uint64_t ld_in = array_ld(fn, c.in);
  // Full column tiles of width wt (k = wt + taps_w - 1 <= crossbar rows).
  const std::int64_t wt = std::min<std::int64_t>(
      c.out_w, std::min<std::int64_t>(options.crossbar_cols,
                                      options.crossbar_rows - c.taps_w + 1));

  // Distinct tile widths (body tiles + possibly one tail tile).
  std::vector<std::pair<std::int64_t, std::vector<std::int64_t>>> widths;
  for (std::int64_t j0 = 0; j0 < c.out_w; j0 += wt) {
    const std::int64_t ws = std::min(wt, c.out_w - j0);
    bool found = false;
    for (auto& [w, offsets] : widths) {
      if (w == ws) {
        offsets.push_back(j0);
        found = true;
      }
    }
    if (!found) widths.push_back({ws, {j0}});
  }

  for (const auto& [ws, offsets] : widths) {
    const std::int64_t k_dim = ws + c.taps_w - 1;
    for (std::int64_t di = 0; di < c.taps_h; ++di) {
      const std::string t_name = "_T" + std::to_string(di) + "_w" +
                                 std::to_string(ws) + "_k" +
                                 std::to_string(kernel_index);
      emitter.declare_array(ArrayDecl{t_name, {k_dim, ws}});

      // Host fill: compiler-generated arrays live in .bss (zero-initialized),
      // so only the sparse diagonals need explicit stores.
      std::vector<Node> fill;
      for (std::int64_t dj = 0; dj < c.taps_w; ++dj) {
        const auto it = c.coeffs.find({di, dj});
        if (it == c.coeffs.end() || it->second == 0.0f) continue;
        fill.push_back(make_loop(
            "q", ws,
            {make_assign(ref(t_name, {iv("q") + cst(dj), iv("q")}),
                         make_const(static_cast<double>(it->second)))}));
      }
      emitter.emit_host_nest(std::move(fill));

      // One batched GEMM per tap row: same stationary T, one entry per
      // column tile (A and C shifted by the tile's column offset).
      CimGemmBatchedOp op;
      op.m = static_cast<std::uint64_t>(c.out_h);
      op.n = static_cast<std::uint64_t>(ws);
      op.k = static_cast<std::uint64_t>(k_dim);
      op.alpha = 1.0f;
      op.beta = di == 0 ? 0.0f : 1.0f;
      op.lda = ld_in;
      op.ldb = static_cast<std::uint64_t>(ws);
      op.ldc = ld_out;
      op.stationary = cim::StationaryOperand::kB;
      op.cacheable = options.cache_weights;
      for (const std::int64_t j0 : offsets) {
        op.a.push_back(OperandRef{c.in,
                                  static_cast<std::uint64_t>(c.i_offset + di),
                                  static_cast<std::uint64_t>(c.j_offset + j0),
                                  ld_in});
        op.b.push_back(OperandRef{t_name, 0, 0, op.ldb});
        op.c.push_back(OperandRef{c.out, static_cast<std::uint64_t>(c.out_i0),
                                  static_cast<std::uint64_t>(c.out_j0 + j0),
                                  ld_out});
      }
      emitter.emit_device_op(std::move(op), {c.in, t_name}, {c.out});
    }
  }
}

/// Footprint -> segment derivation: annotate every copy op with the element
/// sub-rectangle the device ops actually touch, so the interpreter issues
/// pitched transfers (whose scatter-gather chains the transfer engine
/// derives) instead of whole-array flat copies. Uploads need the union of
/// device reads AND writes (a beta-accumulating kernel reads its output and
/// partial writes must land on current data); copy-backs need only the
/// write union — elements the device never wrote are still host-valid.
void derive_copy_footprints(exec::Program& program) {
  struct Box {
    std::uint64_t r0 = 0, c0 = 0, r1 = 0, c1 = 0;  // half-open element rect
    bool any = false;

    void cover(std::uint64_t row0, std::uint64_t col0, std::uint64_t rows,
               std::uint64_t cols) {
      if (rows == 0 || cols == 0) return;
      if (!any) {
        *this = Box{row0, col0, row0 + rows, col0 + cols, true};
        return;
      }
      r0 = std::min(r0, row0);
      c0 = std::min(c0, col0);
      r1 = std::max(r1, row0 + rows);
      c1 = std::max(c1, col0 + cols);
    }
  };
  std::map<std::string, Box> uploads;
  std::map<std::string, Box> writebacks;
  const auto read_ref = [&uploads](const OperandRef& ref, std::uint64_t rows,
                                   std::uint64_t cols) {
    uploads[ref.array].cover(ref.row_offset, ref.col_offset, rows, cols);
  };
  const auto write_ref = [&uploads, &writebacks](const OperandRef& ref,
                                                 std::uint64_t rows,
                                                 std::uint64_t cols) {
    uploads[ref.array].cover(ref.row_offset, ref.col_offset, rows, cols);
    writebacks[ref.array].cover(ref.row_offset, ref.col_offset, rows, cols);
  };
  const auto whole = [&program](const std::string& name) -> std::pair<std::uint64_t, std::uint64_t> {
    for (const ir::ArrayDecl& decl : program.arrays) {
      if (decl.name != name) continue;
      if (decl.dims.size() >= 2) {
        return {static_cast<std::uint64_t>(decl.dims[0]),
                static_cast<std::uint64_t>(decl.dims[1])};
      }
      return {1, static_cast<std::uint64_t>(decl.dims[0])};
    }
    return {0, 0};
  };

  for (const exec::ProgramItem& item : program.items) {
    if (const auto* gemm = std::get_if<CimGemmOp>(&item)) {
      read_ref(gemm->a, gemm->m, gemm->k);
      read_ref(gemm->b, gemm->k, gemm->n);
      write_ref(gemm->c, gemm->m, gemm->n);
    } else if (const auto* gemv = std::get_if<CimGemvOp>(&item)) {
      read_ref(gemv->a, gemv->m, gemv->n);
      const auto [xr, xc] = whole(gemv->x);
      uploads[gemv->x].cover(0, 0, xr, xc);
      const auto [yr, yc] = whole(gemv->y);
      uploads[gemv->y].cover(0, 0, yr, yc);
      writebacks[gemv->y].cover(0, 0, yr, yc);
    } else if (const auto* batched = std::get_if<CimGemmBatchedOp>(&item)) {
      for (std::size_t i = 0; i < batched->a.size(); ++i) {
        read_ref(batched->a[i], batched->m, batched->k);
        read_ref(batched->b[i], batched->k, batched->n);
        write_ref(batched->c[i], batched->m, batched->n);
      }
    }
  }

  const auto to_footprint = [&whole](const std::string& array,
                                     const std::map<std::string, Box>& boxes) {
    exec::CopyFootprint fp;  // default: whole array
    const auto it = boxes.find(array);
    if (it == boxes.end() || !it->second.any) return fp;
    const Box& box = it->second;
    const auto [rows, cols] = whole(array);
    if (box.r0 == 0 && box.c0 == 0 && box.r1 >= rows && box.c1 >= cols) {
      return fp;  // covers everything: keep the flat whole-array copy
    }
    fp.row0 = box.r0;
    fp.col0 = box.c0;
    fp.rows = box.r1 - box.r0;
    fp.cols = box.c1 - box.c0;
    return fp;
  };
  for (exec::ProgramItem& item : program.items) {
    if (auto* h2d = std::get_if<CimHostToDevOp>(&item)) {
      h2d->footprint = to_footprint(h2d->array, uploads);
    } else if (auto* d2h = std::get_if<CimDevToHostOp>(&item)) {
      d2h->footprint = to_footprint(d2h->array, writebacks);
    }
  }
}

}  // namespace

CompileResult compile(const ir::Function& fn, const CompileOptions& options) {
  CompileResult result;
  result.host_program = exec::host_only_program(fn);
  result.schedule_tree_dump = build_schedule_tree(fn).to_string();

  if (!options.enable_detection) {
    result.cim_program = result.host_program;
    result.cim_program.name = fn.name + "_cim";
    return result;
  }

  result.detection = detect_kernels(fn);
  const auto& kernels = result.detection.kernels;

  // Offload policy: every detected kernel is emitted as a device call; the
  // selective cost-model decision is made once, at runtime, by the stream's
  // dynamic MACs-per-write dispatch (the same metric evaluated per command,
  // so a tiled call's thin edge tiles fall back even when the kernel as a
  // whole clears the threshold). kSelective lowers the compile-time knob to
  // that stream threshold instead of duplicating the heuristic statically.
  result.stream_min_macs_per_write =
      options.policy == OffloadPolicy::kSelective ? options.min_macs_per_write
                                                  : 0.0;

  // Fusion among detected GEMMs.
  std::vector<FusionGroup> groups;
  if (options.enable_fusion) {
    groups = find_fusion_groups(result.detection);
  }
  result.fusion_groups = groups;

  // Kernel index -> fusion group membership.
  std::map<std::size_t, std::size_t> group_of;  // kernel idx -> group idx
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    for (const std::size_t idx : groups[gi].members) group_of[idx] = gi;
  }

  // Reports.
  result.reports.resize(kernels.size());
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    result.reports[i].description = kernels[i].description();
    result.reports[i].macs_per_write = kernels[i].macs_per_write();
    // Emitted as a device call; host-vs-device is decided per command by
    // the stream's dynamic dispatch at runtime.
    result.reports[i].offloaded = true;
    result.reports[i].fused = group_of.contains(i);
  }

  // Claimed statements: those of detected kernels leave the host.
  std::set<std::string> claimed;
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const auto& stmts =
        kernels[i].is_gemm()   ? kernels[i].gemm().stmts
        : kernels[i].is_gemv() ? kernels[i].gemv().stmts
                               : kernels[i].conv().stmts;
    claimed.insert(stmts.begin(), stmts.end());
  }

  Emitter emitter{fn, options};
  std::set<std::size_t> emitted_groups;

  for (std::size_t idx = 0; idx < fn.body.size(); ++idx) {
    // Kernels anchored at this top-level node, in detection order.
    std::vector<std::size_t> here;
    for (std::size_t i = 0; i < kernels.size(); ++i) {
      if (kernels[i].top_level_index == idx) here.push_back(i);
    }
    if (here.empty()) {
      emitter.emit_host_nest({fn.body[idx]});
      continue;
    }

    for (const std::size_t i : here) {
      const auto git = group_of.find(i);
      if (git != group_of.end()) {
        if (emitted_groups.contains(git->second)) continue;
        emitted_groups.insert(git->second);
        const FusionGroup& group = groups[git->second];
        const GemmKernel& first = kernels[group.members[0]].gemm();
        CimGemmBatchedOp op;
        op.m = static_cast<std::uint64_t>(first.m);
        op.n = static_cast<std::uint64_t>(first.n);
        op.k = static_cast<std::uint64_t>(first.k);
        op.alpha = first.alpha;
        op.beta = first.beta;
        op.lda = array_ld(fn, first.a);
        op.ldb = array_ld(fn, first.b);
        op.ldc = array_ld(fn, first.c);
        op.stationary = group.stationary;
        op.cacheable = options.cache_weights;
        std::set<std::string> reads;
        std::set<std::string> writes;
        for (const std::size_t m : group.members) {
          const GemmKernel& g = kernels[m].gemm();
          op.a.push_back(OperandRef{g.a, 0, 0, op.lda});
          op.b.push_back(OperandRef{g.b, 0, 0, op.ldb});
          op.c.push_back(OperandRef{g.c, 0, 0, op.ldc});
          reads.insert(g.a);
          reads.insert(g.b);
          writes.insert(g.c);
        }
        emitter.emit_device_op(std::move(op), reads, writes);
        continue;
      }
      if (kernels[i].is_gemm()) {
        bool tiled = false;
        emit_gemm(emitter, fn, kernels[i].gemm(), options, &tiled);
        result.reports[i].tiled = tiled;
      } else if (kernels[i].is_gemv()) {
        emit_gemv(emitter, fn, kernels[i].gemv(), options);
      } else {
        emit_conv(emitter, fn, kernels[i].conv(), i, options);
      }
    }

    // Loop-distribution residual (e.g. gesummv's epilogue).
    if (auto residual = strip_claimed(fn.body[idx], claimed)) {
      emitter.emit_host_nest({*std::move(residual)});
    }
  }

  result.cim_program = std::move(emitter).take();
  derive_copy_footprints(result.cim_program);
  return result;
}

}  // namespace tdo::core
