// CIM tiling pass (paper Section III-B, "Revisited Tiling Transformation",
// Listing 3).
//
// When a stationary operand does not fit the crossbar, the kernel is split
// into tiles that do. The interchange of the jj/kk tile loops makes
// consecutive point-loop executions reuse the same stationary tile, so each
// crossbar image is programmed exactly once (endurance). The offload pass
// consumes the TilePlan; the tiled IR view exists so tools can display the
// Listing-3 shape and tests can check host-side equivalence.
#pragma once

#include <cstdint>

#include "cim/context_regs.hpp"
#include "core/detect.hpp"
#include "ir/program.hpp"

namespace tdo::core {

struct TilePlan {
  bool needed = false;
  /// Tile extent along the crossbar-row (reduction, k) dimension.
  std::int64_t tile_k = 0;
  /// Tile extent along the crossbar-column dimension (m for stationary A,
  /// n for stationary B).
  std::int64_t tile_cols = 0;
};

/// Plans tiling of `kernel` for a rows x cols crossbar with the given
/// stationary operand.
[[nodiscard]] TilePlan plan_gemm_tiling(const GemmKernel& kernel,
                                        std::uint32_t crossbar_rows,
                                        std::uint32_t crossbar_cols,
                                        cim::StationaryOperand stationary);

/// Builds the Listing-3 tiled + interchanged loop nest for a GEMM kernel
/// (pure accumulation form; any beta-init statement is hoisted into its own
/// ii/jj nest in front). The result is semantically equal to the original.
[[nodiscard]] ir::Function make_tiled_view(const ir::Function& fn,
                                           const GemmKernel& kernel,
                                           const TilePlan& plan);

}  // namespace tdo::core
