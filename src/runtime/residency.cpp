#include "runtime/residency.hpp"

#include <algorithm>

#include "runtime/driver.hpp"
#include "support/log.hpp"

namespace tdo::rt {

ResidencyCache::ResidencyCache(ResidencyParams params, CimDriver& driver,
                               support::StatsRegistry& stats)
    : params_{std::move(params)}, driver_{driver} {
  const std::string& p = params_.name;
  stats.register_counter(p + ".hits", &hits_);
  stats.register_counter(p + ".misses", &misses_);
  stats.register_counter(p + ".evictions", &evictions_);
  stats.register_counter(p + ".invalidations", &invalidations_);
  stats.register_counter(p + ".weight_writes_saved8", &weight_writes_saved8_);
}

std::uint32_t ResidencyCache::device_capacity_rows(int device) const {
  const auto index = static_cast<std::size_t>(device);
  if (index >= driver_.device_count()) return 0;
  const std::uint32_t crossbar_rows = driver_.device(index).tile().rows();
  if (params_.capacity_rows == 0) return crossbar_rows;
  return std::min(params_.capacity_rows, crossbar_rows);
}

std::optional<ResidencyCache::Placement> ResidencyCache::peek(
    const WeightKey& key) const {
  support::SpinGuard guard{lock_};
  for (const Entry& entry : entries_) {
    if (entry.key == key) return Placement{entry.device, entry.row0};
  }
  return std::nullopt;
}

bool ResidencyCache::allocate_rows(int device, std::uint32_t rows,
                                   std::uint32_t* row0) {
  const std::uint32_t capacity = device_capacity_rows(device);
  if (rows == 0 || rows > capacity) return false;
  for (;;) {
    // First-fit over the device's free row windows.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> used;  // [lo, hi)
    for (const Entry& entry : entries_) {
      if (entry.device != device) continue;
      used.emplace_back(entry.row0, entry.row0 + entry.key.rows);
    }
    std::sort(used.begin(), used.end());
    std::uint32_t cursor = 0;  // end of the occupied prefix scanned so far
    bool found = false;
    for (const auto& [lo, hi] : used) {
      if (lo > cursor && lo - cursor >= rows) {
        found = true;
        break;
      }
      cursor = std::max(cursor, hi);
    }
    if (found || (capacity >= cursor && capacity - cursor >= rows)) {
      *row0 = cursor;
      return true;
    }
    // No contiguous window: evict the device's least recently used entry
    // and retry. `rows <= capacity` guarantees termination.
    std::size_t victim = entries_.size();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].device != device) continue;
      if (victim == entries_.size() || entries_[i].lru < entries_[victim].lru) {
        victim = i;
      }
    }
    if (victim == entries_.size()) return false;  // nothing left to evict
    evictions_.add();
    TDO_LOG(kDebug, "cim.residency")
        << "evicting tile at device " << device << " row "
        << entries_[victim].row0 << " (LRU)";
    erase_entry(victim);
  }
}

void ResidencyCache::erase_entry(std::size_t index) {
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(index));
}

ResidencyCache::Acquire ResidencyCache::acquire(const WeightKey& key,
                                                int device) {
  support::SpinGuard guard{lock_};
  ++clock_;
  for (Entry& entry : entries_) {
    if (entry.device == device && entry.key == key) {
      entry.lru = clock_;
      hits_.add();
      weight_writes_saved8_.add(static_cast<std::uint64_t>(key.rows) * key.cols);
      return Acquire{/*hit=*/true, /*cached=*/true, entry.row0};
    }
  }
  misses_.add();
  std::uint32_t row0 = 0;
  if (!allocate_rows(device, key.rows, &row0)) {
    return Acquire{/*hit=*/false, /*cached=*/false, 0};
  }
  entries_.push_back(Entry{key, device, row0, clock_});
  return Acquire{/*hit=*/false, /*cached=*/true, row0};
}

void ResidencyCache::on_programmed(int device, std::uint32_t row0,
                                   std::uint64_t rows) {
  support::SpinGuard guard{lock_};
  for (std::size_t i = entries_.size(); i-- > 0;) {
    const Entry& entry = entries_[i];
    if (entry.device != device) continue;
    const std::uint64_t lo = entry.row0;
    const std::uint64_t hi = lo + entry.key.rows;
    if (lo < row0 + rows && row0 < hi) {
      evictions_.add();
      erase_entry(i);
    }
  }
}

void ResidencyCache::invalidate_overlapping(const Rect& r) {
  if (r.empty()) return;
  support::SpinGuard guard{lock_};
  epoch_.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t i = entries_.size(); i-- > 0;) {
    if (entries_[i].key.rect.overlaps(r)) {
      invalidations_.add();
      erase_entry(i);
    }
  }
}

void ResidencyCache::invalidate_all() {
  support::SpinGuard guard{lock_};
  epoch_.fetch_add(1, std::memory_order_relaxed);
  invalidations_.add(entries_.size());
  entries_.clear();
}

ResidencyReport ResidencyCache::report() const {
  ResidencyReport rep;
  rep.hits = hits_.value();
  rep.misses = misses_.value();
  rep.evictions = evictions_.value();
  rep.invalidations = invalidations_.value();
  rep.weight_writes_saved8 = weight_writes_saved8_.value();
  {
    support::SpinGuard guard{lock_};
    rep.entries = entries_.size();
  }
  return rep;
}

}  // namespace tdo::rt
