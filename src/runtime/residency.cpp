#include "runtime/residency.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "runtime/driver.hpp"
#include "support/log.hpp"

namespace tdo::rt {

ResidencyCache::ResidencyCache(ResidencyParams params, CimDriver& driver,
                               support::StatsRegistry& stats)
    : params_{std::move(params)}, driver_{driver} {
  const std::string& p = params_.name;
  stats.register_counter(p + ".hits", &hits_);
  stats.register_counter(p + ".misses", &misses_);
  stats.register_counter(p + ".evictions", &evictions_);
  stats.register_counter(p + ".invalidations", &invalidations_);
  stats.register_counter(p + ".weight_writes_saved8", &weight_writes_saved8_);
  stats.register_counter(p + ".prefetches", &prefetches_);
  stats.register_counter(p + ".prefetch_hits", &prefetch_hits_);
  stats.register_counter(p + ".migrations", &migrations_);
}

std::uint32_t ResidencyCache::device_capacity_rows(int device) const {
  const auto index = static_cast<std::size_t>(device);
  if (index >= driver_.device_count()) return 0;
  const std::uint32_t crossbar_rows = driver_.device(index).tile().rows();
  if (params_.capacity_rows == 0) return crossbar_rows;
  return std::min(params_.capacity_rows, crossbar_rows);
}

std::optional<ResidencyCache::Placement> ResidencyCache::peek(
    const WeightKey& key) const {
  support::SpinGuard guard{lock_};
  for (const Entry& entry : entries_) {
    if (entry.key == key) return Placement{entry.device, entry.row0};
  }
  return std::nullopt;
}

bool ResidencyCache::allocate_rows(int device, std::uint32_t rows,
                                   std::uint32_t* row0) {
  const std::uint32_t capacity = device_capacity_rows(device);
  if (rows == 0 || rows > capacity) return false;
  for (;;) {
    // First-fit over the device's free row windows.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> used;  // [lo, hi)
    for (const Entry& entry : entries_) {
      if (entry.device != device) continue;
      used.emplace_back(entry.row0, entry.row0 + entry.key.rows);
    }
    std::sort(used.begin(), used.end());
    std::uint32_t cursor = 0;  // end of the occupied prefix scanned so far
    bool found = false;
    for (const auto& [lo, hi] : used) {
      if (lo > cursor && lo - cursor >= rows) {
        found = true;
        break;
      }
      cursor = std::max(cursor, hi);
    }
    if (found || (capacity >= cursor && capacity - cursor >= rows)) {
      *row0 = cursor;
      return true;
    }
    // No contiguous window: evict the device's least recently used entry
    // and retry. `rows <= capacity` guarantees termination.
    std::size_t victim = entries_.size();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].device != device) continue;
      if (victim == entries_.size() || entries_[i].lru < entries_[victim].lru) {
        victim = i;
      }
    }
    if (victim == entries_.size()) return false;  // nothing left to evict
    evictions_.add();
    if (obs::enabled()) {
      obs::Tracer::instance().instant(
          "residency", "evict", obs::Tracer::instance().last_tick(),
          {{"dev", static_cast<std::uint64_t>(device)},
           {"row", entries_[victim].row0}});
    }
    TDO_LOG(kDebug, "cim.residency")
        << "evicting tile at device " << device << " row "
        << entries_[victim].row0 << " (LRU)";
    erase_entry(victim);
  }
}

void ResidencyCache::erase_entry(std::size_t index) {
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(index));
}

ResidencyCache::Acquire ResidencyCache::acquire(const WeightKey& key,
                                                int device) {
  support::SpinGuard guard{lock_};
  ++clock_;
  if (params_.prefetch_on_miss) {
    if (last_acquired_ && !(*last_acquired_ == key)) {
      note_successor(*last_acquired_, key);
    }
    last_acquired_ = key;
  }
  for (Entry& entry : entries_) {
    if (entry.device == device && entry.key == key) {
      entry.lru = clock_;
      hits_.add();
      if (obs::enabled()) {
        obs::Tracer::instance().instant(
            "residency", "hit", obs::Tracer::instance().last_tick(),
            {{"dev", static_cast<std::uint64_t>(device)}, {"row", entry.row0}});
      }
      if (entry.prefetched) {
        prefetch_hits_.add();
        entry.prefetched = false;
      }
      weight_writes_saved8_.add(static_cast<std::uint64_t>(key.rows) * key.cols);
      Acquire out{/*hit=*/true, /*cached=*/true, entry.row0};
      if (entry.migrated) {
        out.migrated = true;
        out.shadow_base = entry.shadow_rect.base;
        out.shadow_ld = entry.shadow_ld;
      }
      return out;
    }
  }
  misses_.add();
  if (obs::enabled()) {
    obs::Tracer::instance().instant(
        "residency", "miss", obs::Tracer::instance().last_tick(),
        {{"dev", static_cast<std::uint64_t>(device)}});
  }
  std::uint32_t row0 = 0;
  if (!allocate_rows(device, key.rows, &row0)) {
    return Acquire{/*hit=*/false, /*cached=*/false, 0};
  }
  Entry entry;
  entry.key = key;
  entry.device = device;
  entry.row0 = row0;
  entry.lru = clock_;
  entries_.push_back(entry);
  if (obs::enabled()) {
    obs::Tracer::instance().instant(
        "residency", "program", obs::Tracer::instance().last_tick(),
        {{"dev", static_cast<std::uint64_t>(device)}, {"row", row0}});
  }
  return Acquire{/*hit=*/false, /*cached=*/true, row0};
}

void ResidencyCache::note_successor(const WeightKey& prev,
                                    const WeightKey& next) {
  for (Successor& edge : successors_) {
    if (edge.prev == prev) {
      edge.next = next;
      return;
    }
  }
  if (successors_.size() >= kMaxSuccessors) successors_.erase(successors_.begin());
  successors_.push_back(Successor{prev, next});
}

std::optional<WeightKey> ResidencyCache::predict_next(
    const WeightKey& current) const {
  if (!params_.prefetch_on_miss) return std::nullopt;
  support::SpinGuard guard{lock_};
  for (const Successor& edge : successors_) {
    if (edge.prev == current) return edge.next;
  }
  return std::nullopt;
}

bool ResidencyCache::prefill(const WeightKey& key, int device,
                             std::uint32_t* row0) {
  support::SpinGuard guard{lock_};
  for (const Entry& entry : entries_) {
    if (entry.key == key) return false;  // already resident somewhere
  }
  if (!allocate_rows(device, key.rows, row0)) return false;
  ++clock_;
  Entry entry;
  entry.key = key;
  entry.device = device;
  entry.row0 = *row0;
  entry.lru = clock_;
  entry.prefetched = true;
  entries_.push_back(entry);
  prefetches_.add();
  if (obs::enabled()) {
    obs::Tracer::instance().instant(
        "residency", "prefetch", obs::Tracer::instance().last_tick(),
        {{"dev", static_cast<std::uint64_t>(device)}, {"row", *row0}});
  }
  return true;
}

bool ResidencyCache::reserve_rows(int device, std::uint32_t rows,
                                  std::uint32_t* row0) {
  support::SpinGuard guard{lock_};
  return allocate_rows(device, rows, row0);
}

bool ResidencyCache::rehome(const WeightKey& key, int from_device,
                            int to_device, std::uint32_t to_row0,
                            const Rect& shadow_rect, std::uint64_t shadow_ld) {
  support::SpinGuard guard{lock_};
  for (Entry& entry : entries_) {
    if (entry.device != from_device || !(entry.key == key)) continue;
    entry.device = to_device;
    entry.row0 = to_row0;
    entry.migrated = true;
    entry.shadow_rect = shadow_rect;
    entry.shadow_ld = shadow_ld;
    entry.lru = ++clock_;
    migrations_.add();
    if (obs::enabled()) {
      obs::Tracer::instance().instant(
          "residency", "migrate", obs::Tracer::instance().last_tick(),
          {{"from", static_cast<std::uint64_t>(from_device)},
           {"to", static_cast<std::uint64_t>(to_device)},
           {"row", to_row0}});
    }
    return true;
  }
  return false;  // invalidated mid-migration: the next use reprograms
}

void ResidencyCache::on_programmed(int device, std::uint32_t row0,
                                   std::uint64_t rows) {
  support::SpinGuard guard{lock_};
  for (std::size_t i = entries_.size(); i-- > 0;) {
    const Entry& entry = entries_[i];
    if (entry.device != device) continue;
    const std::uint64_t lo = entry.row0;
    const std::uint64_t hi = lo + entry.key.rows;
    if (lo < row0 + rows && row0 < hi) {
      evictions_.add();
      if (obs::enabled()) {
        obs::Tracer::instance().instant(
            "residency", "evict", obs::Tracer::instance().last_tick(),
            {{"dev", static_cast<std::uint64_t>(device)},
             {"row", entry.row0}});
      }
      erase_entry(i);
    }
  }
}

void ResidencyCache::invalidate_overlapping(const Rect& r) {
  if (r.empty()) return;
  support::SpinGuard guard{lock_};
  epoch_.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t i = entries_.size(); i-- > 0;) {
    if (entries_[i].key.rect.overlaps(r)) {
      invalidations_.add();
      erase_entry(i);
    }
  }
}

void ResidencyCache::invalidate_all() {
  support::SpinGuard guard{lock_};
  epoch_.fetch_add(1, std::memory_order_relaxed);
  invalidations_.add(entries_.size());
  entries_.clear();
}

ResidencyReport ResidencyCache::report() const {
  ResidencyReport rep;
  rep.hits = hits_.value();
  rep.misses = misses_.value();
  rep.evictions = evictions_.value();
  rep.invalidations = invalidations_.value();
  rep.weight_writes_saved8 = weight_writes_saved8_.value();
  rep.prefetches = prefetches_.value();
  rep.prefetch_hits = prefetch_hits_.value();
  rep.migrations = migrations_.value();
  {
    support::SpinGuard guard{lock_};
    rep.entries = entries_.size();
  }
  return rep;
}

}  // namespace tdo::rt
