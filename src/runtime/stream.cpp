#include "runtime/stream.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/host_pool.hpp"
#include "runtime/residency.hpp"
#include "support/log.hpp"

namespace tdo::rt {

CimStream::CimStream(StreamParams params, sim::System& system,
                     CimDriver& driver)
    : params_{std::move(params)}, system_{system}, driver_{driver} {
  if (params_.depth == 0) params_.depth = 1;
  auto& stats = system.stats();
  const std::string& p = params_.name;
  stats.register_counter(p + ".enqueued", &enqueued_);
  stats.register_counter(p + ".offloaded", &offloaded_);
  stats.register_counter(p + ".cpu_fallbacks", &cpu_fallbacks_);
  stats.register_counter(p + ".fallbacks_threshold", &fallbacks_threshold_);
  stats.register_counter(p + ".fallbacks_queue_full", &fallbacks_queue_full_);
  stats.register_counter(p + ".syncs", &syncs_);
  stats.register_counter(p + ".hazard_syncs", &hazard_syncs_);
  stats.register_counter(p + ".device_drains", &device_drains_);
  stats.register_counter(p + ".occupancy_peak", &occupancy_peak_);
  stats.register_counter(p + ".copies_enqueued", &copies_enqueued_);
  stats.register_counter(p + ".copy_bytes", &copy_bytes_);
  stats.register_counter(p + ".ring_submitted", &ring_submitted_);
  stats.register_counter(p + ".ring_rejected", &ring_rejected_);
}

bool CimStream::idle() const {
  return in_flight() == 0 && tracker_.empty() && ring_.pending() == 0;
}

std::size_t CimStream::in_flight() const {
  std::size_t total = 0;
  for (std::size_t d = 0; d < driver_.device_count(); ++d) {
    total += driver_.device(d).in_flight() + driver_.device(d).copies_in_flight();
  }
  if (pool_ != nullptr) total += pool_->in_flight();
  return total;
}

void CimStream::note_occupancy() {
  // Monotone lifetime peak expressed as a counter (registry counters only
  // accumulate): the counter's value always equals the highest in-flight
  // count observed so far.
  const std::uint64_t occ = in_flight();
  if (occ > occupancy_seen_) {
    occupancy_peak_.add(occ - occupancy_seen_);
    occupancy_seen_ = occ;
  }
}

support::Status CimStream::enqueue_from_thread(const Command& command) {
  if (!ring_.push(command)) {
    ring_rejected_.add();
    return support::Status{support::StatusCode::kResourceExhausted,
                           "stream submission ring shard full"};
  }
  ring_submitted_.add();
  return support::Status::ok();
}

support::Status CimStream::pump_rings() {
  // Second metrics pump site (for drives not fronted by a serving
  // scheduler): same zero-cost-when-off contract as obs::enabled().
  obs::metrics_pump(system_.events().now());
  support::Status result = support::Status::ok();
  for (Command& command : ring_.drain_all()) {
    auto status = enqueue(command);
    if (!status.is_ok() && result.is_ok()) result = status;
  }
  return result;
}

void CimStream::drain_host_pool() {
  if (pool_ == nullptr) return;
  system_.settle_to_host_time();
  while (!pool_->idle()) {
    const sim::Tick done = pool_->busy_until();
    (void)system_.events().run_until(done);
    (void)system_.cpu().block_until(done);
  }
}

support::Status CimStream::enqueue(const Command& command) {
  if (command.kind == Command::Kind::kCopy) return enqueue_copy(command);
  enqueued_.add();
  const std::size_t devices = driver_.device_count();
  const std::size_t dev = command.device >= 0
                              ? static_cast<std::size_t>(command.device) % devices
                              : next_device();
  cim::Accelerator& accel = driver_.device(dev);

  // Dynamic dispatch, DTO-style: commands below the intensity threshold are
  // cheaper on the host than paying crossbar writes for them. A command that
  // reuses the programmed tile (cim_writes == 0) is always worth offloading.
  if (command.allow_cpu_fallback && params_.min_macs_per_write > 0.0 &&
      command.cim_writes > 0) {
    const double intensity = static_cast<double>(command.macs) /
                             static_cast<double>(command.cim_writes);
    if (intensity < params_.min_macs_per_write) {
      fallbacks_threshold_.add();
      cpu_fallbacks_.add();
      if (obs::enabled()) {
        obs::Tracer::instance().instant(
            "stream/" + params_.name, "cpu_fallback_threshold",
            system_.events().now(), {{"macs", command.macs}});
      }
      return run_on_host(command.image);
    }
  }

  // Backpressure: the stream keeps at most `depth` commands in flight per
  // accelerator (bounded additionally by the hardware FIFO).
  const std::size_t depth = std::min(
      params_.depth, accel.params().work_queue_depth + 1);
  system_.settle_to_host_time();
  if (accel.in_flight() >= depth) {
    if (params_.fallback_when_full && command.allow_cpu_fallback) {
      fallbacks_queue_full_.add();
      cpu_fallbacks_.add();
      if (obs::enabled()) {
        obs::Tracer::instance().instant(
            "stream/" + params_.name, "cpu_fallback_queue_full",
            system_.events().now(), {{"macs", command.macs}});
      }
      return run_on_host(command.image);
    }
    driver_.wait_for_space(dev, depth - 1);
  }

  offloaded_.add();
  TDO_RETURN_IF_ERROR(driver_.submit_queued(command.image, dev));
  note_occupancy();
  return support::Status::ok();
}

support::Status CimStream::enqueue_copy(const Command& command) {
  const CopyDesc& desc = command.copy;
  if (desc.bytes() == 0) return support::Status::ok();
  const std::size_t devices = driver_.device_count();
  const std::size_t dev = command.device >= 0
                              ? static_cast<std::size_t>(command.device) % devices
                              : next_device();
  copies_enqueued_.add();
  copy_bytes_.add(desc.bytes());
  // Every segment's footprint joins the hazard sets: later commands reading
  // any destination run (or overwriting any source run) must order behind
  // the chain. The caller has already checked this command's own rectangles
  // for conflicts.
  for (const CopySeg& seg : desc.segments) {
    note_read(seg.src, static_cast<int>(dev));
    note_write(seg.dst, static_cast<int>(dev));
  }
  TDO_RETURN_IF_ERROR(driver_.submit_copy(make_copy_image(desc), dev));
  note_occupancy();
  return support::Status::ok();
}

support::Status CimStream::drain_one(std::size_t device) {
  failed_seen_.resize(driver_.device_count(), 0);
  support::Status result = support::Status::ok();
  cim::Accelerator& accel = driver_.device(device);
  if (accel.has_work() || accel.regs().status() != cim::DeviceStatus::kIdle) {
    auto status = driver_.drain(device);
    if (!status.is_ok()) result = status.status();
  }
  const std::uint64_t failed = accel.jobs_failed();
  if (failed > failed_seen_[device]) {
    result = support::Status{
        static_cast<support::StatusCode>(accel.last_error_code()),
        "accelerator job failed"};
  }
  failed_seen_[device] = failed;
  return result;
}

support::Status CimStream::synchronize() {
  syncs_.add();
  support::Status result = pump_rings();
  for (std::size_t d = 0; d < driver_.device_count(); ++d) {
    auto status = drain_one(d);
    if (!status.is_ok()) result = status;
  }
  // Join in-flight host-pool stripes: a synchronize is the pseudo-async
  // join point, so host-stripe writes become visible (in simulated time)
  // together with their device halves.
  drain_host_pool();
  tracker_.clear();
  return result;
}

support::Status CimStream::drain_device(std::size_t device) {
  device_drains_.add();
  auto result = drain_one(device);
  // Everything that accelerator had in flight has retired; only its
  // rectangles leave the hazard sets — the other devices keep computing
  // against theirs.
  tracker_.remove_device(static_cast<int>(device));
  return result;
}

StreamReport CimStream::report() const {
  StreamReport rep;
  rep.enqueued = enqueued_.value();
  rep.offloaded = offloaded_.value();
  rep.cpu_fallbacks = cpu_fallbacks_.value();
  rep.fallbacks_threshold = fallbacks_threshold_.value();
  rep.fallbacks_queue_full = fallbacks_queue_full_.value();
  rep.syncs = syncs_.value();
  rep.hazard_syncs = hazard_syncs_.value();
  rep.device_drains = device_drains_.value();
  rep.occupancy_peak = occupancy_peak_.value();
  rep.copies_enqueued = copies_enqueued_.value();
  rep.copy_bytes = copy_bytes_.value();
  rep.ring_submitted = ring_submitted_.value();
  rep.ring_rejected = ring_rejected_.value();
  rep.ring_lock_contended = ring_.lock_contended();
  for (std::size_t d = 0; d < driver_.device_count(); ++d) {
    rep.overlapped_copy_bytes +=
        driver_.device(d).dma().overlapped_copy_bytes();
    rep.copy_segments += driver_.device(d).copy_segments();
    rep.copy_contended_ticks +=
        driver_.device(d).dma().contended_copy_ticks();
    rep.copy_migrations += driver_.device(d).dma().copy_migrations();
    rep.weight_writes_saved8 +=
        driver_.device(d).engine().weight_writes_saved8();
  }
  if (residency_ != nullptr) {
    const ResidencyReport res = residency_->report();
    rep.residency_hits = res.hits;
    rep.residency_misses = res.misses;
    rep.residency_evictions = res.evictions;
    rep.residency_invalidations = res.invalidations;
    rep.residency_prefetches = res.prefetches;
    rep.residency_prefetch_hits = res.prefetch_hits;
    rep.residency_migrations = res.migrations;
  }
  return rep;
}

support::Status CimStream::run_on_host(const cim::ContextRegs& image) {
  // The fallback runs the original -O3 loop nest on the host model: exact
  // float math (no quantization) with interpreter-equivalent charges.
  const std::uint64_t m = image.read(cim::Reg::kM);
  const std::uint64_t n = image.read(cim::Reg::kN);
  const std::uint64_t k = image.read(cim::Reg::kK);
  const std::uint64_t lda = image.read(cim::Reg::kLda);
  const std::uint64_t ldb = image.read(cim::Reg::kLdb);
  const std::uint64_t ldc = image.read(cim::Reg::kLdc);
  const sim::PhysAddr pa_a = image.read(cim::Reg::kPaA);
  const sim::PhysAddr pa_b = image.read(cim::Reg::kPaB);
  const sim::PhysAddr pa_c = image.read(cim::Reg::kPaC);
  const float alpha = image.read_f32(cim::Reg::kAlpha);
  const float beta = image.read_f32(cim::Reg::kBeta);
  const auto op = static_cast<cim::Opcode>(image.read(cim::Reg::kOpcode));
  if (op != cim::Opcode::kGemm && op != cim::Opcode::kGemv) {
    return support::unimplemented("CPU fallback supports plain GEMM jobs only");
  }
  if (m == 0 || n == 0 || k == 0) {
    return support::invalid_argument("zero GEMM dimension");
  }

  auto& cpu = system_.cpu();
  auto& mem = system_.memory();
  TDO_LOG(kDebug, "cim.stream") << "CPU fallback GEMM " << m << "x" << n << "x"
                                << k;
  for (std::uint64_t i = 0; i < m; ++i) {
    for (std::uint64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::uint64_t kk = 0; kk < k; ++kk) {
        const sim::PhysAddr a_addr = pa_a + (i * lda + kk) * 4;
        const sim::PhysAddr b_addr = pa_b + (kk * ldb + j) * 4;
        acc += static_cast<double>(mem.read_scalar<float>(a_addr)) *
               static_cast<double>(mem.read_scalar<float>(b_addr));
        cpu.load(a_addr);
        cpu.load(b_addr);
        // fmadd + induction + backedge (accumulator register-promoted).
        cpu.issue(sim::InstBundle{.int_alu = 1, .fp_ops = 2, .branches = 1});
      }
      const sim::PhysAddr c_addr = pa_c + (i * ldc + j) * 4;
      double out = alpha * acc;
      if (beta != 0.0f) {
        cpu.load(c_addr);
        out += static_cast<double>(beta) *
               static_cast<double>(mem.read_scalar<float>(c_addr));
        cpu.issue(sim::InstBundle{.fp_ops = 2});
      } else {
        cpu.issue(sim::InstBundle{.fp_ops = 1});
      }
      mem.write_scalar<float>(c_addr, static_cast<float>(out));
      cpu.store(c_addr);
    }
  }
  return support::Status::ok();
}

}  // namespace tdo::rt
