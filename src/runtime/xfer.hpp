// Transfer engine: host<->device copies as first-class stream commands.
//
// The paper's runtime performs every polly_cimHostToDev/DevToHost as a
// blocking host memcpy behind a full stream drain — the copy/compute overlap
// that Intel's DTO actually ships never happens. This subsystem makes copies
// ride the command stream instead: a copy becomes a DMA descriptor (direction
// plus src/dst physical rectangles) executed on the accelerator's
// otherwise-idle DMA channel while the micro-engine streams the previous
// GEMM tile.
//
// The same file owns the stream's hazard geometry. Flat byte ranges are too
// coarse for tiled BLAS traffic: the jj column stripes of two *different*
// stationary-B calls interleave in memory and would always collide. A
// `Rect` describes the actual footprint — {base, pitch, width, rows} — and
// `RectTracker` keeps the pending read/write sets with a precise 2-D overlap
// test, so disjoint stripes and copies against disjoint tiles overlap
// instead of forcing hazard synchronizations.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "cim/context_regs.hpp"
#include "sim/system.hpp"
#include "support/status.hpp"
#include "support/threading.hpp"

namespace tdo::rt {

class CimStream;

/// A 2-D physical-memory footprint: `rows` rows of `width` bytes whose row
/// starts are `pitch` bytes apart. `pitch == width, rows == 1` (or
/// Rect::linear) describes a flat byte range.
struct Rect {
  sim::PhysAddr base = 0;
  std::uint64_t pitch = 0;  ///< bytes between consecutive row starts
  std::uint64_t width = 0;  ///< bytes per row
  std::uint64_t rows = 1;

  [[nodiscard]] static Rect linear(sim::PhysAddr base, std::uint64_t bytes) {
    return Rect{base, bytes, bytes, 1};
  }

  [[nodiscard]] std::uint64_t bytes() const { return width * rows; }
  [[nodiscard]] bool empty() const { return width == 0 || rows == 0; }
  /// One-past-the-last byte covered by any row.
  [[nodiscard]] sim::PhysAddr span_end() const {
    return base + (rows - 1) * pitch + width;
  }
  /// True when the rectangle is a single contiguous byte range.
  [[nodiscard]] bool contiguous() const { return rows == 1 || pitch == width; }

  /// Precise byte-set intersection test (not a bounding-box check): disjoint
  /// column stripes sharing a pitch do not overlap even though their
  /// bounding ranges interleave. O(min(rows, other.rows)).
  [[nodiscard]] bool overlaps(const Rect& other) const;
};

/// A pending rectangle tagged with the accelerator whose in-flight command
/// produces (or consumes) it; -1 when the producer is unknown or the work
/// ran on the host. The tag lets per-stripe copy-back drain exactly the
/// device that owns a stripe instead of the whole stream.
struct TrackedRect {
  Rect rect;
  int device = -1;
};

/// Pending read/write rectangles of in-flight stream commands.
class RectTracker {
 public:
  void note_read(const Rect& r, int device = -1) {
    if (!r.empty()) reads_.push_back(TrackedRect{r, device});
  }
  void note_write(const Rect& r, int device = -1) {
    if (!r.empty()) writes_.push_back(TrackedRect{r, device});
  }
  [[nodiscard]] bool reads_overlap(const Rect& r) const;
  [[nodiscard]] bool writes_overlap(const Rect& r) const;
  /// Every pending write rectangle overlapping `r`, with producing devices.
  [[nodiscard]] std::vector<TrackedRect> writes_overlapping(const Rect& r) const;
  /// Retires every rectangle tagged `device` (that accelerator drained).
  void remove_device(int device);
  void clear() {
    reads_.clear();
    writes_.clear();
  }
  [[nodiscard]] bool empty() const { return reads_.empty() && writes_.empty(); }

 private:
  std::vector<TrackedRect> reads_;
  std::vector<TrackedRect> writes_;
};

/// One scatter-gather segment: matching src/dst rectangles (same width and
/// row count; pitches may differ, e.g. packing a sub-matrix).
struct CopySeg {
  Rect src;
  Rect dst;

  [[nodiscard]] std::uint64_t bytes() const { return src.bytes(); }
};

/// One DMA copy command: direction plus a chain of segments. A physically
/// contiguous copy is a single-segment chain; page-scattered host buffers
/// and strided sub-matrix views become multi-segment chains that execute
/// back-to-back on one DMA channel (no host-memcpy fallback).
struct CopyDesc {
  /// Informational tag for traces: shared memory is flat, so the DMA moves
  /// bytes identically in all directions. kDevToDev marks a peer-to-peer
  /// segment chain (residency migration) that never bounces through a host
  /// staging buffer — both rectangles are device-resident.
  enum class Dir : std::uint64_t {
    kHostToDev = 0,
    kDevToHost = 1,
    kDevToDev = 2,
  };
  Dir dir = Dir::kHostToDev;
  std::vector<CopySeg> segments;
  /// Multi-segment chains only: PA of the marshaled CopySegEntry table in
  /// shared memory (written by the runtime, fetched by the device's DMA).
  sim::PhysAddr table_pa = 0;

  [[nodiscard]] std::uint64_t bytes() const {
    std::uint64_t total = 0;
    for (const CopySeg& seg : segments) total += seg.bytes();
    return total;
  }
  [[nodiscard]] bool single() const { return segments.size() == 1; }
  /// Single-segment accessors (the contiguous fast path).
  [[nodiscard]] const Rect& src() const { return segments.front().src; }
  [[nodiscard]] const Rect& dst() const { return segments.front().dst; }
};

/// Encodes a copy descriptor into the accelerator's register file
/// (Opcode::kCopy). Single segment: PaA/Lda describe the source rectangle,
/// PaC/Ldc the destination, M the row count, N the row width in bytes,
/// SegCount 1. Multi-segment chain: SegCount/SegTable point at the marshaled
/// CopySegEntry table (desc.table_pa), and M=1/N=total-bytes so the driver's
/// range-granular flush still sees the transfer size.
[[nodiscard]] cim::ContextRegs make_copy_image(const CopyDesc& desc);

struct XferParams {
  /// Enqueue eligible copies into the command stream as DMA commands
  /// instead of running them as blocking host memcpys.
  bool async_copies = true;
  /// Copies below this size stay on the host memcpy path (the DTO_MIN_BYTES
  /// analogue for transfers: a DMA descriptor round trip costs more than a
  /// small cached memcpy). The threshold applies to the copy as a whole, not
  /// to individual segments: the descriptor chain amortizes the round trip,
  /// so a large scattered copy with one tiny tail segment still rides the
  /// stream instead of falling back to host memcpy.
  std::uint64_t min_async_bytes = 16 * 1024;
  /// Chains longer than this fall back to the host path (a bound on the
  /// descriptor table the device walks; severe fragmentation is better
  /// served by the cache-warm host loop anyway).
  std::uint32_t max_segments = 64;
};

/// Plans and executes host<->device copies for the runtime. Owns the
/// host-side memcpy cost model; asynchronous copies are handed to the
/// caller's CimStream as kCopy commands.
class XferEngine {
 public:
  XferEngine(XferParams params, sim::System& system)
      : params_{params},
        min_async_bytes_{params.min_async_bytes},
        system_{system} {
    system.stats().register_counter("xfer.host_copies", &host_copies_);
    system.stats().register_counter("xfer.host_copy_bytes", &host_copy_bytes_);
  }

  /// Returns the DMA descriptor chain for [src, src+bytes) ->
  /// [dst, dst+bytes) when the copy is async-eligible: async copies enabled,
  /// the transfer clears the size threshold, and the footprint resolves to
  /// at most max_segments physically contiguous runs (page-scattered buffers
  /// become scatter-gather chains instead of falling back to host memcpy).
  /// Returns false (desc untouched) otherwise.
  [[nodiscard]] bool plan(CopyDesc::Dir dir, sim::VirtAddr dst,
                          sim::VirtAddr src, std::uint64_t bytes,
                          CopyDesc* desc) const;

  /// Plans a pitched (sub-matrix view) copy: `rows` rows of `width` bytes,
  /// row starts `pitch` bytes apart on both sides. Derives the segment chain
  /// from the footprint — per-row runs split at physical discontinuities,
  /// then coalesced back into pitched rectangles where row starts advance by
  /// a constant physical stride on both sides.
  [[nodiscard]] bool plan_view(CopyDesc::Dir dir, sim::VirtAddr dst,
                               sim::VirtAddr src, std::uint64_t pitch,
                               std::uint64_t width, std::uint64_t rows,
                               CopyDesc* desc) const;

  /// Blocking host-performed copy through the cache hierarchy (the paper's
  /// original path, and the fallback for small or over-fragmented
  /// transfers).
  support::Status host_copy(sim::VirtAddr dst, sim::VirtAddr src,
                            std::uint64_t bytes);

  /// Pitched host copy (one accounting unit, not `rows` separate copies).
  support::Status host_copy_2d(sim::VirtAddr dst, sim::VirtAddr src,
                               std::uint64_t pitch, std::uint64_t width,
                               std::uint64_t rows);

  [[nodiscard]] std::uint64_t host_copies() const { return host_copies_.value(); }
  [[nodiscard]] std::uint64_t host_copy_bytes() const {
    return host_copy_bytes_.value();
  }
  [[nodiscard]] const XferParams& params() const { return params_; }

  /// Retunes the async-copy size threshold at runtime (adaptive admission:
  /// the break-even size is re-derived from observed host-copy cost per byte
  /// vs the measured enqueue overhead instead of staying a static knob).
  /// Atomic: the retuning thread and planning thread never tear the knob.
  void set_min_async_bytes(std::uint64_t bytes) {
    min_async_bytes_.store(bytes, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t min_async_bytes() const {
    return min_async_bytes_.load(std::memory_order_relaxed);
  }

 private:
  /// Chunked cache-hierarchy memcpy of one contiguous virtual range (no
  /// bandwidth stall or counter update — callers aggregate those).
  support::Status host_copy_row(sim::VirtAddr dst, sim::VirtAddr src,
                                std::uint64_t bytes);

  XferParams params_;
  /// Live copy of params_.min_async_bytes (the one adaptively retuned).
  std::atomic<std::uint64_t> min_async_bytes_;
  sim::System& system_;
  /// Sharded: the sync-copy fallback runs on whichever thread hit it, so a
  /// concurrent stats snapshot must merge per-thread shards, not race one
  /// shared line.
  support::ShardedCounter host_copies_;
  support::ShardedCounter host_copy_bytes_;
};

}  // namespace tdo::rt
