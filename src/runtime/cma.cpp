#include "runtime/cma.hpp"

namespace tdo::rt {

namespace {
[[nodiscard]] std::uint64_t round_to_pages(std::uint64_t bytes) {
  return (bytes + sim::kPageSize - 1) & ~(sim::kPageSize - 1);
}
}  // namespace

CmaAllocator::CmaAllocator(sim::CmaRegion region) : region_{region} {
  if (region_.size > 0) free_[region_.base] = region_.size;
}

support::StatusOr<sim::PhysAddr> CmaAllocator::allocate(std::uint64_t bytes) {
  if (bytes == 0) return support::invalid_argument("CMA allocation of 0 bytes");
  const std::uint64_t need = round_to_pages(bytes);
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->second < need) continue;
    const sim::PhysAddr base = it->first;
    const std::uint64_t remaining = it->second - need;
    free_.erase(it);
    if (remaining > 0) free_[base + need] = remaining;
    allocated_[base] = need;
    return base;
  }
  return support::resource_exhausted("CMA region exhausted");
}

support::Status CmaAllocator::release(sim::PhysAddr base) {
  const auto it = allocated_.find(base);
  if (it == allocated_.end()) {
    return support::not_found("release of unknown CMA allocation");
  }
  std::uint64_t size = it->second;
  sim::PhysAddr start = base;
  allocated_.erase(it);

  // Coalesce with the next free block.
  const auto next = free_.lower_bound(start);
  if (next != free_.end() && start + size == next->first) {
    size += next->second;
    free_.erase(next);
  }
  // Coalesce with the previous free block.
  if (!free_.empty()) {
    auto prev = free_.lower_bound(start);
    if (prev != free_.begin()) {
      --prev;
      if (prev->first + prev->second == start) {
        start = prev->first;
        size += prev->second;
        free_.erase(prev);
      }
    }
  }
  free_[start] = size;
  return support::Status::ok();
}

std::uint64_t CmaAllocator::bytes_free() const {
  std::uint64_t total = 0;
  for (const auto& [_, size] : free_) total += size;
  return total;
}

std::uint64_t CmaAllocator::bytes_allocated() const {
  std::uint64_t total = 0;
  for (const auto& [_, size] : allocated_) total += size;
  return total;
}

}  // namespace tdo::rt
