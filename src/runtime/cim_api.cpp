#include "runtime/cim_api.hpp"

#include <vector>

#include "support/log.hpp"

namespace tdo::rt::api {

namespace {
CimRuntime* g_runtime = nullptr;

[[nodiscard]] int to_error(const support::Status& status) {
  if (status.is_ok()) return kCimSuccess;
  switch (status.code()) {
    case support::StatusCode::kFailedPrecondition:
      return kCimNotInitialized;
    case support::StatusCode::kInvalidArgument:
      return kCimInvalidValue;
    case support::StatusCode::kResourceExhausted:
      return kCimAllocFailed;
    default:
      return kCimExecutionFailed;
  }
}
}  // namespace

void set_current_runtime(CimRuntime* runtime) { g_runtime = runtime; }
CimRuntime* current_runtime() { return g_runtime; }

int polly_cimInit(int device) {
  if (g_runtime == nullptr) return kCimNotInitialized;
  return to_error(g_runtime->init(device));
}

int polly_cimMalloc(std::uint64_t* device_ptr, std::uint64_t bytes) {
  if (g_runtime == nullptr || device_ptr == nullptr) return kCimNotInitialized;
  auto va = g_runtime->malloc_device(bytes);
  if (!va.is_ok()) return to_error(va.status());
  *device_ptr = *va;
  return kCimSuccess;
}

int polly_cimFree(std::uint64_t device_ptr) {
  if (g_runtime == nullptr) return kCimNotInitialized;
  return to_error(g_runtime->free_device(device_ptr));
}

int polly_cimHostToDev(std::uint64_t dst, std::uint64_t src, std::uint64_t bytes) {
  if (g_runtime == nullptr) return kCimNotInitialized;
  return to_error(g_runtime->host_to_dev(dst, src, bytes));
}

int polly_cimDevToHost(std::uint64_t dst, std::uint64_t src, std::uint64_t bytes) {
  if (g_runtime == nullptr) return kCimNotInitialized;
  return to_error(g_runtime->dev_to_host(dst, src, bytes));
}

int polly_cimHostToDev2d(std::uint64_t dst, std::uint64_t src,
                         std::uint64_t pitch, std::uint64_t width,
                         std::uint64_t rows) {
  if (g_runtime == nullptr) return kCimNotInitialized;
  return to_error(g_runtime->host_to_dev_2d(dst, src, pitch, width, rows));
}

int polly_cimDevToHost2d(std::uint64_t dst, std::uint64_t src,
                         std::uint64_t pitch, std::uint64_t width,
                         std::uint64_t rows) {
  if (g_runtime == nullptr) return kCimNotInitialized;
  return to_error(g_runtime->dev_to_host_2d(dst, src, pitch, width, rows));
}

int polly_cimSynchronize() {
  if (g_runtime == nullptr) return kCimNotInitialized;
  return to_error(g_runtime->synchronize());
}

int polly_cimBlasSGemm(bool trans_a, bool trans_b, std::uint64_t m,
                       std::uint64_t n, std::uint64_t k, const float* alpha,
                       std::uint64_t a, std::uint64_t lda, std::uint64_t b,
                       std::uint64_t ldb, const float* beta, std::uint64_t c,
                       std::uint64_t ldc) {
  if (g_runtime == nullptr) return kCimNotInitialized;
  if (trans_a || trans_b) {
    TDO_LOG(kWarn, "cim.api") << "transposed GEMM is not supported";
    return kCimInvalidValue;
  }
  if (alpha == nullptr || beta == nullptr) return kCimInvalidValue;
  return to_error(
      g_runtime->sgemm(m, n, k, *alpha, a, lda, b, ldb, *beta, c, ldc));
}

int polly_cimBlasSGemv(bool trans_a, std::uint64_t m, std::uint64_t n,
                       const float* alpha, std::uint64_t a, std::uint64_t lda,
                       std::uint64_t x, const float* beta, std::uint64_t y) {
  if (g_runtime == nullptr) return kCimNotInitialized;
  if (alpha == nullptr || beta == nullptr) return kCimInvalidValue;
  return to_error(g_runtime->sgemv(trans_a, m, n, *alpha, a, lda, x, *beta, y));
}

int polly_cimBlasGemmBatched(std::uint64_t m, std::uint64_t n, std::uint64_t k,
                             const float* alpha, const std::uint64_t* a_array,
                             std::uint64_t lda, const std::uint64_t* b_array,
                             std::uint64_t ldb, const float* beta,
                             const std::uint64_t* c_array, std::uint64_t ldc,
                             std::uint64_t batch_count, int stationary) {
  if (g_runtime == nullptr) return kCimNotInitialized;
  if (alpha == nullptr || beta == nullptr || a_array == nullptr ||
      b_array == nullptr || c_array == nullptr || batch_count == 0) {
    return kCimInvalidValue;
  }
  std::vector<GemmBatchItem> items(batch_count);
  for (std::uint64_t i = 0; i < batch_count; ++i) {
    items[i] = GemmBatchItem{a_array[i], b_array[i], c_array[i]};
  }
  return to_error(g_runtime->sgemm_batched(
      m, n, k, *alpha, items, lda, ldb, *beta, ldc,
      static_cast<cim::StationaryOperand>(stationary)));
}

}  // namespace tdo::rt::api
