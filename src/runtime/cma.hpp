// Contiguous Memory Allocator (paper Section II-E).
//
// "it implements the support for allocating and releasing the
// physically-contiguous pages in shared memory via the contiguous memory
// allocator (CMA) APIs exposed by the Linux kernel. The use of CMA offers two
// main benefits compared to the traditional malloc-based approach: 1) the
// size of the shared memory region is not limited by the page boundary; 2)
// there is no need for explicit memory management in the driver routines."
//
// First-fit free-list allocator over the physically contiguous region the
// MMU reserved at boot.
#pragma once

#include <cstdint>
#include <map>

#include "sim/mmu.hpp"
#include "support/status.hpp"

namespace tdo::rt {

class CmaAllocator {
 public:
  explicit CmaAllocator(sim::CmaRegion region);

  /// Allocates `bytes` (rounded up to page granularity) of physically
  /// contiguous memory; returns the base physical address.
  [[nodiscard]] support::StatusOr<sim::PhysAddr> allocate(std::uint64_t bytes);

  /// Releases an allocation previously returned by allocate().
  support::Status release(sim::PhysAddr base);

  [[nodiscard]] std::uint64_t bytes_free() const;
  [[nodiscard]] std::uint64_t bytes_allocated() const;
  [[nodiscard]] std::size_t allocation_count() const { return allocated_.size(); }
  [[nodiscard]] const sim::CmaRegion& region() const { return region_; }

 private:
  sim::CmaRegion region_;
  std::map<sim::PhysAddr, std::uint64_t> free_;       // base -> size
  std::map<sim::PhysAddr, std::uint64_t> allocated_;  // base -> size
};

}  // namespace tdo::rt
