// Crossbar weight-residency cache: cross-call stationary-operand reuse.
//
// TDO-CIM keeps the stationary operand programmed in the crossbar while
// streaming the moving one (paper Section III-B), but without this subsystem
// the runtime forgets that investment between calls: every polly_cimGemm
// reprograms the crossbars even when a serving workload hits the same
// weights thousands of times, paying both the weight-phase latency and PCM
// cell wear — the dominant CiM cost in Eva-CiM-style system models.
//
// The cache records which stationary tiles — identified by their physical
// {base, pitch, width, rows} rectangle plus quantization scale, layout and
// crossbar geometry — are currently programmed into which crossbar row
// windows of which accelerator. The BLAS layer consults it before emitting
// programming work:
//   * hit  -> the job carries kSkipWeightLoad + the resident row window, and
//             affinity routing overrides round-robin so the call lands on
//             the accelerator that holds the weights;
//   * miss -> crossbar rows are allocated on the chosen accelerator (LRU
//             entries evicted until the tile fits) and the entry is filled.
//
// Invalidation is epoch-based and driven by the same rectangle-overlap
// machinery the stream's hazard tracking uses: any host_to_dev copy or
// host-visible write overlapping a cached rectangle bumps the host-write
// generation counter and kills the entry; free_device evicts. The device
// (micro_engine) independently validates every reuse request against its
// own programmed-tile records, so cache staleness can only cost a
// reprogram, never correctness.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cim/context_regs.hpp"
#include "runtime/xfer.hpp"
#include "support/stats.hpp"
#include "support/threading.hpp"

namespace tdo::rt {

class CimDriver;

struct ResidencyParams {
  /// Master switch; cacheable call sites fall back to always-program when
  /// off (the paper's original behaviour).
  bool enabled = true;
  /// Crossbar rows usable for resident tiles per accelerator; 0 means the
  /// device's full crossbar. Sweeping this models smaller weight caches.
  std::uint32_t capacity_rows = 0;
  /// Prefetch-on-miss: learn the successor of each stationary tile and let
  /// the runtime program the predicted-next weight set (Opcode::kProgram)
  /// while the current job streams — the next call's weight phase then
  /// disappears into the previous job's stream phase. Off by default: the
  /// predictor costs an entry slot per speculation and existing workloads
  /// assert exact hit/miss counts.
  bool prefetch_on_miss = false;
  /// Stats prefix for the residency.* counters.
  std::string name = "residency";
};

/// Identity of a stationary tile as the runtime sees it. `rect` is the
/// operand's physical memory footprint (drives overlap invalidation); the
/// remaining fields must match for the device-side reuse check to accept.
struct WeightKey {
  Rect rect;
  std::uint64_t ld = 0;     ///< leading dimension in elements
  double scale = 1.0;       ///< quantization scale programmed with the tile
  cim::StationaryOperand layout = cim::StationaryOperand::kB;
  std::uint32_t rows = 0;   ///< crossbar rows the tile occupies (k)
  std::uint32_t cols = 0;   ///< crossbar columns (n or m)

  [[nodiscard]] bool operator==(const WeightKey& other) const {
    return rect.base == other.rect.base && rect.pitch == other.rect.pitch &&
           rect.width == other.rect.width && rect.rows == other.rect.rows &&
           ld == other.ld && scale == other.scale && layout == other.layout &&
           rows == other.rows && cols == other.cols;
  }
};

/// Aggregate cache behaviour for reporting.
struct ResidencyReport {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;
  /// 8-bit weight programs the runtime avoided emitting (hit tiles). The
  /// device reports its own figure; the two agree unless a hit job fell
  /// back or the engine rejected a stale request.
  std::uint64_t weight_writes_saved8 = 0;
  /// Prefetch speculations issued (prefill) and the subset that paid off:
  /// a later acquire landing on an entry the predictor programmed ahead.
  std::uint64_t prefetches = 0;
  std::uint64_t prefetch_hits = 0;
  /// Entries re-homed accelerator-to-accelerator (peer-to-peer migration).
  std::uint64_t migrations = 0;
  std::uint64_t entries = 0;  ///< currently resident tiles, all devices
};

class ResidencyCache {
 public:
  /// Registers the residency.* counters into the system stats registry.
  ResidencyCache(ResidencyParams params, CimDriver& driver,
                 support::StatsRegistry& stats);

  [[nodiscard]] bool enabled() const { return params_.enabled; }

  struct Placement {
    int device = -1;
    std::uint32_t row0 = 0;
  };

  /// Where `key` is resident, if anywhere — affinity routing consults this
  /// before committing to a round-robin device. Does not touch LRU order or
  /// counters.
  [[nodiscard]] std::optional<Placement> peek(const WeightKey& key) const;

  struct Acquire {
    bool hit = false;     ///< tile already resident on `device`: skip programming
    bool cached = false;  ///< entry exists after the call (hit or filled)
    std::uint32_t row0 = 0;
    /// Migrated entries only: the crossbar was programmed from the
    /// peer-to-peer staging copy, not the original operand. The caller must
    /// substitute this rectangle for the job's stationary pointer so the
    /// device-side reuse validation matches what was actually programmed
    /// (the bytes are bit-exact, so results are unchanged).
    bool migrated = false;
    sim::PhysAddr shadow_base = 0;
    std::uint64_t shadow_ld = 0;
  };

  /// Counting lookup-or-fill on `device`. On a hit the entry's LRU stamp is
  /// refreshed and the saved weight writes are credited; on a miss crossbar
  /// rows are allocated (evicting LRU entries of that device as needed) and
  /// the entry is filled at the returned row window. `cached == false` means
  /// the tile cannot fit this device's capacity; the caller programs at row
  /// 0 uncached (and on_programmed() retires whatever that overwrites).
  Acquire acquire(const WeightKey& key, int device);

  /// A job outside the cache programs crossbar rows [row0, row0 + rows) on
  /// `device`: retire entries it overwrites.
  void on_programmed(int device, std::uint32_t row0, std::uint64_t rows);

  /// Successor prediction (prefetch_on_miss): the tile acquire() saw follow
  /// the previously acquired one most recently. Empty when the predictor is
  /// off or `current` has no recorded successor.
  [[nodiscard]] std::optional<WeightKey> predict_next(
      const WeightKey& current) const;

  /// Speculatively fills an entry for a predicted tile: allocates a crossbar
  /// row window on `device` (evicting LRU entries as needed) and records the
  /// entry flagged prefetched, without counting a miss. The caller then
  /// enqueues the Opcode::kProgram job that actually programs the window.
  /// Returns false when the key is already resident anywhere or cannot fit.
  bool prefill(const WeightKey& key, int device, std::uint32_t* row0);

  /// Allocates a contiguous crossbar row window on `device` without creating
  /// an entry — the migration path reserves the destination window before
  /// programming it. Driver-thread only: nothing else may allocate between
  /// this call and the rehome() that claims the window.
  bool reserve_rows(int device, std::uint32_t rows, std::uint32_t* row0);

  /// Completes a peer-to-peer migration: re-homes `key`'s entry from
  /// `from_device` to `to_device` at `to_row0`, recording the staging copy's
  /// rectangle as the entry's shadow (future hits substitute it into the
  /// job's stationary pointer). Returns false when the entry is gone — a
  /// host write invalidated it mid-migration; the destination crossbar then
  /// holds an unclaimed stale tile and the next use simply reprograms.
  bool rehome(const WeightKey& key, int from_device, int to_device,
              std::uint32_t to_row0, const Rect& shadow_rect,
              std::uint64_t shadow_ld);

  /// Epoch invalidation: a host-visible write landed in `r` — bump the
  /// host-write generation and eagerly kill every entry whose rectangle
  /// overlaps (entries never outlive the epoch they were filled in, so no
  /// per-entry generation check is needed at lookup time).
  void invalidate_overlapping(const Rect& r);

  /// A host write whose footprint could not be resolved (scattered copy):
  /// conservatively kill everything.
  void invalidate_all();

  /// Host-write generation: the number of invalidation events so far.
  [[nodiscard]] std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t entries() const {
    support::SpinGuard guard{lock_};
    return entries_.size();
  }
  [[nodiscard]] ResidencyReport report() const;

 private:
  struct Entry {
    WeightKey key;
    int device = -1;
    std::uint32_t row0 = 0;
    std::uint64_t lru = 0;  ///< last-use stamp (monotone clock)
    /// Filled by prefill(); the first hit credits prefetch_hits and clears.
    bool prefetched = false;
    /// Migrated entries: the crossbar tile was programmed from this staging
    /// rectangle (the peer-to-peer copy), not from key.rect. key.rect keeps
    /// the original operand identity — lookups and host-write invalidation
    /// still key on it — while hits substitute the shadow into the job's
    /// stationary pointer so the device-side validation matches.
    bool migrated = false;
    Rect shadow_rect;
    std::uint64_t shadow_ld = 0;
  };

  /// One learned successor edge for the prefetch predictor (bounded FIFO).
  struct Successor {
    WeightKey prev;
    WeightKey next;
  };
  static constexpr std::size_t kMaxSuccessors = 64;

  /// Records `prev -> next` in the successor table (lock held).
  void note_successor(const WeightKey& prev, const WeightKey& next);

  [[nodiscard]] std::uint32_t device_capacity_rows(int device) const;
  /// Finds (or frees, by LRU eviction on `device`) a contiguous row window
  /// of `rows` rows. Returns false when `rows` exceeds the capacity.
  bool allocate_rows(int device, std::uint32_t rows, std::uint32_t* row0);
  void erase_entry(std::size_t index);

  ResidencyParams params_;
  CimDriver& driver_;
  /// Guards entries_/clock_: affinity queries (peek) may come from a
  /// different thread than the dispatching driver thread. Entry lists stay
  /// small (tens of tiles), so a spinlock's short hold time fits.
  mutable support::SpinLock lock_;
  std::vector<Entry> entries_;
  std::uint64_t clock_ = 0;
  std::atomic<std::uint64_t> epoch_{0};
  /// Prefetch predictor state: the most recently acquired key and the
  /// learned successor edges (both only maintained when prefetch_on_miss).
  std::optional<WeightKey> last_acquired_;
  std::vector<Successor> successors_;

  /// Sharded: lookups and invalidations run from whichever thread drives the
  /// runtime while metrics sampling snapshots concurrently.
  support::ShardedCounter hits_;
  support::ShardedCounter misses_;
  support::ShardedCounter evictions_;
  support::ShardedCounter invalidations_;
  support::ShardedCounter weight_writes_saved8_;
  support::ShardedCounter prefetches_;
  support::ShardedCounter prefetch_hits_;
  support::ShardedCounter migrations_;
};

}  // namespace tdo::rt
