#include "runtime/cim_blas.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "support/log.hpp"

namespace tdo::rt {

namespace {
constexpr std::uint64_t kElem = 4;  // sizeof(float)
}

CimRuntime::CimRuntime(RuntimeConfig config, sim::System& system,
                       cim::Accelerator& accel)
    : config_{config}, system_{system}, accel_{accel} {
  driver_ = std::make_unique<CimDriver>(config_.driver, system, accel);
  stream_ = std::make_unique<CimStream>(config_.stream, system, *driver_);
  xfer_ = std::make_unique<XferEngine>(config_.xfer, system);
}

support::Status CimRuntime::init(int device_index) {
  if (device_index != 0) {
    return support::not_found("only CIM device 0 exists in this system");
  }
  // Device node open + capability query.
  system_.cpu().charge_instructions(2000);
  initialized_ = true;
  TDO_LOG(kInfo, "cim.rt") << "runtime initialized for device " << device_index
                           << " (" << driver_->device_count()
                           << " accelerator instance(s), stream depth "
                           << stream_->params().depth << ")";
  return support::Status::ok();
}

support::StatusOr<sim::VirtAddr> CimRuntime::malloc_device(std::uint64_t bytes) {
  if (!initialized_) {
    return support::failed_precondition("polly_cimInit must be called first");
  }
  auto buffer = driver_->alloc_buffer(bytes);
  if (!buffer.is_ok()) return buffer.status();
  buffers_.push_back(*buffer);
  return buffer->va;
}

support::Status CimRuntime::free_device(sim::VirtAddr va) {
  const auto it =
      std::find_if(buffers_.begin(), buffers_.end(),
                   [va](const DeviceBuffer& b) { return b.va == va; });
  if (it == buffers_.end()) {
    return support::not_found("free of unknown device buffer");
  }
  // Drain only when an in-flight command actually touches this buffer;
  // releasing a buffer no pending rectangle covers needs no barrier.
  const Rect extent = Rect::linear(it->pa, it->bytes);
  if (stream_->writes_overlap(extent) || stream_->reads_overlap(extent)) {
    TDO_RETURN_IF_ERROR(synchronize());
  }
  TDO_RETURN_IF_ERROR(driver_->free_buffer(*it));
  buffers_.erase(it);
  return support::Status::ok();
}

support::Status CimRuntime::synchronize() {
  auto status = stream_->synchronize();
  for (const DeviceBuffer& buffer : staging_) {
    const auto freed = driver_->free_buffer(buffer);
    if (!freed.is_ok() && status.is_ok()) status = freed;
  }
  staging_.clear();
  return status;
}

support::Status CimRuntime::sync_for_operands(
    std::initializer_list<Rect> reads, std::initializer_list<Rect> writes) {
  bool hazard = false;
  for (const Rect& r : reads) {
    hazard = hazard || stream_->writes_overlap(r);  // RAW
  }
  for (const Rect& r : writes) {
    hazard = hazard || stream_->writes_overlap(r)  // WAW
             || stream_->reads_overlap(r);         // WAR
  }
  if (!hazard) return support::Status::ok();
  stream_->count_hazard();
  return synchronize();
}

support::Status CimRuntime::copy(CopyDesc::Dir dir, sim::VirtAddr dst,
                                 sim::VirtAddr src, std::uint64_t bytes) {
  CopyDesc desc;
  if (xfer_->plan(dir, dst, src, bytes, &desc)) {
    // Order the copy against in-flight producers/consumers at rectangle
    // granularity: a copy whose footprint is disjoint from every pending
    // rectangle rides the stream without a synchronization.
    TDO_RETURN_IF_ERROR(sync_for_operands({desc.src}, {desc.dst}));
    CimStream::Command command;
    command.kind = CimStream::Command::Kind::kCopy;
    command.copy = desc;
    TDO_RETURN_IF_ERROR(stream_->enqueue(command));
  } else {
    // Host memcpy path (small, scattered, or async copies disabled). The
    // host touches both ranges immediately and they may span scattered
    // frames, so order conservatively: drain whenever the stream is busy
    // (the paper's original behaviour).
    if (!stream_->idle()) TDO_RETURN_IF_ERROR(synchronize());
    TDO_RETURN_IF_ERROR(xfer_->host_copy(dst, src, bytes));
  }
  stats_.bytes_copied += bytes;
  invalidate_scales(dst, bytes);
  return support::Status::ok();
}

support::Status CimRuntime::host_to_dev(sim::VirtAddr dst, sim::VirtAddr src,
                                        std::uint64_t bytes) {
  return copy(CopyDesc::Dir::kHostToDev, dst, src, bytes);
}

void CimRuntime::invalidate_scales(sim::VirtAddr va, std::uint64_t bytes) {
  for (auto it = scale_cache_.begin(); it != scale_cache_.end();) {
    const std::uint64_t extent =
        ((it->first.rows - 1) * it->first.ld + it->first.row_len) * kElem;
    const bool overlap =
        it->first.va < va + bytes && va < it->first.va + extent;
    it = overlap ? scale_cache_.erase(it) : std::next(it);
  }
}

support::Status CimRuntime::dev_to_host(sim::VirtAddr dst, sim::VirtAddr src,
                                        std::uint64_t bytes) {
  return copy(CopyDesc::Dir::kDevToHost, dst, src, bytes);
}

support::StatusOr<sim::PhysAddr> CimRuntime::translate_checked(
    sim::VirtAddr va, std::uint64_t bytes) const {
  if (!system_.mmu().is_contiguous(va, bytes)) {
    return support::failed_precondition(
        "CIM operands must live in physically contiguous device buffers");
  }
  return system_.mmu().translate(va);
}

support::StatusOr<double> CimRuntime::operand_max_abs(sim::VirtAddr va,
                                                      std::uint64_t rows,
                                                      std::uint64_t row_len,
                                                      std::uint64_t ld) {
  if (config_.scale_mode == ScaleMode::kStatic) {
    return config_.static_max_abs;
  }
  // Per-buffer granularity: when the operand is a sub-view of one device
  // buffer, scan (and cache) the whole buffer once. A whole-buffer max-abs
  // is a valid (if slightly coarser) scale for any sub-view, and it is what
  // per-tensor-scale runtimes do in practice.
  const std::uint64_t extent = ((rows - 1) * ld + row_len) * kElem;
  for (const DeviceBuffer& buffer : buffers_) {
    if (va >= buffer.va && va + extent <= buffer.va + buffer.bytes) {
      va = buffer.va;
      rows = 1;
      row_len = buffer.bytes / kElem;
      ld = row_len;
      break;
    }
  }
  const ScaleKey key{va, rows, row_len, ld};
  if (const auto it = scale_cache_.find(key); it != scale_cache_.end()) {
    return it->second;
  }
  stats_.scale_scans += 1;
  auto& cpu = system_.cpu();
  auto& mem = system_.memory();
  const auto base_pa = translate_checked(va, ((rows - 1) * ld + row_len) * kElem);
  if (!base_pa.is_ok()) return base_pa.status();
  double max_abs = 0.0;
  for (std::uint64_t r = 0; r < rows; ++r) {
    const sim::PhysAddr row_pa = *base_pa + r * ld * kElem;
    for (std::uint64_t c = 0; c < row_len; ++c) {
      const float v = mem.read_scalar<float>(row_pa + c * kElem);
      max_abs = std::max(max_abs, static_cast<double>(std::fabs(v)));
      cpu.load(row_pa + c * kElem);
      cpu.issue(sim::InstBundle{.fp_ops = 2, .branches = 1});  // fabs+max+loop
    }
  }
  if (max_abs == 0.0) max_abs = 1.0;  // all-zero operand: any scale is exact
  scale_cache_[key] = max_abs;
  return max_abs;
}

cim::ContextRegs CimRuntime::make_job_image(
    std::uint64_t m, std::uint64_t n, std::uint64_t k, float alpha, float beta,
    sim::PhysAddr pa_a, std::uint64_t lda, sim::PhysAddr pa_b, std::uint64_t ldb,
    sim::PhysAddr pa_c, std::uint64_t ldc, double scale_a, double scale_b,
    cim::StationaryOperand stationary, bool skip_weight_load) const {
  cim::ContextRegs image;
  image.write(cim::Reg::kOpcode, static_cast<std::uint64_t>(cim::Opcode::kGemm));
  image.write(cim::Reg::kM, m);
  image.write(cim::Reg::kN, n);
  image.write(cim::Reg::kK, k);
  image.write(cim::Reg::kPaA, pa_a);
  image.write(cim::Reg::kPaB, pa_b);
  image.write(cim::Reg::kPaC, pa_c);
  image.write(cim::Reg::kLda, lda);
  image.write(cim::Reg::kLdb, ldb);
  image.write(cim::Reg::kLdc, ldc);
  image.write_f32(cim::Reg::kAlpha, alpha);
  image.write_f32(cim::Reg::kBeta, beta);
  image.write_f64(cim::Reg::kScaleA, support::QuantScale::for_max_abs(scale_a).scale);
  image.write_f64(cim::Reg::kScaleB, support::QuantScale::for_max_abs(scale_b).scale);
  image.write(cim::Reg::kStationary, static_cast<std::uint64_t>(stationary));
  std::uint64_t flags = 0;
  if (config_.double_buffering) flags |= cim::JobFlags::kDoubleBuffering;
  if (skip_weight_load) flags |= cim::JobFlags::kSkipWeightLoad;
  image.write(cim::Reg::kFlags, flags);
  return image;
}

support::Status CimRuntime::enqueue_job(const cim::ContextRegs& image,
                                        std::uint64_t macs,
                                        std::uint64_t cim_writes, int device,
                                        bool allow_cpu_fallback) {
  stats_.tile_jobs += 1;
  CimStream::Command command;
  command.image = image;
  command.macs = macs;
  command.cim_writes = cim_writes;
  command.device = device;
  command.allow_cpu_fallback = allow_cpu_fallback;
  return stream_->enqueue(command);
}

support::Status CimRuntime::sgemm(std::uint64_t m, std::uint64_t n,
                                  std::uint64_t k, float alpha, sim::VirtAddr a,
                                  std::uint64_t lda, sim::VirtAddr b,
                                  std::uint64_t ldb, float beta, sim::VirtAddr c,
                                  std::uint64_t ldc) {
  return sgemm_with_stationary(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
                               config_.default_stationary);
}

support::Status CimRuntime::sgemm_with_stationary(
    std::uint64_t m, std::uint64_t n, std::uint64_t k, float alpha,
    sim::VirtAddr a, std::uint64_t lda, sim::VirtAddr b, std::uint64_t ldb,
    float beta, sim::VirtAddr c, std::uint64_t ldc,
    cim::StationaryOperand stationary) {
  TDO_RETURN_IF_ERROR(sgemm_async(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
                                  stationary));
  return synchronize();
}

support::Status CimRuntime::sgemm_async(std::uint64_t m, std::uint64_t n,
                                        std::uint64_t k, float alpha,
                                        sim::VirtAddr a, std::uint64_t lda,
                                        sim::VirtAddr b, std::uint64_t ldb,
                                        float beta, sim::VirtAddr c,
                                        std::uint64_t ldc,
                                        cim::StationaryOperand stationary) {
  if (!initialized_) {
    return support::failed_precondition("polly_cimInit must be called first");
  }
  if (m == 0 || n == 0 || k == 0) {
    return support::invalid_argument("zero GEMM dimension");
  }
  stats_.offload_calls += 1;

  const std::uint64_t a_bytes = ((m - 1) * lda + k) * kElem;
  const std::uint64_t b_bytes = ((k - 1) * ldb + n) * kElem;
  const std::uint64_t c_bytes = ((m - 1) * ldc + n) * kElem;
  const auto pa_a = translate_checked(a, a_bytes);
  if (!pa_a.is_ok()) return pa_a.status();
  const auto pa_b = translate_checked(b, b_bytes);
  if (!pa_b.is_ok()) return pa_b.status();
  const auto pa_c = translate_checked(c, c_bytes);
  if (!pa_c.is_ok()) return pa_c.status();

  // Exact operand footprints: {base, pitch, width, rows} rectangles rather
  // than flat byte ranges, so the disjoint column stripes of different calls
  // never force a hazard synchronization.
  const Rect rect_a{*pa_a, lda * kElem, k * kElem, m};
  const Rect rect_b{*pa_b, ldb * kElem, n * kElem, k};
  const Rect rect_c{*pa_c, ldc * kElem, n * kElem, m};

  // Hazard ordering against in-flight commands from earlier calls.
  TDO_RETURN_IF_ERROR(sync_for_operands({rect_a, rect_b}, {rect_c}));

  auto max_a = operand_max_abs(a, m, k, lda);
  if (!max_a.is_ok()) return max_a.status();
  auto max_b = operand_max_abs(b, k, n, ldb);
  if (!max_b.is_ok()) return max_b.status();

  const std::uint64_t max_rows = accel_.tile().rows();
  const std::uint64_t max_cols = accel_.tile().cols();
  invalidate_scales(c, c_bytes);
  stream_->note_read(rect_a);
  stream_->note_read(rect_b);
  stream_->note_write(rect_c);

  if (stationary == cim::StationaryOperand::kB) {
    // Stationary B tiles (k x n); stream rows of A; jj/kk tile loops. Each
    // jj column stripe is element-disjoint in C, so stripes round-robin
    // across accelerators; the kk accumulation chain stays on one queue.
    for (std::uint64_t jj = 0; jj < n; jj += max_cols) {
      const std::uint64_t njs = std::min(max_cols, n - jj);
      const int device = static_cast<int>(stream_->next_device());
      for (std::uint64_t kk = 0; kk < k; kk += max_rows) {
        const std::uint64_t ks = std::min(max_rows, k - kk);
        const float beta_eff = kk == 0 ? beta : 1.0f;
        const auto image = make_job_image(
            m, njs, ks, alpha, beta_eff, *pa_a + kk * kElem, lda,
            *pa_b + (kk * ldb + jj) * kElem, ldb, *pa_c + jj * kElem, ldc,
            *max_a, *max_b, stationary, /*skip_weight_load=*/false);
        TDO_RETURN_IF_ERROR(enqueue_job(image, m * njs * ks, ks * njs, device,
                                        /*allow_cpu_fallback=*/kk == 0));
      }
    }
    return support::Status::ok();
  }

  // Stationary A^T tiles (k x m); stream columns of B; ii/kk tile loops.
  for (std::uint64_t ii = 0; ii < m; ii += max_cols) {
    const std::uint64_t ms = std::min(max_cols, m - ii);
    const int device = static_cast<int>(stream_->next_device());
    for (std::uint64_t kk = 0; kk < k; kk += max_rows) {
      const std::uint64_t ks = std::min(max_rows, k - kk);
      const float beta_eff = kk == 0 ? beta : 1.0f;
      const auto image = make_job_image(
          ms, n, ks, alpha, beta_eff, *pa_a + (ii * lda + kk) * kElem, lda,
          *pa_b + kk * ldb * kElem, ldb, *pa_c + ii * ldc * kElem, ldc, *max_a,
          *max_b, stationary, /*skip_weight_load=*/false);
      TDO_RETURN_IF_ERROR(enqueue_job(image, ms * n * ks, ks * ms, device,
                                      /*allow_cpu_fallback=*/kk == 0));
    }
  }
  return support::Status::ok();
}

support::Status CimRuntime::sgemv(bool transpose, std::uint64_t m,
                                  std::uint64_t n, float alpha, sim::VirtAddr a,
                                  std::uint64_t lda, sim::VirtAddr x, float beta,
                                  sim::VirtAddr y) {
  TDO_RETURN_IF_ERROR(sgemv_async(transpose, m, n, alpha, a, lda, x, beta, y));
  return synchronize();
}

support::Status CimRuntime::sgemv_async(bool transpose, std::uint64_t m,
                                        std::uint64_t n, float alpha,
                                        sim::VirtAddr a, std::uint64_t lda,
                                        sim::VirtAddr x, float beta,
                                        sim::VirtAddr y) {
  if (!initialized_) {
    return support::failed_precondition("polly_cimInit must be called first");
  }
  if (m == 0 || n == 0) return support::invalid_argument("zero GEMV dimension");
  stats_.offload_calls += 1;

  const std::uint64_t xlen = transpose ? m : n;
  const std::uint64_t ylen = transpose ? n : m;
  const std::uint64_t a_bytes = ((m - 1) * lda + n) * kElem;
  const auto pa_a = translate_checked(a, a_bytes);
  if (!pa_a.is_ok()) return pa_a.status();
  const auto pa_x = translate_checked(x, xlen * kElem);
  if (!pa_x.is_ok()) return pa_x.status();
  const auto pa_y = translate_checked(y, ylen * kElem);
  if (!pa_y.is_ok()) return pa_y.status();

  const Rect rect_a{*pa_a, lda * kElem, n * kElem, m};
  const Rect rect_x = Rect::linear(*pa_x, xlen * kElem);
  const Rect rect_y = Rect::linear(*pa_y, ylen * kElem);
  TDO_RETURN_IF_ERROR(sync_for_operands({rect_a, rect_x}, {rect_y}));

  auto max_a = operand_max_abs(a, m, n, lda);
  if (!max_a.is_ok()) return max_a.status();
  auto max_x = operand_max_abs(x, 1, xlen, xlen);
  if (!max_x.is_ok()) return max_x.status();

  const std::uint64_t max_rows = accel_.tile().rows();
  const std::uint64_t max_cols = accel_.tile().cols();
  invalidate_scales(y, ylen * kElem);
  stream_->note_read(rect_a);
  stream_->note_read(rect_x);
  stream_->note_write(rect_y);

  if (!transpose) {
    // y[m] = alpha*A*x + beta*y. Stationary A^T (reduce n, out m).
    for (std::uint64_t ii = 0; ii < m; ii += max_cols) {
      const std::uint64_t ms = std::min(max_cols, m - ii);
      const int device = static_cast<int>(stream_->next_device());
      for (std::uint64_t kk = 0; kk < n; kk += max_rows) {
        const std::uint64_t ks = std::min(max_rows, n - kk);
        const float beta_eff = kk == 0 ? beta : 1.0f;
        const auto image = make_job_image(
            ms, 1, ks, alpha, beta_eff, *pa_a + (ii * lda + kk) * kElem, lda,
            *pa_x + kk * kElem, 1, *pa_y + ii * kElem, 1, *max_a, *max_x,
            cim::StationaryOperand::kA, false);
        TDO_RETURN_IF_ERROR(enqueue_job(image, ms * ks, ks * ms, device,
                                        /*allow_cpu_fallback=*/kk == 0));
      }
    }
    return support::Status::ok();
  }

  // y[n] = alpha*A^T*x + beta*y. A itself is the natural stationary layout:
  // crossbar rows = rows of A (reduce m), columns = columns of A (out n).
  for (std::uint64_t jj = 0; jj < n; jj += max_cols) {
    const std::uint64_t njs = std::min(max_cols, n - jj);
    const int device = static_cast<int>(stream_->next_device());
    for (std::uint64_t kk = 0; kk < m; kk += max_rows) {
      const std::uint64_t ks = std::min(max_rows, m - kk);
      const float beta_eff = kk == 0 ? beta : 1.0f;
      // One streamed "row of A" = x^T; output row = y^T.
      const auto image = make_job_image(
          1, njs, ks, alpha, beta_eff, *pa_x + kk * kElem, ks,
          *pa_a + (kk * lda + jj) * kElem, lda, *pa_y + jj * kElem, njs,
          *max_x, *max_a, cim::StationaryOperand::kB, false);
      TDO_RETURN_IF_ERROR(enqueue_job(image, njs * ks, ks * njs, device,
                                      /*allow_cpu_fallback=*/kk == 0));
    }
  }
  return support::Status::ok();
}

support::Status CimRuntime::sgemm_batched(std::uint64_t m, std::uint64_t n,
                                          std::uint64_t k, float alpha,
                                          std::span<const GemmBatchItem> items,
                                          std::uint64_t lda, std::uint64_t ldb,
                                          float beta, std::uint64_t ldc,
                                          cim::StationaryOperand stationary) {
  TDO_RETURN_IF_ERROR(sgemm_batched_async(m, n, k, alpha, items, lda, ldb,
                                          beta, ldc, stationary));
  return synchronize();
}

support::Status CimRuntime::sgemm_batched_async(
    std::uint64_t m, std::uint64_t n, std::uint64_t k, float alpha,
    std::span<const GemmBatchItem> items, std::uint64_t lda, std::uint64_t ldb,
    float beta, std::uint64_t ldc, cim::StationaryOperand stationary) {
  if (!initialized_) {
    return support::failed_precondition("polly_cimInit must be called first");
  }
  if (items.empty()) return support::invalid_argument("empty batch");

  const bool stationary_b = stationary == cim::StationaryOperand::kB;
  const std::uint64_t tile_rows = k;
  const std::uint64_t tile_cols = stationary_b ? n : m;
  if (tile_rows > accel_.tile().rows() || tile_cols > accel_.tile().cols()) {
    // Graceful fallback: oversized batched operands run as individual tiled
    // GEMMs (loses the shared-input endurance benefit, which is exactly why
    // the compiler tiles *before* batching).
    TDO_LOG(kWarn, "cim.rt") << "batched GEMM exceeds crossbar, falling back";
    for (const GemmBatchItem& item : items) {
      TDO_RETURN_IF_ERROR(sgemm_async(m, n, k, alpha, item.a, lda, item.b, ldb,
                                      beta, item.c, ldc, stationary));
    }
    return support::Status::ok();
  }

  stats_.offload_calls += 1;
  stats_.batched_calls += 1;

  // Translate every operand once, order against in-flight producers from
  // earlier calls, then register this call's ranges.
  const std::uint64_t a_bytes = ((m - 1) * lda + k) * kElem;
  const std::uint64_t b_bytes = ((k - 1) * ldb + n) * kElem;
  const std::uint64_t c_bytes = ((m - 1) * ldc + n) * kElem;
  struct ItemAddrs {
    sim::PhysAddr a = 0, b = 0, c = 0;
  };
  std::vector<ItemAddrs> addrs(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto pa_a = translate_checked(items[i].a, a_bytes);
    if (!pa_a.is_ok()) return pa_a.status();
    const auto pa_b = translate_checked(items[i].b, b_bytes);
    if (!pa_b.is_ok()) return pa_b.status();
    const auto pa_c = translate_checked(items[i].c, c_bytes);
    if (!pa_c.is_ok()) return pa_c.status();
    addrs[i] = ItemAddrs{*pa_a, *pa_b, *pa_c};
    TDO_RETURN_IF_ERROR(
        sync_for_operands({Rect{*pa_a, lda * kElem, k * kElem, m},
                           Rect{*pa_b, ldb * kElem, n * kElem, k}},
                          {Rect{*pa_c, ldc * kElem, n * kElem, m}}));
  }
  for (std::size_t i = 0; i < items.size(); ++i) {
    invalidate_scales(items[i].c, c_bytes);
    stream_->note_read(Rect{addrs[i].a, lda * kElem, k * kElem, m});
    stream_->note_read(Rect{addrs[i].b, ldb * kElem, n * kElem, k});
    stream_->note_write(Rect{addrs[i].c, ldc * kElem, n * kElem, m});
  }

  // Round-robin the batch across accelerator instances in contiguous chunks
  // (items of one batched call are independent by construction — the fusion
  // pass only groups reorderable kernels). Chunks preserve stationary reuse.
  auto& mem = system_.memory();
  auto& cpu = system_.cpu();
  const std::uint64_t devices = stream_->device_count();
  const std::uint64_t chunks =
      std::min<std::uint64_t>(devices, items.size());
  const std::uint64_t per_chunk = (items.size() + chunks - 1) / chunks;

  for (std::uint64_t chunk = 0; chunk < chunks; ++chunk) {
    const std::uint64_t begin = chunk * per_chunk;
    const std::uint64_t end =
        std::min<std::uint64_t>(begin + per_chunk, items.size());
    if (begin >= end) break;
    const std::span<const GemmBatchItem> slice = items.subspan(begin, end - begin);

    // Build the chunk's batch table in a device staging buffer (host stores,
    // charged). The buffer stays alive until synchronize().
    auto staging = driver_->alloc_buffer(slice.size() * sizeof(cim::BatchEntry));
    if (!staging.is_ok()) return staging.status();
    staging_.push_back(*staging);
    std::uint64_t offset = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const GemmBatchItem& item = items[i];
      auto max_a = operand_max_abs(item.a, m, k, lda);
      if (!max_a.is_ok()) return max_a.status();
      auto max_b = operand_max_abs(item.b, k, n, ldb);
      if (!max_b.is_ok()) return max_b.status();

      cim::BatchEntry entry;
      entry.pa_a = addrs[i].a;
      entry.pa_b = addrs[i].b;
      entry.pa_c = addrs[i].c;
      entry.scale_a = support::QuantScale::for_max_abs(*max_a).scale;
      entry.scale_b = support::QuantScale::for_max_abs(*max_b).scale;
      mem.write(staging->pa + offset,
                std::span(reinterpret_cast<const std::uint8_t*>(&entry),
                          sizeof entry));
      for (std::uint64_t w = 0; w < sizeof entry; w += 8) {
        cpu.store(staging->pa + offset + w, 8);
      }
      offset += sizeof entry;
    }

    cim::ContextRegs image = make_job_image(
        m, n, k, alpha, beta, 0, lda, 0, ldb, 0, ldc,
        /*scale_a=*/1.0, /*scale_b=*/1.0, stationary, false);
    // Batched jobs carry per-entry pointers/scales; the image's scale fields
    // are placeholders that decode() requires to be positive.
    image.write(cim::Reg::kOpcode,
                static_cast<std::uint64_t>(cim::Opcode::kGemmBatched));
    image.write(cim::Reg::kBatchCount, slice.size());
    image.write(cim::Reg::kBatchTable, staging->pa);
    // The batch shares the stationary tile; only the first item programs it.
    TDO_RETURN_IF_ERROR(enqueue_job(
        image, slice.size() * m * n * k, tile_rows * tile_cols,
        static_cast<int>(stream_->next_device()),
        /*allow_cpu_fallback=*/false));
  }
  return support::Status::ok();
}

}  // namespace tdo::rt
