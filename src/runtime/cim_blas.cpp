#include "runtime/cim_blas.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "obs/trace.hpp"
#include "support/log.hpp"

namespace tdo::rt {

namespace {
constexpr std::uint64_t kElem = 4;  // sizeof(float)
}

CimRuntime::CimRuntime(RuntimeConfig config, sim::System& system,
                       cim::Accelerator& accel)
    : config_{config}, system_{system}, accel_{accel} {
  driver_ = std::make_unique<CimDriver>(config_.driver, system, accel);
  stream_ = std::make_unique<CimStream>(config_.stream, system, *driver_);
  xfer_ = std::make_unique<XferEngine>(config_.xfer, system);
  residency_ = std::make_unique<ResidencyCache>(config_.residency, *driver_,
                                                system.stats());
  pool_ = std::make_unique<HostWorkerPool>(system, config_.split.pool);
  stream_->attach_residency(residency_.get());
  stream_->attach_host_pool(pool_.get());
}

void CimRuntime::set_split_fraction(double fraction) {
  config_.split.cpu_fraction =
      std::clamp(fraction, 0.0, config_.split.max_fraction);
}

support::Status CimRuntime::init(int device_index) {
  if (device_index != 0) {
    return support::not_found("only CIM device 0 exists in this system");
  }
  // Device node open + capability query.
  system_.cpu().charge_instructions(2000);
  initialized_ = true;
  TDO_LOG(kInfo, "cim.rt") << "runtime initialized for device " << device_index
                           << " (" << driver_->device_count()
                           << " accelerator instance(s), stream depth "
                           << stream_->params().depth << ")";
  return support::Status::ok();
}

support::StatusOr<sim::VirtAddr> CimRuntime::malloc_device(std::uint64_t bytes) {
  if (!initialized_) {
    return support::failed_precondition("polly_cimInit must be called first");
  }
  auto buffer = driver_->alloc_buffer(bytes);
  if (!buffer.is_ok()) return buffer.status();
  buffers_.push_back(*buffer);
  return buffer->va;
}

support::Status CimRuntime::free_device(sim::VirtAddr va) {
  const auto it =
      std::find_if(buffers_.begin(), buffers_.end(),
                   [va](const DeviceBuffer& b) { return b.va == va; });
  if (it == buffers_.end()) {
    return support::not_found("free of unknown device buffer");
  }
  // Drain only when an in-flight command actually touches this buffer;
  // releasing a buffer no pending rectangle covers needs no barrier.
  const Rect extent = Rect::linear(it->pa, it->bytes);
  if (stream_->writes_overlap(extent) || stream_->reads_overlap(extent)) {
    TDO_RETURN_IF_ERROR(synchronize());
  }
  // Weights programmed from this buffer must not be reused once the backing
  // memory is recycled.
  residency_->invalidate_overlapping(extent);
  TDO_RETURN_IF_ERROR(driver_->free_buffer(*it));
  buffers_.erase(it);
  return support::Status::ok();
}

support::Status CimRuntime::synchronize() {
  auto status = stream_->synchronize();
  for (const DeviceBuffer& buffer : staging_) {
    const auto freed = driver_->free_buffer(buffer);
    if (!freed.is_ok() && status.is_ok()) status = freed;
  }
  staging_.clear();
  return status;
}

support::Status CimRuntime::sync_for_operands(
    std::initializer_list<Rect> reads, std::initializer_list<Rect> writes) {
  return sync_for_operands(std::span<const Rect>(reads.begin(), reads.size()),
                           std::span<const Rect>(writes.begin(), writes.size()));
}

support::Status CimRuntime::sync_for_operands(std::span<const Rect> reads,
                                              std::span<const Rect> writes) {
  bool hazard = false;
  for (const Rect& r : reads) {
    hazard = hazard || stream_->writes_overlap(r);  // RAW
  }
  for (const Rect& r : writes) {
    hazard = hazard || stream_->writes_overlap(r)  // WAW
             || stream_->reads_overlap(r);         // WAR
  }
  if (!hazard) return support::Status::ok();
  stream_->count_hazard();
  return synchronize();
}

support::Status CimRuntime::copy(CopyDesc::Dir dir, sim::VirtAddr dst,
                                 sim::VirtAddr src, std::uint64_t bytes) {
  return copy_view(dir, dst, src, bytes, bytes, 1);
}

support::Status CimRuntime::copy_view(CopyDesc::Dir dir, sim::VirtAddr dst,
                                      sim::VirtAddr src, std::uint64_t pitch,
                                      std::uint64_t width, std::uint64_t rows) {
  const std::uint64_t bytes = width * rows;
  if (bytes == 0) return support::Status::ok();
  CopyDesc desc;
  bool planned = xfer_->plan_view(dir, dst, src, pitch, width, rows, &desc);
  bool striped = false;
  if (planned && desc.single() && dir == CopyDesc::Dir::kDevToHost) {
    auto handled = striped_copy_back(desc);
    if (!handled.is_ok()) return handled.status();
    striped = *handled;
  }
  if (planned && !striped) {
    // Order the copy against in-flight producers/consumers at rectangle
    // granularity, one check per segment: a chain whose runs are disjoint
    // from every pending rectangle rides the stream without a
    // synchronization.
    std::vector<Rect> reads;
    std::vector<Rect> writes;
    reads.reserve(desc.segments.size());
    writes.reserve(desc.segments.size());
    for (const CopySeg& seg : desc.segments) {
      reads.push_back(seg.src);
      writes.push_back(seg.dst);
    }
    TDO_RETURN_IF_ERROR(sync_for_operands(reads, writes));
  }
  if (planned && !striped && !desc.single()) {
    // Marshal the scatter-gather chain into a staging descriptor table the
    // device DMA fetches (Figure-3 style: the runtime owns the table, the
    // driver cleans its lines at submit). The buffer stays alive until
    // synchronize(), like batch tables — which is why this must come AFTER
    // the hazard ordering above: a hazard-triggered synchronize() releases
    // every staged table, and it must not release this one before the
    // device has fetched it. If the CMA cannot hold the table, the copy
    // degrades to the host path instead of failing.
    auto staging =
        driver_->alloc_buffer(desc.segments.size() * sizeof(cim::CopySegEntry));
    if (staging.is_ok()) {
      staging_.push_back(*staging);
      auto& mem = system_.memory();
      auto& cpu = system_.cpu();
      std::uint64_t offset = 0;
      for (const CopySeg& seg : desc.segments) {
        cim::CopySegEntry entry;
        entry.src_base = seg.src.base;
        entry.src_pitch = seg.src.pitch;
        entry.dst_base = seg.dst.base;
        entry.dst_pitch = seg.dst.pitch;
        entry.width = seg.src.width;
        entry.rows = seg.src.rows;
        mem.write(staging->pa + offset,
                  std::span(reinterpret_cast<const std::uint8_t*>(&entry),
                            sizeof entry));
        for (std::uint64_t w = 0; w < sizeof entry; w += 8) {
          cpu.store(staging->pa + offset + w, 8);
        }
        offset += sizeof entry;
      }
      desc.table_pa = staging->pa;
    } else {
      planned = false;
    }
  }
  if (striped) {
    // Per-stripe copy-back handled the transfer: each producer drained in
    // completion order, its stripes enqueued while the rest kept computing.
  } else if (planned) {
    CimStream::Command command;
    command.kind = CimStream::Command::Kind::kCopy;
    command.copy = desc;
    TDO_RETURN_IF_ERROR(stream_->enqueue(command));
  } else {
    // Host memcpy path (small, over-fragmented, or async copies disabled).
    // The host touches both ranges immediately and they may span scattered
    // frames, so order conservatively: drain whenever the stream is busy
    // (the paper's original behaviour).
    if (!stream_->idle()) TDO_RETURN_IF_ERROR(synchronize());
    TDO_RETURN_IF_ERROR(xfer_->host_copy_2d(dst, src, pitch, width, rows));
  }
  stats_.bytes_copied += bytes;
  const std::uint64_t span = (rows - 1) * pitch + width;
  invalidate_scales(dst, span);
  // Epoch-based residency invalidation: the destination just received a
  // host-visible write, so any cached stationary tile overlapping it is
  // stale. A destination the MMU cannot resolve contiguously falls back to
  // killing everything (it cannot alias a cached tile's contiguous rect,
  // but stay conservative).
  if (planned) {
    for (const CopySeg& seg : desc.segments) {
      residency_->invalidate_overlapping(seg.dst);
    }
  } else if (system_.mmu().is_contiguous(dst, span)) {
    const auto dst_pa = system_.mmu().translate(dst);
    if (dst_pa.is_ok()) {
      residency_->invalidate_overlapping(Rect{*dst_pa, pitch, width, rows});
    } else {
      residency_->invalidate_all();
    }
  } else {
    residency_->invalidate_all();
  }
  return support::Status::ok();
}

support::StatusOr<bool> CimRuntime::striped_copy_back(const CopyDesc& desc) {
  // The split needs a contiguous transfer (span containment below is only a
  // real containment test against a gap-free source), every overlapping
  // in-flight write to be a stripe of a known accelerator, the stripes to
  // exactly partition the copy's source, and the destination to be
  // otherwise unclaimed. Anything else falls back to the ordinary
  // full-drain ordering.
  if (!desc.single()) return false;
  if (!desc.src().contiguous() || !desc.dst().contiguous()) return false;
  const auto stripes = stream_->overlapping_writes(desc.src());
  if (stripes.size() < 2 || stripes.size() > 64) return false;
  if (stream_->writes_overlap(desc.dst()) || stream_->reads_overlap(desc.dst())) {
    return false;
  }
  std::uint64_t covered = 0;
  std::vector<std::size_t> devices;  // distinct, insertion order
  for (std::size_t i = 0; i < stripes.size(); ++i) {
    const TrackedRect& s = stripes[i];
    // Unknown producers and host-pool stripes (pseudo-device past the last
    // accelerator) cannot be drained per-device; take the full-drain path.
    if (s.device < 0 ||
        s.device >= static_cast<int>(driver_->device_count())) {
      return false;
    }
    if (s.rect.base < desc.src().base ||
        s.rect.span_end() > desc.src().span_end()) {
      return false;
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (stripes[j].rect.overlaps(s.rect)) return false;
    }
    covered += s.rect.bytes();
    const auto dev = static_cast<std::size_t>(s.device);
    if (std::find(devices.begin(), devices.end(), dev) == devices.end()) {
      devices.push_back(dev);
    }
  }
  if (covered != desc.bytes()) return false;  // gaps: not an exact partition
  if (devices.size() < 2) return false;       // one producer == full drain

  // Earliest-finishing producer first: its stripes copy out while the later
  // ones are still streaming their tiles.
  std::sort(devices.begin(), devices.end(),
            [this](std::size_t lhs, std::size_t rhs) {
              return driver_->device(lhs).work_done_tick() <
                     driver_->device(rhs).work_done_tick();
            });
  const std::int64_t shift = static_cast<std::int64_t>(desc.dst().base) -
                             static_cast<std::int64_t>(desc.src().base);
  for (const std::size_t dev : devices) {
    TDO_RETURN_IF_ERROR(stream_->drain_device(dev));
    for (const TrackedRect& s : stripes) {
      if (static_cast<std::size_t>(s.device) != dev) continue;
      CopySeg part;
      part.src = s.rect;
      part.dst = s.rect;
      part.dst.base = static_cast<sim::PhysAddr>(
          static_cast<std::int64_t>(s.rect.base) + shift);
      CimStream::Command command;
      command.kind = CimStream::Command::Kind::kCopy;
      command.device = static_cast<int>(dev);
      command.copy.dir = desc.dir;
      command.copy.segments = {part};
      TDO_RETURN_IF_ERROR(stream_->enqueue(command));
    }
  }
  return true;
}

support::Status CimRuntime::host_to_dev(sim::VirtAddr dst, sim::VirtAddr src,
                                        std::uint64_t bytes) {
  return copy(CopyDesc::Dir::kHostToDev, dst, src, bytes);
}

void CimRuntime::invalidate_scales(sim::VirtAddr va, std::uint64_t bytes) {
  for (auto it = scale_cache_.begin(); it != scale_cache_.end();) {
    const std::uint64_t extent =
        ((it->first.rows - 1) * it->first.ld + it->first.row_len) * kElem;
    const bool overlap =
        it->first.va < va + bytes && va < it->first.va + extent;
    it = overlap ? scale_cache_.erase(it) : std::next(it);
  }
}

support::Status CimRuntime::dev_to_host(sim::VirtAddr dst, sim::VirtAddr src,
                                        std::uint64_t bytes) {
  return copy(CopyDesc::Dir::kDevToHost, dst, src, bytes);
}

support::Status CimRuntime::host_to_dev_2d(sim::VirtAddr dst, sim::VirtAddr src,
                                           std::uint64_t pitch,
                                           std::uint64_t width,
                                           std::uint64_t rows) {
  return copy_view(CopyDesc::Dir::kHostToDev, dst, src, pitch, width, rows);
}

support::Status CimRuntime::dev_to_host_2d(sim::VirtAddr dst, sim::VirtAddr src,
                                           std::uint64_t pitch,
                                           std::uint64_t width,
                                           std::uint64_t rows) {
  return copy_view(CopyDesc::Dir::kDevToHost, dst, src, pitch, width, rows);
}

support::StatusOr<sim::PhysAddr> CimRuntime::translate_checked(
    sim::VirtAddr va, std::uint64_t bytes) const {
  if (!system_.mmu().is_contiguous(va, bytes)) {
    return support::failed_precondition(
        "CIM operands must live in physically contiguous device buffers");
  }
  return system_.mmu().translate(va);
}

support::StatusOr<double> CimRuntime::operand_max_abs(sim::VirtAddr va,
                                                      std::uint64_t rows,
                                                      std::uint64_t row_len,
                                                      std::uint64_t ld) {
  if (config_.scale_mode == ScaleMode::kStatic) {
    return config_.static_max_abs;
  }
  // Per-buffer granularity: when the operand is a sub-view of one device
  // buffer, scan (and cache) the whole buffer once. A whole-buffer max-abs
  // is a valid (if slightly coarser) scale for any sub-view, and it is what
  // per-tensor-scale runtimes do in practice.
  const std::uint64_t extent = ((rows - 1) * ld + row_len) * kElem;
  for (const DeviceBuffer& buffer : buffers_) {
    if (va >= buffer.va && va + extent <= buffer.va + buffer.bytes) {
      va = buffer.va;
      rows = 1;
      row_len = buffer.bytes / kElem;
      ld = row_len;
      break;
    }
  }
  const ScaleKey key{va, rows, row_len, ld};
  if (const auto it = scale_cache_.find(key); it != scale_cache_.end()) {
    return it->second;
  }
  stats_.scale_scans += 1;
  auto& cpu = system_.cpu();
  auto& mem = system_.memory();
  const auto base_pa = translate_checked(va, ((rows - 1) * ld + row_len) * kElem);
  if (!base_pa.is_ok()) return base_pa.status();
  double max_abs = 0.0;
  for (std::uint64_t r = 0; r < rows; ++r) {
    const sim::PhysAddr row_pa = *base_pa + r * ld * kElem;
    for (std::uint64_t c = 0; c < row_len; ++c) {
      const float v = mem.read_scalar<float>(row_pa + c * kElem);
      max_abs = std::max(max_abs, static_cast<double>(std::fabs(v)));
      cpu.load(row_pa + c * kElem);
      cpu.issue(sim::InstBundle{.fp_ops = 2, .branches = 1});  // fabs+max+loop
    }
  }
  if (max_abs == 0.0) max_abs = 1.0;  // all-zero operand: any scale is exact
  scale_cache_[key] = max_abs;
  return max_abs;
}

cim::ContextRegs CimRuntime::make_job_image(
    std::uint64_t m, std::uint64_t n, std::uint64_t k, float alpha, float beta,
    sim::PhysAddr pa_a, std::uint64_t lda, sim::PhysAddr pa_b, std::uint64_t ldb,
    sim::PhysAddr pa_c, std::uint64_t ldc, double scale_a, double scale_b,
    cim::StationaryOperand stationary, bool skip_weight_load,
    std::uint32_t tile_row0) const {
  cim::ContextRegs image;
  image.write(cim::Reg::kOpcode, static_cast<std::uint64_t>(cim::Opcode::kGemm));
  image.write(cim::Reg::kM, m);
  image.write(cim::Reg::kN, n);
  image.write(cim::Reg::kK, k);
  image.write(cim::Reg::kPaA, pa_a);
  image.write(cim::Reg::kPaB, pa_b);
  image.write(cim::Reg::kPaC, pa_c);
  image.write(cim::Reg::kLda, lda);
  image.write(cim::Reg::kLdb, ldb);
  image.write(cim::Reg::kLdc, ldc);
  image.write_f32(cim::Reg::kAlpha, alpha);
  image.write_f32(cim::Reg::kBeta, beta);
  image.write_f64(cim::Reg::kScaleA, support::QuantScale::for_max_abs(scale_a).scale);
  image.write_f64(cim::Reg::kScaleB, support::QuantScale::for_max_abs(scale_b).scale);
  image.write(cim::Reg::kStationary, static_cast<std::uint64_t>(stationary));
  image.write(cim::Reg::kTileRow, tile_row0);
  std::uint64_t flags = 0;
  if (config_.double_buffering) flags |= cim::JobFlags::kDoubleBuffering;
  if (skip_weight_load) flags |= cim::JobFlags::kSkipWeightLoad;
  image.write(cim::Reg::kFlags, flags);
  return image;
}

int CimRuntime::topo_place() {
  if (topology_ == nullptr || placement_ == topo::Placement::kBlind ||
      !topology_->has_far()) {
    return -1;
  }
  const std::size_t count = stream_->device_count();
  if (count == 0) return -1;
  const std::size_t start = place_cursor_++ % count;
  int best = -1;
  double best_cost = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t d = (start + i) % count;
    // Marginal cost of one more job on device d: its queue depth weighted by
    // the link's latency multiplier. Near devices win while idle; once their
    // queues run ~multiplier jobs deep, a far pool becomes cheaper and the
    // placement spills — the DTO_IS_NUMA_AWARE break-even, derived from load
    // instead of a static flag.
    const double mult = topology_->latency_multiplier(static_cast<int>(d));
    const double cost =
        static_cast<double>(stream_->device_in_flight(d) + 1) * mult;
    if (best < 0 || cost < best_cost) {
      best = static_cast<int>(d);
      best_cost = cost;
    }
  }
  return best;
}

int CimRuntime::stationary_device(std::span<const WeightKey> keys) {
  // Buffer-centric placement: the accelerator already holding a resident
  // tile wins regardless of tier — reprogramming a crossbar costs more than
  // any link penalty. Caller-centric placement skips the residency override
  // (host locality wins; the DTO_IS_NUMA_AWARE=0 analogue).
  if (placement_ != topo::Placement::kCallerCentric) {
    for (const WeightKey& key : keys) {
      if (const auto resident = residency_->peek(key)) return resident->device;
    }
  }
  if (const int device = topo_place(); device >= 0) return device;
  return static_cast<int>(stream_->next_device());
}

CimRuntime::TilePlacement CimRuntime::place_tile(bool use_cache,
                                                 const WeightKey& key,
                                                 int device) {
  if (use_cache) {
    const auto acq = residency_->acquire(key, device);
    if (acq.cached) {
      return TilePlacement{acq.hit, acq.row0, acq.migrated, acq.shadow_base,
                           acq.shadow_ld};
    }
  }
  // Uncached: the job programs rows [0, key.rows); resident tiles there die.
  residency_->on_programmed(device, 0, key.rows);
  return TilePlacement{};
}

cim::ContextRegs CimRuntime::make_program_image(const WeightKey& key,
                                                std::uint32_t row0) const {
  const bool stationary_b = key.layout == cim::StationaryOperand::kB;
  cim::ContextRegs image;
  image.write(cim::Reg::kOpcode,
              static_cast<std::uint64_t>(cim::Opcode::kProgram));
  // Dimensions that decode() accepts and that land the stationary tile as
  // key.rows x key.cols: the moving operands are never dereferenced (no
  // stream phase), so they alias the stationary pointer.
  const std::uint64_t k = key.rows;
  const std::uint64_t n = stationary_b ? key.cols : 1;
  const std::uint64_t m = stationary_b ? 1 : key.cols;
  image.write(cim::Reg::kM, m);
  image.write(cim::Reg::kN, n);
  image.write(cim::Reg::kK, k);
  if (stationary_b) {
    image.write(cim::Reg::kPaB, key.rect.base);
    image.write(cim::Reg::kLdb, key.ld);
    image.write_f64(cim::Reg::kScaleB, key.scale);
    image.write(cim::Reg::kPaA, key.rect.base);
    image.write(cim::Reg::kLda, std::max<std::uint64_t>(k, 1));
    image.write_f64(cim::Reg::kScaleA, 1.0);
    image.write(cim::Reg::kPaC, key.rect.base);
    image.write(cim::Reg::kLdc, n);
  } else {
    image.write(cim::Reg::kPaA, key.rect.base);
    image.write(cim::Reg::kLda, key.ld);
    image.write_f64(cim::Reg::kScaleA, key.scale);
    image.write(cim::Reg::kPaB, key.rect.base);
    image.write(cim::Reg::kLdb, 1);
    image.write_f64(cim::Reg::kScaleB, 1.0);
    image.write(cim::Reg::kPaC, key.rect.base);
    image.write(cim::Reg::kLdc, 1);
  }
  image.write_f32(cim::Reg::kAlpha, 1.0f);
  image.write_f32(cim::Reg::kBeta, 0.0f);
  image.write(cim::Reg::kStationary, static_cast<std::uint64_t>(key.layout));
  image.write(cim::Reg::kTileRow, row0);
  std::uint64_t flags = 0;
  if (config_.double_buffering) flags |= cim::JobFlags::kDoubleBuffering;
  image.write(cim::Reg::kFlags, flags);
  return image;
}

void CimRuntime::prefetch_predicted(const WeightKey& current, int device) {
  if (!config_.residency.prefetch_on_miss || !residency_->enabled()) return;
  if (current.rect.empty()) return;
  const auto next = residency_->predict_next(current);
  if (!next || next->rect.empty() || next->rows == 0 || next->cols == 0) return;
  if (residency_->peek(*next)) return;  // resident: nothing to hide
  // Never force a drain for a speculation: skip when the predicted operand
  // is still being produced by an in-flight command.
  if (stream_->writes_overlap(next->rect)) return;
  std::uint32_t row0 = 0;
  if (!residency_->prefill(*next, device, &row0)) return;
  const auto image = make_program_image(*next, row0);
  stream_->note_read(next->rect, device);
  const std::uint64_t writes =
      static_cast<std::uint64_t>(next->rows) * next->cols;
  // Behind the jobs just enqueued on this device, the kProgram's weight DMA
  // hides under their stream phase (the same queue-prefetch credit chained
  // jobs use). If the enqueue fails the prefilled entry over-promises; the
  // device-side validation turns the resulting stale hit into a reprogram.
  const auto status = enqueue_job(image, /*macs=*/0, writes, device,
                                  /*allow_cpu_fallback=*/false);
  if (!status.is_ok()) {
    TDO_LOG(kWarn, "cim.rt") << "residency prefetch enqueue failed: "
                             << status.message();
  }
}

support::Status CimRuntime::migrate_residency(const WeightKey& key,
                                              int to_device,
                                              bool peer_to_peer) {
  if (!initialized_) {
    return support::failed_precondition("polly_cimInit must be called first");
  }
  if (!residency_->enabled()) {
    return support::failed_precondition("weight-residency cache is disabled");
  }
  if (to_device < 0 ||
      static_cast<std::size_t>(to_device) >= driver_->device_count()) {
    return support::invalid_argument("migration target device out of range");
  }
  const auto placement = residency_->peek(key);
  if (!placement) {
    return support::not_found("stationary tile is not resident");
  }
  const int from_device = placement->device;
  if (from_device == to_device) return support::Status::ok();
  const sim::Tick migrate_begin = system_.events().now();

  // Destination crossbar window first — nothing to undo when it cannot fit.
  std::uint32_t row0 = 0;
  if (!residency_->reserve_rows(to_device, key.rows, &row0)) {
    return support::resource_exhausted(
        "destination crossbar cannot hold the migrating tile");
  }
  // The staging copy packs the tile's rows tight; it lives as long as the
  // runtime because future hits validate against its address.
  const std::uint64_t bytes = key.rect.width * key.rect.rows;
  auto staging = driver_->alloc_buffer(bytes);
  if (!staging.is_ok()) return staging.status();
  migration_staging_.push_back(*staging);
  const Rect staging_rect{staging->pa, key.rect.width, key.rect.width,
                          key.rect.rows};
  const std::uint64_t shadow_ld = key.rect.width / kElem;

  // Order against in-flight producers of the tile bytes (RAW) and anything
  // still touching the staging window, then move the bytes.
  TDO_RETURN_IF_ERROR(sync_for_operands({key.rect}, {staging_rect}));
  if (peer_to_peer) {
    // One dev->dev hop: the adopting device's DMA pulls the tile directly
    // from the source pool — no host staging buffer, no host round trip.
    CimStream::Command command;
    command.kind = CimStream::Command::Kind::kCopy;
    command.device = to_device;
    command.copy.dir = CopyDesc::Dir::kDevToDev;
    command.copy.segments = {CopySeg{key.rect, staging_rect}};
    TDO_RETURN_IF_ERROR(stream_->enqueue(command));
  } else {
    // Host-bounce reference path: tile crosses to a host-side staging
    // buffer, then crosses again to the destination. The second hop reads
    // what the first wrote, so the hazard machinery serializes them — two
    // full transfers plus a drain, which is exactly what peer-to-peer saves.
    auto bounce = driver_->alloc_buffer(bytes);
    if (!bounce.is_ok()) return bounce.status();
    migration_staging_.push_back(*bounce);
    const Rect bounce_rect{bounce->pa, key.rect.width, key.rect.width,
                           key.rect.rows};
    CimStream::Command out;
    out.kind = CimStream::Command::Kind::kCopy;
    out.device = from_device;
    out.copy.dir = CopyDesc::Dir::kDevToHost;
    out.copy.segments = {CopySeg{key.rect, bounce_rect}};
    TDO_RETURN_IF_ERROR(stream_->enqueue(out));
    TDO_RETURN_IF_ERROR(sync_for_operands({bounce_rect}, {staging_rect}));
    CimStream::Command in;
    in.kind = CimStream::Command::Kind::kCopy;
    in.device = to_device;
    in.copy.dir = CopyDesc::Dir::kHostToDev;
    in.copy.segments = {CopySeg{bounce_rect, staging_rect}};
    TDO_RETURN_IF_ERROR(stream_->enqueue(in));
  }

  // Adopt: program the destination crossbar from the staging copy (the
  // functional bytes already landed — copies execute eagerly — and the
  // kProgram queues behind nothing else on the destination's engine).
  WeightKey shadow_key = key;
  shadow_key.rect = staging_rect;
  shadow_key.ld = shadow_ld;
  stream_->note_read(staging_rect, to_device);
  const auto image = make_program_image(shadow_key, row0);
  TDO_RETURN_IF_ERROR(enqueue_job(
      image, /*macs=*/0,
      static_cast<std::uint64_t>(key.rows) * key.cols, to_device,
      /*allow_cpu_fallback=*/false));

  // Re-home the cache entry. A miss here means a host write invalidated the
  // entry mid-migration: the destination crossbar then holds an unclaimed
  // stale tile and the next use of these weights simply reprograms — the
  // degradation is a wasted program, never a wrong result.
  if (!residency_->rehome(key, from_device, to_device, row0, staging_rect,
                          shadow_ld)) {
    TDO_LOG(kDebug, "cim.rt")
        << "tile invalidated mid-migration; destination reprograms on next use";
  }
  if (obs::enabled()) {
    // Host-side orchestration window of the migration (the copies and the
    // adopting kProgram trace their own spans on the dma/engine tracks).
    const sim::Tick migrate_end = system_.events().now();
    obs::Tracer::instance().span(
        "residency", "migrate_window", migrate_begin,
        migrate_end - migrate_begin,
        {{"from", static_cast<std::uint64_t>(from_device)},
         {"to", static_cast<std::uint64_t>(to_device)},
         {"bytes", bytes},
         {"p2p", peer_to_peer ? 1u : 0u}});
  }
  return support::Status::ok();
}

support::Status CimRuntime::enqueue_job(const cim::ContextRegs& image,
                                        std::uint64_t macs,
                                        std::uint64_t cim_writes, int device,
                                        bool allow_cpu_fallback) {
  stats_.tile_jobs += 1;
  CimStream::Command command;
  command.image = image;
  command.macs = macs;
  command.cim_writes = cim_writes;
  command.device = device;
  command.allow_cpu_fallback = allow_cpu_fallback;
  return stream_->enqueue(command);
}

support::Status CimRuntime::sgemm(std::uint64_t m, std::uint64_t n,
                                  std::uint64_t k, float alpha, sim::VirtAddr a,
                                  std::uint64_t lda, sim::VirtAddr b,
                                  std::uint64_t ldb, float beta, sim::VirtAddr c,
                                  std::uint64_t ldc) {
  return sgemm_with_stationary(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
                               config_.default_stationary);
}

support::Status CimRuntime::sgemm_with_stationary(
    std::uint64_t m, std::uint64_t n, std::uint64_t k, float alpha,
    sim::VirtAddr a, std::uint64_t lda, sim::VirtAddr b, std::uint64_t ldb,
    float beta, sim::VirtAddr c, std::uint64_t ldc,
    cim::StationaryOperand stationary, bool cacheable) {
  TDO_RETURN_IF_ERROR(sgemm_async(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
                                  stationary, cacheable));
  return synchronize();
}

support::Status CimRuntime::sgemm_async(std::uint64_t m, std::uint64_t n,
                                        std::uint64_t k, float alpha,
                                        sim::VirtAddr a, std::uint64_t lda,
                                        sim::VirtAddr b, std::uint64_t ldb,
                                        float beta, sim::VirtAddr c,
                                        std::uint64_t ldc,
                                        cim::StationaryOperand stationary,
                                        bool cacheable) {
  if (!initialized_) {
    return support::failed_precondition("polly_cimInit must be called first");
  }
  if (m == 0 || n == 0 || k == 0) {
    return support::invalid_argument("zero GEMM dimension");
  }
  stats_.offload_calls += 1;

  const std::uint64_t a_bytes = ((m - 1) * lda + k) * kElem;
  const std::uint64_t b_bytes = ((k - 1) * ldb + n) * kElem;
  const std::uint64_t c_bytes = ((m - 1) * ldc + n) * kElem;
  const auto pa_a = translate_checked(a, a_bytes);
  if (!pa_a.is_ok()) return pa_a.status();
  const auto pa_b = translate_checked(b, b_bytes);
  if (!pa_b.is_ok()) return pa_b.status();
  const auto pa_c = translate_checked(c, c_bytes);
  if (!pa_c.is_ok()) return pa_c.status();

  // Exact operand footprints: {base, pitch, width, rows} rectangles rather
  // than flat byte ranges, so the disjoint column stripes of different calls
  // never force a hazard synchronization.
  const Rect rect_a{*pa_a, lda * kElem, k * kElem, m};
  const Rect rect_b{*pa_b, ldb * kElem, n * kElem, k};
  const Rect rect_c{*pa_c, ldc * kElem, n * kElem, m};

  // Hazard ordering against in-flight commands from earlier calls.
  TDO_RETURN_IF_ERROR(sync_for_operands({rect_a, rect_b}, {rect_c}));

  auto max_a = operand_max_abs(a, m, k, lda);
  if (!max_a.is_ok()) return max_a.status();
  auto max_b = operand_max_abs(b, k, n, ldb);
  if (!max_b.is_ok()) return max_b.status();

  const std::uint64_t max_rows = accel_.tile().rows();
  const std::uint64_t max_cols = accel_.tile().cols();
  invalidate_scales(c, c_bytes);
  // The kernel's C output is a host-visible write like any other: a cached
  // stationary tile backed by memory this call overwrites must die.
  residency_->invalidate_overlapping(rect_c);
  stream_->note_read(rect_a);
  stream_->note_read(rect_b);
  const bool use_cache = cacheable && residency_->enabled();
  const double q_a = support::QuantScale::for_max_abs(*max_a).scale;
  const double q_b = support::QuantScale::for_max_abs(*max_b).scale;

  if (stationary == cim::StationaryOperand::kB) {
    // Pseudo-asynchronous split (DTO's DTO_CPU_SIZE_FRACTION): peel the
    // last rows of the M dimension off onto the host worker pool, which
    // runs them concurrently with the accelerators' stripes; the two halves
    // join at the next synchronization point. Row-splitting C keeps both
    // halves element-disjoint, so the only ordering needed is the join.
    std::uint64_t m_dev = m;
    if (config_.split.enabled && pool_->enabled() &&
        config_.split.cpu_fraction > 0.0 && m >= 2 &&
        m * n * k >= config_.split.min_macs) {
      const double fraction = std::clamp(config_.split.cpu_fraction, 0.0,
                                         config_.split.max_fraction);
      const std::uint64_t m_host = std::min<std::uint64_t>(
          m - 1,
          static_cast<std::uint64_t>(static_cast<double>(m) * fraction + 0.5));
      if (m_host >= 1) {
        HostStripeJob job;
        job.m = m_host;
        job.n = n;
        job.k = k;
        job.lda = lda;
        job.ldb = ldb;
        job.ldc = ldc;
        job.pa_a = *pa_a + (m - m_host) * lda * kElem;
        job.pa_b = *pa_b;
        job.pa_c = *pa_c + (m - m_host) * ldc * kElem;
        job.alpha = alpha;
        job.beta = beta;
        const HostPoolTicket ticket = pool_->submit(job);
        if (ticket.accepted) {
          m_dev = m - m_host;
          stats_.split_calls += 1;
          stats_.split_host_macs += m_host * n * k;
          stats_.split_device_macs += m_dev * n * k;
          // The stripe read A/B eagerly, so it leaves no deferred-read
          // hazard; its C rows stay tracked until the join so later
          // consumers order behind the pool.
          stream_->note_write(
              Rect{job.pa_c, ldc * kElem, n * kElem, m_host},
              stream_->host_pool_device_id());
        }
      }
    }

    // Stationary B tiles (k x n); stream rows of A; jj/kk tile loops. Each
    // jj column stripe is element-disjoint in C, so stripes round-robin
    // across accelerators (and are tracked per device for per-stripe
    // copy-back); the kk accumulation chain stays on one queue. A stripe
    // whose weights are resident on some accelerator lands there instead —
    // affinity routing makes the reuse request actually hit.
    for (std::uint64_t jj = 0; jj < n; jj += max_cols) {
      const std::uint64_t njs = std::min(max_cols, n - jj);
      std::vector<WeightKey> keys;
      if (use_cache) {
        for (std::uint64_t kk = 0; kk < k; kk += max_rows) {
          const std::uint64_t ks = std::min(max_rows, k - kk);
          const Rect tile_rect{*pa_b + (kk * ldb + jj) * kElem, ldb * kElem,
                               njs * kElem, ks};
          keys.push_back(WeightKey{tile_rect, ldb, q_b, stationary,
                                   static_cast<std::uint32_t>(ks),
                                   static_cast<std::uint32_t>(njs)});
        }
      }
      const int device = stationary_device(keys);
      stream_->note_write(
          Rect{*pa_c + jj * kElem, ldc * kElem, njs * kElem, m_dev}, device);
      std::size_t tile_index = 0;
      for (std::uint64_t kk = 0; kk < k; kk += max_rows, ++tile_index) {
        const std::uint64_t ks = std::min(max_rows, k - kk);
        const float beta_eff = kk == 0 ? beta : 1.0f;
        const WeightKey key =
            use_cache ? keys[tile_index]
                      : WeightKey{Rect{}, ldb, q_b, stationary,
                                  static_cast<std::uint32_t>(ks),
                                  static_cast<std::uint32_t>(njs)};
        const TilePlacement tile = place_tile(use_cache, key, device);
        // Migrated tiles: the destination crossbar was programmed from the
        // peer-to-peer staging copy, so the job's stationary pointer must
        // reference it for the device-side validation to match.
        const sim::PhysAddr pa_b_eff = tile.skip && tile.migrated
                                           ? tile.shadow_base
                                           : *pa_b + (kk * ldb + jj) * kElem;
        const std::uint64_t ldb_eff =
            tile.skip && tile.migrated ? tile.shadow_ld : ldb;
        const auto image = make_job_image(
            m_dev, njs, ks, alpha, beta_eff, *pa_a + kk * kElem, lda,
            pa_b_eff, ldb_eff, *pa_c + jj * kElem, ldc,
            *max_a, *max_b, stationary, tile.skip, tile.row0);
        TDO_RETURN_IF_ERROR(enqueue_job(image, m_dev * njs * ks,
                                        tile.skip ? 0 : ks * njs, device,
                                        /*allow_cpu_fallback=*/kk == 0));
      }
      if (use_cache && !keys.empty()) prefetch_predicted(keys.back(), device);
    }
    return support::Status::ok();
  }

  // Stationary A^T tiles (k x m); stream columns of B; ii/kk tile loops.
  for (std::uint64_t ii = 0; ii < m; ii += max_cols) {
    const std::uint64_t ms = std::min(max_cols, m - ii);
    std::vector<WeightKey> keys;
    if (use_cache) {
      for (std::uint64_t kk = 0; kk < k; kk += max_rows) {
        const std::uint64_t ks = std::min(max_rows, k - kk);
        const Rect tile_rect{*pa_a + (ii * lda + kk) * kElem, lda * kElem,
                             ks * kElem, ms};
        keys.push_back(WeightKey{tile_rect, lda, q_a, stationary,
                                 static_cast<std::uint32_t>(ks),
                                 static_cast<std::uint32_t>(ms)});
      }
    }
    const int device = stationary_device(keys);
    stream_->note_write(
        Rect{*pa_c + ii * ldc * kElem, ldc * kElem, n * kElem, ms}, device);
    std::size_t tile_index = 0;
    for (std::uint64_t kk = 0; kk < k; kk += max_rows, ++tile_index) {
      const std::uint64_t ks = std::min(max_rows, k - kk);
      const float beta_eff = kk == 0 ? beta : 1.0f;
      const WeightKey key =
          use_cache ? keys[tile_index]
                    : WeightKey{Rect{}, lda, q_a, stationary,
                                static_cast<std::uint32_t>(ks),
                                static_cast<std::uint32_t>(ms)};
      const TilePlacement tile = place_tile(use_cache, key, device);
      const sim::PhysAddr pa_a_eff = tile.skip && tile.migrated
                                         ? tile.shadow_base
                                         : *pa_a + (ii * lda + kk) * kElem;
      const std::uint64_t lda_eff =
          tile.skip && tile.migrated ? tile.shadow_ld : lda;
      const auto image = make_job_image(
          ms, n, ks, alpha, beta_eff, pa_a_eff, lda_eff,
          *pa_b + kk * ldb * kElem, ldb, *pa_c + ii * ldc * kElem, ldc, *max_a,
          *max_b, stationary, tile.skip, tile.row0);
      TDO_RETURN_IF_ERROR(enqueue_job(image, ms * n * ks,
                                      tile.skip ? 0 : ks * ms, device,
                                      /*allow_cpu_fallback=*/kk == 0));
    }
    if (use_cache && !keys.empty()) prefetch_predicted(keys.back(), device);
  }
  return support::Status::ok();
}

support::Status CimRuntime::sgemv(bool transpose, std::uint64_t m,
                                  std::uint64_t n, float alpha, sim::VirtAddr a,
                                  std::uint64_t lda, sim::VirtAddr x, float beta,
                                  sim::VirtAddr y) {
  TDO_RETURN_IF_ERROR(sgemv_async(transpose, m, n, alpha, a, lda, x, beta, y));
  return synchronize();
}

support::Status CimRuntime::sgemv_async(bool transpose, std::uint64_t m,
                                        std::uint64_t n, float alpha,
                                        sim::VirtAddr a, std::uint64_t lda,
                                        sim::VirtAddr x, float beta,
                                        sim::VirtAddr y, bool cacheable) {
  if (!initialized_) {
    return support::failed_precondition("polly_cimInit must be called first");
  }
  if (m == 0 || n == 0) return support::invalid_argument("zero GEMV dimension");
  stats_.offload_calls += 1;

  const std::uint64_t xlen = transpose ? m : n;
  const std::uint64_t ylen = transpose ? n : m;
  const std::uint64_t a_bytes = ((m - 1) * lda + n) * kElem;
  const auto pa_a = translate_checked(a, a_bytes);
  if (!pa_a.is_ok()) return pa_a.status();
  const auto pa_x = translate_checked(x, xlen * kElem);
  if (!pa_x.is_ok()) return pa_x.status();
  const auto pa_y = translate_checked(y, ylen * kElem);
  if (!pa_y.is_ok()) return pa_y.status();

  const Rect rect_a{*pa_a, lda * kElem, n * kElem, m};
  const Rect rect_x = Rect::linear(*pa_x, xlen * kElem);
  const Rect rect_y = Rect::linear(*pa_y, ylen * kElem);
  TDO_RETURN_IF_ERROR(sync_for_operands({rect_a, rect_x}, {rect_y}));

  auto max_a = operand_max_abs(a, m, n, lda);
  if (!max_a.is_ok()) return max_a.status();
  auto max_x = operand_max_abs(x, 1, xlen, xlen);
  if (!max_x.is_ok()) return max_x.status();

  const std::uint64_t max_rows = accel_.tile().rows();
  const std::uint64_t max_cols = accel_.tile().cols();
  invalidate_scales(y, ylen * kElem);
  residency_->invalidate_overlapping(rect_y);
  stream_->note_read(rect_a);
  stream_->note_read(rect_x);
  const bool use_cache = cacheable && residency_->enabled();
  const double q_a = support::QuantScale::for_max_abs(*max_a).scale;

  if (!transpose) {
    // y[m] = alpha*A*x + beta*y. Stationary A^T (reduce n, out m).
    for (std::uint64_t ii = 0; ii < m; ii += max_cols) {
      const std::uint64_t ms = std::min(max_cols, m - ii);
      std::vector<WeightKey> keys;
      if (use_cache) {
        for (std::uint64_t kk = 0; kk < n; kk += max_rows) {
          const std::uint64_t ks = std::min(max_rows, n - kk);
          const Rect tile_rect{*pa_a + (ii * lda + kk) * kElem, lda * kElem,
                               ks * kElem, ms};
          keys.push_back(WeightKey{tile_rect, lda, q_a,
                                   cim::StationaryOperand::kA,
                                   static_cast<std::uint32_t>(ks),
                                   static_cast<std::uint32_t>(ms)});
        }
      }
      const int device = stationary_device(keys);
      stream_->note_write(Rect::linear(*pa_y + ii * kElem, ms * kElem), device);
      std::size_t tile_index = 0;
      for (std::uint64_t kk = 0; kk < n; kk += max_rows, ++tile_index) {
        const std::uint64_t ks = std::min(max_rows, n - kk);
        const float beta_eff = kk == 0 ? beta : 1.0f;
        const WeightKey key =
            use_cache ? keys[tile_index]
                      : WeightKey{Rect{}, lda, q_a, cim::StationaryOperand::kA,
                                  static_cast<std::uint32_t>(ks),
                                  static_cast<std::uint32_t>(ms)};
        const TilePlacement tile = place_tile(use_cache, key, device);
        const sim::PhysAddr pa_a_eff = tile.skip && tile.migrated
                                           ? tile.shadow_base
                                           : *pa_a + (ii * lda + kk) * kElem;
        const std::uint64_t lda_eff =
            tile.skip && tile.migrated ? tile.shadow_ld : lda;
        const auto image = make_job_image(
            ms, 1, ks, alpha, beta_eff, pa_a_eff, lda_eff,
            *pa_x + kk * kElem, 1, *pa_y + ii * kElem, 1, *max_a, *max_x,
            cim::StationaryOperand::kA, tile.skip, tile.row0);
        TDO_RETURN_IF_ERROR(enqueue_job(image, ms * ks,
                                        tile.skip ? 0 : ks * ms, device,
                                        /*allow_cpu_fallback=*/kk == 0));
      }
      if (use_cache && !keys.empty()) prefetch_predicted(keys.back(), device);
    }
    return support::Status::ok();
  }

  // y[n] = alpha*A^T*x + beta*y. A itself is the natural stationary layout:
  // crossbar rows = rows of A (reduce m), columns = columns of A (out n).
  for (std::uint64_t jj = 0; jj < n; jj += max_cols) {
    const std::uint64_t njs = std::min(max_cols, n - jj);
    std::vector<WeightKey> keys;
    if (use_cache) {
      for (std::uint64_t kk = 0; kk < m; kk += max_rows) {
        const std::uint64_t ks = std::min(max_rows, m - kk);
        const Rect tile_rect{*pa_a + (kk * lda + jj) * kElem, lda * kElem,
                             njs * kElem, ks};
        keys.push_back(WeightKey{tile_rect, lda, q_a,
                                 cim::StationaryOperand::kB,
                                 static_cast<std::uint32_t>(ks),
                                 static_cast<std::uint32_t>(njs)});
      }
    }
    const int device = stationary_device(keys);
    stream_->note_write(Rect::linear(*pa_y + jj * kElem, njs * kElem), device);
    std::size_t tile_index = 0;
    for (std::uint64_t kk = 0; kk < m; kk += max_rows, ++tile_index) {
      const std::uint64_t ks = std::min(max_rows, m - kk);
      const float beta_eff = kk == 0 ? beta : 1.0f;
      const WeightKey key =
          use_cache ? keys[tile_index]
                    : WeightKey{Rect{}, lda, q_a, cim::StationaryOperand::kB,
                                static_cast<std::uint32_t>(ks),
                                static_cast<std::uint32_t>(njs)};
      const TilePlacement tile = place_tile(use_cache, key, device);
      const sim::PhysAddr pa_stat_eff = tile.skip && tile.migrated
                                            ? tile.shadow_base
                                            : *pa_a + (kk * lda + jj) * kElem;
      const std::uint64_t ld_stat_eff =
          tile.skip && tile.migrated ? tile.shadow_ld : lda;
      // One streamed "row of A" = x^T; output row = y^T.
      const auto image = make_job_image(
          1, njs, ks, alpha, beta_eff, *pa_x + kk * kElem, ks,
          pa_stat_eff, ld_stat_eff, *pa_y + jj * kElem, njs,
          *max_x, *max_a, cim::StationaryOperand::kB, tile.skip, tile.row0);
      TDO_RETURN_IF_ERROR(enqueue_job(image, njs * ks,
                                      tile.skip ? 0 : ks * njs, device,
                                      /*allow_cpu_fallback=*/kk == 0));
    }
    if (use_cache && !keys.empty()) prefetch_predicted(keys.back(), device);
  }
  return support::Status::ok();
}

support::Status CimRuntime::sgemm_batched(std::uint64_t m, std::uint64_t n,
                                          std::uint64_t k, float alpha,
                                          std::span<const GemmBatchItem> items,
                                          std::uint64_t lda, std::uint64_t ldb,
                                          float beta, std::uint64_t ldc,
                                          cim::StationaryOperand stationary,
                                          bool cacheable, int device) {
  TDO_RETURN_IF_ERROR(sgemm_batched_async(m, n, k, alpha, items, lda, ldb,
                                          beta, ldc, stationary, cacheable,
                                          device));
  return synchronize();
}

std::optional<int> CimRuntime::weight_affinity(std::uint64_t m, std::uint64_t n,
                                               std::uint64_t k,
                                               sim::VirtAddr stat,
                                               std::uint64_t ld_stat,
                                               cim::StationaryOperand stationary) {
  if (!initialized_ || !residency_->enabled()) return std::nullopt;
  if (m == 0 || n == 0 || k == 0) return std::nullopt;
  const bool stationary_b = stationary == cim::StationaryOperand::kB;
  // Stationary B: a k x n operand; stationary A: m x k (the dispatch path
  // keys tiles of A^T with A's row-major footprint).
  const std::uint64_t stat_rows = stationary_b ? k : m;
  const std::uint64_t stat_cols = stationary_b ? n : k;
  const std::uint64_t bytes = ((stat_rows - 1) * ld_stat + stat_cols) * kElem;
  const auto pa = translate_checked(stat, bytes);
  if (!pa.is_ok()) return std::nullopt;
  auto max_stat = operand_max_abs(stat, stat_rows, stat_cols, ld_stat);
  if (!max_stat.is_ok()) return std::nullopt;
  const double q = support::QuantScale::for_max_abs(*max_stat).scale;

  const std::uint64_t max_rows = accel_.tile().rows();
  const std::uint64_t max_cols = accel_.tile().cols();
  const std::uint64_t outer = stationary_b ? n : m;
  for (std::uint64_t jj = 0; jj < outer; jj += max_cols) {
    const std::uint64_t js = std::min(max_cols, outer - jj);
    for (std::uint64_t kk = 0; kk < k; kk += max_rows) {
      const std::uint64_t ks = std::min(max_rows, k - kk);
      const Rect tile_rect =
          stationary_b
              ? Rect{*pa + (kk * ld_stat + jj) * kElem, ld_stat * kElem,
                     js * kElem, ks}
              : Rect{*pa + (jj * ld_stat + kk) * kElem, ld_stat * kElem,
                     ks * kElem, js};
      const WeightKey key{tile_rect, ld_stat, q, stationary,
                          static_cast<std::uint32_t>(ks),
                          static_cast<std::uint32_t>(js)};
      if (const auto resident = residency_->peek(key)) return resident->device;
    }
  }
  return std::nullopt;
}

support::Status CimRuntime::sgemm_batched_async(
    std::uint64_t m, std::uint64_t n, std::uint64_t k, float alpha,
    std::span<const GemmBatchItem> items, std::uint64_t lda, std::uint64_t ldb,
    float beta, std::uint64_t ldc, cim::StationaryOperand stationary,
    bool cacheable, int device) {
  if (!initialized_) {
    return support::failed_precondition("polly_cimInit must be called first");
  }
  if (items.empty()) return support::invalid_argument("empty batch");

  const bool stationary_b = stationary == cim::StationaryOperand::kB;
  const std::uint64_t tile_rows = k;
  const std::uint64_t tile_cols = stationary_b ? n : m;
  if (tile_rows > accel_.tile().rows() || tile_cols > accel_.tile().cols()) {
    // Graceful fallback: oversized batched operands run as individual tiled
    // GEMMs (loses the shared-input endurance benefit, which is exactly why
    // the compiler tiles *before* batching).
    TDO_LOG(kWarn, "cim.rt") << "batched GEMM exceeds crossbar, falling back";
    for (const GemmBatchItem& item : items) {
      TDO_RETURN_IF_ERROR(sgemm_async(m, n, k, alpha, item.a, lda, item.b, ldb,
                                      beta, item.c, ldc, stationary,
                                      cacheable));
    }
    return support::Status::ok();
  }
  // Cross-call residency applies when the whole batch shares one stationary
  // operand (the conv/T lowering and shared-input fusion groups do).
  bool shared_stationary = true;
  for (const GemmBatchItem& item : items) {
    const sim::VirtAddr stat = stationary_b ? item.b : item.a;
    const sim::VirtAddr first = stationary_b ? items[0].b : items[0].a;
    shared_stationary = shared_stationary && stat == first;
  }
  const bool use_cache =
      cacheable && shared_stationary && residency_->enabled();

  stats_.offload_calls += 1;
  stats_.batched_calls += 1;

  // Translate every operand once, order against in-flight producers from
  // earlier calls, then register this call's ranges.
  const std::uint64_t a_bytes = ((m - 1) * lda + k) * kElem;
  const std::uint64_t b_bytes = ((k - 1) * ldb + n) * kElem;
  const std::uint64_t c_bytes = ((m - 1) * ldc + n) * kElem;
  struct ItemAddrs {
    sim::PhysAddr a = 0, b = 0, c = 0;
  };
  std::vector<ItemAddrs> addrs(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto pa_a = translate_checked(items[i].a, a_bytes);
    if (!pa_a.is_ok()) return pa_a.status();
    const auto pa_b = translate_checked(items[i].b, b_bytes);
    if (!pa_b.is_ok()) return pa_b.status();
    const auto pa_c = translate_checked(items[i].c, c_bytes);
    if (!pa_c.is_ok()) return pa_c.status();
    addrs[i] = ItemAddrs{*pa_a, *pa_b, *pa_c};
    TDO_RETURN_IF_ERROR(
        sync_for_operands({Rect{*pa_a, lda * kElem, k * kElem, m},
                           Rect{*pa_b, ldb * kElem, n * kElem, k}},
                          {Rect{*pa_c, ldc * kElem, n * kElem, m}}));
  }
  // Round-robin the batch across accelerator instances in contiguous chunks
  // (items of one batched call are independent by construction — the fusion
  // pass only groups reorderable kernels). Chunks preserve stationary reuse.
  // A caller-pinned device (serving scheduler placement) keeps the batch
  // whole on that accelerator.
  auto& mem = system_.memory();
  auto& cpu = system_.cpu();
  const std::uint64_t devices = stream_->device_count();
  const std::uint64_t chunks =
      device >= 0 ? 1 : std::min<std::uint64_t>(devices, items.size());
  const std::uint64_t per_chunk = (items.size() + chunks - 1) / chunks;

  // The shared stationary tile's identity (for the residency cache).
  auto max_stat = operand_max_abs(stationary_b ? items[0].b : items[0].a,
                                  stationary_b ? k : m,
                                  stationary_b ? n : k,
                                  stationary_b ? ldb : lda);
  if (!max_stat.is_ok()) return max_stat.status();
  const Rect stationary_rect =
      stationary_b ? Rect{addrs[0].b, ldb * kElem, n * kElem, k}
                   : Rect{addrs[0].a, lda * kElem, k * kElem, m};
  const WeightKey key{stationary_rect, stationary_b ? ldb : lda,
                      support::QuantScale::for_max_abs(*max_stat).scale,
                      stationary,
                      static_cast<std::uint32_t>(tile_rows),
                      static_cast<std::uint32_t>(tile_cols)};

  // Chunk device pre-draw: a single-chunk batch whose weights are resident
  // somewhere lands there (affinity); a split batch keeps the round-robin
  // spread and caches the tile per device instead.
  std::vector<int> chunk_devices(chunks, -1);
  if (device >= 0) {
    chunk_devices[0] =
        static_cast<int>(static_cast<std::size_t>(device) % devices);
  } else if (use_cache && chunks == 1) {
    if (const auto resident = residency_->peek(key)) {
      chunk_devices[0] = resident->device;
    }
  }
  for (std::uint64_t chunk = 0; chunk < chunks; ++chunk) {
    if (chunk_devices[chunk] < 0) {
      const int placed = topo_place();
      chunk_devices[chunk] =
          placed >= 0 ? placed : static_cast<int>(stream_->next_device());
    }
  }

  for (std::size_t i = 0; i < items.size(); ++i) {
    const int device = chunk_devices[std::min<std::uint64_t>(
        i / per_chunk, chunks - 1)];
    invalidate_scales(items[i].c, c_bytes);
    residency_->invalidate_overlapping(Rect{addrs[i].c, ldc * kElem,
                                            n * kElem, m});
    stream_->note_read(Rect{addrs[i].a, lda * kElem, k * kElem, m}, device);
    stream_->note_read(Rect{addrs[i].b, ldb * kElem, n * kElem, k}, device);
    stream_->note_write(Rect{addrs[i].c, ldc * kElem, n * kElem, m}, device);
  }

  for (std::uint64_t chunk = 0; chunk < chunks; ++chunk) {
    const std::uint64_t begin = chunk * per_chunk;
    const std::uint64_t end =
        std::min<std::uint64_t>(begin + per_chunk, items.size());
    if (begin >= end) break;
    const std::span<const GemmBatchItem> slice = items.subspan(begin, end - begin);

    // Build the chunk's batch table in a device staging buffer (host stores,
    // charged). The buffer stays alive until synchronize().
    auto staging = driver_->alloc_buffer(slice.size() * sizeof(cim::BatchEntry));
    if (!staging.is_ok()) return staging.status();
    staging_.push_back(*staging);
    std::uint64_t offset = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const GemmBatchItem& item = items[i];
      auto max_a = operand_max_abs(item.a, m, k, lda);
      if (!max_a.is_ok()) return max_a.status();
      auto max_b = operand_max_abs(item.b, k, n, ldb);
      if (!max_b.is_ok()) return max_b.status();

      cim::BatchEntry entry;
      entry.pa_a = addrs[i].a;
      entry.pa_b = addrs[i].b;
      entry.pa_c = addrs[i].c;
      entry.scale_a = support::QuantScale::for_max_abs(*max_a).scale;
      entry.scale_b = support::QuantScale::for_max_abs(*max_b).scale;
      mem.write(staging->pa + offset,
                std::span(reinterpret_cast<const std::uint8_t*>(&entry),
                          sizeof entry));
      for (std::uint64_t w = 0; w < sizeof entry; w += 8) {
        cpu.store(staging->pa + offset + w, 8);
      }
      offset += sizeof entry;
    }

    const int device = chunk_devices[chunk];
    const TilePlacement tile = place_tile(use_cache, key, device);
    cim::ContextRegs image = make_job_image(
        m, n, k, alpha, beta, 0, lda, 0, ldb, 0, ldc,
        /*scale_a=*/1.0, /*scale_b=*/1.0, stationary, tile.skip, tile.row0);
    // Batched jobs carry per-entry pointers/scales; the image's scale fields
    // are placeholders that decode() requires to be positive.
    image.write(cim::Reg::kOpcode,
                static_cast<std::uint64_t>(cim::Opcode::kGemmBatched));
    image.write(cim::Reg::kBatchCount, slice.size());
    image.write(cim::Reg::kBatchTable, staging->pa);
    // The batch shares the stationary tile; only the first item programs it
    // (none do when the residency cache validated a resident tile).
    TDO_RETURN_IF_ERROR(enqueue_job(
        image, slice.size() * m * n * k,
        tile.skip ? 0 : tile_rows * tile_cols, device,
        /*allow_cpu_fallback=*/false));
  }
  if (use_cache) prefetch_predicted(key, chunk_devices[0]);
  return support::Status::ok();
}

}  // namespace tdo::rt
