#include "runtime/xfer.hpp"

#include <algorithm>
#include <array>

namespace tdo::rt {

namespace {

/// Floor division for the (possibly negative) numerators of the row-index
/// bounds below. Simulated physical addresses fit comfortably in int64.
[[nodiscard]] std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

/// Does any row of `r` intersect the byte interval [lo, hi)?
[[nodiscard]] bool rect_hits_interval(const Rect& r, sim::PhysAddr lo,
                                      sim::PhysAddr hi) {
  if (lo >= hi) return false;
  const auto base = static_cast<std::int64_t>(r.base);
  const auto width = static_cast<std::int64_t>(r.width);
  const auto slo = static_cast<std::int64_t>(lo);
  const auto shi = static_cast<std::int64_t>(hi);
  if (r.rows == 1 || r.pitch == 0) {
    // Degenerate: all rows occupy [base, base + width).
    return base < shi && slo < base + width;
  }
  const auto pitch = static_cast<std::int64_t>(r.pitch);
  // Row i occupies [base + i*pitch, base + i*pitch + width). It intersects
  // [lo, hi) iff  base + i*pitch < hi  and  lo < base + i*pitch + width:
  //   i > (lo - base - width) / pitch   and   i < (hi - base) / pitch.
  const std::int64_t first = floor_div(slo - base - width, pitch) + 1;
  const std::int64_t last = floor_div(shi - base - 1, pitch);
  const std::int64_t lo_row = std::max<std::int64_t>(first, 0);
  const std::int64_t hi_row =
      std::min<std::int64_t>(last, static_cast<std::int64_t>(r.rows) - 1);
  return lo_row <= hi_row;
}

}  // namespace

bool Rect::overlaps(const Rect& other) const {
  if (empty() || other.empty()) return false;
  // Cheap bounding-range rejection first.
  if (base >= other.span_end() || other.base >= span_end()) return false;
  // Precise test: walk the rows of the shorter rectangle and solve for the
  // other's row indices analytically — O(min(rows)) instead of O(rows*rows).
  const Rect& walk = rows <= other.rows ? *this : other;
  const Rect& solve = rows <= other.rows ? other : *this;
  for (std::uint64_t r = 0; r < walk.rows; ++r) {
    const sim::PhysAddr lo = walk.base + r * walk.pitch;
    if (rect_hits_interval(solve, lo, lo + walk.width)) return true;
  }
  return false;
}

bool RectTracker::reads_overlap(const Rect& r) const {
  for (const TrackedRect& pending : reads_) {
    if (pending.rect.overlaps(r)) return true;
  }
  return false;
}

bool RectTracker::writes_overlap(const Rect& r) const {
  for (const TrackedRect& pending : writes_) {
    if (pending.rect.overlaps(r)) return true;
  }
  return false;
}

std::vector<TrackedRect> RectTracker::writes_overlapping(const Rect& r) const {
  std::vector<TrackedRect> out;
  for (const TrackedRect& pending : writes_) {
    if (pending.rect.overlaps(r)) out.push_back(pending);
  }
  return out;
}

void RectTracker::remove_device(int device) {
  const auto tagged = [device](const TrackedRect& t) {
    return t.device == device;
  };
  reads_.erase(std::remove_if(reads_.begin(), reads_.end(), tagged),
               reads_.end());
  writes_.erase(std::remove_if(writes_.begin(), writes_.end(), tagged),
                writes_.end());
}

cim::ContextRegs make_copy_image(const CopyDesc& desc) {
  cim::ContextRegs image;
  image.write(cim::Reg::kOpcode, static_cast<std::uint64_t>(cim::Opcode::kCopy));
  image.write(cim::Reg::kCopyDir, static_cast<std::uint64_t>(desc.dir));
  image.write(cim::Reg::kSegCount, desc.segments.size());
  if (desc.single()) {
    image.write(cim::Reg::kPaA, desc.src().base);
    image.write(cim::Reg::kLda, desc.src().pitch);
    image.write(cim::Reg::kPaC, desc.dst().base);
    image.write(cim::Reg::kLdc, desc.dst().pitch);
    image.write(cim::Reg::kM, desc.src().rows);
    image.write(cim::Reg::kN, desc.src().width);
    return image;
  }
  // Scatter-gather chain: the device fetches CopySegEntry[kSegCount] from
  // kSegTable. M/N carry 1 x total-bytes so the driver's range-granular
  // cache clean still covers the full transfer.
  image.write(cim::Reg::kSegTable, desc.table_pa);
  image.write(cim::Reg::kM, 1);
  image.write(cim::Reg::kN, desc.bytes());
  return image;
}

bool XferEngine::plan(CopyDesc::Dir dir, sim::VirtAddr dst, sim::VirtAddr src,
                      std::uint64_t bytes, CopyDesc* desc) const {
  return plan_view(dir, dst, src, bytes, bytes, 1, desc);
}

bool XferEngine::plan_view(CopyDesc::Dir dir, sim::VirtAddr dst,
                           sim::VirtAddr src, std::uint64_t pitch,
                           std::uint64_t width, std::uint64_t rows,
                           CopyDesc* desc) const {
  const std::uint64_t total = width * rows;
  // Size threshold on the whole copy, not per segment: the descriptor chain
  // amortizes the submission round trip, so a tiny tail segment of a large
  // scattered copy must not force the host-memcpy path.
  if (!params_.async_copies || total == 0 || total < min_async_bytes()) {
    return false;
  }
  if (rows > 1 && pitch < width) return false;  // self-overlapping view
  auto& mmu = system_.mmu();

  // Pass 1 — linear runs: walk every row in page-bounded steps, splitting
  // wherever either side's physical address breaks contiguity.
  struct Run {
    sim::PhysAddr src = 0;
    sim::PhysAddr dst = 0;
    std::uint64_t bytes = 0;
  };
  std::vector<Run> runs;
  for (std::uint64_t r = 0; r < rows; ++r) {
    std::uint64_t off = 0;
    while (off < width) {
      const sim::VirtAddr src_va = src + r * pitch + off;
      const sim::VirtAddr dst_va = dst + r * pitch + off;
      const std::uint64_t step = std::min(
          {width - off, sim::kPageSize - sim::page_offset(src_va),
           sim::kPageSize - sim::page_offset(dst_va)});
      const auto src_pa = mmu.translate(src_va);
      const auto dst_pa = mmu.translate(dst_va);
      if (!src_pa.is_ok() || !dst_pa.is_ok()) return false;
      if (!runs.empty() && runs.back().src + runs.back().bytes == *src_pa &&
          runs.back().dst + runs.back().bytes == *dst_pa) {
        runs.back().bytes += step;
      } else {
        runs.push_back(Run{*src_pa, *dst_pa, step});
      }
      off += step;
    }
  }

  // Pass 2 — pitched coalescing: equal-width runs whose starts advance by a
  // constant physical stride on both sides fold back into one rectangle
  // (the common strided-view case where every row is contiguous but rows
  // are pitch apart), keeping the descriptor chain short.
  std::vector<CopySeg> segments;
  for (const Run& run : runs) {
    if (!segments.empty()) {
      CopySeg& seg = segments.back();
      if (run.bytes == seg.src.width && run.src > seg.src.base &&
          run.dst > seg.dst.base) {
        if (seg.src.rows == 1) {
          // Second equal-width run: adopt the strides as the pitches.
          const std::uint64_t src_pitch = run.src - seg.src.base;
          const std::uint64_t dst_pitch = run.dst - seg.dst.base;
          if (src_pitch >= seg.src.width && dst_pitch >= seg.dst.width) {
            seg.src.pitch = src_pitch;
            seg.dst.pitch = dst_pitch;
            seg.src.rows = seg.dst.rows = 2;
            continue;
          }
        } else if (run.src == seg.src.base + seg.src.rows * seg.src.pitch &&
                   run.dst == seg.dst.base + seg.dst.rows * seg.dst.pitch) {
          ++seg.src.rows;
          ++seg.dst.rows;
          continue;
        }
      }
    }
    CopySeg seg;
    seg.src = Rect::linear(run.src, run.bytes);
    seg.dst = Rect::linear(run.dst, run.bytes);
    segments.push_back(seg);
  }

  if (segments.size() > params_.max_segments) return false;
  desc->dir = dir;
  desc->segments = std::move(segments);
  desc->table_pa = 0;
  return true;
}

support::Status XferEngine::host_copy_row(sim::VirtAddr dst, sim::VirtAddr src,
                                          std::uint64_t bytes) {
  auto& mmu = system_.mmu();
  auto& cpu = system_.cpu();
  auto& mem = system_.memory();
  std::array<std::uint8_t, 64> chunk;
  std::uint64_t done = 0;
  while (done < bytes) {
    // Clamp each chunk at page boundaries: the ranges may map to scattered
    // physical frames, so a chunk must never assume contiguity past the page
    // either virtual address sits in.
    const std::uint64_t n = std::min(
        {std::uint64_t{64}, bytes - done,
         sim::kPageSize - sim::page_offset(src + done),
         sim::kPageSize - sim::page_offset(dst + done)});
    const auto src_pa = mmu.translate(src + done);
    if (!src_pa.is_ok()) return src_pa.status();
    const auto dst_pa = mmu.translate(dst + done);
    if (!dst_pa.is_ok()) return dst_pa.status();
    mem.read(*src_pa, std::span(chunk.data(), n));
    mem.write(*dst_pa, std::span<const std::uint8_t>(chunk.data(), n));
    // NEON-style copy: ~9 instructions per 64-byte chunk (4x ldp/stp pairs
    // plus loop bookkeeping). Sequential copies prefetch well, so instead of
    // charging a cold cache miss per line, host_copy_2d charges streaming
    // DRAM time once for the whole transfer.
    cpu.issue(sim::InstBundle{.int_alu = 8, .branches = 1});
    done += n;
  }
  return support::Status::ok();
}

support::Status XferEngine::host_copy(sim::VirtAddr dst, sim::VirtAddr src,
                                      std::uint64_t bytes) {
  return host_copy_2d(dst, src, bytes, bytes, 1);
}

support::Status XferEngine::host_copy_2d(sim::VirtAddr dst, sim::VirtAddr src,
                                         std::uint64_t pitch,
                                         std::uint64_t width,
                                         std::uint64_t rows) {
  // memcpy performed by the host CPU: the CMA buffer is mapped cacheable, so
  // the copy runs through the cache hierarchy; coherence is reestablished by
  // the driver's flush at submit time.
  for (std::uint64_t r = 0; r < rows; ++r) {
    TDO_RETURN_IF_ERROR(host_copy_row(dst + r * pitch, src + r * pitch, width));
  }
  // Streaming bandwidth: read + write traffic at LPDDR3-933 effective rate.
  auto& cpu = system_.cpu();
  const std::uint64_t bytes = width * rows;
  constexpr double kCopyBandwidthBytesPerSec = 3.3e9;
  const double copy_sec =
      2.0 * static_cast<double>(bytes) / kCopyBandwidthBytesPerSec;
  const auto stall_cycles = static_cast<std::uint64_t>(
      copy_sec * cpu.params().frequency.hertz());
  cpu.charge_cycles(stall_cycles);
  host_copies_.add();
  host_copy_bytes_.add(bytes);
  return support::Status::ok();
}

}  // namespace tdo::rt
