#include "runtime/driver.hpp"

#include "cim/accelerator.hpp"
#include "support/log.hpp"

namespace tdo::rt {

CimDriver::CimDriver(DriverParams params, sim::System& system,
                     cim::Accelerator& accel)
    : params_{params}, system_{system}, accels_{&accel},
      cma_{system.mmu().cma_region()} {
  accel.set_device_ordinal(0);
  system.stats().register_counter("driver.ioctls", &ioctls_);
  system.stats().register_counter("driver.cache_flushes", &flushes_);
}

std::size_t CimDriver::add_device(cim::Accelerator& accel) {
  accels_.push_back(&accel);
  accel.set_device_ordinal(accels_.size() - 1);
  return accels_.size() - 1;
}

void CimDriver::charge_syscall() {
  ioctls_.add();
  system_.cpu().charge_instructions(params_.syscall_instructions);
}

void CimDriver::charge_mmio_access() {
  system_.cpu().charge_instructions(params_.mmio_instructions);
  system_.cpu().charge_cycles(params_.mmio_cycles);
}

support::Status CimDriver::write_reg(cim::Reg reg, std::uint64_t value,
                                     std::size_t device) {
  charge_mmio_access();
  return system_.bus().write_scalar<std::uint64_t>(
      accels_[device]->params().pmio_base + cim::reg_offset(reg), value);
}

support::StatusOr<std::uint64_t> CimDriver::read_reg(cim::Reg reg,
                                                     std::size_t device) {
  charge_mmio_access();
  return system_.bus().read_scalar<std::uint64_t>(
      accels_[device]->params().pmio_base + cim::reg_offset(reg));
}

support::StatusOr<DeviceBuffer> CimDriver::alloc_buffer(std::uint64_t bytes) {
  charge_syscall();
  auto pa = cma_.allocate(bytes);
  if (!pa.is_ok()) return pa.status();
  auto va = system_.mmu().map_physical(*pa, bytes);
  if (!va.is_ok()) {
    (void)cma_.release(*pa);
    return va.status();
  }
  // Page-table population cost, proportional to the mapping size.
  system_.cpu().charge_instructions(16 * (bytes / sim::kPageSize + 1));
  TDO_LOG(kDebug, "driver") << "CMA alloc " << bytes << "B at PA 0x" << std::hex
                            << *pa;
  return DeviceBuffer{*va, *pa, bytes};
}

support::Status CimDriver::free_buffer(const DeviceBuffer& buffer) {
  charge_syscall();
  TDO_RETURN_IF_ERROR(system_.mmu().release(buffer.va, buffer.bytes));
  return cma_.release(buffer.pa);
}

void CimDriver::charge_submit_costs() {
  // Coherence: clean the host data caches so the accelerator's uncacheable
  // reads observe the latest data (Section II-E). A full clean is what the
  // reference driver does; the cost model charges the loop instructions and
  // the write-back traffic is counted by the cache model.
  const std::uint64_t dirty_lines = system_.caches().flush_data_caches();
  flushes_.add();
  const std::uint64_t touched_lines =
      system_.caches().l1d().params().size_bytes / 64 +
      system_.caches().l2().params().size_bytes / 64;
  system_.cpu().charge_instructions(params_.flush_instructions_per_line *
                                    touched_lines);
  // Write-back drain time: dirty lines leave at DRAM bandwidth; the CPU
  // stalls on the barrier that ends the clean sequence.
  system_.cpu().charge_cycles(dirty_lines * 4);
}

support::Status CimDriver::submit(const cim::ContextRegs& image,
                                  std::size_t device) {
  charge_syscall();
  charge_submit_costs();

  // Program every context register, then hit the command register.
  for (std::uint32_t i = 0; i < cim::kRegCount; ++i) {
    const auto reg = static_cast<cim::Reg>(i);
    if (reg == cim::Reg::kCommand || reg == cim::Reg::kStatus ||
        reg == cim::Reg::kResult || reg == cim::Reg::kCompleted) {
      continue;
    }
    TDO_RETURN_IF_ERROR(write_reg(reg, image.read(reg), device));
  }

  // The accelerator timeline starts no earlier than the host's current time.
  system_.settle_to_host_time();
  return write_reg(cim::Reg::kCommand, 1, device);
}

support::StatusOr<cim::DeviceStatus> CimDriver::wait(std::size_t device) {
  charge_syscall();
  // Drain the accelerator's event schedule to find completion time, then
  // charge the host for spinning until that moment ("The host can either
  // wait on spinlock or continue with other tasks", Section II-E).
  const sim::Tick done = system_.events().run_to_completion();
  (void)system_.cpu().spin_until(done, params_.poll_period_cycles);

  auto status = read_reg(cim::Reg::kStatus, device);
  if (!status.is_ok()) return status.status();
  const auto device_status = static_cast<cim::DeviceStatus>(*status);
  if (device_status == cim::DeviceStatus::kDone ||
      device_status == cim::DeviceStatus::kError) {
    // Acknowledge: return the device to IDLE for the next job.
    TDO_RETURN_IF_ERROR(
        write_reg(cim::Reg::kStatus,
                  static_cast<std::uint64_t>(cim::DeviceStatus::kIdle), device));
  }
  return device_status;
}

support::Status CimDriver::submit_queued(const cim::ContextRegs& image,
                                         std::size_t device) {
  charge_syscall();
  const auto op = static_cast<cim::Opcode>(image.read(cim::Reg::kOpcode));
  if (op == cim::Opcode::kProgram) {
    // A program-only job reads nothing but its stationary tile, so the
    // coherence clean is range-granular like submit_copy's — a full-cache
    // clean here would put ~L1+L2 walk time on every speculative prefetch
    // and migration adoption, dwarfing the work it hides.
    const bool stationary_b =
        static_cast<cim::StationaryOperand>(image.read(cim::Reg::kStationary)) ==
        cim::StationaryOperand::kB;
    const std::uint64_t cols =
        stationary_b ? image.read(cim::Reg::kN) : image.read(cim::Reg::kM);
    const std::uint64_t bytes = image.read(cim::Reg::kK) * cols * 4;
    flushes_.add();
    system_.cpu().charge_instructions(params_.flush_instructions_per_line *
                                      (bytes / 64 + 1));
  } else {
    charge_submit_costs();
  }
  // The register image travels through the same uncached PMIO window; the
  // device latches it into its work queue, so the writes are legal even
  // while a job is running.
  for (std::uint32_t i = 0; i < cim::kRegCount; ++i) {
    const auto reg = static_cast<cim::Reg>(i);
    if (reg == cim::Reg::kCommand || reg == cim::Reg::kStatus ||
        reg == cim::Reg::kResult || reg == cim::Reg::kCompleted) {
      continue;
    }
    charge_mmio_access();
  }
  // Retire completions that should already have happened, so a job enqueued
  // now can never appear to start before its submission time.
  system_.settle_to_host_time();
  return accels_[device]->enqueue_job(image);
}

support::Status CimDriver::submit_copy(const cim::ContextRegs& image,
                                       std::size_t device) {
  charge_syscall();
  // Range clean/invalidate instead of the full-cache clean of a compute
  // submit: the DMA only touches the copy window, so the driver walks just
  // those lines (dcache clean by VA in a loop, the way dma_map_single does).
  // A scatter-gather chain also cleans the marshaled descriptor-table lines
  // the device is about to fetch.
  const std::uint64_t seg_count = image.read(cim::Reg::kSegCount);
  const std::uint64_t table_bytes =
      seg_count > 1 ? seg_count * sizeof(cim::CopySegEntry) : 0;
  const std::uint64_t bytes =
      image.read(cim::Reg::kM) * image.read(cim::Reg::kN) + table_bytes;
  flushes_.add();
  system_.cpu().charge_instructions(params_.flush_instructions_per_line *
                                    (bytes / 64 + 1));
  // Program the copy descriptor registers through the uncached PMIO window:
  // inline src/dst base+pitch, rows, width, direction for a single segment;
  // segment count + table PA for a chain.
  for (int i = 0; i < 8; ++i) charge_mmio_access();
  // Retire completions due by now so the copy cannot appear to start before
  // its submission time.
  system_.settle_to_host_time();
  return accels_[device]->enqueue_job(image);
}

support::StatusOr<std::uint64_t> CimDriver::poll_completed(std::size_t device) {
  system_.settle_to_host_time();
  auto completed = read_reg(cim::Reg::kCompleted, device);
  if (!completed.is_ok()) return completed.status();
  return *completed;
}

void CimDriver::wait_for_space(std::size_t device,
                               std::size_t target_in_flight) {
  auto& accel = *accels_[device];
  system_.settle_to_host_time();
  while (accel.in_flight() > target_in_flight) {
    const sim::Tick done = accel.busy_until();
    (void)system_.events().run_until(done);
    (void)system_.cpu().block_until(done);
  }
}

support::StatusOr<cim::DeviceStatus> CimDriver::drain(std::size_t device) {
  charge_syscall();
  auto& accel = *accels_[device];
  system_.settle_to_host_time();
  while (accel.has_work()) {
    // Each pass retires the running job (or a pending DMA copy); a compute
    // completion event may chain the next queued job, extending the tick.
    const sim::Tick done = accel.work_done_tick();
    (void)system_.events().run_until(done);
    (void)system_.cpu().block_until(done);
  }

  auto status = read_reg(cim::Reg::kStatus, device);
  if (!status.is_ok()) return status.status();
  const auto device_status = static_cast<cim::DeviceStatus>(*status);
  if (device_status == cim::DeviceStatus::kDone ||
      device_status == cim::DeviceStatus::kError) {
    TDO_RETURN_IF_ERROR(
        write_reg(cim::Reg::kStatus,
                  static_cast<std::uint64_t>(cim::DeviceStatus::kIdle), device));
  }
  return device_status;
}

support::StatusOr<sim::PhysAddr> CimDriver::translate(sim::VirtAddr va) const {
  return system_.mmu().translate(va);
}

}  // namespace tdo::rt
