// Host-side worker pool for DTO-style pseudo-asynchronous work splitting.
//
// DTO's pseudo-async trick runs the CPU stripe of a split job on spare host
// cores *while* the accelerator chews the device stripe, then joins the two.
// The paper's platform (Table I) has a dual-core host but drives the
// accelerator from one thread; this pool models the remaining cores as
// simulated workers: a submitted stripe executes its float math eagerly
// (exact results, same as the CPU-fallback loop nest) and occupies the
// least-loaded worker's simulated timeline for an analytically-costed span.
// Completion is an event-queue callback, so the serving scheduler can treat
// the pool exactly like one more accelerator target — capture
// jobs_completed() around a submit, harvest a completion observer log, and
// fold the stripe's latency into the admission EWMAs.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/system.hpp"
#include "support/stats.hpp"
#include "support/units.hpp"

namespace tdo::rt {

struct HostPoolParams {
  /// Number of simulated host worker cores; 0 disables the pool (every
  /// submit is rejected and callers fall back to their non-split path).
  int workers = 0;
  /// Analytic per-MAC cost on a worker core, in cycles. Calibrated against
  /// the interpreter fallback loop (2 loads + fmadd + bookkeeping per MAC
  /// at base CPI 0.85 plus cache stalls).
  double cycles_per_mac = 6.5;
  /// Per-stripe dispatch/wake overhead (futex wake + argument marshalling).
  double dispatch_cycles = 400.0;
  /// Retired instructions per MAC, for energy accounting at the host's
  /// pJ/instruction rate.
  double instructions_per_mac = 6.0;
  std::string name = "host_pool";
};

/// One GEMM stripe to run on a worker: C[0..m) x [0..n) += alpha*A*B + beta*C
/// over the given leading dimensions, addresses pre-translated.
struct HostStripeJob {
  std::uint64_t m = 0, n = 0, k = 0;
  std::uint64_t lda = 0, ldb = 0, ldc = 0;
  sim::PhysAddr pa_a = 0, pa_b = 0, pa_c = 0;
  float alpha = 1.0f;
  float beta = 0.0f;
};

struct HostPoolTicket {
  bool accepted = false;
  int worker = -1;
  sim::Tick start = 0;
  sim::Tick done = 0;
};

struct HostPoolReport {
  std::uint64_t jobs = 0;
  std::uint64_t completed = 0;
  std::uint64_t macs = 0;
  std::uint64_t busy_ticks = 0;
};

class HostWorkerPool {
 public:
  /// (total jobs completed, completion tick) — same shape as
  /// cim::Accelerator's completion observer, so the scheduler's harvest
  /// logic is target-agnostic.
  using CompletionObserver =
      std::function<void(std::uint64_t completed, sim::Tick when)>;

  HostWorkerPool(sim::System& system, HostPoolParams params);
  ~HostWorkerPool();

  HostWorkerPool(const HostWorkerPool&) = delete;
  HostWorkerPool& operator=(const HostWorkerPool&) = delete;

  [[nodiscard]] bool enabled() const { return params_.workers > 0; }

  /// Runs the stripe's float math eagerly (exact, like the CPU fallback) and
  /// books its analytic duration on the least-loaded worker. The returned
  /// ticket's `done` tick is when the completion event fires; ticket
  /// `accepted == false` means the pool is disabled or the job is empty.
  HostPoolTicket submit(const HostStripeJob& job);

  /// Jobs whose completion event has fired.
  [[nodiscard]] std::uint64_t jobs_completed() const { return completed_.value(); }
  [[nodiscard]] std::uint64_t jobs_submitted() const { return jobs_.value(); }
  [[nodiscard]] std::uint64_t in_flight() const {
    return jobs_.value() - completed_.value();
  }
  [[nodiscard]] bool idle() const { return in_flight() == 0; }

  /// Latest `done` tick across workers (0 when never used).
  [[nodiscard]] sim::Tick busy_until() const;

  /// Owner-tagged like cim::Accelerator's observer: the tag lets a scheduler
  /// clear only its own registration on destruction, so a second scheduler's
  /// observer survives the first one's teardown.
  void set_completion_observer(CompletionObserver observer,
                               const void* owner = nullptr) {
    observer_ = std::move(observer);
    observer_owner_ = owner;
  }
  /// No-op when another owner has since replaced the registration.
  void clear_completion_observer(const void* owner) {
    if (observer_owner_ == owner) {
      observer_ = nullptr;
      observer_owner_ = nullptr;
    }
  }

  [[nodiscard]] HostPoolReport report() const;
  [[nodiscard]] const HostPoolParams& params() const { return params_; }

 private:
  sim::System& system_;
  HostPoolParams params_;
  std::vector<sim::Tick> worker_busy_until_;
  CompletionObserver observer_;
  const void* observer_owner_ = nullptr;
  /// Per-stripe done flags in submission order plus the retire pointer:
  /// completions retire FIFO so "completed reaches N" is an exact join
  /// condition even when stripes finish out of order across workers.
  std::vector<std::uint8_t> done_;
  std::size_t retire_ = 0;

  support::Counter jobs_;
  support::Counter completed_;
  support::Counter macs_;
  support::Counter busy_ticks_;
  support::EnergyAccumulator energy_;
};

}  // namespace tdo::rt
