#include "runtime/host_pool.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "support/log.hpp"

namespace tdo::rt {

HostWorkerPool::HostWorkerPool(sim::System& system, HostPoolParams params)
    : system_{system}, params_{std::move(params)} {
  worker_busy_until_.assign(
      static_cast<std::size_t>(std::max(params_.workers, 0)), 0);
  auto& stats = system_.stats();
  stats.register_counter(params_.name + ".jobs", &jobs_);
  stats.register_counter(params_.name + ".completed", &completed_);
  stats.register_counter(params_.name + ".macs", &macs_);
  stats.register_counter(params_.name + ".busy_ticks", &busy_ticks_);
  stats.register_energy(params_.name + ".energy", &energy_);
}

HostWorkerPool::~HostWorkerPool() {
  auto& stats = system_.stats();
  stats.unregister_counter(&jobs_);
  stats.unregister_counter(&completed_);
  stats.unregister_counter(&macs_);
  stats.unregister_counter(&busy_ticks_);
}

sim::Tick HostWorkerPool::busy_until() const {
  sim::Tick latest = 0;
  for (const sim::Tick t : worker_busy_until_) latest = std::max(latest, t);
  return latest;
}

HostPoolTicket HostWorkerPool::submit(const HostStripeJob& job) {
  HostPoolTicket ticket;
  if (!enabled() || job.m == 0 || job.n == 0 || job.k == 0) return ticket;

  // Exact math now (results land in simulated memory immediately, like the
  // CPU-fallback loop); timing is booked on the worker's own clock so it
  // overlaps the accelerator instead of blocking the driver thread.
  auto& mem = system_.memory();
  for (std::uint64_t i = 0; i < job.m; ++i) {
    for (std::uint64_t j = 0; j < job.n; ++j) {
      double acc = 0.0;
      for (std::uint64_t kk = 0; kk < job.k; ++kk) {
        acc += static_cast<double>(
                   mem.read_scalar<float>(job.pa_a + (i * job.lda + kk) * 4)) *
               static_cast<double>(
                   mem.read_scalar<float>(job.pa_b + (kk * job.ldb + j) * 4));
      }
      const sim::PhysAddr c_addr = job.pa_c + (i * job.ldc + j) * 4;
      double out = static_cast<double>(job.alpha) * acc;
      if (job.beta != 0.0f) {
        out += static_cast<double>(job.beta) *
               static_cast<double>(mem.read_scalar<float>(c_addr));
      }
      mem.write_scalar<float>(c_addr, static_cast<float>(out));
    }
  }

  const std::uint64_t stripe_macs = job.m * job.n * job.k;
  const auto& host = system_.cpu().params();
  const support::Duration span = host.frequency.cycles(
      params_.dispatch_cycles +
      params_.cycles_per_mac * static_cast<double>(stripe_macs));

  const sim::Tick now =
      std::max(system_.events().now(), system_.cpu().elapsed().ticks());
  std::size_t worker = 0;
  for (std::size_t w = 1; w < worker_busy_until_.size(); ++w) {
    if (worker_busy_until_[w] < worker_busy_until_[worker]) worker = w;
  }
  const sim::Tick start = std::max(now, worker_busy_until_[worker]);
  const sim::Tick done = start + span.ticks();
  worker_busy_until_[worker] = done;

  jobs_.add();
  macs_.add(stripe_macs);
  busy_ticks_.add(span.ticks());
  energy_.add(host.energy_per_inst * (params_.instructions_per_mac *
                                      static_cast<double>(stripe_macs)));

  // Retire in submission order: a stripe that lands on an idler worker can
  // finish before an earlier one, but observers (the serving scheduler's
  // harvest) key on "completed count reaches N", which is only exact under
  // FIFO retirement — the same contract the accelerator's job-done
  // interrupt provides.
  const std::size_t index = done_.size();
  done_.push_back(0);
  system_.events().schedule_at(done, params_.name + ".stripe_done",
                               [this, index] {
    done_[index] = 1;
    std::uint64_t retired = 0;
    while (retire_ < done_.size() && done_[retire_] != 0) {
      ++retire_;
      ++retired;
    }
    if (retired == 0) return;
    completed_.add(retired);
    if (observer_) observer_(completed_.value(), system_.events().now());
  });

  TDO_LOG(kDebug, "rt.host_pool")
      << "stripe " << job.m << "x" << job.n << "x" << job.k << " on worker "
      << worker << " [" << start << ", " << done << ")";
  if (obs::enabled()) {
    obs::Tracer::instance().span(
        params_.name + "/w" + std::to_string(worker), "stripe", start,
        done - start,
        {{"seq", static_cast<std::uint64_t>(index) + 1},
         {"macs", stripe_macs}});
  }

  ticket.accepted = true;
  ticket.worker = static_cast<int>(worker);
  ticket.start = start;
  ticket.done = done;
  return ticket;
}

HostPoolReport HostWorkerPool::report() const {
  HostPoolReport rep;
  rep.jobs = jobs_.value();
  rep.completed = completed_.value();
  rep.macs = macs_.value();
  rep.busy_ticks = busy_ticks_.value();
  return rep;
}

}  // namespace tdo::rt
