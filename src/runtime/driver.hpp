// Kernel-space CIM driver emulation (paper Section II-E, Figure 3).
//
// "At the lowest level of the stack, the kernel-space CIM driver reads and
// writes to the context registers of the accelerator through a ioctl system
// call. Besides, the driver translates the virtual address used by the host
// processor to a physical address ... To enforce memory coherence in the
// shared memory region, the kernel driver triggers a cache flush on the host
// side before invoking the accelerator."
//
// Every entry point charges realistic host-side costs (syscall round trip,
// register MMIO, per-line flush work) to the host CPU model — this overhead
// is exactly what makes low-intensity GEMV-like kernels lose in Figure 6.
//
// One driver instance manages every CIM device in the system (the way one
// kernel module binds all instances of a peripheral). The blocking
// submit/wait pair is the paper's original protocol; submit_queued/drain
// back the asynchronous command-stream path (runtime/stream.hpp), pushing
// jobs into a device's hardware work queue and waiting event-driven on the
// completion interrupt instead of spin-polling.
#pragma once

#include <cstdint>
#include <vector>

#include "cim/accelerator.hpp"
#include "cim/context_regs.hpp"
#include "runtime/cma.hpp"
#include "sim/system.hpp"
#include "support/status.hpp"

namespace tdo::rt {

struct DriverParams {
  /// Instructions for one ioctl round trip (user->kernel->user).
  std::uint64_t syscall_instructions = 800;
  /// Instructions per 64-byte line for a VA-range cache clean loop.
  std::uint64_t flush_instructions_per_line = 2;
  /// Instructions per uncached context-register access.
  std::uint64_t mmio_instructions = 6;
  /// Extra bus cycles per uncached context-register access.
  std::uint64_t mmio_cycles = 24;
  /// Spin-poll period while waiting for completion (cycles).
  std::uint64_t poll_period_cycles = 64;
};

/// A device buffer handed out by the driver: contiguous physical backing
/// plus the user-space mapping.
struct DeviceBuffer {
  sim::VirtAddr va = 0;
  sim::PhysAddr pa = 0;
  std::uint64_t bytes = 0;
};

class CimDriver {
 public:
  CimDriver(DriverParams params, sim::System& system, cim::Accelerator& accel);

  /// Registers an additional CIM device instance (hotplug-style); returns
  /// its device index.
  std::size_t add_device(cim::Accelerator& accel);
  [[nodiscard]] std::size_t device_count() const { return accels_.size(); }
  [[nodiscard]] cim::Accelerator& device(std::size_t index) {
    return *accels_[index];
  }
  [[nodiscard]] const cim::Accelerator& device(std::size_t index) const {
    return *accels_[index];
  }

  /// ioctl(CIM_ALLOC): CMA allocation + user mapping.
  [[nodiscard]] support::StatusOr<DeviceBuffer> alloc_buffer(std::uint64_t bytes);

  /// ioctl(CIM_FREE).
  support::Status free_buffer(const DeviceBuffer& buffer);

  /// ioctl(CIM_SUBMIT): flushes the host caches, writes the prepared
  /// context-register image, and triggers the micro-engine.
  support::Status submit(const cim::ContextRegs& image, std::size_t device = 0);

  /// ioctl(CIM_WAIT): spin-waits on the status register until DONE/ERROR.
  [[nodiscard]] support::StatusOr<cim::DeviceStatus> wait(std::size_t device = 0);

  // --- asynchronous command-stream path ---

  /// ioctl(CIM_ENQUEUE): same host charges as submit, but the job lands in
  /// the device's hardware work queue and the call returns without waiting.
  /// kResourceExhausted when the queue is full.
  support::Status submit_queued(const cim::ContextRegs& image,
                                std::size_t device);

  /// ioctl(CIM_COPY): enqueues a DMA copy descriptor (Opcode::kCopy image)
  /// onto the device's DMA channel and returns immediately. Unlike a compute
  /// submit, the coherence flush is range-granular — the driver cleans only
  /// the host-side lines of the copy window, not the whole data cache — and
  /// only the copy descriptor registers are programmed.
  support::Status submit_copy(const cim::ContextRegs& image, std::size_t device);

  /// ioctl(CIM_POLL): non-blocking completion poll — retires every device
  /// event due by now and reads the completed-jobs register.
  [[nodiscard]] support::StatusOr<std::uint64_t> poll_completed(
      std::size_t device);

  /// Blocks (event-driven, WFI) until the device's work queue is empty and
  /// the last job finished; acknowledges the final status back to IDLE.
  [[nodiscard]] support::StatusOr<cim::DeviceStatus> drain(std::size_t device);

  /// Blocks until the device has at most `target_in_flight` jobs in flight
  /// (running + queued) — backpressure for a full stream.
  void wait_for_space(std::size_t device, std::size_t target_in_flight);

  /// Translates a user VA to a physical address (kernel page-table walk).
  [[nodiscard]] support::StatusOr<sim::PhysAddr> translate(sim::VirtAddr va) const;

  [[nodiscard]] CmaAllocator& cma() { return cma_; }
  [[nodiscard]] const DriverParams& params() const { return params_; }
  [[nodiscard]] std::uint64_t ioctl_count() const { return ioctls_.value(); }
  [[nodiscard]] std::uint64_t flush_count() const { return flushes_.value(); }

 private:
  void charge_syscall();
  void charge_mmio_access();
  /// Coherence flush + full register-image programming charge.
  void charge_submit_costs();
  /// Writes one 64-bit register through the PMIO window.
  support::Status write_reg(cim::Reg reg, std::uint64_t value,
                            std::size_t device = 0);
  [[nodiscard]] support::StatusOr<std::uint64_t> read_reg(cim::Reg reg,
                                                          std::size_t device = 0);

  DriverParams params_;
  sim::System& system_;
  std::vector<cim::Accelerator*> accels_;
  CmaAllocator cma_;
  support::Counter ioctls_;
  support::Counter flushes_;
};

}  // namespace tdo::rt
