// User-space CIM runtime library (paper Section III, Figure 3/4, Listing 1).
//
// "A lightweight runtime library that provides optimized performance and
// memory usage for the CIM device. The library has been designed to be used
// directly by the application programmer, or an optimizer (i.e., Loop
// Tactics). It exposes a host-callable C API, similar to what cuBLAS or MKL
// offers."
//
// Class-based core; see cim_api.hpp for the polly_cim* C-style facade that
// generated code calls.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "cim/accelerator.hpp"
#include "runtime/driver.hpp"
#include "runtime/host_pool.hpp"
#include "runtime/residency.hpp"
#include "runtime/stream.hpp"
#include "runtime/xfer.hpp"
#include "sim/system.hpp"
#include "support/status.hpp"
#include "topo/topology.hpp"

namespace tdo::rt {

/// How quantization scales are obtained before offloading.
enum class ScaleMode {
  /// Host scans the operands for max|x| (charged to the host cost model).
  kHostScan,
  /// Assume a static data range (free, but may clip).
  kStatic,
};

/// DTO-style pseudo-asynchronous work splitting (DTO_CPU_SIZE_FRACTION):
/// a large GEMM is cut into a host stripe (run on the worker pool) and a
/// device stripe, executed concurrently and joined at the next sync point.
struct SplitConfig {
  bool enabled = false;
  /// Fraction of the M dimension routed to the host worker pool. DTO ships
  /// this as a static environment variable; the serving layer retunes it
  /// online from the admission controller's device/host EWMAs.
  double cpu_fraction = 0.0;
  /// Safety clamp: never hand more than this to the (slower) host side.
  double max_fraction = 0.5;
  /// Jobs below this many MACs skip the split — the dispatch/join overhead
  /// would dominate the stripe.
  std::uint64_t min_macs = 1ull << 20;
  HostPoolParams pool;
};

struct RuntimeConfig {
  bool double_buffering = true;
  ScaleMode scale_mode = ScaleMode::kHostScan;
  double static_max_abs = 1.0;
  /// Default stationary operand for plain GEMM calls. The paper's naive
  /// mapping keeps B stationary and streams A (Section III-B).
  cim::StationaryOperand default_stationary = cim::StationaryOperand::kB;
  DriverParams driver;
  /// Command-stream behaviour (depth, dynamic CPU-fallback threshold). The
  /// blocking BLAS entry points are wrappers over this stream.
  StreamParams stream;
  /// Transfer-engine behaviour: async copies riding the stream as DMA
  /// commands vs the paper's blocking host memcpy.
  XferParams xfer;
  /// Weight-residency cache: cross-call stationary-operand reuse with
  /// affinity routing. Applies to calls marked cacheable.
  ResidencyParams residency;
  /// Pseudo-asynchronous host/device work splitting.
  SplitConfig split;
};

/// Aggregate host-side costs attributable to the runtime (for reporting).
struct RuntimeStats {
  std::uint64_t offload_calls = 0;
  std::uint64_t tile_jobs = 0;
  std::uint64_t batched_calls = 0;
  std::uint64_t bytes_copied = 0;
  std::uint64_t scale_scans = 0;
  // Pseudo-async splitting.
  std::uint64_t split_calls = 0;
  std::uint64_t split_host_macs = 0;
  std::uint64_t split_device_macs = 0;
};

/// One GEMM in a batched call (virtual addresses; dims shared by the batch).
struct GemmBatchItem {
  sim::VirtAddr a = 0;
  sim::VirtAddr b = 0;
  sim::VirtAddr c = 0;
};

class CimRuntime {
 public:
  CimRuntime(RuntimeConfig config, sim::System& system, cim::Accelerator& accel);

  /// Registers an additional accelerator instance; batched calls round-robin
  /// work across every registered device (DTO's multi-DSA behaviour).
  void add_accelerator(cim::Accelerator& accel) { driver_->add_device(accel); }

  /// polly_cimInit: device discovery + reset.
  support::Status init(int device_index);

  /// polly_cimMalloc / polly_cimFree: physically-contiguous device buffers.
  [[nodiscard]] support::StatusOr<sim::VirtAddr> malloc_device(std::uint64_t bytes);
  support::Status free_device(sim::VirtAddr va);

  /// polly_cimHostToDev / polly_cimDevToHost. Large transfers enqueue into
  /// the command stream as DMA copy commands and return immediately (ordered
  /// against in-flight producers by rectangle hazards); page-scattered
  /// buffers ride as scatter-gather descriptor chains. Only small or
  /// pathologically fragmented copies run as host-performed copies through
  /// the cache hierarchy (the paper's original path).
  support::Status host_to_dev(sim::VirtAddr dst, sim::VirtAddr src,
                              std::uint64_t bytes);
  support::Status dev_to_host(sim::VirtAddr dst, sim::VirtAddr src,
                              std::uint64_t bytes);

  /// Pitched (strided sub-matrix view) transfers: `rows` rows of `width`
  /// bytes, row starts `pitch` bytes apart on both sides. The transfer
  /// engine derives the segment chain from the footprint, so views of
  /// device-resident arrays ride the stream too.
  support::Status host_to_dev_2d(sim::VirtAddr dst, sim::VirtAddr src,
                                 std::uint64_t pitch, std::uint64_t width,
                                 std::uint64_t rows);
  support::Status dev_to_host_2d(sim::VirtAddr dst, sim::VirtAddr src,
                                 std::uint64_t pitch, std::uint64_t width,
                                 std::uint64_t rows);

  /// polly_cimBlasSGemm: C = alpha*A*B + beta*C (row-major, no transposes).
  /// Oversized operands are tiled internally to the crossbar geometry.
  /// Blocking: a thin wrapper over the async variant plus synchronize().
  support::Status sgemm(std::uint64_t m, std::uint64_t n, std::uint64_t k,
                        float alpha, sim::VirtAddr a, std::uint64_t lda,
                        sim::VirtAddr b, std::uint64_t ldb, float beta,
                        sim::VirtAddr c, std::uint64_t ldc);
  /// `cacheable` marks the stationary operand as reused across calls: the
  /// runtime consults the weight-residency cache, requests skip-programming
  /// on hits, and routes the call to the accelerator holding the weights.
  support::Status sgemm_with_stationary(std::uint64_t m, std::uint64_t n,
                                        std::uint64_t k, float alpha,
                                        sim::VirtAddr a, std::uint64_t lda,
                                        sim::VirtAddr b, std::uint64_t ldb,
                                        float beta, sim::VirtAddr c,
                                        std::uint64_t ldc,
                                        cim::StationaryOperand stationary,
                                        bool cacheable = false);

  /// polly_cimBlasSGemv: y = alpha*op(A)*x + beta*y  (A is m x n row-major).
  support::Status sgemv(bool transpose, std::uint64_t m, std::uint64_t n,
                        float alpha, sim::VirtAddr a, std::uint64_t lda,
                        sim::VirtAddr x, float beta, sim::VirtAddr y);

  /// polly_cimBlasGemmBatched: same-shape GEMMs executed as one job; when
  /// the stationary operand is shared between consecutive items the crossbar
  /// image is reused — the paper's endurance-aware "smart mapping". With
  /// several accelerators the batch splits round-robin across devices.
  /// `device` >= 0 pins the whole batch to one accelerator (the serving
  /// scheduler's batch-submit hook: it has already chosen a placement from
  /// residency affinity or queue depths); -1 keeps the internal round-robin
  /// chunking across devices.
  support::Status sgemm_batched(std::uint64_t m, std::uint64_t n, std::uint64_t k,
                                float alpha, std::span<const GemmBatchItem> items,
                                std::uint64_t lda, std::uint64_t ldb, float beta,
                                std::uint64_t ldc,
                                cim::StationaryOperand stationary,
                                bool cacheable = false, int device = -1);

  // --- asynchronous entry points (command-stream path) ---
  //
  // Enqueue tile jobs into the stream and return without draining; the
  // caller (interpreter, generated code) synchronizes at coherence points.
  // Calls whose operands overlap an in-flight producer synchronize first.

  support::Status sgemm_async(std::uint64_t m, std::uint64_t n, std::uint64_t k,
                              float alpha, sim::VirtAddr a, std::uint64_t lda,
                              sim::VirtAddr b, std::uint64_t ldb, float beta,
                              sim::VirtAddr c, std::uint64_t ldc,
                              cim::StationaryOperand stationary,
                              bool cacheable = false);
  support::Status sgemv_async(bool transpose, std::uint64_t m, std::uint64_t n,
                              float alpha, sim::VirtAddr a, std::uint64_t lda,
                              sim::VirtAddr x, float beta, sim::VirtAddr y,
                              bool cacheable = false);
  support::Status sgemm_batched_async(std::uint64_t m, std::uint64_t n,
                                      std::uint64_t k, float alpha,
                                      std::span<const GemmBatchItem> items,
                                      std::uint64_t lda, std::uint64_t ldb,
                                      float beta, std::uint64_t ldc,
                                      cim::StationaryOperand stationary,
                                      bool cacheable = false, int device = -1);

  /// polly_cimSynchronize: drains the stream and releases deferred staging
  /// buffers. No-op when the stream is idle.
  support::Status synchronize();

  /// Residency-affinity query (serving-scheduler hook): the accelerator
  /// already holding any stationary tile of an m x n x k call whose
  /// stationary operand lives at `stat` (leading dimension `ld_stat`), or
  /// nullopt when no tile is resident. Uses the same tile keys the dispatch
  /// path builds, so a returned device is exactly where the call's reuse
  /// request would hit. Charges the stationary operand's scale scan (cached;
  /// the dispatch that follows needs the same scan).
  [[nodiscard]] std::optional<int> weight_affinity(
      std::uint64_t m, std::uint64_t n, std::uint64_t k, sim::VirtAddr stat,
      std::uint64_t ld_stat, cim::StationaryOperand stationary);

  /// Retunes the pseudo-async split fraction at runtime (the admission
  /// controller's continuous knob next to the binary offload decision).
  /// Clamped to [0, split.max_fraction]; no-op splitting when 0.
  void set_split_fraction(double fraction);
  [[nodiscard]] double split_fraction() const {
    return config_.split.cpu_fraction;
  }

  /// Attaches the fabric topology (near/far accelerator tiers with link
  /// models). Placement then weighs each device's queue depth by its link
  /// latency multiplier instead of blind round-robin: near devices absorb
  /// work until their queues are ~multiplier jobs deep, at which point a far
  /// pool becomes the cheaper marginal placement. Null (the default) keeps
  /// the flat single-tier behaviour. The topology must outlive the runtime;
  /// device indices follow add_accelerator() registration order.
  void set_topology(topo::Topology* topology) { topology_ = topology; }
  [[nodiscard]] topo::Topology* topology() const { return topology_; }
  /// Placement policy (DTO_IS_NUMA_AWARE analogue). kBufferCentric (default)
  /// routes to the device already holding resident weights, then near-first
  /// by link-weighted queue depth; kCallerCentric ignores residency (host
  /// locality wins); kBlind keeps the flat round-robin.
  void set_placement(topo::Placement policy) { placement_ = policy; }
  [[nodiscard]] topo::Placement placement() const { return placement_; }

  /// Migrates a resident stationary tile to `to_device` without losing the
  /// crossbar programming investment: the tile's bytes cross peer-to-peer as
  /// a dev->dev DMA segment into a staging buffer, an Opcode::kProgram job
  /// adopts them into the destination crossbar, and the cache entry re-homes
  /// with the staging rectangle as its shadow operand. `peer_to_peer` false
  /// selects the host-bounce reference path (two serialized transfers
  /// through a host staging buffer) — the baseline the topology bench beats.
  /// Asynchronous: the caller synchronizes (or keeps dispatching) as usual.
  support::Status migrate_residency(const WeightKey& key, int to_device,
                                    bool peer_to_peer = true);

  [[nodiscard]] sim::System& system() { return system_; }
  [[nodiscard]] CimStream& stream() { return *stream_; }
  [[nodiscard]] XferEngine& xfer() { return *xfer_; }
  [[nodiscard]] ResidencyCache& residency() { return *residency_; }
  [[nodiscard]] HostWorkerPool& host_pool() { return *pool_; }
  [[nodiscard]] CimDriver& driver() { return *driver_; }
  [[nodiscard]] cim::Accelerator& accelerator() { return accel_; }
  [[nodiscard]] const RuntimeStats& stats() const { return stats_; }
  [[nodiscard]] const RuntimeConfig& config() const { return config_; }
  [[nodiscard]] bool initialized() const { return initialized_; }

 private:
  /// Max|x| over an `count`-element float region at `va` with row pitch
  /// `ld` and row length `row_len` (host scan, charged).
  [[nodiscard]] support::StatusOr<double> operand_max_abs(sim::VirtAddr va,
                                                          std::uint64_t rows,
                                                          std::uint64_t row_len,
                                                          std::uint64_t ld);

  /// Builds the shared register image for a (tile) job. `tile_row0` is the
  /// crossbar row window holding (or receiving) the stationary tile.
  [[nodiscard]] cim::ContextRegs make_job_image(
      std::uint64_t m, std::uint64_t n, std::uint64_t k, float alpha, float beta,
      sim::PhysAddr pa_a, std::uint64_t lda, sim::PhysAddr pa_b, std::uint64_t ldb,
      sim::PhysAddr pa_c, std::uint64_t ldc, double scale_a, double scale_b,
      cim::StationaryOperand stationary, bool skip_weight_load,
      std::uint32_t tile_row0 = 0) const;

  /// Consults the weight-residency cache for one stationary tile: on a hit
  /// the job skips programming at the returned row window; on a miss rows
  /// are reserved (or, when `use_cache` is false / the tile cannot be
  /// cached, overlapping resident entries are retired because the job will
  /// program rows [0, key.rows) uncached).
  struct TilePlacement {
    bool skip = false;
    std::uint32_t row0 = 0;
    /// Migrated entries: substitute this staging rectangle for the job's
    /// stationary pointer so the device-side validation matches what the
    /// adoption actually programmed (bit-exact bytes, identical results).
    bool migrated = false;
    sim::PhysAddr shadow_base = 0;
    std::uint64_t shadow_ld = 0;
  };
  TilePlacement place_tile(bool use_cache, const WeightKey& key, int device);

  /// Topology-aware device pick: minimizes (queue depth + 1) x link latency
  /// multiplier across devices, rotating the scan start so equal-cost
  /// devices still round-robin. Returns -1 when no topology is attached,
  /// placement is kBlind, or the fabric has no far tier (flat round-robin is
  /// then already optimal).
  [[nodiscard]] int topo_place();

  /// Builds an Opcode::kProgram register image: program `key`'s stationary
  /// tile at crossbar rows [row0, row0 + key.rows), no stream phase. Only
  /// the stationary pointer is dereferenced; the remaining operands alias it
  /// with dimensions decode() accepts.
  [[nodiscard]] cim::ContextRegs make_program_image(const WeightKey& key,
                                                    std::uint32_t row0) const;

  /// Prefetch-on-miss: when the predictor knows which weight set follows
  /// `current`, speculatively programs it (Opcode::kProgram) behind the jobs
  /// just enqueued on `device` — its weight-load DMA hides under the current
  /// job's stream phase, so the successor call's weight phase disappears.
  void prefetch_predicted(const WeightKey& current, int device);

  /// Affinity routing for one stripe's chain of stationary tiles: the
  /// accelerator already holding any of them (so the reuse request can
  /// actually hit), else the round-robin cursor. Pass no keys to skip the
  /// affinity check.
  [[nodiscard]] int stationary_device(std::span<const WeightKey> keys);

  /// dev_to_host fast path: when the source is partitioned by in-flight
  /// stripe writes of known accelerators, drains each producer in
  /// completion order and copies its stripes while the remaining
  /// accelerators keep computing. Returns true when it handled the copy,
  /// false to fall back to the ordinary full-drain ordering.
  [[nodiscard]] support::StatusOr<bool> striped_copy_back(const CopyDesc& desc);

  /// Enqueues one tile job into the stream.
  support::Status enqueue_job(const cim::ContextRegs& image, std::uint64_t macs,
                              std::uint64_t cim_writes, int device,
                              bool allow_cpu_fallback);

  /// Synchronizes when an in-flight command writes any of the call's
  /// operand rectangles (RAW/WAW — host scans and deferred device reads must
  /// see the producer's output) or still reads a rectangle this call will
  /// write (WAR — a queued command's deferred reads must not observe it).
  support::Status sync_for_operands(std::initializer_list<Rect> reads,
                                    std::initializer_list<Rect> writes);
  support::Status sync_for_operands(std::span<const Rect> reads,
                                    std::span<const Rect> writes);

  /// Issues one host<->device copy: async through the stream when the
  /// transfer engine deems it eligible, else the blocking host path.
  support::Status copy(CopyDesc::Dir dir, sim::VirtAddr dst, sim::VirtAddr src,
                       std::uint64_t bytes);

  /// Pitched-view generalization of copy(); flat copies pass rows == 1.
  /// Marshals multi-segment chains into a staging CopySegEntry table the
  /// device DMA fetches (released at synchronize(), like batch tables).
  support::Status copy_view(CopyDesc::Dir dir, sim::VirtAddr dst,
                            sim::VirtAddr src, std::uint64_t pitch,
                            std::uint64_t width, std::uint64_t rows);

  /// Reads a float element (functional, no host charge — engine-side use).
  [[nodiscard]] support::StatusOr<sim::PhysAddr> translate_checked(
      sim::VirtAddr va, std::uint64_t bytes) const;

  /// Cached operand ranges: rescanning an unchanged buffer on every call
  /// would charge the host for work a real runtime memoizes.
  struct ScaleKey {
    sim::VirtAddr va;
    std::uint64_t rows, row_len, ld;
    auto operator<=>(const ScaleKey&) const = default;
  };
  void invalidate_scales(sim::VirtAddr va, std::uint64_t bytes);

  RuntimeConfig config_;
  sim::System& system_;
  cim::Accelerator& accel_;
  std::unique_ptr<CimDriver> driver_;
  std::unique_ptr<CimStream> stream_;
  std::unique_ptr<XferEngine> xfer_;
  std::unique_ptr<ResidencyCache> residency_;
  std::unique_ptr<HostWorkerPool> pool_;
  topo::Topology* topology_ = nullptr;
  topo::Placement placement_ = topo::Placement::kBufferCentric;
  /// Rotates the topology-aware scan start so equal-cost devices round-robin.
  std::size_t place_cursor_ = 0;
  std::vector<DeviceBuffer> buffers_;
  /// Batch tables in flight; released by synchronize().
  std::vector<DeviceBuffer> staging_;
  /// Staging copies of migrated stationary tiles. Each lives as long as the
  /// runtime: resident entries reference them as shadow operands and the
  /// destination crossbar validates future hits against their addresses.
  std::vector<DeviceBuffer> migration_staging_;
  std::map<ScaleKey, double> scale_cache_;
  RuntimeStats stats_;
  bool initialized_ = false;
};

}  // namespace tdo::rt
