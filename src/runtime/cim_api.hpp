// C-style facade of the CIM runtime — the exact entry points the paper's
// generated code calls (Listing 1): polly_cimInit, polly_cimMalloc,
// polly_cimBlasSGemm, polly_cimBlasGemmBatched, polly_cimDevToHost, ...
//
// Mirrors the cuBLAS "legacy" style: a process-wide current runtime bound
// once at startup, C-int error codes. The class API (CimRuntime) remains the
// primary interface; this facade exists so examples and generated code read
// like the paper's listings.
#pragma once

#include <cstdint>

#include "runtime/cim_blas.hpp"

namespace tdo::rt::api {

/// Error codes returned by the facade (0 == success).
enum CimError : int {
  kCimSuccess = 0,
  kCimNotInitialized = 1,
  kCimInvalidValue = 2,
  kCimAllocFailed = 3,
  kCimExecutionFailed = 4,
};

/// Binds the facade to a runtime instance (not owned). Pass nullptr to unbind.
void set_current_runtime(CimRuntime* runtime);
[[nodiscard]] CimRuntime* current_runtime();

/// RAII binder for tests/examples. Bindings nest: the destructor restores
/// whatever runtime was current when the binding was created.
class RuntimeBinding {
 public:
  explicit RuntimeBinding(CimRuntime& runtime) : previous_{current_runtime()} {
    set_current_runtime(&runtime);
  }
  ~RuntimeBinding() { set_current_runtime(previous_); }
  RuntimeBinding(const RuntimeBinding&) = delete;
  RuntimeBinding& operator=(const RuntimeBinding&) = delete;

 private:
  CimRuntime* previous_;
};

// --- the paper's API (Listing 1) ---

int polly_cimInit(int device);
int polly_cimMalloc(std::uint64_t* device_ptr, std::uint64_t bytes);
int polly_cimFree(std::uint64_t device_ptr);
int polly_cimHostToDev(std::uint64_t dst, std::uint64_t src, std::uint64_t bytes);
int polly_cimDevToHost(std::uint64_t dst, std::uint64_t src, std::uint64_t bytes);

/// Pitched (strided sub-matrix view) transfers: `rows` rows of `width`
/// bytes, row starts `pitch` bytes apart on both sides. Emitted by the
/// compiler when the derived copy footprint is a proper sub-rectangle; the
/// transfer engine derives the scatter-gather segment chain from the view.
int polly_cimHostToDev2d(std::uint64_t dst, std::uint64_t src,
                         std::uint64_t pitch, std::uint64_t width,
                         std::uint64_t rows);
int polly_cimDevToHost2d(std::uint64_t dst, std::uint64_t src,
                         std::uint64_t pitch, std::uint64_t width,
                         std::uint64_t rows);

int polly_cimBlasSGemm(bool trans_a, bool trans_b, std::uint64_t m,
                       std::uint64_t n, std::uint64_t k, const float* alpha,
                       std::uint64_t a, std::uint64_t lda, std::uint64_t b,
                       std::uint64_t ldb, const float* beta, std::uint64_t c,
                       std::uint64_t ldc);

int polly_cimBlasSGemv(bool trans_a, std::uint64_t m, std::uint64_t n,
                       const float* alpha, std::uint64_t a, std::uint64_t lda,
                       std::uint64_t x, const float* beta, std::uint64_t y);

/// Batched GEMM over parallel pointer arrays (the fusion pass's target).
int polly_cimBlasGemmBatched(std::uint64_t m, std::uint64_t n, std::uint64_t k,
                             const float* alpha, const std::uint64_t* a_array,
                             std::uint64_t lda, const std::uint64_t* b_array,
                             std::uint64_t ldb, const float* beta,
                             const std::uint64_t* c_array, std::uint64_t ldc,
                             std::uint64_t batch_count, int stationary);

/// Drains the runtime's command stream (asynchronous offload path); the
/// compiler emits this before host code touches device-produced data.
int polly_cimSynchronize();

}  // namespace tdo::rt::api
