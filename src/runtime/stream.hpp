// Asynchronous command stream for CIM offload (DTO-style work queues).
//
// The paper's runtime submits every job synchronously: ioctl, cache flush,
// spin-poll, copy back — the round trips that make low-intensity kernels
// lose in Figure 6. CimStream removes the round trips without changing the
// device model: commands are enqueued into per-accelerator hardware work
// queues, completions retire through the simulator's event queue, chained
// jobs start back-to-back on the device (their weight-load DMA overlapping
// the previous job's stream phase), and batches round-robin across every
// registered accelerator instance.
//
// Like Intel's DSA Transparent Offload library, the dispatch decision is
// dynamic: a command whose runtime MACs-per-CIM-write falls below the
// configured threshold — or that arrives while the work queue is full —
// executes on the host CPU model instead (see DESIGN.md, "Command streams").
//
// Host<->device copies are stream commands too (Command::Kind::kCopy):
// the transfer engine (runtime/xfer.hpp) plans them, and they execute on
// the accelerator's otherwise-idle DMA channel, overlapping the engine's
// compute. Hazards are tracked at rectangle granularity ({base, pitch,
// width, rows} footprints with a precise 2-D overlap test), so the disjoint
// column stripes of different calls — and copies against disjoint tiles —
// proceed without a drain.
//
// The blocking polly_cimBlas* facade is a thin wrapper over this stream:
// enqueue everything, then synchronize before returning.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cim/context_regs.hpp"
#include "runtime/driver.hpp"
#include "runtime/xfer.hpp"
#include "sim/system.hpp"
#include "support/stats.hpp"
#include "support/status.hpp"
#include "support/threading.hpp"

namespace tdo::rt {

class ResidencyCache;
class HostWorkerPool;

struct StreamParams {
  /// Maximum commands in flight per accelerator (running + queued). Depth 1
  /// reproduces the paper's fully synchronous submit/wait behaviour.
  std::size_t depth = 2;
  /// Dynamic offload threshold on a command's MACs-per-CIM-write (DTO's
  /// DTO_MIN_BYTES analogue). 0 disables CPU fallback by intensity.
  double min_macs_per_write = 0.0;
  /// When the chosen accelerator's queue is full: true falls back to the
  /// host CPU (DTO's ENQ-retry behaviour), false blocks for space.
  bool fallback_when_full = false;
  /// Stats prefix (one stream per runtime; rename when running several).
  std::string name = "stream";
};

/// Aggregate stream behaviour for reporting and perf-trajectory tracking.
struct StreamReport {
  std::uint64_t enqueued = 0;
  std::uint64_t offloaded = 0;
  std::uint64_t cpu_fallbacks = 0;
  std::uint64_t fallbacks_threshold = 0;
  std::uint64_t fallbacks_queue_full = 0;
  std::uint64_t syncs = 0;
  std::uint64_t hazard_syncs = 0;
  /// Single-accelerator drains issued by per-stripe copy-back (the other
  /// accelerators keep computing while a finished stripe copies out).
  std::uint64_t device_drains = 0;
  std::uint64_t occupancy_peak = 0;
  // DMA copy commands (transfer engine, runtime/xfer.hpp).
  std::uint64_t copies_enqueued = 0;
  std::uint64_t copy_bytes = 0;
  /// Scatter-gather segments executed by the devices' copy chains (one
  /// chain = one stream command; a contiguous copy is one segment).
  std::uint64_t copy_segments = 0;
  /// Copy bytes whose transfer window was hidden under engine compute,
  /// summed across every accelerator's DMA channel. Exact: chained jobs'
  /// busy windows are credited as they launch, the engine's own weight and
  /// vector DMA occupancy of the copy's channel is subtracted, so the
  /// figure never exceeds the channel's true idle window.
  std::uint64_t overlapped_copy_bytes = 0;
  /// Ticks copies waited behind earlier reservations on their channel
  /// (stream copies and the engine's own DMA traffic contend).
  std::uint64_t copy_contended_ticks = 0;
  /// Copy chains that migrated off the dedicated copy channel because
  /// another channel was free earlier.
  std::uint64_t copy_migrations = 0;
  // Weight-residency cache behaviour (runtime/residency.hpp).
  std::uint64_t residency_hits = 0;
  std::uint64_t residency_misses = 0;
  std::uint64_t residency_evictions = 0;
  std::uint64_t residency_invalidations = 0;
  /// Prefetch-on-miss speculations issued / paid off, and entries re-homed
  /// accelerator-to-accelerator (peer-to-peer migration).
  std::uint64_t residency_prefetches = 0;
  std::uint64_t residency_prefetch_hits = 0;
  std::uint64_t residency_migrations = 0;
  /// 8-bit weight programs the devices skipped through stationary-tile
  /// reuse (summed across accelerators; the device-side ground truth).
  std::uint64_t weight_writes_saved8 = 0;
  // Cross-thread submission ring (enqueue_from_thread / pump_rings).
  std::uint64_t ring_submitted = 0;
  std::uint64_t ring_rejected = 0;
  std::uint64_t ring_lock_contended = 0;
};

class CimStream {
 public:
  /// One stream command: either a compute job (a fully prepared register
  /// image plus the metadata the dispatcher needs) or a DMA copy descriptor.
  struct Command {
    enum class Kind { kCompute, kCopy };
    Kind kind = Kind::kCompute;
    cim::ContextRegs image;
    /// Runtime cost-model inputs for the dynamic fallback decision.
    std::uint64_t macs = 0;
    std::uint64_t cim_writes = 0;
    /// Fixed accelerator (chained tiles must share a queue); -1 round-robins.
    int device = -1;
    /// False for order-dependent chain links (a beta-accumulating tile must
    /// not run early on the host while its predecessor sits in a queue).
    bool allow_cpu_fallback = true;
    /// kCopy only: the transfer descriptor (image is built internally).
    CopyDesc copy;
  };

  CimStream(StreamParams params, sim::System& system, CimDriver& driver);

  /// Dispatches one command: host CPU when below the intensity threshold or
  /// the queue is full (and fallback is allowed), otherwise into an
  /// accelerator work queue. Returns once the command is accepted — device
  /// execution completes asynchronously. Driver-thread only: the simulator
  /// underneath is single-threaded; other threads use enqueue_from_thread.
  support::Status enqueue(const Command& command);

  /// Thread-safe submission: pushes the command into the caller's shard of
  /// the submission ring without touching the simulator. The driver thread
  /// moves ring contents into the accelerator work queues at its next
  /// pump_rings() / synchronize(). Fails with kResourceExhausted when the
  /// caller's shard is full (backpressure; the caller retries or falls
  /// back), never blocks.
  support::Status enqueue_from_thread(const Command& command);

  /// Driver thread: drains the submission ring into enqueue(). Returns the
  /// first error; remaining commands are still dispatched.
  support::Status pump_rings();

  /// Commands sitting in submission-ring shards, not yet pumped.
  [[nodiscard]] std::size_t ring_pending() const { return ring_.pending(); }
  /// Contended spinlock acquisitions across ring shards (lock-pressure
  /// visibility for bench --dump).
  [[nodiscard]] std::uint64_t ring_lock_contended() const {
    return ring_.lock_contended();
  }

  /// Drains every accelerator (event-driven wait), surfaces any job error,
  /// and forgets the pending-write ranges.
  support::Status synchronize();

  /// Drains one accelerator and retires only its tracked rectangles — the
  /// per-stripe copy-back path waits for a stripe's producer while the other
  /// accelerators keep computing.
  support::Status drain_device(std::size_t device);

  /// Round-robin cursor for callers that pin a chain of dependent commands
  /// to one accelerator.
  [[nodiscard]] std::size_t next_device() {
    return round_robin_++ % driver_.device_count();
  }
  [[nodiscard]] std::size_t device_count() const {
    return driver_.device_count();
  }
  /// Compute commands in flight (running + queued) on one accelerator — the
  /// serving scheduler's shortest-queue placement signal.
  [[nodiscard]] std::size_t device_in_flight(std::size_t device) const {
    return driver_.device(device).in_flight();
  }

  /// Retunes the dynamic CPU-fallback threshold at runtime — the adaptive
  /// admission controller's knob (DTO ships DTO_MIN_BYTES as a static
  /// environment variable; the serving layer re-derives it continuously from
  /// observed device vs host latencies).
  void set_min_macs_per_write(double value) {
    params_.min_macs_per_write = value;
  }

  /// Registers a physical rectangle an in-flight command will write (or
  /// read); cleared by synchronize(). Callers consult writes_overlap()
  /// before reading device memory (RAW/WAW ordering) and reads_overlap()
  /// before writing it (WAR: a queued command's deferred reads must not
  /// observe a later producer's output). Rectangle granularity lets the
  /// disjoint column stripes of different calls — and copies against
  /// disjoint tiles — proceed without a hazard synchronization.
  void note_write(const Rect& r, int device = -1) {
    tracker_.note_write(r, device);
  }
  void note_read(const Rect& r, int device = -1) {
    tracker_.note_read(r, device);
  }
  [[nodiscard]] bool writes_overlap(const Rect& r) const {
    return tracker_.writes_overlap(r);
  }
  [[nodiscard]] bool reads_overlap(const Rect& r) const {
    return tracker_.reads_overlap(r);
  }
  /// Pending write rectangles overlapping `r`, with producing devices (the
  /// stripes the per-stripe copy-back splits along).
  [[nodiscard]] std::vector<TrackedRect> overlapping_writes(const Rect& r) const {
    return tracker_.writes_overlapping(r);
  }

  /// Records that the caller had to synchronize to order around an
  /// in-flight producer (perf-trajectory visibility).
  void count_hazard() { hazard_syncs_.add(); }

  /// True when nothing is in flight and no pending writes are tracked.
  [[nodiscard]] bool idle() const;
  [[nodiscard]] std::size_t in_flight() const;
  [[nodiscard]] const StreamParams& params() const { return params_; }
  [[nodiscard]] StreamReport report() const;

  /// Lets report() include the weight-residency cache's counters (the cache
  /// lives beside the stream in CimRuntime).
  void attach_residency(const ResidencyCache* residency) {
    residency_ = residency;
  }

  /// Attaches the pseudo-async host worker pool: synchronize()/idle()
  /// then also cover in-flight host stripes, so a join point ordering on
  /// the stream orders on the pool too.
  void attach_host_pool(HostWorkerPool* pool) { pool_ = pool; }

  /// Hazard-tracker device id for rectangles written by host-pool stripes.
  /// Past the last real accelerator, so the per-stripe copy-back never
  /// mistakes a pool stripe for an accelerator's.
  [[nodiscard]] int host_pool_device_id() const {
    return static_cast<int>(driver_.device_count());
  }

  /// Runs the event queue until every in-flight host-pool stripe joined.
  void drain_host_pool();

 private:
  /// Executes the command's GEMM on the host CPU model (exact float math,
  /// interpreter-style instruction charges) — the DTO-style fallback.
  support::Status run_on_host(const cim::ContextRegs& image);

  /// Routes a kCopy command onto an accelerator's DMA channel, registering
  /// its rectangles with the hazard tracker.
  support::Status enqueue_copy(const Command& command);

  void note_occupancy();

  /// Waits for one accelerator's work and surfaces its job errors (shared
  /// by synchronize() and drain_device()).
  support::Status drain_one(std::size_t device);

  StreamParams params_;
  sim::System& system_;
  CimDriver& driver_;
  const ResidencyCache* residency_ = nullptr;
  HostWorkerPool* pool_ = nullptr;
  std::size_t round_robin_ = 0;
  RectTracker tracker_;
  support::ShardedRing<Command> ring_;
  std::vector<std::uint64_t> failed_seen_;  // per-device jobs_failed baseline
  std::uint64_t occupancy_seen_ = 0;

  /// Sharded like ring_submitted_: enqueue-path counters are hot and may be
  /// snapshotted by the metrics sampler while submitter threads run.
  support::ShardedCounter enqueued_;
  support::ShardedCounter offloaded_;
  support::ShardedCounter cpu_fallbacks_;
  support::ShardedCounter fallbacks_threshold_;
  support::ShardedCounter fallbacks_queue_full_;
  support::ShardedCounter syncs_;
  support::ShardedCounter hazard_syncs_;
  support::ShardedCounter device_drains_;
  support::Counter occupancy_peak_;
  support::ShardedCounter copies_enqueued_;
  support::ShardedCounter copy_bytes_;
  support::ShardedCounter ring_submitted_;
  support::ShardedCounter ring_rejected_;
};

}  // namespace tdo::rt
