#include "pcm/adc.hpp"

#include <algorithm>

namespace tdo::pcm {

std::int64_t AdcArray::convert(std::int64_t raw) {
  ++conversions_;
  if (!params_.saturate) return raw;
  const std::int64_t max_code = (std::int64_t{1} << params_.bits) - 1;
  if (raw > max_code) {
    ++saturations_;
    return max_code;
  }
  if (raw < 0) {
    ++saturations_;
    return 0;
  }
  return raw;
}

}  // namespace tdo::pcm
