#include "pcm/endurance.hpp"

#include <limits>

namespace tdo::pcm {

double system_lifetime_years(std::uint64_t cell_endurance_writes,
                             std::uint64_t crossbar_bytes,
                             const WriteTraffic& traffic) {
  const double bw = traffic.bytes_per_second();
  if (bw <= 0.0) return 0.0;
  const double seconds = static_cast<double>(cell_endurance_writes) *
                         static_cast<double>(crossbar_bytes) / bw;
  return seconds / kSecondsPerYear;
}

double system_lifetime_years_from_bw(std::uint64_t cell_endurance_writes,
                                     std::uint64_t crossbar_bytes,
                                     double write_traffic_gb_per_s) {
  if (write_traffic_gb_per_s <= 0.0) return 0.0;
  const double seconds = static_cast<double>(cell_endurance_writes) *
                         static_cast<double>(crossbar_bytes) /
                         (write_traffic_gb_per_s * 1e9);
  return seconds / kSecondsPerYear;
}

double lifetime_extension(std::uint64_t bytes_written,
                          std::uint64_t bytes_saved) {
  if (bytes_written == 0) {
    return bytes_saved > 0 ? std::numeric_limits<double>::infinity() : 1.0;
  }
  return static_cast<double>(bytes_written + bytes_saved) /
         static_cast<double>(bytes_written);
}

}  // namespace tdo::pcm
