// ADC + sample-and-hold sharing model (paper Section II-B, Figure 2b).
//
// "To further improve the energy efficiency, ADCs are shared amongst
// multiple columns which are reused using sample and holds (S&H)."
// The functional value path is exact (see crossbar.hpp); this model adds
// (a) conversion counting for the mixed-signal energy lump, and
// (b) optional range saturation for non-ideal ADC studies.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace tdo::pcm {

struct AdcParams {
  std::uint32_t bits = 12;              // per-nibble-column conversion width
  std::uint32_t columns_per_adc = 8;    // S&H sharing factor
  bool saturate = false;                // clamp out-of-range conversions
};

class AdcArray {
 public:
  explicit AdcArray(AdcParams params, std::uint32_t total_phys_columns)
      : params_{params}, total_phys_columns_{total_phys_columns} {}

  [[nodiscard]] const AdcParams& params() const { return params_; }

  /// Number of ADC instances needed for the configured sharing factor.
  [[nodiscard]] std::uint32_t adc_count() const {
    return (total_phys_columns_ + params_.columns_per_adc - 1) /
           params_.columns_per_adc;
  }

  /// Number of sequential conversion waves to digitize all columns once
  /// (each ADC serves its shared columns one after another via the S&H).
  [[nodiscard]] std::uint32_t conversion_waves() const {
    return params_.columns_per_adc;
  }

  /// Applies range behaviour to a raw column accumulation and counts the
  /// conversion. Values within [0, 2^bits) pass through; out-of-range values
  /// clamp when `saturate` is set (they never occur with the default 12-bit
  /// width and 256 active rows).
  [[nodiscard]] std::int64_t convert(std::int64_t raw);

  [[nodiscard]] std::uint64_t conversions() const { return conversions_; }
  [[nodiscard]] std::uint64_t saturations() const { return saturations_; }

 private:
  AdcParams params_;
  std::uint32_t total_phys_columns_;
  std::uint64_t conversions_ = 0;
  std::uint64_t saturations_ = 0;
};

}  // namespace tdo::pcm
