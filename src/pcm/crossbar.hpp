// PCM crossbar array (paper Section II-B, Figure 2c).
//
// Logical geometry: `rows x cols` 8-bit weights. Each 8-bit weight occupies
// two adjacent 4-bit physical columns (MSB nibble, LSB nibble), matching the
// "IBM PCM 2x(256x256 @4-bit)" configuration in Table I.
//
// Signed arithmetic uses offset-binary encoding with digital correction:
// weights and inputs are stored/applied as unsigned (value + 128); the
// digital logic block removes the offset terms using per-column weight sums
// (updated at programming time) and the per-GEMV input sum. This is a
// standard crossbar technique and keeps conductances non-negative while
// recovering the exact signed fixed-point dot product.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pcm/cell.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace tdo::pcm {

struct CrossbarParams {
  std::uint32_t rows = 256;
  std::uint32_t cols = 256;  // logical 8-bit columns
  CellParams cell;
};

/// Result of one analog matrix-vector evaluation: raw signed 32-bit dot
/// products per logical column (already offset-corrected and nibble-combined).
struct GemvResult {
  std::vector<std::int32_t> acc;
};

class Crossbar {
 public:
  explicit Crossbar(CrossbarParams params);

  [[nodiscard]] std::uint32_t rows() const { return params_.rows; }
  [[nodiscard]] std::uint32_t cols() const { return params_.cols; }
  /// Crossbar capacity in 8-bit weights (the "S" of the paper's Eq. 1 when
  /// multiplied by 2 physical 4-bit devices... S is counted in bytes here).
  [[nodiscard]] std::uint64_t capacity_weights() const {
    return static_cast<std::uint64_t>(params_.rows) * params_.cols;
  }

  /// Programs one row of signed 8-bit weights. `weights.size()` must be
  /// <= cols(); remaining columns are programmed to zero only when
  /// `clear_tail` is set. Returns the number of cell writes performed.
  std::uint64_t write_row(std::uint32_t row, std::span<const std::int8_t> weights,
                          bool clear_tail = false);

  /// Evaluates I = v . G over `active_rows` rows starting at physical row
  /// `row0` with signed 8-bit inputs (the row decoder activates an arbitrary
  /// contiguous row window, so several stationary tiles can coexist in
  /// disjoint row ranges). The computation is exact in fixed point (see
  /// header comment); read noise, if enabled in CellParams, perturbs the
  /// analog accumulation.
  [[nodiscard]] GemvResult gemv(std::span<const std::int8_t> inputs,
                                std::uint32_t active_rows,
                                std::uint32_t active_cols,
                                support::Rng* rng = nullptr,
                                std::uint32_t row0 = 0) const;

  /// Digital view of a stored weight (for tests and for result verification).
  [[nodiscard]] std::int8_t weight_at(std::uint32_t row, std::uint32_t col) const;

  // --- wear accounting (drives Figure 5) ---
  [[nodiscard]] std::uint64_t total_cell_writes() const { return total_cell_writes_; }
  [[nodiscard]] std::uint64_t max_cell_writes() const;
  [[nodiscard]] std::uint64_t worn_cells() const;
  [[nodiscard]] const CrossbarParams& params() const { return params_; }

 private:
  // Physical layout: per logical column c, MSB cells at 2c, LSB at 2c+1.
  [[nodiscard]] PcmCell& cell(std::uint32_t row, std::uint32_t phys_col) {
    return cells_[static_cast<std::size_t>(row) * phys_cols_ + phys_col];
  }
  [[nodiscard]] const PcmCell& cell(std::uint32_t row, std::uint32_t phys_col) const {
    return cells_[static_cast<std::size_t>(row) * phys_cols_ + phys_col];
  }

  CrossbarParams params_;
  std::uint32_t phys_cols_;
  std::vector<PcmCell> cells_;
  /// Offset-correction state maintained by the digital interface: sum of
  /// unsigned stored weights per logical column.
  std::vector<std::int64_t> column_weight_sums_;
  std::uint64_t total_cell_writes_ = 0;
};

}  // namespace tdo::pcm
