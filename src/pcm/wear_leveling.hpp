// Start-gap wear leveling (Qureshi et al., MICRO'09 — the paper's ref [9]).
//
// The paper's compile-time endurance optimizations are orthogonal to
// architectural wear leveling; this extension implements the classic
// start-gap scheme at crossbar-row granularity so the two can be composed
// and compared (bench/ablation_wear_leveling): one spare row rotates through
// the array, and after every `gap_move_interval` row writes the gap advances
// by one position, slowly rotating the logical-to-physical row mapping and
// spreading hot rows across the device.
#pragma once

#include <cstdint>

namespace tdo::pcm {

class StartGapRemapper {
 public:
  /// `rows` logical rows are spread over `rows + 1` physical rows (one gap).
  /// The gap moves one slot every `gap_move_interval` recorded writes.
  explicit StartGapRemapper(std::uint32_t rows,
                            std::uint32_t gap_move_interval = 64);

  /// Physical row currently backing `logical_row`.
  [[nodiscard]] std::uint32_t physical_row(std::uint32_t logical_row) const;

  /// Records one logical row write; may advance the gap. Returns true when
  /// the gap moved (the caller must then migrate the displaced row's
  /// contents, which costs one extra row write).
  bool record_write();

  [[nodiscard]] std::uint32_t rows() const { return rows_; }
  [[nodiscard]] std::uint32_t gap_position() const { return gap_; }
  [[nodiscard]] std::uint32_t start() const { return start_; }
  [[nodiscard]] std::uint64_t gap_moves() const { return gap_moves_; }

 private:
  std::uint32_t rows_;
  std::uint32_t interval_;
  std::uint32_t gap_;      // physical index of the unused row
  std::uint32_t start_;    // rotation offset of the mapping
  std::uint32_t writes_since_move_ = 0;
  std::uint64_t gap_moves_ = 0;
};

}  // namespace tdo::pcm
