#include "pcm/wear_leveling.hpp"

#include <cassert>

namespace tdo::pcm {

StartGapRemapper::StartGapRemapper(std::uint32_t rows,
                                   std::uint32_t gap_move_interval)
    : rows_{rows}, interval_{gap_move_interval}, gap_{rows}, start_{0} {
  assert(rows > 0 && gap_move_interval > 0);
}

std::uint32_t StartGapRemapper::physical_row(std::uint32_t logical_row) const {
  assert(logical_row < rows_);
  // Qureshi et al.: PA = (LA + Start) mod N, then skip over the gap slot.
  const std::uint32_t slot = (logical_row + start_) % rows_;
  return slot >= gap_ ? slot + 1 : slot;
}

bool StartGapRemapper::record_write() {
  if (++writes_since_move_ < interval_) return false;
  writes_since_move_ = 0;
  ++gap_moves_;
  // Move the gap one slot toward lower indices; when it would leave the
  // array the mapping has rotated by one full position: Start advances and
  // the gap re-enters at the top (one row migration either way).
  if (gap_ == 0) {
    gap_ = rows_;
    start_ = (start_ + 1) % rows_;
  } else {
    --gap_;
  }
  return true;
}

}  // namespace tdo::pcm
