#include "pcm/crossbar.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "support/fixed_point.hpp"

namespace tdo::pcm {

namespace {
/// Unsigned offset-binary image of a signed 8-bit value.
[[nodiscard]] constexpr std::uint8_t to_offset(std::int8_t v) {
  return static_cast<std::uint8_t>(static_cast<int>(v) + 128);
}
[[nodiscard]] constexpr std::int8_t from_offset(std::uint8_t u) {
  return static_cast<std::int8_t>(static_cast<int>(u) - 128);
}
}  // namespace

Crossbar::Crossbar(CrossbarParams params)
    : params_{params}, phys_cols_{params.cols * 2} {
  cells_.assign(static_cast<std::size_t>(params_.rows) * phys_cols_,
                PcmCell{params_.cell});
  column_weight_sums_.assign(params_.cols, 0);
}

std::uint64_t Crossbar::write_row(std::uint32_t row,
                                  std::span<const std::int8_t> weights,
                                  bool clear_tail) {
  assert(row < params_.rows);
  assert(weights.size() <= params_.cols);
  const std::uint32_t end =
      clear_tail ? params_.cols : static_cast<std::uint32_t>(weights.size());
  std::uint64_t writes = 0;
  for (std::uint32_t c = 0; c < end; ++c) {
    const std::int8_t w = c < weights.size() ? weights[c] : std::int8_t{0};
    const std::uint8_t u = to_offset(w);
    // Maintain the per-column unsigned sum for offset correction.
    const std::uint8_t old_u = to_offset(weight_at(row, c));
    column_weight_sums_[c] += static_cast<std::int64_t>(u) - old_u;
    cell(row, 2 * c).program(static_cast<std::uint8_t>(u >> 4));
    cell(row, 2 * c + 1).program(static_cast<std::uint8_t>(u & 0xF));
    writes += 2;
  }
  total_cell_writes_ += writes;
  return writes;
}

GemvResult Crossbar::gemv(std::span<const std::int8_t> inputs,
                          std::uint32_t active_rows, std::uint32_t active_cols,
                          support::Rng* rng, std::uint32_t row0) const {
  assert(row0 + active_rows <= params_.rows);
  assert(active_cols <= params_.cols);
  assert(inputs.size() >= active_rows);

  // Input offset sum, computed by the digital logic at the row buffers.
  std::int64_t input_sum_u = 0;
  for (std::uint32_t r = 0; r < active_rows; ++r) {
    input_sum_u += to_offset(inputs[r]);
  }

  GemvResult result;
  result.acc.assign(active_cols, 0);

  const bool noisy = rng != nullptr && params_.cell.read_noise_sigma > 0.0;
  const double g_min = params_.cell.g_min_siemens;
  const double g_span = params_.cell.g_max_siemens - g_min;
  const double level_max = 15.0;

  for (std::uint32_t c = 0; c < active_cols; ++c) {
    std::int64_t acc_u;  // sum over rows of in_u * w_u for this column
    if (!noisy) {
      // Exact digital-equivalent evaluation of the two nibble columns.
      std::int64_t msb_sum = 0;
      std::int64_t lsb_sum = 0;
      for (std::uint32_t r = 0; r < active_rows; ++r) {
        const auto in_u = static_cast<std::int64_t>(to_offset(inputs[r]));
        msb_sum += in_u * cell(row0 + r, 2 * c).level();
        lsb_sum += in_u * cell(row0 + r, 2 * c + 1).level();
      }
      acc_u = 16 * msb_sum + lsb_sum;  // digital weighted sum (Section II-B)
    } else {
      // Analog path: currents through noisy conductances, converted back to
      // level units before the weighted sum, mimicking per-column ADCs.
      double msb_current = 0.0;
      double lsb_current = 0.0;
      for (std::uint32_t r = 0; r < active_rows; ++r) {
        const auto in_u = static_cast<double>(to_offset(inputs[r]));
        msb_current += in_u * (cell(row0 + r, 2 * c).conductance(rng) - g_min);
        lsb_current += in_u * (cell(row0 + r, 2 * c + 1).conductance(rng) - g_min);
      }
      const double to_levels = level_max / g_span;
      acc_u = 16 * static_cast<std::int64_t>(std::llround(msb_current * to_levels)) +
              static_cast<std::int64_t>(std::llround(lsb_current * to_levels));
    }
    // Offset correction: sum (in_u - 128)(w_u - 128)
    //   = sum in_u*w_u - 128*sum(in_u) - 128*sum(w_u over active rows) + 128^2*n.
    // column_weight_sums_ covers all rows; inactive rows hold offset-zero
    // (u=128) only if programmed; to stay exact we recompute the active-row
    // weight sum digitally — this is the "mask register" role of the
    // row buffers (Section II-B).
    std::int64_t weight_sum_u = 0;
    for (std::uint32_t r = 0; r < active_rows; ++r) {
      weight_sum_u += to_offset(weight_at(row0 + r, c));
    }
    const std::int64_t n = active_rows;
    const std::int64_t corrected =
        acc_u - 128 * input_sum_u - 128 * weight_sum_u + 128LL * 128LL * n;
    result.acc[c] = static_cast<std::int32_t>(corrected);
  }
  return result;
}

std::int8_t Crossbar::weight_at(std::uint32_t row, std::uint32_t col) const {
  const std::uint8_t u = static_cast<std::uint8_t>(
      (cell(row, 2 * col).level() << 4) | cell(row, 2 * col + 1).level());
  return from_offset(u);
}

std::uint64_t Crossbar::max_cell_writes() const {
  std::uint64_t max_writes = 0;
  for (const PcmCell& c : cells_) max_writes = std::max(max_writes, c.writes());
  return max_writes;
}

std::uint64_t Crossbar::worn_cells() const {
  return static_cast<std::uint64_t>(
      std::count_if(cells_.begin(), cells_.end(),
                    [](const PcmCell& c) { return c.worn_out(); }));
}

}  // namespace tdo::pcm
