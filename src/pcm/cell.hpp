// Multi-level phase-change memory cell (paper Section II-A, Figure 1).
//
// A cell stores a 4-bit level in its conductance state (IBM 4-bit PCM, Table
// I). Programming applies RESET (amorphize) then iterative SET pulses;
// every programming operation wears the cell, which is the quantity the
// paper's endurance-aware compiler transformations minimize.
#pragma once

#include <cstdint>

#include "support/rng.hpp"

namespace tdo::pcm {

/// Device-physics parameters for one PCM cell.
struct CellParams {
  std::uint8_t bits = 4;                 // levels = 2^bits
  double g_min_siemens = 0.1e-6;         // fully amorphous conductance
  double g_max_siemens = 20e-6;          // fully crystalline conductance
  double read_noise_sigma = 0.0;         // relative sigma on conductance reads
  std::uint64_t endurance_writes = 10'000'000;  // cell wears out after this
};

/// One memristive device. Value semantics; a crossbar owns a dense grid.
class PcmCell {
 public:
  PcmCell() = default;
  explicit PcmCell(const CellParams& params) : params_{&params} {}

  /// Number of distinct programmable levels.
  [[nodiscard]] std::uint32_t levels() const { return 1u << params()->bits; }

  /// Programs the cell to `level` (0 = high-resistance amorphous). Counts a
  /// write cycle even when the target equals the current level: the
  /// program-and-verify sequence always applies a RESET pulse first.
  void program(std::uint8_t level);

  /// Programs only when the level changes (differential write optimization;
  /// used by the ablation bench). Returns true when a pulse was applied.
  bool program_if_changed(std::uint8_t level);

  /// Stored level (digital view used by the functional datapath).
  [[nodiscard]] std::uint8_t level() const { return level_; }

  /// Analog conductance, linearly interpolated across levels; applies read
  /// noise when the cell parameters request it.
  [[nodiscard]] double conductance(support::Rng* rng = nullptr) const;

  [[nodiscard]] std::uint64_t writes() const { return writes_; }
  [[nodiscard]] bool worn_out() const {
    return writes_ >= params()->endurance_writes;
  }

 private:
  [[nodiscard]] const CellParams* params() const {
    static constexpr CellParams kDefault{};
    return params_ != nullptr ? params_ : &kDefault;
  }

  const CellParams* params_ = nullptr;  // shared, owned by the crossbar
  std::uint8_t level_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace tdo::pcm
