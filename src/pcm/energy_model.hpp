// Energy / latency model of the CIM accelerator — the "CIM Parameter" half
// of the paper's Table I, centralized so every component and every bench
// charges identical constants.
//
// Interpretation choices (documented in DESIGN.md Section 4):
//  * compute latency 1 us  = one full crossbar GEMV evaluation;
//  * write latency 2.5 us  = one row-parallel programming step (256 8-bit
//    weights programmed concurrently; rows programmed sequentially);
//  * compute energy 200 fJ per 8-bit MAC (two 4-bit cells);
//  * write energy 200 pJ per 8-bit weight (two 4-bit cells);
//  * mixed-signal (DAC + S&H + ADC) 3.9 nJ per GEMV;
//  * digital logic 40 pJ per GEMV weighted-sum + 2.11 pJ per extra ALU op;
//  * row/column/output buffers 5.4 pJ per byte access;
//  * DMA + micro-engine 0.78 nJ per offloaded operation chunk.
#pragma once

#include <cstdint>

#include "support/units.hpp"

namespace tdo::pcm {

struct CimEnergyParams {
  support::Energy compute_per_mac8 = support::Energy::from_fj(200);
  support::Energy write_per_weight8 = support::Energy::from_pj(200);
  support::Energy mixed_signal_per_gemv = support::Energy::from_nj(3.9);
  support::Energy digital_weighted_sum_per_gemv = support::Energy::from_pj(40);
  support::Energy digital_per_extra_alu_op = support::Energy::from_pj(2.11);
  support::Energy buffer_per_byte_access = support::Energy::from_pj(5.4);
  support::Energy dma_engine_per_op = support::Energy::from_nj(0.78);

  support::Duration compute_latency_per_gemv = support::Duration::from_us(1.0);
  support::Duration write_latency_per_row = support::Duration::from_us(2.5);
};

/// Stateless calculator over the Table I constants.
class CimEnergyModel {
 public:
  explicit CimEnergyModel(CimEnergyParams params = {}) : params_{params} {}

  [[nodiscard]] const CimEnergyParams& params() const { return params_; }

  [[nodiscard]] support::Energy compute_energy(std::uint64_t mac8_ops) const {
    return params_.compute_per_mac8 * static_cast<double>(mac8_ops);
  }
  [[nodiscard]] support::Energy write_energy(std::uint64_t weights8) const {
    return params_.write_per_weight8 * static_cast<double>(weights8);
  }
  [[nodiscard]] support::Energy mixed_signal_energy(std::uint64_t gemvs) const {
    return params_.mixed_signal_per_gemv * static_cast<double>(gemvs);
  }
  [[nodiscard]] support::Energy digital_energy(std::uint64_t gemvs,
                                               std::uint64_t extra_alu_ops) const {
    return params_.digital_weighted_sum_per_gemv * static_cast<double>(gemvs) +
           params_.digital_per_extra_alu_op * static_cast<double>(extra_alu_ops);
  }
  [[nodiscard]] support::Energy buffer_energy(std::uint64_t byte_accesses) const {
    return params_.buffer_per_byte_access * static_cast<double>(byte_accesses);
  }
  [[nodiscard]] support::Energy dma_energy(std::uint64_t ops) const {
    return params_.dma_engine_per_op * static_cast<double>(ops);
  }

  [[nodiscard]] support::Duration compute_latency(std::uint64_t gemvs) const {
    return params_.compute_latency_per_gemv * static_cast<double>(gemvs);
  }
  [[nodiscard]] support::Duration write_latency(std::uint64_t rows) const {
    return params_.write_latency_per_row * static_cast<double>(rows);
  }

 private:
  CimEnergyParams params_;
};

}  // namespace tdo::pcm
