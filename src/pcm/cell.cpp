#include "pcm/cell.hpp"

#include <cassert>

namespace tdo::pcm {

void PcmCell::program(std::uint8_t level) {
  assert(level < levels());
  level_ = level;
  ++writes_;
}

bool PcmCell::program_if_changed(std::uint8_t level) {
  assert(level < levels());
  if (level == level_) return false;
  program(level);
  return true;
}

double PcmCell::conductance(support::Rng* rng) const {
  const CellParams& p = *params();
  const double span = p.g_max_siemens - p.g_min_siemens;
  const double ideal =
      p.g_min_siemens + span * static_cast<double>(level_) /
                            static_cast<double>(levels() - 1);
  if (rng != nullptr && p.read_noise_sigma > 0.0) {
    return ideal * (1.0 + rng->normal(0.0, p.read_noise_sigma));
  }
  return ideal;
}

}  // namespace tdo::pcm
