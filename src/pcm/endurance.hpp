// PCM endurance / system lifetime model — Equation (1) of the paper:
//
//     SystemLifeTime = CellEndurance * S / B
//
// with S the crossbar size (bytes) and B the write traffic (bytes/s) of the
// kernel, assuming writes localized uniformly across the crossbar. Figure 5
// sweeps CellEndurance over 10..40 million writes and compares the naive
// mapping against TDO-CIM's fusion-aware "smart" mapping.
#pragma once

#include <cstdint>

#include "support/units.hpp"

namespace tdo::pcm {

/// Aggregate write-traffic observation for one kernel execution.
struct WriteTraffic {
  std::uint64_t bytes_written = 0;       // total bytes programmed to crossbar
  support::Duration execution_time;      // kernel wall time

  /// Write bandwidth B in bytes/second.
  [[nodiscard]] double bytes_per_second() const {
    const double secs = execution_time.seconds();
    if (secs <= 0.0) return 0.0;
    return static_cast<double>(bytes_written) / secs;
  }
};

/// Expected system lifetime in years, Eq. (1).
[[nodiscard]] double system_lifetime_years(std::uint64_t cell_endurance_writes,
                                           std::uint64_t crossbar_bytes,
                                           const WriteTraffic& traffic);

/// Same equation with bandwidth given directly in GB/s (the paper's units).
[[nodiscard]] double system_lifetime_years_from_bw(
    std::uint64_t cell_endurance_writes, std::uint64_t crossbar_bytes,
    double write_traffic_gb_per_s);

/// Lifetime multiplier bought by avoided crossbar writes (Eq. (1) is linear
/// in the inverse write traffic): a kernel that would have programmed
/// `bytes_written + bytes_saved` but, thanks to stationary-tile reuse (the
/// runtime's weight-residency cache), programmed only `bytes_written`, lives
/// (written + saved) / written times longer. Infinity when every write was
/// avoided; 1.0 when nothing was saved.
[[nodiscard]] double lifetime_extension(std::uint64_t bytes_written,
                                        std::uint64_t bytes_saved);

inline constexpr double kSecondsPerYear = 365.25 * 24.0 * 3600.0;

}  // namespace tdo::pcm
