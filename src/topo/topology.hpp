// Two-tier accelerator fabric (CXL-style disaggregated CIM pools).
//
// Near-tier accelerators sit on the host bus at uniform distance, exactly as
// the paper's Figure 2 (a) platform models them. Far-tier accelerators live
// behind a pooling link with a latency multiplier in the 3-10x range typical
// of CXL-attached memory: their DMA engines are derated by the multiplier,
// and their completion signals ride the link as withhold-response messages —
// the host observes a far job's completion only when the response message has
// serialized over the link, not when the device raised it.
//
// The link itself is a contended resource. It reuses the cim::Dma busy-window
// timeline idiom: every response (and every peer-to-peer migration burst)
// occupies a [start, end) window on the link's single timeline, placed
// first-fit at or after its ready tick, so concurrent far-pool traffic
// serializes instead of overlapping for free.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/event_queue.hpp"
#include "support/stats.hpp"
#include "support/units.hpp"

namespace tdo::topo {

struct LinkParams {
  /// Latency derate applied to devices behind this link (>= 1). Near links
  /// use 1.0; CXL-style far pools use 3-10x.
  double latency_multiplier = 4.0;
  /// Serialization bandwidth of the link itself (response messages and
  /// peer-to-peer migration bursts charge this, not the device DMA).
  double bandwidth_bytes_per_sec = 12.8e9;
  /// One-way propagation added to every message crossing the link.
  support::Duration base_latency = support::Duration::from_ns(120);
  /// Size of a completion response message (descriptor + status writeback).
  std::uint64_t response_bytes = 64;
  /// Serialization energy per byte crossing the link (SerDes + retimer cost,
  /// CXL-class ~10 pJ/bit-lane-byte); charged by delivery().
  support::Energy energy_per_byte = support::Energy::from_pj(10);
  std::string name = "link";
};

/// One pooling link: a single busy-window timeline shared by every device
/// behind it (the cim::Dma channel idiom, collapsed to one channel).
class Link {
 public:
  explicit Link(LinkParams params) : params_{std::move(params)} {
    if (params_.latency_multiplier < 1.0) params_.latency_multiplier = 1.0;
  }

  [[nodiscard]] const LinkParams& params() const { return params_; }

  /// Time for `bytes` to serialize over the link (setup = base propagation).
  [[nodiscard]] support::Duration transfer_time(std::uint64_t bytes) const {
    return params_.base_latency +
           support::Duration::from_sec(static_cast<double>(bytes) /
                                       params_.bandwidth_bytes_per_sec);
  }

  /// Reserves a window of `duration` ticks first-fit at or after `earliest`.
  /// Returns the granted start tick; (start - earliest) is contention.
  sim::Tick reserve(sim::Tick earliest, sim::Tick duration);

  /// Withhold-response signaling: a far device finished at `done`; its
  /// completion message of `bytes` crosses the link. Returns the tick the
  /// host actually observes the completion (window start + serialization).
  /// Traced as a span on `link/<name>` with the contention stall in args.
  sim::Tick delivery(sim::Tick done, std::uint64_t bytes);

  /// Drops windows ending at or before `horizon` (same contract as
  /// Dma::retire_before: queries never look behind the current tick).
  void retire_before(sim::Tick horizon);

  /// Ticks link messages waited behind earlier traffic.
  [[nodiscard]] std::uint64_t contended_ticks() const {
    return contended_ticks_.value();
  }
  [[nodiscard]] std::uint64_t responses() const { return responses_.value(); }
  [[nodiscard]] std::uint64_t response_bytes() const {
    return response_bytes_.value();
  }
  [[nodiscard]] support::Energy energy() const { return energy_.total(); }

  void register_stats(support::StatsRegistry& registry) const;

 private:
  struct BusyWindow {
    sim::Tick begin = 0;
    sim::Tick end = 0;
  };

  LinkParams params_;
  std::vector<BusyWindow> windows_;  ///< sorted by begin
  support::Counter contended_ticks_;
  support::Counter responses_;
  support::Counter response_bytes_;
  support::EnergyAccumulator energy_;
};

/// Placement policy over the fabric (the DTO_IS_NUMA_AWARE analogue).
enum class Placement {
  /// Topology-blind: devices are interchangeable (pre-tier behaviour; the
  /// bench baseline).
  kBlind = 0,
  /// Caller-centric: work placed near the caller — fill the near tier to its
  /// queue depth first, spill to the far pool only under pressure.
  kCallerCentric = 1,
  /// Buffer-centric: work follows its resident weights regardless of tier;
  /// falls back to caller-centric when nothing is resident.
  kBufferCentric = 2,
};

/// The fabric map: per-device tier id and link. Near devices (tier 0) have no
/// link; far devices (tier 1+) share the Link of their pool. Consulted by the
/// runtime (stationary placement, migration), the residency cache (re-homing)
/// and the serving scheduler (queue placement, per-tier admission sites).
class Topology {
 public:
  static constexpr int kNearTier = 0;
  static constexpr int kFarTier = 1;

  /// Registers the next device (ids are assigned in add order, matching
  /// CimDriver::add_device order). `link` may be nullptr for near devices.
  void add_device(int tier, Link* link = nullptr) {
    nodes_.push_back(Node{tier, link});
  }

  [[nodiscard]] std::size_t device_count() const { return nodes_.size(); }

  /// Devices the topology was never told about are near: an empty map makes
  /// every consumer behave exactly as before the tier existed.
  [[nodiscard]] int tier(std::size_t device) const {
    return device < nodes_.size() ? nodes_[device].tier : kNearTier;
  }
  [[nodiscard]] Link* link(std::size_t device) const {
    return device < nodes_.size() ? nodes_[device].link : nullptr;
  }
  [[nodiscard]] double latency_multiplier(std::size_t device) const {
    const Link* l = link(device);
    return l == nullptr ? 1.0 : l->params().latency_multiplier;
  }
  [[nodiscard]] bool has_far() const {
    for (const Node& node : nodes_) {
      if (node.tier != kNearTier) return true;
    }
    return false;
  }
  [[nodiscard]] std::size_t tier_size(int tier) const {
    std::size_t n = 0;
    for (const Node& node : nodes_) n += node.tier == tier ? 1 : 0;
    return n;
  }

 private:
  struct Node {
    int tier = kNearTier;
    Link* link = nullptr;
  };
  std::vector<Node> nodes_;
};

/// Parsed form of the bench CLI knob `--topology near:N,far:M[xL]`.
struct TopologySpec {
  std::size_t near = 1;
  std::size_t far = 0;
  double far_multiplier = 4.0;

  [[nodiscard]] std::size_t device_count() const { return near + far; }
};

/// Parses "near:N,far:M" or "near:N,far:Mx<mult>" (e.g. "near:2,far:2x4").
/// Either part may be omitted; returns nullopt on malformed input.
[[nodiscard]] std::optional<TopologySpec> parse_topology_spec(
    std::string_view spec);

}  // namespace tdo::topo
