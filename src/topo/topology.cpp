#include "topo/topology.hpp"

#include <algorithm>
#include <charconv>

#include "obs/trace.hpp"

namespace tdo::topo {

sim::Tick Link::reserve(sim::Tick earliest, sim::Tick duration) {
  // First-fit on the single timeline (windows sorted by begin): slide the
  // candidate past every window it would collide with — one forward pass.
  sim::Tick start = earliest;
  for (const BusyWindow& w : windows_) {
    if (w.end <= start) continue;
    if (w.begin >= start + duration) break;
    start = w.end;
  }
  contended_ticks_.add(start - earliest);
  const BusyWindow w{start, start + duration};
  windows_.insert(std::upper_bound(windows_.begin(), windows_.end(), w,
                                   [](const BusyWindow& a, const BusyWindow& b) {
                                     return a.begin < b.begin;
                                   }),
                  w);
  return start;
}

sim::Tick Link::delivery(sim::Tick done, std::uint64_t bytes) {
  const sim::Tick duration = transfer_time(bytes).ticks();
  const sim::Tick start = reserve(done, duration);
  responses_.add();
  response_bytes_.add(bytes);
  energy_.add(params_.energy_per_byte * static_cast<double>(bytes));
  if (obs::enabled()) {
    obs::Tracer::instance().span("link/" + params_.name, "response", start,
                                 duration,
                                 {{"bytes", bytes}, {"wait", start - done}});
  }
  return start + duration;
}

void Link::retire_before(sim::Tick horizon) {
  windows_.erase(std::remove_if(windows_.begin(), windows_.end(),
                                [horizon](const BusyWindow& w) {
                                  return w.end <= horizon;
                                }),
                 windows_.end());
}

void Link::register_stats(support::StatsRegistry& registry) const {
  registry.register_counter(params_.name + ".contended_ticks",
                            &contended_ticks_);
  registry.register_counter(params_.name + ".responses", &responses_);
  registry.register_counter(params_.name + ".response_bytes",
                            &response_bytes_);
  registry.register_energy(params_.name + ".energy", &energy_);
}

namespace {

bool parse_count(std::string_view text, std::size_t& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

}  // namespace

std::optional<TopologySpec> parse_topology_spec(std::string_view spec) {
  TopologySpec out;
  out.near = 0;  // explicit spec replaces the defaults entirely
  out.far = 0;
  bool any = false;
  while (!spec.empty()) {
    const std::size_t comma = spec.find(',');
    std::string_view part = spec.substr(0, comma);
    spec = comma == std::string_view::npos ? std::string_view{}
                                           : spec.substr(comma + 1);
    const std::size_t colon = part.find(':');
    if (colon == std::string_view::npos) return std::nullopt;
    const std::string_view key = part.substr(0, colon);
    std::string_view value = part.substr(colon + 1);
    if (key == "near") {
      if (!parse_count(value, out.near)) return std::nullopt;
    } else if (key == "far") {
      const std::size_t x = value.find('x');
      if (x != std::string_view::npos) {
        const std::string mult(value.substr(x + 1));
        char* end = nullptr;
        out.far_multiplier = std::strtod(mult.c_str(), &end);
        if (end != mult.c_str() + mult.size() || out.far_multiplier < 1.0) {
          return std::nullopt;
        }
        value = value.substr(0, x);
      }
      if (!parse_count(value, out.far)) return std::nullopt;
    } else {
      return std::nullopt;
    }
    any = true;
  }
  if (!any || out.device_count() == 0) return std::nullopt;
  return out;
}

}  // namespace tdo::topo
