#include "polybench/workloads.hpp"

#include <cmath>
#include <cstdio>

namespace tdo::pb {

namespace {

using Matrix = std::vector<float>;

[[nodiscard]] std::string format(const char* fmt, auto... args) {
  char buf[2048];
  std::snprintf(buf, sizeof buf, fmt, args...);
  return buf;
}

/// PolyBench-style deterministic init, bounded to [-1, 1].
[[nodiscard]] Matrix init_matrix(std::int64_t rows, std::int64_t cols,
                                 int salt) {
  Matrix m(static_cast<std::size_t>(rows * cols));
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < cols; ++j) {
      const auto v = static_cast<double>((i * (j + salt) + salt) % 13 - 6) / 6.0;
      m[static_cast<std::size_t>(i * cols + j)] = static_cast<float>(v);
    }
  }
  return m;
}

/// Double-precision GEMM: C = alpha*A*B + beta*C.
void dgemm(std::int64_t m, std::int64_t n, std::int64_t k, double alpha,
           const Matrix& a, const Matrix& b, double beta, Matrix& c) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a[i * k + kk]) * b[kk * n + j];
      }
      c[i * n + j] =
          static_cast<float>(alpha * acc + beta * c[i * n + j]);
    }
  }
}

/// Analytic quantization tolerance for one chained-GEMM output element.
[[nodiscard]] double gemm_tolerance(double alpha, std::int64_t k,
                                    double range = 1.0) {
  const double e = range / 127.0;  // quantization step at max-abs `range`
  return std::abs(alpha) * static_cast<double>(k) * (2.0 * range * e + e * e) +
         1e-3;
}

}  // namespace

Workload make_gemm(Preset preset) {
  const std::int64_t n = preset == Preset::kTest ? 48 : 256;
  const double alpha = 1.5;
  const double beta = 1.2;
  Workload w;
  w.name = "gemm";
  w.source = format(R"(
kernel gemm(NI = %lld, NJ = %lld, NK = %lld, alpha = 1.5, beta = 1.2) {
  array float A[NI][NK];
  array float B[NK][NJ];
  array float C[NI][NJ];
  for (i = 0; i < NI; i++)
    for (j = 0; j < NJ; j++) {
      C[i][j] = beta * C[i][j];
      for (k = 0; k < NK; k++)
        C[i][j] += alpha * A[i][k] * B[k][j];
    }
}
)",
                    static_cast<long long>(n), static_cast<long long>(n),
                    static_cast<long long>(n));
  w.inputs["A"] = init_matrix(n, n, 1);
  w.inputs["B"] = init_matrix(n, n, 2);
  w.inputs["C"] = init_matrix(n, n, 3);
  Matrix c = w.inputs["C"];
  dgemm(n, n, n, alpha, w.inputs["A"], w.inputs["B"], beta, c);
  w.expected["C"] = std::move(c);
  w.outputs = {"C"};
  w.tolerance = gemm_tolerance(alpha, n);
  return w;
}

Workload make_2mm(Preset preset) {
  const std::int64_t n = preset == Preset::kTest ? 40 : 192;
  const double alpha = 1.2;
  const double beta = 0.8;
  Workload w;
  w.name = "2mm";
  w.source = format(R"(
kernel two_mm(NI = %lld, alpha = 1.2, beta = 0.8) {
  array float A[NI][NI];
  array float B[NI][NI];
  array float tmp[NI][NI];
  array float C[NI][NI];
  array float D[NI][NI];
  for (i = 0; i < NI; i++)
    for (j = 0; j < NI; j++) {
      tmp[i][j] = 0.0;
      for (k = 0; k < NI; k++)
        tmp[i][j] += alpha * A[i][k] * B[k][j];
    }
  for (i = 0; i < NI; i++)
    for (j = 0; j < NI; j++) {
      D[i][j] = beta * D[i][j];
      for (k = 0; k < NI; k++)
        D[i][j] += tmp[i][k] * C[k][j];
    }
}
)",
                    static_cast<long long>(n));
  w.inputs["A"] = init_matrix(n, n, 1);
  w.inputs["B"] = init_matrix(n, n, 2);
  w.inputs["C"] = init_matrix(n, n, 4);
  w.inputs["D"] = init_matrix(n, n, 5);
  w.inputs["tmp"] = Matrix(static_cast<std::size_t>(n * n), 0.0f);
  Matrix tmp(static_cast<std::size_t>(n * n), 0.0f);
  dgemm(n, n, n, alpha, w.inputs["A"], w.inputs["B"], 0.0, tmp);
  Matrix d = w.inputs["D"];
  dgemm(n, n, n, 1.0, tmp, w.inputs["C"], beta, d);
  w.expected["tmp"] = std::move(tmp);
  w.expected["D"] = std::move(d);
  w.outputs = {"tmp", "D"};
  // Two chained quantized GEMMs: first-stage error propagates through the
  // second reduction.
  const double tol1 = gemm_tolerance(alpha, n);
  w.tolerance = gemm_tolerance(1.0, n, /*range=*/alpha * n / 6.0) +
                static_cast<double>(n) * tol1;
  return w;
}

Workload make_3mm(Preset preset) {
  const std::int64_t n = preset == Preset::kTest ? 36 : 160;
  Workload w;
  w.name = "3mm";
  w.source = format(R"(
kernel three_mm(N = %lld) {
  array float A[N][N];
  array float B[N][N];
  array float C[N][N];
  array float D[N][N];
  array float E[N][N];
  array float F[N][N];
  array float G[N][N];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
      E[i][j] = 0.0;
      for (k = 0; k < N; k++)
        E[i][j] += A[i][k] * B[k][j];
    }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
      F[i][j] = 0.0;
      for (k = 0; k < N; k++)
        F[i][j] += C[i][k] * D[k][j];
    }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
      G[i][j] = 0.0;
      for (k = 0; k < N; k++)
        G[i][j] += E[i][k] * F[k][j];
    }
}
)",
                    static_cast<long long>(n));
  w.inputs["A"] = init_matrix(n, n, 1);
  w.inputs["B"] = init_matrix(n, n, 2);
  w.inputs["C"] = init_matrix(n, n, 3);
  w.inputs["D"] = init_matrix(n, n, 4);
  w.inputs["E"] = Matrix(static_cast<std::size_t>(n * n), 0.0f);
  w.inputs["F"] = Matrix(static_cast<std::size_t>(n * n), 0.0f);
  w.inputs["G"] = Matrix(static_cast<std::size_t>(n * n), 0.0f);
  Matrix e(static_cast<std::size_t>(n * n), 0.0f);
  Matrix f(static_cast<std::size_t>(n * n), 0.0f);
  Matrix g(static_cast<std::size_t>(n * n), 0.0f);
  dgemm(n, n, n, 1.0, w.inputs["A"], w.inputs["B"], 0.0, e);
  dgemm(n, n, n, 1.0, w.inputs["C"], w.inputs["D"], 0.0, f);
  dgemm(n, n, n, 1.0, e, f, 0.0, g);
  w.expected["E"] = std::move(e);
  w.expected["F"] = std::move(f);
  w.expected["G"] = std::move(g);
  w.outputs = {"E", "F", "G"};
  const double tol1 = gemm_tolerance(1.0, n);
  w.tolerance = gemm_tolerance(1.0, n, /*range=*/n / 6.0) +
                2.0 * static_cast<double>(n) * tol1;
  return w;
}

Workload make_conv(Preset preset) {
  const std::int64_t h = preset == Preset::kTest ? 40 : 512;
  const std::int64_t ww = preset == Preset::kTest ? 300 : 1024;
  // PolyBench 2D convolution coefficients.
  const double c[3][3] = {{0.2, 0.5, -0.8}, {-0.3, 0.6, -0.9}, {0.4, 0.7, 0.1}};
  Workload w;
  w.name = "conv";
  w.source = format(R"(
kernel conv2d(H = %lld, W = %lld,
              c11 = 0.2, c12 = 0.5, c13 = -0.8,
              c21 = -0.3, c22 = 0.6, c23 = -0.9,
              c31 = 0.4, c32 = 0.7, c33 = 0.1) {
  array float img[H][W];
  array float out[H][W];
  for (i = 0; i < H - 2; i++)
    for (j = 0; j < W - 2; j++)
      out[i][j] = c11 * img[i][j] + c12 * img[i][j + 1] + c13 * img[i][j + 2]
                + c21 * img[i + 1][j] + c22 * img[i + 1][j + 1] + c23 * img[i + 1][j + 2]
                + c31 * img[i + 2][j] + c32 * img[i + 2][j + 1] + c33 * img[i + 2][j + 2];
}
)",
                    static_cast<long long>(h), static_cast<long long>(ww));
  w.inputs["img"] = init_matrix(h, ww, 7);
  w.inputs["out"] = Matrix(static_cast<std::size_t>(h * ww), 0.0f);
  Matrix out(static_cast<std::size_t>(h * ww), 0.0f);
  const Matrix& img = w.inputs["img"];
  for (std::int64_t i = 0; i < h - 2; ++i) {
    for (std::int64_t j = 0; j < ww - 2; ++j) {
      double acc = 0.0;
      for (int di = 0; di < 3; ++di) {
        for (int dj = 0; dj < 3; ++dj) {
          acc += c[di][dj] * img[(i + di) * ww + (j + dj)];
        }
      }
      out[i * ww + j] = static_cast<float>(acc);
    }
  }
  w.expected["out"] = std::move(out);
  w.outputs = {"out"};
  // Toeplitz lowering reduces over k = W+taps-1 with sparse weights; the
  // effective reduction length is 9 taps but quantization error scales with
  // the full crossbar row count conservatively.
  w.tolerance = gemm_tolerance(1.0, ww + 2);
  return w;
}

Workload make_gesummv(Preset preset) {
  const std::int64_t n = preset == Preset::kTest ? 64 : 512;
  const double alpha = 1.3;
  const double beta = 0.7;
  Workload w;
  w.name = "gesummv";
  w.source = format(R"(
kernel gesummv(N = %lld, alpha = 1.3, beta = 0.7) {
  array float A[N][N];
  array float B[N][N];
  array float x[N];
  array float tmp[N];
  array float y[N];
  for (i = 0; i < N; i++) {
    tmp[i] = 0.0;
    y[i] = 0.0;
    for (j = 0; j < N; j++) {
      tmp[i] += A[i][j] * x[j];
      y[i] += B[i][j] * x[j];
    }
    y[i] = alpha * tmp[i] + beta * y[i];
  }
}
)",
                    static_cast<long long>(n));
  w.inputs["A"] = init_matrix(n, n, 1);
  w.inputs["B"] = init_matrix(n, n, 2);
  w.inputs["x"] = init_matrix(n, 1, 3);
  w.inputs["tmp"] = Matrix(static_cast<std::size_t>(n), 0.0f);
  w.inputs["y"] = Matrix(static_cast<std::size_t>(n), 0.0f);
  Matrix tmp(static_cast<std::size_t>(n), 0.0f);
  Matrix y(static_cast<std::size_t>(n), 0.0f);
  const Matrix& a = w.inputs["A"];
  const Matrix& b = w.inputs["B"];
  const Matrix& x = w.inputs["x"];
  for (std::int64_t i = 0; i < n; ++i) {
    double t_acc = 0.0;
    double y_acc = 0.0;
    for (std::int64_t j = 0; j < n; ++j) {
      t_acc += static_cast<double>(a[i * n + j]) * x[j];
      y_acc += static_cast<double>(b[i * n + j]) * x[j];
    }
    tmp[i] = static_cast<float>(t_acc);
    y[i] = static_cast<float>(alpha * t_acc + beta * y_acc);
  }
  w.expected["tmp"] = std::move(tmp);
  w.expected["y"] = std::move(y);
  w.outputs = {"tmp", "y"};
  w.tolerance = (std::abs(alpha) + std::abs(beta)) * gemm_tolerance(1.0, n);
  return w;
}

Workload make_bicg(Preset preset) {
  const std::int64_t n = preset == Preset::kTest ? 64 : 512;
  Workload w;
  w.name = "bicg";
  w.source = format(R"(
kernel bicg(N = %lld, M = %lld) {
  array float A[N][M];
  array float s[M];
  array float q[N];
  array float p[M];
  array float r[N];
  for (i = 0; i < M; i++)
    s[i] = 0.0;
  for (i = 0; i < N; i++) {
    q[i] = 0.0;
    for (j = 0; j < M; j++) {
      s[j] += r[i] * A[i][j];
      q[i] += A[i][j] * p[j];
    }
  }
}
)",
                    static_cast<long long>(n), static_cast<long long>(n));
  w.inputs["A"] = init_matrix(n, n, 1);
  w.inputs["p"] = init_matrix(n, 1, 2);
  w.inputs["r"] = init_matrix(n, 1, 3);
  w.inputs["s"] = Matrix(static_cast<std::size_t>(n), 0.0f);
  w.inputs["q"] = Matrix(static_cast<std::size_t>(n), 0.0f);
  Matrix s(static_cast<std::size_t>(n), 0.0f);
  Matrix q(static_cast<std::size_t>(n), 0.0f);
  const Matrix& a = w.inputs["A"];
  for (std::int64_t i = 0; i < n; ++i) {
    double q_acc = 0.0;
    for (std::int64_t j = 0; j < n; ++j) {
      s[j] += static_cast<float>(static_cast<double>(w.inputs["r"][i]) *
                                 a[i * n + j]);
      q_acc += static_cast<double>(a[i * n + j]) * w.inputs["p"][j];
    }
    q[i] = static_cast<float>(q_acc);
  }
  w.expected["s"] = std::move(s);
  w.expected["q"] = std::move(q);
  w.outputs = {"s", "q"};
  w.tolerance = gemm_tolerance(1.0, n);
  return w;
}

Workload make_mvt(Preset preset) {
  const std::int64_t n = preset == Preset::kTest ? 64 : 512;
  Workload w;
  w.name = "mvt";
  w.source = format(R"(
kernel mvt(N = %lld) {
  array float A[N][N];
  array float x1[N];
  array float x2[N];
  array float y1[N];
  array float y2[N];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      x1[i] += A[i][j] * y1[j];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      x2[i] += A[j][i] * y2[j];
}
)",
                    static_cast<long long>(n));
  w.inputs["A"] = init_matrix(n, n, 1);
  w.inputs["x1"] = init_matrix(n, 1, 2);
  w.inputs["x2"] = init_matrix(n, 1, 3);
  w.inputs["y1"] = init_matrix(n, 1, 4);
  w.inputs["y2"] = init_matrix(n, 1, 5);
  Matrix x1 = w.inputs["x1"];
  Matrix x2 = w.inputs["x2"];
  const Matrix& a = w.inputs["A"];
  for (std::int64_t i = 0; i < n; ++i) {
    double acc1 = static_cast<double>(x1[i]);
    double acc2 = static_cast<double>(x2[i]);
    for (std::int64_t j = 0; j < n; ++j) {
      acc1 += static_cast<double>(a[i * n + j]) * w.inputs["y1"][j];
      acc2 += static_cast<double>(a[j * n + i]) * w.inputs["y2"][j];
    }
    x1[i] = static_cast<float>(acc1);
    x2[i] = static_cast<float>(acc2);
  }
  w.expected["x1"] = std::move(x1);
  w.expected["x2"] = std::move(x2);
  w.outputs = {"x1", "x2"};
  w.tolerance = gemm_tolerance(1.0, n);
  return w;
}

const std::vector<std::string>& kernel_names() {
  static const std::vector<std::string> kNames = {
      "2mm", "3mm", "gemm", "conv", "gesummv", "bicg", "mvt"};
  return kNames;
}

support::StatusOr<Workload> make_workload(const std::string& name,
                                          Preset preset) {
  if (name == "gemm") return make_gemm(preset);
  if (name == "2mm") return make_2mm(preset);
  if (name == "3mm") return make_3mm(preset);
  if (name == "conv") return make_conv(preset);
  if (name == "gesummv") return make_gesummv(preset);
  if (name == "bicg") return make_bicg(preset);
  if (name == "mvt") return make_mvt(preset);
  return support::not_found("unknown kernel " + name);
}

}  // namespace tdo::pb
