// PolyBench/C workloads evaluated by the paper (Section IV): 2mm, 3mm,
// gemm, conv, gesummv, bicg, mvt.
//
// Each workload carries the kernel source in the front-end language, the
// deterministic input data (PolyBench-style init formulas, bounded so 8-bit
// quantization is well-conditioned), a natively computed double-precision
// reference for every output array, and a validation tolerance derived from
// the quantization error bounds.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "support/status.hpp"

namespace tdo::pb {

struct Workload {
  std::string name;
  std::string source;  // kernel-language text fed to the front-end
  std::map<std::string, std::vector<float>> inputs;    // initial contents
  std::map<std::string, std::vector<float>> expected;  // reference outputs
  std::vector<std::string> outputs;  // arrays checked / copied back
  double tolerance = 1e-3;           // max |got - expected| accepted
};

/// Size preset: kTest keeps unit tests fast; kPaper is the bench default.
enum class Preset { kTest, kPaper };

[[nodiscard]] Workload make_gemm(Preset preset);
[[nodiscard]] Workload make_2mm(Preset preset);
[[nodiscard]] Workload make_3mm(Preset preset);
[[nodiscard]] Workload make_conv(Preset preset);
[[nodiscard]] Workload make_gesummv(Preset preset);
[[nodiscard]] Workload make_bicg(Preset preset);
[[nodiscard]] Workload make_mvt(Preset preset);

/// The evaluation order of Figure 6.
[[nodiscard]] const std::vector<std::string>& kernel_names();
[[nodiscard]] support::StatusOr<Workload> make_workload(const std::string& name,
                                                        Preset preset);

}  // namespace tdo::pb
