#include "polybench/harness.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "cim/accelerator.hpp"
#include "exec/interpreter.hpp"
#include "frontend/parser.hpp"
#include "sim/system.hpp"
#include "support/log.hpp"

namespace tdo::pb {

namespace {

using support::Status;
using support::StatusOr;

/// Validates every output array of the workload; returns max abs error.
StatusOr<double> validate(exec::Interpreter& interp, const Workload& workload) {
  double max_err = 0.0;
  for (const std::string& name : workload.outputs) {
    auto got = interp.get_array(name);
    if (!got.is_ok()) return got.status();
    const auto& expected = workload.expected.at(name);
    if (got->size() != expected.size()) {
      return support::internal_error("output size mismatch on " + name);
    }
    for (std::size_t i = 0; i < expected.size(); ++i) {
      max_err = std::max(
          max_err, static_cast<double>(std::fabs((*got)[i] - expected[i])));
    }
  }
  return max_err;
}

StatusOr<RunReport> run_program(const Workload& workload,
                                const exec::Program& program, bool use_cim,
                                const rt::RuntimeConfig& rt_config,
                                const cim::AcceleratorParams& accel_params,
                                std::size_t accelerators) {
  sim::System system;
  cim::Accelerator accel{accel_params, system};
  rt::CimRuntime runtime{rt_config, system, accel};
  // Extra accelerator instances: distinct PMIO windows and stats prefixes;
  // the runtime's command stream round-robins across them.
  std::vector<std::unique_ptr<cim::Accelerator>> extra;
  for (std::size_t i = 1; i < accelerators; ++i) {
    extra.push_back(std::make_unique<cim::Accelerator>(
        cim::instance_params(accel_params, i), system));
    runtime.add_accelerator(*extra.back());
  }

  exec::Interpreter interp{system, use_cim ? &runtime : nullptr};
  TDO_RETURN_IF_ERROR(interp.prepare(program));
  for (const auto& [name, data] : workload.inputs) {
    TDO_RETURN_IF_ERROR(interp.set_array(name, data));
  }

  // ROI begin (the paper inserts ROI markers around the kernel in gem5).
  const auto before = system.snapshot();
  const auto t0 = system.global_time();
  TDO_RETURN_IF_ERROR(interp.run(program));
  const auto t1 = system.global_time();
  const auto delta = system.snapshot().delta_since(before);
  // ROI end.

  RunReport report;
  report.kernel = workload.name;
  report.used_cim = use_cim;
  report.runtime = t1 - t0;
  report.host_instructions = delta.counter_or("host.instructions");
  report.host_energy = delta.energy_or("host.energy");
  // Every registered energy except the host's belongs to an accelerator
  // instance (cim.energy.*, cim1.energy.*, ...).
  for (const auto& [name, pj] : delta.energies_pj) {
    if (name != "host.energy") report.accel_energy += support::Energy::from_pj(pj);
  }
  report.total_energy = report.host_energy + report.accel_energy;
  auto accel_report = accel.report();
  for (const auto& a : extra) {
    const auto r = a->report();
    accel_report.jobs += r.jobs;
    accel_report.gemv_ops += r.gemv_ops;
    accel_report.mac8_ops += r.mac8_ops;
    accel_report.weight_writes8 += r.weight_writes8;
    accel_report.weight_writes_saved8 += r.weight_writes_saved8;
  }
  report.mac_ops = accel_report.mac8_ops;
  report.cim_writes = accel_report.weight_writes8;
  report.macs_per_cim_write = accel_report.macs_per_cim_write();
  report.stream_commands = delta.counter_or("stream.enqueued");
  report.stream_fallbacks = delta.counter_or("stream.cpu_fallbacks");
  report.stream_occupancy = delta.counter_or("stream.occupancy_peak");
  report.copies_enqueued = delta.counter_or("stream.copies_enqueued");
  report.copy_bytes = delta.counter_or("stream.copy_bytes");
  report.host_copies = delta.counter_or("xfer.host_copies");
  report.hazard_syncs = delta.counter_or("stream.hazard_syncs");
  report.device_drains = delta.counter_or("stream.device_drains");
  report.residency_hits = delta.counter_or("residency.hits");
  report.residency_misses = delta.counter_or("residency.misses");
  report.residency_evictions = delta.counter_or("residency.evictions");
  report.residency_invalidations = delta.counter_or("residency.invalidations");
  report.weight_writes_saved = accel_report.weight_writes_saved8;
  for (const auto& [name, value] : delta.counters) {
    if (name.ends_with(".overlap_ticks")) report.overlap_ticks += value;
    if (name.ends_with(".dma.overlapped_copy_bytes")) {
      report.overlapped_copy_bytes += value;
    }
    if (name.ends_with(".copy_segments")) report.copy_segments += value;
    if (name.ends_with(".dma.contended_copy_ticks")) {
      report.copy_contended_ticks += value;
    }
    if (name.ends_with(".dma.copy_migrations")) report.copy_migrations += value;
  }

  auto err = validate(interp, workload);
  if (!err.is_ok()) return err.status();
  report.max_abs_error = *err;
  report.correct = *err <= workload.tolerance;
  if (!report.correct) {
    TDO_LOG(kWarn, "harness") << workload.name << " validation failed: err "
                              << *err << " > tol " << workload.tolerance;
  }
  return report;
}

}  // namespace

StatusOr<RunReport> run_host(const Workload& workload) {
  auto fn = frontend::parse_kernel(workload.source);
  if (!fn.is_ok()) return fn.status();
  const exec::Program program = exec::host_only_program(*fn);
  return run_program(workload, program, /*use_cim=*/false, rt::RuntimeConfig{},
                     cim::AcceleratorParams{}, /*accelerators=*/1);
}

StatusOr<RunReport> run_cim(const Workload& workload,
                            const HarnessOptions& options) {
  auto fn = frontend::parse_kernel(workload.source);
  if (!fn.is_ok()) return fn.status();
  core::CompileResult compiled = core::compile(*fn, options.compile);
  // The compile-time offload policy lowers to the stream's dynamic
  // dispatch threshold — one knob for static intent and runtime fallback.
  rt::RuntimeConfig rt_config = options.runtime;
  rt_config.stream.min_macs_per_write =
      std::max(rt_config.stream.min_macs_per_write,
               compiled.stream_min_macs_per_write);
  auto report = run_program(workload, compiled.cim_program, /*use_cim=*/true,
                            rt_config, options.accelerator,
                            std::max<std::size_t>(1, options.accelerators));
  if (report.is_ok()) report->any_offloaded = compiled.any_offloaded();
  return report;
}

}  // namespace tdo::pb
