#include "polybench/harness.hpp"

#include <cmath>

#include "cim/accelerator.hpp"
#include "exec/interpreter.hpp"
#include "frontend/parser.hpp"
#include "sim/system.hpp"
#include "support/log.hpp"

namespace tdo::pb {

namespace {

using support::Status;
using support::StatusOr;

/// Validates every output array of the workload; returns max abs error.
StatusOr<double> validate(exec::Interpreter& interp, const Workload& workload) {
  double max_err = 0.0;
  for (const std::string& name : workload.outputs) {
    auto got = interp.get_array(name);
    if (!got.is_ok()) return got.status();
    const auto& expected = workload.expected.at(name);
    if (got->size() != expected.size()) {
      return support::internal_error("output size mismatch on " + name);
    }
    for (std::size_t i = 0; i < expected.size(); ++i) {
      max_err = std::max(
          max_err, static_cast<double>(std::fabs((*got)[i] - expected[i])));
    }
  }
  return max_err;
}

StatusOr<RunReport> run_program(const Workload& workload,
                                const exec::Program& program, bool use_cim,
                                const rt::RuntimeConfig& rt_config,
                                const cim::AcceleratorParams& accel_params) {
  sim::System system;
  cim::Accelerator accel{accel_params, system};
  rt::CimRuntime runtime{rt_config, system, accel};

  exec::Interpreter interp{system, use_cim ? &runtime : nullptr};
  TDO_RETURN_IF_ERROR(interp.prepare(program));
  for (const auto& [name, data] : workload.inputs) {
    TDO_RETURN_IF_ERROR(interp.set_array(name, data));
  }

  // ROI begin (the paper inserts ROI markers around the kernel in gem5).
  const auto before = system.snapshot();
  const auto t0 = system.global_time();
  TDO_RETURN_IF_ERROR(interp.run(program));
  const auto t1 = system.global_time();
  const auto delta = system.snapshot().delta_since(before);
  // ROI end.

  RunReport report;
  report.kernel = workload.name;
  report.used_cim = use_cim;
  report.runtime = t1 - t0;
  report.host_instructions = delta.counter_or("host.instructions");
  report.host_energy = delta.energy_or("host.energy");
  report.accel_energy =
      delta.energy_or("cim.energy.write") + delta.energy_or("cim.energy.compute") +
      delta.energy_or("cim.energy.mixed_signal") +
      delta.energy_or("cim.energy.digital") +
      delta.energy_or("cim.energy.buffers") + delta.energy_or("cim.energy.dma");
  report.total_energy = report.host_energy + report.accel_energy;
  const auto accel_report = accel.report();
  report.mac_ops = accel_report.mac8_ops;
  report.cim_writes = accel_report.weight_writes8;
  report.macs_per_cim_write = accel_report.macs_per_cim_write();

  auto err = validate(interp, workload);
  if (!err.is_ok()) return err.status();
  report.max_abs_error = *err;
  report.correct = *err <= workload.tolerance;
  if (!report.correct) {
    TDO_LOG(kWarn, "harness") << workload.name << " validation failed: err "
                              << *err << " > tol " << workload.tolerance;
  }
  return report;
}

}  // namespace

StatusOr<RunReport> run_host(const Workload& workload) {
  auto fn = frontend::parse_kernel(workload.source);
  if (!fn.is_ok()) return fn.status();
  const exec::Program program = exec::host_only_program(*fn);
  return run_program(workload, program, /*use_cim=*/false, rt::RuntimeConfig{},
                     cim::AcceleratorParams{});
}

StatusOr<RunReport> run_cim(const Workload& workload,
                            const HarnessOptions& options) {
  auto fn = frontend::parse_kernel(workload.source);
  if (!fn.is_ok()) return fn.status();
  core::CompileResult compiled = core::compile(*fn, options.compile);
  auto report = run_program(workload, compiled.cim_program, /*use_cim=*/true,
                            options.runtime, options.accelerator);
  if (report.is_ok()) report->any_offloaded = compiled.any_offloaded();
  return report;
}

}  // namespace tdo::pb
