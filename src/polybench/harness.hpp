// Evaluation harness (paper Section IV).
//
// Builds a fresh emulated platform per run, parses the workload's C source
// through the front-end, compiles it with or without Loop Tactics (the two
// compilation strings of the paper: `-O3` vs `-O3 -enable-loop-tactics`),
// executes it with ROI-marker stats deltas, validates results against the
// native reference, and reports the Figure-6 metrics.
#pragma once

#include <string>

#include "cim/accelerator.hpp"
#include "core/pipeline.hpp"
#include "polybench/workloads.hpp"
#include "runtime/cim_blas.hpp"
#include "support/status.hpp"
#include "support/units.hpp"

namespace tdo::pb {

struct RunReport {
  std::string kernel;
  bool used_cim = false;
  bool any_offloaded = false;

  support::Energy total_energy;       // host + accelerator inside the ROI
  support::Energy host_energy;        // host share (driver included)
  support::Energy accel_energy;       // accelerator share (all instances)
  support::Duration runtime;          // ROI wall time
  std::uint64_t host_instructions = 0;
  std::uint64_t mac_ops = 0;          // accelerator MACs (CIM runs)
  std::uint64_t cim_writes = 0;       // 8-bit weights programmed
  double macs_per_cim_write = 0.0;    // Figure 6 (left) secondary axis

  // Command-stream behaviour inside the ROI (perf trajectory for async PRs).
  std::uint64_t stream_commands = 0;   // commands enqueued
  std::uint64_t stream_fallbacks = 0;  // executed on the host CPU instead
  std::uint64_t stream_occupancy = 0;  // peak commands in flight
  std::uint64_t overlap_ticks = 0;     // weight-DMA ticks hidden by chaining
  // Transfer-engine behaviour (DMA copy commands riding the stream).
  std::uint64_t copies_enqueued = 0;        // async copies on the stream
  std::uint64_t copy_bytes = 0;             // bytes moved by those copies
  std::uint64_t copy_segments = 0;          // scatter-gather segments executed
  std::uint64_t overlapped_copy_bytes = 0;  // copy bytes hidden under compute
  std::uint64_t copy_contended_ticks = 0;   // copy wait on channel contention
  std::uint64_t copy_migrations = 0;        // chains moved off the copy channel
  std::uint64_t host_copies = 0;            // blocking host-memcpy fallbacks
  std::uint64_t hazard_syncs = 0;           // drains forced by rect overlap
  std::uint64_t device_drains = 0;          // per-stripe copy-back drains
  // Weight-residency cache behaviour (runtime/residency.hpp).
  std::uint64_t residency_hits = 0;
  std::uint64_t residency_misses = 0;
  std::uint64_t residency_evictions = 0;
  std::uint64_t residency_invalidations = 0;
  /// 8-bit weight programs the devices skipped (stationary-tile reuse).
  std::uint64_t weight_writes_saved = 0;

  bool correct = false;
  double max_abs_error = 0.0;

  [[nodiscard]] double edp() const {
    return support::energy_delay_product(total_energy, runtime);
  }
};

struct HarnessOptions {
  core::CompileOptions compile;
  rt::RuntimeConfig runtime;
  cim::AcceleratorParams accelerator;
  /// Number of accelerator instances; batched/tiled work round-robins
  /// across them through the command stream.
  std::size_t accelerators = 1;
};

/// Runs the workload on the plain host (the Arm-A7 reference bar).
[[nodiscard]] support::StatusOr<RunReport> run_host(const Workload& workload);

/// Runs the workload through the full TDO-CIM flow (host + CIM bar).
[[nodiscard]] support::StatusOr<RunReport> run_cim(const Workload& workload,
                                                   const HarnessOptions& options = {});

}  // namespace tdo::pb
