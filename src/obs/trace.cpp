#include "obs/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "support/log.hpp"

namespace tdo::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

/// Warn+ log lines become instants on the `log` track, stamped with the
/// tracer's last simulated tick (the log sink has no clock access).
void trace_log_tap(support::LogLevel level, const char* component,
                   const std::string& text) {
  if (!enabled()) return;
  Tracer& tracer = Tracer::instance();
  if (level < tracer.params().log_threshold) return;
  std::string name = std::string{support::to_string(level)} + " " +
                     component + ": " + text;
  tracer.instant("log", std::move(name), tracer.last_tick());
}

/// Full-tuple ordering: ties on (ts, track, name, ...) are broken by every
/// remaining field, so equal events are interchangeable and the sorted
/// stream is independent of thread arrival order.
bool event_less(const TraceEvent& a, const TraceEvent& b) {
  if (a.ts != b.ts) return a.ts < b.ts;
  if (a.track != b.track) return a.track < b.track;
  if (a.name != b.name) return a.name < b.name;
  if (a.phase != b.phase) return a.phase < b.phase;
  if (a.dur != b.dur) return a.dur < b.dur;
  if (a.value != b.value) return a.value < b.value;
  return a.args < b.args;
}

void append_json_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

/// Simulated ticks are integer picoseconds; trace-event ts/dur are
/// microseconds. %.6f of ticks/1e6 renders the tick count exactly.
void append_us(std::string& out, std::uint64_t ticks) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%" PRIu64 ".%06" PRIu64, ticks / 1000000,
                ticks % 1000000);
  out += buf;
}

}  // namespace

Tracer::Tracer()
    : ring_{std::make_unique<support::ShardedRing<TraceEvent>>(
          TracerParams{}.shard_capacity)} {}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::start(TracerParams params) {
  clear();
  params_ = params;
  ring_ = std::make_unique<support::ShardedRing<TraceEvent>>(
      params_.shard_capacity);
  support::set_log_tap(&trace_log_tap);
  detail::g_trace_enabled.store(true, std::memory_order_release);
}

void Tracer::stop() {
  detail::g_trace_enabled.store(false, std::memory_order_release);
  support::set_log_tap(nullptr);
  pump();
}

void Tracer::clear() {
  pump();
  collected_.clear();
  for (auto& shard : drop_shards_) {
    shard.count.store(0, std::memory_order_relaxed);
  }
  last_tick_.store(0, std::memory_order_relaxed);
}

void Tracer::note_tick(std::uint64_t tick) {
  std::uint64_t seen = last_tick_.load(std::memory_order_relaxed);
  while (tick > seen && !last_tick_.compare_exchange_weak(
                            seen, tick, std::memory_order_relaxed)) {
  }
}

void Tracer::record(TraceEvent event) {
  if (!ring_->push(std::move(event))) {
    drop_shards_[support::thread_shard_id() % support::kStatShards]
        .count.fetch_add(1, std::memory_order_relaxed);
  }
}

void Tracer::span(std::string track, std::string name, std::uint64_t ts,
                  std::uint64_t dur,
                  std::vector<std::pair<std::string, std::uint64_t>> args) {
  note_tick(ts + dur);
  TraceEvent event;
  event.track = std::move(track);
  event.name = std::move(name);
  event.phase = Phase::kSpan;
  event.ts = ts;
  event.dur = dur;
  event.args = std::move(args);
  record(std::move(event));
}

void Tracer::instant(std::string track, std::string name, std::uint64_t ts,
                     std::vector<std::pair<std::string, std::uint64_t>> args) {
  note_tick(ts);
  TraceEvent event;
  event.track = std::move(track);
  event.name = std::move(name);
  event.phase = Phase::kInstant;
  event.ts = ts;
  event.args = std::move(args);
  record(std::move(event));
}

void Tracer::counter(std::string track, std::string name, std::uint64_t ts,
                     std::uint64_t value) {
  note_tick(ts);
  TraceEvent event;
  event.track = std::move(track);
  event.name = std::move(name);
  event.phase = Phase::kCounter;
  event.ts = ts;
  event.value = value;
  record(std::move(event));
}

void Tracer::pump() {
  for (TraceEvent& event : ring_->drain_all()) {
    collected_.push_back(std::move(event));
  }
}

std::vector<TraceEvent> Tracer::sorted_events() {
  pump();
  std::vector<TraceEvent> events = collected_;
  std::stable_sort(events.begin(), events.end(), &event_less);
  return events;
}

void Tracer::export_json(std::ostream& os) {
  const std::vector<TraceEvent> events = sorted_events();

  // One tid per track, assigned by first appearance in the sorted stream —
  // deterministic, and Perfetto shows tracks in tid order.
  std::vector<std::string> tracks;
  auto tid_of = [&tracks](const std::string& track) -> std::size_t {
    for (std::size_t i = 0; i < tracks.size(); ++i) {
      if (tracks[i] == track) return i + 1;
    }
    tracks.push_back(track);
    return tracks.size();
  };
  for (const TraceEvent& event : events) (void)tid_of(event.track);

  std::string out;
  out.reserve(events.size() * 96 + 4096);
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  out +=
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"tdo-cim simulation\"}}";
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    out += ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(i + 1);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":";
    append_json_string(out, tracks[i]);
    out += "}}";
  }
  for (const TraceEvent& event : events) {
    out += ",\n{\"pid\":1,\"tid\":";
    out += std::to_string(tid_of(event.track));
    out += ",\"name\":";
    append_json_string(out, event.name);
    const std::size_t slash = event.track.find('/');
    out += ",\"cat\":";
    append_json_string(out, slash == std::string::npos
                                ? event.track
                                : event.track.substr(0, slash));
    out += ",\"ts\":";
    append_us(out, event.ts);
    switch (event.phase) {
      case Phase::kSpan:
        out += ",\"ph\":\"X\",\"dur\":";
        append_us(out, event.dur);
        break;
      case Phase::kInstant:
        out += ",\"ph\":\"i\",\"s\":\"t\"";
        break;
      case Phase::kCounter:
        out += ",\"ph\":\"C\"";
        break;
    }
    if (event.phase == Phase::kCounter) {
      out += ",\"args\":{\"value\":";
      out += std::to_string(event.value);
      out += "}";
    } else if (!event.args.empty()) {
      out += ",\"args\":{";
      bool first = true;
      for (const auto& [key, value] : event.args) {
        if (!first) out += ",";
        first = false;
        append_json_string(out, key);
        out += ":";
        out += std::to_string(value);
      }
      out += "}";
    }
    out += "}";
  }
  // Overflow visibility: total + per-shard drop counts ride along as
  // top-level metadata (Perfetto ignores unknown keys; tools/tests read it).
  out += "\n],\"metadata\":{\"dropped\":";
  out += std::to_string(dropped());
  out += ",\"droppedByShard\":[";
  const auto by_shard = dropped_by_shard();
  for (std::size_t i = 0; i < by_shard.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(by_shard[i]);
  }
  out += "]}}\n";
  os << out;
}

}  // namespace tdo::obs
