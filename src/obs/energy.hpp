// Trace-driven energy attribution over the PR 8 critical-path segments.
//
// Every traced activity span now carries the activity *counts* the §5 cost
// model charges (engine jobs: weights written, MACs, GEMVs, ALU ops, buffer
// bytes, DMA bursts; stream copies: DMA bursts; link responses: bytes; host
// pool stripes: MACs). This module replays those counts through an
// integer-femtojoule copy of the Table I constants and lands every joule in
// exactly one of the seven `obs::Segment` buckets:
//
//   engine weight writes            -> kSegWeights   (PCM programming)
//   engine MAC/GEMV/ALU/buffers     -> kSegStream    (crossbar + periphery)
//   engine + stream-copy DMA bursts -> kSegDmaWait   (DMA/micro-engine)
//   link response bytes             -> kSegLink      (pool-link serialization)
//   host-pool stripe MACs           -> kSegStream    (split-path host FLOPs)
//
// All arithmetic is uint64 femtojoules, so `segment_sum() == total_fj` is an
// *exact* invariant (the live EnergyAccumulators store double picojoules and
// round; tests cross-check against them with a tiny relative tolerance
// instead). Host-synchronous fallback compute (`host.energy`) never emits
// spans and is deliberately outside the attributable total.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/critical_path.hpp"
#include "obs/trace.hpp"

namespace tdo::obs {

/// Integer-femtojoule mirror of pcm::CimEnergyParams (+ the host-pool and
/// pool-link byte costs the engine model does not own). Integer so segment
/// sums reconcile exactly; defaults are llround()s of the double constants.
struct EnergyParams {
  std::uint64_t write_fj_per_weight8 = 200'000;   // 200 pJ
  std::uint64_t compute_fj_per_mac8 = 200;        // 200 fJ
  std::uint64_t mixed_signal_fj_per_gemv = 3'900'000;  // 3.9 nJ
  std::uint64_t digital_fj_per_gemv = 40'000;     // 40 pJ
  std::uint64_t digital_fj_per_alu_op = 2'110;    // 2.11 pJ
  std::uint64_t buffer_fj_per_byte = 5'400;       // 5.4 pJ
  std::uint64_t dma_fj_per_burst = 780'000;       // 0.78 nJ
  /// Host worker-pool stripe cost: energy_per_inst * instructions_per_mac
  /// (sim::HostCpuParams 128 pJ x rt::HostPoolParams 6.0).
  std::uint64_t host_fj_per_mac = 768'000;
  /// Pool-link serialization cost per byte (topo::LinkParams::energy_per_byte).
  std::uint64_t link_fj_per_byte = 10'000;        // 10 pJ
};

/// EnergyParams derived from the default-constructed model parameter structs
/// (pcm::CimEnergyParams, sim::HostCpuParams, rt::HostPoolParams,
/// topo::LinkParams) so the integer constants can never silently diverge
/// from the doubles the live accumulators charge.
[[nodiscard]] EnergyParams default_energy_params();

/// Whole-run attribution: femtojoules per segment plus per-source totals.
struct EnergyBreakdown {
  std::array<std::uint64_t, kSegmentCount> seg_fj{};
  /// Per-source totals (each span's joules land in exactly one of these and
  /// exactly one segment).
  std::uint64_t engine_write_fj = 0;
  std::uint64_t engine_stream_fj = 0;  // MAC + mixed-signal + digital + buffers
  std::uint64_t engine_dma_fj = 0;
  std::uint64_t copy_dma_fj = 0;
  std::uint64_t link_fj = 0;
  std::uint64_t host_pool_fj = 0;
  std::uint64_t total_fj = 0;
  std::uint64_t spans_counted = 0;

  [[nodiscard]] std::uint64_t segment_sum() const {
    std::uint64_t total = 0;
    for (const std::uint64_t s : seg_fj) total += s;
    return total;
  }
};

/// Replays every activity span in `events` (a Tracer::sorted_events()
/// stream) through `params`. Deterministic: same trace, same breakdown.
[[nodiscard]] EnergyBreakdown attribute_energy(
    const std::vector<TraceEvent>& events, const EnergyParams& params);

/// Display-only per-class split: each segment's joules divided across
/// deadline classes in proportion to that class's share of the segment's
/// *ticks* in the decomposed request paths (energy spans carry no request
/// identity, so proportional-by-time is the honest apportionment; the
/// row/column sums still match the exact breakdown). Keyed by class track
/// suffix ("interactive", ...); values are femtojoules as double.
using PerClassEnergy =
    std::map<std::string, std::array<double, kSegmentCount>>;

[[nodiscard]] PerClassEnergy per_class_energy(
    const std::vector<RequestPath>& paths, const EnergyBreakdown& breakdown);

}  // namespace tdo::obs
