// Observe-only SLO burn-rate monitor over the sampled metrics series.
//
// Classic SRE multi-window evaluation: each per-class objective (a latency
// target, a shed budget) is checked over a *fast* and a *slow* trailing
// window of the metrics samples. The burn rate is "how fast the error budget
// is being consumed relative to target" (1.0 = exactly on target); a breach
// fires only on the rising edge of BOTH windows crossing the threshold —
// the fast window gives detection latency, the slow window rides out noise
// spikes, and together they can never page on a single bad sample.
//
// SLIs are derived from counters the scheduler already exports:
//   latency: windowed mean = d(serve.latency.<cls>.sum_ps) / d(.count),
//            burn = mean / target
//   shed:    windowed fraction = d(serve.shed.<cls>) / d(serve.requests),
//            burn = fraction / budget
// Windowed deltas use the latest sample at or before (now - W) as the
// baseline; until the series spans a full window the burn is 0 (insufficient
// data never breaches).
//
// Observe-only by design: a breach appends to the breach list, bumps the
// `obs.slo_breaches` counter, and emits an instant on the `slo` trace track.
// No control action — shedding/admission stay owned by the scheduler.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "support/stats.hpp"

namespace tdo::obs {

struct SloSpec {
  /// Deadline-class track suffix ("interactive", "standard", "batch").
  std::string cls;
  /// Latency objective: windowed mean completion latency must stay at or
  /// under this many picoseconds. 0 disables the latency SLI for this class.
  std::uint64_t latency_target_ps = 0;
  /// Shed objective: windowed shed fraction (of submitted requests) must
  /// stay at or under this budget. < 0 disables the shed SLI.
  double shed_budget = -1.0;
};

struct SloParams {
  /// Trailing windows, in simulated ticks. fast <= slow.
  std::uint64_t fast_window_ticks = 0;
  std::uint64_t slow_window_ticks = 0;
  /// Both windows' burn rates must reach this to breach (1.0 = on target).
  double burn_threshold = 1.0;
  /// Counter namespace of the scheduler under observation.
  std::string counter_prefix = "serve";
};

struct SloBreach {
  std::uint64_t tick = 0;
  std::string cls;
  std::string kind;  // "latency" | "shed"
  double fast_burn = 0.0;
  double slow_burn = 0.0;
};

class SloMonitor {
 public:
  SloMonitor(SloParams params, std::vector<SloSpec> specs);

  /// Registers/deregisters the `obs.slo_breaches` counter. attach() before
  /// sampling starts; detach() before the registry outlives the monitor.
  void attach(support::StatsRegistry& registry);
  void detach(support::StatsRegistry& registry);

  /// Evaluates every spec against the new sample (driver thread; called by
  /// MetricsRegistry after each sample lands).
  void on_sample(std::uint64_t tick, const support::StatsSnapshot& snapshot);

  [[nodiscard]] const std::vector<SloBreach>& breaches() const {
    return breaches_;
  }
  [[nodiscard]] std::uint64_t breach_count() const {
    return breach_counter_.value();
  }
  [[nodiscard]] const SloParams& params() const { return params_; }

 private:
  struct Point {
    std::uint64_t tick = 0;
    std::uint64_t lat_count = 0;
    std::uint64_t lat_sum_ps = 0;
    std::uint64_t shed = 0;
    std::uint64_t requests = 0;
  };

  struct Tracked {
    SloSpec spec;
    std::deque<Point> series;
    bool latency_breached = false;
    bool shed_breached = false;
  };

  /// Burn rates over the trailing window ending at the newest point;
  /// {latency_burn, shed_burn}. Zero when the series does not yet span W.
  [[nodiscard]] static std::pair<double, double> window_burn(
      const Tracked& tracked, std::uint64_t window_ticks);

  void note_breach(std::uint64_t tick, const std::string& cls,
                   const char* kind, double fast_burn, double slow_burn);

  SloParams params_;
  std::vector<Tracked> tracked_;
  std::vector<SloBreach> breaches_;
  support::Counter breach_counter_;
};

}  // namespace tdo::obs
