#include "obs/critical_path.hpp"

#include <map>

namespace tdo::obs {

namespace {

std::uint64_t arg_or(const TraceEvent& event, const char* key,
                     std::uint64_t fallback = 0) {
  for (const auto& [name, value] : event.args) {
    if (name == key) return value;
  }
  return fallback;
}

struct EngineJob {
  std::uint64_t trigger = 0;
  std::uint64_t weights_programmed = 0;
  std::uint64_t end = 0;
};

}  // namespace

const char* segment_name(std::size_t segment) {
  switch (segment) {
    case kSegQueue: return "queue_wait";
    case kSegBatchForm: return "batch_form";
    case kSegDispatch: return "dispatch";
    case kSegDmaWait: return "dma_wait";
    case kSegWeights: return "weight_program";
    case kSegStream: return "compute_stream";
    case kSegLink: return "link_delivery";
    default: return "?";
  }
}

std::vector<RequestPath> decompose(const std::vector<TraceEvent>& events) {
  // Engine job spans joined on {device ordinal, jobs-completed count}: job
  // retirement on one accelerator is FIFO, so the pair names one job.
  std::map<std::pair<std::uint64_t, std::uint64_t>, EngineJob> jobs;
  for (const TraceEvent& event : events) {
    if (event.phase != Phase::kSpan || event.name != "job") continue;
    if (event.track.rfind("engine/", 0) != 0) continue;
    EngineJob job;
    job.trigger = event.ts;
    job.weights_programmed = arg_or(event, "wp", event.ts);
    job.end = event.ts + event.dur;
    jobs[{arg_or(event, "dev"), arg_or(event, "completed")}] = job;
  }

  std::vector<RequestPath> paths;
  for (const TraceEvent& event : events) {
    if (event.phase != Phase::kSpan || event.name != "request") continue;
    if (event.track.rfind("sched/", 0) != 0) continue;
    RequestPath path;
    path.id = arg_or(event, "id");
    path.tenant = arg_or(event, "tenant");
    path.cls = event.track.substr(6);
    path.arrival = event.ts;
    path.done = event.ts + event.dur;

    std::uint64_t cursor = path.arrival;
    auto step = [&path, &cursor](std::uint64_t checkpoint, Segment segment) {
      if (checkpoint > path.done) checkpoint = path.done;
      if (checkpoint > cursor) {
        path.seg[segment] += checkpoint - cursor;
        cursor = checkpoint;
      }
    };
    step(arg_or(event, "pull", path.arrival), kSegQueue);
    step(arg_or(event, "close", cursor), kSegBatchForm);
    step(arg_or(event, "launch", cursor), kSegDispatch);

    const std::uint64_t dev = arg_or(event, "dev");  // device ordinal + 1
    if (dev > 0) {
      const auto it = jobs.find({dev, arg_or(event, "target")});
      if (it != jobs.end()) {
        path.device_joined = true;
        step(it->second.trigger, kSegDmaWait);
        step(it->second.weights_programmed, kSegWeights);
        step(it->second.end, kSegStream);
      }
    }
    // Remainder: link delivery past the device-done tick, or host compute
    // when no engine span defines the completion.
    step(path.done, path.device_joined ? kSegLink : kSegStream);
    paths.push_back(std::move(path));
  }
  return paths;
}

}  // namespace tdo::obs
