#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>

#include "obs/trace.hpp"

namespace tdo::obs {

namespace {

/// Stand-in burn for "budget is zero but errors happened" — large enough to
/// clear any sane threshold, finite so the milli-unit trace args stay sane.
constexpr double kInfiniteBurn = 1e9;

}  // namespace

SloMonitor::SloMonitor(SloParams params, std::vector<SloSpec> specs)
    : params_{params} {
  if (params_.fast_window_ticks == 0) params_.fast_window_ticks = 1;
  if (params_.slow_window_ticks < params_.fast_window_ticks) {
    params_.slow_window_ticks = params_.fast_window_ticks;
  }
  tracked_.reserve(specs.size());
  for (SloSpec& spec : specs) {
    tracked_.push_back(Tracked{std::move(spec), {}, false, false});
  }
}

void SloMonitor::attach(support::StatsRegistry& registry) {
  registry.register_counter("obs.slo_breaches", &breach_counter_);
}

void SloMonitor::detach(support::StatsRegistry& registry) {
  registry.unregister_counter(&breach_counter_);
}

std::pair<double, double> SloMonitor::window_burn(
    const Tracked& tracked, std::uint64_t window_ticks) {
  if (tracked.series.size() < 2) return {0.0, 0.0};
  const Point& now = tracked.series.back();
  if (now.tick < window_ticks) return {0.0, 0.0};
  const std::uint64_t start = now.tick - window_ticks;
  // Baseline: the latest point at or before the window start. If every
  // older point is inside the window the series does not span it yet.
  const Point* base = nullptr;
  for (const Point& p : tracked.series) {
    if (p.tick > start) break;
    base = &p;
  }
  if (base == nullptr || base == &now) return {0.0, 0.0};

  double latency_burn = 0.0;
  if (tracked.spec.latency_target_ps > 0) {
    const std::uint64_t dcount = now.lat_count - base->lat_count;
    if (dcount > 0) {
      const double mean_ps =
          static_cast<double>(now.lat_sum_ps - base->lat_sum_ps) /
          static_cast<double>(dcount);
      latency_burn =
          mean_ps / static_cast<double>(tracked.spec.latency_target_ps);
    }
  }

  double shed_burn = 0.0;
  if (tracked.spec.shed_budget >= 0.0) {
    const std::uint64_t dshed = now.shed - base->shed;
    const std::uint64_t drequests = now.requests - base->requests;
    if (dshed > 0) {
      const double fraction = drequests > 0
                                  ? static_cast<double>(dshed) /
                                        static_cast<double>(drequests)
                                  : 1.0;
      shed_burn = tracked.spec.shed_budget > 0.0
                      ? fraction / tracked.spec.shed_budget
                      : kInfiniteBurn;
    }
  }
  return {latency_burn, shed_burn};
}

void SloMonitor::note_breach(std::uint64_t tick, const std::string& cls,
                             const char* kind, double fast_burn,
                             double slow_burn) {
  breaches_.push_back(SloBreach{tick, cls, kind, fast_burn, slow_burn});
  breach_counter_.add();
  if (enabled()) {
    const auto milli = [](double burn) {
      return static_cast<std::uint64_t>(
          std::llround(std::min(burn, kInfiniteBurn) * 1000.0));
    };
    Tracer::instance().instant(
        "slo", cls + "." + kind, tick,
        {{"fast_milli", milli(fast_burn)}, {"slow_milli", milli(slow_burn)}});
  }
}

void SloMonitor::on_sample(std::uint64_t tick,
                           const support::StatsSnapshot& snapshot) {
  const std::string& prefix = params_.counter_prefix;
  for (Tracked& tracked : tracked_) {
    const std::string latency_key =
        prefix + ".latency." + tracked.spec.cls;
    Point point;
    point.tick = tick;
    point.lat_count = snapshot.counter_or(latency_key + ".count");
    point.lat_sum_ps = snapshot.counter_or(latency_key + ".sum_ps");
    point.shed = snapshot.counter_or(prefix + ".shed." + tracked.spec.cls);
    point.requests = snapshot.counter_or(prefix + ".requests");
    tracked.series.push_back(point);
    // Keep exactly one baseline candidate older than the slow window.
    const std::uint64_t horizon =
        tick >= params_.slow_window_ticks ? tick - params_.slow_window_ticks
                                          : 0;
    while (tracked.series.size() > 2 && tracked.series[1].tick <= horizon) {
      tracked.series.pop_front();
    }

    const auto [fast_latency, fast_shed] =
        window_burn(tracked, params_.fast_window_ticks);
    const auto [slow_latency, slow_shed] =
        window_burn(tracked, params_.slow_window_ticks);

    const bool latency_hot = fast_latency >= params_.burn_threshold &&
                             slow_latency >= params_.burn_threshold;
    if (latency_hot && !tracked.latency_breached) {
      note_breach(tick, tracked.spec.cls, "latency", fast_latency,
                  slow_latency);
    }
    tracked.latency_breached = latency_hot;

    const bool shed_hot = fast_shed >= params_.burn_threshold &&
                          slow_shed >= params_.burn_threshold;
    if (shed_hot && !tracked.shed_breached) {
      note_breach(tick, tracked.spec.cls, "shed", fast_shed, slow_shed);
    }
    tracked.shed_breached = shed_hot;
  }
}

}  // namespace tdo::obs
