#include "obs/energy.hpp"

#include <cmath>

#include "pcm/energy_model.hpp"
#include "runtime/host_pool.hpp"
#include "sim/host_cpu.hpp"
#include "topo/topology.hpp"

namespace tdo::obs {

namespace {

[[nodiscard]] std::uint64_t arg_or(const TraceEvent& event,
                                   const char* key, std::uint64_t fallback) {
  for (const auto& [name, value] : event.args) {
    if (name == key) return value;
  }
  return fallback;
}

[[nodiscard]] bool track_starts_with(const TraceEvent& event,
                                     const char* prefix) {
  return event.track.rfind(prefix, 0) == 0;
}

[[nodiscard]] std::uint64_t fj_of(support::Energy e) {
  return static_cast<std::uint64_t>(std::llround(e.femtojoules()));
}

}  // namespace

EnergyParams default_energy_params() {
  const pcm::CimEnergyParams cim{};
  const sim::HostParams host{};
  const rt::HostPoolParams pool{};
  const topo::LinkParams link{};
  EnergyParams p;
  p.write_fj_per_weight8 = fj_of(cim.write_per_weight8);
  p.compute_fj_per_mac8 = fj_of(cim.compute_per_mac8);
  p.mixed_signal_fj_per_gemv = fj_of(cim.mixed_signal_per_gemv);
  p.digital_fj_per_gemv = fj_of(cim.digital_weighted_sum_per_gemv);
  p.digital_fj_per_alu_op = fj_of(cim.digital_per_extra_alu_op);
  p.buffer_fj_per_byte = fj_of(cim.buffer_per_byte_access);
  p.dma_fj_per_burst = fj_of(cim.dma_engine_per_op);
  p.host_fj_per_mac =
      fj_of(host.energy_per_inst * pool.instructions_per_mac);
  p.link_fj_per_byte = fj_of(link.energy_per_byte);
  return p;
}

EnergyBreakdown attribute_energy(const std::vector<TraceEvent>& events,
                                 const EnergyParams& params) {
  EnergyBreakdown out;
  for (const TraceEvent& event : events) {
    if (event.phase != Phase::kSpan) continue;
    if (track_starts_with(event, "engine/") && event.name == "job") {
      const std::uint64_t write =
          arg_or(event, "ww8", 0) * params.write_fj_per_weight8;
      const std::uint64_t stream =
          arg_or(event, "mac", 0) * params.compute_fj_per_mac8 +
          arg_or(event, "gemv", 0) *
              (params.mixed_signal_fj_per_gemv + params.digital_fj_per_gemv) +
          arg_or(event, "alu", 0) * params.digital_fj_per_alu_op +
          arg_or(event, "bufb", 0) * params.buffer_fj_per_byte;
      const std::uint64_t dma =
          arg_or(event, "dmab", 0) * params.dma_fj_per_burst;
      out.engine_write_fj += write;
      out.engine_stream_fj += stream;
      out.engine_dma_fj += dma;
      out.seg_fj[kSegWeights] += write;
      out.seg_fj[kSegStream] += stream;
      out.seg_fj[kSegDmaWait] += dma;
      ++out.spans_counted;
    } else if (track_starts_with(event, "dma/") && event.name == "copy") {
      const std::uint64_t dma =
          arg_or(event, "dmab", 0) * params.dma_fj_per_burst;
      out.copy_dma_fj += dma;
      out.seg_fj[kSegDmaWait] += dma;
      ++out.spans_counted;
    } else if (track_starts_with(event, "link/") &&
               event.name == "response") {
      const std::uint64_t link =
          arg_or(event, "bytes", 0) * params.link_fj_per_byte;
      out.link_fj += link;
      out.seg_fj[kSegLink] += link;
      ++out.spans_counted;
    } else if (track_starts_with(event, "host_pool") &&
               event.name == "stripe") {
      const std::uint64_t host =
          arg_or(event, "macs", 0) * params.host_fj_per_mac;
      out.host_pool_fj += host;
      out.seg_fj[kSegStream] += host;
      ++out.spans_counted;
    }
  }
  out.total_fj = out.engine_write_fj + out.engine_stream_fj +
                 out.engine_dma_fj + out.copy_dma_fj + out.link_fj +
                 out.host_pool_fj;
  return out;
}

PerClassEnergy per_class_energy(const std::vector<RequestPath>& paths,
                                const EnergyBreakdown& breakdown) {
  // Per-segment tick totals, overall and per class.
  std::array<double, kSegmentCount> seg_ticks{};
  std::map<std::string, std::array<double, kSegmentCount>> class_ticks;
  for (const RequestPath& path : paths) {
    auto& cls = class_ticks[path.cls];
    for (std::size_t s = 0; s < kSegmentCount; ++s) {
      seg_ticks[s] += static_cast<double>(path.seg[s]);
      cls[s] += static_cast<double>(path.seg[s]);
    }
  }
  PerClassEnergy out;
  for (const auto& [cls, ticks] : class_ticks) {
    auto& fj = out[cls];
    for (std::size_t s = 0; s < kSegmentCount; ++s) {
      if (seg_ticks[s] <= 0.0) continue;
      fj[s] = static_cast<double>(breakdown.seg_fj[s]) * ticks[s] /
              seg_ticks[s];
    }
  }
  return out;
}

}  // namespace tdo::obs
