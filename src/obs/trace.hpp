// Simulation-time tracing: span/instant/counter events stamped with
// *simulated* ticks, exported as Chrome trace-event JSON (Perfetto-loadable).
//
// Design constraints (DESIGN.md §13):
//  - Zero cost when off. Every instrumentation site guards on
//    `obs::enabled()`, a single relaxed atomic load; the tracer only ever
//    *records* — it never charges simulated time or perturbs event order —
//    so a run with tracing disabled is bit-identical to a build without it.
//  - Race-free under real submitter threads. Events land in bounded
//    per-thread shards (the support/threading.hpp ShardedRing idiom), so
//    `enqueue_from_thread` / `submit_from_thread` producers trace without
//    taking any shared lock; the simulation driver thread drains shards.
//  - Deterministic export. Events are sorted by their full field tuple
//    (tick, track, name, ...), never by arrival order, so the same seed
//    yields a byte-identical JSON stream.
//
// Track taxonomy (one Perfetto track per row):
//   engine/<accel>    job spans: trigger -> done, args {enq, wp, completed}
//   dma/<accel>.ch<k> copy-window spans, args {bytes, segs, wait}
//   link/<name>       far-fabric response-delivery spans, args {bytes, wait}
//   host_pool/w<k>    host worker stripe spans, args {seq, macs}
//   sched/<class>     per-request spans (critical-path checkpoints in args)
//   batcher, admission, residency, log, sched ...  instant/counter rows
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "support/log.hpp"
#include "support/threading.hpp"

namespace tdo::obs {

enum class Phase : std::uint8_t { kSpan = 0, kInstant = 1, kCounter = 2 };

/// One recorded event. Timestamps are simulated ticks (integer picoseconds);
/// args are typed numeric pairs so the in-memory analyzer never re-parses
/// strings and the JSON export stays locale-independent.
struct TraceEvent {
  std::string track;
  std::string name;
  Phase phase = Phase::kInstant;
  std::uint64_t ts = 0;
  std::uint64_t dur = 0;    // kSpan only
  std::uint64_t value = 0;  // kCounter only
  std::vector<std::pair<std::string, std::uint64_t>> args;
};

struct TracerParams {
  /// Bounded per-thread shard capacity; pushes beyond it are counted as
  /// dropped rather than growing without limit.
  std::size_t shard_capacity = 1u << 16;
  /// Minimum log level mirrored onto the `log` track while tracing.
  support::LogLevel log_threshold = support::LogLevel::kWarn;
};

namespace detail {
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

/// The global on/off gate. Relaxed load — this is the *only* cost any
/// instrumentation site pays when tracing is off.
[[nodiscard]] inline bool enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Process-wide trace recorder. start()/stop()/drain run on the simulation
/// driver thread; record sites may run on any thread (each lands in its own
/// shard). Sites without clock access stamp with last_tick().
class Tracer {
 public:
  static Tracer& instance();

  /// Clears any previous trace and enables recording.
  void start(TracerParams params = {});
  /// Disables recording (producer threads must be joined) and drains the
  /// shards so events() sees everything.
  void stop();
  /// Drops all recorded events (does not change the enabled state).
  void clear();

  void span(std::string track, std::string name, std::uint64_t ts,
            std::uint64_t dur,
            std::vector<std::pair<std::string, std::uint64_t>> args = {});
  void instant(std::string track, std::string name, std::uint64_t ts,
               std::vector<std::pair<std::string, std::uint64_t>> args = {});
  void counter(std::string track, std::string name, std::uint64_t ts,
               std::uint64_t value);

  /// Most recent explicitly-stamped tick; clockless sites (log lines,
  /// residency bookkeeping, admission retunes) timestamp with this.
  [[nodiscard]] std::uint64_t last_tick() const {
    return last_tick_.load(std::memory_order_relaxed);
  }
  /// Advances last_tick() monotonically (also done by every explicit-ts
  /// record); the driver calls this as simulated time moves.
  void note_tick(std::uint64_t tick);

  /// Drains the per-thread shards into the collected list (driver thread).
  void pump();

  /// All events pumped so far, sorted by the full field tuple — the
  /// deterministic stream the exporter and analyzer consume.
  [[nodiscard]] std::vector<TraceEvent> sorted_events();

  /// Chrome trace-event JSON ("traceEvents" array, ph X/i/C/M). Tracks map
  /// to pid 1 / one tid per track named via thread_name metadata; ts/dur are
  /// microseconds with .6f precision (exact for integer-picosecond ticks).
  void export_json(std::ostream& os);

  /// Total events refused because a shard was full. Per-shard counts point
  /// at which producer (thread shard) overflowed; both are exported in the
  /// JSON metadata so overflow is visible, not just counted.
  [[nodiscard]] std::uint64_t dropped() const {
    std::uint64_t total = 0;
    for (const auto& shard : drop_shards_) {
      total += shard.count.load(std::memory_order_relaxed);
    }
    return total;
  }
  [[nodiscard]] std::array<std::uint64_t, support::kStatShards>
  dropped_by_shard() const {
    std::array<std::uint64_t, support::kStatShards> out{};
    for (std::size_t i = 0; i < support::kStatShards; ++i) {
      out[i] = drop_shards_[i].count.load(std::memory_order_relaxed);
    }
    return out;
  }
  [[nodiscard]] std::size_t collected_count() const {
    return collected_.size();
  }
  [[nodiscard]] const TracerParams& params() const { return params_; }

 private:
  Tracer();

  void record(TraceEvent event);

  TracerParams params_{};
  /// Owned indirectly: ShardedRing holds atomics (not reassignable), and
  /// start() rebuilds it to apply the configured shard capacity.
  std::unique_ptr<support::ShardedRing<TraceEvent>> ring_;
  std::vector<TraceEvent> collected_;
  /// Cache-line-padded per-shard drop counts (same sharding as the ring, so
  /// a full shard's producer only ever touches its own line).
  struct alignas(64) DropShard {
    std::atomic<std::uint64_t> count{0};
  };
  std::array<DropShard, support::kStatShards> drop_shards_{};
  std::atomic<std::uint64_t> last_tick_{0};
};

}  // namespace tdo::obs
