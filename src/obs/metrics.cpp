#include "obs/metrics.hpp"

#include <cinttypes>
#include <cstdio>
#include <string>

#include "obs/slo.hpp"
#include "obs/trace.hpp"

namespace tdo::obs {

namespace detail {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace detail

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

/// Shortest round-trip decimal for a double — %.17g is exact for every
/// double, so the same sample always prints the same bytes.
void append_json_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

void MetricsRegistry::start(const support::StatsRegistry* stats,
                            MetricsParams params) {
  clear();
  stats_ = stats;
  params_ = params;
  if (params_.sample_every == 0) params_.sample_every = 1;
  next_due_ = 0;
  detail::g_metrics_enabled.store(true, std::memory_order_release);
}

void MetricsRegistry::stop() {
  detail::g_metrics_enabled.store(false, std::memory_order_release);
}

void MetricsRegistry::clear() {
  samples_.clear();
  evicted_ = 0;
  next_due_ = 0;
}

void MetricsRegistry::maybe_sample(std::uint64_t tick) {
  if (stats_ == nullptr || tick < next_due_) return;
  sample_at(tick);
}

void MetricsRegistry::force_sample(std::uint64_t tick) {
  if (stats_ == nullptr) return;
  if (!samples_.empty() && samples_.back().tick == tick) return;
  sample_at(tick);
}

void MetricsRegistry::sample_at(std::uint64_t tick) {
  // Advance to the start of the *next* grid cell, so at most one sample
  // lands per sample_every-tick cell however often the loops pump.
  next_due_ = (tick / params_.sample_every + 1) * params_.sample_every;
  samples_.push_back(MetricsSample{tick, stats_->snapshot()});
  while (samples_.size() > params_.capacity) {
    samples_.pop_front();
    ++evicted_;
  }
  if (slo_ != nullptr) slo_->on_sample(tick, samples_.back().snapshot);
}

void MetricsRegistry::export_json(std::ostream& os) const {
  std::string out;
  out.reserve(samples_.size() * 2048 + 256);
  out += "{\"schema\":\"tdo.metrics.v1\",\"sample_every\":";
  out += std::to_string(params_.sample_every);
  out += ",\"evicted\":";
  out += std::to_string(evicted_);
  out += ",\"samples\":[";
  bool first_sample = true;
  for (const MetricsSample& sample : samples_) {
    out += first_sample ? "\n" : ",\n";
    first_sample = false;
    out += "{\"tick\":";
    out += std::to_string(sample.tick);
    out += ",\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : sample.snapshot.counters) {
      if (!first) out += ",";
      first = false;
      append_json_string(out, name);
      out += ":";
      out += std::to_string(value);
    }
    out += "},\"energies_pj\":{";
    first = true;
    for (const auto& [name, value] : sample.snapshot.energies_pj) {
      if (!first) out += ",";
      first = false;
      append_json_string(out, name);
      out += ":";
      append_json_double(out, value);
    }
    out += "}}";
  }
  out += "\n]}\n";
  os << out;
}

void MetricsRegistry::append_counter_tracks() const {
  if (!enabled()) return;
  Tracer& tracer = Tracer::instance();
  // One Perfetto counter track per stat, emitting only value changes (plus
  // the first sample) so flat counters cost one event each.
  std::map<std::string, std::uint64_t> last;
  for (const MetricsSample& sample : samples_) {
    for (const auto& [name, value] : sample.snapshot.counters) {
      const auto it = last.find(name);
      if (it != last.end() && it->second == value) continue;
      last[name] = value;
      tracer.counter("metrics/" + name, name, sample.tick, value);
    }
  }
}

}  // namespace tdo::obs
