// Post-hoc critical-path attribution over a recorded trace.
//
// Every serving request span (track `sched/<class>`, name `request`) carries
// its checkpoint ticks as args: pull (left the tenant queue), close (batch
// closed / dispatch began), launch (the runtime launch call returned), plus
// the identity of the completion-defining device target. The analyzer joins
// that span with the matching engine job span (track `engine/<accel>`,
// joined on {dev, completed-count}) and walks the checkpoints with a
// monotone cursor:
//
//   arrival -> pull        queue wait
//   pull    -> close       batch-form wait
//   close   -> launch      dispatch
//   launch  -> trigger     DMA / work-queue contention before the job fires
//   trigger -> wp          weight-program phase
//   wp      -> job end     compute stream phase
//   job end -> done        far-link response delivery
//
// Each step adds max(0, checkpoint - cursor) and clamps the cursor up, so
// the seven segments always sum *exactly* to the end-to-end latency — the
// reconciliation invariant the tests and the bench gate enforce.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace tdo::obs {

enum Segment : std::size_t {
  kSegQueue = 0,
  kSegBatchForm,
  kSegDispatch,
  kSegDmaWait,
  kSegWeights,
  kSegStream,
  kSegLink,
  kSegmentCount,
};

[[nodiscard]] const char* segment_name(std::size_t segment);

struct RequestPath {
  std::uint64_t id = 0;
  std::uint64_t tenant = 0;
  std::string cls;  // scheduler class track suffix ("interactive", ...)
  std::uint64_t arrival = 0;
  std::uint64_t done = 0;
  std::array<std::uint64_t, kSegmentCount> seg{};
  /// True when the completion-defining engine job span was found; false for
  /// host-synchronous or host-pool-critical requests (their post-launch time
  /// lands in kSegStream).
  bool device_joined = false;

  [[nodiscard]] std::uint64_t e2e() const { return done - arrival; }
  [[nodiscard]] std::uint64_t segment_sum() const {
    std::uint64_t total = 0;
    for (const std::uint64_t s : seg) total += s;
    return total;
  }
};

/// Decomposes every request span in `events` (a Tracer::sorted_events()
/// stream). Output order follows the sorted stream, so it is deterministic.
[[nodiscard]] std::vector<RequestPath> decompose(
    const std::vector<TraceEvent>& events);

}  // namespace tdo::obs
