// Simulated-time metrics sampling: bounded time series over the stats layer.
//
// The MetricsRegistry is the layer above StatsRegistry (point-in-time
// counters) and below the benches (whole-run tables): driven by simulated
// ticks, it snapshots every registered counter / energy / histogram quantile
// into a bounded ring of samples, giving each stat a *trajectory* instead of
// a single end-of-run number.
//
// Design constraints (DESIGN.md §15):
//  - Zero cost when off. Drive loops call `obs::metrics_pump(tick)`, whose
//    entire disabled cost is one relaxed atomic load — the same contract as
//    `obs::enabled()`, so a metrics-off run is bit-identical to a build
//    without the subsystem.
//  - Race-free under `--threads N`. Sampling happens only on the simulation
//    driver thread, and `StatsRegistry::snapshot()` already merges sharded
//    counters/histograms at read time, so a sample taken while submitter
//    threads increment is exact (never torn, never double-counted).
//  - Bounded when on. At most `capacity` samples are retained (oldest
//    evicted, eviction counted), and samples are taken at most once per
//    `sample_every`-tick grid cell — total cost is O(stats x capacity)
//    regardless of run length.
//  - Deterministic export. Samples are keyed by simulated tick and snapshot
//    maps are ordered, so the same seed yields byte-identical JSON.
//
// Exports: standalone schema'd JSON (`tdo.metrics.v1`), plus replay onto the
// tracer as Perfetto counter tracks (`metrics/<stat>`) so the trajectory
// lines up under the PR 8 trace in the same UI.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <ostream>

#include "support/stats.hpp"

namespace tdo::obs {

class SloMonitor;

struct MetricsParams {
  /// Tick grid between samples; at most one sample lands per grid cell.
  std::uint64_t sample_every = 1'000'000;
  /// Max retained samples; older samples are evicted (and counted).
  std::size_t capacity = 4096;
};

struct MetricsSample {
  std::uint64_t tick = 0;
  support::StatsSnapshot snapshot;
};

namespace detail {
extern std::atomic<bool> g_metrics_enabled;
}  // namespace detail

/// The global on/off gate — the *only* cost a pump site pays when metrics
/// sampling is off.
[[nodiscard]] inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

/// Process-wide sampler. start()/stop()/sampling run on the simulation
/// driver thread (the scheduler/stream drive loops); the snapshot itself is
/// safe against concurrently-running submitter threads.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Clears any previous series and enables sampling over `stats` (not
  /// owned; must outlive the enabled window).
  void start(const support::StatsRegistry* stats, MetricsParams params = {});
  /// Disables sampling (the series stays readable until the next start()).
  void stop();
  /// Drops all samples (does not change the enabled state).
  void clear();

  /// Attaches an SLO monitor evaluated after every sample (not owned; may
  /// be nullptr to detach).
  void attach_slo(SloMonitor* slo) { slo_ = slo; }

  /// Samples iff `tick` entered a new sample_every grid cell. Driver thread.
  void maybe_sample(std::uint64_t tick);
  /// Unconditional sample (run-end flush so the final state is recorded).
  void force_sample(std::uint64_t tick);

  [[nodiscard]] const std::deque<MetricsSample>& samples() const {
    return samples_;
  }
  [[nodiscard]] std::uint64_t evicted() const { return evicted_; }
  [[nodiscard]] const MetricsParams& params() const { return params_; }

  /// Standalone JSON: {"schema":"tdo.metrics.v1", "sample_every", "evicted",
  /// "samples":[{"tick","counters","energies_pj"}...]}. Maps are ordered and
  /// doubles print shortest-roundtrip, so same seed => byte-identical bytes.
  void export_json(std::ostream& os) const;

  /// Replays the sampled series onto the Tracer as counter events on
  /// `metrics/<stat>` tracks (value-change-filtered so a flat counter costs
  /// one event). Call after the run, before Tracer::export_json.
  void append_counter_tracks() const;

 private:
  MetricsRegistry() = default;

  void sample_at(std::uint64_t tick);

  const support::StatsRegistry* stats_ = nullptr;
  SloMonitor* slo_ = nullptr;
  MetricsParams params_{};
  std::deque<MetricsSample> samples_;
  std::uint64_t next_due_ = 0;
  std::uint64_t evicted_ = 0;
};

/// The drive-loop hook: one relaxed load when off, a grid check when on.
inline void metrics_pump(std::uint64_t tick) {
  if (metrics_enabled()) MetricsRegistry::instance().maybe_sample(tick);
}

}  // namespace tdo::obs
