// Lexer for the restricted C kernel language (the front-end of Figure 4).
//
// The accepted language is the subset of C that PolyBench kernels are
// written in: `kernel` functions with integer/float parameters, `array`
// declarations, affine `for` nests and assignment statements. See
// frontend/parser.hpp for the grammar.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/status.hpp"

namespace tdo::frontend {

enum class TokenKind {
  kIdent,
  kIntLit,
  kFloatLit,
  // keywords
  kKernel, kArray, kFloat, kInt, kFor,
  // punctuation
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kSemicolon, kComma,
  // operators
  kAssign, kPlusAssign, kPlus, kMinus, kStar, kSlash, kLess, kPlusPlus,
  kEof,
};

[[nodiscard]] const char* to_string(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;
  std::int64_t int_value = 0;
  double float_value = 0.0;
  int line = 1;
  int column = 1;
};

/// Tokenizes `source`; returns all tokens ending with kEof, or a Status
/// pointing at the first bad character.
[[nodiscard]] support::StatusOr<std::vector<Token>> tokenize(
    const std::string& source);

}  // namespace tdo::frontend
