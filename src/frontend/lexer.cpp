#include "frontend/lexer.hpp"

#include <cctype>
#include <map>

namespace tdo::frontend {

const char* to_string(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kIntLit: return "integer literal";
    case TokenKind::kFloatLit: return "float literal";
    case TokenKind::kKernel: return "'kernel'";
    case TokenKind::kArray: return "'array'";
    case TokenKind::kFloat: return "'float'";
    case TokenKind::kInt: return "'int'";
    case TokenKind::kFor: return "'for'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kComma: return "','";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kPlusAssign: return "'+='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kLess: return "'<'";
    case TokenKind::kPlusPlus: return "'++'";
    case TokenKind::kEof: return "end of input";
  }
  return "?";
}

support::StatusOr<std::vector<Token>> tokenize(const std::string& source) {
  static const std::map<std::string, TokenKind> kKeywords = {
      {"kernel", TokenKind::kKernel}, {"array", TokenKind::kArray},
      {"float", TokenKind::kFloat},   {"int", TokenKind::kInt},
      {"for", TokenKind::kFor},
  };

  std::vector<Token> tokens;
  int line = 1;
  int column = 1;
  std::size_t i = 0;

  auto push = [&](TokenKind kind, std::string text) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line;
    t.column = column;
    tokens.push_back(std::move(t));
  };

  while (i < source.size()) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      column = 1;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++column;
      ++i;
      continue;
    }
    // Line comments.
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '/') {
      while (i < source.size() && source[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::size_t j = i;
      while (j < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[j])) != 0 ||
              source[j] == '_')) {
        ++j;
      }
      std::string word = source.substr(i, j - i);
      const auto kw = kKeywords.find(word);
      push(kw != kKeywords.end() ? kw->second : TokenKind::kIdent, word);
      column += static_cast<int>(j - i);
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i;
      bool is_float = false;
      while (j < source.size() &&
             (std::isdigit(static_cast<unsigned char>(source[j])) != 0 ||
              source[j] == '.' || source[j] == 'e' || source[j] == 'E' ||
              ((source[j] == '+' || source[j] == '-') && j > i &&
               (source[j - 1] == 'e' || source[j - 1] == 'E')))) {
        if (source[j] == '.' || source[j] == 'e' || source[j] == 'E') {
          is_float = true;
        }
        ++j;
      }
      // Trailing f suffix.
      if (j < source.size() && (source[j] == 'f' || source[j] == 'F')) {
        is_float = true;
        ++j;
      }
      std::string text = source.substr(i, j - i);
      Token t;
      t.line = line;
      t.column = column;
      t.text = text;
      if (is_float) {
        t.kind = TokenKind::kFloatLit;
        t.float_value = std::stod(text);
      } else {
        t.kind = TokenKind::kIntLit;
        t.int_value = std::stoll(text);
        t.float_value = static_cast<double>(t.int_value);
      }
      tokens.push_back(std::move(t));
      column += static_cast<int>(j - i);
      i = j;
      continue;
    }
    auto two = [&](char next) {
      return i + 1 < source.size() && source[i + 1] == next;
    };
    switch (c) {
      case '(': push(TokenKind::kLParen, "("); break;
      case ')': push(TokenKind::kRParen, ")"); break;
      case '{': push(TokenKind::kLBrace, "{"); break;
      case '}': push(TokenKind::kRBrace, "}"); break;
      case '[': push(TokenKind::kLBracket, "["); break;
      case ']': push(TokenKind::kRBracket, "]"); break;
      case ';': push(TokenKind::kSemicolon, ";"); break;
      case ',': push(TokenKind::kComma, ","); break;
      case '<': push(TokenKind::kLess, "<"); break;
      case '*': push(TokenKind::kStar, "*"); break;
      case '/': push(TokenKind::kSlash, "/"); break;
      case '=': push(TokenKind::kAssign, "="); break;
      case '-': push(TokenKind::kMinus, "-"); break;
      case '+':
        if (two('+')) {
          push(TokenKind::kPlusPlus, "++");
          ++i;
          ++column;
        } else if (two('=')) {
          push(TokenKind::kPlusAssign, "+=");
          ++i;
          ++column;
        } else {
          push(TokenKind::kPlus, "+");
        }
        break;
      default:
        return support::invalid_argument(
            "unexpected character '" + std::string(1, c) + "' at line " +
            std::to_string(line) + ":" + std::to_string(column));
    }
    ++i;
    ++column;
  }
  push(TokenKind::kEof, "");
  return tokens;
}

}  // namespace tdo::frontend
