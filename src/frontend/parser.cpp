#include "frontend/parser.hpp"

#include <map>
#include <optional>
#include <set>

#include "frontend/lexer.hpp"
#include "ir/builder.hpp"

namespace tdo::frontend {

namespace {

using ir::AffineExpr;
using ir::Bound;
using support::Status;
using support::StatusOr;

/// Parser state: token cursor + symbol tables.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_{std::move(tokens)} {}

  StatusOr<ir::Function> parse();

 private:
  // --- cursor helpers ---
  [[nodiscard]] const Token& peek() const { return tokens_[pos_]; }
  [[nodiscard]] const Token& peek2() const {
    return tokens_[std::min(pos_ + 1, tokens_.size() - 1)];
  }
  const Token& advance() { return tokens_[pos_++]; }
  [[nodiscard]] bool check(TokenKind kind) const { return peek().kind == kind; }
  bool match(TokenKind kind) {
    if (!check(kind)) return false;
    ++pos_;
    return true;
  }
  [[nodiscard]] Status error(const std::string& message) const {
    return support::invalid_argument(message + " at line " +
                                     std::to_string(peek().line) + ":" +
                                     std::to_string(peek().column) +
                                     " (got " + to_string(peek().kind) + ")");
  }
  Status expect(TokenKind kind, const char* what) {
    if (match(kind)) return Status::ok();
    return error(std::string("expected ") + what);
  }

  // --- symbol tables ---
  [[nodiscard]] bool is_int_param(const std::string& name) const {
    return int_params_.contains(name);
  }
  [[nodiscard]] bool is_scalar(const std::string& name) const {
    for (const auto& s : fn_.scalars) {
      if (s.name == name) return true;
    }
    return false;
  }
  [[nodiscard]] bool is_array(const std::string& name) const {
    return fn_.find_array(name) != nullptr;
  }
  [[nodiscard]] bool is_iv(const std::string& name) const {
    return ivs_.contains(name);
  }

  // --- grammar rules ---
  Status parse_params();
  Status parse_array_decl();
  StatusOr<ir::Node> parse_statement();
  StatusOr<ir::Node> parse_for();
  StatusOr<ir::Node> parse_assign();
  StatusOr<std::vector<ir::Node>> parse_block_or_single();

  /// Affine index expression (loop bounds and subscripts).
  StatusOr<AffineExpr> parse_index_expr();
  StatusOr<AffineExpr> parse_index_term();
  StatusOr<AffineExpr> parse_index_factor();

  /// General float-valued expression.
  StatusOr<ir::ExprPtr> parse_expr();
  StatusOr<ir::ExprPtr> parse_term();
  StatusOr<ir::ExprPtr> parse_factor();

  /// Subscript list for `array`; non-affine reads poison, writes error.
  StatusOr<std::vector<AffineExpr>> parse_subscripts(const std::string& array,
                                                     bool is_write,
                                                     bool* poisoned);

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  ir::Function fn_;
  std::map<std::string, std::int64_t> int_params_;
  std::set<std::string> ivs_;
  int stmt_counter_ = 0;
};

Status Parser::parse_params() {
  TDO_RETURN_IF_ERROR(expect(TokenKind::kLParen, "'('"));
  if (match(TokenKind::kRParen)) return Status::ok();
  do {
    if (!check(TokenKind::kIdent)) return error("expected parameter name");
    const std::string name = advance().text;
    TDO_RETURN_IF_ERROR(expect(TokenKind::kAssign, "'='"));
    const bool negative = match(TokenKind::kMinus);
    if (check(TokenKind::kIntLit)) {
      const Token& t = advance();
      int_params_[name] = negative ? -t.int_value : t.int_value;
    } else if (check(TokenKind::kFloatLit)) {
      const Token& t = advance();
      fn_.scalars.push_back(
          ir::ScalarDecl{name, negative ? -t.float_value : t.float_value});
    } else {
      return error("expected numeric parameter value");
    }
  } while (match(TokenKind::kComma));
  return expect(TokenKind::kRParen, "')'");
}

Status Parser::parse_array_decl() {
  TDO_RETURN_IF_ERROR(expect(TokenKind::kFloat, "'float'"));
  if (!check(TokenKind::kIdent)) return error("expected array name");
  ir::ArrayDecl decl;
  decl.name = advance().text;
  while (match(TokenKind::kLBracket)) {
    auto dim = parse_index_expr();
    if (!dim.is_ok()) return dim.status();
    if (!dim->is_constant()) {
      return error("array dimension must be a compile-time constant");
    }
    decl.dims.push_back(dim->constant_term());
    TDO_RETURN_IF_ERROR(expect(TokenKind::kRBracket, "']'"));
  }
  if (decl.dims.empty()) return error("array needs at least one dimension");
  TDO_RETURN_IF_ERROR(expect(TokenKind::kSemicolon, "';'"));
  fn_.arrays.push_back(std::move(decl));
  return Status::ok();
}

StatusOr<AffineExpr> Parser::parse_index_factor() {
  if (check(TokenKind::kIntLit)) {
    return AffineExpr::constant(advance().int_value);
  }
  if (check(TokenKind::kIdent)) {
    const std::string name = advance().text;
    if (is_int_param(name)) return AffineExpr::constant(int_params_.at(name));
    if (is_iv(name)) return AffineExpr::var(name);
    return support::invalid_argument("unknown integer symbol '" + name +
                                     "' in index expression");
  }
  if (match(TokenKind::kMinus)) {
    auto inner = parse_index_factor();
    if (!inner.is_ok()) return inner;
    return *inner * -1;
  }
  if (match(TokenKind::kLParen)) {
    auto inner = parse_index_expr();
    if (!inner.is_ok()) return inner;
    TDO_RETURN_IF_ERROR(expect(TokenKind::kRParen, "')'"));
    return inner;
  }
  return error("expected index expression");
}

StatusOr<AffineExpr> Parser::parse_index_term() {
  auto lhs = parse_index_factor();
  if (!lhs.is_ok()) return lhs;
  while (check(TokenKind::kStar)) {
    advance();
    auto rhs = parse_index_factor();
    if (!rhs.is_ok()) return rhs;
    // Affine multiplication: at least one side must be constant.
    if (lhs->is_constant()) {
      lhs = *rhs * lhs->constant_term();
    } else if (rhs->is_constant()) {
      lhs = *lhs * rhs->constant_term();
    } else {
      return support::invalid_argument(
          "non-affine index expression (product of variables)");
    }
  }
  return lhs;
}

StatusOr<AffineExpr> Parser::parse_index_expr() {
  auto lhs = parse_index_term();
  if (!lhs.is_ok()) return lhs;
  while (check(TokenKind::kPlus) || check(TokenKind::kMinus)) {
    const bool is_plus = advance().kind == TokenKind::kPlus;
    auto rhs = parse_index_term();
    if (!rhs.is_ok()) return rhs;
    lhs = is_plus ? (*lhs + *rhs) : (*lhs - *rhs);
  }
  return lhs;
}

StatusOr<std::vector<AffineExpr>> Parser::parse_subscripts(
    const std::string& array, bool is_write, bool* poisoned) {
  std::vector<AffineExpr> subs;
  while (match(TokenKind::kLBracket)) {
    const std::size_t rewind = pos_;
    auto sub = parse_index_expr();
    if (!sub.is_ok()) {
      if (is_write) {
        return support::invalid_argument("non-affine write subscript on " +
                                         array + ": " + sub.status().message());
      }
      // Skip tokens to the matching ']' and poison the load.
      pos_ = rewind;
      int depth = 1;
      while (depth > 0 && !check(TokenKind::kEof)) {
        if (check(TokenKind::kLBracket)) ++depth;
        if (check(TokenKind::kRBracket)) --depth;
        if (depth > 0) advance();
      }
      if (poisoned != nullptr) *poisoned = true;
      subs.push_back(AffineExpr::constant(0));
      TDO_RETURN_IF_ERROR(expect(TokenKind::kRBracket, "']'"));
      continue;
    }
    subs.push_back(*sub);
    TDO_RETURN_IF_ERROR(expect(TokenKind::kRBracket, "']'"));
  }
  return subs;
}

StatusOr<ir::ExprPtr> Parser::parse_factor() {
  if (check(TokenKind::kFloatLit) || check(TokenKind::kIntLit)) {
    return ir::make_const(advance().float_value);
  }
  if (match(TokenKind::kMinus)) {
    auto inner = parse_factor();
    if (!inner.is_ok()) return inner;
    return ir::sub(ir::make_const(0.0), *inner);
  }
  if (match(TokenKind::kLParen)) {
    auto inner = parse_expr();
    if (!inner.is_ok()) return inner;
    TDO_RETURN_IF_ERROR(expect(TokenKind::kRParen, "')'"));
    return inner;
  }
  if (check(TokenKind::kIdent)) {
    const std::string name = advance().text;
    if (is_array(name)) {
      bool poisoned = false;
      auto subs = parse_subscripts(name, /*is_write=*/false, &poisoned);
      if (!subs.is_ok()) return subs.status();
      if (poisoned) {
        return ir::make_non_affine("non-affine subscript on " + name);
      }
      if (subs->size() != fn_.find_array(name)->dims.size()) {
        return error("subscript arity mismatch on " + name);
      }
      return ir::make_load(name, *std::move(subs));
    }
    if (is_scalar(name)) return ir::make_param(name);
    if (is_int_param(name)) {
      return ir::make_const(static_cast<double>(int_params_.at(name)));
    }
    return error("unknown symbol '" + name + "'");
  }
  return error("expected expression");
}

StatusOr<ir::ExprPtr> Parser::parse_term() {
  auto lhs = parse_factor();
  if (!lhs.is_ok()) return lhs;
  while (check(TokenKind::kStar) || check(TokenKind::kSlash)) {
    const auto op = advance().kind == TokenKind::kStar ? ir::BinOpKind::kMul
                                                       : ir::BinOpKind::kDiv;
    auto rhs = parse_factor();
    if (!rhs.is_ok()) return rhs;
    lhs = ir::make_binop(op, *lhs, *rhs);
  }
  return lhs;
}

StatusOr<ir::ExprPtr> Parser::parse_expr() {
  auto lhs = parse_term();
  if (!lhs.is_ok()) return lhs;
  while (check(TokenKind::kPlus) || check(TokenKind::kMinus)) {
    const auto op = advance().kind == TokenKind::kPlus ? ir::BinOpKind::kAdd
                                                       : ir::BinOpKind::kSub;
    auto rhs = parse_term();
    if (!rhs.is_ok()) return rhs;
    lhs = ir::make_binop(op, *lhs, *rhs);
  }
  return lhs;
}

StatusOr<ir::Node> Parser::parse_assign() {
  if (!check(TokenKind::kIdent)) return error("expected statement");
  const std::string array = advance().text;
  if (!is_array(array)) return error("assignment to non-array '" + array + "'");
  auto subs = parse_subscripts(array, /*is_write=*/true, nullptr);
  if (!subs.is_ok()) return subs.status();
  if (subs->size() != fn_.find_array(array)->dims.size()) {
    return error("subscript arity mismatch on " + array);
  }

  bool accumulate = false;
  if (match(TokenKind::kPlusAssign)) {
    accumulate = true;
  } else {
    TDO_RETURN_IF_ERROR(expect(TokenKind::kAssign, "'=' or '+='"));
  }
  auto rhs = parse_expr();
  if (!rhs.is_ok()) return rhs.status();
  TDO_RETURN_IF_ERROR(expect(TokenKind::kSemicolon, "';'"));

  ir::Stmt stmt;
  stmt.name = "S" + std::to_string(stmt_counter_++);
  stmt.lhs = ir::AccessRef{array, *std::move(subs)};
  stmt.accumulate = accumulate;
  stmt.rhs = *std::move(rhs);
  return ir::Node{std::move(stmt)};
}

StatusOr<std::vector<ir::Node>> Parser::parse_block_or_single() {
  std::vector<ir::Node> body;
  if (match(TokenKind::kLBrace)) {
    while (!check(TokenKind::kRBrace)) {
      auto stmt = parse_statement();
      if (!stmt.is_ok()) return stmt.status();
      body.push_back(*std::move(stmt));
    }
    TDO_RETURN_IF_ERROR(expect(TokenKind::kRBrace, "'}'"));
    return body;
  }
  auto stmt = parse_statement();
  if (!stmt.is_ok()) return stmt.status();
  body.push_back(*std::move(stmt));
  return body;
}

StatusOr<ir::Node> Parser::parse_for() {
  TDO_RETURN_IF_ERROR(expect(TokenKind::kFor, "'for'"));
  TDO_RETURN_IF_ERROR(expect(TokenKind::kLParen, "'('"));
  (void)match(TokenKind::kInt);
  if (!check(TokenKind::kIdent)) return error("expected induction variable");
  const std::string iv = advance().text;
  if (is_iv(iv) || is_array(iv) || is_scalar(iv) || is_int_param(iv)) {
    return error("induction variable '" + iv + "' shadows another symbol");
  }
  TDO_RETURN_IF_ERROR(expect(TokenKind::kAssign, "'='"));
  auto lower = parse_index_expr();
  if (!lower.is_ok()) return lower.status();
  TDO_RETURN_IF_ERROR(expect(TokenKind::kSemicolon, "';'"));

  if (!check(TokenKind::kIdent) || peek().text != iv) {
    return error("loop condition must test '" + iv + "'");
  }
  advance();
  TDO_RETURN_IF_ERROR(expect(TokenKind::kLess, "'<'"));
  auto upper = parse_index_expr();
  if (!upper.is_ok()) return upper.status();
  TDO_RETURN_IF_ERROR(expect(TokenKind::kSemicolon, "';'"));

  std::int64_t step = 1;
  if (match(TokenKind::kPlusPlus)) {  // ++i
    if (!check(TokenKind::kIdent) || advance().text != iv) {
      return error("loop increment must update '" + iv + "'");
    }
  } else {
    if (!check(TokenKind::kIdent) || peek().text != iv) {
      return error("loop increment must update '" + iv + "'");
    }
    advance();
    if (match(TokenKind::kPlusPlus)) {  // i++
      step = 1;
    } else if (match(TokenKind::kPlusAssign)) {  // i += c
      if (!check(TokenKind::kIntLit)) return error("expected constant step");
      step = advance().int_value;
      if (step <= 0) return error("loop step must be positive");
    } else {
      return error("expected '++' or '+='");
    }
  }
  TDO_RETURN_IF_ERROR(expect(TokenKind::kRParen, "')'"));

  ivs_.insert(iv);
  auto body = parse_block_or_single();
  ivs_.erase(iv);
  if (!body.is_ok()) return body.status();

  return ir::make_loop(iv, *std::move(lower), Bound::of(*std::move(upper)),
                       step, *std::move(body));
}

StatusOr<ir::Node> Parser::parse_statement() {
  if (check(TokenKind::kFor)) return parse_for();
  return parse_assign();
}

StatusOr<ir::Function> Parser::parse() {
  TDO_RETURN_IF_ERROR(expect(TokenKind::kKernel, "'kernel'"));
  if (!check(TokenKind::kIdent)) return error("expected kernel name");
  fn_.name = advance().text;
  TDO_RETURN_IF_ERROR(parse_params());
  TDO_RETURN_IF_ERROR(expect(TokenKind::kLBrace, "'{'"));
  while (!check(TokenKind::kRBrace)) {
    if (match(TokenKind::kArray)) {
      TDO_RETURN_IF_ERROR(parse_array_decl());
    } else {
      auto node = parse_statement();
      if (!node.is_ok()) return node.status();
      fn_.body.push_back(*std::move(node));
    }
  }
  TDO_RETURN_IF_ERROR(expect(TokenKind::kRBrace, "'}'"));
  TDO_RETURN_IF_ERROR(fn_.validate());
  return std::move(fn_);
}

}  // namespace

support::StatusOr<ir::Function> parse_kernel(const std::string& source) {
  auto tokens = tokenize(source);
  if (!tokens.is_ok()) return tokens.status();
  Parser parser{*std::move(tokens)};
  return parser.parse();
}

}  // namespace tdo::frontend
