// Recursive-descent parser for the restricted C kernel language.
//
// Grammar (EBNF):
//   kernel      := 'kernel' IDENT '(' [param {',' param}] ')' '{' item* '}'
//   param       := IDENT '=' (INT | FLOAT)
//   item        := arrayDecl | statement
//   arrayDecl   := 'array' 'float' IDENT ('[' dimExpr ']')+ ';'
//   statement   := forLoop | assign
//   forLoop     := 'for' '(' ['int'] IDENT '=' idxExpr ';'
//                  IDENT '<' idxExpr ';' step ')' (block | statement)
//   step        := IDENT '++' | '++' IDENT | IDENT '+=' INT
//   block       := '{' statement* '}'
//   assign      := access ('=' | '+=') expr ';'
//   access      := IDENT ('[' idxExpr ']')*
//   expr        := term  (('+'|'-') term)*
//   term        := factor (('*'|'/') factor)*
//   factor      := FLOAT | INT | access | IDENT | '(' expr ')' | '-' factor
//
// Integer parameters are substituted at parse time (PolyBench-style fixed
// problem sizes); float parameters become ScalarDecls. Subscript expressions
// must be affine in the enclosing induction variables; a non-affine *read*
// subscript degrades the load to a NonAffineExpr poison node (so SCoP
// detection rejects the nest, as Polly would), while a non-affine *write* is
// a hard parse error.
#pragma once

#include <string>

#include "ir/program.hpp"
#include "support/status.hpp"

namespace tdo::frontend {

/// Parses one kernel definition into an IR function.
[[nodiscard]] support::StatusOr<ir::Function> parse_kernel(
    const std::string& source);

}  // namespace tdo::frontend
