#include "cim/dma.hpp"

namespace tdo::cim {

support::Duration Dma::block_time(std::uint64_t bytes) const {
  return params_.burst_setup +
         support::Duration::from_sec(static_cast<double>(bytes) /
                                     params_.bandwidth_bytes_per_sec);
}

support::Duration Dma::strided_time(std::uint64_t bytes) const {
  return params_.burst_setup +
         support::Duration::from_sec(static_cast<double>(bytes) *
                                     params_.strided_derate /
                                     params_.bandwidth_bytes_per_sec);
}

support::Duration Dma::read_block(sim::PhysAddr src, std::span<std::uint8_t> out) {
  memory_.read(src, out);
  bytes_read_.add(out.size());
  bursts_.add();
  return block_time(out.size());
}

support::Duration Dma::write_block(sim::PhysAddr dst,
                                   std::span<const std::uint8_t> in) {
  memory_.write(dst, in);
  bytes_written_.add(in.size());
  bursts_.add();
  return block_time(in.size());
}

support::Duration Dma::read_strided(sim::PhysAddr src, std::uint64_t stride,
                                    std::uint32_t elem_bytes, std::uint32_t count,
                                    std::span<std::uint8_t> out) {
  for (std::uint32_t i = 0; i < count; ++i) {
    memory_.read(src + i * stride,
                 out.subspan(static_cast<std::size_t>(i) * elem_bytes, elem_bytes));
  }
  const std::uint64_t bytes = static_cast<std::uint64_t>(elem_bytes) * count;
  bytes_read_.add(bytes);
  bursts_.add();
  return strided_time(bytes);
}

support::Duration Dma::write_strided(sim::PhysAddr dst, std::uint64_t stride,
                                     std::uint32_t elem_bytes, std::uint32_t count,
                                     std::span<const std::uint8_t> in) {
  for (std::uint32_t i = 0; i < count; ++i) {
    memory_.write(dst + i * stride,
                  in.subspan(static_cast<std::size_t>(i) * elem_bytes, elem_bytes));
  }
  const std::uint64_t bytes = static_cast<std::uint64_t>(elem_bytes) * count;
  bytes_written_.add(bytes);
  bursts_.add();
  return strided_time(bytes);
}

support::Duration Dma::copy_rect(sim::PhysAddr src, std::uint64_t src_pitch,
                                 sim::PhysAddr dst, std::uint64_t dst_pitch,
                                 std::uint64_t width, std::uint64_t rows) {
  const std::uint64_t bytes = width * rows;
  if (bytes == 0) return support::Duration::zero();
  std::vector<std::uint8_t> row(width);
  for (std::uint64_t r = 0; r < rows; ++r) {
    memory_.read(src + r * src_pitch, std::span(row.data(), row.size()));
    memory_.write(dst + r * dst_pitch,
                  std::span<const std::uint8_t>(row.data(), row.size()));
  }
  bytes_read_.add(bytes);
  bytes_written_.add(bytes);
  const bool contiguous =
      rows == 1 || (src_pitch == width && dst_pitch == width);
  if (contiguous) {
    bursts_.add(2);  // one read burst + one write burst
    return block_time(bytes) + block_time(bytes);
  }
  bursts_.add(2 * rows);
  support::Duration total = support::Duration::zero();
  for (std::uint64_t r = 0; r < rows; ++r) {
    total = total + block_time(width) + block_time(width);
  }
  return total;
}

void Dma::register_stats(support::StatsRegistry& registry,
                         const std::string& prefix) const {
  registry.register_counter(prefix + ".dma.bytes_read", &bytes_read_);
  registry.register_counter(prefix + ".dma.bytes_written", &bytes_written_);
  registry.register_counter(prefix + ".dma.bursts", &bursts_);
  registry.register_counter(prefix + ".dma.prefetch_bytes", &prefetch_bytes_);
  registry.register_counter(prefix + ".dma.overlapped_copy_bytes",
                            &overlap_copy_bytes_);
}

}  // namespace tdo::cim
