#include "cim/dma.hpp"

#include <algorithm>

namespace tdo::cim {

support::Duration Dma::block_time(std::uint64_t bytes) const {
  return params_.burst_setup +
         support::Duration::from_sec(static_cast<double>(bytes) /
                                     params_.bandwidth_bytes_per_sec);
}

support::Duration Dma::strided_time(std::uint64_t bytes) const {
  return params_.burst_setup +
         support::Duration::from_sec(static_cast<double>(bytes) *
                                     params_.strided_derate /
                                     params_.bandwidth_bytes_per_sec);
}

support::Duration Dma::read_block(sim::PhysAddr src, std::span<std::uint8_t> out) {
  memory_.read(src, out);
  bytes_read_.add(out.size());
  bursts_.add();
  return block_time(out.size());
}

support::Duration Dma::write_block(sim::PhysAddr dst,
                                   std::span<const std::uint8_t> in) {
  memory_.write(dst, in);
  bytes_written_.add(in.size());
  bursts_.add();
  return block_time(in.size());
}

support::Duration Dma::read_strided(sim::PhysAddr src, std::uint64_t stride,
                                    std::uint32_t elem_bytes, std::uint32_t count,
                                    std::span<std::uint8_t> out) {
  for (std::uint32_t i = 0; i < count; ++i) {
    memory_.read(src + i * stride,
                 out.subspan(static_cast<std::size_t>(i) * elem_bytes, elem_bytes));
  }
  const std::uint64_t bytes = static_cast<std::uint64_t>(elem_bytes) * count;
  bytes_read_.add(bytes);
  bursts_.add();
  return strided_time(bytes);
}

support::Duration Dma::write_strided(sim::PhysAddr dst, std::uint64_t stride,
                                     std::uint32_t elem_bytes, std::uint32_t count,
                                     std::span<const std::uint8_t> in) {
  for (std::uint32_t i = 0; i < count; ++i) {
    memory_.write(dst + i * stride,
                  in.subspan(static_cast<std::size_t>(i) * elem_bytes, elem_bytes));
  }
  const std::uint64_t bytes = static_cast<std::uint64_t>(elem_bytes) * count;
  bytes_written_.add(bytes);
  bursts_.add();
  return strided_time(bytes);
}

support::Duration Dma::copy_rect(sim::PhysAddr src, std::uint64_t src_pitch,
                                 sim::PhysAddr dst, std::uint64_t dst_pitch,
                                 std::uint64_t width, std::uint64_t rows) {
  const std::uint64_t bytes = width * rows;
  if (bytes == 0) return support::Duration::zero();
  std::vector<std::uint8_t> row(width);
  for (std::uint64_t r = 0; r < rows; ++r) {
    memory_.read(src + r * src_pitch, std::span(row.data(), row.size()));
    memory_.write(dst + r * dst_pitch,
                  std::span<const std::uint8_t>(row.data(), row.size()));
  }
  bytes_read_.add(bytes);
  bytes_written_.add(bytes);
  const bool contiguous =
      rows == 1 || (src_pitch == width && dst_pitch == width);
  if (contiguous) {
    bursts_.add(2);  // one read burst + one write burst
    return block_time(bytes) + block_time(bytes);
  }
  bursts_.add(2 * rows);
  support::Duration total = support::Duration::zero();
  for (std::uint64_t r = 0; r < rows; ++r) {
    total = total + block_time(width) + block_time(width);
  }
  return total;
}

void Dma::retire_windows_before(sim::Tick horizon) {
  for (auto& windows : channels_) {
    windows.erase(std::remove_if(windows.begin(), windows.end(),
                                 [horizon](const BusyWindow& w) {
                                   return w.end <= horizon;
                                 }),
                  windows.end());
  }
}

sim::Tick Dma::first_fit(std::uint32_t channel, sim::Tick earliest,
                         sim::Tick duration) const {
  sim::Tick start = earliest;
  // Windows are sorted by begin; slide the candidate start past every window
  // it would collide with. One forward pass suffices.
  for (const BusyWindow& w : channels_[channel]) {
    if (w.end <= start) continue;
    if (w.begin >= start + duration) break;
    start = w.end;
  }
  return start;
}

void Dma::reserve_engine(sim::Tick begin, sim::Tick end) {
  // No retirement here: `begin` can lie in the future (the stream-phase
  // window of a job being launched), and using it as a horizon would drop
  // the same job's weight window. The accelerator retires at job launch and
  // reserve_copy retires at submit time, both with the true current tick.
  if (end <= begin) return;
  auto& windows = channels_[0];
  const BusyWindow w{begin, end, /*engine=*/true};
  windows.insert(std::upper_bound(windows.begin(), windows.end(), w,
                                  [](const BusyWindow& a, const BusyWindow& b) {
                                    return a.begin < b.begin;
                                  }),
                 w);
}

void Dma::reserve_engine_advisory(sim::Tick begin, sim::Tick end) {
  if (end <= begin) return;
  auto& windows = channels_[0];
  const BusyWindow w{begin, end, /*engine=*/true, /*advisory=*/true};
  windows.insert(std::upper_bound(windows.begin(), windows.end(), w,
                                  [](const BusyWindow& a, const BusyWindow& b) {
                                    return a.begin < b.begin;
                                  }),
                 w);
}

void Dma::drop_advisory() {
  for (auto& windows : channels_) {
    windows.erase(std::remove_if(windows.begin(), windows.end(),
                                 [](const BusyWindow& w) { return w.advisory; }),
                  windows.end());
  }
}

Dma::CopySlot Dma::reserve_copy(sim::Tick earliest, sim::Tick duration) {
  retire_windows_before(earliest);
  // Earliest-finish channel wins; the dedicated copy channel (highest index)
  // wins ties, so copies only migrate toward the engine's channel when it is
  // strictly the earlier one free.
  CopySlot slot{static_cast<std::uint32_t>(channels_.size()) - 1,
                first_fit(static_cast<std::uint32_t>(channels_.size()) - 1,
                          earliest, duration)};
  for (std::uint32_t c = static_cast<std::uint32_t>(channels_.size()) - 1;
       c-- > 0;) {
    const sim::Tick start = first_fit(c, earliest, duration);
    if (start < slot.start) slot = CopySlot{c, start};
  }
  if (slot.channel != channels_.size() - 1) copy_migrations_.add();
  contended_copy_ticks_.add(slot.start - earliest);
  auto& windows = channels_[slot.channel];
  const BusyWindow w{slot.start, slot.start + duration, /*engine=*/false};
  windows.insert(std::upper_bound(windows.begin(), windows.end(), w,
                                  [](const BusyWindow& a, const BusyWindow& b) {
                                    return a.begin < b.begin;
                                  }),
                 w);
  return slot;
}

sim::Tick Dma::engine_busy_overlap(std::uint32_t channel, sim::Tick lo,
                                   sim::Tick hi) const {
  if (channel >= channels_.size() || hi <= lo) return 0;
  // Engine windows never overlap each other (jobs serialize on the engine),
  // so summing pairwise intersections is exact.
  sim::Tick covered = 0;
  for (const BusyWindow& w : channels_[channel]) {
    // Advisory windows are estimates of *future* engine traffic; the
    // authoritative launch-time reservation is what counts against overlap.
    if (!w.engine || w.advisory) continue;
    const sim::Tick begin = std::max(lo, w.begin);
    const sim::Tick end = std::min(hi, w.end);
    if (end > begin) covered += end - begin;
  }
  return std::min(covered, hi - lo);
}

void Dma::register_stats(support::StatsRegistry& registry,
                         const std::string& prefix) const {
  registry.register_counter(prefix + ".dma.bytes_read", &bytes_read_);
  registry.register_counter(prefix + ".dma.bytes_written", &bytes_written_);
  registry.register_counter(prefix + ".dma.bursts", &bursts_);
  registry.register_counter(prefix + ".dma.prefetch_bytes", &prefetch_bytes_);
  registry.register_counter(prefix + ".dma.overlapped_copy_bytes",
                            &overlap_copy_bytes_);
  registry.register_counter(prefix + ".dma.contended_copy_ticks",
                            &contended_copy_ticks_);
  registry.register_counter(prefix + ".dma.copy_migrations",
                            &copy_migrations_);
}

}  // namespace tdo::cim
