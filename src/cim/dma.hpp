// Accelerator-side DMA unit (paper Section II-C/II-D).
//
// "The accelerator, on his part, uses only un-cachable requests for memory
// access which automatically enforces memory coherence": DMA bypasses the
// host cache hierarchy and reads/writes SimMemory directly, charging
// bandwidth-model latency and the Table I DMA energy.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pcm/energy_model.hpp"
#include "sim/event_queue.hpp"
#include "sim/sim_memory.hpp"
#include "support/stats.hpp"
#include "support/units.hpp"

namespace tdo::cim {

struct DmaParams {
  /// Effective uncacheable bandwidth to LPDDR3-933 shared memory.
  double bandwidth_bytes_per_sec = 6.4e9;
  /// Fixed per-burst setup (command + address phase).
  support::Duration burst_setup = support::Duration::from_ns(40);
  /// Strided (gather) transfers move element-by-element bursts; this factor
  /// derates bandwidth for non-unit-stride access.
  double strided_derate = 4.0;
  /// Independent DMA channels. Channel 0 carries the micro-engine's own
  /// weight-load/vector traffic; stream copies prefer the highest channel and
  /// migrate toward channel 0 only when it is the earliest one free. With a
  /// single channel every transfer — engine traffic and stream copies alike —
  /// serializes on one timeline.
  std::uint32_t channels = 2;
};

class Dma {
 public:
  Dma(DmaParams params, sim::SimMemory& memory)
      : params_{params}, memory_{memory} {
    if (params_.channels == 0) params_.channels = 1;
    channels_.resize(params_.channels);
  }

  /// Contiguous copy device<-memory. Returns transfer duration.
  support::Duration read_block(sim::PhysAddr src, std::span<std::uint8_t> out);

  /// Contiguous copy memory<-device.
  support::Duration write_block(sim::PhysAddr dst, std::span<const std::uint8_t> in);

  /// Gather `count` elements of `elem_bytes` starting at `src` with byte
  /// stride `stride` (used to stream matrix columns).
  support::Duration read_strided(sim::PhysAddr src, std::uint64_t stride,
                                 std::uint32_t elem_bytes, std::uint32_t count,
                                 std::span<std::uint8_t> out);

  /// Scatter (column write-back).
  support::Duration write_strided(sim::PhysAddr dst, std::uint64_t stride,
                                  std::uint32_t elem_bytes, std::uint32_t count,
                                  std::span<const std::uint8_t> in);

  /// Pure timing estimates (no transfer, no counters): what a contiguous /
  /// strided burst of `bytes` would cost. Used to pre-reserve the channel
  /// window of a queued job's weight-load prefetch before the job launches.
  [[nodiscard]] support::Duration estimate_block(std::uint64_t bytes) const {
    return block_time(bytes);
  }
  [[nodiscard]] support::Duration estimate_strided(std::uint64_t bytes) const {
    return strided_time(bytes);
  }

  /// Memory-to-memory rectangle copy (`rows` rows of `width` bytes, row
  /// starts `src_pitch`/`dst_pitch` bytes apart): the stream's kCopy
  /// commands. Both directions of the traffic ride this channel, so the
  /// returned duration covers read + write bandwidth. Contiguous rectangles
  /// (pitch == width, or a single row) move as two bursts; pitched ones pay
  /// a burst pair per row.
  support::Duration copy_rect(sim::PhysAddr src, std::uint64_t src_pitch,
                              sim::PhysAddr dst, std::uint64_t dst_pitch,
                              std::uint64_t width, std::uint64_t rows);

  // --- per-channel busy-window timeline (contention model) ---
  //
  // Every transfer occupies a [start, end) window on one channel. The
  // micro-engine reserves windows for its own weight-load and vector traffic
  // on channel 0 as each job launches; stream copies are placed first-fit
  // into the idle gaps, so a copy overlapping the engine's own DMA
  // serializes behind it (or migrates to an idle channel) instead of being
  // modeled as free overlap. Windows are granted in arrival order: a copy
  // that reserved a slot before a chained job launched keeps it.

  /// Reserves [begin, end) on channel 0 for engine traffic. Engine windows
  /// are inserted unconditionally (the job's schedule is already fixed).
  void reserve_engine(sim::Tick begin, sim::Tick end);

  /// Advisory reservation on channel 0: the *estimated* body DMA of a job
  /// still sitting in the accelerator work queue. Copies first-fit around it
  /// exactly like a real engine window — a copy submitted while jobs are
  /// queued must not book channel time their fills/stores will occupy after
  /// launch — but the window is an estimate: drop_advisory() clears every
  /// advisory window at the next job launch, when the authoritative
  /// launch-time reservations replace it.
  void reserve_engine_advisory(sim::Tick begin, sim::Tick end);

  /// Drops every advisory window (call at job launch, where the engine's
  /// own reservations supersede the enqueue-time estimates; without this
  /// the same body traffic would be double-booked — advisory windows end in
  /// the future, so retire_before never reaches them).
  void drop_advisory();

  /// Where a copy chain of `duration` ticks was placed: the first-fit start
  /// (>= earliest) on the channel that finishes it soonest, preferring the
  /// dedicated copy channel (highest index) on ties.
  struct CopySlot {
    std::uint32_t channel = 0;
    sim::Tick start = 0;
  };
  [[nodiscard]] CopySlot reserve_copy(sim::Tick earliest, sim::Tick duration);

  /// Ticks of [lo, hi) covered by *engine* windows on `channel` (the share
  /// of a copy's window that cannot count as compute overlap: the channel
  /// was busy with the engine's own traffic, not idle under compute).
  [[nodiscard]] sim::Tick engine_busy_overlap(std::uint32_t channel,
                                              sim::Tick lo, sim::Tick hi) const;

  /// Drops windows that ended at or before `horizon` (no future reservation
  /// or overlap query reaches them: queries always start at or after the
  /// current event time). Called with the current tick at job launch and at
  /// copy submission, bounding the timeline's memory.
  void retire_before(sim::Tick horizon) { retire_windows_before(horizon); }

  /// Records `bytes` of traffic that ran on the otherwise-idle channel while
  /// the engine streamed the previous job (stream-level double buffering).
  /// Accounting only; the transfer itself was already charged.
  void note_prefetch(std::uint64_t bytes) { prefetch_bytes_.add(bytes); }

  /// Records stream-copy bytes whose transfer window was hidden under the
  /// micro-engine's busy window (copy/compute overlap). Accounting only.
  void note_copy_overlap(std::uint64_t bytes) { overlap_copy_bytes_.add(bytes); }

  [[nodiscard]] std::uint64_t bytes_read() const { return bytes_read_.value(); }
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_.value(); }
  [[nodiscard]] std::uint64_t bursts() const { return bursts_.value(); }
  [[nodiscard]] std::uint64_t prefetched_bytes() const { return prefetch_bytes_.value(); }
  [[nodiscard]] std::uint64_t overlapped_copy_bytes() const {
    return overlap_copy_bytes_.value();
  }
  /// Ticks stream copies waited on channel contention (start - submit).
  [[nodiscard]] std::uint64_t contended_copy_ticks() const {
    return contended_copy_ticks_.value();
  }
  /// Copy chains placed away from the dedicated copy channel because another
  /// channel was free earlier.
  [[nodiscard]] std::uint64_t copy_migrations() const {
    return copy_migrations_.value();
  }
  [[nodiscard]] const DmaParams& params() const { return params_; }

  void register_stats(support::StatsRegistry& registry,
                      const std::string& prefix = "cim") const;

 private:
  [[nodiscard]] support::Duration block_time(std::uint64_t bytes) const;
  [[nodiscard]] support::Duration strided_time(std::uint64_t bytes) const;

  struct BusyWindow {
    sim::Tick begin = 0;
    sim::Tick end = 0;
    bool engine = false;    ///< engine traffic (vs a stream copy)
    bool advisory = false;  ///< queued-job estimate; dropped at job launch
  };
  void retire_windows_before(sim::Tick horizon);
  /// First tick >= earliest where `channel` has a gap of `duration` ticks.
  [[nodiscard]] sim::Tick first_fit(std::uint32_t channel, sim::Tick earliest,
                                    sim::Tick duration) const;

  DmaParams params_;
  sim::SimMemory& memory_;
  std::vector<std::vector<BusyWindow>> channels_;  ///< sorted by begin
  support::Counter bytes_read_;
  support::Counter bytes_written_;
  support::Counter bursts_;
  support::Counter prefetch_bytes_;
  support::Counter overlap_copy_bytes_;
  support::Counter contended_copy_ticks_;
  support::Counter copy_migrations_;
};

}  // namespace tdo::cim
