// Accelerator-side DMA unit (paper Section II-C/II-D).
//
// "The accelerator, on his part, uses only un-cachable requests for memory
// access which automatically enforces memory coherence": DMA bypasses the
// host cache hierarchy and reads/writes SimMemory directly, charging
// bandwidth-model latency and the Table I DMA energy.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pcm/energy_model.hpp"
#include "sim/sim_memory.hpp"
#include "support/stats.hpp"
#include "support/units.hpp"

namespace tdo::cim {

struct DmaParams {
  /// Effective uncacheable bandwidth to LPDDR3-933 shared memory.
  double bandwidth_bytes_per_sec = 6.4e9;
  /// Fixed per-burst setup (command + address phase).
  support::Duration burst_setup = support::Duration::from_ns(40);
  /// Strided (gather) transfers move element-by-element bursts; this factor
  /// derates bandwidth for non-unit-stride access.
  double strided_derate = 4.0;
};

class Dma {
 public:
  Dma(DmaParams params, sim::SimMemory& memory) : params_{params}, memory_{memory} {}

  /// Contiguous copy device<-memory. Returns transfer duration.
  support::Duration read_block(sim::PhysAddr src, std::span<std::uint8_t> out);

  /// Contiguous copy memory<-device.
  support::Duration write_block(sim::PhysAddr dst, std::span<const std::uint8_t> in);

  /// Gather `count` elements of `elem_bytes` starting at `src` with byte
  /// stride `stride` (used to stream matrix columns).
  support::Duration read_strided(sim::PhysAddr src, std::uint64_t stride,
                                 std::uint32_t elem_bytes, std::uint32_t count,
                                 std::span<std::uint8_t> out);

  /// Scatter (column write-back).
  support::Duration write_strided(sim::PhysAddr dst, std::uint64_t stride,
                                  std::uint32_t elem_bytes, std::uint32_t count,
                                  std::span<const std::uint8_t> in);

  /// Records `bytes` of traffic that ran on the otherwise-idle channel while
  /// the engine streamed the previous job (stream-level double buffering).
  /// Accounting only; the transfer itself was already charged.
  void note_prefetch(std::uint64_t bytes) { prefetch_bytes_.add(bytes); }

  [[nodiscard]] std::uint64_t bytes_read() const { return bytes_read_.value(); }
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_.value(); }
  [[nodiscard]] std::uint64_t bursts() const { return bursts_.value(); }
  [[nodiscard]] std::uint64_t prefetched_bytes() const { return prefetch_bytes_.value(); }
  [[nodiscard]] const DmaParams& params() const { return params_; }

  void register_stats(support::StatsRegistry& registry,
                      const std::string& prefix = "cim") const;

 private:
  [[nodiscard]] support::Duration block_time(std::uint64_t bytes) const;
  [[nodiscard]] support::Duration strided_time(std::uint64_t bytes) const;

  DmaParams params_;
  sim::SimMemory& memory_;
  support::Counter bytes_read_;
  support::Counter bytes_written_;
  support::Counter bursts_;
  support::Counter prefetch_bytes_;
};

}  // namespace tdo::cim
