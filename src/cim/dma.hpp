// Accelerator-side DMA unit (paper Section II-C/II-D).
//
// "The accelerator, on his part, uses only un-cachable requests for memory
// access which automatically enforces memory coherence": DMA bypasses the
// host cache hierarchy and reads/writes SimMemory directly, charging
// bandwidth-model latency and the Table I DMA energy.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pcm/energy_model.hpp"
#include "sim/sim_memory.hpp"
#include "support/stats.hpp"
#include "support/units.hpp"

namespace tdo::cim {

struct DmaParams {
  /// Effective uncacheable bandwidth to LPDDR3-933 shared memory.
  double bandwidth_bytes_per_sec = 6.4e9;
  /// Fixed per-burst setup (command + address phase).
  support::Duration burst_setup = support::Duration::from_ns(40);
  /// Strided (gather) transfers move element-by-element bursts; this factor
  /// derates bandwidth for non-unit-stride access.
  double strided_derate = 4.0;
};

class Dma {
 public:
  Dma(DmaParams params, sim::SimMemory& memory) : params_{params}, memory_{memory} {}

  /// Contiguous copy device<-memory. Returns transfer duration.
  support::Duration read_block(sim::PhysAddr src, std::span<std::uint8_t> out);

  /// Contiguous copy memory<-device.
  support::Duration write_block(sim::PhysAddr dst, std::span<const std::uint8_t> in);

  /// Gather `count` elements of `elem_bytes` starting at `src` with byte
  /// stride `stride` (used to stream matrix columns).
  support::Duration read_strided(sim::PhysAddr src, std::uint64_t stride,
                                 std::uint32_t elem_bytes, std::uint32_t count,
                                 std::span<std::uint8_t> out);

  /// Scatter (column write-back).
  support::Duration write_strided(sim::PhysAddr dst, std::uint64_t stride,
                                  std::uint32_t elem_bytes, std::uint32_t count,
                                  std::span<const std::uint8_t> in);

  /// Memory-to-memory rectangle copy (`rows` rows of `width` bytes, row
  /// starts `src_pitch`/`dst_pitch` bytes apart): the stream's kCopy
  /// commands. Both directions of the traffic ride this channel, so the
  /// returned duration covers read + write bandwidth. Contiguous rectangles
  /// (pitch == width, or a single row) move as two bursts; pitched ones pay
  /// a burst pair per row.
  support::Duration copy_rect(sim::PhysAddr src, std::uint64_t src_pitch,
                              sim::PhysAddr dst, std::uint64_t dst_pitch,
                              std::uint64_t width, std::uint64_t rows);

  /// Records `bytes` of traffic that ran on the otherwise-idle channel while
  /// the engine streamed the previous job (stream-level double buffering).
  /// Accounting only; the transfer itself was already charged.
  void note_prefetch(std::uint64_t bytes) { prefetch_bytes_.add(bytes); }

  /// Records stream-copy bytes whose transfer window was hidden under the
  /// micro-engine's busy window (copy/compute overlap). Accounting only.
  void note_copy_overlap(std::uint64_t bytes) { overlap_copy_bytes_.add(bytes); }

  [[nodiscard]] std::uint64_t bytes_read() const { return bytes_read_.value(); }
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_.value(); }
  [[nodiscard]] std::uint64_t bursts() const { return bursts_.value(); }
  [[nodiscard]] std::uint64_t prefetched_bytes() const { return prefetch_bytes_.value(); }
  [[nodiscard]] std::uint64_t overlapped_copy_bytes() const {
    return overlap_copy_bytes_.value();
  }
  [[nodiscard]] const DmaParams& params() const { return params_; }

  void register_stats(support::StatsRegistry& registry,
                      const std::string& prefix = "cim") const;

 private:
  [[nodiscard]] support::Duration block_time(std::uint64_t bytes) const;
  [[nodiscard]] support::Duration strided_time(std::uint64_t bytes) const;

  DmaParams params_;
  sim::SimMemory& memory_;
  support::Counter bytes_read_;
  support::Counter bytes_written_;
  support::Counter bursts_;
  support::Counter prefetch_bytes_;
  support::Counter overlap_copy_bytes_;
};

}  // namespace tdo::cim
