// CIM accelerator top level (paper Section II-C/II-D, Figure 2b).
//
// A CIM tile, a micro-engine and a DMA unit form a standalone accelerator
// that attaches to the system bus through a port-mapped IO window exposing
// its context registers. The host driver writes job parameters, writes 1 to
// the command register, and polls the status register.
#pragma once

#include <memory>

#include "cim/cim_tile.hpp"
#include "cim/context_regs.hpp"
#include "cim/dma.hpp"
#include "cim/micro_engine.hpp"
#include "pcm/energy_model.hpp"
#include "sim/bus.hpp"
#include "sim/system.hpp"
#include "support/stats.hpp"

namespace tdo::cim {

struct AcceleratorParams {
  TileParams tile;
  DmaParams dma;
  MicroEngineParams engine;
  pcm::CimEnergyParams energy;
  sim::PhysAddr pmio_base = kDefaultPmioBase;
};

/// Aggregated accelerator-side statistics for one ROI.
struct AcceleratorReport {
  std::uint64_t jobs = 0;
  std::uint64_t gemv_ops = 0;
  std::uint64_t mac8_ops = 0;
  std::uint64_t weight_writes8 = 0;
  support::Energy total_energy;

  /// The compute-intensity metric of Figure 6 (left):
  /// Number-of-MAC-operations / Number-of-CIM-writes.
  [[nodiscard]] double macs_per_cim_write() const {
    if (weight_writes8 == 0) return 0.0;
    return static_cast<double>(mac8_ops) / static_cast<double>(weight_writes8);
  }
};

class Accelerator final : public sim::BusDevice {
 public:
  /// Builds the accelerator and attaches it to `system`'s bus at the PMIO
  /// window; registers stats into the system registry.
  Accelerator(AcceleratorParams params, sim::System& system);

  // --- BusDevice ---
  [[nodiscard]] std::string device_name() const override { return "cim-accelerator"; }
  support::Status mmio_read(std::uint64_t offset,
                            std::span<std::uint8_t> out) override;
  support::Status mmio_write(std::uint64_t offset,
                             std::span<const std::uint8_t> in) override;

  [[nodiscard]] ContextRegs& regs() { return regs_; }
  [[nodiscard]] CimTile& tile() { return *tile_; }
  [[nodiscard]] Dma& dma() { return *dma_; }
  [[nodiscard]] MicroEngine& engine() { return *engine_; }
  [[nodiscard]] const AcceleratorParams& params() const { return params_; }
  [[nodiscard]] const JobTimeline& last_timeline() const { return last_timeline_; }

  [[nodiscard]] support::Energy total_energy() const;
  [[nodiscard]] AcceleratorReport report() const;

 private:
  void trigger();

  AcceleratorParams params_;
  sim::System& system_;
  pcm::CimEnergyModel model_;
  ContextRegs regs_;
  std::unique_ptr<CimTile> tile_;
  std::unique_ptr<Dma> dma_;
  std::unique_ptr<MicroEngine> engine_;
  JobTimeline last_timeline_;

  support::Counter jobs_;
  support::EnergyAccumulator e_write_;
  support::EnergyAccumulator e_compute_;
  support::EnergyAccumulator e_mixed_;
  support::EnergyAccumulator e_digital_;
  support::EnergyAccumulator e_buffers_;
  support::EnergyAccumulator e_dma_;
};

}  // namespace tdo::cim
