// CIM accelerator top level (paper Section II-C/II-D, Figure 2b).
//
// A CIM tile, a micro-engine and a DMA unit form a standalone accelerator
// that attaches to the system bus through a port-mapped IO window exposing
// its context registers. The host driver writes job parameters, writes 1 to
// the command register, and polls the status register.
//
// Beyond the paper's single-shot protocol, the accelerator carries a small
// hardware work queue (DSA-style): the driver may enqueue a job while the
// engine is busy, and the completion event chains straight into the next job
// without a host round trip. A chained job's weight-load DMA overlaps the
// previous job's stream phase (stream-level double buffering).
#pragma once

#include <algorithm>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cim/cim_tile.hpp"
#include "cim/context_regs.hpp"
#include "cim/dma.hpp"
#include "cim/micro_engine.hpp"
#include "pcm/energy_model.hpp"
#include "sim/bus.hpp"
#include "sim/system.hpp"
#include "support/stats.hpp"

namespace tdo::topo {
class Link;
}  // namespace tdo::topo

namespace tdo::cim {

struct AcceleratorParams {
  TileParams tile;
  DmaParams dma;
  MicroEngineParams engine;
  pcm::CimEnergyParams energy;
  sim::PhysAddr pmio_base = kDefaultPmioBase;
  /// Stats prefix; give every instance in a multi-accelerator system a
  /// distinct name ("cim", "cim1", ...).
  std::string name = "cim";
  /// Capacity of the hardware job FIFO behind the running job. The stream
  /// layer keeps at most `work_queue_depth + 1` commands in flight here.
  std::size_t work_queue_depth = 8;
  /// Overlap a chained job's weight-load DMA with the running job's stream
  /// phase (requires the job's double-buffering flag).
  bool queue_prefetch = true;
  /// Queue-aware channel reservation: book an advisory busy window for each
  /// queued job's estimated stream-body DMA at enqueue time, so stream
  /// copies submitted while jobs wait cannot first-fit into channel time
  /// the queue will occupy after launch. Advisory windows are dropped and
  /// replaced by the authoritative reservations at each job launch.
  bool queue_body_reserve = true;
};

/// Address-space stride between accelerator instances on the system bus.
inline constexpr std::uint64_t kPmioInstanceStride = 0x1000;
static_assert(kPmioInstanceStride >= kPmioWindowBytes);

/// Parameters for the `index`-th instance in a multi-accelerator system:
/// distinct stats prefix ("cim", "cim1", ...) and PMIO window, shared
/// everything else. Index 0 returns `base` unchanged.
[[nodiscard]] AcceleratorParams instance_params(AcceleratorParams base,
                                                std::size_t index);

/// Aggregated accelerator-side statistics for one ROI.
struct AcceleratorReport {
  std::uint64_t jobs = 0;
  std::uint64_t gemv_ops = 0;
  std::uint64_t mac8_ops = 0;
  std::uint64_t weight_writes8 = 0;
  /// 8-bit weight programs skipped through stationary-tile reuse (batched
  /// shared inputs and the runtime's weight-residency cache).
  std::uint64_t weight_writes_saved8 = 0;
  support::Energy total_energy;

  /// The compute-intensity metric of Figure 6 (left):
  /// Number-of-MAC-operations / Number-of-CIM-writes.
  [[nodiscard]] double macs_per_cim_write() const {
    if (weight_writes8 == 0) return 0.0;
    return static_cast<double>(mac8_ops) / static_cast<double>(weight_writes8);
  }
};

class Accelerator final : public sim::BusDevice {
 public:
  /// Builds the accelerator and attaches it to `system`'s bus at the PMIO
  /// window; registers stats into the system registry.
  Accelerator(AcceleratorParams params, sim::System& system);

  // --- BusDevice ---
  [[nodiscard]] std::string device_name() const override { return "cim-accelerator"; }
  support::Status mmio_read(std::uint64_t offset,
                            std::span<std::uint8_t> out) override;
  support::Status mmio_write(std::uint64_t offset,
                             std::span<const std::uint8_t> in) override;

  // --- work queue (driver-facing, non-blocking) ---

  /// Starts the job immediately when idle, otherwise appends it to the
  /// hardware FIFO; kResourceExhausted when the FIFO is full. The caller has
  /// already charged the host for programming the image.
  support::Status enqueue_job(const ContextRegs& image);

  /// True while a job is running or queued, or a DMA-channel copy is still
  /// in flight.
  [[nodiscard]] bool has_work() const {
    return regs_.status() == DeviceStatus::kBusy || !queue_.empty() ||
           copies_in_flight_ > 0;
  }
  /// Running job (0/1) plus queued jobs. Copies ride the DMA channel and do
  /// not occupy compute-queue slots (see copies_in_flight()).
  [[nodiscard]] std::size_t in_flight() const {
    return (regs_.status() == DeviceStatus::kBusy ? 1 : 0) + queue_.size();
  }
  /// Stream copies accepted but not yet completed on the DMA channel.
  [[nodiscard]] std::size_t copies_in_flight() const { return copies_in_flight_; }
  /// Completion tick of the currently running compute job (chained jobs
  /// extend this as their launches execute on the event queue). Backpressure
  /// waits use this: a compute-queue slot frees independently of any copy
  /// still riding the DMA channel.
  [[nodiscard]] sim::Tick busy_until() const { return busy_until_; }
  /// Completion tick of *all* outstanding work — compute chain and DMA
  /// channel. Full drains wait on this.
  [[nodiscard]] sim::Tick work_done_tick() const {
    return copies_in_flight_ > 0 ? std::max(busy_until_, dma_busy_until_)
                                 : busy_until_;
  }

  [[nodiscard]] std::uint64_t jobs_completed() const { return completed_.value(); }
  [[nodiscard]] std::uint64_t jobs_failed() const { return failed_.value(); }

  /// Completion interrupt hook: invoked from the job-completion event with
  /// the new completed-jobs count and the event tick. One observer per
  /// device (the serving scheduler attaches here to timestamp request
  /// completions exactly, without polling); a newer registration replaces an
  /// older one. `owner` identifies the registrant so a stale owner's
  /// teardown cannot clobber a replacement's hook.
  using CompletionObserver = std::function<void(std::uint64_t completed,
                                                sim::Tick when)>;
  void set_completion_observer(CompletionObserver observer,
                               const void* owner) {
    completion_observer_ = std::move(observer);
    completion_observer_owner_ = owner;
  }
  /// Detaches the observer only if `owner` still owns it.
  void clear_completion_observer(const void* owner) {
    if (completion_observer_owner_ == owner) {
      completion_observer_ = nullptr;
      completion_observer_owner_ = nullptr;
    }
  }
  /// Withhold-response signaling for far-pool devices: with a link attached,
  /// the completion observer no longer fires at the device's done tick but at
  /// the tick the completion response has serialized over the link (the
  /// topo::Link busy-window timeline, so concurrent far-pool responses
  /// contend). Device-local state — kStatus, kCompleted, job chaining — still
  /// advances at the done tick; only the host-visible signal is withheld.
  void set_response_link(topo::Link* link) { response_link_ = link; }
  [[nodiscard]] topo::Link* response_link() const { return response_link_; }
  /// Completions whose observer signal was deferred onto the link.
  [[nodiscard]] std::uint64_t withheld_responses() const {
    return withheld_responses_.value();
  }
  /// Scatter-gather segments executed by stream copy chains on this device.
  [[nodiscard]] std::uint64_t copy_segments() const {
    return copy_segments_.value();
  }
  /// kResult of the most recent failed job (support::StatusCode value).
  [[nodiscard]] std::uint64_t last_error_code() const { return last_error_; }

  /// Driver-assigned device index. Trace events carry it so the analyzer can
  /// join a request's completion target with this engine's job spans without
  /// a name table.
  void set_device_ordinal(std::size_t ordinal) { device_ordinal_ = ordinal; }
  [[nodiscard]] std::size_t device_ordinal() const { return device_ordinal_; }

  [[nodiscard]] ContextRegs& regs() { return regs_; }
  [[nodiscard]] CimTile& tile() { return *tile_; }
  [[nodiscard]] Dma& dma() { return *dma_; }
  [[nodiscard]] const Dma& dma() const { return *dma_; }
  [[nodiscard]] MicroEngine& engine() { return *engine_; }
  [[nodiscard]] const AcceleratorParams& params() const { return params_; }
  [[nodiscard]] const JobTimeline& last_timeline() const { return last_timeline_; }

  [[nodiscard]] support::Energy total_energy() const;
  [[nodiscard]] AcceleratorReport report() const;

 private:
  void trigger();
  /// Launches the image currently in `regs_` and schedules the completion
  /// chain that pops the next queued job.
  void start_job(support::Duration prefetch_credit);
  /// Executes a kCopy image on the DMA channel: functional copy now, timing
  /// serialized behind earlier copies but overlapping the micro-engine's
  /// compute (the channel is otherwise idle while the engine streams).
  support::Status start_copy(const ContextRegs& image);
  /// Copies every job register of `image` into `regs_` (control/status
  /// registers — command, status, result, completed — are device-owned).
  void apply_image(const ContextRegs& image);
  /// Credits every active copy with the share of the engine busy window
  /// [win_start, win_end) that falls inside its transfer window.
  void credit_copy_overlap(sim::Tick win_start, sim::Tick win_end);
  /// Reserves the queue front's estimated weight-load prefetch window — the
  /// tail of the running job's stream phase on the engine's DMA channel — so
  /// stream copies cannot first-fit into a slot the prefetch will occupy.
  void reserve_queue_prefetch();
  /// Re-derives the advisory body-DMA windows of every queued job, chained
  /// from the running job's completion (queue_body_reserve). Callers drop
  /// stale advisory windows first — this only inserts.
  void reserve_queue_body();

  AcceleratorParams params_;
  sim::System& system_;
  pcm::CimEnergyModel model_;
  ContextRegs regs_;
  std::unique_ptr<CimTile> tile_;
  std::unique_ptr<Dma> dma_;
  std::unique_ptr<MicroEngine> engine_;
  JobTimeline last_timeline_;

  struct QueuedJob {
    ContextRegs image;
    sim::Tick enqueued = 0;  // bounds the prefetch credit the job may claim
  };
  /// A stream copy chain in flight on one DMA channel. `hidden` accumulates
  /// the ticks of its transfer window that lie under engine busy windows —
  /// the running job's at submit time, plus every chained job's as it
  /// launches, minus the engine's own DMA occupancy of the copy's channel —
  /// so the copy/compute overlap figure is exact, never exceeding the
  /// channel's true idle window.
  struct ActiveCopy {
    std::uint64_t id = 0;
    sim::Tick start = 0;
    sim::Tick done = 0;
    std::uint64_t bytes = 0;
    sim::Tick hidden = 0;
    std::uint32_t channel = 0;
  };
  std::deque<QueuedJob> queue_;
  std::vector<ActiveCopy> active_copies_;
  std::uint64_t next_copy_id_ = 0;
  sim::Tick busy_until_ = 0;
  sim::Tick dma_busy_until_ = 0;  // DMA-channel (stream copy) timeline
  std::size_t device_ordinal_ = 0;
  sim::Tick current_job_enqueued_ = 0;  // trace: running job's enqueue tick
  std::size_t copies_in_flight_ = 0;
  std::uint64_t last_error_ = 0;
  CompletionObserver completion_observer_;
  const void* completion_observer_owner_ = nullptr;
  topo::Link* response_link_ = nullptr;

  support::Counter jobs_;
  support::Counter withheld_responses_;
  support::Counter queued_jobs_;
  support::Counter completed_;
  support::Counter failed_;
  support::Counter copies_;
  support::Counter copy_segments_;
  support::Counter overlap_ticks_;
  support::EnergyAccumulator e_write_;
  support::EnergyAccumulator e_compute_;
  support::EnergyAccumulator e_mixed_;
  support::EnergyAccumulator e_digital_;
  support::EnergyAccumulator e_buffers_;
  support::EnergyAccumulator e_dma_;
};

}  // namespace tdo::cim
