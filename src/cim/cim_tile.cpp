#include "cim/cim_tile.hpp"

#include <cassert>

namespace tdo::cim {

CimTile::CimTile(TileParams params)
    : params_{params},
      crossbar_{params.crossbar},
      adc_{params.adc, params.crossbar.cols * 2} {}

std::uint64_t CimTile::program_row(std::uint32_t row,
                                   std::span<const std::int8_t> weights) {
  // Column buffers stage the weights (one byte each in, Section II-B:
  // "during write operation, the column buffers contain the data that has to
  // be written on the crossbar").
  stats_.buffer_byte_accesses += weights.size();
  (void)crossbar_.write_row(row, weights);
  stats_.weight_writes8 += weights.size();
  stats_.rows_programmed += 1;
  return weights.size();
}

void CimTile::program_tile(std::span<const std::int8_t> tile,
                           std::uint32_t tile_rows, std::uint32_t tile_cols) {
  assert(tile.size() >= static_cast<std::size_t>(tile_rows) * tile_cols);
  assert(tile_rows <= rows() && tile_cols <= cols());
  for (std::uint32_t r = 0; r < tile_rows; ++r) {
    (void)program_row(r, tile.subspan(static_cast<std::size_t>(r) * tile_cols,
                                      tile_cols));
  }
}

std::vector<std::int32_t> CimTile::gemv(std::span<const std::int8_t> inputs,
                                        std::uint32_t active_rows,
                                        std::uint32_t active_cols,
                                        std::uint32_t row0) {
  // Row buffers latch the inputs (one byte per active row).
  stats_.buffer_byte_accesses += active_rows;
  pcm::GemvResult raw =
      crossbar_.gemv(inputs, active_rows, active_cols, nullptr, row0);
  // Each logical column needs two nibble-column conversions through the
  // shared ADCs; saturating behaviour is configurable via AdcParams.
  std::vector<std::int32_t> out(active_cols);
  for (std::uint32_t c = 0; c < active_cols; ++c) {
    out[c] = static_cast<std::int32_t>(adc_.convert(raw.acc[c]));
  }
  // Results land in the output buffers (4 bytes each).
  stats_.buffer_byte_accesses += static_cast<std::uint64_t>(active_cols) * 4;
  stats_.gemv_ops += 1;
  stats_.mac8_ops += static_cast<std::uint64_t>(active_rows) * active_cols;
  // Offset-correction arithmetic done digitally per column (2 mul-add).
  stats_.extra_alu_ops += static_cast<std::uint64_t>(active_cols) * 2;
  return out;
}

float CimTile::postprocess(std::int32_t acc, double scale, float alpha,
                           float beta, float previous) {
  stats_.extra_alu_ops += 3;  // dequant-mul, alpha-mul, beta-fma
  const double dequant = static_cast<double>(acc) * scale;
  return static_cast<float>(static_cast<double>(alpha) * dequant +
                            static_cast<double>(beta) * previous);
}

}  // namespace tdo::cim
