#include "cim/micro_engine.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <vector>

#include "support/fixed_point.hpp"
#include "support/log.hpp"

namespace tdo::cim {

namespace {

using support::Duration;
using support::QuantScale;

/// Quantizes a float vector with a fixed scale into int8.
void quantize_into(std::span<const float> values, double scale,
                   std::vector<std::int8_t>& out) {
  const QuantScale q{scale};
  out.resize(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = q.quantize(values[i]);
  }
}

}  // namespace

support::StatusOr<MicroEngine::GemmJob> MicroEngine::decode(
    const ContextRegs& regs) const {
  GemmJob job;
  job.m = regs.read(Reg::kM);
  job.n = regs.read(Reg::kN);
  job.k = regs.read(Reg::kK);
  job.pa_a = regs.read(Reg::kPaA);
  job.pa_b = regs.read(Reg::kPaB);
  job.pa_c = regs.read(Reg::kPaC);
  job.lda = regs.read(Reg::kLda);
  job.ldb = regs.read(Reg::kLdb);
  job.ldc = regs.read(Reg::kLdc);
  job.alpha = regs.read_f32(Reg::kAlpha);
  job.beta = regs.read_f32(Reg::kBeta);
  job.scale_a = regs.read_f64(Reg::kScaleA);
  job.scale_b = regs.read_f64(Reg::kScaleB);
  job.stationary = static_cast<StationaryOperand>(regs.read(Reg::kStationary));
  const std::uint64_t flags = regs.read(Reg::kFlags);
  job.double_buffering = (flags & JobFlags::kDoubleBuffering) != 0;
  job.skip_weight_load = (flags & JobFlags::kSkipWeightLoad) != 0;
  job.tile_row0 = static_cast<std::uint32_t>(regs.read(Reg::kTileRow));

  if (job.m == 0 || job.n == 0 || job.k == 0) {
    return support::invalid_argument("zero GEMM dimension");
  }
  if (job.lda < job.k || job.ldb < job.n || job.ldc < job.n) {
    return support::invalid_argument("leading dimension smaller than row length");
  }
  if (job.scale_a <= 0.0 || job.scale_b <= 0.0) {
    return support::invalid_argument("non-positive quantization scale");
  }
  return job;
}

void MicroEngine::invalidate_rows(std::uint32_t row0, std::uint64_t rows) {
  for (auto it = programmed_.begin(); it != programmed_.end();) {
    const std::uint64_t lo = it->first;
    const std::uint64_t hi = lo + it->second.rows;
    const bool overlap = lo < row0 + rows && row0 < hi;
    it = overlap ? programmed_.erase(it) : std::next(it);
  }
}

MicroEngine::WeightPhase MicroEngine::load_weights(const GemmJob& job) {
  const bool stationary_b = job.stationary == StationaryOperand::kB;
  const std::uint64_t tile_rows = job.k;
  const std::uint64_t tile_cols = stationary_b ? job.n : job.m;
  const double scale = stationary_b ? job.scale_b : job.scale_a;

  // Reuse check: within a batched job the compiler-fused "smart mapping"
  // shares the stationary operand (Section III-B "we exploit this by writing
  // only A in the crossbar"); across jobs the runtime's weight-residency
  // cache requests reuse of a tile it believes resident at this row window.
  // Either way the engine validates against its own records, so a stale or
  // wrong request degrades into a reprogram, never into wrong results.
  const std::uint64_t pa = stationary_b ? job.pa_b : job.pa_a;
  const std::uint64_t ld = stationary_b ? job.ldb : job.lda;
  if (job.skip_weight_load) {
    const ProgrammedTile* resident = programmed_tile(job.tile_row0);
    if (resident != nullptr && resident->pa == pa && resident->scale == scale &&
        resident->rows == tile_rows && resident->cols == tile_cols &&
        resident->layout == job.stationary && resident->ld == ld) {
      TDO_LOG(kDebug, "cim.engine") << "stationary tile reuse at row "
                                    << job.tile_row0 << ", skipping "
                                    << tile_rows << " row programs";
      weight_writes_saved8_.add(tile_rows * tile_cols);
      return WeightPhase{};
    }
  }
  invalidate_rows(job.tile_row0, tile_rows);

  std::vector<float> row_f(tile_cols);
  std::vector<std::int8_t> row_q;
  Duration fill_done = Duration::zero();
  Duration prog_done = Duration::zero();
  Duration dma_total = Duration::zero();

  for (std::uint64_t r = 0; r < tile_rows; ++r) {
    Duration dma_time;
    auto bytes = std::as_writable_bytes(std::span<float>(row_f));
    auto u8 = std::span<std::uint8_t>(reinterpret_cast<std::uint8_t*>(bytes.data()),
                                      bytes.size());
    if (stationary_b) {
      // Row r of B is contiguous: B[r][0..n).
      dma_time = dma_.read_block(job.pa_b + r * job.ldb * 4, u8);
    } else {
      // Row r of A^T is column r of A: stride lda floats.
      dma_time = dma_.read_strided(job.pa_a + r * 4, job.lda * 4, 4,
                                   static_cast<std::uint32_t>(tile_cols), u8);
    }
    quantize_into(row_f, scale, row_q);
    (void)tile_.program_row(job.tile_row0 + static_cast<std::uint32_t>(r), row_q);

    dma_total = dma_total + dma_time;
    const Duration program_latency = model_.write_latency(1);
    if (job.double_buffering) {
      // DMA fill of row r+1 overlaps programming of row r.
      fill_done = fill_done + dma_time;
      prog_done = std::max(prog_done, fill_done) + program_latency;
    } else {
      prog_done = prog_done + dma_time + program_latency;
    }
  }

  programmed_[job.tile_row0] =
      ProgrammedTile{pa, scale, tile_rows, tile_cols, job.stationary, ld};
  return WeightPhase{prog_done, dma_total, tile_rows * tile_cols * 4};
}

MicroEngine::StreamPhase MicroEngine::stream_vectors(const GemmJob& job) {
  const bool stationary_b = job.stationary == StationaryOperand::kB;
  // Streamed vectors: rows of A (stationary B) or columns of B (stationary A).
  const std::uint64_t vectors = stationary_b ? job.m : job.n;
  const std::uint64_t reduce = job.k;                      // active crossbar rows
  const std::uint64_t out_len = stationary_b ? job.n : job.m;  // active columns
  const double in_scale = stationary_b ? job.scale_a : job.scale_b;
  const double out_scale = job.scale_a * job.scale_b;

  std::vector<float> in_f(reduce);
  std::vector<float> c_old(out_len, 0.0f);
  std::vector<float> c_new(out_len);
  std::vector<std::int8_t> in_q;

  Duration fill_done = Duration::zero();
  Duration compute_done = Duration::zero();
  Duration store_done = Duration::zero();
  Duration dma_total = Duration::zero();
  const Duration compute_latency = model_.compute_latency(1);

  for (std::uint64_t v = 0; v < vectors; ++v) {
    // --- fill row buffer (and old C when beta != 0) ---
    Duration in_time;
    {
      auto bytes = std::as_writable_bytes(std::span<float>(in_f));
      auto u8 = std::span<std::uint8_t>(
          reinterpret_cast<std::uint8_t*>(bytes.data()), bytes.size());
      if (stationary_b) {
        in_time = dma_.read_block(job.pa_a + v * job.lda * 4, u8);
      } else {
        in_time = dma_.read_strided(job.pa_b + v * 4, job.ldb * 4, 4,
                                    static_cast<std::uint32_t>(reduce), u8);
      }
    }
    if (job.beta != 0.0f) {
      auto bytes = std::as_writable_bytes(std::span<float>(c_old));
      auto u8 = std::span<std::uint8_t>(
          reinterpret_cast<std::uint8_t*>(bytes.data()), bytes.size());
      if (stationary_b) {
        in_time += dma_.read_block(job.pa_c + v * job.ldc * 4, u8);
      } else {
        in_time += dma_.read_strided(job.pa_c + v * 4, job.ldc * 4, 4,
                                     static_cast<std::uint32_t>(out_len), u8);
      }
    }

    // --- compute ---
    quantize_into(in_f, in_scale, in_q);
    const std::vector<std::int32_t> acc =
        tile_.gemv(in_q, static_cast<std::uint32_t>(reduce),
                   static_cast<std::uint32_t>(out_len), job.tile_row0);
    for (std::uint64_t j = 0; j < out_len; ++j) {
      c_new[j] = tile_.postprocess(acc[j], out_scale, job.alpha, job.beta, c_old[j]);
    }

    // --- store result from output buffers ---
    Duration out_time;
    {
      auto bytes = std::as_bytes(std::span<const float>(c_new));
      auto u8 = std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
      if (stationary_b) {
        out_time = dma_.write_block(job.pa_c + v * job.ldc * 4, u8);
      } else {
        out_time = dma_.write_strided(job.pa_c + v * 4, job.ldc * 4, 4,
                                      static_cast<std::uint32_t>(out_len), u8);
      }
    }

    dma_total = dma_total + in_time + out_time;
    if (job.double_buffering) {
      // Classic three-stage pipeline (Fig. 2d): fills run ahead, computes
      // chain on fills, stores chain on computes.
      fill_done = fill_done + in_time;
      compute_done = std::max(compute_done, fill_done) + compute_latency;
      store_done = compute_done + out_time;
    } else {
      store_done = store_done + in_time + compute_latency + out_time;
      fill_done = store_done;
      compute_done = store_done;
    }
  }
  return StreamPhase{store_done, dma_total};
}

support::StatusOr<MicroEngine::PhaseTimes> MicroEngine::run_gemm(
    const GemmJob& job) {
  const bool stationary_b = job.stationary == StationaryOperand::kB;
  const std::uint64_t tile_rows = job.k;
  const std::uint64_t tile_cols = stationary_b ? job.n : job.m;
  if (job.tile_row0 + tile_rows > tile_.rows() || tile_cols > tile_.cols()) {
    return support::invalid_argument(
        "operand tile exceeds crossbar geometry; the caller must tile");
  }
  PhaseTimes times;
  const WeightPhase weights = load_weights(job);
  times.weights = weights.total;
  times.weight_dma = weights.dma;
  times.weight_dma_bytes = weights.dma_bytes;
  const StreamPhase stream = stream_vectors(job);
  times.stream = stream.total;
  times.stream_dma = stream.dma;
  return times;
}

support::Duration MicroEngine::estimate_prefetch_dma(
    const ContextRegs& image) const {
  const Opcode op = static_cast<Opcode>(image.read(Reg::kOpcode));
  if (op != Opcode::kGemm && op != Opcode::kGemv &&
      op != Opcode::kGemmBatched && op != Opcode::kProgram) {
    return Duration::zero();
  }
  auto job = decode(image);
  if (!job.is_ok()) return Duration::zero();
  if (!job->double_buffering) return Duration::zero();

  const bool stationary_b = job->stationary == StationaryOperand::kB;
  const std::uint64_t tile_rows = job->k;
  const std::uint64_t tile_cols = stationary_b ? job->n : job->m;
  // A reuse request the engine expects to validate skips the weight DMA
  // entirely. Batched jobs carry per-entry pointers the estimate cannot see,
  // so only the explicit skip flag (residency-validated) counts for them.
  if (job->skip_weight_load) {
    if (op == Opcode::kGemmBatched) return Duration::zero();
    const double scale = stationary_b ? job->scale_b : job->scale_a;
    const std::uint64_t pa = stationary_b ? job->pa_b : job->pa_a;
    const std::uint64_t ld = stationary_b ? job->ldb : job->lda;
    const ProgrammedTile* resident = programmed_tile(job->tile_row0);
    if (resident != nullptr && resident->pa == pa && resident->scale == scale &&
        resident->rows == tile_rows && resident->cols == tile_cols &&
        resident->layout == job->stationary && resident->ld == ld) {
      return Duration::zero();
    }
  }
  const Duration per_row = stationary_b
                               ? dma_.estimate_block(tile_cols * 4)
                               : dma_.estimate_strided(tile_cols * 4);
  return per_row * static_cast<double>(tile_rows);
}

support::Duration MicroEngine::estimate_stream_dma(
    const ContextRegs& image) const {
  const Opcode op = static_cast<Opcode>(image.read(Reg::kOpcode));
  if (op != Opcode::kGemm && op != Opcode::kGemv && op != Opcode::kGemmBatched) {
    return Duration::zero();
  }
  auto job = decode(image);
  if (!job.is_ok()) return Duration::zero();

  // Mirror stream_vectors' per-vector traffic: one input fill, one old-C
  // read when beta != 0, one result store. Stationary-B streams rows
  // (contiguous bursts); stationary-A streams columns (strided bursts).
  const bool stationary_b = job->stationary == StationaryOperand::kB;
  const std::uint64_t vectors = stationary_b ? job->m : job->n;
  const std::uint64_t reduce = job->k;
  const std::uint64_t out_len = stationary_b ? job->n : job->m;
  const auto burst = [&](std::uint64_t bytes) {
    return stationary_b ? dma_.estimate_block(bytes)
                        : dma_.estimate_strided(bytes);
  };
  Duration per_vector = burst(reduce * 4) + burst(out_len * 4);
  if (job->beta != 0.0f) per_vector = per_vector + burst(out_len * 4);
  Duration total = per_vector * static_cast<double>(vectors);
  if (op == Opcode::kGemmBatched) {
    const std::uint64_t count =
        std::max<std::uint64_t>(image.read(Reg::kBatchCount), 1);
    total = total * static_cast<double>(count);
  }
  return total;
}

JobTimeline MicroEngine::launch(ContextRegs& regs,
                                support::Duration prefetch_credit) {
  JobTimeline timeline;
  timeline.trigger = events_.now();

  const TileStats before = tile_.stats();
  const std::uint64_t bursts_before = dma_.bursts();

  auto fail = [&](const support::Status& status) {
    TDO_LOG(kWarn, "cim.engine") << "job failed: " << status.to_string();
    const sim::Tick when = events_.now() + params_.job_setup.ticks();
    timeline.weights_programmed = when;
    timeline.done = when;
    events_.schedule_at(when, "cim.job_error", [&regs, status] {
      regs.set_status(DeviceStatus::kError);
      regs.write(Reg::kResult, static_cast<std::uint64_t>(status.code()));
    });
    return timeline;
  };

  const Opcode op = static_cast<Opcode>(regs.read(Reg::kOpcode));
  Duration weight_phase = params_.job_setup;
  Duration total = params_.job_setup;
  // Weight-DMA share of the first weight phase; what a chained job may have
  // prefetched while the previous job was still streaming.
  Duration prefetchable = Duration::zero();
  std::uint64_t prefetchable_bytes = 0;
  bool allow_prefetch = false;
  // DMA-channel occupancy of the job body after the first weight phase
  // (vector fills, result stores, later batch entries' weight loads) — the
  // busy window stream copies must serialize around.
  Duration body_dma = Duration::zero();

  switch (op) {
    case Opcode::kGemv:
    case Opcode::kGemm: {
      auto job = decode(regs);
      if (!job.is_ok()) return fail(job.status());
      // Residency survives across jobs: a fresh job simply reprograms its
      // own row window (load_weights retires any tiles it overwrites), so
      // tiles in disjoint windows stay valid for later reuse requests.
      auto phases = run_gemm(*job);
      if (!phases.is_ok()) return fail(phases.status());
      weight_phase += phases->weights;
      total = weight_phase + phases->stream;
      prefetchable = phases->weight_dma;
      prefetchable_bytes = phases->weight_dma_bytes;
      allow_prefetch = job->double_buffering;
      body_dma = phases->stream_dma;
      break;
    }
    case Opcode::kGemmBatched: {
      auto base = decode(regs);
      if (!base.is_ok()) return fail(base.status());
      const std::uint64_t count = regs.read(Reg::kBatchCount);
      if (count == 0) return fail(support::invalid_argument("empty batch"));
      // Fetch the batch table from shared memory.
      std::vector<BatchEntry> entries(count);
      auto bytes = std::as_writable_bytes(std::span<BatchEntry>(entries));
      auto u8 = std::span<std::uint8_t>(
          reinterpret_cast<std::uint8_t*>(bytes.data()), bytes.size());
      total += dma_.read_block(regs.read(Reg::kBatchTable), u8);

      // Without a residency-validated reuse request the batch cannot assume
      // its row window still holds the shared tile from an earlier call.
      if (!base->skip_weight_load) invalidate_rows(base->tile_row0, base->k);
      bool first_weights_done = false;
      for (const BatchEntry& entry : entries) {
        GemmJob job = *base;
        job.pa_a = entry.pa_a;
        job.pa_b = entry.pa_b;
        job.pa_c = entry.pa_c;
        job.scale_a = entry.scale_a;
        job.scale_b = entry.scale_b;
        // Shared-input exploitation: allow reuse when the stationary operand
        // matches what is already programmed.
        job.skip_weight_load = true;
        auto phases = run_gemm(job);
        if (!phases.is_ok()) return fail(phases.status());
        total += phases->weights + phases->stream;
        body_dma = body_dma + phases->stream_dma;
        if (!first_weights_done) {
          weight_phase += phases->weights;
          prefetchable = phases->weight_dma;
          prefetchable_bytes = phases->weight_dma_bytes;
          allow_prefetch = base->double_buffering;
          first_weights_done = true;
        } else {
          body_dma = body_dma + phases->weight_dma;
        }
      }
      break;
    }
    case Opcode::kProgram: {
      // Program-only job: loads the stationary tile into its crossbar row
      // window and completes without a stream phase. Carries the runtime's
      // prefetch-on-miss programming (hidden under the previous job's stream
      // phase via the normal chained-prefetch credit) and the adoption step
      // of peer-to-peer residency migration.
      auto job = decode(regs);
      if (!job.is_ok()) return fail(job.status());
      const bool stationary_b = job->stationary == StationaryOperand::kB;
      const std::uint64_t tile_rows = job->k;
      const std::uint64_t tile_cols = stationary_b ? job->n : job->m;
      if (job->tile_row0 + tile_rows > tile_.rows() ||
          tile_cols > tile_.cols()) {
        return fail(support::invalid_argument(
            "operand tile exceeds crossbar geometry; the caller must tile"));
      }
      const WeightPhase weights = load_weights(*job);
      weight_phase += weights.total;
      total = weight_phase;
      prefetchable = weights.dma;
      prefetchable_bytes = weights.dma_bytes;
      allow_prefetch = job->double_buffering;
      break;
    }
    case Opcode::kCopy:
      // Copies never reach the micro-engine; the accelerator routes them to
      // the DMA channel before launch (Accelerator::start_copy).
      return fail(support::unimplemented("copy jobs execute on the DMA channel"));
    case Opcode::kNop:
      break;
  }

  // Stream-level double buffering: a chained job's initial weight DMA ran
  // while the previous job streamed, so that share of the weight phase is
  // already paid for.
  Duration overlap = Duration::zero();
  if (allow_prefetch && prefetch_credit > Duration::zero() &&
      prefetchable > Duration::zero()) {
    overlap = std::min(prefetch_credit, prefetchable);
    weight_phase = weight_phase - overlap;
    total = total - overlap;
    const double fraction = overlap.picoseconds() / prefetchable.picoseconds();
    dma_.note_prefetch(static_cast<std::uint64_t>(
        fraction * static_cast<double>(prefetchable_bytes)));
  }
  timeline.overlap = overlap.ticks();

  // Charge energy from the tile/DMA activity deltas of this job. The same
  // deltas ride the timeline so the trace span carries the charged counts.
  const TileStats after = tile_.stats();
  const std::uint64_t bursts = dma_.bursts() - bursts_before;
  timeline.weight_writes8 = after.weight_writes8 - before.weight_writes8;
  timeline.mac8_ops = after.mac8_ops - before.mac8_ops;
  timeline.gemv_ops = after.gemv_ops - before.gemv_ops;
  timeline.extra_alu_ops = after.extra_alu_ops - before.extra_alu_ops;
  timeline.buffer_byte_accesses =
      after.buffer_byte_accesses - before.buffer_byte_accesses;
  timeline.dma_bursts = bursts;
  if (sinks_.write != nullptr) {
    sinks_.write->add(model_.write_energy(after.weight_writes8 - before.weight_writes8));
  }
  if (sinks_.compute != nullptr) {
    sinks_.compute->add(model_.compute_energy(after.mac8_ops - before.mac8_ops));
  }
  if (sinks_.mixed_signal != nullptr) {
    sinks_.mixed_signal->add(
        model_.mixed_signal_energy(after.gemv_ops - before.gemv_ops));
  }
  if (sinks_.digital != nullptr) {
    sinks_.digital->add(model_.digital_energy(
        after.gemv_ops - before.gemv_ops,
        after.extra_alu_ops - before.extra_alu_ops));
  }
  if (sinks_.buffers != nullptr) {
    sinks_.buffers->add(model_.buffer_energy(after.buffer_byte_accesses -
                                             before.buffer_byte_accesses));
  }
  if (sinks_.dma != nullptr) sinks_.dma->add(model_.dma_energy(bursts));

  timeline.weights_programmed = timeline.trigger + weight_phase.ticks();
  timeline.done = timeline.trigger + total.ticks();

  // Channel contention: the job's own DMA traffic reserves busy windows on
  // the engine's channel, so stream copies serialize behind it (or migrate
  // to an idle channel) instead of being counted as free overlap. The weight
  // phase interleaves DMA fills with row programming back-to-back, so it
  // claims the channel for the whole phase; the body's fills/stores (and a
  // batch's later weight loads) claim their aggregate DMA share from the
  // front of the stream phase — fills run ahead of computes under double
  // buffering — leaving only the genuine compute tail open for copies.
  if (prefetchable > overlap) {
    dma_.reserve_engine(timeline.trigger, timeline.weights_programmed);
  }
  if (body_dma > Duration::zero()) {
    dma_.reserve_engine(timeline.weights_programmed,
                        std::min(timeline.done,
                                 timeline.weights_programmed + body_dma.ticks()));
  }

  events_.schedule_at(timeline.weights_programmed, "cim.weights_programmed", [] {});
  events_.schedule_at(timeline.done, "cim.job_done", [&regs] {
    regs.set_status(DeviceStatus::kDone);
    regs.write(Reg::kResult, 0);
  });
  return timeline;
}

}  // namespace tdo::cim
