// CIM tile: crossbar + row/column/output buffers + digital logic block
// (paper Section II-B, Figure 2b).
//
// The buffers are the digital staging interface between DMA and the analog
// array; every byte moved through them is charged at the Table I buffer
// energy. The digital logic performs the nibble weighted sum (inside
// Crossbar::gemv), the offset corrections, and the scalar post-processing
// (dequantize, alpha/beta) — each counted as "extra ALU operations".
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pcm/adc.hpp"
#include "pcm/crossbar.hpp"
#include "pcm/energy_model.hpp"
#include "support/fixed_point.hpp"
#include "support/stats.hpp"

namespace tdo::cim {

struct TileParams {
  pcm::CrossbarParams crossbar;
  pcm::AdcParams adc;
};

/// Execution statistics of the tile, consumed by the accelerator's energy
/// accounting and by the Figure-6 "MACs per cim-write" metric.
struct TileStats {
  std::uint64_t weight_writes8 = 0;   // 8-bit weights programmed
  std::uint64_t rows_programmed = 0;  // row-parallel write steps
  std::uint64_t gemv_ops = 0;
  std::uint64_t mac8_ops = 0;
  std::uint64_t extra_alu_ops = 0;
  std::uint64_t buffer_byte_accesses = 0;
};

class CimTile {
 public:
  explicit CimTile(TileParams params);

  [[nodiscard]] std::uint32_t rows() const { return crossbar_.rows(); }
  [[nodiscard]] std::uint32_t cols() const { return crossbar_.cols(); }
  [[nodiscard]] std::uint64_t capacity_bytes() const {
    return crossbar_.capacity_weights();  // one byte per 8-bit weight
  }

  /// Programs one crossbar row from already-quantized weights via the column
  /// buffers. Returns number of 8-bit weights written.
  std::uint64_t program_row(std::uint32_t row, std::span<const std::int8_t> weights);

  /// Programs a full stationary tile: `tile` is row-major rows x cols.
  void program_tile(std::span<const std::int8_t> tile, std::uint32_t tile_rows,
                    std::uint32_t tile_cols);

  /// One GEMV: latches quantized inputs into the row buffer, evaluates the
  /// crossbar over rows [row0, row0 + active_rows), runs the ADC
  /// conversions, and returns the signed fixed-point accumulations for
  /// `active_cols` columns. `row0` selects the crossbar row window holding
  /// the stationary tile (several tiles can be resident in disjoint rows).
  [[nodiscard]] std::vector<std::int32_t> gemv(std::span<const std::int8_t> inputs,
                                               std::uint32_t active_rows,
                                               std::uint32_t active_cols,
                                               std::uint32_t row0 = 0);

  /// Digital-logic post-processing of one output element:
  /// result = alpha * (acc * scale) + beta * previous. Charged as ALU ops.
  [[nodiscard]] float postprocess(std::int32_t acc, double scale, float alpha,
                                  float beta, float previous);

  /// Count extra digital-ALU work done on behalf of the micro-engine.
  void charge_alu_ops(std::uint64_t n) { stats_.extra_alu_ops += n; }
  void charge_buffer_bytes(std::uint64_t n) { stats_.buffer_byte_accesses += n; }

  [[nodiscard]] const TileStats& stats() const { return stats_; }
  [[nodiscard]] const pcm::Crossbar& crossbar() const { return crossbar_; }
  [[nodiscard]] pcm::Crossbar& crossbar() { return crossbar_; }
  [[nodiscard]] const pcm::AdcArray& adc() const { return adc_; }

 private:
  TileParams params_;
  pcm::Crossbar crossbar_;
  pcm::AdcArray adc_;
  TileStats stats_;
};

}  // namespace tdo::cim
