// Context register file of the CIM accelerator (paper Sections II-C/II-E).
//
// "The accelerator ... exposes a set of context registers to the system via a
// memory-mapped IO interface. Context registers are used for control and
// offloading, and are read or written by the host."
//
// Layout: 64-bit registers at 8-byte strides inside the PMIO window. The
// kernel driver is the only software that touches these directly.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

namespace tdo::cim {

/// Register indices (word offsets inside the PMIO window).
enum class Reg : std::uint32_t {
  kCommand = 0,     // write 1 to trigger the micro-engine
  kStatus,          // DeviceStatus
  kOpcode,          // Opcode
  kM, kN, kK,       // GEMM/GEMV dimensions
  kPaA, kPaB, kPaC, // physical addresses of operands
  kLda, kLdb, kLdc, // leading dimensions (elements)
  kAlpha, kBeta,    // float bits in low 32
  kScaleA, kScaleB, // double bits: quantization scales
  kStationary,      // StationaryOperand
  kFlags,           // JobFlags bitmask
  kBatchCount,      // number of batch entries (batched GEMM)
  kBatchTable,      // PA of BatchEntry[kBatchCount]
  kCopyDir,         // DMA copy direction tag (kCopy jobs; informational —
                    // shared memory is flat, the channel ignores it)
  kTileRow,         // crossbar row offset of the job's stationary tile (the
                    // weight-residency cache places tiles in disjoint row
                    // windows so several weight sets stay resident)
  kSegCount,        // kCopy: scatter-gather segments in the chain (<=1 means
                    // the descriptor is inline in PaA/Lda/PaC/Ldc/M/N)
  kSegTable,        // kCopy: PA of CopySegEntry[kSegCount] in shared memory
  kResult,          // Status/error code written by the device
  kCompleted,       // jobs completed since reset (read-only; work-queue poll)
  kCount
};

inline constexpr std::uint32_t kRegCount = static_cast<std::uint32_t>(Reg::kCount);
inline constexpr std::uint64_t kRegStride = 8;
inline constexpr std::uint64_t kPmioWindowBytes = kRegCount * kRegStride;

/// Default PMIO window base on the system bus (above DRAM).
inline constexpr std::uint64_t kDefaultPmioBase = 0x1'0000'0000ull;

[[nodiscard]] constexpr std::uint64_t reg_offset(Reg r) {
  return static_cast<std::uint64_t>(r) * kRegStride;
}

enum class DeviceStatus : std::uint64_t {
  kIdle = 0,
  kBusy = 1,
  kDone = 2,
  kError = 3,
};

enum class Opcode : std::uint64_t {
  kNop = 0,
  kGemv = 1,         // y = alpha*op(A)*x + beta*y
  kGemm = 2,         // C = alpha*A*B + beta*C
  kGemmBatched = 3,  // batch of GEMMs sharing the stationary operand if equal
  kCopy = 4,         // rectangle DMA copy on the DMA channel (never the engine)
  kProgram = 5,      // program the stationary tile only, no stream phase (the
                     // runtime's prefetch-on-miss and migration-adoption path)
};

/// Which operand is held stationary in the crossbar (Section III-B).
enum class StationaryOperand : std::uint64_t {
  kB = 0,  // program B (KxN); stream rows of A; emit rows of C
  kA = 1,  // program A^T (KxM); stream columns of B; emit columns of C
};

/// Job behaviour flags.
struct JobFlags {
  static constexpr std::uint64_t kDoubleBuffering = 1ull << 0;
  static constexpr std::uint64_t kDifferentialWrite = 1ull << 1;  // skip unchanged cells
  /// Reuse the stationary tile already programmed at kTileRow. Within a
  /// batched job this is the paper's shared-input "smart mapping"; across
  /// jobs it is set by the runtime's weight-residency cache, and the engine
  /// still validates the request against its own programmed-tile records.
  static constexpr std::uint64_t kSkipWeightLoad = 1ull << 2;
};

/// One batched-GEMM table entry, laid out in shared memory.
struct BatchEntry {
  std::uint64_t pa_a = 0;
  std::uint64_t pa_b = 0;
  std::uint64_t pa_c = 0;
  double scale_a = 1.0;
  double scale_b = 1.0;
};
static_assert(sizeof(BatchEntry) == 40);

/// One scatter-gather copy segment, laid out in shared memory at kSegTable
/// (the descriptor-chain form every real SG-DMA engine uses). Each segment is
/// a rectangle pair: `rows` rows of `width` bytes, row starts `*_pitch` bytes
/// apart on each side. The DMA walks the chain back-to-back on one channel.
struct CopySegEntry {
  std::uint64_t src_base = 0;
  std::uint64_t src_pitch = 0;
  std::uint64_t dst_base = 0;
  std::uint64_t dst_pitch = 0;
  std::uint64_t width = 0;  ///< bytes per row
  std::uint64_t rows = 0;
};
static_assert(sizeof(CopySegEntry) == 48);

/// Raw register file with typed accessors.
class ContextRegs {
 public:
  [[nodiscard]] std::uint64_t read(Reg r) const {
    return words_[static_cast<std::uint32_t>(r)];
  }
  void write(Reg r, std::uint64_t value) {
    words_[static_cast<std::uint32_t>(r)] = value;
  }

  [[nodiscard]] float read_f32(Reg r) const {
    return std::bit_cast<float>(static_cast<std::uint32_t>(read(r)));
  }
  void write_f32(Reg r, float value) {
    write(r, std::bit_cast<std::uint32_t>(value));
  }
  [[nodiscard]] double read_f64(Reg r) const {
    return std::bit_cast<double>(read(r));
  }
  void write_f64(Reg r, double value) {
    write(r, std::bit_cast<std::uint64_t>(value));
  }

  [[nodiscard]] DeviceStatus status() const {
    return static_cast<DeviceStatus>(read(Reg::kStatus));
  }
  void set_status(DeviceStatus s) {
    write(Reg::kStatus, static_cast<std::uint64_t>(s));
  }

 private:
  std::array<std::uint64_t, kRegCount> words_{};
};

}  // namespace tdo::cim
