#include "cim/accelerator.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <span>
#include <vector>

#include "obs/trace.hpp"
#include "support/log.hpp"
#include "topo/topology.hpp"

namespace tdo::cim {

AcceleratorParams instance_params(AcceleratorParams base, std::size_t index) {
  if (index > 0) {
    base.name += std::to_string(index);
    base.pmio_base += index * kPmioInstanceStride;
  }
  return base;
}

Accelerator::Accelerator(AcceleratorParams params, sim::System& system)
    : params_{std::move(params)}, system_{system}, model_{params_.energy} {
  tile_ = std::make_unique<CimTile>(params_.tile);
  dma_ = std::make_unique<Dma>(params_.dma, system.memory());
  engine_ = std::make_unique<MicroEngine>(
      params_.engine, *tile_, *dma_, model_, system.events(),
      EnergySinks{&e_write_, &e_compute_, &e_mixed_, &e_digital_, &e_buffers_,
                  &e_dma_});

  const auto attached =
      system.bus().attach(params_.pmio_base, kPmioWindowBytes, *this);
  assert(attached.is_ok() && "PMIO window attach failed");
  (void)attached;

  auto& stats = system.stats();
  const std::string& p = params_.name;
  stats.register_counter(p + ".jobs", &jobs_);
  stats.register_counter(p + ".queued_jobs", &queued_jobs_);
  stats.register_counter(p + ".jobs_completed", &completed_);
  stats.register_counter(p + ".jobs_failed", &failed_);
  stats.register_counter(p + ".copies", &copies_);
  stats.register_counter(p + ".copy_segments", &copy_segments_);
  stats.register_counter(p + ".overlap_ticks", &overlap_ticks_);
  stats.register_counter(p + ".withheld_responses", &withheld_responses_);
  stats.register_counter(p + ".weight_writes_saved8",
                         &engine_->weight_writes_saved_counter());
  stats.register_energy(p + ".energy.write", &e_write_);
  stats.register_energy(p + ".energy.compute", &e_compute_);
  stats.register_energy(p + ".energy.mixed_signal", &e_mixed_);
  stats.register_energy(p + ".energy.digital", &e_digital_);
  stats.register_energy(p + ".energy.buffers", &e_buffers_);
  stats.register_energy(p + ".energy.dma", &e_dma_);
  dma_->register_stats(stats, p);

  regs_.set_status(DeviceStatus::kIdle);
}

support::Status Accelerator::mmio_read(std::uint64_t offset,
                                       std::span<std::uint8_t> out) {
  if (offset % kRegStride != 0 || out.size() != kRegStride) {
    return support::invalid_argument("context registers require aligned 64-bit IO");
  }
  const auto index = static_cast<std::uint32_t>(offset / kRegStride);
  if (index >= kRegCount) return support::out_of_range("register index");
  const std::uint64_t value = regs_.read(static_cast<Reg>(index));
  std::memcpy(out.data(), &value, sizeof value);
  return support::Status::ok();
}

support::Status Accelerator::mmio_write(std::uint64_t offset,
                                        std::span<const std::uint8_t> in) {
  if (offset % kRegStride != 0 || in.size() != kRegStride) {
    return support::invalid_argument("context registers require aligned 64-bit IO");
  }
  const auto index = static_cast<std::uint32_t>(offset / kRegStride);
  if (index >= kRegCount) return support::out_of_range("register index");
  std::uint64_t value = 0;
  std::memcpy(&value, in.data(), sizeof value);

  const Reg reg = static_cast<Reg>(index);
  if (reg == Reg::kCompleted) {
    return support::failed_precondition("completed-jobs register is read-only");
  }
  if (reg == Reg::kCommand) {
    if (value == 1) {
      if (regs_.status() == DeviceStatus::kBusy) {
        return support::failed_precondition("accelerator busy");
      }
      trigger();
    }
    return support::Status::ok();
  }
  if (reg == Reg::kStatus && regs_.status() != DeviceStatus::kBusy) {
    // Host may acknowledge DONE/ERROR by resetting to IDLE.
    regs_.write(Reg::kStatus, value);
    return support::Status::ok();
  }
  if (regs_.status() == DeviceStatus::kBusy) {
    return support::failed_precondition("context registers locked while busy");
  }
  regs_.write(reg, value);
  return support::Status::ok();
}

support::Status Accelerator::enqueue_job(const ContextRegs& image) {
  // Copies never occupy the compute queue: they execute on the DMA channel,
  // which is otherwise idle while the micro-engine streams vectors.
  if (static_cast<Opcode>(image.read(Reg::kOpcode)) == Opcode::kCopy) {
    return start_copy(image);
  }
  if (regs_.status() == DeviceStatus::kBusy) {
    if (queue_.size() >= params_.work_queue_depth) {
      return support::resource_exhausted("CIM work queue full");
    }
    queue_.push_back(QueuedJob{image, system_.events().now()});
    queued_jobs_.add();
    // A job that became the queue front will prefetch its weight DMA during
    // the running job's stream tail: book that window on the channel
    // timeline now, so a later copy cannot first-fit into the same slot.
    if (queue_.size() == 1) reserve_queue_prefetch();
    // The new job also extends the queue's estimated body-DMA chain:
    // re-derive the advisory windows so copies account for it.
    dma_->drop_advisory();
    reserve_queue_body();
    return support::Status::ok();
  }
  apply_image(image);
  trigger();
  return support::Status::ok();
}

void Accelerator::apply_image(const ContextRegs& image) {
  for (std::uint32_t i = 0; i < kRegCount; ++i) {
    const Reg reg = static_cast<Reg>(i);
    if (reg == Reg::kCommand || reg == Reg::kStatus || reg == Reg::kResult ||
        reg == Reg::kCompleted) {
      continue;
    }
    regs_.write(reg, image.read(reg));
  }
}

void Accelerator::trigger() {
  TDO_LOG(kDebug, "cim.accel") << "job triggered, opcode="
                               << regs_.read(Reg::kOpcode);
  if (static_cast<Opcode>(regs_.read(Reg::kOpcode)) == Opcode::kCopy) {
    // MMIO-triggered copies route to the DMA channel like queued ones; the
    // engine (and the status register) stay untouched.
    (void)start_copy(regs_);
    return;
  }
  current_job_enqueued_ = system_.events().now();
  start_job(support::Duration::zero());
}

support::Status Accelerator::start_copy(const ContextRegs& image) {
  // Decode the descriptor: inline single rectangle, or a scatter-gather
  // chain whose CopySegEntry table the DMA fetches from shared memory.
  const std::uint64_t seg_count = image.read(Reg::kSegCount);
  const std::uint64_t bursts_before = dma_->bursts();
  support::Duration duration = support::Duration::zero();
  std::uint64_t bytes = 0;
  if (seg_count > 1) {
    std::vector<CopySegEntry> segs(seg_count);
    auto raw = std::as_writable_bytes(std::span<CopySegEntry>(segs));
    duration = duration + dma_->read_block(
        image.read(Reg::kSegTable),
        std::span<std::uint8_t>(reinterpret_cast<std::uint8_t*>(raw.data()),
                                raw.size()));
    for (const CopySegEntry& seg : segs) {
      duration = duration + dma_->copy_rect(seg.src_base, seg.src_pitch,
                                            seg.dst_base, seg.dst_pitch,
                                            seg.width, seg.rows);
      bytes += seg.width * seg.rows;
    }
    copy_segments_.add(seg_count);
  } else {
    const std::uint64_t rows = image.read(Reg::kM);
    const std::uint64_t width = image.read(Reg::kN);
    bytes = rows * width;
    if (bytes == 0) return support::Status::ok();  // no-op descriptor
    duration = dma_->copy_rect(image.read(Reg::kPaA), image.read(Reg::kLda),
                               image.read(Reg::kPaC), image.read(Reg::kLdc),
                               width, rows);
    copy_segments_.add();
  }
  copies_.add();
  e_dma_.add(model_.dma_energy(dma_->bursts() - bursts_before));

  // Place the chain on a DMA channel: first-fit into the idle gaps of the
  // per-channel busy-window timeline, so a copy overlapping the engine's own
  // weight/vector traffic serializes behind it (or migrates to the idle
  // channel) instead of being counted as free overlap. Segments of one chain
  // run back-to-back inside a single reservation.
  const sim::Tick now = system_.events().now();
  const Dma::CopySlot slot = dma_->reserve_copy(now, duration.ticks());
  const sim::Tick start = slot.start;
  const sim::Tick done = start + duration.ticks();
  // Copy bytes whose transfer window lies under engine busy windows are
  // hidden behind compute (the DTO-style copy/compute overlap). The figure
  // is exact: the running job's remaining window is credited here, every
  // chained job credits its own window as it launches (start_job), and the
  // share of the window the engine's own DMA occupies on this channel is
  // subtracted — the credit never exceeds the channel's true idle window.
  dma_busy_until_ = std::max(dma_busy_until_, done);
  ++copies_in_flight_;
  const std::uint64_t id = next_copy_id_++;
  active_copies_.push_back(ActiveCopy{id, start, done, bytes, 0, slot.channel});
  if (busy_until_ > start) {
    const sim::Tick hi = std::min(done, busy_until_);
    const sim::Tick covered = hi - start;
    active_copies_.back().hidden =
        covered - dma_->engine_busy_overlap(slot.channel, start, hi);
  }
  if (obs::enabled()) {
    // The copy-window span: `wait` is the contention stall the first-fit
    // reservation imposed before the chain could start.
    obs::Tracer::instance().span(
        "dma/" + params_.name + ".ch" + std::to_string(slot.channel), "copy",
        start, duration.ticks(),
        {{"bytes", bytes},
         {"segs", seg_count > 1 ? seg_count : 1},
         {"wait", start - now},
         {"dmab", dma_->bursts() - bursts_before}});
  }
  system_.events().schedule_at(done, params_.name + ".copy_done", [this, id] {
    --copies_in_flight_;
    const auto it =
        std::find_if(active_copies_.begin(), active_copies_.end(),
                     [id](const ActiveCopy& c) { return c.id == id; });
    if (it != active_copies_.end()) {
      const sim::Tick window = it->done - it->start;
      if (window > 0 && it->hidden > 0) {
        const double fraction = static_cast<double>(std::min(it->hidden, window)) /
                                static_cast<double>(window);
        dma_->note_copy_overlap(static_cast<std::uint64_t>(
            fraction * static_cast<double>(it->bytes)));
      }
      active_copies_.erase(it);
    }
  });
  return support::Status::ok();
}

void Accelerator::credit_copy_overlap(sim::Tick win_start, sim::Tick win_end) {
  for (ActiveCopy& copy : active_copies_) {
    const sim::Tick lo = std::max(win_start, copy.start);
    const sim::Tick hi = std::min(win_end, copy.done);
    if (hi > lo) {
      // Engine DMA windows on the copy's channel are not idle time under
      // compute; only the remainder of the busy window counts as hidden.
      copy.hidden += (hi - lo) - dma_->engine_busy_overlap(copy.channel, lo, hi);
    }
  }
}

void Accelerator::reserve_queue_prefetch() {
  if (!params_.queue_prefetch || queue_.empty()) return;
  if (busy_until_ <= last_timeline_.weights_programmed) return;
  const QueuedJob& front = queue_.front();
  // Mirror the credit the chain launch will grant: the prefetch runs in the
  // stream tail, bounded by the front job's weight-DMA demand, the stream
  // phase, and how long the job will have been queued by then.
  const support::Duration estimate = engine_->estimate_prefetch_dma(front.image);
  const sim::Tick queued_for = busy_until_ - front.enqueued;
  const sim::Tick window =
      std::min({estimate.ticks(), last_timeline_.stream_phase().ticks(),
                queued_for});
  if (window == 0) return;
  dma_->reserve_engine(busy_until_ - window, busy_until_);
}

void Accelerator::reserve_queue_body() {
  if (!params_.queue_body_reserve || queue_.empty()) return;
  // Chain estimated launch points from the running job's completion: each
  // queued job's weight DMA then its stream-body DMA occupy the engine
  // channel in turn. The windows are advisory (estimates drop at the next
  // launch, when the authoritative reservations take over), but they are
  // what keeps a copy submitted against a deep queue from first-fitting
  // into channel time the queue already owns.
  sim::Tick t = busy_until_;
  for (const QueuedJob& job : queue_) {
    const sim::Tick weight = engine_->estimate_prefetch_dma(job.image).ticks();
    const sim::Tick body = engine_->estimate_stream_dma(job.image).ticks();
    if (weight + body > 0) {
      dma_->reserve_engine_advisory(t, t + weight + body);
    }
    t += weight + body;
  }
}

void Accelerator::start_job(support::Duration prefetch_credit) {
  jobs_.add();
  regs_.set_status(DeviceStatus::kBusy);
  dma_->retire_before(system_.events().now());
  // This job's launch reserves its authoritative channel windows below;
  // the enqueue-time advisory estimates (which end in the future, out of
  // retire_before's reach) must go first or the body DMA double-books.
  dma_->drop_advisory();
  last_timeline_ = engine_->launch(regs_, prefetch_credit);
  overlap_ticks_.add(last_timeline_.overlap);
  busy_until_ = last_timeline_.done;
  // A chained job's prefetched weight DMA occupied the engine channel
  // during the previous job's stream tail [trigger - overlap, trigger) —
  // ticks that were already credited to active copies as idle-under-compute
  // when the previous job launched. Debit copies on that channel so the
  // overlap figure stays within the channel's true idle window. (A copy
  // that retired before this launch keeps its credit; the residual
  // over-credit is bounded by the prefetch share of its final ticks.)
  if (last_timeline_.overlap > 0) {
    const sim::Tick lo = last_timeline_.trigger - last_timeline_.overlap;
    for (ActiveCopy& copy : active_copies_) {
      if (copy.channel != 0) continue;
      const sim::Tick begin = std::max(lo, copy.start);
      const sim::Tick end = std::min(last_timeline_.trigger, copy.done);
      if (end > begin) {
        copy.hidden -= std::min<sim::Tick>(copy.hidden, end - begin);
      }
    }
  }
  // Chained-launch share of the copy/compute overlap: any stream copy whose
  // transfer window spans this job's busy window is hidden under it.
  credit_copy_overlap(last_timeline_.trigger, busy_until_);
  // The queue front (if any) will prefetch its weight DMA during this job's
  // stream tail — reserve that window so copies can't double-book it. (The
  // enqueue path reserves when a job becomes front under an already-running
  // job; this covers fronts inherited across a chain launch.)
  reserve_queue_prefetch();
  // And the still-queued jobs' body DMA re-chains from the fresh busy_until_.
  reserve_queue_body();

  // Completion chain: the engine's own done/error event (same tick, earlier
  // sequence) has already updated kStatus/kResult when this runs.
  const support::Duration stream_phase =
      params_.queue_prefetch ? last_timeline_.stream_phase()
                             : support::Duration::zero();
  system_.events().schedule_at(busy_until_, params_.name + ".advance",
                               [this, stream_phase,
                                timeline = last_timeline_,
                                enq = current_job_enqueued_] {
    completed_.add();
    regs_.write(Reg::kCompleted, completed_.value());
    if (regs_.status() == DeviceStatus::kError) {
      failed_.add();
      last_error_ = regs_.read(Reg::kResult);
    }
    if (obs::enabled()) {
      // One span per retired job on this engine's track. `completed` is the
      // FIFO retirement ordinal — the analyzer joins a request's completion
      // target {dev, completed} with exactly this span.
      obs::Tracer::instance().span(
          "engine/" + params_.name, "job", timeline.trigger,
          timeline.done - timeline.trigger,
          {{"dev", device_ordinal_ + 1},
           {"enq", enq},
           {"wp", timeline.weights_programmed},
           {"completed", completed_.value()},
           // Activity counts for trace-driven energy attribution — the
           // exact deltas launch() charged the energy sinks with.
           {"ww8", timeline.weight_writes8},
           {"mac", timeline.mac8_ops},
           {"gemv", timeline.gemv_ops},
           {"alu", timeline.extra_alu_ops},
           {"bufb", timeline.buffer_byte_accesses},
           {"dmab", timeline.dma_bursts}});
    }
    if (completion_observer_) {
      if (response_link_ != nullptr) {
        // Withhold-response: the completion message serializes over the
        // pool link; the host observes the completion only at its delivery
        // tick. Responses of concurrent far jobs contend on the link's
        // single timeline, and delivery ticks stay monotone in completion
        // order, so observers still see a non-decreasing completed count.
        withheld_responses_.add();
        const sim::Tick now = system_.events().now();
        response_link_->retire_before(now);
        const sim::Tick deliver = response_link_->delivery(
            now, response_link_->params().response_bytes);
        const std::uint64_t completed_count = completed_.value();
        system_.events().schedule_at(
            deliver, params_.name + ".response", [this, completed_count] {
              if (completion_observer_) {
                completion_observer_(completed_count, system_.events().now());
              }
            });
      } else {
        completion_observer_(completed_.value(), system_.events().now());
      }
    }
    if (queue_.empty()) return;
    const QueuedJob job = queue_.front();
    queue_.pop_front();
    apply_image(job.image);
    // Prefetch could only run while the job sat in the queue *and* the
    // engine was streaming: a late-enqueued image claims only the tail of
    // the stream phase, not all of it.
    const sim::Tick now = system_.events().now();
    const support::Duration queued_for = sim::from_ticks(now - job.enqueued);
    current_job_enqueued_ = job.enqueued;
    start_job(std::min(stream_phase, queued_for));
  });
}

support::Energy Accelerator::total_energy() const {
  return e_write_.total() + e_compute_.total() + e_mixed_.total() +
         e_digital_.total() + e_buffers_.total() + e_dma_.total();
}

AcceleratorReport Accelerator::report() const {
  AcceleratorReport rep;
  rep.jobs = jobs_.value();
  rep.gemv_ops = tile_->stats().gemv_ops;
  rep.mac8_ops = tile_->stats().mac8_ops;
  rep.weight_writes8 = tile_->stats().weight_writes8;
  rep.weight_writes_saved8 = engine_->weight_writes_saved8();
  rep.total_energy = total_energy();
  return rep;
}

}  // namespace tdo::cim
