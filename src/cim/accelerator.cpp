#include "cim/accelerator.hpp"

#include <cassert>
#include <cstring>

#include "support/log.hpp"

namespace tdo::cim {

Accelerator::Accelerator(AcceleratorParams params, sim::System& system)
    : params_{params}, system_{system}, model_{params.energy} {
  tile_ = std::make_unique<CimTile>(params_.tile);
  dma_ = std::make_unique<Dma>(params_.dma, system.memory());
  engine_ = std::make_unique<MicroEngine>(
      params_.engine, *tile_, *dma_, model_, system.events(),
      EnergySinks{&e_write_, &e_compute_, &e_mixed_, &e_digital_, &e_buffers_,
                  &e_dma_});

  const auto attached =
      system.bus().attach(params_.pmio_base, kPmioWindowBytes, *this);
  assert(attached.is_ok() && "PMIO window attach failed");
  (void)attached;

  auto& stats = system.stats();
  stats.register_counter("cim.jobs", &jobs_);
  stats.register_energy("cim.energy.write", &e_write_);
  stats.register_energy("cim.energy.compute", &e_compute_);
  stats.register_energy("cim.energy.mixed_signal", &e_mixed_);
  stats.register_energy("cim.energy.digital", &e_digital_);
  stats.register_energy("cim.energy.buffers", &e_buffers_);
  stats.register_energy("cim.energy.dma", &e_dma_);
  dma_->register_stats(stats);

  regs_.set_status(DeviceStatus::kIdle);
}

support::Status Accelerator::mmio_read(std::uint64_t offset,
                                       std::span<std::uint8_t> out) {
  if (offset % kRegStride != 0 || out.size() != kRegStride) {
    return support::invalid_argument("context registers require aligned 64-bit IO");
  }
  const auto index = static_cast<std::uint32_t>(offset / kRegStride);
  if (index >= kRegCount) return support::out_of_range("register index");
  const std::uint64_t value = regs_.read(static_cast<Reg>(index));
  std::memcpy(out.data(), &value, sizeof value);
  return support::Status::ok();
}

support::Status Accelerator::mmio_write(std::uint64_t offset,
                                        std::span<const std::uint8_t> in) {
  if (offset % kRegStride != 0 || in.size() != kRegStride) {
    return support::invalid_argument("context registers require aligned 64-bit IO");
  }
  const auto index = static_cast<std::uint32_t>(offset / kRegStride);
  if (index >= kRegCount) return support::out_of_range("register index");
  std::uint64_t value = 0;
  std::memcpy(&value, in.data(), sizeof value);

  const Reg reg = static_cast<Reg>(index);
  if (reg == Reg::kCommand) {
    if (value == 1) {
      if (regs_.status() == DeviceStatus::kBusy) {
        return support::failed_precondition("accelerator busy");
      }
      trigger();
    }
    return support::Status::ok();
  }
  if (reg == Reg::kStatus && regs_.status() != DeviceStatus::kBusy) {
    // Host may acknowledge DONE/ERROR by resetting to IDLE.
    regs_.write(Reg::kStatus, value);
    return support::Status::ok();
  }
  if (regs_.status() == DeviceStatus::kBusy) {
    return support::failed_precondition("context registers locked while busy");
  }
  regs_.write(reg, value);
  return support::Status::ok();
}

void Accelerator::trigger() {
  jobs_.add();
  regs_.set_status(DeviceStatus::kBusy);
  TDO_LOG(kDebug, "cim.accel") << "job triggered, opcode="
                               << regs_.read(Reg::kOpcode);
  last_timeline_ = engine_->launch(regs_);
}

support::Energy Accelerator::total_energy() const {
  return e_write_.total() + e_compute_.total() + e_mixed_.total() +
         e_digital_.total() + e_buffers_.total() + e_dma_.total();
}

AcceleratorReport Accelerator::report() const {
  AcceleratorReport rep;
  rep.jobs = jobs_.value();
  rep.gemv_ops = tile_->stats().gemv_ops;
  rep.mac8_ops = tile_->stats().mac8_ops;
  rep.weight_writes8 = tile_->stats().weight_writes8;
  rep.total_energy = total_energy();
  return rep;
}

}  // namespace tdo::cim
