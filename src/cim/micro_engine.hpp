// Micro-engine of the CIM accelerator (paper Section II-C).
//
// "The micro-engine translates the high level-parameters stored in the
// context registers into a series of circuit-level operations such as loading
// the data from shared memory to row/column buffers, configuring the mask
// values, triggering the computation on CIM tile, and writing back the
// results from the output buffers to the shared memory. Additionally, it
// manages the control flow involved in decomposing GEMM to a series of GEMVs
// and supports double buffering for all the registers in the accelerator to
// hide the data latency of the memory accesses."
//
// Timing is computed with an explicit pipeline schedule (fill / compute /
// store per GEMV, fill / program per crossbar row) and materialized on the
// system event queue as phase-completion events; the functional work happens
// eagerly so results are in shared memory when the completion event fires.
#pragma once

#include <cstdint>
#include <map>

#include "cim/cim_tile.hpp"
#include "cim/context_regs.hpp"
#include "cim/dma.hpp"
#include "pcm/energy_model.hpp"
#include "sim/event_queue.hpp"
#include "support/stats.hpp"
#include "support/status.hpp"
#include "support/units.hpp"

namespace tdo::cim {

/// Per-category energy sinks owned by the accelerator.
struct EnergySinks {
  support::EnergyAccumulator* write = nullptr;
  support::EnergyAccumulator* compute = nullptr;
  support::EnergyAccumulator* mixed_signal = nullptr;
  support::EnergyAccumulator* digital = nullptr;
  support::EnergyAccumulator* buffers = nullptr;
  support::EnergyAccumulator* dma = nullptr;
};

/// Timeline of one executed job (for traces, tests and the Fig-2d diagram).
struct JobTimeline {
  sim::Tick trigger = 0;
  sim::Tick weights_programmed = 0;
  sim::Tick done = 0;
  /// Ticks of weight-load DMA hidden under the previous job's stream phase
  /// (non-zero only for jobs chained from the accelerator work queue).
  sim::Tick overlap = 0;
  /// Activity counts of this job (tile/DMA stat deltas) — exactly what the
  /// launch charged the energy sinks with, carried so the engine's trace
  /// span can expose them for trace-driven energy attribution.
  std::uint64_t weight_writes8 = 0;
  std::uint64_t mac8_ops = 0;
  std::uint64_t gemv_ops = 0;
  std::uint64_t extra_alu_ops = 0;
  std::uint64_t buffer_byte_accesses = 0;
  std::uint64_t dma_bursts = 0;

  [[nodiscard]] support::Duration weight_phase() const {
    return sim::from_ticks(weights_programmed - trigger);
  }
  [[nodiscard]] support::Duration stream_phase() const {
    return sim::from_ticks(done - weights_programmed);
  }
  [[nodiscard]] support::Duration total() const {
    return sim::from_ticks(done - trigger);
  }
};

struct MicroEngineParams {
  /// Context-register decode + control setup before the first DMA.
  support::Duration job_setup = support::Duration::from_ns(100);
};

class MicroEngine {
 public:
  MicroEngine(MicroEngineParams params, CimTile& tile, Dma& dma,
              const pcm::CimEnergyModel& model, sim::EventQueue& events,
              EnergySinks sinks)
      : params_{params}, tile_{tile}, dma_{dma}, model_{model}, events_{events},
        sinks_{sinks} {}

  /// Executes the job in `regs`. Performs all functional memory traffic
  /// immediately, charges energy, computes the pipeline schedule, and
  /// schedules a completion event that flips kStatus to kDone (or kError).
  /// Returns the computed timeline.
  ///
  /// `prefetch_credit` is time during which the job's weight-load DMA could
  /// already run (the previous job's stream phase, when the job was sitting
  /// in the accelerator work queue with double-buffered context registers):
  /// up to min(credit, weight-DMA time) is subtracted from the weight phase.
  JobTimeline launch(ContextRegs& regs,
                     support::Duration prefetch_credit = support::Duration::zero());

  /// Advisory estimate of the weight-load DMA a queued `image` would prefetch
  /// while the current job streams (stream-level double buffering): the DMA
  /// share of its first weight phase, zero when the image disables double
  /// buffering or carries a reuse request the engine expects to validate.
  /// Side-effect free — used to reserve the prefetch's channel window on the
  /// Dma timeline at enqueue time, so stream copies cannot double-book the
  /// slot the prefetch will occupy. A wrong estimate only costs accounting
  /// precision (the launch-time credit stays authoritative).
  [[nodiscard]] support::Duration estimate_prefetch_dma(
      const ContextRegs& image) const;

  /// Advisory estimate of the stream-body DMA (vector fills, old-C reads
  /// when beta != 0, result stores; batched jobs scale by their entry count)
  /// a queued `image` will occupy on the engine channel *after* it launches.
  /// Side-effect free — used to reserve an advisory busy window at enqueue
  /// time so stream copies submitted while the job waits cannot first-fit
  /// into channel time its body traffic will claim. A wrong estimate only
  /// shifts copy placement; the launch-time reservation stays authoritative.
  [[nodiscard]] support::Duration estimate_stream_dma(
      const ContextRegs& image) const;

  /// Identity of a stationary tile programmed into one crossbar row window
  /// (for reuse detection within batched jobs, across jobs for the runtime's
  /// weight-residency cache, and for tests).
  struct ProgrammedTile {
    std::uint64_t pa = 0;
    double scale = 1.0;
    std::uint64_t rows = 0;
    std::uint64_t cols = 0;
    StationaryOperand layout = StationaryOperand::kB;
    std::uint64_t ld = 0;
  };
  /// Tile programmed at crossbar row window starting at `row0`, if any.
  /// Several tiles stay resident simultaneously in disjoint row windows.
  [[nodiscard]] const ProgrammedTile* programmed_tile(std::uint32_t row0 = 0) const {
    const auto it = programmed_.find(row0);
    return it == programmed_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] std::size_t programmed_tile_count() const {
    return programmed_.size();
  }
  /// Invalidate all reuse tracking (device reset).
  void invalidate_tile() { programmed_.clear(); }
  /// Invalidate reuse tracking for tiles overlapping rows [row0, row0+rows)
  /// (a job is about to reprogram that window).
  void invalidate_rows(std::uint32_t row0, std::uint64_t rows);

  /// 8-bit weight programs skipped thanks to stationary-tile reuse (batched
  /// shared inputs and the runtime's weight-residency cache).
  [[nodiscard]] const support::Counter& weight_writes_saved_counter() const {
    return weight_writes_saved8_;
  }
  [[nodiscard]] std::uint64_t weight_writes_saved8() const {
    return weight_writes_saved8_.value();
  }

 private:
  struct GemmJob {
    std::uint64_t m = 0, n = 0, k = 0;
    std::uint64_t pa_a = 0, pa_b = 0, pa_c = 0;
    std::uint64_t lda = 0, ldb = 0, ldc = 0;
    float alpha = 1.0f, beta = 0.0f;
    double scale_a = 1.0, scale_b = 1.0;
    StationaryOperand stationary = StationaryOperand::kB;
    bool double_buffering = true;
    bool skip_weight_load = false;
    std::uint32_t tile_row0 = 0;  ///< crossbar row window of the stationary tile
  };

  [[nodiscard]] support::StatusOr<GemmJob> decode(const ContextRegs& regs) const;

  /// Runs one GEMM; returns (weight_phase, stream_phase) durations plus the
  /// pure-DMA shares of each phase (what occupies the engine's DMA channel).
  struct PhaseTimes {
    support::Duration weights;
    support::Duration weight_dma;
    support::Duration stream;
    support::Duration stream_dma;
    std::uint64_t weight_dma_bytes = 0;
  };
  [[nodiscard]] support::StatusOr<PhaseTimes> run_gemm(const GemmJob& job);

  /// Loads the stationary operand into the crossbar.
  struct WeightPhase {
    support::Duration total;
    support::Duration dma;  // DMA share; prefetchable while the engine streams
    std::uint64_t dma_bytes = 0;
  };
  [[nodiscard]] WeightPhase load_weights(const GemmJob& job);

  /// Streams the moving operand; returns the phase duration plus its DMA
  /// share (vector fills + result stores — the channel-occupancy part).
  struct StreamPhase {
    support::Duration total;
    support::Duration dma;
  };
  [[nodiscard]] StreamPhase stream_vectors(const GemmJob& job);

  MicroEngineParams params_;
  CimTile& tile_;
  Dma& dma_;
  const pcm::CimEnergyModel& model_;
  sim::EventQueue& events_;
  EnergySinks sinks_;
  /// Resident stationary tiles, keyed by crossbar row-window start.
  std::map<std::uint32_t, ProgrammedTile> programmed_;
  support::Counter weight_writes_saved8_;
};

}  // namespace tdo::cim
