// Serving-layer request model (multi-tenant front end over the BLAS facade).
//
// TDO-CIM's runtime decides *where* one call runs; the ROADMAP's north star
// is serving heavy traffic from many users, which additionally needs a layer
// that decides *when* and *with whom* a call runs. A Request is one tenant's
// inference-style BLAS call (sgemm/sgemv) tagged with a deadline class; the
// scheduler (serve/scheduler.hpp) queues it per tenant, coalesces same-shape
// same-weight requests into batched launches, and emits a Completion record
// carrying the exact arrival/dispatch/done timeline for tail-latency
// accounting.
#pragma once

#include <cstdint>

#include "cim/context_regs.hpp"
#include "sim/system.hpp"
#include "support/units.hpp"

namespace tdo::serve {

enum class Op : std::uint8_t { kSgemm, kSgemv };

/// Latency expectation attached by the tenant. Classes are strict dispatch
/// priorities (interactive preempts standard preempts batch at batch-close
/// granularity — a running launch is never revoked).
enum class DeadlineClass : std::uint8_t {
  kInteractive = 0,
  kStandard = 1,
  kBatch = 2,
};
inline constexpr std::size_t kDeadlineClasses = 3;

[[nodiscard]] inline const char* to_string(DeadlineClass c) {
  switch (c) {
    case DeadlineClass::kInteractive: return "interactive";
    case DeadlineClass::kStandard: return "standard";
    case DeadlineClass::kBatch: return "batch";
  }
  return "?";
}

/// One asynchronous serving request. For kSgemm: c = alpha*a*b + beta*c with
/// row-major m x k / k x n / m x n operands; the stationary operand (the
/// "weights" in a serving workload) is `b` under StationaryOperand::kB.
/// For kSgemv: y(=c) = alpha*A(=a)*x(=b) + beta*y, shapes via m/n.
struct Request {
  std::uint64_t id = 0;  ///< assigned by Scheduler::submit
  std::uint32_t tenant = 0;
  DeadlineClass deadline = DeadlineClass::kStandard;
  Op op = Op::kSgemm;

  std::uint64_t m = 0, n = 0, k = 0;
  float alpha = 1.0f, beta = 0.0f;
  sim::VirtAddr a = 0;  ///< activations (kSgemv: the matrix A)
  sim::VirtAddr b = 0;  ///< weights / stationary operand (kSgemv: the vector x)
  sim::VirtAddr c = 0;  ///< output
  std::uint64_t lda = 0, ldb = 0, ldc = 0;
  bool transpose = false;  ///< kSgemv only
  cim::StationaryOperand stationary = cim::StationaryOperand::kB;
  /// The stationary operand is reused across requests: consult the
  /// weight-residency cache and route by affinity.
  bool cacheable = true;

  /// Tenant share weight for the scheduler's deficit round robin: a weight-w
  /// tenant receives w requests of service per DRR round against a weight-1
  /// competitor in the same deadline class. 0 means "keep the tenant's
  /// current weight" (default 1); a positive value re-registers the tenant's
  /// weight on enqueue, so front ends can carry the share contract on the
  /// request itself instead of a separate registration call.
  std::uint32_t weight = 0;

  /// Arrival time; zero means "stamp with now at submit". An explicit value
  /// in the past models open-loop load generation (the request queued at the
  /// front end before the scheduler could look at it).
  support::Duration arrival;

  /// When the scheduler pulled this request out of its tenant queue (stamped
  /// by pop_next_request; the first checkpoint of the trace span's
  /// critical-path walk — arrival..pulled is pure queue wait).
  support::Duration pulled;

  /// MAC count of the call (the admission controller's intensity numerator).
  [[nodiscard]] std::uint64_t macs() const {
    return op == Op::kSgemm ? m * n * k : m * n;
  }
  /// Crossbar weight writes a cache-miss dispatch pays (intensity
  /// denominator): the stationary tile's cells.
  [[nodiscard]] std::uint64_t cim_writes() const {
    return op == Op::kSgemm ? k * n : m * n;
  }
};

/// Timeline of one finished request.
///
/// "Finished" includes requests the scheduler dropped: overload shedding and
/// pump-time rejection surface a completion-style record too (outcome kShed /
/// kRejected, done stamped at the drop tick, device -1), so closed-loop
/// clients waiting on an id always unblock. Dropped records never enter the
/// latency histograms or the completed counter.
struct Completion {
  enum class Outcome : std::uint8_t {
    kDone = 0,      ///< ran to completion; latency fields are meaningful
    kShed = 1,      ///< dropped by overload shedding before dispatch
    kRejected = 2,  ///< dropped at pump time (per-tenant bound on ring path)
  };

  std::uint64_t id = 0;
  std::uint32_t tenant = 0;
  DeadlineClass deadline = DeadlineClass::kStandard;
  Outcome outcome = Outcome::kDone;
  support::Duration arrival;
  support::Duration dispatch;  ///< when the scheduler launched its batch
  support::Duration done;
  int device = -1;       ///< accelerator that ran it; -1 for host/mixed
  bool offloaded = false;  ///< at least one device job (vs full CPU fallback)
  std::uint32_t batch_size = 1;  ///< requests coalesced into its launch

  [[nodiscard]] support::Duration latency() const { return done - arrival; }
  [[nodiscard]] support::Duration queue_delay() const {
    return dispatch - arrival;
  }
};

}  // namespace tdo::serve
