#include "serve/batcher.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace tdo::serve {

void Batcher::add(const Request& request, support::Duration now) {
  const BatchKey key = BatchKey::of(request);
  for (auto it = open_.begin(); it != open_.end(); ++it) {
    if (!(it->key == key)) continue;
    // A strictly-higher-priority join (e.g. interactive into a batch-class
    // batch) promotes the whole batch; if the batch is already at least
    // half-full, split it off now — promotion alone still leaves the
    // newcomer waiting out the old members' age clock (up to max_wait when
    // the batch just opened), and half of max_batch is where the remaining
    // amortization no longer buys the wait. Under-half batches keep the
    // join-and-promote path: a small batch dispatches soon anyway, and
    // splitting it would forfeit most of the coalescing.
    const bool preempts = request.deadline < it->deadline;
    it->requests.push_back(request);
    it->deadline = std::min(it->deadline, request.deadline);
    if (it->requests.size() >= params_.max_batch) {
      if (obs::enabled()) {
        obs::Tracer::instance().instant(
            "batcher", "close_size", now.ticks(),
            {{"size", static_cast<std::uint64_t>(it->requests.size())}});
      }
      ready_.push_back(std::move(*it));
      open_.erase(it);
    } else if (preempts && it->requests.size() * 2 >= params_.max_batch) {
      if (obs::enabled()) {
        obs::Tracer::instance().instant(
            "batcher", "close_split", now.ticks(),
            {{"size", static_cast<std::uint64_t>(it->requests.size())},
             {"class", static_cast<std::uint64_t>(it->deadline)}});
      }
      ready_.push_back(std::move(*it));
      open_.erase(it);
    }
    return;
  }
  Batch batch;
  batch.key = key;
  batch.requests.push_back(request);
  batch.deadline = request.deadline;
  batch.oldest_enqueue = now;
  if (batch.requests.size() >= params_.max_batch) {
    if (obs::enabled()) {
      obs::Tracer::instance().instant("batcher", "close_size", now.ticks(),
                                      {{"size", 1}});
    }
    ready_.push_back(std::move(batch));
  } else {
    if (obs::enabled()) {
      obs::Tracer::instance().instant("batcher", "open", now.ticks());
    }
    open_.push_back(std::move(batch));
  }
}

std::vector<Batch> Batcher::take_ready(support::Duration now) {
  for (auto it = open_.begin(); it != open_.end();) {
    if (now - it->oldest_enqueue >= params_.max_wait) {
      if (obs::enabled()) {
        obs::Tracer::instance().instant(
            "batcher", "close_age", now.ticks(),
            {{"size", static_cast<std::uint64_t>(it->requests.size())},
             {"age", (now - it->oldest_enqueue).ticks()}});
      }
      ready_.push_back(std::move(*it));
      it = open_.erase(it);
    } else {
      ++it;
    }
  }
  std::stable_sort(ready_.begin(), ready_.end(), dispatch_order);
  std::vector<Batch> out = std::move(ready_);
  ready_.clear();
  return out;
}

std::vector<Batch> Batcher::take_all(support::Duration now) {
  for (Batch& batch : open_) {
    if (obs::enabled()) {
      obs::Tracer::instance().instant(
          "batcher", "close_flush", now.ticks(),
          {{"size", static_cast<std::uint64_t>(batch.requests.size())}});
    }
    ready_.push_back(std::move(batch));
  }
  open_.clear();
  return take_ready(now);
}

std::optional<support::Duration> Batcher::next_close_time() const {
  if (!ready_.empty()) {
    // A ready batch dispatches at the caller's next pump; no waiting needed.
    return support::Duration::zero();
  }
  std::optional<support::Duration> earliest;
  for (const Batch& batch : open_) {
    const support::Duration close = batch.oldest_enqueue + params_.max_wait;
    if (!earliest || close < *earliest) earliest = close;
  }
  return earliest;
}

std::size_t Batcher::pending() const {
  std::size_t total = 0;
  for (const Batch& batch : open_) total += batch.requests.size();
  for (const Batch& batch : ready_) total += batch.requests.size();
  return total;
}

}  // namespace tdo::serve
