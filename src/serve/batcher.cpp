#include "serve/batcher.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace tdo::serve {

void Batcher::add(const Request& request, support::Duration now) {
  const BatchKey key = BatchKey::of(request);
  for (auto it = open_.begin(); it != open_.end(); ++it) {
    if (!(it->key == key)) continue;
    it->requests.push_back(request);
    it->deadline = std::min(it->deadline, request.deadline);
    if (it->requests.size() >= params_.max_batch) {
      if (obs::enabled()) {
        obs::Tracer::instance().instant(
            "batcher", "close_size", now.ticks(),
            {{"size", static_cast<std::uint64_t>(it->requests.size())}});
      }
      ready_.push_back(std::move(*it));
      open_.erase(it);
    }
    return;
  }
  Batch batch;
  batch.key = key;
  batch.requests.push_back(request);
  batch.deadline = request.deadline;
  batch.oldest_enqueue = now;
  if (batch.requests.size() >= params_.max_batch) {
    if (obs::enabled()) {
      obs::Tracer::instance().instant("batcher", "close_size", now.ticks(),
                                      {{"size", 1}});
    }
    ready_.push_back(std::move(batch));
  } else {
    if (obs::enabled()) {
      obs::Tracer::instance().instant("batcher", "open", now.ticks());
    }
    open_.push_back(std::move(batch));
  }
}

std::vector<Batch> Batcher::take_ready(support::Duration now) {
  for (auto it = open_.begin(); it != open_.end();) {
    if (now - it->oldest_enqueue >= params_.max_wait) {
      if (obs::enabled()) {
        obs::Tracer::instance().instant(
            "batcher", "close_age", now.ticks(),
            {{"size", static_cast<std::uint64_t>(it->requests.size())},
             {"age", (now - it->oldest_enqueue).ticks()}});
      }
      ready_.push_back(std::move(*it));
      it = open_.erase(it);
    } else {
      ++it;
    }
  }
  std::stable_sort(ready_.begin(), ready_.end(), dispatch_order);
  std::vector<Batch> out = std::move(ready_);
  ready_.clear();
  return out;
}

std::vector<Batch> Batcher::take_all(support::Duration now) {
  for (Batch& batch : open_) {
    if (obs::enabled()) {
      obs::Tracer::instance().instant(
          "batcher", "close_flush", now.ticks(),
          {{"size", static_cast<std::uint64_t>(batch.requests.size())}});
    }
    ready_.push_back(std::move(batch));
  }
  open_.clear();
  return take_ready(now);
}

std::optional<support::Duration> Batcher::next_close_time() const {
  if (!ready_.empty()) {
    // A ready batch dispatches at the caller's next pump; no waiting needed.
    return support::Duration::zero();
  }
  std::optional<support::Duration> earliest;
  for (const Batch& batch : open_) {
    const support::Duration close = batch.oldest_enqueue + params_.max_wait;
    if (!earliest || close < *earliest) earliest = close;
  }
  return earliest;
}

std::size_t Batcher::pending() const {
  std::size_t total = 0;
  for (const Batch& batch : open_) total += batch.requests.size();
  for (const Batch& batch : ready_) total += batch.requests.size();
  return total;
}

}  // namespace tdo::serve
