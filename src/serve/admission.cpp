#include "serve/admission.hpp"

#include <algorithm>
#include <cmath>

#include "obs/trace.hpp"

namespace tdo::serve {

AdmissionController::AdmissionController(AdmissionParams params,
                                         double initial_min_macs_per_write,
                                         std::uint64_t initial_min_async_bytes)
    : params_{params},
      knob_macs_{initial_min_macs_per_write},
      knob_async_{initial_min_async_bytes} {
  if (params_.ladder_rungs < 1) params_.ladder_rungs = 1;
  if (params_.ladder_step <= 1.0) params_.ladder_step = 2.0;
  if (params_.ladder_base <= 0.0) params_.ladder_base = 1.0;
  if (params_.split_rungs < 1) params_.split_rungs = 1;
}

double AdmissionController::rung(int index) const {
  index = std::clamp(index, 0, params_.ladder_rungs - 1);
  return params_.ladder_base * std::pow(params_.ladder_step, index);
}

int AdmissionController::rung_index(double value) const {
  if (value <= params_.ladder_base) return 0;
  // Nearest rung in log space.
  const double steps =
      std::log(value / params_.ladder_base) / std::log(params_.ladder_step);
  const int index = static_cast<int>(std::lround(steps));
  return std::clamp(index, 0, params_.ladder_rungs - 1);
}

double AdmissionController::split_rung(int index) const {
  if (index <= 0) return 0.0;
  index = std::min(index, params_.split_rungs);
  return 0.5 * std::pow(2.0, index - params_.split_rungs);
}

int AdmissionController::split_rung_index(double fraction) const {
  if (fraction <= 0.0) return 0;
  // Nearest rung in log space among i >= 1; fractions more than half a
  // rung below the smallest one mean "no split".
  const double steps =
      std::log2(fraction / 0.5) + static_cast<double>(params_.split_rungs);
  const int index = static_cast<int>(std::lround(steps));
  return std::clamp(index, 0, params_.split_rungs);
}

AdmitPath AdmissionController::admit(const SiteKey& key, bool host_probe_ok) {
  if (!params_.adaptive) return AdmitPath::kAuto;
  Site& site = sites_[key];
  site.dispatches += 1;
  const auto probe = [&](bool host) {
    if (host && !host_probe_ok) return AdmitPath::kAuto;  // defer, don't count
    (host ? probes_host_ : probes_device_) += 1;
    return host ? AdmitPath::kForceHost : AdmitPath::kForceDevice;
  };
  // Bootstrap: measure each path once before trusting the threshold.
  if (site.dev_obs == 0) return probe(false);
  if (site.host_obs == 0) return probe(true);
  // Steady state: periodically refresh whichever EWMA is staler.
  if (params_.probe_period != 0 &&
      site.dispatches % params_.probe_period == 0) {
    return probe(site.host_obs <= site.dev_obs);
  }
  return AdmitPath::kAuto;
}

void AdmissionController::observe(const SiteKey& key, bool offloaded,
                                  support::Duration latency,
                                  std::uint64_t macs,
                                  std::uint64_t cim_writes) {
  if (!params_.adaptive || macs == 0) return;
  if (offloaded && cim_writes == 0) return;  // hit path: no programming paid
  Site& site = sites_[key];
  site.intensity = cim_writes == 0
                       ? site.intensity
                       : static_cast<double>(macs) /
                             static_cast<double>(cim_writes);
  const double ps_per_mac =
      latency.picoseconds() / static_cast<double>(macs);
  double& ewma = offloaded ? site.dev_ps_per_mac : site.host_ps_per_mac;
  std::uint64_t& obs = offloaded ? site.dev_obs : site.host_obs;
  ewma = obs == 0 ? ps_per_mac
                  : (1.0 - params_.ewma_alpha) * ewma +
                        params_.ewma_alpha * ps_per_mac;
  obs += 1;
  observations_ += 1;
  retune_macs();
  retune_split();
}

double AdmissionController::ideal_split(const Site& site) const {
  if (site.dev_obs == 0 || site.host_obs == 0 || site.dev_ps_per_mac <= 0.0 ||
      site.host_ps_per_mac <= 0.0) {
    return -1.0;
  }
  // Both stripes finish together when rows are shared inversely to each
  // path's per-MAC latency: host share f* = dev / (dev + host).
  return site.dev_ps_per_mac / (site.dev_ps_per_mac + site.host_ps_per_mac);
}

double AdmissionController::split_fraction_for(const SiteKey& key) const {
  const auto it = sites_.find(key);
  if (it == sites_.end()) return knob_split_;
  const double ideal = ideal_split(it->second);
  if (ideal < 0.0) return knob_split_;
  return split_rung(split_rung_index(ideal));
}

void AdmissionController::retune_split() {
  if (!params_.tune_split) return;
  // The global knob tracks the largest fully-observed site: only jobs above
  // SplitConfig::min_macs split at all, so small sites must not drag the
  // fraction toward their (overhead-dominated) host latencies.
  const Site* best = nullptr;
  std::uint64_t best_macs = 0;
  for (const auto& [key, site] : sites_) {
    if (ideal_split(site) < 0.0) continue;
    const std::uint64_t macs = key.m * key.n * key.k;
    if (best == nullptr || macs > best_macs) {
      best = &site;
      best_macs = macs;
    }
  }
  if (best == nullptr) return;
  const double target = split_rung(split_rung_index(ideal_split(*best)));
  if (target != knob_split_) {
    knob_split_ = target;
    retunes_ += 1;
    if (obs::enabled()) {
      obs::Tracer::instance().instant(
          "admission", "retune_split", obs::Tracer::instance().last_tick(),
          {{"rung_permille",
            static_cast<std::uint64_t>(knob_split_ * 1000.0)}});
    }
  }
}

void AdmissionController::retune_macs() {
  // The knee: every site where the host EWMA beats the device EWMA should
  // fall below the threshold, every site where the device wins should clear
  // it. Intensity is monotone in practice (more MACs amortize the same
  // programming cost), so the smallest ladder rung above the best
  // host-winning intensity separates the two sets.
  double losing_max = -1.0;  // highest intensity the host wins
  bool any = false;
  for (const auto& [key, site] : sites_) {
    if (site.dev_obs == 0 || site.host_obs == 0 || site.intensity <= 0.0) {
      continue;
    }
    any = true;
    if (site.host_ps_per_mac < site.dev_ps_per_mac) {
      losing_max = std::max(losing_max, site.intensity);
    }
  }
  if (!any) return;
  double target = 0.0;  // no host-winning site: offload everything
  if (losing_max > 0.0) {
    target = rung(params_.ladder_rungs - 1);
    for (int i = 0; i < params_.ladder_rungs; ++i) {
      if (rung(i) > losing_max) {
        target = rung(i);
        break;
      }
    }
  }
  if (target != knob_macs_) {
    knob_macs_ = target;
    retunes_ += 1;
    if (obs::enabled()) {
      obs::Tracer::instance().instant(
          "admission", "retune_macs", obs::Tracer::instance().last_tick(),
          {{"knob", static_cast<std::uint64_t>(knob_macs_)}});
    }
  }
}

void AdmissionController::observe_copy(std::uint64_t bytes, bool host_path,
                                       support::Duration host_cost) {
  if (!params_.adaptive || bytes == 0) return;
  if (host_path) {
    const double ps_per_byte =
        host_cost.picoseconds() / static_cast<double>(bytes);
    host_ps_per_byte_ = host_copy_obs_ == 0
                            ? ps_per_byte
                            : (1.0 - params_.ewma_alpha) * host_ps_per_byte_ +
                                  params_.ewma_alpha * ps_per_byte;
    host_copy_obs_ += 1;
  } else {
    enqueue_overhead_ps_ =
        async_copy_obs_ == 0
            ? host_cost.picoseconds()
            : (1.0 - params_.ewma_alpha) * enqueue_overhead_ps_ +
                  params_.ewma_alpha * host_cost.picoseconds();
    async_copy_obs_ += 1;
  }
  if (host_copy_obs_ == 0 || async_copy_obs_ == 0 ||
      host_ps_per_byte_ <= 0.0) {
    return;
  }
  // Break-even size: below it the host memcpy finishes before the enqueue
  // round trip would; snap to the next power of two for stability.
  const double break_even = enqueue_overhead_ps_ / host_ps_per_byte_;
  std::uint64_t snapped = params_.min_async_floor;
  while (snapped < break_even && snapped < params_.min_async_ceiling) {
    snapped <<= 1;
  }
  snapped = std::clamp(snapped, params_.min_async_floor,
                       params_.min_async_ceiling);
  if (snapped != knob_async_) {
    knob_async_ = snapped;
    retunes_ += 1;
    if (obs::enabled()) {
      obs::Tracer::instance().instant(
          "admission", "retune_async", obs::Tracer::instance().last_tick(),
          {{"knob", knob_async_}});
    }
  }
}

double AdmissionController::device_ps_per_mac() const {
  double weighted = 0.0;
  double weight = 0.0;
  for (const auto& [key, site] : sites_) {
    if (site.dev_obs == 0 || site.dev_ps_per_mac <= 0.0) continue;
    // Weight by dispatch traffic so the estimate tracks the live mix; a
    // site observed but never re-dispatched still contributes its dev_obs.
    const double w =
        static_cast<double>(std::max(site.dispatches, site.dev_obs));
    weighted += site.dev_ps_per_mac * w;
    weight += w;
  }
  return weight > 0.0 ? weighted / weight : 0.0;
}

AdmissionReport AdmissionController::report() const {
  AdmissionReport rep;
  rep.sites = sites_.size();
  rep.observations = observations_;
  rep.probes_host = probes_host_;
  rep.probes_device = probes_device_;
  rep.retunes = retunes_;
  rep.min_macs_per_write = knob_macs_;
  rep.min_async_bytes = knob_async_;
  rep.split_fraction = knob_split_;
  return rep;
}

}  // namespace tdo::serve
