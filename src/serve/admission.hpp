// DTO-style adaptive offload admission.
//
// The paper (and Intel's DSA Transparent Offload library it cites) gates
// offload on a *static* intensity threshold: DTO_MIN_BYTES there,
// `StreamParams::min_macs_per_write` and `XferParams::min_async_bytes`
// here. Static knobs are wrong twice in a serving system: the right value
// depends on the live host/device speed ratio (which shifts with residency
// hit rates and queue depths), and nobody re-runs the sweep in production.
//
// This controller re-derives both knobs continuously from observation:
//   * per call-site (shape) EWMAs of observed per-MAC latency on the device
//     path and on the host-fallback path, refreshed by occasional forced
//     probes of whichever path has gone stale;
//   * `min_macs_per_write` snaps to the smallest rung of a geometric ladder
//     that routes every host-winning site to the host (the knee between the
//     highest-intensity site the host wins and the lowest the device wins);
//   * `min_async_bytes` is the measured break-even transfer size: async
//     enqueue overhead divided by the host copy's observed cost per byte.
//
// The ladder quantization is deliberate: it makes "converged" checkable —
// the adaptive threshold must land within one rung of the best static value
// an offline sweep finds on the same load (bench/serve_loop.cpp enforces
// exactly that).
#pragma once

#include <cstdint>
#include <map>

#include "support/units.hpp"

namespace tdo::serve {

/// Call-site identity for admission statistics: the kernel shape plus the
/// memory tier the launch is expected to land on. (Tenants sharing a shape
/// share a site — the offload tradeoff is a property of the kernel, not of
/// who submitted it. The tier splits the EWMAs because the same shape has a
/// different device-path cost behind a far CXL-style link: the offload
/// break-even knee sits higher there, and folding both tiers into one site
/// would average the knees away.)
struct SiteKey {
  std::uint64_t m = 0, n = 0, k = 0;
  int tier = 0;  ///< topo::Topology tier of the anticipated placement
  auto operator<=>(const SiteKey&) const = default;
};

/// Dispatch-path directive for one launch.
enum class AdmitPath : std::uint8_t {
  kAuto,         ///< let the stream's threshold decide (normal operation)
  kForceDevice,  ///< probe: refresh the device-latency EWMA
  kForceHost,    ///< probe: refresh the host-latency EWMA
};

struct AdmissionParams {
  /// Master switch; off keeps the configured static knobs untouched.
  bool adaptive = true;
  /// EWMA smoothing factor for latency observations.
  double ewma_alpha = 0.3;
  /// Every `probe_period`-th dispatch of a site is forced down whichever
  /// path has fewer observations (0 disables steady-state probing; the
  /// bootstrap probes — first dispatch per path — always happen).
  std::uint64_t probe_period = 16;
  /// Threshold ladder: rungs ladder_base * ladder_step^i, i in [0, rungs).
  double ladder_base = 1.0;
  double ladder_step = 2.0;
  int ladder_rungs = 16;
  /// min_async_bytes clamp range (the derived break-even can be noisy early).
  std::uint64_t min_async_floor = 256;
  std::uint64_t min_async_ceiling = 1ull << 20;
  /// Pseudo-async split-fraction ladder: rung 0 is "no split", rung i in
  /// [1, split_rungs] is 0.5 * 2^(i - split_rungs) — geometric down from
  /// one half, because the optimum dev/(dev+host) share is often a percent
  /// or less when the device is two orders of magnitude faster, and a
  /// linear ladder would quantize every such optimum to zero.
  int split_rungs = 10;
  /// Master switch for retuning the split fraction from the EWMAs.
  bool tune_split = true;
};

struct AdmissionReport {
  std::uint64_t sites = 0;
  std::uint64_t observations = 0;
  std::uint64_t probes_host = 0;
  std::uint64_t probes_device = 0;
  std::uint64_t retunes = 0;  ///< knob changes (any knob)
  double min_macs_per_write = 0.0;
  std::uint64_t min_async_bytes = 0;
  double split_fraction = 0.0;
};

class AdmissionController {
 public:
  AdmissionController(AdmissionParams params, double initial_min_macs_per_write,
                      std::uint64_t initial_min_async_bytes);

  [[nodiscard]] bool adaptive() const { return params_.adaptive; }

  /// Called once per launch of `site`; returns the probe directive.
  /// `host_probe_ok` is false for launches the host path cannot (or should
  /// not) carry — e.g. a large coalesced batch: a due host probe is deferred
  /// to a later singleton launch instead of burning the whole batch.
  [[nodiscard]] AdmitPath admit(const SiteKey& site, bool host_probe_ok = true);

  /// Feeds one observed launch: which path ran, the end-to-end latency, and
  /// the cost-model inputs. Hit-path device launches (cim_writes == 0) keep
  /// the EWMAs untouched — the intensity rule only ever gates cache-miss
  /// dispatches, so mixing hit latencies in would bias the knee. Retunes
  /// min_macs_per_write.
  void observe(const SiteKey& site, bool offloaded, support::Duration latency,
               std::uint64_t macs, std::uint64_t cim_writes);

  /// Feeds one host<->device transfer: size, whether it took the host
  /// memcpy path, and the host-side cost the caller measured around the
  /// call (for async copies that cost is the enqueue overhead — the copy
  /// itself rides the stream). Retunes min_async_bytes to the break-even.
  void observe_copy(std::uint64_t bytes, bool host_path,
                    support::Duration host_cost);

  [[nodiscard]] double min_macs_per_write() const { return knob_macs_; }
  [[nodiscard]] std::uint64_t min_async_bytes() const { return knob_async_; }

  /// Current pseudo-async split fraction (host-side share of a split job),
  /// retuned from the device/host EWMAs: when both paths of a site are
  /// observed, the join is earliest at f* = dev/(dev + host) — the row
  /// share that makes both stripes finish together — snapped to the split
  /// ladder. The global knob follows the largest observed site (only
  /// large jobs split; see SplitConfig::min_macs).
  [[nodiscard]] double split_fraction() const { return knob_split_; }
  /// Site-specific split target; falls back to the global knob for sites
  /// missing an EWMA on either path.
  [[nodiscard]] double split_fraction_for(const SiteKey& site) const;

  /// Fleet-level device-path cost estimate: the dispatch-weighted mean of
  /// the per-site device EWMAs (picoseconds per MAC), over sites with at
  /// least one device observation. This is the denominator of the overload
  /// shedder's capacity estimate — device_count / device_ps_per_mac() is the
  /// sustainable aggregate MAC rate. 0 when nothing has been observed yet
  /// (the shedder must stay open until the EWMAs warm up). The EWMAs measure
  /// dispatch-to-done, so queueing inside the stream inflates the estimate
  /// under load — a conservative bias the shed headroom absorbs.
  [[nodiscard]] double device_ps_per_mac() const;

  /// Ladder rung value / index-of-nearest-rung (shared with the bench's
  /// static sweep so "within one step" is well defined).
  [[nodiscard]] double rung(int index) const;
  [[nodiscard]] int rung_index(double value) const;

  /// Split-fraction ladder: split_rung(0) == 0 (no split); higher rungs
  /// double up to one half. Nearest-in-log-space index, like rung_index.
  [[nodiscard]] double split_rung(int index) const;
  [[nodiscard]] int split_rung_index(double fraction) const;

  [[nodiscard]] AdmissionReport report() const;

 private:
  struct Site {
    double intensity = 0.0;  ///< macs / cim_writes of a miss dispatch
    double dev_ps_per_mac = 0.0;
    double host_ps_per_mac = 0.0;
    std::uint64_t dev_obs = 0;
    std::uint64_t host_obs = 0;
    std::uint64_t dispatches = 0;
  };

  void retune_macs();
  void retune_split();
  /// Ideal (unquantized) host share for one site; < 0 when unobservable.
  [[nodiscard]] double ideal_split(const Site& site) const;

  AdmissionParams params_;
  double knob_macs_;
  std::uint64_t knob_async_;
  double knob_split_ = 0.0;
  std::map<SiteKey, Site> sites_;
  double host_ps_per_byte_ = 0.0;  ///< EWMA over host-path copies
  std::uint64_t host_copy_obs_ = 0;
  double enqueue_overhead_ps_ = 0.0;  ///< EWMA over async-path submissions
  std::uint64_t async_copy_obs_ = 0;
  std::uint64_t observations_ = 0;
  std::uint64_t probes_host_ = 0;
  std::uint64_t probes_device_ = 0;
  std::uint64_t retunes_ = 0;
};

}  // namespace tdo::serve
