#include "serve/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/log.hpp"

namespace tdo::serve {

namespace {
/// Threshold that forces every fallback-eligible job to the host (probe).
constexpr double kForceHostThreshold = std::numeric_limits<double>::max();
}  // namespace

Scheduler::Scheduler(SchedulerParams params, rt::CimRuntime& runtime)
    : params_{std::move(params)},
      runtime_{runtime},
      batcher_{params_.batcher},
      admission_{params_.admission,
                 runtime.config().stream.min_macs_per_write,
                 runtime.config().xfer.min_async_bytes},
      submit_ring_{params_.ring_capacity} {
  runtime_.set_placement(params_.placement);
  auto& registry = runtime_.system().stats();
  const std::string& p = params_.name;
  registry.register_counter(p + ".requests", &submitted_);
  registry.register_counter(p + ".rejected", &rejected_);
  registry.register_counter(p + ".shed", &shed_);
  registry.register_counter(p + ".completed", &completed_);
  registry.register_counter(p + ".launches", &launches_);
  registry.register_counter(p + ".batched_launches", &batched_launches_);
  registry.register_counter(p + ".coalesced_requests", &coalesced_requests_);
  registry.register_counter(p + ".affinity_routed", &affinity_routed_);
  registry.register_counter(p + ".queue_routed", &queue_routed_);
  registry.register_counter(p + ".far_routed", &far_routed_);
  registry.register_counter(p + ".host_launches", &host_launches_);
  for (std::size_t c = 0; c < kDeadlineClasses; ++c) {
    registry.register_counter(
        p + ".shed." + to_string(static_cast<DeadlineClass>(c)),
        &shed_by_class_[c]);
    registry.register_histogram(
        p + ".latency." + to_string(static_cast<DeadlineClass>(c)),
        &class_latency_[c]);
  }

  auto& driver = runtime_.driver();
  // One completion log per accelerator plus one for the host worker pool:
  // the pool is a pseudo-device target (pool_device_id()) whose stripe
  // completions harvest through the same observer machinery.
  logs_.resize(driver.device_count() + 1);
  for (std::size_t d = 0; d < driver.device_count(); ++d) {
    driver.device(d).set_completion_observer(
        [this, d](std::uint64_t completed, sim::Tick when) {
          logs_[d].emplace_back(completed, when);
        },
        this);
  }
  const std::size_t pool_log = driver.device_count();
  runtime_.host_pool().set_completion_observer(
      [this, pool_log](std::uint64_t completed, sim::Tick when) {
        logs_[pool_log].emplace_back(completed, when);
      },
      this);
}

Scheduler::~Scheduler() {
  auto& driver = runtime_.driver();
  for (std::size_t d = 0; d < driver.device_count(); ++d) {
    driver.device(d).clear_completion_observer(this);
  }
  // Owner-tagged like the per-device observers above: a second scheduler's
  // registration must survive this one's teardown.
  runtime_.host_pool().clear_completion_observer(this);
  // The scheduler may die before the system it registered counters into.
  auto& registry = runtime_.system().stats();
  registry.unregister_counter(&submitted_);
  registry.unregister_counter(&rejected_);
  for (const support::Counter* counter :
       {&shed_, &completed_, &launches_, &batched_launches_,
        &coalesced_requests_, &affinity_routed_, &queue_routed_, &far_routed_,
        &host_launches_}) {
    registry.unregister_counter(counter);
  }
  for (const auto& counter : shed_by_class_) {
    registry.unregister_counter(&counter);
  }
  for (const auto& histogram : class_latency_) {
    registry.unregister_histogram(&histogram);
  }
}

support::Duration Scheduler::now() const {
  return runtime_.system().global_time();
}

int Scheduler::pool_device_id() const {
  return static_cast<int>(runtime_.driver().device_count());
}

support::StatusOr<std::uint64_t> Scheduler::submit(Request request) {
  auto [it, inserted] = tenants_.try_emplace(request.tenant);
  TenantState& state = it->second;
  if (state.queued >= params_.max_queue_per_tenant) {
    rejected_.add();
    if (inserted) note_idle_if(it->first, state);  // only possible at bound 0
    return support::resource_exhausted("tenant queue full");
  }
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  if (request.arrival == support::Duration::zero()) request.arrival = now();
  note_arrival(request);
  const std::uint64_t id = request.id;
  enqueue(it->first, state, std::move(request));
  submitted_.add();
  return id;
}

void Scheduler::set_tenant_weight(std::uint32_t tenant, std::uint32_t weight) {
  auto [it, inserted] = tenants_.try_emplace(tenant);
  it->second.weight = std::max<std::uint32_t>(1, weight);
  // A registered-but-idle tenant still ages out (taking the registration
  // with it); arming the clock here keeps pre-registration from pinning
  // state for tenants that never send traffic.
  if (inserted) note_idle_if(tenant, it->second);
}

void Scheduler::enqueue(std::uint32_t tenant, TenantState& state,
                        Request&& request) {
  if (request.weight > 0) {
    state.weight = std::max<std::uint32_t>(1, request.weight);
  }
  const auto c = static_cast<std::size_t>(request.deadline);
  state.queues[c].push_back(std::move(request));
  state.queued += 1;
  queued_ += 1;
  if (!state.active[c]) {
    state.active[c] = true;
    state.deficit[c] = 0;  // fresh turn when it reaches the head
    active_[c].push_back(tenant);
  }
}

void Scheduler::drop_request(Request&& request, Completion::Outcome outcome) {
  Completion completion;
  completion.id = request.id;
  completion.tenant = request.tenant;
  completion.deadline = request.deadline;
  completion.outcome = outcome;
  completion.arrival = request.arrival;
  completion.dispatch = now();
  completion.done = now();
  completion.device = -1;
  completions_.push_back(completion);
}

void Scheduler::note_arrival(const Request& request) {
  if (!params_.shed.enabled) return;
  arrival_macs_window_ +=
      static_cast<double>(std::max<std::uint64_t>(1, request.macs()));
}

void Scheduler::note_idle_if(std::uint32_t tenant, TenantState& state) {
  if (params_.tenant_idle_timeout == support::Duration::zero()) return;
  if (state.queued != 0 || state.inflight != 0) return;
  state.idle_since = now().ticks();
  if (!state.idle_pending) {
    state.idle_pending = true;
    idle_fifo_.emplace_back(tenant, state.idle_since);
  }
}

void Scheduler::evict_idle() {
  if (params_.tenant_idle_timeout == support::Duration::zero()) return;
  const sim::Tick timeout = params_.tenant_idle_timeout.ticks();
  const sim::Tick t = now().ticks();
  while (!idle_fifo_.empty()) {
    const auto [tenant, since] = idle_fifo_.front();
    // Push ticks are monotone: once the front is too fresh, so is the rest.
    if (since + timeout > t) break;
    idle_fifo_.pop_front();
    const auto it = tenants_.find(tenant);
    if (it == tenants_.end()) continue;
    TenantState& state = it->second;
    if (state.queued != 0 || state.inflight != 0) {
      // Went busy since; the next busy->idle transition re-arms.
      state.idle_pending = false;
      continue;
    }
    if (state.idle_since != since) {
      // Busy and idle again since this entry was queued: re-arm with the
      // newer transition tick (push order stays monotone — it's "now or
      // earlier" relative to future pushes).
      idle_fifo_.emplace_back(tenant, state.idle_since);
      continue;
    }
    // A shed-emptied queue can leave a stale active-list entry; eviction
    // would dangle it, so wait for the pop side to retire it first.
    bool listed = false;
    for (std::size_t c = 0; c < kDeadlineClasses; ++c) {
      listed = listed || state.active[c];
    }
    if (listed) {
      state.idle_pending = false;
      continue;
    }
    tenants_.erase(it);
    tenant_latency_.erase(tenant);
  }
}

std::size_t Scheduler::effective_pull_budget() const {
  if (params_.pull_budget > 0) return params_.pull_budget;
  auto& stream = runtime_.stream();
  std::size_t depth = 0;
  for (std::size_t d = 0; d < stream.device_count(); ++d) {
    depth += effective_depth(d);
  }
  const std::size_t per_launch =
      params_.batching ? std::max<std::size_t>(params_.batcher.max_batch, 1)
                       : 1;
  return std::max<std::size_t>(2 * depth * per_launch, 16);
}

support::StatusOr<std::uint64_t> Scheduler::submit_from_thread(
    Request request) {
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  if (request.arrival == support::Duration::zero() && params_.submit_cost > 0) {
    // Charge the front-end cost to this thread's shard clock: submitters on
    // different shards advance independent timelines, which is exactly the
    // N-wide submission the throughput table measures. Deliberately no read
    // of global time here — the driver thread may be advancing it.
    auto& clock =
        submit_clocks_[support::thread_shard_id() % support::kStatShards].t;
    const sim::Tick done =
        clock.fetch_add(params_.submit_cost, std::memory_order_relaxed) +
        params_.submit_cost;
    request.arrival = sim::from_ticks(done);
  }
  const std::uint64_t id = request.id;
  if (!submit_ring_.push(std::move(request))) {
    rejected_.add();
    return support::resource_exhausted("submission ring shard full");
  }
  submitted_.add();
  return id;
}

void Scheduler::sync_submit_clocks() {
  const sim::Tick t = now().ticks();
  for (auto& clock : submit_clocks_) {
    sim::Tick cur = clock.t.load(std::memory_order_relaxed);
    while (cur < t && !clock.t.compare_exchange_weak(
                          cur, t, std::memory_order_relaxed)) {
    }
  }
}

sim::Tick Scheduler::max_submit_clock() const {
  sim::Tick latest = 0;
  for (const auto& clock : submit_clocks_) {
    latest = std::max(latest, clock.t.load(std::memory_order_relaxed));
  }
  return latest;
}

void Scheduler::pump_submissions() {
  if (submit_ring_.pending() == 0) return;
  std::vector<Request> incoming = submit_ring_.drain_all();
  // Shards concatenate in shard order; restore the global arrival order
  // (ties broken by submission id) so fairness and batching see the same
  // sequence a single-threaded submitter would have produced.
  std::stable_sort(incoming.begin(), incoming.end(),
                   [](const Request& a, const Request& b) {
                     if (a.arrival.ticks() != b.arrival.ticks()) {
                       return a.arrival.ticks() < b.arrival.ticks();
                     }
                     return a.id < b.id;
                   });
  const support::Duration t = now();
  for (Request& request : incoming) {
    auto [it, inserted] = tenants_.try_emplace(request.tenant);
    TenantState& state = it->second;
    if (request.arrival == support::Duration::zero()) request.arrival = t;
    if (state.queued >= params_.max_queue_per_tenant) {
      // submit() rejects at the door; this path's submitter already parted
      // with the request (it sits in the drained ring), so enforce the same
      // per-tenant bound here and surface the rejection as a completion
      // record the client can join on. Counted in serve.rejected like the
      // front-door rejections (serve.requests already counted it at the
      // ring push, unlike the front door — the report's submitted/rejected
      // split is per-path, not a balance).
      rejected_.add();
      drop_request(std::move(request), Completion::Outcome::kRejected);
      if (inserted) note_idle_if(it->first, state);
      continue;
    }
    note_arrival(request);
    enqueue(it->first, state, std::move(request));
  }
}

std::optional<Request> Scheduler::pop_next_request() {
  if (queued_ == 0) return std::nullopt;
  // Class-major: the best class with queued work anywhere wins — per-class
  // queues, so an interactive request is visible even when the same tenant
  // queued a batch request first (the old FIFO-front scan's blind spot).
  // Within a class, weighted DRR: the head tenant of the active list serves
  // one request against its deficit (quantum = weight, unit request cost),
  // rotating to the back when the turn's credit is spent. Every iteration
  // below retires either a request or a stale list entry, so the amortized
  // cost per pulled request is O(1) no matter how many tenants exist.
  for (std::size_t c = 0; c < kDeadlineClasses; ++c) {
    auto& list = active_[c];
    while (!list.empty()) {
      const std::uint32_t tenant = list.front();
      const auto it = tenants_.find(tenant);
      if (it == tenants_.end()) {  // evicted behind a stale entry
        list.pop_front();
        continue;
      }
      TenantState& state = it->second;
      auto& queue = state.queues[c];
      if (queue.empty()) {
        // Shedding emptied the queue after activation; retire the entry.
        state.active[c] = false;
        state.deficit[c] = 0;
        list.pop_front();
        continue;
      }
      if (state.deficit[c] == 0) state.deficit[c] = state.weight;  // new turn
      Request out = queue.pop_front();
      state.deficit[c] -= 1;
      state.queued -= 1;
      state.inflight += 1;
      queued_ -= 1;
      pulled_unfinished_ += 1;
      if (queue.empty()) {
        state.active[c] = false;
        state.deficit[c] = 0;
        list.pop_front();
      } else if (state.deficit[c] == 0) {
        list.pop_front();
        list.push_back(tenant);
      }
      out.pulled = now();
      return out;
    }
  }
  return std::nullopt;
}

void Scheduler::maybe_shed() {
  if (!params_.shed.enabled) return;
  const support::Duration t = now();
  if (shed_window_start_ == support::Duration::zero()) {
    shed_window_start_ = t;
    return;
  }
  const support::Duration elapsed = t - shed_window_start_;
  if (elapsed < params_.shed.eval_window || elapsed.picoseconds() <= 0.0) {
    return;
  }
  const double rate = arrival_macs_window_ / elapsed.picoseconds();
  // Windows are irregular (one per pump past eval_window), so weight each
  // sample by the span it covers: a 20-window idle stretch nearly replaces
  // the EWMA with its long-run mean, while a barely-elapsed window moves it
  // one ewma_alpha step.
  const double spans =
      elapsed.picoseconds() / params_.shed.eval_window.picoseconds();
  const double alpha = 1.0 - std::pow(1.0 - params_.shed.ewma_alpha, spans);
  arrival_rate_ = arrival_rate_seeded_
                      ? (1.0 - alpha) * arrival_rate_ + alpha * rate
                      : rate;
  arrival_rate_seeded_ = true;
  arrival_macs_window_ = 0.0;
  shed_window_start_ = t;
  const double ps_per_mac = service_obs_ > 0
                                ? service_ps_per_mac_
                                : admission_.device_ps_per_mac();
  if (ps_per_mac <= 0.0) return;  // EWMAs not warmed up: stay open
  const double capacity =
      static_cast<double>(runtime_.stream().device_count()) / ps_per_mac;
  if (arrival_rate_ <= capacity * params_.shed.headroom) {
    shed_streak_ = 0;
    return;
  }
  // A lone over-gate window is an absorbed burst (a jittered arrival pair
  // landing in one short window reads as a 2x rate spike at half load);
  // sustained overload breaches every window, so requiring two in a row
  // costs one eval_window of reaction time.
  shed_streak_ += 1;
  if (shed_streak_ < 2) return;
  // The elapsed span's overhang: what actually arrived in the window beyond
  // what the fleet retires in the same span (the smoothed EWMA arms the
  // gate; the raw sample doses the drop, so sustained overload sheds
  // exactly its excess instead of one nominal window's worth per decision).
  shed_excess((rate - capacity) * elapsed.picoseconds());
}

std::size_t Scheduler::shed_excess(double excess_macs) {
  std::size_t dropped = 0;
  for (std::size_t c = kDeadlineClasses - 1; c >= 1 && excess_macs > 0.0;
       --c) {
    // Batch first, then standard; interactive (class 0) is never shed.
    auto& list = active_[c];
    while (excess_macs > 0.0 && !list.empty()) {
      const std::uint32_t tenant = list.front();
      const auto it = tenants_.find(tenant);
      if (it == tenants_.end()) {
        list.pop_front();
        continue;
      }
      TenantState& state = it->second;
      auto& queue = state.queues[c];
      if (queue.empty()) {
        state.active[c] = false;
        state.deficit[c] = 0;
        list.pop_front();
        continue;
      }
      // Newest request of the rotating tenant: tails carry the least sunk
      // queueing investment, and rotating spreads the cut across tenants
      // instead of zeroing whoever sits at the head.
      Request victim = queue.pop_back();
      state.queued -= 1;
      queued_ -= 1;
      excess_macs -=
          static_cast<double>(std::max<std::uint64_t>(1, victim.macs()));
      shed_.add();
      shed_by_class_[c].add();
      dropped += 1;
      drop_request(std::move(victim), Completion::Outcome::kShed);
      if (queue.empty()) {
        state.active[c] = false;
        state.deficit[c] = 0;
        list.pop_front();
        note_idle_if(tenant, state);
      } else {
        list.pop_front();
        list.push_back(tenant);
      }
    }
  }
  if (dropped > 0 && obs::enabled()) {
    obs::Tracer::instance().instant(
        "sched", "shed", now().ticks(),
        {{"dropped", static_cast<std::uint64_t>(dropped)},
         {"queued", queued_}});
  }
  return dropped;
}

support::Status Scheduler::pump() {
  // Metrics sampling rides the serving drive loop: one relaxed load when
  // off, a grid check plus (at most once per cell) a stats snapshot when on.
  obs::metrics_pump(now().ticks());
  pump_submissions();
  maybe_shed();
  evict_idle();
  harvest();
  if (obs::enabled() && queued_ > 0) {
    // Queue-depth counter track: renders as the backlog area chart above
    // the per-class request spans.
    obs::Tracer::instance().counter("sched", "queued", now().ticks(),
                                    queued_);
  }
  // Budgeted pull: stop pulling once `budget` pulled requests are still
  // unfinished. The backlog then waits in the tenant queues — where DRR
  // weights, the per-tenant bound, and shedding act — instead of draining
  // wholesale into the batcher, whose dispatch order would erase the
  // weighted shares. The outer loop re-enters when a dispatch finalized
  // synchronously (host-path launches) and thereby freed budget mid-pump;
  // every iteration either pulls or dispatches something, so it terminates.
  const std::size_t budget = effective_pull_budget();
  bool progress = true;
  while (progress) {
    progress = false;
    const support::Duration t = now();
    while (pulled_unfinished_ < budget) {
      auto request = pop_next_request();
      if (!request) break;
      progress = true;
      if (params_.batching) {
        batcher_.add(*request, t);
      } else {
        Batch single;
        single.key = BatchKey::of(*request);
        single.deadline = request->deadline;
        single.oldest_enqueue = t;
        single.requests.push_back(*request);
        TDO_RETURN_IF_ERROR(dispatch(std::move(single)));
      }
    }
    if (params_.batching) {
      // Batch under backpressure, never under idleness: waiting out max_wait
      // while every accelerator starves buys no amortization, only latency —
      // flush everything the moment the compute queues are empty.
      auto& stream = runtime_.stream();
      bool devices_idle = true;
      for (std::size_t d = 0; d < stream.device_count(); ++d) {
        devices_idle = devices_idle && stream.device_in_flight(d) == 0;
      }
      std::vector<Batch> ready =
          devices_idle ? batcher_.take_all(now()) : batcher_.take_ready(now());
      for (Batch& batch : ready) {
        pending_dispatch_.push_back(std::move(batch));
      }
      std::stable_sort(pending_dispatch_.begin(), pending_dispatch_.end(),
                       Batcher::dispatch_order);
      // Capacity-gated dispatch: launch a batch only when its target
      // accelerator has queue room — the affinity pin of the front batch may
      // point at a full device, in which case later batches bound elsewhere
      // skip ahead instead of the whole queue blocking inside the stream.
      // One pass in priority order suffices: dispatching only consumes room,
      // so a batch skipped here stays infeasible until the next pump.
      for (std::size_t i = 0; i < pending_dispatch_.size();) {
        const auto pin = placement_preview(pending_dispatch_[i]);
        bool room = false;
        if (pin) {
          const auto d = static_cast<std::size_t>(*pin);
          room = stream.device_in_flight(d) < effective_depth(d);
        } else {
          for (std::size_t d = 0; d < stream.device_count(); ++d) {
            room = room || stream.device_in_flight(d) < effective_depth(d);
          }
        }
        if (!room) {
          ++i;
          continue;
        }
        Batch batch = std::move(pending_dispatch_[i]);
        pending_dispatch_.erase(pending_dispatch_.begin() +
                                static_cast<std::ptrdiff_t>(i));
        progress = true;
        TDO_RETURN_IF_ERROR(dispatch(std::move(batch), pin));
      }
    }
    progress = progress && queued_ > 0 && pulled_unfinished_ < budget;
  }
  harvest();
  return support::Status::ok();
}

bool Scheduler::tile_fits(const Request& request) const {
  // Shapes whose stationary tile fits the crossbar run as one job per
  // launch. Oversized shapes split into tile chains where only the first
  // link is fallback-eligible — a forced-host probe could never measure a
  // pure host run for them (and a batched launch would silently degrade to
  // individually-routed calls, voiding the device pin).
  const auto& tile = runtime_.accelerator().tile();
  if (request.op == Op::kSgemv) {
    // y = op(A)x: the crossbar reduces over the x-length and emits the
    // y-length (sgemv_async's kk/outer tiling).
    const std::uint64_t reduce = request.transpose ? request.m : request.n;
    const std::uint64_t out = request.transpose ? request.n : request.m;
    return reduce <= tile.rows() && out <= tile.cols();
  }
  return request.k <= tile.rows() &&
         (request.stationary == cim::StationaryOperand::kB ? request.n
                                                           : request.m) <=
             tile.cols();
}

std::size_t Scheduler::effective_depth(std::size_t device) const {
  return std::min(runtime_.config().stream.depth,
                  runtime_.driver().device(device).params().work_queue_depth +
                      1);
}

std::size_t Scheduler::cheapest_device() const {
  auto& stream = runtime_.stream();
  const topo::Topology* topo = runtime_.topology();
  const std::size_t count = stream.device_count();
  // Caller-centric placement spills to the far pool only once every near
  // queue is full; until then far devices price out of the scan entirely.
  const bool caller_centric =
      params_.placement == topo::Placement::kCallerCentric && topo != nullptr;
  bool near_room = false;
  if (caller_centric) {
    for (std::size_t d = 0; d < count; ++d) {
      near_room = near_room ||
                  (topo->tier(d) == topo::Topology::kNearTier &&
                   stream.device_in_flight(d) < effective_depth(d));
    }
  }
  // Marginal cost of one more job on device d: queue depth scaled by the
  // link latency multiplier. A near device stays cheapest until its queue
  // is ~multiplier jobs deeper than a far pool's — the load-derived
  // break-even, same rule as CimRuntime's buffer-centric placement.
  const auto cost = [&](std::size_t d) {
    const double mult =
        topo != nullptr ? topo->latency_multiplier(static_cast<int>(d)) : 1.0;
    const double far_penalty =
        caller_centric && near_room &&
                topo->tier(d) != topo::Topology::kNearTier
            ? 1e18
            : 0.0;
    return static_cast<double>(stream.device_in_flight(d) + 1) * mult +
           far_penalty;
  };
  std::size_t best = place_cursor_ % count;
  double best_cost = cost(best);
  for (std::size_t offset = 1; offset < count; ++offset) {
    const std::size_t d = (place_cursor_ + offset) % count;
    const double c = cost(d);
    if (c < best_cost) {
      best = d;
      best_cost = c;
    }
  }
  return best;
}

int Scheduler::device_tier(int device) const {
  const topo::Topology* topo = runtime_.topology();
  if (topo == nullptr || device < 0 ||
      device >= static_cast<int>(runtime_.driver().device_count())) {
    return topo::Topology::kNearTier;
  }
  return topo->tier(device);
}

std::optional<int> Scheduler::placement_preview(const Batch& batch) {
  const Request& head = batch.requests.front();
  if (batch.requests.size() < 2 || head.op != Op::kSgemm ||
      !params_.residency_affinity || !head.cacheable || !tile_fits(head) ||
      params_.placement == topo::Placement::kCallerCentric) {
    // Caller-centric placement never pins by residency: work stays near the
    // caller (shortest near queue), mirroring stationary_device's rule.
    return std::nullopt;
  }
  const bool stationary_b = head.stationary == cim::StationaryOperand::kB;
  return runtime_.weight_affinity(head.m, head.n, head.k,
                                  stationary_b ? head.b : head.a,
                                  stationary_b ? head.ldb : head.lda,
                                  head.stationary);
}

support::Status Scheduler::dispatch(Batch batch, std::optional<int> pinned) {
  const Request& head = batch.requests.front();
  // The admission site carries the memory tier the launch is expected to
  // land on: the affinity pin when the batch has one, otherwise wherever
  // the cost-weighted queue scan would put new work right now. Per-request
  // launches route inside the runtime under the same placement rule, so the
  // anticipated tier is the dispatched tier in the steady state — and
  // finalize() rebuilds the identical key from InFlight::tier, keeping
  // admit() and observe() on the same per-tier EWMAs.
  const int tier =
      device_tier(pinned ? *pinned : static_cast<int>(cheapest_device()));
  const SiteKey site{head.m, head.n, head.k, tier};
  const bool fits = tile_fits(head);
  // Host probes only ride singleton single-tile launches — burning a
  // coalesced batch on the host would distort both the measurement and the
  // tail, and a multi-tile "host" run would execute mixed anyway.
  const AdmitPath path = admission_.admit(
      site, /*host_probe_ok=*/batch.requests.size() == 1 && fits);
  const bool batched = batch.requests.size() >= 2 && head.op == Op::kSgemm &&
                       fits && path != AdmitPath::kForceHost;

  // --- placement: weight residency first, then shortest compute queue ---
  //
  // Only batched launches take a pinned device; per-request launches route
  // inside the runtime (which does its own residency-affinity when the call
  // is cacheable), so computing a placement for them would just be reported
  // without being applied. The affinity result (`pinned`) comes from the
  // caller's capacity-gate preview — one residency walk per batch.
  auto& stream = runtime_.stream();
  int device = -1;
  if (batched) {
    if (pinned) {
      device = *pinned;
      affinity_routed_.add();
    }
    if (device < 0) {
      // Cheapest compute queue (multiplier-weighted when a topology is
      // attached; plain shortest queue otherwise); ties rotate so
      // equally-idle accelerators share the cold-start load instead of
      // device 0 absorbing it.
      const std::size_t best = cheapest_device();
      place_cursor_ = best + 1;
      device = static_cast<int>(best);
      queue_routed_.add();
    }
    if (device_tier(device) == topo::Topology::kFarTier) far_routed_.add();
  }

  // --- adaptive knobs (and per-launch probe overrides) ---
  if (admission_.adaptive()) {
    runtime_.xfer().set_min_async_bytes(admission_.min_async_bytes());
    if (params_.admission.tune_split) {
      // Push the site's quantized pseudo-async split share into the runtime
      // so the upcoming sgemm splits at the EWMA-derived optimum.
      runtime_.set_split_fraction(admission_.split_fraction_for(site));
    }
    double threshold = admission_.min_macs_per_write();
    if (path == AdmitPath::kForceHost) threshold = kForceHostThreshold;
    if (path == AdmitPath::kForceDevice) threshold = 0.0;
    stream.set_min_macs_per_write(threshold);
  }

  const auto residency_hits_before = runtime_.residency().report().hits;
  // Jobs-accepted-so-far per device (completed + in flight): monotone, so a
  // launch that both enqueues a job and retires another inside one blocking
  // call (wait_for_space) still registers as growth.
  auto& driver = runtime_.driver();
  const auto accepted = [&](std::size_t d) {
    return driver.device(d).jobs_completed() + stream.device_in_flight(d);
  };
  std::vector<std::uint64_t> accepted_before(stream.device_count());
  for (std::size_t d = 0; d < stream.device_count(); ++d) {
    accepted_before[d] = accepted(d);
  }
  auto& pool = runtime_.host_pool();
  const rt::HostPoolReport pool_before = pool.report();

  InFlight inflight;
  inflight.dispatch = now();
  inflight.device = device;
  inflight.tier = tier;
  inflight.batched = batched;

  // --- launch ---
  support::Status status = support::Status::ok();
  if (batched) {
    std::vector<rt::GemmBatchItem> items;
    items.reserve(batch.requests.size());
    for (const Request& r : batch.requests) {
      items.push_back(rt::GemmBatchItem{r.a, r.b, r.c});
    }
    status = runtime_.sgemm_batched_async(
        head.m, head.n, head.k, head.alpha, items, head.lda, head.ldb,
        head.beta, head.ldc, head.stationary, head.cacheable, device);
  } else {
    // Per-request launches: the only shape the stream's dynamic CPU
    // fallback (and thus a kForceHost probe) can act on.
    for (const Request& r : batch.requests) {
      if (r.op == Op::kSgemm) {
        status = runtime_.sgemm_async(r.m, r.n, r.k, r.alpha, r.a, r.lda, r.b,
                                      r.ldb, r.beta, r.c, r.ldc, r.stationary,
                                      r.cacheable);
      } else {
        status = runtime_.sgemv_async(r.transpose, r.m, r.n, r.alpha, r.a,
                                      r.lda, r.b, r.beta, r.c, r.cacheable);
      }
      if (!status.is_ok()) break;
    }
  }
  // Probe overrides last exactly one launch.
  if (admission_.adaptive() && path != AdmitPath::kAuto) {
    stream.set_min_macs_per_write(admission_.min_macs_per_write());
  }
  TDO_RETURN_IF_ERROR(status);
  // Launch counters only after the status check: a failed launch has no
  // completion to match, and counting it would skew every launches-derived
  // ratio (batched share, coalescing factor) against phantom work.
  launches_.add();
  if (batched) {
    batched_launches_.add();
    coalesced_requests_.add(batch.requests.size());
  }
  inflight.launch_end = now().ticks();

  inflight.residency_hit =
      runtime_.residency().report().hits > residency_hits_before;

  // --- completion targets: devices this launch put work on ---
  for (std::size_t d = 0; d < stream.device_count(); ++d) {
    const std::uint64_t accepted_after = accepted(d);
    if (accepted_after == accepted_before[d]) continue;
    // Jobs serialize FIFO per accelerator and this launch's jobs are the
    // last accepted, so the launch is done exactly when the device's
    // completed count covers everything accepted so far — including jobs
    // that already retired inside the dispatch call (their completion
    // ticks are in the observer log).
    inflight.targets.emplace_back(static_cast<int>(d), accepted_after);
  }
  const rt::HostPoolReport pool_after = pool.report();
  if (pool_after.jobs > pool_before.jobs) {
    // A pseudo-async split put a CPU stripe on the host worker pool: the
    // launch joins only when the pool's FIFO-retired completed count covers
    // every stripe submitted so far, same contract as an accelerator.
    inflight.targets.emplace_back(pool_device_id(), pool_after.jobs);
    // The stripe doubles as a free host-path probe: its analytic span over
    // its MACs is exactly the per-MAC host cost the split optimum needs,
    // refreshed on every split launch instead of waiting for a forced
    // probe. cim_writes = 0 keeps the site's intensity untouched.
    const std::uint64_t stripe_macs = pool_after.macs - pool_before.macs;
    const std::uint64_t stripe_ticks =
        pool_after.busy_ticks - pool_before.busy_ticks;
    if (stripe_macs > 0) {
      admission_.observe(site, /*offloaded=*/false,
                         sim::from_ticks(stripe_ticks), stripe_macs,
                         /*cim_writes=*/0);
    }
  }
  // Offloaded means "an accelerator ran part of it": the host worker pool
  // is a completion target but not a device, so a hypothetical pool-only
  // launch still counts as a host launch.
  inflight.offloaded = false;
  const int real_devices = static_cast<int>(stream.device_count());
  for (const auto& [device, target] : inflight.targets) {
    inflight.offloaded = inflight.offloaded || device < real_devices;
  }
  if (!inflight.offloaded) host_launches_.add();

  inflight.requests = std::move(batch.requests);
  if (inflight.targets.empty()) {
    // Fully host-run (or already retired): completion is synchronous.
    finalize(std::move(inflight), now().ticks());
  } else {
    inflight_.push_back(std::move(inflight));
  }
  return support::Status::ok();
}

void Scheduler::harvest() {
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    sim::Tick done = 0;
    bool all = true;
    for (const auto& [device, target] : it->targets) {
      const auto& log = logs_[static_cast<std::size_t>(device)];
      bool met = false;
      for (const auto& [completed, when] : log) {
        if (completed >= target) {
          if (when >= done) {
            // The target that defines the launch's done tick is the
            // critical one — the trace span joins its engine job.
            done = when;
            it->critical_device = device;
            it->critical_target = target;
          }
          met = true;
          break;
        }
      }
      if (!met) {
        all = false;
        break;
      }
    }
    if (all) {
      InFlight finished = std::move(*it);
      it = inflight_.erase(it);
      finalize(std::move(finished), done);
    } else {
      ++it;
    }
  }
  prune_logs();
}

void Scheduler::prune_logs() {
  for (std::size_t d = 0; d < logs_.size(); ++d) {
    // Keep entries any outstanding target could still need; without
    // outstanding targets one trailing entry suffices (future targets are
    // always larger than the current completed count).
    std::uint64_t keep_from = std::numeric_limits<std::uint64_t>::max();
    for (const InFlight& inflight : inflight_) {
      for (const auto& [device, target] : inflight.targets) {
        if (device == static_cast<int>(d)) {
          keep_from = std::min(keep_from, target);
        }
      }
    }
    auto& log = logs_[d];
    if (log.empty()) continue;
    if (keep_from == std::numeric_limits<std::uint64_t>::max()) {
      log.erase(log.begin(), log.end() - 1);
      continue;
    }
    const auto first_needed = std::find_if(
        log.begin(), log.end(),
        [keep_from](const auto& entry) { return entry.first >= keep_from; });
    if (first_needed != log.begin() && first_needed != log.end()) {
      log.erase(log.begin(), first_needed);
    }
  }
}

void Scheduler::finalize(InFlight inflight, sim::Tick done_tick) {
  const support::Duration done = sim::from_ticks(done_tick);
  const Request& head = inflight.requests.front();
  const SiteKey site{head.m, head.n, head.k, inflight.tier};
  // Only single-request launches feed the admission EWMAs: the intensity
  // threshold gates exactly those (batched jobs never take the CPU
  // fallback, and aggregating a multi-request launch's MACs against one
  // programming pass would inflate the site's intensity past what the
  // per-job gate sees). A residency hit paid no programming — flagged so
  // the miss-path EWMA stays unbiased.
  if (inflight.requests.size() == 1) {
    admission_.observe(site, inflight.offloaded, done - inflight.dispatch,
                       head.macs(),
                       inflight.residency_hit ? 0 : head.cim_writes());
  }

  // Shedder capacity: dispatch-to-done per MAC across every offloaded
  // launch, batched or not. Queueing is included on purpose — it biases
  // capacity low under load, which with ShedParams::headroom errs toward
  // shedding rather than letting the backlog grow unbounded.
  if (params_.shed.enabled && inflight.offloaded) {
    std::uint64_t launch_macs = 0;
    for (const Request& r : inflight.requests) launch_macs += r.macs();
    if (launch_macs > 0) {
      const double sample = (done - inflight.dispatch).picoseconds() /
                            static_cast<double>(launch_macs);
      service_ps_per_mac_ =
          service_obs_ == 0
              ? sample
              : (1.0 - params_.shed.ewma_alpha) * service_ps_per_mac_ +
                    params_.shed.ewma_alpha * sample;
      service_obs_ += 1;
    }
  }

  // Per-request trace span on the class track, carrying every scheduler-side
  // checkpoint plus the engine-job join key ({dev, target}; dev = 0 when the
  // completion was synchronous or pool-defined, so the analyzer books the
  // post-launch remainder as compute instead of chasing a device join).
  if (obs::enabled()) {
    auto& tracer = obs::Tracer::instance();
    const int real_devices =
        static_cast<int>(runtime_.driver().device_count());
    const bool device_critical = inflight.critical_device >= 0 &&
                                 inflight.critical_device < real_devices;
    const std::uint64_t dev_arg =
        device_critical
            ? static_cast<std::uint64_t>(inflight.critical_device) + 1
            : 0;
    for (const Request& r : inflight.requests) {
      // A submit-shard clock can stamp arrivals ahead of the driver clock;
      // clamp so the span never underflows (zero-length is honest there).
      const std::uint64_t arrival =
          std::min<std::uint64_t>(r.arrival.ticks(), done_tick);
      tracer.span(
          std::string("sched/") + to_string(r.deadline), "request", arrival,
          done_tick - arrival,
          {{"id", r.id},
           {"tenant", r.tenant},
           {"dev", dev_arg},
           {"target", device_critical ? inflight.critical_target : 0},
           {"pull", r.pulled.ticks()},
           {"close", inflight.dispatch.ticks()},
           {"launch", inflight.launch_end}});
    }
  }

  const auto batch_size =
      static_cast<std::uint32_t>(inflight.requests.size());
  for (Request& r : inflight.requests) {
    Completion completion;
    completion.id = r.id;
    completion.tenant = r.tenant;
    completion.deadline = r.deadline;
    completion.arrival = r.arrival;
    completion.dispatch = inflight.dispatch;
    completion.done = done;
    completion.device = inflight.device;
    completion.offloaded = inflight.offloaded;
    completion.batch_size = batch_size;
    class_latency_[static_cast<std::size_t>(r.deadline)].add(
        completion.latency());
    if (params_.track_tenant_latency) {
      tenant_latency_[r.tenant].add(completion.latency());
    }
    completions_.push_back(completion);
    completed_.add();
    if (pulled_unfinished_ > 0) pulled_unfinished_ -= 1;
    const auto it = tenants_.find(r.tenant);
    if (it != tenants_.end()) {
      TenantState& state = it->second;
      if (state.inflight > 0) state.inflight -= 1;
      note_idle_if(r.tenant, state);
    }
  }
}

std::optional<sim::Tick> Scheduler::next_wake_tick() const {
  std::optional<sim::Tick> wake;
  const auto& events = runtime_.system().events();
  if (submit_ring_.pending() > 0) {
    // Cross-thread submissions are waiting in the ring: pump immediately.
    return events.now();
  }
  if ((!inflight_.empty() || !pending_dispatch_.empty()) && !events.empty()) {
    wake = events.next_when();
  }
  if (const auto close = batcher_.next_close_time()) {
    // take_ready uses >=, so waking exactly at the close time suffices; an
    // already-due batch means "pump now".
    const sim::Tick close_tick = std::max(close->ticks(), events.now());
    if (!wake || close_tick < *wake) wake = close_tick;
  }
  return wake;
}

bool Scheduler::quiescent() const {
  return submit_ring_.pending() == 0 && queued_ == 0 &&
         batcher_.pending() == 0 && pending_dispatch_.empty() &&
         inflight_.empty();
}

bool Scheduler::advance_to_next_event(std::optional<sim::Tick> external_wake) {
  auto wake = next_wake_tick();
  if (external_wake && (!wake || *external_wake < *wake)) {
    wake = external_wake;
  }
  if (!wake) return false;
  auto& events = runtime_.system().events();
  if (*wake <= events.now()) {
    // The wake point is already due — a batch close stamped from a clock
    // that ran ahead, or completions whose ticks the caller leapt past.
    // run_until executes every overdue event (advance_to would skip them,
    // livelocking on work that never retires) and the one-tick nudge makes
    // a due batch close visible to take_ready's age check.
    events.run_until(events.now() + 1);
  } else {
    events.run_until(*wake);
  }
  return true;
}

support::Status Scheduler::drain() {
  while (true) {
    TDO_RETURN_IF_ERROR(pump());
    if (quiescent()) break;
    if (!advance_to_next_event()) {
      // In-flight work without a pending event: force the runtime to drain
      // (surfacing any device error) and try once more.
      TDO_RETURN_IF_ERROR(runtime_.synchronize());
      TDO_RETURN_IF_ERROR(pump());
      if (quiescent()) break;
      return support::internal_error("serve scheduler stalled");
    }
  }
  return runtime_.synchronize();
}

support::Status Scheduler::upload(sim::VirtAddr dst, sim::VirtAddr src,
                                  std::uint64_t bytes) {
  if (admission_.adaptive()) {
    runtime_.xfer().set_min_async_bytes(admission_.min_async_bytes());
  }
  const std::uint64_t host_before = runtime_.xfer().host_copies();
  const support::Duration before = now();
  TDO_RETURN_IF_ERROR(runtime_.host_to_dev(dst, src, bytes));
  const bool host_path = runtime_.xfer().host_copies() > host_before;
  admission_.observe_copy(bytes, host_path, now() - before);
  return support::Status::ok();
}

void Scheduler::reset_latency_stats() {
  for (auto& histogram : class_latency_) histogram.reset();
  for (auto& [tenant, histogram] : tenant_latency_) histogram.reset();
}

std::vector<Completion> Scheduler::take_completions() {
  std::vector<Completion> out = std::move(completions_);
  completions_.clear();
  return out;
}

support::LatencyHistogram Scheduler::tenant_latency(
    std::uint32_t tenant) const {
  const auto it = tenant_latency_.find(tenant);
  return it == tenant_latency_.end() ? support::LatencyHistogram{}
                                     : it->second;
}

std::uint64_t Scheduler::latency_lock_contended() const {
  std::uint64_t total = 0;
  for (const auto& histogram : class_latency_) {
    total += histogram.lock_contended();
  }
  return total;
}

ServeReport Scheduler::report() const {
  ServeReport rep;
  rep.submitted = submitted_.value();
  rep.rejected = rejected_.value();
  rep.shed = shed_.value();
  rep.completed = completed_.value();
  rep.launches = launches_.value();
  rep.batched_launches = batched_launches_.value();
  rep.coalesced_requests = coalesced_requests_.value();
  rep.affinity_routed = affinity_routed_.value();
  rep.queue_routed = queue_routed_.value();
  rep.far_routed = far_routed_.value();
  rep.host_launches = host_launches_.value();
  rep.admission = admission_.report();
  return rep;
}

}  // namespace tdo::serve
