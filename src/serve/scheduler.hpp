// Multi-tenant serving scheduler over the CIM runtime.
//
// Callers used to talk straight to the blocking/stream BLAS facade; nothing
// batched, prioritized or admission-controlled concurrent requests. The
// scheduler adds that system layer (the level Eva-CiM and CIMFlow argue CIM
// must be judged at):
//
//   * per-tenant, per-class FIFO queues with a bounded depth (admission
//     control) and a class-major weighted deficit-round-robin pull —
//     interactive work dispatches before batch work even when it sits behind
//     a batch-class request in the same tenant's backlog (per-class queues,
//     not FIFO fronts), tenants share a class's bandwidth in proportion to
//     their configured weights, and the pull itself is O(1) per request
//     (active-tenant lists, no ring scan), so scheduling cost stays flat at
//     10^5-10^6 tenants. Tenants idle past `tenant_idle_timeout` are evicted
//     so the per-tenant maps stay bounded too;
//   * overload shedding: when the measured arrival-rate EWMA exceeds the
//     capacity the admission EWMAs imply (device_count / device-ps-per-MAC),
//     the excess is dropped from the queue tails batch-class first — never
//     interactive — each drop surfacing a Completion with Outcome::kShed so
//     closed-loop clients unblock;
//   * dynamic batching (serve/batcher.hpp): same-shape, same-weight requests
//     coalesce into one sgemm_batched launch, closed on max-size or max-wait;
//   * residency-aware placement: a batch routes to the accelerator whose
//     crossbars already hold its weights (CimRuntime::weight_affinity),
//     falling back to the shortest compute queue;
//   * DTO-style adaptive admission (serve/admission.hpp): per call-site
//     EWMAs of observed device vs host-fallback latency continuously retune
//     the stream's `min_macs_per_write` and the transfer engine's
//     `min_async_bytes` instead of trusting the static knobs.
//
// The scheduler is cooperative, like everything in this simulator: submit()
// never blocks, pump() moves requests through the pipeline, and drain()
// advances simulated time (event queue) until every request completed.
// Completion timestamps are exact — the scheduler attaches a completion
// observer to every accelerator's job-done interrupt instead of polling.
//
// Concurrency (DESIGN.md section 11): submit_from_thread() is safe from any
// OS thread — ids from an atomic counter, counters on per-thread shards,
// requests pushed into the caller's shard of a submission ring that pump()
// (driver thread) drains in arrival order. There is no global scheduler
// lock; everything downstream of the ring runs on the driver thread, and
// the host worker pool joins the completion machinery as one more
// pseudo-device target.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "runtime/cim_blas.hpp"
#include "serve/admission.hpp"
#include "serve/batcher.hpp"
#include "serve/request.hpp"
#include "support/stats.hpp"
#include "support/status.hpp"
#include "support/threading.hpp"
#include "topo/topology.hpp"

namespace tdo::serve {

/// Open-loop overload control: when the measured arrival rate (MACs per
/// picosecond, EWMA over eval_window-sized windows) exceeds the measured
/// service capacity, the scheduler sheds the excess from the queue tails by
/// deadline class — batch first, then standard, never interactive. Capacity
/// comes from the scheduler's own dispatch-to-done EWMA over offloaded
/// launches (admission's device_ps_per_mac() is the fallback until that
/// warms up); until either estimate exists the shedder stays open.
struct ShedParams {
  bool enabled = false;
  /// Shed only past headroom * capacity: the EWMAs measure dispatch-to-done
  /// (queueing included), which biases capacity low under load, and a
  /// serving system should absorb brief bursts rather than drop at 1.01x.
  double headroom = 1.1;
  /// Smoothing factor for the arrival-rate EWMA.
  double ewma_alpha = 0.3;
  /// Arrival-rate measurement window; each elapsed window folds one rate
  /// sample into the EWMA (weighted by the span it covers — windows are
  /// irregular) and triggers at most one shed decision. Shedding requires
  /// two consecutive over-gate windows, so an isolated burst is absorbed at
  /// the cost of one window of reaction time.
  support::Duration eval_window = support::Duration::from_us(25.0);
};

struct SchedulerParams {
  BatcherParams batcher;
  AdmissionParams admission;
  ShedParams shed;
  /// Off: every request dispatches individually in pull order (the
  /// no-batching FIFO baseline benches compare against).
  bool batching = true;
  /// Off: placement ignores weight residency (shortest queue only).
  bool residency_affinity = true;
  /// Fabric placement policy, pushed into the runtime at construction.
  /// kBufferCentric (default) follows resident weights across tiers;
  /// kCallerCentric fills the near tier to its queue depth first and spills
  /// far only under pressure (batched placement skips the residency walk);
  /// kBlind ignores the topology entirely.
  topo::Placement placement = topo::Placement::kBufferCentric;
  /// Per-tenant queue bound; submit() rejects beyond it (backpressure to the
  /// front end instead of unbounded memory).
  std::size_t max_queue_per_tenant = 1024;
  /// Simulated front-end cost of one submit_from_thread call, charged to the
  /// submitting shard's clock (per-thread timelines: N submitters push N
  /// requests in the simulated time one submitter pushes one). 0 disables
  /// the clocks — arrivals stamp from global time when pump() drains them.
  sim::Tick submit_cost = 0;
  /// Per-shard capacity of the cross-thread submission ring; a full shard
  /// rejects with kResourceExhausted (backpressure, like the tenant bound).
  std::size_t ring_capacity = 4096;
  /// Pulled-but-unfinished request bound: pump() stops pulling from the
  /// tenant queues once this many pulled requests are still in the batcher,
  /// the pending-dispatch queue, or in flight. Without the bound every pump
  /// would drain the whole backlog into the batcher and dispatch order —
  /// not DRR — would decide tenant shares; with it the backlog stays in the
  /// tenant queues where weights, per-tenant bounds, and shedding act. 0
  /// derives a default from the fleet: 2 x total effective stream depth x
  /// max_batch (enough to keep every device fed through one full pump
  /// cycle).
  std::size_t pull_budget = 0;
  /// Per-tenant end-to-end latency histograms (tenant_latency()). On by
  /// default; benches pushing 10^5+ tenants turn it off — a histogram per
  /// tenant is ~16KB, which dominates the per-tenant footprint at scale.
  bool track_tenant_latency = true;
  /// A tenant idle (no queued requests, nothing in flight) for this long is
  /// evicted from the per-tenant maps — state and latency histogram both —
  /// so the maps track the active set, not every tenant ever seen. A
  /// re-appearing tenant re-registers from the request (weight field) or
  /// set_tenant_weight. 0 disables eviction. The default is one simulated
  /// second: far past any serving-path timescale, so only truly departed
  /// tenants age out.
  support::Duration tenant_idle_timeout = support::Duration::from_us(1.0e6);
  /// Stats prefix for the serve.* counters.
  std::string name = "serve";
};

/// Aggregate scheduler behaviour for reporting.
struct ServeReport {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;  ///< dropped by overload shedding (serve.shed)
  std::uint64_t completed = 0;
  std::uint64_t launches = 0;          ///< runtime dispatches (batches incl.)
  std::uint64_t batched_launches = 0;  ///< launches with >= 2 requests
  std::uint64_t coalesced_requests = 0;  ///< requests riding batched launches
  std::uint64_t affinity_routed = 0;   ///< placements by weight residency
  std::uint64_t queue_routed = 0;      ///< placements by shortest queue
  std::uint64_t far_routed = 0;        ///< batched placements on far-tier devices
  std::uint64_t host_launches = 0;     ///< launches that ran fully on host
  AdmissionReport admission;
};

class Scheduler {
 public:
  Scheduler(SchedulerParams params, rt::CimRuntime& runtime);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Accepts one request (never blocks). Stamps arrival with the current
  /// global time when the request carries none. kResourceExhausted when the
  /// tenant's queue is full. Driver-thread only — concurrent submitters use
  /// submit_from_thread().
  support::StatusOr<std::uint64_t> submit(Request request);

  /// Thread-safe submission from any thread: the id comes from an atomic
  /// counter, the arrival (when the request carries none and submit_cost is
  /// set) from the submitting shard's simulated clock, and the request lands
  /// in the caller's shard of the submission ring — no global lock, no
  /// contention between submitters on different shards. pump() drains the
  /// ring in arrival order. kResourceExhausted when the caller's shard is
  /// full; the ring capacity, not the per-tenant bound, is this path's
  /// backpressure limit.
  support::StatusOr<std::uint64_t> submit_from_thread(Request request);

  /// Registers (or updates) a tenant's DRR share weight: a weight-w tenant
  /// receives w requests of service per round against a weight-1 competitor
  /// in the same deadline class. Clamped to >= 1. Requests can carry the
  /// weight themselves (Request::weight); this call exists for front ends
  /// that register tenants ahead of traffic. The registration lives in the
  /// per-tenant state, so it ages out with the tenant under
  /// tenant_idle_timeout. Driver-thread only.
  void set_tenant_weight(std::uint32_t tenant, std::uint32_t weight);

  /// Drops up to `excess_macs` worth of queued work from the queue tails,
  /// batch class first, then standard — never interactive — rotating across
  /// tenants within a class so no single tenant absorbs the whole cut. Each
  /// victim surfaces a Completion with Outcome::kShed and counts in
  /// serve.shed. Returns the number of requests dropped. pump() calls this
  /// from the arrival-rate trigger (ShedParams); public so tests and benches
  /// can exercise the ordering policy directly.
  std::size_t shed_excess(double excess_macs);

  /// Tenants currently tracked (the active set plus not-yet-evicted idle
  /// tenants) — the quantity tenant_idle_timeout keeps bounded.
  [[nodiscard]] std::size_t tenant_count() const { return tenants_.size(); }

  /// Advances every submit-shard clock to at least the current global time.
  /// Driver-thread only; call before a simulated submission phase so shard
  /// clocks measure from "now" rather than from a previous phase's end.
  void sync_submit_clocks();

  /// Latest submit-shard clock: when the busiest simulated submitter
  /// finished its last push.
  [[nodiscard]] sim::Tick max_submit_clock() const;

  /// Requests pushed by other threads and not yet drained by pump().
  [[nodiscard]] std::size_t ring_pending() const {
    return submit_ring_.pending();
  }
  /// Contended lock acquisitions across the submission ring's shards.
  [[nodiscard]] std::uint64_t ring_lock_contended() const {
    return submit_ring_.lock_contended();
  }

  /// One scheduling round: harvest completions, pull queued requests in
  /// fairness order into the batcher (or dispatch directly when batching is
  /// off), dispatch every ready batch.
  support::Status pump();

  /// Next tick at which pump() can make progress: the earliest device event
  /// or open-batch close time. nullopt when the scheduler is quiescent.
  [[nodiscard]] std::optional<sim::Tick> next_wake_tick() const;

  /// Advances simulated time to the next actionable point — the earlier of
  /// next_wake_tick() and the caller's `external_wake` (e.g. an open-loop
  /// arrival) — nudging one tick forward when the wake point is already due
  /// (take_ready uses >=, so the age check must see time past the close).
  /// Returns false when there is nothing to wake for. The single
  /// time-advance rule shared by drain() and the bench drive loops.
  bool advance_to_next_event(
      std::optional<sim::Tick> external_wake = std::nullopt);

  /// Runs pump() and advances simulated time until every submitted request
  /// has completed, then synchronizes the runtime.
  support::Status drain();

  /// True when nothing is queued, batching, or in flight.
  [[nodiscard]] bool quiescent() const;

  /// Host<->device transfer through the scheduler: same as the runtime call,
  /// but the measured host-side cost feeds the adaptive min_async_bytes
  /// knob.
  support::Status upload(sim::VirtAddr dst, sim::VirtAddr src,
                         std::uint64_t bytes);

  /// Completions recorded since the last call (move-out). Includes dropped
  /// requests (Outcome::kShed / kRejected) so closed-loop clients always
  /// unblock; drops never enter the latency histograms.
  [[nodiscard]] std::vector<Completion> take_completions();

  /// Resets the latency histograms (class and tenant). ROI-style
  /// measurement: benches warm the residency cache and the admission EWMAs
  /// first, then measure steady-state serving — the same snapshot-around-ROI
  /// discipline the rest of the harness uses.
  void reset_latency_stats();

  /// Merged snapshot of the per-thread latency shards for one class.
  /// Returned by value: recording threads keep adding while the caller
  /// reads, so a reference would be a moving target.
  [[nodiscard]] support::LatencyHistogram class_latency(DeadlineClass c) const {
    return class_latency_[static_cast<std::size_t>(c)].merged();
  }
  /// Per-tenant end-to-end latency snapshot (empty histogram for a tenant
  /// that never completed a request, was evicted, or when
  /// track_tenant_latency is off).
  [[nodiscard]] support::LatencyHistogram tenant_latency(
      std::uint32_t tenant) const;
  /// Contended acquisitions across the class-histogram shard locks. (The
  /// per-tenant histograms are plain driver-thread structures — at 10^5+
  /// tenants a sharded histogram per tenant would cost ~256KB each.)
  [[nodiscard]] std::uint64_t latency_lock_contended() const;

  [[nodiscard]] ServeReport report() const;
  [[nodiscard]] AdmissionController& admission() { return admission_; }
  [[nodiscard]] const SchedulerParams& params() const { return params_; }

 private:
  struct InFlight {
    std::vector<Request> requests;
    support::Duration dispatch;
    int device = -1;
    /// Memory tier the launch's admission site was stamped with at dispatch
    /// (finalize must rebuild the identical SiteKey for its observe call).
    int tier = 0;
    bool offloaded = false;
    bool batched = false;
    bool residency_hit = false;
    /// Tick the runtime launch call returned on the driver thread (the
    /// `launch` checkpoint of the per-request trace span).
    sim::Tick launch_end = 0;
    /// The completion-defining target (the one whose met tick equals the
    /// launch's done tick), captured by harvest() so finalize() can stamp
    /// the request span with the engine-job join key. -1 device when the
    /// launch finished synchronously.
    int critical_device = -1;
    std::uint64_t critical_target = 0;
    /// Per-target completed-jobs counts that signal this launch finished
    /// (jobs serialize FIFO per accelerator, and the host worker pool
    /// retires FIFO too, so "completed reaches N" is exact). Device ids
    /// < device_count are accelerators; pool_device_id() is the host
    /// worker pool carrying a pseudo-async split's CPU stripe. Empty means
    /// the launch finished synchronously on the driver thread.
    std::vector<std::pair<int, std::uint64_t>> targets;
  };

  /// Compact FIFO for one tenant x class queue. A std::deque allocates ~2KB
  /// the moment it is constructed, which at 10^5-10^6 tenants (x3 classes)
  /// dominates memory; this vector-plus-head-index FIFO allocates nothing
  /// while empty and compacts lazily, with amortized O(1) push/pop.
  struct RequestQueue {
    std::vector<Request> items;
    std::size_t head = 0;

    [[nodiscard]] bool empty() const { return head >= items.size(); }
    [[nodiscard]] std::size_t size() const { return items.size() - head; }
    void push_back(Request&& r) { items.push_back(std::move(r)); }
    [[nodiscard]] Request pop_front() {
      Request out = std::move(items[head]);
      head += 1;
      if (head >= items.size()) {
        items.clear();
        head = 0;
      } else if (head > 32 && head * 2 > items.size()) {
        items.erase(items.begin(),
                    items.begin() + static_cast<std::ptrdiff_t>(head));
        head = 0;
      }
      return out;
    }
    [[nodiscard]] Request pop_back() {
      Request out = std::move(items.back());
      items.pop_back();
      if (head >= items.size()) {
        items.clear();
        head = 0;
      }
      return out;
    }
  };

  /// Everything the scheduler tracks per tenant: the per-class queues, the
  /// DRR share state, and the idle-eviction bookkeeping. One flat struct so
  /// a tenant costs one hash-map slot (~200B empty), not entries across
  /// parallel maps.
  struct TenantState {
    std::uint32_t weight = 1;  ///< DRR quantum (requests per round)
    RequestQueue queues[kDeadlineClasses];
    /// Remaining credit in the tenant's current DRR turn for each class; 0
    /// means "top up with `weight` when the tenant next reaches the head of
    /// the active list".
    std::uint32_t deficit[kDeadlineClasses] = {};
    /// Whether the tenant currently has an entry in active_[c]. May lag the
    /// queue emptying (shedding leaves the entry for the pop side to lazily
    /// retire); a non-empty queue always implies an entry.
    bool active[kDeadlineClasses] = {};
    std::size_t queued = 0;     ///< total across the class queues
    std::uint64_t inflight = 0; ///< pulled (batcher/pending/launched), not
                                ///< yet finalized
    sim::Tick idle_since = 0;   ///< last busy->idle transition
    bool idle_pending = false;  ///< an idle_fifo_ entry refers to this tenant
  };

  [[nodiscard]] support::Duration now() const;
  /// Drains the submission ring into the tenant queues in arrival order
  /// (driver thread; the consumer side of submit_from_thread). Enforces
  /// params_.max_queue_per_tenant — the bound submit() applies — rejecting
  /// overflow with an Outcome::kRejected completion record, since this
  /// path's submitters already parted with the request.
  void pump_submissions();
  /// Appends `request` to its tenant x class queue, registering a carried
  /// weight and activating the tenant in the class's DRR list.
  void enqueue(std::uint32_t tenant, TenantState& state, Request&& request);
  /// Records a dropped request as a completion-style record (no latency
  /// histogram entry, no completed count).
  void drop_request(Request&& request, Completion::Outcome outcome);
  /// Accumulates one arrival into the shed window (no-op when shedding is
  /// off).
  void note_arrival(const Request& request);
  /// Folds the elapsed arrival window into the rate EWMA and sheds the
  /// excess when the rate exceeds headroom x capacity.
  void maybe_shed();
  /// Arms the idle-eviction clock when the tenant just went fully idle.
  void note_idle_if(std::uint32_t tenant, TenantState& state);
  /// Evicts tenants idle past tenant_idle_timeout (amortized O(1): one FIFO
  /// entry per idle transition, validated against the tenant's live state).
  void evict_idle();
  /// params_.pull_budget, or the fleet-derived default when 0.
  [[nodiscard]] std::size_t effective_pull_budget() const;
  /// Pseudo-device id the host worker pool's completions log under: one past
  /// the last real accelerator.
  [[nodiscard]] int pool_device_id() const;
  /// Whether the request's stationary tile fits one crossbar (single-job
  /// launches; the precondition for batched launches and host probes).
  [[nodiscard]] bool tile_fits(const Request& request) const;
  /// The device a batched launch of `batch` would pin by residency
  /// affinity; nullopt when any device would do (no pin / not batchable).
  [[nodiscard]] std::optional<int> placement_preview(const Batch& batch);
  /// The stream's true per-device in-flight bound: the configured depth
  /// capped by the device's hardware FIFO (mirrors CimStream::enqueue).
  [[nodiscard]] std::size_t effective_depth(std::size_t device) const;
  /// Cost-cheapest device for new work right now: queue depth weighted by
  /// the device's link latency multiplier when the runtime carries a
  /// topology (mirrors CimRuntime's topology-aware placement); plain
  /// shortest queue otherwise. Scans from place_cursor_ without advancing
  /// it, so previews and actual placements see the same rotation.
  [[nodiscard]] std::size_t cheapest_device() const;
  /// Topology tier of `device` (kNearTier when no topology is attached or
  /// the id is out of range, e.g. the host pool pseudo-device).
  [[nodiscard]] int device_tier(int device) const;
  void harvest();
  /// Class-major weighted DRR pull: the best non-empty class wins; within
  /// it, the tenant at the head of the class's active list serves one
  /// request per call against its deficit (quantum = weight, unit cost per
  /// request), rotating to the back when the turn's credit is spent.
  /// Amortized O(1) — no scan over idle tenants.
  [[nodiscard]] std::optional<Request> pop_next_request();
  support::Status dispatch(Batch batch,
                           std::optional<int> pinned = std::nullopt);
  void finalize(InFlight inflight, sim::Tick done_tick);
  void prune_logs();

  SchedulerParams params_;
  rt::CimRuntime& runtime_;
  Batcher batcher_;
  AdmissionController admission_;

  std::unordered_map<std::uint32_t, TenantState> tenants_;
  /// Per-class DRR rotation: tenant ids with (nominally) queued work of that
  /// class, served from the front, rotated to the back when a turn's
  /// deficit is spent.
  std::deque<std::uint32_t> active_[kDeadlineClasses];
  /// Idle-eviction clock: one (tenant, idle-transition tick) entry per
  /// busy->idle transition, popped once older than tenant_idle_timeout and
  /// validated against the tenant's live state (monotone push ticks, so the
  /// front is always the oldest candidate).
  std::deque<std::pair<std::uint32_t, sim::Tick>> idle_fifo_;
  std::size_t place_cursor_ = 0;  ///< rotates shortest-queue tie-breaks
  std::atomic<std::uint64_t> next_id_{1};
  std::uint64_t queued_ = 0;
  /// Requests pulled from the tenant queues and not yet finalized (batcher +
  /// pending_dispatch_ + inflight_); pump() pulls only below the budget.
  std::size_t pulled_unfinished_ = 0;

  /// Overload-shedding state (driver thread): MACs arrived in the current
  /// eval window, the window's start, and the cross-window rate EWMA.
  double arrival_macs_window_ = 0.0;
  support::Duration shed_window_start_;
  double arrival_rate_ = 0.0;  ///< MACs per picosecond, EWMA
  bool arrival_rate_seeded_ = false;
  int shed_streak_ = 0;  ///< consecutive over-gate windows; shed needs two
  /// Capacity estimate for the shedder: dispatch-to-done picoseconds per MAC
  /// over every offloaded launch (batched launches included — admission only
  /// ever sees singletons), fed by finalize() when shedding is enabled. Kept
  /// scheduler-side so shedding works with static admission knobs and an
  /// overloaded fleet cannot flip the admission threshold toward the
  /// synchronous host path.
  double service_ps_per_mac_ = 0.0;
  std::uint64_t service_obs_ = 0;

  /// Cross-thread submission path: per-shard rings plus per-shard simulated
  /// submitter clocks (each advanced by submit_cost per push, so N threads
  /// submit N-wide in simulated time).
  support::ShardedRing<Request> submit_ring_;
  struct alignas(64) SubmitClock {
    std::atomic<sim::Tick> t{0};
  };
  SubmitClock submit_clocks_[support::kStatShards];

  std::vector<InFlight> inflight_;
  /// Closed batches awaiting accelerator capacity, kept in (deadline class,
  /// oldest member) order. pump() dispatches from the front while any
  /// compute queue has room, so one tenant's backlog cannot head-of-line
  /// block a later higher-priority batch behind a full queue.
  std::vector<Batch> pending_dispatch_;
  /// Per-device completion log fed by the accelerator observers:
  /// (completed-jobs count, tick) per job-done interrupt.
  std::vector<std::vector<std::pair<std::uint64_t, sim::Tick>>> logs_;

  std::vector<Completion> completions_;
  /// Sharded: finalize() records from the driver thread today, but the
  /// shards let a future parallel retirement path (and concurrent readers
  /// taking merged snapshots) proceed without a global histogram lock.
  support::ShardedLatencyHistogram class_latency_[kDeadlineClasses];
  /// Plain driver-thread histograms (one sharded histogram per tenant is
  /// ~256KB — untenable at 10^5+ tenants); gated by track_tenant_latency
  /// and evicted with the tenant.
  std::unordered_map<std::uint32_t, support::LatencyHistogram> tenant_latency_;

  support::ShardedCounter submitted_;
  support::ShardedCounter rejected_;
  support::Counter shed_;
  /// Per-class shed counts (`serve.shed.<cls>`): the shed-rate SLO monitor
  /// differences these across metrics samples.
  support::Counter shed_by_class_[kDeadlineClasses];
  support::Counter completed_;
  support::Counter launches_;
  support::Counter batched_launches_;
  support::Counter coalesced_requests_;
  support::Counter affinity_routed_;
  support::Counter queue_routed_;
  support::Counter far_routed_;
  support::Counter host_launches_;
};

}  // namespace tdo::serve
