// Multi-tenant serving scheduler over the CIM runtime.
//
// Callers used to talk straight to the blocking/stream BLAS facade; nothing
// batched, prioritized or admission-controlled concurrent requests. The
// scheduler adds that system layer (the level Eva-CiM and CIMFlow argue CIM
// must be judged at):
//
//   * per-tenant FIFO queues with a bounded depth (admission control) and a
//     class-major round-robin pull — interactive heads dispatch before batch
//     heads, tenants take turns within a class, so a tenant flooding 10x the
//     load cannot starve a light tenant's tail latency;
//   * dynamic batching (serve/batcher.hpp): same-shape, same-weight requests
//     coalesce into one sgemm_batched launch, closed on max-size or max-wait;
//   * residency-aware placement: a batch routes to the accelerator whose
//     crossbars already hold its weights (CimRuntime::weight_affinity),
//     falling back to the shortest compute queue;
//   * DTO-style adaptive admission (serve/admission.hpp): per call-site
//     EWMAs of observed device vs host-fallback latency continuously retune
//     the stream's `min_macs_per_write` and the transfer engine's
//     `min_async_bytes` instead of trusting the static knobs.
//
// The scheduler is cooperative, like everything in this simulator: submit()
// never blocks, pump() moves requests through the pipeline, and drain()
// advances simulated time (event queue) until every request completed.
// Completion timestamps are exact — the scheduler attaches a completion
// observer to every accelerator's job-done interrupt instead of polling.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "runtime/cim_blas.hpp"
#include "serve/admission.hpp"
#include "serve/batcher.hpp"
#include "serve/request.hpp"
#include "support/stats.hpp"
#include "support/status.hpp"

namespace tdo::serve {

struct SchedulerParams {
  BatcherParams batcher;
  AdmissionParams admission;
  /// Off: every request dispatches individually in pull order (the
  /// no-batching FIFO baseline benches compare against).
  bool batching = true;
  /// Off: placement ignores weight residency (shortest queue only).
  bool residency_affinity = true;
  /// Per-tenant queue bound; submit() rejects beyond it (backpressure to the
  /// front end instead of unbounded memory).
  std::size_t max_queue_per_tenant = 1024;
  /// Stats prefix for the serve.* counters.
  std::string name = "serve";
};

/// Aggregate scheduler behaviour for reporting.
struct ServeReport {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t launches = 0;          ///< runtime dispatches (batches incl.)
  std::uint64_t batched_launches = 0;  ///< launches with >= 2 requests
  std::uint64_t coalesced_requests = 0;  ///< requests riding batched launches
  std::uint64_t affinity_routed = 0;   ///< placements by weight residency
  std::uint64_t queue_routed = 0;      ///< placements by shortest queue
  std::uint64_t host_launches = 0;     ///< launches that ran fully on host
  AdmissionReport admission;
};

class Scheduler {
 public:
  Scheduler(SchedulerParams params, rt::CimRuntime& runtime);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Accepts one request (never blocks). Stamps arrival with the current
  /// global time when the request carries none. kResourceExhausted when the
  /// tenant's queue is full.
  support::StatusOr<std::uint64_t> submit(Request request);

  /// One scheduling round: harvest completions, pull queued requests in
  /// fairness order into the batcher (or dispatch directly when batching is
  /// off), dispatch every ready batch.
  support::Status pump();

  /// Next tick at which pump() can make progress: the earliest device event
  /// or open-batch close time. nullopt when the scheduler is quiescent.
  [[nodiscard]] std::optional<sim::Tick> next_wake_tick() const;

  /// Advances simulated time to the next actionable point — the earlier of
  /// next_wake_tick() and the caller's `external_wake` (e.g. an open-loop
  /// arrival) — nudging one tick forward when the wake point is already due
  /// (take_ready uses >=, so the age check must see time past the close).
  /// Returns false when there is nothing to wake for. The single
  /// time-advance rule shared by drain() and the bench drive loops.
  bool advance_to_next_event(
      std::optional<sim::Tick> external_wake = std::nullopt);

  /// Runs pump() and advances simulated time until every submitted request
  /// has completed, then synchronizes the runtime.
  support::Status drain();

  /// True when nothing is queued, batching, or in flight.
  [[nodiscard]] bool quiescent() const;

  /// Host<->device transfer through the scheduler: same as the runtime call,
  /// but the measured host-side cost feeds the adaptive min_async_bytes
  /// knob.
  support::Status upload(sim::VirtAddr dst, sim::VirtAddr src,
                         std::uint64_t bytes);

  /// Completions recorded since the last call (move-out).
  [[nodiscard]] std::vector<Completion> take_completions();

  /// Resets the latency histograms (class and tenant). ROI-style
  /// measurement: benches warm the residency cache and the admission EWMAs
  /// first, then measure steady-state serving — the same snapshot-around-ROI
  /// discipline the rest of the harness uses.
  void reset_latency_stats();

  [[nodiscard]] const support::LatencyHistogram& class_latency(
      DeadlineClass c) const {
    return class_latency_[static_cast<std::size_t>(c)];
  }
  /// Per-tenant end-to-end latency histogram (empty histogram for a tenant
  /// that never completed a request).
  [[nodiscard]] const support::LatencyHistogram& tenant_latency(
      std::uint32_t tenant) const;

  [[nodiscard]] ServeReport report() const;
  [[nodiscard]] AdmissionController& admission() { return admission_; }
  [[nodiscard]] const SchedulerParams& params() const { return params_; }

 private:
  struct InFlight {
    std::vector<Request> requests;
    support::Duration dispatch;
    int device = -1;
    bool offloaded = false;
    bool batched = false;
    bool residency_hit = false;
    /// Per-device completed-jobs counts that signal this launch finished
    /// (jobs serialize FIFO per accelerator, so "completed reaches N" is
    /// exact). Empty means the launch finished synchronously on the host.
    std::vector<std::pair<int, std::uint64_t>> targets;
  };

  [[nodiscard]] support::Duration now() const;
  /// Whether the request's stationary tile fits one crossbar (single-job
  /// launches; the precondition for batched launches and host probes).
  [[nodiscard]] bool tile_fits(const Request& request) const;
  /// The device a batched launch of `batch` would pin by residency
  /// affinity; nullopt when any device would do (no pin / not batchable).
  [[nodiscard]] std::optional<int> placement_preview(const Batch& batch);
  /// The stream's true per-device in-flight bound: the configured depth
  /// capped by the device's hardware FIFO (mirrors CimStream::enqueue).
  [[nodiscard]] std::size_t effective_depth(std::size_t device) const;
  void harvest();
  /// Class-major, tenant-round-robin pull: the highest-priority head among
  /// all tenant queues, tenants rotating within a class.
  [[nodiscard]] std::optional<Request> pop_next_request();
  support::Status dispatch(Batch batch,
                           std::optional<int> pinned = std::nullopt);
  void finalize(InFlight inflight, sim::Tick done_tick);
  void prune_logs();

  SchedulerParams params_;
  rt::CimRuntime& runtime_;
  Batcher batcher_;
  AdmissionController admission_;

  std::map<std::uint32_t, std::deque<Request>> tenants_;
  std::vector<std::uint32_t> ring_;  ///< tenant ids, first-seen order
  std::size_t ring_cursor_ = 0;
  std::size_t place_cursor_ = 0;  ///< rotates shortest-queue tie-breaks
  std::uint64_t next_id_ = 1;
  std::uint64_t queued_ = 0;

  std::vector<InFlight> inflight_;
  /// Closed batches awaiting accelerator capacity, kept in (deadline class,
  /// oldest member) order. pump() dispatches from the front while any
  /// compute queue has room, so one tenant's backlog cannot head-of-line
  /// block a later higher-priority batch behind a full queue.
  std::vector<Batch> pending_dispatch_;
  /// Per-device completion log fed by the accelerator observers:
  /// (completed-jobs count, tick) per job-done interrupt.
  std::vector<std::vector<std::pair<std::uint64_t, sim::Tick>>> logs_;

  std::vector<Completion> completions_;
  support::LatencyHistogram class_latency_[kDeadlineClasses];
  std::map<std::uint32_t, support::LatencyHistogram> tenant_latency_;

  support::Counter submitted_;
  support::Counter rejected_;
  support::Counter completed_;
  support::Counter launches_;
  support::Counter batched_launches_;
  support::Counter coalesced_requests_;
  support::Counter affinity_routed_;
  support::Counter queue_routed_;
  support::Counter host_launches_;
};

}  // namespace tdo::serve
