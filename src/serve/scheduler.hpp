// Multi-tenant serving scheduler over the CIM runtime.
//
// Callers used to talk straight to the blocking/stream BLAS facade; nothing
// batched, prioritized or admission-controlled concurrent requests. The
// scheduler adds that system layer (the level Eva-CiM and CIMFlow argue CIM
// must be judged at):
//
//   * per-tenant FIFO queues with a bounded depth (admission control) and a
//     class-major round-robin pull — interactive heads dispatch before batch
//     heads, tenants take turns within a class, so a tenant flooding 10x the
//     load cannot starve a light tenant's tail latency;
//   * dynamic batching (serve/batcher.hpp): same-shape, same-weight requests
//     coalesce into one sgemm_batched launch, closed on max-size or max-wait;
//   * residency-aware placement: a batch routes to the accelerator whose
//     crossbars already hold its weights (CimRuntime::weight_affinity),
//     falling back to the shortest compute queue;
//   * DTO-style adaptive admission (serve/admission.hpp): per call-site
//     EWMAs of observed device vs host-fallback latency continuously retune
//     the stream's `min_macs_per_write` and the transfer engine's
//     `min_async_bytes` instead of trusting the static knobs.
//
// The scheduler is cooperative, like everything in this simulator: submit()
// never blocks, pump() moves requests through the pipeline, and drain()
// advances simulated time (event queue) until every request completed.
// Completion timestamps are exact — the scheduler attaches a completion
// observer to every accelerator's job-done interrupt instead of polling.
//
// Concurrency (DESIGN.md section 11): submit_from_thread() is safe from any
// OS thread — ids from an atomic counter, counters on per-thread shards,
// requests pushed into the caller's shard of a submission ring that pump()
// (driver thread) drains in arrival order. There is no global scheduler
// lock; everything downstream of the ring runs on the driver thread, and
// the host worker pool joins the completion machinery as one more
// pseudo-device target.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "runtime/cim_blas.hpp"
#include "serve/admission.hpp"
#include "serve/batcher.hpp"
#include "serve/request.hpp"
#include "support/stats.hpp"
#include "support/status.hpp"
#include "support/threading.hpp"
#include "topo/topology.hpp"

namespace tdo::serve {

struct SchedulerParams {
  BatcherParams batcher;
  AdmissionParams admission;
  /// Off: every request dispatches individually in pull order (the
  /// no-batching FIFO baseline benches compare against).
  bool batching = true;
  /// Off: placement ignores weight residency (shortest queue only).
  bool residency_affinity = true;
  /// Fabric placement policy, pushed into the runtime at construction.
  /// kBufferCentric (default) follows resident weights across tiers;
  /// kCallerCentric fills the near tier to its queue depth first and spills
  /// far only under pressure (batched placement skips the residency walk);
  /// kBlind ignores the topology entirely.
  topo::Placement placement = topo::Placement::kBufferCentric;
  /// Per-tenant queue bound; submit() rejects beyond it (backpressure to the
  /// front end instead of unbounded memory).
  std::size_t max_queue_per_tenant = 1024;
  /// Simulated front-end cost of one submit_from_thread call, charged to the
  /// submitting shard's clock (per-thread timelines: N submitters push N
  /// requests in the simulated time one submitter pushes one). 0 disables
  /// the clocks — arrivals stamp from global time when pump() drains them.
  sim::Tick submit_cost = 0;
  /// Per-shard capacity of the cross-thread submission ring; a full shard
  /// rejects with kResourceExhausted (backpressure, like the tenant bound).
  std::size_t ring_capacity = 4096;
  /// Stats prefix for the serve.* counters.
  std::string name = "serve";
};

/// Aggregate scheduler behaviour for reporting.
struct ServeReport {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t launches = 0;          ///< runtime dispatches (batches incl.)
  std::uint64_t batched_launches = 0;  ///< launches with >= 2 requests
  std::uint64_t coalesced_requests = 0;  ///< requests riding batched launches
  std::uint64_t affinity_routed = 0;   ///< placements by weight residency
  std::uint64_t queue_routed = 0;      ///< placements by shortest queue
  std::uint64_t far_routed = 0;        ///< batched placements on far-tier devices
  std::uint64_t host_launches = 0;     ///< launches that ran fully on host
  AdmissionReport admission;
};

class Scheduler {
 public:
  Scheduler(SchedulerParams params, rt::CimRuntime& runtime);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Accepts one request (never blocks). Stamps arrival with the current
  /// global time when the request carries none. kResourceExhausted when the
  /// tenant's queue is full. Driver-thread only — concurrent submitters use
  /// submit_from_thread().
  support::StatusOr<std::uint64_t> submit(Request request);

  /// Thread-safe submission from any thread: the id comes from an atomic
  /// counter, the arrival (when the request carries none and submit_cost is
  /// set) from the submitting shard's simulated clock, and the request lands
  /// in the caller's shard of the submission ring — no global lock, no
  /// contention between submitters on different shards. pump() drains the
  /// ring in arrival order. kResourceExhausted when the caller's shard is
  /// full; the ring capacity, not the per-tenant bound, is this path's
  /// backpressure limit.
  support::StatusOr<std::uint64_t> submit_from_thread(Request request);

  /// Advances every submit-shard clock to at least the current global time.
  /// Driver-thread only; call before a simulated submission phase so shard
  /// clocks measure from "now" rather than from a previous phase's end.
  void sync_submit_clocks();

  /// Latest submit-shard clock: when the busiest simulated submitter
  /// finished its last push.
  [[nodiscard]] sim::Tick max_submit_clock() const;

  /// Requests pushed by other threads and not yet drained by pump().
  [[nodiscard]] std::size_t ring_pending() const {
    return submit_ring_.pending();
  }
  /// Contended lock acquisitions across the submission ring's shards.
  [[nodiscard]] std::uint64_t ring_lock_contended() const {
    return submit_ring_.lock_contended();
  }

  /// One scheduling round: harvest completions, pull queued requests in
  /// fairness order into the batcher (or dispatch directly when batching is
  /// off), dispatch every ready batch.
  support::Status pump();

  /// Next tick at which pump() can make progress: the earliest device event
  /// or open-batch close time. nullopt when the scheduler is quiescent.
  [[nodiscard]] std::optional<sim::Tick> next_wake_tick() const;

  /// Advances simulated time to the next actionable point — the earlier of
  /// next_wake_tick() and the caller's `external_wake` (e.g. an open-loop
  /// arrival) — nudging one tick forward when the wake point is already due
  /// (take_ready uses >=, so the age check must see time past the close).
  /// Returns false when there is nothing to wake for. The single
  /// time-advance rule shared by drain() and the bench drive loops.
  bool advance_to_next_event(
      std::optional<sim::Tick> external_wake = std::nullopt);

  /// Runs pump() and advances simulated time until every submitted request
  /// has completed, then synchronizes the runtime.
  support::Status drain();

  /// True when nothing is queued, batching, or in flight.
  [[nodiscard]] bool quiescent() const;

  /// Host<->device transfer through the scheduler: same as the runtime call,
  /// but the measured host-side cost feeds the adaptive min_async_bytes
  /// knob.
  support::Status upload(sim::VirtAddr dst, sim::VirtAddr src,
                         std::uint64_t bytes);

  /// Completions recorded since the last call (move-out).
  [[nodiscard]] std::vector<Completion> take_completions();

  /// Resets the latency histograms (class and tenant). ROI-style
  /// measurement: benches warm the residency cache and the admission EWMAs
  /// first, then measure steady-state serving — the same snapshot-around-ROI
  /// discipline the rest of the harness uses.
  void reset_latency_stats();

  /// Merged snapshot of the per-thread latency shards for one class.
  /// Returned by value: recording threads keep adding while the caller
  /// reads, so a reference would be a moving target.
  [[nodiscard]] support::LatencyHistogram class_latency(DeadlineClass c) const {
    return class_latency_[static_cast<std::size_t>(c)].merged();
  }
  /// Per-tenant end-to-end latency snapshot (empty histogram for a tenant
  /// that never completed a request).
  [[nodiscard]] support::LatencyHistogram tenant_latency(
      std::uint32_t tenant) const;
  /// Contended acquisitions across every latency-histogram shard lock.
  [[nodiscard]] std::uint64_t latency_lock_contended() const;

  [[nodiscard]] ServeReport report() const;
  [[nodiscard]] AdmissionController& admission() { return admission_; }
  [[nodiscard]] const SchedulerParams& params() const { return params_; }

 private:
  struct InFlight {
    std::vector<Request> requests;
    support::Duration dispatch;
    int device = -1;
    /// Memory tier the launch's admission site was stamped with at dispatch
    /// (finalize must rebuild the identical SiteKey for its observe call).
    int tier = 0;
    bool offloaded = false;
    bool batched = false;
    bool residency_hit = false;
    /// Tick the runtime launch call returned on the driver thread (the
    /// `launch` checkpoint of the per-request trace span).
    sim::Tick launch_end = 0;
    /// The completion-defining target (the one whose met tick equals the
    /// launch's done tick), captured by harvest() so finalize() can stamp
    /// the request span with the engine-job join key. -1 device when the
    /// launch finished synchronously.
    int critical_device = -1;
    std::uint64_t critical_target = 0;
    /// Per-target completed-jobs counts that signal this launch finished
    /// (jobs serialize FIFO per accelerator, and the host worker pool
    /// retires FIFO too, so "completed reaches N" is exact). Device ids
    /// < device_count are accelerators; pool_device_id() is the host
    /// worker pool carrying a pseudo-async split's CPU stripe. Empty means
    /// the launch finished synchronously on the driver thread.
    std::vector<std::pair<int, std::uint64_t>> targets;
  };

  [[nodiscard]] support::Duration now() const;
  /// Drains the submission ring into the tenant queues in arrival order
  /// (driver thread; the consumer side of submit_from_thread).
  void pump_submissions();
  /// Pseudo-device id the host worker pool's completions log under: one past
  /// the last real accelerator.
  [[nodiscard]] int pool_device_id() const;
  /// Whether the request's stationary tile fits one crossbar (single-job
  /// launches; the precondition for batched launches and host probes).
  [[nodiscard]] bool tile_fits(const Request& request) const;
  /// The device a batched launch of `batch` would pin by residency
  /// affinity; nullopt when any device would do (no pin / not batchable).
  [[nodiscard]] std::optional<int> placement_preview(const Batch& batch);
  /// The stream's true per-device in-flight bound: the configured depth
  /// capped by the device's hardware FIFO (mirrors CimStream::enqueue).
  [[nodiscard]] std::size_t effective_depth(std::size_t device) const;
  /// Cost-cheapest device for new work right now: queue depth weighted by
  /// the device's link latency multiplier when the runtime carries a
  /// topology (mirrors CimRuntime's topology-aware placement); plain
  /// shortest queue otherwise. Scans from place_cursor_ without advancing
  /// it, so previews and actual placements see the same rotation.
  [[nodiscard]] std::size_t cheapest_device() const;
  /// Topology tier of `device` (kNearTier when no topology is attached or
  /// the id is out of range, e.g. the host pool pseudo-device).
  [[nodiscard]] int device_tier(int device) const;
  void harvest();
  /// Class-major, tenant-round-robin pull: the highest-priority head among
  /// all tenant queues, tenants rotating within a class.
  [[nodiscard]] std::optional<Request> pop_next_request();
  support::Status dispatch(Batch batch,
                           std::optional<int> pinned = std::nullopt);
  void finalize(InFlight inflight, sim::Tick done_tick);
  void prune_logs();

  SchedulerParams params_;
  rt::CimRuntime& runtime_;
  Batcher batcher_;
  AdmissionController admission_;

  std::map<std::uint32_t, std::deque<Request>> tenants_;
  std::vector<std::uint32_t> ring_;  ///< tenant ids, first-seen order
  std::size_t ring_cursor_ = 0;
  std::size_t place_cursor_ = 0;  ///< rotates shortest-queue tie-breaks
  std::atomic<std::uint64_t> next_id_{1};
  std::uint64_t queued_ = 0;

  /// Cross-thread submission path: per-shard rings plus per-shard simulated
  /// submitter clocks (each advanced by submit_cost per push, so N threads
  /// submit N-wide in simulated time).
  support::ShardedRing<Request> submit_ring_;
  struct alignas(64) SubmitClock {
    std::atomic<sim::Tick> t{0};
  };
  SubmitClock submit_clocks_[support::kStatShards];

  std::vector<InFlight> inflight_;
  /// Closed batches awaiting accelerator capacity, kept in (deadline class,
  /// oldest member) order. pump() dispatches from the front while any
  /// compute queue has room, so one tenant's backlog cannot head-of-line
  /// block a later higher-priority batch behind a full queue.
  std::vector<Batch> pending_dispatch_;
  /// Per-device completion log fed by the accelerator observers:
  /// (completed-jobs count, tick) per job-done interrupt.
  std::vector<std::vector<std::pair<std::uint64_t, sim::Tick>>> logs_;

  std::vector<Completion> completions_;
  /// Sharded: finalize() records from the driver thread today, but the
  /// shards let a future parallel retirement path (and concurrent readers
  /// taking merged snapshots) proceed without a global histogram lock.
  support::ShardedLatencyHistogram class_latency_[kDeadlineClasses];
  std::map<std::uint32_t, support::ShardedLatencyHistogram> tenant_latency_;

  support::ShardedCounter submitted_;
  support::ShardedCounter rejected_;
  support::Counter completed_;
  support::Counter launches_;
  support::Counter batched_launches_;
  support::Counter coalesced_requests_;
  support::Counter affinity_routed_;
  support::Counter queue_routed_;
  support::Counter far_routed_;
  support::Counter host_launches_;
};

}  // namespace tdo::serve
