// Dynamic batch formation for the serving scheduler.
//
// Same-shape requests against the same stationary operand coalesce into one
// sgemm_batched launch: the crossbar programs the shared weights once (or
// not at all on a residency hit), the per-job setup and driver round trips
// amortize across the batch, and the device sees one table-driven job
// instead of B separate ones. A batch closes when it reaches `max_batch`
// requests or its oldest member has waited `max_wait` — the classic
// dynamic-batching tradeoff between amortization and added queueing delay.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "serve/request.hpp"
#include "support/units.hpp"

namespace tdo::serve {

/// Coalescing identity: requests batch together iff every field matches
/// (sgemm_batched requires shared dims, leading dimensions and scalars; a
/// shared `weights` pointer is what makes the stationary operand reusable
/// inside the launch).
struct BatchKey {
  Op op = Op::kSgemm;
  std::uint64_t m = 0, n = 0, k = 0;
  std::uint64_t lda = 0, ldb = 0, ldc = 0;
  float alpha = 1.0f, beta = 0.0f;
  sim::VirtAddr weights = 0;
  cim::StationaryOperand stationary = cim::StationaryOperand::kB;
  bool transpose = false;  ///< kSgemv only
  bool cacheable = true;

  [[nodiscard]] static BatchKey of(const Request& r) {
    // The weights are whichever operand stays programmed in the crossbar:
    // for sgemm, b under StationaryOperand::kB and a under kA; for sgemv
    // always the matrix (r.a — r.b is the streamed x vector).
    const sim::VirtAddr weights =
        r.op == Op::kSgemv
            ? r.a
            : (r.stationary == cim::StationaryOperand::kB ? r.b : r.a);
    return BatchKey{r.op, r.m, r.n, r.k, r.lda, r.ldb, r.ldc,
                    r.alpha, r.beta, weights, r.stationary,
                    r.op == Op::kSgemv && r.transpose, r.cacheable};
  }
  [[nodiscard]] bool operator==(const BatchKey& other) const {
    return op == other.op && m == other.m && n == other.n && k == other.k &&
           lda == other.lda && ldb == other.ldb && ldc == other.ldc &&
           alpha == other.alpha && beta == other.beta &&
           weights == other.weights && stationary == other.stationary &&
           transpose == other.transpose && cacheable == other.cacheable;
  }
};

/// A closed (dispatch-ready) or still-open batch.
struct Batch {
  BatchKey key;
  std::vector<Request> requests;
  /// Highest priority among members (a later interactive join promotes the
  /// whole batch) and the earliest member arrival (dispatch ordering).
  DeadlineClass deadline = DeadlineClass::kBatch;
  support::Duration oldest_enqueue;
};

struct BatcherParams {
  std::size_t max_batch = 8;
  /// Batch-close age bound, measured from the oldest member's *enqueue into
  /// the batcher* (not its arrival: a request that aged in an admission
  /// queue should not force-close an otherwise fresh batch).
  support::Duration max_wait = support::Duration::from_us(50.0);
};

class Batcher {
 public:
  explicit Batcher(BatcherParams params) : params_{params} {}

  /// Adds one request at time `now`, opening a batch for its key if none is
  /// open. A batch that reaches max_batch moves to the ready list, as does a
  /// batch at least half of max_batch whose priority a strictly-higher-class
  /// join just promoted (preemptive split: the interactive newcomer must not
  /// sit out the old members' age clock).
  void add(const Request& request, support::Duration now);

  /// Closes every open batch whose oldest member has waited >= max_wait,
  /// then returns all ready batches ordered by (deadline class, oldest
  /// member) — the dispatch order.
  [[nodiscard]] std::vector<Batch> take_ready(support::Duration now);

  /// Closes and returns everything (drain path), same ordering.
  [[nodiscard]] std::vector<Batch> take_all(support::Duration now);

  /// Earliest future tick at which an open batch will age out, if any open
  /// batch exists. Ready batches report "now" (dispatch immediately).
  [[nodiscard]] std::optional<support::Duration> next_close_time() const;

  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] const BatcherParams& params() const { return params_; }

  /// The one dispatch ordering (deadline class, then oldest member) —
  /// shared by take_ready() and the scheduler's pending-dispatch queue.
  [[nodiscard]] static bool dispatch_order(const Batch& a, const Batch& b) {
    if (a.deadline != b.deadline) return a.deadline < b.deadline;
    return a.oldest_enqueue < b.oldest_enqueue;
  }

 private:
  BatcherParams params_;
  std::vector<Batch> open_;
  std::vector<Batch> ready_;
};

}  // namespace tdo::serve
