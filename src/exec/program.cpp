#include "exec/program.hpp"

#include <sstream>

#include "ir/printer.hpp"

namespace tdo::exec {

namespace {

void print_operand(std::ostringstream& os, const OperandRef& op) {
  os << "cim_" << op.array;
  if (op.row_offset != 0 || op.col_offset != 0) {
    os << " + (" << op.row_offset << "*" << op.ld << " + " << op.col_offset
       << ")";
  }
}

}  // namespace

std::string Program::to_source() const {
  std::ostringstream os;
  os << "// program " << name << " (lowered)\n";
  for (const ProgramItem& item : items) {
    if (const auto* nest = std::get_if<HostNest>(&item)) {
      os << ir::to_source(nest->body, 0);
    } else if (const auto* init = std::get_if<CimInitOp>(&item)) {
      os << "polly_cimInit(" << init->device << ");\n";
    } else if (const auto* malloc_op = std::get_if<CimMallocOp>(&item)) {
      os << "polly_cimMalloc((void**)&cim_" << malloc_op->array << ", sizeof("
         << malloc_op->array << "));\n";
    } else if (const auto* h2d = std::get_if<CimHostToDevOp>(&item)) {
      if (h2d->footprint.whole()) {
        os << "polly_cimHostToDev(cim_" << h2d->array << ", " << h2d->array
           << ", sizeof(" << h2d->array << "));\n";
      } else {
        const CopyFootprint& fp = h2d->footprint;
        const std::string off = "4*(" + std::to_string(fp.row0) + "*ld_" +
                                h2d->array + " + " + std::to_string(fp.col0) +
                                ")";
        os << "polly_cimHostToDev2d(cim_" << h2d->array << " + " << off
           << ", " << h2d->array << " + " << off << ", /*pitch=*/4*ld_"
           << h2d->array << ", /*width=*/" << 4 * fp.cols << ", /*rows=*/"
           << fp.rows << ");\n";
      }
    } else if (const auto* d2h = std::get_if<CimDevToHostOp>(&item)) {
      if (d2h->footprint.whole()) {
        os << "polly_cimDevToHost(" << d2h->array << ", cim_" << d2h->array
           << ", sizeof(" << d2h->array << "));\n";
      } else {
        const CopyFootprint& fp = d2h->footprint;
        const std::string off = "4*(" + std::to_string(fp.row0) + "*ld_" +
                                d2h->array + " + " + std::to_string(fp.col0) +
                                ")";
        os << "polly_cimDevToHost2d(" << d2h->array << " + " << off
           << ", cim_" << d2h->array << " + " << off << ", /*pitch=*/4*ld_"
           << d2h->array << ", /*width=*/" << 4 * fp.cols << ", /*rows=*/"
           << fp.rows << ");\n";
      }
    } else if (const auto* free_op = std::get_if<CimFreeOp>(&item)) {
      os << "polly_cimFree(cim_" << free_op->array << ");\n";
    } else if (std::get_if<CimSyncOp>(&item) != nullptr) {
      os << "polly_cimSynchronize();\n";
    } else if (const auto* gemm = std::get_if<CimGemmOp>(&item)) {
      os << "polly_cimBlasSGemm(0, 0, " << gemm->m << ", " << gemm->n << ", "
         << gemm->k << ", &alpha /*" << gemm->alpha << "*/, ";
      print_operand(os, gemm->a);
      os << ", " << gemm->a.ld << ", ";
      print_operand(os, gemm->b);
      os << ", " << gemm->b.ld << ", &beta /*" << gemm->beta << "*/, ";
      print_operand(os, gemm->c);
      os << ", " << gemm->c.ld << ");\n";
    } else if (const auto* gemv = std::get_if<CimGemvOp>(&item)) {
      os << "polly_cimBlasSGemv(" << (gemv->transpose ? 1 : 0) << ", "
         << gemv->m << ", " << gemv->n << ", &alpha /*" << gemv->alpha
         << "*/, ";
      print_operand(os, gemv->a);
      os << ", " << gemv->a.ld << ", cim_" << gemv->x << ", &beta /*"
         << gemv->beta << "*/, cim_" << gemv->y << ");\n";
    } else if (const auto* batched = std::get_if<CimGemmBatchedOp>(&item)) {
      os << "polly_cimBlasGemmBatched(" << batched->m << ", " << batched->n
         << ", " << batched->k << ", &alpha /*" << batched->alpha << "*/, {";
      for (std::size_t i = 0; i < batched->a.size(); ++i) {
        if (i > 0) os << ", ";
        print_operand(os, batched->a[i]);
      }
      os << "}, " << batched->lda << ", {";
      for (std::size_t i = 0; i < batched->b.size(); ++i) {
        if (i > 0) os << ", ";
        print_operand(os, batched->b[i]);
      }
      os << "}, " << batched->ldb << ", &beta /*" << batched->beta << "*/, {";
      for (std::size_t i = 0; i < batched->c.size(); ++i) {
        if (i > 0) os << ", ";
        print_operand(os, batched->c[i]);
      }
      os << "}, " << batched->ldc << ", /*batch=*/" << batched->a.size()
         << ", /*stationary=*/"
         << (batched->stationary == cim::StationaryOperand::kA ? "A" : "B")
         << ");\n";
    }
  }
  return os.str();
}

Program host_only_program(const ir::Function& fn) {
  Program program;
  program.name = fn.name;
  program.arrays = fn.arrays;
  program.scalars = fn.scalars;
  program.items.push_back(HostNest{fn.body});
  return program;
}

}  // namespace tdo::exec
