// Executable program representation — the "imperative AST" the mid-level
// optimizer lowers schedule trees back into (paper Fig. 4).
//
// A program is a sequence of items: host loop nests (interpreted against the
// host cost model) and runtime calls (dispatched to the CIM runtime library),
// mirroring Listing 1's generated code where a GEMM nest is swapped for
// polly_cim* calls.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "cim/context_regs.hpp"
#include "ir/program.hpp"

namespace tdo::exec {

/// polly_cimInit(device)
struct CimInitOp {
  int device = 0;
};

/// polly_cimMalloc(&buf, bytes) for a named IR array.
struct CimMallocOp {
  std::string array;
};

/// The element sub-rectangle of an array a copy actually needs to move —
/// derived by the pipeline as the union of the device-op footprints on that
/// array. `rows == 0` means the whole array (the conservative default). A
/// proper sub-rectangle lowers to a pitched polly_cim*2d transfer whose
/// segment chain the transfer engine derives from the footprint.
struct CopyFootprint {
  std::uint64_t row0 = 0;
  std::uint64_t col0 = 0;
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;

  [[nodiscard]] bool whole() const { return rows == 0; }
};

/// polly_cimHostToDev(dev(array), host(array), bytes)
struct CimHostToDevOp {
  std::string array;
  CopyFootprint footprint;
};

/// polly_cimDevToHost(host(array), dev(array), bytes)
struct CimDevToHostOp {
  std::string array;
  CopyFootprint footprint;
};

/// polly_cimFree(dev(array))
struct CimFreeOp {
  std::string array;
};

/// polly_cimSynchronize(): stream barrier. The pipeline emits one before
/// host code (or a copy-back) consumes data produced by asynchronous
/// device calls.
struct CimSyncOp {};

/// One GEMM operand binding: array name + row/col offsets into it (for
/// compiler-tiled calls) + leading dimension.
struct OperandRef {
  std::string array;
  std::uint64_t row_offset = 0;
  std::uint64_t col_offset = 0;
  std::uint64_t ld = 0;
};

/// polly_cimBlasSGemm(...): C = alpha*A*B + beta*C on device buffers.
struct CimGemmOp {
  std::uint64_t m = 0, n = 0, k = 0;
  float alpha = 1.0f, beta = 0.0f;
  OperandRef a, b, c;
  cim::StationaryOperand stationary = cim::StationaryOperand::kB;
  /// Stationary operand expected to recur: the runtime's weight-residency
  /// cache may keep it programmed across calls (CompileOptions::cache_weights).
  bool cacheable = false;
};

/// polly_cimBlasSGemv(...): y = alpha*op(A)*x + beta*y.
struct CimGemvOp {
  bool transpose = false;
  std::uint64_t m = 0, n = 0;
  float alpha = 1.0f, beta = 0.0f;
  OperandRef a;
  std::string x, y;
  bool cacheable = false;
};

/// polly_cimBlasGemmBatched(...): same-shape GEMMs, shared stationary reuse.
struct CimGemmBatchedOp {
  std::uint64_t m = 0, n = 0, k = 0;
  float alpha = 1.0f, beta = 0.0f;
  std::vector<OperandRef> a, b, c;  // parallel arrays
  std::uint64_t lda = 0, ldb = 0, ldc = 0;
  cim::StationaryOperand stationary = cim::StationaryOperand::kB;
  bool cacheable = false;
};

/// A host-executed loop nest (interpreted with the cost model).
struct HostNest {
  std::vector<ir::Node> body;
};

using ProgramItem =
    std::variant<HostNest, CimInitOp, CimMallocOp, CimHostToDevOp,
                 CimDevToHostOp, CimFreeOp, CimSyncOp, CimGemmOp, CimGemvOp,
                 CimGemmBatchedOp>;

/// Fully lowered program, executable by exec::Interpreter.
struct Program {
  std::string name;
  std::vector<ir::ArrayDecl> arrays;
  std::vector<ir::ScalarDecl> scalars;
  std::vector<ProgramItem> items;

  /// Renders the program as pseudo-C++ with polly_cim* calls (Listing 1).
  [[nodiscard]] std::string to_source() const;
};

/// Builds a pure-host program from an IR function (the -O3 baseline path).
[[nodiscard]] Program host_only_program(const ir::Function& fn);

}  // namespace tdo::exec
