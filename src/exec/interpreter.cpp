#include "exec/interpreter.hpp"

#include <cassert>
#include <memory>

#include "support/log.hpp"

namespace tdo::exec {

using support::Status;
using support::StatusOr;

// ---------------------------------------------------------------------------
// Prepared executable form
// ---------------------------------------------------------------------------

struct Interpreter::PreparedExpr {
  enum class Kind { kLoad, kConst, kBin };
  Kind kind = Kind::kConst;
  // kLoad
  const ArrayInfo* array = nullptr;
  PreparedAffine offset;
  // kConst (also used for scalar params, resolved at prepare time)
  double value = 0.0;
  // kBin
  ir::BinOpKind op = ir::BinOpKind::kAdd;
  std::unique_ptr<PreparedExpr> lhs;
  std::unique_ptr<PreparedExpr> rhs;
};

struct Interpreter::PreparedStmt {
  const ArrayInfo* array = nullptr;
  PreparedAffine offset;
  bool accumulate = false;
  /// lhs address is invariant in the innermost enclosing loop: -O3 keeps the
  /// accumulator in a register, so no per-iteration lhs load/store occurs.
  bool lhs_promoted = false;
  std::unique_ptr<PreparedExpr> rhs;
  // Static per-execution instruction counts.
  std::uint32_t fp_ops = 0;
  std::uint32_t addr_int_ops = 0;
};

struct Interpreter::PreparedLoop {
  int slot = 0;
  PreparedAffine lower;
  PreparedBound upper;
  std::int64_t step = 1;
  std::vector<PreparedNode> body;
};

struct Interpreter::PreparedNode {
  std::variant<PreparedLoop, PreparedStmt> value;
};

Interpreter::Interpreter(sim::System& system, rt::CimRuntime* runtime,
                         CostModelParams cost)
    : system_{system}, runtime_{runtime}, cost_{cost} {}

Interpreter::ArrayInfo* Interpreter::find_array(const std::string& name) {
  const auto it = arrays_.find(name);
  return it == arrays_.end() ? nullptr : &it->second;
}

const Interpreter::ArrayInfo* Interpreter::find_array(
    const std::string& name) const {
  const auto it = arrays_.find(name);
  return it == arrays_.end() ? nullptr : &it->second;
}

Status Interpreter::prepare(const Program& program) {
  if (prepared_) return Status::ok();
  for (const ir::ArrayDecl& decl : program.arrays) {
    auto va = system_.mmu().allocate(static_cast<std::uint64_t>(decl.bytes()));
    if (!va.is_ok()) return va.status();
    arrays_[decl.name] = ArrayInfo{decl, *va, 0};
  }
  for (const ir::ScalarDecl& s : program.scalars) scalars_[s.name] = s.value;
  prepared_ = true;
  return Status::ok();
}

Status Interpreter::set_array(const std::string& name,
                              std::span<const float> data) {
  const ArrayInfo* info = find_array(name);
  if (info == nullptr) return support::not_found("unknown array " + name);
  if (static_cast<std::int64_t>(data.size()) != info->decl.element_count()) {
    return support::invalid_argument("size mismatch setting " + name);
  }
  for (std::size_t i = 0; i < data.size(); ++i) {
    auto pa = system_.mmu().translate(info->host_va + i * 4);
    if (!pa.is_ok()) return pa.status();
    system_.memory().write_scalar<float>(*pa, data[i]);
  }
  return Status::ok();
}

StatusOr<std::vector<float>> Interpreter::get_array(const std::string& name) {
  const ArrayInfo* info = find_array(name);
  if (info == nullptr) return support::not_found("unknown array " + name);
  std::vector<float> out(static_cast<std::size_t>(info->decl.element_count()));
  for (std::size_t i = 0; i < out.size(); ++i) {
    auto pa = system_.mmu().translate(info->host_va + i * 4);
    if (!pa.is_ok()) return pa.status();
    out[i] = system_.memory().read_scalar<float>(*pa);
  }
  return out;
}

StatusOr<sim::VirtAddr> Interpreter::host_address(const std::string& name) const {
  const ArrayInfo* info = find_array(name);
  if (info == nullptr) return support::not_found("unknown array " + name);
  return info->host_va;
}

StatusOr<sim::VirtAddr> Interpreter::dev_operand(const OperandRef& op,
                                                 bool whole) {
  const ArrayInfo* info = find_array(op.array);
  if (info == nullptr) return support::not_found("unknown array " + op.array);
  if (info->dev_va == 0) {
    return support::failed_precondition("array " + op.array +
                                        " has no device buffer");
  }
  if (whole) return info->dev_va;
  return info->dev_va + (op.row_offset * op.ld + op.col_offset) * 4;
}

Status Interpreter::run(const Program& program) {
  TDO_RETURN_IF_ERROR(prepare(program));
  for (const ProgramItem& item : program.items) {
    TDO_RETURN_IF_ERROR(exec_item(item));
  }
  // Terminal barrier: device calls dispatch asynchronously, so nothing may
  // remain in flight when the caller inspects results or the ROI closes.
  if (runtime_ != nullptr) TDO_RETURN_IF_ERROR(runtime_->synchronize());
  return Status::ok();
}

Status Interpreter::exec_item(const ProgramItem& item) {
  if (const auto* nest = std::get_if<HostNest>(&item)) {
    return exec_nest(nest->body);
  }
  if (runtime_ == nullptr) {
    return support::failed_precondition(
        "program contains CIM runtime calls but no runtime is attached");
  }
  if (const auto* init = std::get_if<CimInitOp>(&item)) {
    return runtime_->init(init->device);
  }
  if (const auto* malloc_op = std::get_if<CimMallocOp>(&item)) {
    ArrayInfo* info = find_array(malloc_op->array);
    if (info == nullptr) return support::not_found(malloc_op->array);
    auto va =
        runtime_->malloc_device(static_cast<std::uint64_t>(info->decl.bytes()));
    if (!va.is_ok()) return va.status();
    info->dev_va = *va;
    return Status::ok();
  }
  // Copies with a derived footprint move only the sub-rectangle the device
  // ops actually touch, as a pitched transfer whose scatter-gather segment
  // chain the runtime's transfer engine derives; whole-array copies keep the
  // flat path.
  if (const auto* h2d = std::get_if<CimHostToDevOp>(&item)) {
    ArrayInfo* info = find_array(h2d->array);
    if (info == nullptr) return support::not_found(h2d->array);
    if (!h2d->footprint.whole()) {
      const CopyFootprint& fp = h2d->footprint;
      const auto ld = static_cast<std::uint64_t>(
          info->decl.dims.size() >= 2 ? info->decl.dims[1] : info->decl.dims[0]);
      const std::uint64_t off = (fp.row0 * ld + fp.col0) * 4;
      return runtime_->host_to_dev_2d(info->dev_va + off, info->host_va + off,
                                      ld * 4, fp.cols * 4, fp.rows);
    }
    return runtime_->host_to_dev(info->dev_va, info->host_va,
                                 static_cast<std::uint64_t>(info->decl.bytes()));
  }
  if (const auto* d2h = std::get_if<CimDevToHostOp>(&item)) {
    ArrayInfo* info = find_array(d2h->array);
    if (info == nullptr) return support::not_found(d2h->array);
    if (!d2h->footprint.whole()) {
      const CopyFootprint& fp = d2h->footprint;
      const auto ld = static_cast<std::uint64_t>(
          info->decl.dims.size() >= 2 ? info->decl.dims[1] : info->decl.dims[0]);
      const std::uint64_t off = (fp.row0 * ld + fp.col0) * 4;
      return runtime_->dev_to_host_2d(info->host_va + off, info->dev_va + off,
                                      ld * 4, fp.cols * 4, fp.rows);
    }
    return runtime_->dev_to_host(info->host_va, info->dev_va,
                                 static_cast<std::uint64_t>(info->decl.bytes()));
  }
  if (const auto* free_op = std::get_if<CimFreeOp>(&item)) {
    ArrayInfo* info = find_array(free_op->array);
    if (info == nullptr) return support::not_found(free_op->array);
    const Status s = runtime_->free_device(info->dev_va);
    info->dev_va = 0;
    return s;
  }
  if (std::get_if<CimSyncOp>(&item) != nullptr) {
    return runtime_->synchronize();
  }
  // Kernel calls AND copies dispatch asynchronously through the runtime's
  // command stream: tile jobs from consecutive calls pipeline across the
  // accelerator work queues, eligible copies ride the stream as DMA
  // commands, and the elapsed time the ROI observes is the overlapped
  // schedule, not a sum of synchronous round trips. Full drains happen at
  // CimSyncOp barriers (emitted by the compiler where host nests consume
  // in-flight data) and at the end of run(); copies and frees drain only
  // when their rectangles actually overlap in-flight work.
  if (const auto* gemm = std::get_if<CimGemmOp>(&item)) {
    auto a = dev_operand(gemm->a);
    if (!a.is_ok()) return a.status();
    auto b = dev_operand(gemm->b);
    if (!b.is_ok()) return b.status();
    auto c = dev_operand(gemm->c);
    if (!c.is_ok()) return c.status();
    return runtime_->sgemm_async(gemm->m, gemm->n, gemm->k, gemm->alpha, *a,
                                 gemm->a.ld, *b, gemm->b.ld, gemm->beta, *c,
                                 gemm->c.ld, gemm->stationary, gemm->cacheable);
  }
  if (const auto* gemv = std::get_if<CimGemvOp>(&item)) {
    auto a = dev_operand(gemv->a);
    if (!a.is_ok()) return a.status();
    const ArrayInfo* x = find_array(gemv->x);
    const ArrayInfo* y = find_array(gemv->y);
    if (x == nullptr || y == nullptr) return support::not_found("gemv vectors");
    if (x->dev_va == 0 || y->dev_va == 0) {
      return support::failed_precondition("gemv vectors not on device");
    }
    return runtime_->sgemv_async(gemv->transpose, gemv->m, gemv->n, gemv->alpha,
                                 *a, gemv->a.ld, x->dev_va, gemv->beta,
                                 y->dev_va, gemv->cacheable);
  }
  if (const auto* batched = std::get_if<CimGemmBatchedOp>(&item)) {
    std::vector<rt::GemmBatchItem> items(batched->a.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
      auto a = dev_operand(batched->a[i]);
      if (!a.is_ok()) return a.status();
      auto b = dev_operand(batched->b[i]);
      if (!b.is_ok()) return b.status();
      auto c = dev_operand(batched->c[i]);
      if (!c.is_ok()) return c.status();
      items[i] = rt::GemmBatchItem{*a, *b, *c};
    }
    return runtime_->sgemm_batched_async(
        batched->m, batched->n, batched->k, batched->alpha, items,
        batched->lda, batched->ldb, batched->beta, batched->ldc,
        batched->stationary, batched->cacheable);
  }
  return support::unimplemented("unknown program item");
}

// ---------------------------------------------------------------------------
// Host nest preparation + execution
// ---------------------------------------------------------------------------

Status Interpreter::exec_nest(const std::vector<ir::Node>& body) {
  // --- prepare: resolve names to slots/addresses once ---
  struct PrepareContext {
    std::map<std::string, int> slots;
  } ctx;

  std::function<Status(const ir::AffineExpr&, PreparedAffine*)> prep_affine =
      [&](const ir::AffineExpr& e, PreparedAffine* out) -> Status {
    out->constant = e.constant_term();
    out->terms.clear();
    for (const auto& [name, coeff] : e.coeffs()) {
      const auto it = ctx.slots.find(name);
      if (it == ctx.slots.end()) {
        return support::internal_error("unbound iv " + name);
      }
      out->terms.emplace_back(it->second, coeff);
    }
    return Status::ok();
  };

  auto prep_access = [&](const std::string& array,
                         const std::vector<ir::AffineExpr>& subs,
                         const ArrayInfo** info_out,
                         PreparedAffine* offset) -> Status {
    const ArrayInfo* info = find_array(array);
    if (info == nullptr) return support::not_found("array " + array);
    *info_out = info;
    // offset = sum_d subs[d] * stride_d with row-major strides.
    ir::AffineExpr flat;
    std::int64_t stride = 1;
    for (std::size_t d = info->decl.dims.size(); d-- > 0;) {
      flat += subs[d] * stride;
      stride *= info->decl.dims[d];
    }
    return prep_affine(flat, offset);
  };

  std::function<StatusOr<std::unique_ptr<PreparedExpr>>(const ir::ExprPtr&,
                                                        std::uint32_t*,
                                                        std::uint32_t*)>
      prep_expr = [&](const ir::ExprPtr& e, std::uint32_t* fp_ops,
                      std::uint32_t* loads)
      -> StatusOr<std::unique_ptr<PreparedExpr>> {
    auto out = std::make_unique<PreparedExpr>();
    if (const auto* load = std::get_if<ir::LoadExpr>(&e->node)) {
      out->kind = PreparedExpr::Kind::kLoad;
      TDO_RETURN_IF_ERROR(
          prep_access(load->array, load->subscripts, &out->array, &out->offset));
      ++*loads;
      return out;
    }
    if (const auto* c = std::get_if<ir::ConstExpr>(&e->node)) {
      out->kind = PreparedExpr::Kind::kConst;
      out->value = c->value;
      return out;
    }
    if (const auto* p = std::get_if<ir::ParamExpr>(&e->node)) {
      const auto it = scalars_.find(p->name);
      if (it == scalars_.end()) return support::not_found("scalar " + p->name);
      out->kind = PreparedExpr::Kind::kConst;
      out->value = it->second;
      return out;
    }
    if (const auto* bin = std::get_if<ir::BinExpr>(&e->node)) {
      out->kind = PreparedExpr::Kind::kBin;
      out->op = bin->op;
      auto lhs = prep_expr(bin->lhs, fp_ops, loads);
      if (!lhs.is_ok()) return lhs.status();
      auto rhs = prep_expr(bin->rhs, fp_ops, loads);
      if (!rhs.is_ok()) return rhs.status();
      out->lhs = std::move(lhs).value();
      out->rhs = std::move(rhs).value();
      ++*fp_ops;
      return out;
    }
    return support::unimplemented(
        "non-affine expression reached the interpreter");
  };

  std::function<StatusOr<std::vector<PreparedNode>>(const std::vector<ir::Node>&,
                                                    int)>
      prep_body = [&](const std::vector<ir::Node>& nodes,
                      int depth) -> StatusOr<std::vector<PreparedNode>> {
    std::vector<PreparedNode> out;
    out.reserve(nodes.size());
    for (const ir::Node& node : nodes) {
      if (node.is_loop()) {
        const ir::Loop& loop = node.loop();
        if (depth >= 30) {
          return support::invalid_argument("loop nest deeper than 30");
        }
        PreparedLoop prepared;
        prepared.slot = depth;
        TDO_RETURN_IF_ERROR(prep_affine(loop.lower, &prepared.lower));
        ctx.slots[loop.iv] = depth;
        TDO_RETURN_IF_ERROR(prep_affine(loop.upper.expr, &prepared.upper.expr));
        if (loop.upper.min_with.has_value()) {
          prepared.upper.has_min = true;
          TDO_RETURN_IF_ERROR(
              prep_affine(*loop.upper.min_with, &prepared.upper.min_with));
        }
        prepared.step = loop.step;
        auto body_nodes = prep_body(loop.body, depth + 1);
        if (!body_nodes.is_ok()) return body_nodes.status();
        prepared.body = std::move(body_nodes).value();
        ctx.slots.erase(loop.iv);
        PreparedNode pn;
        pn.value = std::move(prepared);
        out.push_back(std::move(pn));
      } else {
        const ir::Stmt& stmt = node.stmt();
        PreparedStmt prepared;
        prepared.accumulate = stmt.accumulate;
        TDO_RETURN_IF_ERROR(prep_access(stmt.lhs.array, stmt.lhs.subscripts,
                                        &prepared.array, &prepared.offset));
        std::uint32_t loads = 0;
        auto rhs = prep_expr(stmt.rhs, &prepared.fp_ops, &loads);
        if (!rhs.is_ok()) return rhs.status();
        prepared.rhs = std::move(rhs).value();
        if (stmt.accumulate) ++prepared.fp_ops;  // the += add
        if (cost_.promote_accumulators && stmt.accumulate && depth > 0) {
          const int innermost_slot = depth - 1;
          prepared.lhs_promoted = true;
          for (const auto& [slot, coeff] : prepared.offset.terms) {
            if (slot == innermost_slot && coeff != 0) {
              prepared.lhs_promoted = false;
            }
          }
        }
        const std::uint32_t lhs_accesses = prepared.lhs_promoted ? 0 : 1;
        prepared.addr_int_ops = (loads + lhs_accesses) * cost_.int_ops_per_access;
        PreparedNode pn;
        pn.value = std::move(prepared);
        out.push_back(std::move(pn));
      }
    }
    return out;
  };

  auto prepared = prep_body(body, 0);
  if (!prepared.is_ok()) return prepared.status();

  // --- execute ---
  auto& cpu = system_.cpu();
  auto& mmu = system_.mmu();
  auto& mem = system_.memory();
  std::vector<std::int64_t> env(32, 0);

  std::function<double(const PreparedExpr&)> eval =
      [&](const PreparedExpr& e) -> double {
    switch (e.kind) {
      case PreparedExpr::Kind::kConst:
        return e.value;
      case PreparedExpr::Kind::kLoad: {
        const std::int64_t off = e.offset.eval(env);
        const auto pa = mmu.translate(e.array->host_va +
                                      static_cast<std::uint64_t>(off) * 4);
        assert(pa.is_ok());
        cpu.load(*pa);
        return static_cast<double>(mem.read_scalar<float>(*pa));
      }
      case PreparedExpr::Kind::kBin: {
        const double l = eval(*e.lhs);
        const double r = eval(*e.rhs);
        switch (e.op) {
          case ir::BinOpKind::kAdd: return l + r;
          case ir::BinOpKind::kSub: return l - r;
          case ir::BinOpKind::kMul: return l * r;
          case ir::BinOpKind::kDiv: return l / r;
        }
        return 0.0;
      }
    }
    return 0.0;
  };

  std::function<Status(const std::vector<PreparedNode>&)> run_nodes =
      [&](const std::vector<PreparedNode>& nodes) -> Status {
    for (const PreparedNode& node : nodes) {
      if (const auto* loop = std::get_if<PreparedLoop>(&node.value)) {
        const std::int64_t lo = loop->lower.eval(env);
        std::uint32_t unroll_phase = 0;
        for (std::int64_t i = lo;; i += loop->step) {
          std::int64_t hi = loop->upper.expr.eval(env);
          if (loop->upper.has_min) {
            hi = std::min(hi, loop->upper.min_with.eval(env));
          }
          if (i >= hi) break;
          env[static_cast<std::size_t>(loop->slot)] = i;
          // Loop bookkeeping amortizes across the unroll factor at -O3.
          if (unroll_phase == 0) {
            cpu.issue(sim::InstBundle{.int_alu = cost_.loop_int_ops,
                                      .branches = cost_.loop_branches});
          }
          if (++unroll_phase >= cost_.unroll_factor) unroll_phase = 0;
          TDO_RETURN_IF_ERROR(run_nodes(loop->body));
        }
      } else {
        const auto& stmt = std::get<PreparedStmt>(node.value);
        ++stmts_executed_;
        double value = eval(*stmt.rhs);
        const std::int64_t off = stmt.offset.eval(env);
        const auto pa = mmu.translate(stmt.array->host_va +
                                      static_cast<std::uint64_t>(off) * 4);
        if (!pa.is_ok()) return pa.status();
        if (stmt.accumulate) {
          if (!stmt.lhs_promoted) cpu.load(*pa);
          value += static_cast<double>(mem.read_scalar<float>(*pa));
        }
        mem.write_scalar<float>(*pa, static_cast<float>(value));
        if (!stmt.lhs_promoted) cpu.store(*pa);
        cpu.issue(sim::InstBundle{.int_alu = stmt.addr_int_ops,
                                  .fp_ops = stmt.fp_ops});
      }
    }
    return Status::ok();
  };

  return run_nodes(*prepared);
}

}  // namespace tdo::exec
