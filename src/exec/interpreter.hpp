// Interpreter: executes lowered programs on the simulated platform.
//
// Host nests run statement-by-statement against the host CPU cost model
// (instructions, cache-accurate stalls, 128 pJ/inst energy); runtime-call
// items dispatch into the CIM runtime library, which drives the accelerator
// model. This is the back-end stand-in of the compilation flow (Fig. 4): the
// "executable" produced by the compiler is a Program, and running it is the
// gem5 full-system simulation of the paper.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exec/program.hpp"
#include "runtime/cim_blas.hpp"
#include "sim/system.hpp"
#include "support/status.hpp"

namespace tdo::exec {

/// Per-statement instruction accounting knobs (documented in DESIGN.md §5).
/// Defaults model what -O3 emits for an in-order Arm core: reduction
/// accumulators live in registers (no per-iteration load/store of the lhs
/// when its address is loop-invariant) and loop/branch overhead amortizes
/// over the unroll factor.
struct CostModelParams {
  std::uint32_t int_ops_per_access = 1;  // folded addressing arithmetic
  std::uint32_t loop_int_ops = 1;        // induction increment
  std::uint32_t loop_branches = 1;       // backedge compare+branch
  std::uint32_t unroll_factor = 4;       // -O3 unrolling amortization
  bool promote_accumulators = true;      // register-promote invariant lhs
};

class Interpreter {
 public:
  /// `runtime` may be null for host-only programs; executing a runtime call
  /// without it is an error.
  Interpreter(sim::System& system, rt::CimRuntime* runtime,
              CostModelParams cost = {});

  /// Allocates host backing for every array and executes all items.
  [[nodiscard]] support::Status run(const Program& program);

  /// Functional (uncharged) array IO, used by harnesses to set inputs before
  /// run() and read outputs after — the ROI covers only the kernel itself.
  support::Status set_array(const std::string& name, std::span<const float> data);
  [[nodiscard]] support::StatusOr<std::vector<float>> get_array(
      const std::string& name);

  /// Host virtual address of an array (valid after run()/prepare()).
  [[nodiscard]] support::StatusOr<sim::VirtAddr> host_address(
      const std::string& name) const;

  /// Pre-allocates arrays without executing (lets harnesses set inputs).
  [[nodiscard]] support::Status prepare(const Program& program);

  [[nodiscard]] std::uint64_t statements_executed() const { return stmts_executed_; }

 private:
  struct ArrayInfo {
    ir::ArrayDecl decl;
    sim::VirtAddr host_va = 0;
    sim::VirtAddr dev_va = 0;  // 0 until CimMallocOp
  };

  // --- prepared (slot-resolved) executable form of a host nest ---
  struct PreparedAffine {
    std::int64_t constant = 0;
    std::vector<std::pair<int, std::int64_t>> terms;  // (slot, coeff)
    [[nodiscard]] std::int64_t eval(const std::vector<std::int64_t>& env) const {
      std::int64_t v = constant;
      for (const auto& [slot, coeff] : terms) v += coeff * env[slot];
      return v;
    }
  };
  struct PreparedBound {
    PreparedAffine expr;
    bool has_min = false;
    PreparedAffine min_with;
  };
  struct PreparedExpr;  // tree
  struct PreparedStmt;
  struct PreparedLoop;
  struct PreparedNode;

  support::Status exec_item(const ProgramItem& item);
  support::Status exec_nest(const std::vector<ir::Node>& body);

  [[nodiscard]] ArrayInfo* find_array(const std::string& name);
  [[nodiscard]] const ArrayInfo* find_array(const std::string& name) const;
  [[nodiscard]] support::StatusOr<sim::VirtAddr> dev_operand(const OperandRef& op,
                                                             bool whole = false);

  sim::System& system_;
  rt::CimRuntime* runtime_;
  CostModelParams cost_;
  std::map<std::string, ArrayInfo> arrays_;
  std::map<std::string, double> scalars_;
  std::uint64_t stmts_executed_ = 0;
  bool prepared_ = false;
};

}  // namespace tdo::exec
