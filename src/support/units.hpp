// Unit-safe quantities used across the simulator and energy models.
//
// The C++ Core Guidelines (P.1 "Express ideas directly in code") motivate
// strong types here: energies, durations and frequencies are never plain
// doubles in public interfaces, so a picojoule can not silently be added to a
// picosecond.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <ostream>
#include <string>

namespace tdo::support {

/// An amount of energy. Internally stored in picojoules (double), which keeps
/// every quantity in this project (femtojoules .. millijoules) well inside
/// the double mantissa.
class Energy {
 public:
  constexpr Energy() = default;

  [[nodiscard]] static constexpr Energy from_fj(double fj) { return Energy{fj * 1e-3}; }
  [[nodiscard]] static constexpr Energy from_pj(double pj) { return Energy{pj}; }
  [[nodiscard]] static constexpr Energy from_nj(double nj) { return Energy{nj * 1e3}; }
  [[nodiscard]] static constexpr Energy from_uj(double uj) { return Energy{uj * 1e6}; }
  [[nodiscard]] static constexpr Energy from_mj(double mj) { return Energy{mj * 1e9}; }
  [[nodiscard]] static constexpr Energy from_joule(double j) { return Energy{j * 1e12}; }
  [[nodiscard]] static constexpr Energy zero() { return Energy{}; }

  [[nodiscard]] constexpr double femtojoules() const { return pj_ * 1e3; }
  [[nodiscard]] constexpr double picojoules() const { return pj_; }
  [[nodiscard]] constexpr double nanojoules() const { return pj_ * 1e-3; }
  [[nodiscard]] constexpr double microjoules() const { return pj_ * 1e-6; }
  [[nodiscard]] constexpr double millijoules() const { return pj_ * 1e-9; }
  [[nodiscard]] constexpr double joules() const { return pj_ * 1e-12; }

  constexpr Energy& operator+=(Energy other) {
    pj_ += other.pj_;
    return *this;
  }
  constexpr Energy& operator-=(Energy other) {
    pj_ -= other.pj_;
    return *this;
  }
  constexpr Energy& operator*=(double k) {
    pj_ *= k;
    return *this;
  }

  friend constexpr Energy operator+(Energy a, Energy b) { return Energy{a.pj_ + b.pj_}; }
  friend constexpr Energy operator-(Energy a, Energy b) { return Energy{a.pj_ - b.pj_}; }
  friend constexpr Energy operator*(Energy a, double k) { return Energy{a.pj_ * k}; }
  friend constexpr Energy operator*(double k, Energy a) { return Energy{a.pj_ * k}; }
  friend constexpr Energy operator/(Energy a, double k) { return Energy{a.pj_ / k}; }
  /// Dimensionless ratio of two energies (e.g. host / accelerator).
  friend constexpr double operator/(Energy a, Energy b) { return a.pj_ / b.pj_; }
  friend constexpr auto operator<=>(Energy a, Energy b) = default;

  /// Human-readable rendering with an auto-selected SI prefix.
  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr Energy(double pj) : pj_{pj} {}
  double pj_ = 0.0;
};

/// A span of simulated time. Stored in picoseconds (double); the event queue
/// uses integral ticks (1 tick == 1 ps) derived from this.
class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration from_ps(double ps) { return Duration{ps}; }
  [[nodiscard]] static constexpr Duration from_ns(double ns) { return Duration{ns * 1e3}; }
  [[nodiscard]] static constexpr Duration from_us(double us) { return Duration{us * 1e6}; }
  [[nodiscard]] static constexpr Duration from_ms(double ms) { return Duration{ms * 1e9}; }
  [[nodiscard]] static constexpr Duration from_sec(double s) { return Duration{s * 1e12}; }
  [[nodiscard]] static constexpr Duration zero() { return Duration{}; }

  [[nodiscard]] constexpr double picoseconds() const { return ps_; }
  [[nodiscard]] constexpr double nanoseconds() const { return ps_ * 1e-3; }
  [[nodiscard]] constexpr double microseconds() const { return ps_ * 1e-6; }
  [[nodiscard]] constexpr double milliseconds() const { return ps_ * 1e-9; }
  [[nodiscard]] constexpr double seconds() const { return ps_ * 1e-12; }
  [[nodiscard]] constexpr std::uint64_t ticks() const {
    return static_cast<std::uint64_t>(ps_ + 0.5);
  }

  constexpr Duration& operator+=(Duration other) {
    ps_ += other.ps_;
    return *this;
  }
  constexpr Duration& operator-=(Duration other) {
    ps_ -= other.ps_;
    return *this;
  }

  friend constexpr Duration operator+(Duration a, Duration b) { return Duration{a.ps_ + b.ps_}; }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration{a.ps_ - b.ps_}; }
  friend constexpr Duration operator*(Duration a, double k) { return Duration{a.ps_ * k}; }
  friend constexpr Duration operator*(double k, Duration a) { return Duration{a.ps_ * k}; }
  friend constexpr Duration operator/(Duration a, double k) { return Duration{a.ps_ / k}; }
  friend constexpr double operator/(Duration a, Duration b) { return a.ps_ / b.ps_; }
  friend constexpr auto operator<=>(Duration a, Duration b) = default;

  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr Duration(double ps) : ps_{ps} {}
  double ps_ = 0.0;
};

/// Clock frequency; converts between cycles and Duration.
class Frequency {
 public:
  constexpr Frequency() = default;

  [[nodiscard]] static constexpr Frequency from_hz(double hz) { return Frequency{hz}; }
  [[nodiscard]] static constexpr Frequency from_mhz(double mhz) { return Frequency{mhz * 1e6}; }
  [[nodiscard]] static constexpr Frequency from_ghz(double ghz) { return Frequency{ghz * 1e9}; }

  [[nodiscard]] constexpr double hertz() const { return hz_; }
  [[nodiscard]] constexpr double megahertz() const { return hz_ * 1e-6; }
  [[nodiscard]] constexpr double gigahertz() const { return hz_ * 1e-9; }

  [[nodiscard]] constexpr Duration period() const { return Duration::from_sec(1.0 / hz_); }
  [[nodiscard]] constexpr Duration cycles(double n) const {
    return Duration::from_sec(n / hz_);
  }
  /// Number of (fractional) cycles elapsed during `d`.
  [[nodiscard]] constexpr double cycles_in(Duration d) const { return d.seconds() * hz_; }

  friend constexpr auto operator<=>(Frequency a, Frequency b) = default;

  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr Frequency(double hz) : hz_{hz} {}
  double hz_ = 0.0;
};

/// Energy-delay product; the paper's Figure 6 (right) metric.
[[nodiscard]] constexpr double energy_delay_product(Energy e, Duration d) {
  return e.joules() * d.seconds();
}

std::ostream& operator<<(std::ostream& os, Energy e);
std::ostream& operator<<(std::ostream& os, Duration d);
std::ostream& operator<<(std::ostream& os, Frequency f);

namespace literals {
constexpr Energy operator""_fJ(long double v) { return Energy::from_fj(static_cast<double>(v)); }
constexpr Energy operator""_pJ(long double v) { return Energy::from_pj(static_cast<double>(v)); }
constexpr Energy operator""_nJ(long double v) { return Energy::from_nj(static_cast<double>(v)); }
constexpr Energy operator""_uJ(long double v) { return Energy::from_uj(static_cast<double>(v)); }
constexpr Energy operator""_mJ(long double v) { return Energy::from_mj(static_cast<double>(v)); }
constexpr Energy operator""_fJ(unsigned long long v) { return Energy::from_fj(static_cast<double>(v)); }
constexpr Energy operator""_pJ(unsigned long long v) { return Energy::from_pj(static_cast<double>(v)); }
constexpr Energy operator""_nJ(unsigned long long v) { return Energy::from_nj(static_cast<double>(v)); }
constexpr Energy operator""_uJ(unsigned long long v) { return Energy::from_uj(static_cast<double>(v)); }
constexpr Energy operator""_mJ(unsigned long long v) { return Energy::from_mj(static_cast<double>(v)); }
constexpr Duration operator""_ps(long double v) { return Duration::from_ps(static_cast<double>(v)); }
constexpr Duration operator""_ns(long double v) { return Duration::from_ns(static_cast<double>(v)); }
constexpr Duration operator""_us(long double v) { return Duration::from_us(static_cast<double>(v)); }
constexpr Duration operator""_ms(long double v) { return Duration::from_ms(static_cast<double>(v)); }
constexpr Duration operator""_ps(unsigned long long v) { return Duration::from_ps(static_cast<double>(v)); }
constexpr Duration operator""_ns(unsigned long long v) { return Duration::from_ns(static_cast<double>(v)); }
constexpr Duration operator""_us(unsigned long long v) { return Duration::from_us(static_cast<double>(v)); }
constexpr Duration operator""_ms(unsigned long long v) { return Duration::from_ms(static_cast<double>(v)); }
constexpr Frequency operator""_MHz(long double v) { return Frequency::from_mhz(static_cast<double>(v)); }
constexpr Frequency operator""_GHz(long double v) { return Frequency::from_ghz(static_cast<double>(v)); }
constexpr Frequency operator""_MHz(unsigned long long v) { return Frequency::from_mhz(static_cast<double>(v)); }
constexpr Frequency operator""_GHz(unsigned long long v) { return Frequency::from_ghz(static_cast<double>(v)); }
}  // namespace literals

}  // namespace tdo::support
