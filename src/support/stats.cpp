#include "support/stats.hpp"

#include <iomanip>

namespace tdo::support {

StatsSnapshot StatsSnapshot::delta_since(const StatsSnapshot& earlier) const {
  StatsSnapshot out;
  for (const auto& [name, value] : counters) {
    const auto it = earlier.counters.find(name);
    const std::uint64_t before = it == earlier.counters.end() ? 0 : it->second;
    out.counters[name] = value - before;
  }
  for (const auto& [name, value] : energies_pj) {
    const auto it = earlier.energies_pj.find(name);
    const double before = it == earlier.energies_pj.end() ? 0.0 : it->second;
    out.energies_pj[name] = value - before;
  }
  return out;
}

std::uint64_t StatsSnapshot::counter_or(const std::string& name,
                                        std::uint64_t fallback) const {
  const auto it = counters.find(name);
  return it == counters.end() ? fallback : it->second;
}

Energy StatsSnapshot::energy_or(const std::string& name, Energy fallback) const {
  const auto it = energies_pj.find(name);
  return it == energies_pj.end() ? fallback : Energy::from_pj(it->second);
}

void StatsRegistry::register_counter(std::string name, const Counter* counter) {
  counters_.emplace_back(std::move(name), counter);
}

void StatsRegistry::register_energy(std::string name,
                                    const EnergyAccumulator* energy) {
  energies_.emplace_back(std::move(name), energy);
}

StatsSnapshot StatsRegistry::snapshot() const {
  StatsSnapshot snap;
  for (const auto& [name, counter] : counters_) snap.counters[name] = counter->value();
  for (const auto& [name, energy] : energies_) {
    snap.energies_pj[name] = energy->total().picojoules();
  }
  return snap;
}

void StatsRegistry::dump(std::ostream& os) const {
  for (const auto& [name, counter] : counters_) {
    os << std::left << std::setw(42) << name << counter->value() << '\n';
  }
  for (const auto& [name, energy] : energies_) {
    os << std::left << std::setw(42) << name << energy->total().to_string() << '\n';
  }
}

std::vector<std::string> StatsRegistry::counter_names() const {
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, _] : counters_) names.push_back(name);
  return names;
}

}  // namespace tdo::support
