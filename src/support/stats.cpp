#include "support/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <iomanip>

#include "support/threading.hpp"

namespace tdo::support {

namespace {
/// Buckets: [0, 32) exact, then one group of 32 linear sub-buckets per
/// octave up to 2^63.
constexpr std::size_t kHistogramSlots = 32 + (64 - 5) * 32;
}  // namespace

LatencyHistogram::LatencyHistogram() : buckets_(kHistogramSlots, 0) {}

std::size_t LatencyHistogram::bucket_index(std::uint64_t ps) {
  if (ps < kSubBuckets) return static_cast<std::size_t>(ps);
  // Highest set bit selects the octave; the next kSubBucketBits bits select
  // the linear sub-bucket within it.
  const int msb = 63 - std::countl_zero(ps);
  const int shift = msb - static_cast<int>(kSubBucketBits);
  const std::uint64_t sub = (ps >> shift) - kSubBuckets;  // in [0, 32)
  const std::uint64_t group = static_cast<std::uint64_t>(msb) - kSubBucketBits;
  return static_cast<std::size_t>(kSubBuckets + group * kSubBuckets + sub);
}

std::uint64_t LatencyHistogram::bucket_value(std::size_t index) {
  if (index < kSubBuckets) return index;
  const std::uint64_t group = (index - kSubBuckets) / kSubBuckets;
  const std::uint64_t sub = (index - kSubBuckets) % kSubBuckets;
  const int shift = static_cast<int>(group);
  const std::uint64_t lo = (kSubBuckets + sub) << shift;
  const std::uint64_t width = 1ull << shift;
  return lo + width / 2;  // midpoint of [lo, lo + width)
}

void LatencyHistogram::add(Duration d) {
  const std::uint64_t ps = d.ticks();
  buckets_[bucket_index(ps)] += 1;
  if (count_ == 0 || ps < min_ps_) min_ps_ = ps;
  if (count_ == 0 || ps > max_ps_) max_ps_ = ps;
  count_ += 1;
  sum_ps_ += static_cast<double>(ps);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ps_ < min_ps_) min_ps_ = other.min_ps_;
    if (count_ == 0 || other.max_ps_ > max_ps_) max_ps_ = other.max_ps_;
  }
  count_ += other.count_;
  sum_ps_ += other.sum_ps_;
}

void LatencyHistogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ps_ = 0.0;
  min_ps_ = 0;
  max_ps_ = 0;
}

Duration LatencyHistogram::min() const {
  return Duration::from_ps(static_cast<double>(min_ps_));
}

Duration LatencyHistogram::max() const {
  return Duration::from_ps(static_cast<double>(max_ps_));
}

Duration LatencyHistogram::mean() const {
  if (count_ == 0) return Duration::zero();
  return Duration::from_ps(sum_ps_ / static_cast<double>(count_));
}

Duration LatencyHistogram::quantile(double p) const {
  if (count_ == 0) return Duration::zero();
  p = std::clamp(p, 0.0, 1.0);
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(p * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // Clamp the representative into the recorded range so e.g. p100 of a
      // single sample returns exactly that sample.
      const std::uint64_t v =
          std::clamp(bucket_value(i), min_ps_, max_ps_);
      return Duration::from_ps(static_cast<double>(v));
    }
  }
  return Duration::from_ps(static_cast<double>(max_ps_));
}

StatsSnapshot StatsSnapshot::delta_since(const StatsSnapshot& earlier) const {
  StatsSnapshot out;
  for (const auto& [name, value] : counters) {
    const auto it = earlier.counters.find(name);
    const std::uint64_t before = it == earlier.counters.end() ? 0 : it->second;
    out.counters[name] = value - before;
  }
  for (const auto& [name, value] : energies_pj) {
    const auto it = earlier.energies_pj.find(name);
    const double before = it == earlier.energies_pj.end() ? 0.0 : it->second;
    out.energies_pj[name] = value - before;
  }
  return out;
}

std::uint64_t StatsSnapshot::counter_or(const std::string& name,
                                        std::uint64_t fallback) const {
  const auto it = counters.find(name);
  return it == counters.end() ? fallback : it->second;
}

Energy StatsSnapshot::energy_or(const std::string& name, Energy fallback) const {
  const auto it = energies_pj.find(name);
  return it == energies_pj.end() ? fallback : Energy::from_pj(it->second);
}

std::uint64_t StatsRegistry::Entry::value() const {
  return counter != nullptr ? counter->value() : sharded->value();
}

void StatsRegistry::register_counter(std::string name, const Counter* counter) {
  const std::lock_guard<std::mutex> lock{mutex_};
  counters_.push_back(Entry{std::move(name), counter, nullptr});
}

void StatsRegistry::register_counter(std::string name,
                                     const ShardedCounter* counter) {
  const std::lock_guard<std::mutex> lock{mutex_};
  counters_.push_back(Entry{std::move(name), nullptr, counter});
}

void StatsRegistry::register_energy(std::string name,
                                    const EnergyAccumulator* energy) {
  const std::lock_guard<std::mutex> lock{mutex_};
  energies_.emplace_back(std::move(name), energy);
}

void StatsRegistry::unregister_counter(const Counter* counter) {
  const std::lock_guard<std::mutex> lock{mutex_};
  counters_.erase(std::remove_if(counters_.begin(), counters_.end(),
                                 [counter](const Entry& entry) {
                                   return entry.counter == counter;
                                 }),
                  counters_.end());
}

void StatsRegistry::register_histogram(
    std::string name, const ShardedLatencyHistogram* histogram) {
  const std::lock_guard<std::mutex> lock{mutex_};
  histograms_.emplace_back(std::move(name), histogram);
}

void StatsRegistry::unregister_histogram(
    const ShardedLatencyHistogram* histogram) {
  const std::lock_guard<std::mutex> lock{mutex_};
  histograms_.erase(
      std::remove_if(histograms_.begin(), histograms_.end(),
                     [histogram](const auto& entry) {
                       return entry.second == histogram;
                     }),
      histograms_.end());
}

void StatsRegistry::unregister_counter(const ShardedCounter* counter) {
  const std::lock_guard<std::mutex> lock{mutex_};
  counters_.erase(std::remove_if(counters_.begin(), counters_.end(),
                                 [counter](const Entry& entry) {
                                   return entry.sharded == counter;
                                 }),
                  counters_.end());
}

StatsSnapshot StatsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  StatsSnapshot snap;
  for (const Entry& entry : counters_) snap.counters[entry.name] = entry.value();
  for (const auto& [name, energy] : energies_) {
    snap.energies_pj[name] = energy->total().picojoules();
  }
  for (const auto& [name, histogram] : histograms_) {
    const LatencyHistogram merged = histogram->merged();
    snap.counters[name + ".count"] = merged.count();
    snap.counters[name + ".sum_ps"] =
        static_cast<std::uint64_t>(merged.sum_ps());
    snap.counters[name + ".mean_ps"] =
        static_cast<std::uint64_t>(merged.mean().picoseconds());
    snap.counters[name + ".p50_ps"] =
        static_cast<std::uint64_t>(merged.quantile(0.50).picoseconds());
    snap.counters[name + ".p95_ps"] =
        static_cast<std::uint64_t>(merged.quantile(0.95).picoseconds());
    snap.counters[name + ".p99_ps"] =
        static_cast<std::uint64_t>(merged.quantile(0.99).picoseconds());
  }
  return snap;
}

void StatsRegistry::dump(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock{mutex_};
  for (const Entry& entry : counters_) {
    os << std::left << std::setw(42) << entry.name << entry.value() << '\n';
  }
  for (const auto& [name, energy] : energies_) {
    os << std::left << std::setw(42) << name << energy->total().to_string() << '\n';
  }
  for (const auto& [name, histogram] : histograms_) {
    const LatencyHistogram merged = histogram->merged();
    os << std::left << std::setw(42) << name << "n=" << merged.count()
       << " mean=" << merged.mean().to_string()
       << " p50=" << merged.quantile(0.50).to_string()
       << " p99=" << merged.quantile(0.99).to_string() << '\n';
  }
}

std::vector<std::string> StatsRegistry::counter_names() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const Entry& entry : counters_) names.push_back(entry.name);
  return names;
}

}  // namespace tdo::support
