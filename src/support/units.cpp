#include "support/units.hpp"

#include <array>
#include <cstdio>

namespace tdo::support {
namespace {

/// Renders `value` with the largest prefix that keeps the mantissa >= 1.
std::string with_si_prefix(double value, double unit_exponent,
                           const char* base_unit) {
  // value is expressed in units of 10^unit_exponent of the base unit.
  struct Prefix {
    double exponent;
    const char* name;
  };
  static constexpr std::array<Prefix, 9> kPrefixes = {{{-15, "f"},
                                                       {-12, "p"},
                                                       {-9, "n"},
                                                       {-6, "u"},
                                                       {-3, "m"},
                                                       {0, ""},
                                                       {3, "k"},
                                                       {6, "M"},
                                                       {9, "G"}}};
  const double absolute = std::abs(value) * std::pow(10.0, unit_exponent);
  const Prefix* best = &kPrefixes.front();
  for (const auto& p : kPrefixes) {
    if (absolute >= std::pow(10.0, p.exponent)) best = &p;
  }
  const double scaled =
      (value == 0.0) ? 0.0 : value * std::pow(10.0, unit_exponent - best->exponent);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4g %s%s", scaled, best->name, base_unit);
  return buf;
}

}  // namespace

std::string Energy::to_string() const { return with_si_prefix(pj_, -12, "J"); }
std::string Duration::to_string() const { return with_si_prefix(ps_, -12, "s"); }
std::string Frequency::to_string() const { return with_si_prefix(hz_, 0, "Hz"); }

std::ostream& operator<<(std::ostream& os, Energy e) { return os << e.to_string(); }
std::ostream& operator<<(std::ostream& os, Duration d) { return os << d.to_string(); }
std::ostream& operator<<(std::ostream& os, Frequency f) { return os << f.to_string(); }

}  // namespace tdo::support
