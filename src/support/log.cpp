#include "support/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace tdo::support {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<LogTap> g_tap{nullptr};
std::mutex g_sink_mutex;

}  // namespace

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_tap(LogTap tap) { g_tap.store(tap, std::memory_order_release); }

void log_message(LogLevel level, const char* component, const std::string& text) {
  if (level < log_level()) return;
  if (LogTap tap = g_tap.load(std::memory_order_acquire); tap != nullptr) {
    tap(level, component, text);
  }
  const std::scoped_lock lock(g_sink_mutex);
  std::fprintf(stderr, "[%-5s] %-10s %s\n", to_string(level), component, text.c_str());
}

}  // namespace tdo::support
