#include "support/threading.hpp"

namespace tdo::support {

namespace {
std::atomic<std::size_t> next_thread_id{0};
}  // namespace

std::size_t thread_shard_id() {
  thread_local const std::size_t id =
      next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace tdo::support
