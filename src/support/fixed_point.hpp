// Symmetric linear quantization helpers used by the CIM datapath.
//
// The accelerator stores weights as 8-bit values split across two 4-bit PCM
// columns and digitizes activations to 8 bits at the row buffers (Section
// II-B / IV-a of the paper). These helpers centralize the scale math so the
// crossbar model, the runtime and the error-bound tests agree exactly.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>

namespace tdo::support {

/// Symmetric int8 quantization parameters: real = scale * q, q in [-127,127].
struct QuantScale {
  double scale = 1.0;

  [[nodiscard]] static QuantScale for_max_abs(double max_abs) {
    // Guard against all-zero tensors: any scale works, 1.0 keeps math exact.
    if (max_abs <= 0.0) return {1.0};
    return {max_abs / 127.0};
  }

  [[nodiscard]] std::int8_t quantize(double real) const {
    const double q = std::nearbyint(real / scale);
    return static_cast<std::int8_t>(std::clamp(q, -127.0, 127.0));
  }

  [[nodiscard]] double dequantize(std::int64_t q) const {
    return static_cast<double>(q) * scale;
  }
};

/// Largest |x| over a span (0 for empty spans).
[[nodiscard]] inline double max_abs(std::span<const float> values) {
  double m = 0.0;
  for (const float v : values) m = std::max(m, static_cast<double>(std::fabs(v)));
  return m;
}

/// Splits a signed 8-bit weight into (msb, lsb) 4-bit magnitudes plus a sign,
/// matching the two-column crossbar layout: |w| = 16*msb + lsb, both in 0..15.
struct NibblePair {
  std::uint8_t msb = 0;
  std::uint8_t lsb = 0;
  std::int8_t sign = 1;  // +1 or -1
};

[[nodiscard]] inline NibblePair split_nibbles(std::int8_t w) {
  NibblePair out;
  const int magnitude = std::abs(static_cast<int>(w));
  out.sign = (w < 0) ? -1 : 1;
  out.msb = static_cast<std::uint8_t>(magnitude >> 4);
  out.lsb = static_cast<std::uint8_t>(magnitude & 0xF);
  return out;
}

[[nodiscard]] inline std::int8_t join_nibbles(const NibblePair& p) {
  const int magnitude = (static_cast<int>(p.msb) << 4) | static_cast<int>(p.lsb);
  return static_cast<std::int8_t>(p.sign * magnitude);
}

/// Analytic worst-case absolute error of a quantized dot product of length n:
/// |sum a_i b_i - s_a s_b sum qa_i qb_i| <= n * (|a|max * eb + |b|max * ea + ea*eb)
/// with ea = s_a/2, eb = s_b/2 the max rounding errors.
[[nodiscard]] inline double dot_quant_error_bound(double max_abs_a, double max_abs_b,
                                                  std::size_t n) {
  const double sa = QuantScale::for_max_abs(max_abs_a).scale;
  const double sb = QuantScale::for_max_abs(max_abs_b).scale;
  const double ea = sa * 0.5;
  const double eb = sb * 0.5;
  return static_cast<double>(n) * (max_abs_a * eb + max_abs_b * ea + ea * eb);
}

}  // namespace tdo::support
