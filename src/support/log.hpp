// Minimal leveled logger.
//
// Simulation components log through a single global sink so benches can mute
// everything below Warn while tests can raise verbosity per-case.
#pragma once

#include <sstream>
#include <string>

namespace tdo::support {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

[[nodiscard]] const char* to_string(LogLevel level);

/// Global log threshold; messages below it are discarded cheaply.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emits one formatted line (used by the TDO_LOG macro; rarely called raw).
void log_message(LogLevel level, const char* component, const std::string& text);

/// Optional secondary sink: every line that passes the global threshold is
/// also handed to the tap (obs/trace.hpp mirrors Warn+ lines onto the trace
/// timeline). A plain function pointer so installing/clearing is one atomic
/// store; pass nullptr to remove.
using LogTap = void (*)(LogLevel level, const char* component,
                        const std::string& text);
void set_log_tap(LogTap tap);

namespace detail {
/// Stream-collects one log statement, emitting on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, const char* component)
      : level_{level}, component_{component} {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, component_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace tdo::support

/// Usage: TDO_LOG(kInfo, "cim") << "wrote " << n << " cells";
#define TDO_LOG(level, component)                                        \
  if (::tdo::support::LogLevel::level < ::tdo::support::log_level()) {  \
  } else                                                                 \
    ::tdo::support::detail::LogLine(::tdo::support::LogLevel::level, component)
