#include "support/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace tdo::support {

void TextTable::set_header(std::vector<std::string> header) {
  assert(rows_.empty() && "header must precede rows");
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  assert((header_.empty() || row.size() == header_.size()) &&
         "row arity must match header");
  rows_.push_back(std::move(row));
}

std::string TextTable::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision + 3, value);
  // %g with generous precision, then trim: use fixed precision for readability
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string TextTable::fmt_ratio(double value) {
  char buf[64];
  if (value >= 100.0) {
    std::snprintf(buf, sizeof buf, "%.0fx", value);
  } else if (value >= 10.0) {
    std::snprintf(buf, sizeof buf, "%.1fx", value);
  } else {
    std::snprintf(buf, sizeof buf, "%.2fx", value);
  }
  return buf;
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::size_t total = 0;
  for (const auto w : widths) total += w + 3;

  os << "== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << row[i];
      for (std::size_t pad = row[i].size(); pad < widths[i] + 3; ++pad) os << ' ';
    }
    os << '\n';
  };
  if (!header_.empty()) {
    print_row(header_);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) print_row(row);
  os << '\n';
}

}  // namespace tdo::support
