// Hierarchically-named statistics, mirroring gem5's stats system in miniature.
//
// Every simulated component owns counters registered into a StatsRegistry;
// the evaluation harness snapshots registries around ROI markers, exactly the
// way the paper profiles "dynamic instruction count and run-time ... in Gem5
// by inserting ROI markers" (Section IV-a).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "support/units.hpp"

namespace tdo::support {

/// HDR-style latency histogram over Duration samples (picosecond ticks).
///
/// Values are bucketed log-linearly: 32 linear sub-buckets per power-of-two
/// octave, so every recorded value is represented with <= 1/32 (~3.1%)
/// relative error while the whole 0 .. ~584-year range fits in a fixed
/// ~2000-slot array. Values below 32 ps land in exact unit buckets. This is
/// the serving layer's tail-latency primitive: p50/p95/p99 queries are
/// nearest-rank over the bucket counts, and per-accelerator (or per-tenant)
/// histograms merge by bucket-wise addition without losing resolution.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void add(Duration d);
  void merge(const LatencyHistogram& other);
  void reset();

  [[nodiscard]] std::uint64_t count() const { return count_; }
  /// Exact sum of recorded picoseconds (integer-valued while the total stays
  /// under 2^53, i.e. any realistic run) — the windowed-mean primitive the
  /// SLO monitor differences across metrics samples.
  [[nodiscard]] double sum_ps() const { return sum_ps_; }
  [[nodiscard]] Duration min() const;
  [[nodiscard]] Duration max() const;
  [[nodiscard]] Duration mean() const;
  /// Nearest-rank quantile, p in [0, 1]: the representative value (bucket
  /// midpoint; exact below 32 ps) of the bucket holding the ceil(p * count)-th
  /// smallest sample. Returns zero on an empty histogram.
  [[nodiscard]] Duration quantile(double p) const;

 private:
  /// 32 linear sub-buckets per octave.
  static constexpr std::uint64_t kSubBuckets = 32;
  static constexpr std::uint64_t kSubBucketBits = 5;

  [[nodiscard]] static std::size_t bucket_index(std::uint64_t ps);
  /// Representative (midpoint) value of bucket `index`, in picoseconds.
  [[nodiscard]] static std::uint64_t bucket_value(std::size_t index);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ps_ = 0.0;
  std::uint64_t min_ps_ = 0;
  std::uint64_t max_ps_ = 0;
};

/// Monotonically increasing event count (instructions, cache misses, writes).
///
/// add() is a relaxed atomic increment, so completion observers and stats
/// snapshots running on different threads never tear or drop counts. For
/// counters on genuinely contended hot paths prefer ShardedCounter
/// (support/threading.hpp), which avoids the shared cache line entirely.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter& other)
      : value_{other.value_.load(std::memory_order_relaxed)} {}
  Counter& operator=(const Counter& other) {
    value_.store(other.value_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }

  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Accumulated energy attributable to one component.
class EnergyAccumulator {
 public:
  void add(Energy e) { total_ += e; }
  void reset() { total_ = Energy::zero(); }
  [[nodiscard]] Energy total() const { return total_; }

 private:
  Energy total_;
};

/// A named snapshot of every counter/energy in a registry.
struct StatsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> energies_pj;

  /// Per-entry difference `this - earlier` (for ROI deltas).
  [[nodiscard]] StatsSnapshot delta_since(const StatsSnapshot& earlier) const;

  [[nodiscard]] std::uint64_t counter_or(const std::string& name,
                                         std::uint64_t fallback = 0) const;
  [[nodiscard]] Energy energy_or(const std::string& name,
                                 Energy fallback = Energy::zero()) const;
};

class ShardedCounter;           // support/threading.hpp
class ShardedLatencyHistogram;  // support/threading.hpp

/// Registry of named stats. Components register members at construction; the
/// registry does not own them, so registrants must outlive it or deregister.
///
/// Registration and snapshotting are guarded by a mutex so schedulers and
/// benches on different threads can (de)register and snapshot concurrently.
/// Counter reads themselves are atomic, and sharded counters are merged at
/// snapshot time, so snapshot() totals are exact even while submitter
/// threads are still incrementing.
class StatsRegistry {
 public:
  void register_counter(std::string name, const Counter* counter);
  /// Sharded (per-thread) counter; snapshot() sums its shards on read.
  void register_counter(std::string name, const ShardedCounter* counter);
  void register_energy(std::string name, const EnergyAccumulator* energy);
  /// Latency histogram; snapshot()/dump() surface `<name>.count` plus
  /// mean/p50/p99 picosecond summaries derived at read time.
  void register_histogram(std::string name,
                          const ShardedLatencyHistogram* histogram);

  /// Deregisters every entry pointing at `counter` — registrants whose
  /// lifetime is shorter than the registry (e.g. a serving scheduler built
  /// on top of a long-lived runtime) must call this before dying, or a
  /// later snapshot() dereferences freed memory.
  void unregister_counter(const Counter* counter);
  void unregister_counter(const ShardedCounter* counter);
  /// Symmetric detach for histograms — short-lived registrants (a serving
  /// scheduler torn down before its runtime) must call this or a later
  /// snapshot() dereferences freed memory.
  void unregister_histogram(const ShardedLatencyHistogram* histogram);

  [[nodiscard]] StatsSnapshot snapshot() const;
  void dump(std::ostream& os) const;

  /// Names in registration order (stable output for tests and reports).
  [[nodiscard]] std::vector<std::string> counter_names() const;

 private:
  /// Exactly one of the pointers is set per entry.
  struct Entry {
    std::string name;
    const Counter* counter = nullptr;
    const ShardedCounter* sharded = nullptr;

    [[nodiscard]] std::uint64_t value() const;
  };

  mutable std::mutex mutex_;
  std::vector<Entry> counters_;
  std::vector<std::pair<std::string, const EnergyAccumulator*>> energies_;
  std::vector<std::pair<std::string, const ShardedLatencyHistogram*>>
      histograms_;
};

}  // namespace tdo::support
