// Hierarchically-named statistics, mirroring gem5's stats system in miniature.
//
// Every simulated component owns counters registered into a StatsRegistry;
// the evaluation harness snapshots registries around ROI markers, exactly the
// way the paper profiles "dynamic instruction count and run-time ... in Gem5
// by inserting ROI markers" (Section IV-a).
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "support/units.hpp"

namespace tdo::support {

/// Monotonically increasing event count (instructions, cache misses, writes).
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  void reset() { value_ = 0; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Accumulated energy attributable to one component.
class EnergyAccumulator {
 public:
  void add(Energy e) { total_ += e; }
  void reset() { total_ = Energy::zero(); }
  [[nodiscard]] Energy total() const { return total_; }

 private:
  Energy total_;
};

/// A named snapshot of every counter/energy in a registry.
struct StatsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> energies_pj;

  /// Per-entry difference `this - earlier` (for ROI deltas).
  [[nodiscard]] StatsSnapshot delta_since(const StatsSnapshot& earlier) const;

  [[nodiscard]] std::uint64_t counter_or(const std::string& name,
                                         std::uint64_t fallback = 0) const;
  [[nodiscard]] Energy energy_or(const std::string& name,
                                 Energy fallback = Energy::zero()) const;
};

/// Registry of named stats. Components register members at construction; the
/// registry does not own them, so registrants must outlive it or deregister.
class StatsRegistry {
 public:
  void register_counter(std::string name, const Counter* counter);
  void register_energy(std::string name, const EnergyAccumulator* energy);

  [[nodiscard]] StatsSnapshot snapshot() const;
  void dump(std::ostream& os) const;

  /// Names in registration order (stable output for tests and reports).
  [[nodiscard]] std::vector<std::string> counter_names() const;

 private:
  std::vector<std::pair<std::string, const Counter*>> counters_;
  std::vector<std::pair<std::string, const EnergyAccumulator*>> energies_;
};

}  // namespace tdo::support
