// Lightweight Status / StatusOr error propagation.
//
// The simulator and compiler report recoverable failures (bad source text,
// infeasible offload, exhausted CMA region) through values rather than
// exceptions so that call sites must consider them (Core Guidelines I.10,
// E.cr); programming errors still use assertions.
#pragma once

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace tdo::support {

enum class StatusCode {
  kOk,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
};

[[nodiscard]] const char* to_string(StatusCode code);

/// Result of an operation that can fail without a payload.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_{code}, message_{std::move(message)} {}

  [[nodiscard]] static Status ok() { return {}; }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

[[nodiscard]] Status invalid_argument(std::string message);
[[nodiscard]] Status not_found(std::string message);
[[nodiscard]] Status out_of_range(std::string message);
[[nodiscard]] Status resource_exhausted(std::string message);
[[nodiscard]] Status failed_precondition(std::string message);
[[nodiscard]] Status unimplemented(std::string message);
[[nodiscard]] Status internal_error(std::string message);

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Either a value or an error Status. Minimal Expected-style wrapper.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : state_{std::move(value)} {}  // NOLINT: implicit by design
  StatusOr(Status status) : state_{std::move(status)} {
    assert(!std::get<Status>(state_).is_ok() &&
           "StatusOr must not be constructed from an OK status");
  }

  [[nodiscard]] bool is_ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return is_ok(); }

  [[nodiscard]] const T& value() const& {
    assert(is_ok());
    return std::get<T>(state_);
  }
  [[nodiscard]] T& value() & {
    assert(is_ok());
    return std::get<T>(state_);
  }
  [[nodiscard]] T&& value() && {
    assert(is_ok());
    return std::get<T>(std::move(state_));
  }

  [[nodiscard]] Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(state_);
  }

  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }

  /// Returns `value()` when OK, otherwise `fallback`.
  [[nodiscard]] T value_or(T fallback) const {
    return is_ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> state_;
};

/// Propagates a non-OK status out of the enclosing function.
#define TDO_RETURN_IF_ERROR(expr)                     \
  do {                                                \
    ::tdo::support::Status tdo_status_ = (expr);      \
    if (!tdo_status_.is_ok()) return tdo_status_;     \
  } while (false)

}  // namespace tdo::support
