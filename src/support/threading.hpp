// Thread-parallel support primitives: sharded counters/histograms and a
// contention-counting spinlock.
//
// The runtime's hot submission paths (stream enqueue, scheduler submit,
// completion retirement) are fed by multiple OS threads. Following DTO's
// work-queue design, writers land on per-thread *shards* — cache-line padded
// so two submitters never false-share — and readers merge shards on demand.
// Stats collection therefore never takes a global lock on the hot path.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "support/stats.hpp"

namespace tdo::support {

/// Test-and-set spinlock that counts contended acquisitions.
///
/// Used only for short critical sections (ring push/pop, histogram shard
/// add). The `contended()` count is exported through bench --dump so lock
/// pressure is observable: a healthy sharded design keeps it near zero even
/// at 8 submitter threads.
class SpinLock {
 public:
  void lock() {
    if (!flag_.exchange(true, std::memory_order_acquire)) return;
    contended_.fetch_add(1, std::memory_order_relaxed);
    while (flag_.exchange(true, std::memory_order_acquire)) {
      while (flag_.load(std::memory_order_relaxed)) {
      }
    }
  }

  [[nodiscard]] bool try_lock() {
    return !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { flag_.store(false, std::memory_order_release); }

  /// Number of lock() calls that found the lock already held.
  [[nodiscard]] std::uint64_t contended() const {
    return contended_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> flag_{false};
  std::atomic<std::uint64_t> contended_{0};
};

/// RAII guard for SpinLock (std::lock_guard works too; this avoids the
/// <mutex> include in hot headers).
class SpinGuard {
 public:
  explicit SpinGuard(SpinLock& lock) : lock_{lock} { lock_.lock(); }
  ~SpinGuard() { lock_.unlock(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  SpinLock& lock_;
};

/// Number of shards used by ShardedCounter / ShardedLatencyHistogram.
/// A power of two >= any realistic submitter-thread count; threads beyond
/// it wrap around and share (still correct, just more contended).
inline constexpr std::size_t kStatShards = 16;

/// Stable, small id for the calling thread, assigned on first use.
/// Monotonically increasing across the process; callers shard by
/// `thread_shard_id() % kStatShards`.
[[nodiscard]] std::size_t thread_shard_id();

/// Monotonic counter safe for concurrent writers: each thread increments its
/// own cache-line-padded shard with a relaxed atomic; value() sums shards.
/// Totals are exact (every add lands in exactly one shard) — this is what
/// makes `serve.*` counters race-free under multi-threaded benches.
class ShardedCounter {
 public:
  void add(std::uint64_t n = 1) {
    shards_[thread_shard_id() % kStatShards].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  void reset() {
    for (auto& shard : shards_) shard.value.store(0, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  Shard shards_[kStatShards];
};

/// LatencyHistogram with per-thread shards merged on read.
///
/// add() locks only the caller's own shard (uncontended unless two threads
/// map to the same shard), so recording a sample never serializes against
/// other submitters or against a concurrent merged() reader on another
/// shard. merged() returns a value — callers treat it as a snapshot.
class ShardedLatencyHistogram {
 public:
  void add(Duration d) {
    auto& shard = shards_[thread_shard_id() % kStatShards];
    SpinGuard guard{shard.lock};
    shard.histogram.add(d);
  }

  /// Bucket-wise merge of every shard, taken shard-by-shard under each
  /// shard's lock.
  [[nodiscard]] LatencyHistogram merged() const {
    LatencyHistogram out;
    for (const auto& shard : shards_) {
      SpinGuard guard{shard.lock};
      out.merge(shard.histogram);
    }
    return out;
  }

  void reset() {
    for (auto& shard : shards_) {
      SpinGuard guard{shard.lock};
      shard.histogram.reset();
    }
  }

  [[nodiscard]] std::uint64_t count() const {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      SpinGuard guard{shard.lock};
      total += shard.histogram.count();
    }
    return total;
  }

  /// Sum of contended-acquisition counts across shard locks.
  [[nodiscard]] std::uint64_t lock_contended() const {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) total += shard.lock.contended();
    return total;
  }

 private:
  struct alignas(64) Shard {
    mutable SpinLock lock;
    LatencyHistogram histogram;
  };
  Shard shards_[kStatShards];
};

/// Sharded multi-producer submission ring (DTO-style shared work queue).
///
/// Producer threads push into their own cache-line-padded shard under a
/// per-shard spinlock; the single consumer (the simulation driver thread)
/// drains every shard in one pass. Producers on different shards never
/// contend with each other, and the consumer contends with at most one
/// producer per shard swap. Bounded: push() refuses beyond
/// `shard_capacity` items per shard, giving callers a backpressure signal
/// instead of unbounded memory growth.
template <typename T>
class ShardedRing {
 public:
  explicit ShardedRing(std::size_t shard_capacity = 4096)
      : capacity_{shard_capacity} {}

  /// Thread-safe; false when the caller's shard is full.
  bool push(T item) {
    Shard& shard = shards_[thread_shard_id() % kStatShards];
    SpinGuard guard{shard.lock};
    if (shard.items.size() >= capacity_) return false;
    shard.items.push_back(std::move(item));
    pending_.fetch_add(1, std::memory_order_release);
    return true;
  }

  /// Swaps out every shard's contents (consumer side). Items of one shard
  /// keep their push order; shards are concatenated in shard order —
  /// callers needing a global order sort by a key carried in T.
  [[nodiscard]] std::vector<T> drain_all() {
    std::vector<T> out;
    for (auto& shard : shards_) {
      std::vector<T> grabbed;
      {
        SpinGuard guard{shard.lock};
        grabbed.swap(shard.items);
      }
      pending_.fetch_sub(grabbed.size(), std::memory_order_relaxed);
      for (T& item : grabbed) out.push_back(std::move(item));
    }
    return out;
  }

  /// Items pushed but not yet drained (approximate while producers run).
  [[nodiscard]] std::size_t pending() const {
    return pending_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::uint64_t lock_contended() const {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) total += shard.lock.contended();
    return total;
  }

 private:
  struct alignas(64) Shard {
    SpinLock lock;
    std::vector<T> items;
  };
  std::size_t capacity_;
  std::atomic<std::size_t> pending_{0};
  Shard shards_[kStatShards];
};

}  // namespace tdo::support
