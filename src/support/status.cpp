#include "support/status.hpp"

namespace tdo::support {

const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out = ::tdo::support::to_string(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status invalid_argument(std::string message) {
  return {StatusCode::kInvalidArgument, std::move(message)};
}
Status not_found(std::string message) {
  return {StatusCode::kNotFound, std::move(message)};
}
Status out_of_range(std::string message) {
  return {StatusCode::kOutOfRange, std::move(message)};
}
Status resource_exhausted(std::string message) {
  return {StatusCode::kResourceExhausted, std::move(message)};
}
Status failed_precondition(std::string message) {
  return {StatusCode::kFailedPrecondition, std::move(message)};
}
Status unimplemented(std::string message) {
  return {StatusCode::kUnimplemented, std::move(message)};
}
Status internal_error(std::string message) {
  return {StatusCode::kInternal, std::move(message)};
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.to_string();
}

}  // namespace tdo::support
