// ASCII table rendering for the benchmark harnesses.
//
// Every figure/table reproduction prints its rows through this class so the
// bench output is uniform and machine-greppable.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace tdo::support {

/// Column-aligned text table with a title and header row.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_{std::move(title)} {}

  /// Sets the header; must be called before the first add_row.
  void set_header(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience for mixed numeric/text rows.
  static std::string fmt(double value, int precision = 3);
  static std::string fmt_ratio(double value);

  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tdo::support
