// Deterministic random number generation.
//
// All stochastic behaviour (workload data, PCM device variability) flows
// through explicitly seeded generators so every experiment is reproducible
// run-to-run — a hard requirement for paper reproduction.
#pragma once

#include <cstdint>
#include <random>

namespace tdo::support {

/// Seeded PRNG wrapper. Thin facade over std::mt19937_64 with convenience
/// draws; copyable so workloads can fork independent deterministic streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x7d0c1dull) : engine_{seed} {}

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform float in [lo, hi).
  [[nodiscard]] float uniform_f(float lo, float hi) {
    std::uniform_real_distribution<float> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Normal draw.
  [[nodiscard]] double normal(double mean, double stddev) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  /// Bernoulli draw.
  [[nodiscard]] bool chance(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace tdo::support
