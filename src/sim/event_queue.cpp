#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace tdo::sim {

void EventQueue::schedule_at(Tick when, std::string label,
                             std::function<void()> action) {
  assert(when >= now_ && "cannot schedule in the past");
  queue_.push(Event{when, next_sequence_++, std::move(label), std::move(action)});
}

void EventQueue::schedule_after(support::Duration delay, std::string label,
                                std::function<void()> action) {
  schedule_at(now_ + to_ticks(delay), std::move(label), std::move(action));
}

Tick EventQueue::run_to_completion() {
  while (!queue_.empty()) {
    // Copy out before pop: the action may schedule new events.
    Event event = queue_.top();
    queue_.pop();
    now_ = event.when;
    ++executed_;
    event.action();
  }
  return now_;
}

Tick EventQueue::run_until(Tick limit) {
  while (!queue_.empty() && queue_.top().when <= limit) {
    Event event = queue_.top();
    queue_.pop();
    now_ = event.when;
    ++executed_;
    event.action();
  }
  if (now_ < limit) now_ = limit;
  return now_;
}

void EventQueue::advance_to(Tick t) {
  if (t > now_) {
    assert((queue_.empty() || queue_.top().when >= t) &&
           "advancing past pending events");
    now_ = t;
  }
}

}  // namespace tdo::sim
