// System bus with memory-mapped device routing.
//
// The emulated system (paper Fig. 2a) connects host, main memory and the CIM
// accelerator through a bus. Devices claim physical address windows; the
// accelerator claims its port-mapped IO (PMIO) window for context registers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/sim_memory.hpp"
#include "support/status.hpp"

namespace tdo::sim {

/// A device visible on the bus at a physical address window.
class BusDevice {
 public:
  virtual ~BusDevice() = default;

  [[nodiscard]] virtual std::string device_name() const = 0;
  /// Reads `out.size()` bytes at window-relative `offset`.
  virtual support::Status mmio_read(std::uint64_t offset,
                                    std::span<std::uint8_t> out) = 0;
  /// Writes `in.size()` bytes at window-relative `offset`.
  virtual support::Status mmio_write(std::uint64_t offset,
                                     std::span<const std::uint8_t> in) = 0;
};

/// Routes physical accesses to main memory or to device windows.
class Bus {
 public:
  explicit Bus(SimMemory& memory) : memory_{memory} {}

  /// Registers `device` at [base, base+size). Windows must not overlap DRAM
  /// (i.e. base must be >= memory size) nor each other.
  support::Status attach(PhysAddr base, std::uint64_t size, BusDevice& device);

  support::Status read(PhysAddr addr, std::span<std::uint8_t> out);
  support::Status write(PhysAddr addr, std::span<const std::uint8_t> in);

  template <typename T>
  [[nodiscard]] support::StatusOr<T> read_scalar(PhysAddr addr) {
    std::array<std::uint8_t, sizeof(T)> buf{};
    TDO_RETURN_IF_ERROR(read(addr, buf));
    T value;
    std::memcpy(&value, buf.data(), sizeof(T));
    return value;
  }

  template <typename T>
  support::Status write_scalar(PhysAddr addr, T value) {
    std::array<std::uint8_t, sizeof(T)> buf;
    std::memcpy(buf.data(), &value, sizeof(T));
    return write(addr, buf);
  }

  [[nodiscard]] SimMemory& memory() { return memory_; }

 private:
  struct Window {
    PhysAddr base;
    std::uint64_t size;
    BusDevice* device;
  };

  [[nodiscard]] Window* window_for(PhysAddr addr, std::uint64_t bytes);

  SimMemory& memory_;
  std::vector<Window> windows_;
};

}  // namespace tdo::sim
