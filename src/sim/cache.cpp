#include "sim/cache.hpp"

#include <bit>
#include <cassert>

namespace tdo::sim {

Cache::Cache(CacheParams params) : params_{std::move(params)} {
  assert(std::has_single_bit(params_.line_bytes));
  assert(params_.size_bytes % (static_cast<std::uint64_t>(params_.line_bytes) *
                               params_.ways) ==
         0);
  num_sets_ = static_cast<std::uint32_t>(
      params_.size_bytes / (static_cast<std::uint64_t>(params_.line_bytes) *
                            params_.ways));
  assert(std::has_single_bit(num_sets_));
  lines_.resize(static_cast<std::size_t>(num_sets_) * params_.ways);
}

std::uint64_t Cache::set_index(PhysAddr addr) const {
  return (addr / params_.line_bytes) & (num_sets_ - 1);
}

std::uint64_t Cache::tag_of(PhysAddr addr) const {
  return (addr / params_.line_bytes) / num_sets_;
}

CacheOutcome Cache::access(PhysAddr addr, bool is_write, bool* evicted_dirty) {
  if (evicted_dirty != nullptr) *evicted_dirty = false;
  const std::uint64_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  Line* begin = &lines_[set * params_.ways];

  Line* victim = begin;
  for (std::uint32_t w = 0; w < params_.ways; ++w) {
    Line& line = begin[w];
    if (line.valid && line.tag == tag) {
      line.lru_stamp = ++stamp_;
      line.dirty = line.dirty || is_write;
      hits_.add();
      return CacheOutcome::kHit;
    }
    if (!line.valid) {
      victim = &line;  // prefer an invalid way
    } else if (victim->valid && line.lru_stamp < victim->lru_stamp) {
      victim = &line;
    }
  }

  misses_.add();
  if (victim->valid && victim->dirty) {
    writebacks_.add();
    if (evicted_dirty != nullptr) *evicted_dirty = true;
  }
  victim->valid = true;
  victim->dirty = is_write;
  victim->tag = tag;
  victim->lru_stamp = ++stamp_;
  return CacheOutcome::kMiss;
}

std::uint64_t Cache::flush_all() {
  std::uint64_t dirty = 0;
  for (Line& line : lines_) {
    if (line.valid && line.dirty) ++dirty;
    line.valid = false;
    line.dirty = false;
  }
  flushes_.add();
  writebacks_.add(dirty);
  return dirty;
}

std::uint64_t Cache::flush_range(PhysAddr addr, std::uint64_t bytes) {
  std::uint64_t dirty = 0;
  const PhysAddr first_line = addr / params_.line_bytes;
  const PhysAddr last_line = (addr + bytes + params_.line_bytes - 1) / params_.line_bytes;
  for (PhysAddr lineno = first_line; lineno < last_line; ++lineno) {
    const PhysAddr line_addr = lineno * params_.line_bytes;
    const std::uint64_t set = set_index(line_addr);
    const std::uint64_t tag = tag_of(line_addr);
    Line* begin = &lines_[set * params_.ways];
    for (std::uint32_t w = 0; w < params_.ways; ++w) {
      Line& line = begin[w];
      if (line.valid && line.tag == tag) {
        if (line.dirty) ++dirty;
        line.valid = false;
        line.dirty = false;
      }
    }
  }
  flushes_.add();
  writebacks_.add(dirty);
  return dirty;
}

void Cache::register_stats(support::StatsRegistry& registry) const {
  registry.register_counter(params_.name + ".hits", &hits_);
  registry.register_counter(params_.name + ".misses", &misses_);
  registry.register_counter(params_.name + ".writebacks", &writebacks_);
  registry.register_counter(params_.name + ".flushes", &flushes_);
}

CacheHierarchy::CacheHierarchy(CacheParams l1i, CacheParams l1d, CacheParams l2,
                               Latencies latencies)
    : l1i_{std::move(l1i)}, l1d_{std::move(l1d)}, l2_{std::move(l2)},
      latencies_{latencies} {}

std::uint64_t CacheHierarchy::data_access(PhysAddr addr, bool is_write) {
  bool dirty_victim = false;
  if (l1d_.access(addr, is_write, &dirty_victim) == CacheOutcome::kHit) {
    return 0;
  }
  // L1 victim write-back installs into L2 (traffic only, no extra stall:
  // write-back buffers hide it from the load path).
  if (dirty_victim) {
    bool l2_victim = false;
    (void)l2_.access(addr, /*is_write=*/true, &l2_victim);
    if (l2_victim) dram_accesses_.add();
  }
  bool l2_dirty_victim = false;
  if (l2_.access(addr, /*is_write=*/false, &l2_dirty_victim) == CacheOutcome::kHit) {
    return latencies_.l2_hit_cycles;
  }
  if (l2_dirty_victim) dram_accesses_.add();
  dram_accesses_.add();
  return latencies_.l2_hit_cycles + latencies_.dram_cycles;
}

std::uint64_t CacheHierarchy::inst_fetch(PhysAddr addr) {
  bool dirty_victim = false;
  if (l1i_.access(addr, /*is_write=*/false, &dirty_victim) == CacheOutcome::kHit) {
    return 0;
  }
  bool l2_dirty_victim = false;
  if (l2_.access(addr, /*is_write=*/false, &l2_dirty_victim) == CacheOutcome::kHit) {
    return latencies_.l2_hit_cycles;
  }
  if (l2_dirty_victim) dram_accesses_.add();
  dram_accesses_.add();
  return latencies_.l2_hit_cycles + latencies_.dram_cycles;
}

std::uint64_t CacheHierarchy::flush_data_caches() {
  return l1d_.flush_all() + l2_.flush_all();
}

std::uint64_t CacheHierarchy::flush_data_range(PhysAddr addr, std::uint64_t bytes) {
  return l1d_.flush_range(addr, bytes) + l2_.flush_range(addr, bytes);
}

void CacheHierarchy::register_stats(support::StatsRegistry& registry) const {
  l1i_.register_stats(registry);
  l1d_.register_stats(registry);
  l2_.register_stats(registry);
  registry.register_counter("mem.dram_accesses", &dram_accesses_);
}

}  // namespace tdo::sim
