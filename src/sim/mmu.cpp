#include "sim/mmu.hpp"

#include <algorithm>
#include <cassert>

namespace tdo::sim {

namespace {
[[nodiscard]] std::uint64_t pages_needed(std::uint64_t bytes) {
  return (bytes + kPageSize - 1) / kPageSize;
}
}  // namespace

Mmu::Mmu(std::uint64_t phys_bytes, std::uint64_t cma_bytes) {
  assert(cma_bytes < phys_bytes);
  assert(phys_bytes % kPageSize == 0 && cma_bytes % kPageSize == 0);
  cma_ = CmaRegion{phys_bytes - cma_bytes, cma_bytes};
  const std::uint64_t frames = cma_.base / kPageSize;
  free_frames_.reserve(frames);
  // Hand out low frames first: push high addresses first so pop_back yields
  // ascending addresses, which makes tests deterministic.
  for (std::uint64_t f = frames; f-- > 0;) {
    free_frames_.push_back(f * kPageSize);
  }
}

support::StatusOr<PhysAddr> Mmu::take_frame() {
  if (free_frames_.empty()) {
    return support::resource_exhausted("out of physical frames");
  }
  const PhysAddr frame = free_frames_.back();
  free_frames_.pop_back();
  return frame;
}

support::StatusOr<VirtAddr> Mmu::allocate(std::uint64_t bytes) {
  if (bytes == 0) return support::invalid_argument("allocate of zero bytes");
  const std::uint64_t n = pages_needed(bytes);
  const VirtAddr base = next_va_;
  for (std::uint64_t i = 0; i < n; ++i) {
    auto frame = take_frame();
    if (!frame.is_ok()) {
      // Roll back partially installed mappings.
      for (std::uint64_t j = 0; j < i; ++j) {
        const auto it = table_.find(page_of(base) + j);
        free_frames_.push_back(it->second);
        table_.erase(it);
      }
      return frame.status();
    }
    table_[page_of(base) + i] = *frame;
  }
  next_va_ = base + n * kPageSize;
  return base;
}

support::StatusOr<VirtAddr> Mmu::map_physical(PhysAddr pa, std::uint64_t bytes) {
  if (bytes == 0) return support::invalid_argument("map_physical of zero bytes");
  if (page_offset(pa) != 0) {
    return support::invalid_argument("map_physical requires page-aligned PA");
  }
  const std::uint64_t n = pages_needed(bytes);
  const VirtAddr base = next_va_;
  for (std::uint64_t i = 0; i < n; ++i) {
    table_[page_of(base) + i] = pa + i * kPageSize;
  }
  next_va_ = base + n * kPageSize;
  return base;
}

support::Status Mmu::release(VirtAddr va, std::uint64_t bytes) {
  if (page_offset(va) != 0) {
    return support::invalid_argument("release requires page-aligned VA");
  }
  const std::uint64_t n = pages_needed(bytes);
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto it = table_.find(page_of(va) + i);
    if (it == table_.end()) {
      return support::not_found("release of unmapped page");
    }
    // Only frames below the CMA region belong to the general allocator; CMA
    // frames are returned through the CMA allocator instead.
    if (it->second < cma_.base) free_frames_.push_back(it->second);
    table_.erase(it);
  }
  return support::Status::ok();
}

support::StatusOr<PhysAddr> Mmu::translate(VirtAddr va) const {
  const auto it = table_.find(page_of(va));
  if (it == table_.end()) {
    return support::not_found("unmapped virtual address");
  }
  return it->second + page_offset(va);
}

bool Mmu::is_contiguous(VirtAddr va, std::uint64_t bytes) const {
  if (bytes == 0) return true;
  const auto first = translate(va);
  if (!first.is_ok()) return false;
  const std::uint64_t n = pages_needed(page_offset(va) + bytes);
  for (std::uint64_t i = 1; i < n; ++i) {
    const auto pa = translate(page_base(va) + i * kPageSize);
    if (!pa.is_ok()) return false;
    if (*pa != page_base(*first) + i * kPageSize) return false;
  }
  return true;
}

}  // namespace tdo::sim
