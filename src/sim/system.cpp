#include "sim/system.hpp"

namespace tdo::sim {

System::System(SystemParams params)
    : params_{params},
      memory_{params_.dram_bytes},
      mmu_{params_.dram_bytes, params_.cma_bytes},
      caches_{params_.l1i, params_.l1d, params_.l2, params_.latencies},
      cpu_{params_.host, caches_},
      bus_{memory_} {
  cpu_.register_stats(stats_);
  caches_.register_stats(stats_);
}

void System::sync_event_clock_to_host() {
  const Tick host_now = cpu_.elapsed().ticks();
  if (host_now > events_.now()) events_.advance_to(host_now);
}

void System::settle_to_host_time() {
  const Tick host_now = cpu_.elapsed().ticks();
  if (host_now > events_.now()) (void)events_.run_until(host_now);
}

support::Duration System::global_time() const {
  const auto host = cpu_.elapsed();
  const auto queue = from_ticks(events_.now());
  return host > queue ? host : queue;
}

}  // namespace tdo::sim
