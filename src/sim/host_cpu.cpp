#include "sim/host_cpu.hpp"

#include <cmath>

namespace tdo::sim {

HostCpu::HostCpu(HostParams params, CacheHierarchy& caches)
    : params_{params}, caches_{caches} {}

void HostCpu::retire(std::uint32_t insts) {
  insts_.add(insts);
  energy_.add(params_.energy_per_inst * static_cast<double>(insts));
  const double cycles = params_.base_cpi * insts + cycle_fraction_;
  const auto whole = static_cast<std::uint64_t>(cycles);
  cycle_fraction_ = cycles - static_cast<double>(whole);
  cycles_.add(whole);
}

void HostCpu::issue(const InstBundle& bundle) {
  fp_insts_.add(bundle.fp_ops);
  retire(bundle.total());
}

void HostCpu::load(PhysAddr addr, std::uint32_t bytes) {
  (void)bytes;  // sub-line accesses cost one lookup regardless of width
  mem_insts_.add();
  retire(1);
  const std::uint64_t stalls = caches_.data_access(addr, /*is_write=*/false);
  stall_cycles_.add(stalls);
  cycles_.add(stalls);
}

void HostCpu::store(PhysAddr addr, std::uint32_t bytes) {
  (void)bytes;
  mem_insts_.add();
  retire(1);
  const std::uint64_t stalls = caches_.data_access(addr, /*is_write=*/true);
  stall_cycles_.add(stalls);
  cycles_.add(stalls);
}

void HostCpu::charge_instructions(std::uint64_t n) {
  while (n > 0) {
    const auto chunk = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(n, 1u << 30));
    retire(chunk);
    n -= chunk;
  }
}

void HostCpu::charge_cycles(std::uint64_t cycles) {
  stall_cycles_.add(cycles);
  cycles_.add(cycles);
}

std::uint64_t HostCpu::spin_until(Tick target, std::uint64_t poll_period_cycles) {
  const Tick now_ticks = elapsed().ticks();
  if (target <= now_ticks) return 0;
  const double remaining_sec = from_ticks(target - now_ticks).seconds();
  const double remaining_cycles = remaining_sec * params_.frequency.hertz();
  const auto polls = static_cast<std::uint64_t>(
      std::ceil(remaining_cycles / static_cast<double>(poll_period_cycles)));
  // Each poll is a handful of instructions: load status register (uncached,
  // folded into the poll period), compare, branch.
  spin_polls_.add(polls);
  charge_instructions(polls * 3);
  // The dominant cost of spinning is the dead time itself: pad cycles until
  // the local clock has caught up with the completion tick exactly.
  while (elapsed().ticks() < target) {
    const double gap_sec = from_ticks(target - elapsed().ticks()).seconds();
    const auto gap_cycles = static_cast<std::uint64_t>(
        std::ceil(gap_sec * params_.frequency.hertz()));
    charge_cycles(gap_cycles > 0 ? gap_cycles : 1);
  }
  return polls;
}

std::uint64_t HostCpu::block_until(Tick target) {
  if (elapsed().ticks() >= target) return 0;
  irq_waits_.add();
  // Interrupt entry + handler + context restore.
  charge_instructions(400);
  // Sleep: dead cycles until the completion interrupt fires.
  while (elapsed().ticks() < target) {
    const double gap_sec = from_ticks(target - elapsed().ticks()).seconds();
    const auto gap_cycles = static_cast<std::uint64_t>(
        std::ceil(gap_sec * params_.frequency.hertz()));
    charge_cycles(gap_cycles > 0 ? gap_cycles : 1);
  }
  return 1;
}

void HostCpu::register_stats(support::StatsRegistry& registry) const {
  registry.register_counter("host.cycles", &cycles_);
  registry.register_counter("host.instructions", &insts_);
  registry.register_counter("host.fp_instructions", &fp_insts_);
  registry.register_counter("host.mem_instructions", &mem_insts_);
  registry.register_counter("host.stall_cycles", &stall_cycles_);
  registry.register_counter("host.spin_polls", &spin_polls_);
  registry.register_counter("host.irq_waits", &irq_waits_);
  registry.register_energy("host.energy", &energy_);
}

}  // namespace tdo::sim
