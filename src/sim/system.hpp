// Assembles the emulated platform of the paper's Figure 2 (a): host CPU,
// main memory, MMU, cache hierarchy, system bus, event queue. The CIM
// accelerator attaches itself through Bus::attach (see cim/accelerator.hpp).
#pragma once

#include <memory>

#include "sim/bus.hpp"
#include "sim/cache.hpp"
#include "sim/event_queue.hpp"
#include "sim/host_cpu.hpp"
#include "sim/mmu.hpp"
#include "sim/sim_memory.hpp"
#include "support/stats.hpp"

namespace tdo::sim {

struct SystemParams {
  std::uint64_t dram_bytes = 256ull * 1024 * 1024;  // scaled-down LPDDR3
  std::uint64_t cma_bytes = 64ull * 1024 * 1024;    // reserved contiguous pool
  HostParams host;
  CacheParams l1i{.name = "l1i", .size_bytes = 32 * 1024, .line_bytes = 64, .ways = 2};
  CacheParams l1d{.name = "l1d", .size_bytes = 32 * 1024, .line_bytes = 64, .ways = 4};
  CacheParams l2{.name = "l2", .size_bytes = 2 * 1024 * 1024, .line_bytes = 64, .ways = 8};
  CacheHierarchy::Latencies latencies;
};

/// Owns every platform component, wiring them the way gem5's full-system
/// configuration scripts do.
class System {
 public:
  explicit System(SystemParams params = {});

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  [[nodiscard]] SimMemory& memory() { return memory_; }
  [[nodiscard]] Mmu& mmu() { return mmu_; }
  [[nodiscard]] CacheHierarchy& caches() { return caches_; }
  [[nodiscard]] HostCpu& cpu() { return cpu_; }
  [[nodiscard]] Bus& bus() { return bus_; }
  [[nodiscard]] EventQueue& events() { return events_; }
  [[nodiscard]] support::StatsRegistry& stats() { return stats_; }
  [[nodiscard]] const SystemParams& params() const { return params_; }

  /// Synchronizes the event queue clock with the host's accumulated time
  /// (called right before triggering the accelerator).
  void sync_event_clock_to_host();

  /// Executes every device event due by the host's current time, then moves
  /// the event clock up to it. Unlike sync_event_clock_to_host this is safe
  /// while asynchronous jobs are in flight: completions that should already
  /// have happened are retired (and may chain queued work) instead of being
  /// jumped over.
  void settle_to_host_time();

  /// Current global time: max(host elapsed, event queue now).
  [[nodiscard]] support::Duration global_time() const;

  [[nodiscard]] support::StatsSnapshot snapshot() const { return stats_.snapshot(); }

 private:
  SystemParams params_;
  SimMemory memory_;
  Mmu mmu_;
  CacheHierarchy caches_;
  HostCpu cpu_;
  Bus bus_;
  EventQueue events_;
  support::StatsRegistry stats_;
};

}  // namespace tdo::sim
