// Virtual address space + physical frame allocation.
//
// The paper's driver "translates the virtual address used by the host
// processor to a physical address as the accelerator can work only with
// physical addresses" (Section II-E). This MMU provides exactly that
// contract: a per-process page table, a frame allocator for ordinary pages,
// and a reserved physically-contiguous region handed to the CMA allocator.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/sim_memory.hpp"
#include "support/status.hpp"

namespace tdo::sim {

using VirtAddr = std::uint64_t;

/// Bounds of the physically contiguous region reserved at boot for the
/// contiguous memory allocator (CMA).
struct CmaRegion {
  PhysAddr base = 0;
  std::uint64_t size = 0;
};

/// Single-address-space MMU with identity-free VA->PA mapping.
class Mmu {
 public:
  /// Reserves `cma_bytes` at the top of physical memory for CMA.
  Mmu(std::uint64_t phys_bytes, std::uint64_t cma_bytes);

  /// Allocates `bytes` of virtual memory backed by (possibly scattered)
  /// physical frames; returns the starting VA (page aligned).
  [[nodiscard]] support::StatusOr<VirtAddr> allocate(std::uint64_t bytes);

  /// Maps `bytes` of fresh virtual space onto an existing contiguous
  /// physical range (used by the driver to hand CMA buffers to user space).
  [[nodiscard]] support::StatusOr<VirtAddr> map_physical(PhysAddr pa,
                                                         std::uint64_t bytes);

  /// Releases a VA range previously produced by allocate()/map_physical().
  support::Status release(VirtAddr va, std::uint64_t bytes);

  /// Translates one virtual address.
  [[nodiscard]] support::StatusOr<PhysAddr> translate(VirtAddr va) const;

  /// True when [va, va+bytes) maps to physically contiguous frames.
  [[nodiscard]] bool is_contiguous(VirtAddr va, std::uint64_t bytes) const;

  [[nodiscard]] const CmaRegion& cma_region() const { return cma_; }
  [[nodiscard]] std::uint64_t mapped_pages() const { return table_.size(); }
  [[nodiscard]] std::uint64_t free_frames() const { return free_frames_.size(); }

 private:
  [[nodiscard]] support::StatusOr<PhysAddr> take_frame();

  CmaRegion cma_;
  std::unordered_map<std::uint64_t, std::uint64_t> table_;  // vpage -> pframe
  std::vector<PhysAddr> free_frames_;                       // non-CMA frames
  VirtAddr next_va_ = 0x0000'1000;  // never hand out VA 0 (null)
};

}  // namespace tdo::sim
