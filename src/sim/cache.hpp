// Set-associative write-back cache model (timing + traffic only).
//
// Matches the host configuration in Table I: split 32 KiB L1 I/D and a
// shared 2 MiB L2. Data values are not cached — the functional state lives in
// SimMemory — the model tracks hits, misses, write-backs and flushes so that
// host cycle counts reflect each kernel's memory-boundedness, which is what
// separates GEMV-like from GEMM-like kernels in Figure 6.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/sim_memory.hpp"
#include "support/stats.hpp"

namespace tdo::sim {

struct CacheParams {
  std::string name = "cache";
  std::uint64_t size_bytes = 32 * 1024;
  std::uint32_t line_bytes = 64;
  std::uint32_t ways = 4;
};

/// Result of a single lookup.
enum class CacheOutcome { kHit, kMiss };

/// One level of cache. Composable: the owner decides what to do on a miss.
class Cache {
 public:
  explicit Cache(CacheParams params);

  /// Looks up `addr`; on miss installs the line (write-allocate) and reports
  /// whether a dirty victim was evicted through `evicted_dirty`.
  CacheOutcome access(PhysAddr addr, bool is_write, bool* evicted_dirty);

  /// Invalidates the whole cache, counting dirty lines written back.
  /// Returns the number of dirty lines flushed.
  std::uint64_t flush_all();

  /// Invalidates any line overlapping [addr, addr+bytes); returns dirty count.
  std::uint64_t flush_range(PhysAddr addr, std::uint64_t bytes);

  [[nodiscard]] const CacheParams& params() const { return params_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_.value(); }
  [[nodiscard]] std::uint64_t misses() const { return misses_.value(); }
  [[nodiscard]] std::uint64_t writebacks() const { return writebacks_.value(); }

  void register_stats(support::StatsRegistry& registry) const;

 private:
  struct Line {
    std::uint64_t tag = 0;
    bool valid = false;
    bool dirty = false;
    std::uint64_t lru_stamp = 0;
  };

  [[nodiscard]] std::uint64_t set_index(PhysAddr addr) const;
  [[nodiscard]] std::uint64_t tag_of(PhysAddr addr) const;

  CacheParams params_;
  std::uint32_t num_sets_;
  std::vector<Line> lines_;  // num_sets_ * ways, row-major by set
  std::uint64_t stamp_ = 0;

  support::Counter hits_;
  support::Counter misses_;
  support::Counter writebacks_;
  support::Counter flushes_;
};

/// Two-level hierarchy front-end used by the host CPU cost model: charges
/// per-level latencies and returns total stall cycles for an access.
class CacheHierarchy {
 public:
  struct Latencies {
    // Extra cycles beyond a pipelined L1 hit.
    std::uint32_t l2_hit_cycles = 8;
    std::uint32_t dram_cycles = 90;  // LPDDR3-933 round trip at 1.2 GHz
  };

  CacheHierarchy(CacheParams l1i, CacheParams l1d, CacheParams l2,
                 Latencies latencies);

  /// Data access; returns stall cycles.
  [[nodiscard]] std::uint64_t data_access(PhysAddr addr, bool is_write);

  /// Instruction fetch; returns stall cycles.
  [[nodiscard]] std::uint64_t inst_fetch(PhysAddr addr);

  /// Flush both data levels (driver coherence protocol, Section II-E).
  /// Returns total dirty lines written back to memory.
  std::uint64_t flush_data_caches();
  std::uint64_t flush_data_range(PhysAddr addr, std::uint64_t bytes);

  [[nodiscard]] Cache& l1d() { return l1d_; }
  [[nodiscard]] Cache& l1i() { return l1i_; }
  [[nodiscard]] Cache& l2() { return l2_; }
  [[nodiscard]] const Latencies& latencies() const { return latencies_; }

  [[nodiscard]] std::uint64_t dram_accesses() const { return dram_accesses_.value(); }

  void register_stats(support::StatsRegistry& registry) const;

 private:
  Cache l1i_;
  Cache l1d_;
  Cache l2_;
  Latencies latencies_;
  support::Counter dram_accesses_;
};

}  // namespace tdo::sim
