#include "sim/bus.hpp"

namespace tdo::sim {

support::Status Bus::attach(PhysAddr base, std::uint64_t size, BusDevice& device) {
  if (base < memory_.size()) {
    return support::invalid_argument("device window overlaps DRAM: " +
                                     device.device_name());
  }
  for (const Window& w : windows_) {
    const bool disjoint = base + size <= w.base || w.base + w.size <= base;
    if (!disjoint) {
      return support::invalid_argument("device window overlaps " +
                                       w.device->device_name());
    }
  }
  windows_.push_back(Window{base, size, &device});
  return support::Status::ok();
}

Bus::Window* Bus::window_for(PhysAddr addr, std::uint64_t bytes) {
  for (Window& w : windows_) {
    if (addr >= w.base && addr + bytes <= w.base + w.size) return &w;
  }
  return nullptr;
}

support::Status Bus::read(PhysAddr addr, std::span<std::uint8_t> out) {
  if (addr + out.size() <= memory_.size()) {
    memory_.read(addr, out);
    return support::Status::ok();
  }
  if (Window* w = window_for(addr, out.size())) {
    return w->device->mmio_read(addr - w->base, out);
  }
  return support::out_of_range("bus read from unmapped physical address");
}

support::Status Bus::write(PhysAddr addr, std::span<const std::uint8_t> in) {
  if (addr + in.size() <= memory_.size()) {
    memory_.write(addr, in);
    return support::Status::ok();
  }
  if (Window* w = window_for(addr, in.size())) {
    return w->device->mmio_write(addr - w->base, in);
  }
  return support::out_of_range("bus write to unmapped physical address");
}

}  // namespace tdo::sim
