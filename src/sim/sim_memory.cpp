#include "sim/sim_memory.hpp"

#include <algorithm>
#include <cassert>

namespace tdo::sim {

SimMemory::Page& SimMemory::page_for(PhysAddr addr) {
  assert(addr < size_bytes_ && "physical address out of range");
  auto& slot = pages_[page_of(addr)];
  if (!slot) {
    slot = std::make_unique<Page>();
    slot->fill(0);
  }
  return *slot;
}

const SimMemory::Page* SimMemory::page_for_read(PhysAddr addr) const {
  assert(addr < size_bytes_ && "physical address out of range");
  const auto it = pages_.find(page_of(addr));
  return it == pages_.end() ? nullptr : it->second.get();
}

void SimMemory::read(PhysAddr addr, std::span<std::uint8_t> out) const {
  std::size_t done = 0;
  while (done < out.size()) {
    const PhysAddr current = addr + done;
    const std::size_t in_page =
        std::min<std::size_t>(out.size() - done, kPageSize - page_offset(current));
    if (const Page* page = page_for_read(current)) {
      std::memcpy(out.data() + done, page->data() + page_offset(current), in_page);
    } else {
      std::memset(out.data() + done, 0, in_page);
    }
    done += in_page;
  }
}

void SimMemory::write(PhysAddr addr, std::span<const std::uint8_t> in) {
  std::size_t done = 0;
  while (done < in.size()) {
    const PhysAddr current = addr + done;
    const std::size_t in_page =
        std::min<std::size_t>(in.size() - done, kPageSize - page_offset(current));
    Page& page = page_for(current);
    std::memcpy(page.data() + page_offset(current), in.data() + done, in_page);
    done += in_page;
  }
}

}  // namespace tdo::sim
