// Discrete-event simulation core (gem5-style event queue).
//
// The CIM accelerator side of the system (micro-engine, DMA, crossbar
// operations) is simulated event-driven; the host CPU runs in an
// atomic/accumulate mode and synchronizes with the queue at offload
// boundaries (see DESIGN.md Section 5).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "support/units.hpp"

namespace tdo::sim {

/// Simulation time in integral picosecond ticks.
using Tick = std::uint64_t;

[[nodiscard]] constexpr Tick to_ticks(support::Duration d) { return d.ticks(); }
[[nodiscard]] constexpr support::Duration from_ticks(Tick t) {
  return support::Duration::from_ps(static_cast<double>(t));
}

/// A scheduled callback. Events are one-shot; recurring behaviour reschedules
/// itself from inside the callback.
struct Event {
  Tick when = 0;
  std::uint64_t sequence = 0;  // FIFO tie-break for same-tick events
  std::string label;           // for tracing
  std::function<void()> action;
};

/// Priority queue of events ordered by (when, sequence).
class EventQueue {
 public:
  /// Schedules `action` at absolute tick `when` (must be >= now()).
  void schedule_at(Tick when, std::string label, std::function<void()> action);

  /// Schedules `action` `delay` after now().
  void schedule_after(support::Duration delay, std::string label,
                      std::function<void()> action);

  /// Runs events until the queue is empty. Returns the tick of the last event.
  Tick run_to_completion();

  /// Runs events with `when <= limit`. Advances now() to `limit` even when
  /// the queue drains earlier. Returns now().
  Tick run_until(Tick limit);

  [[nodiscard]] Tick now() const { return now_; }
  /// Tick of the earliest pending event; now() when the queue is empty.
  /// Cooperative drivers (the serving scheduler's drain loop) use this to
  /// advance time exactly to the next completion instead of polling.
  [[nodiscard]] Tick next_when() const {
    return queue_.empty() ? now_ : queue_.top().when;
  }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Moves the current time forward without executing anything (used by the
  /// host to donate its accumulated atomic-mode time to the queue clock).
  void advance_to(Tick t);

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Tick now_ = 0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace tdo::sim
