// Host CPU cost model: in-order dual-core Arm-A7 class (Table I).
//
// Executes in "atomic + timing accumulation" mode (gem5 terminology): the
// interpreter retires abstract instruction bundles and memory accesses; the
// model accumulates instruction counts, stall-accurate cycles and energy
// (128 pJ/instruction including caches, per Table I). At offload boundaries
// the accumulated time is synchronized with the event queue driving the CIM
// accelerator.
#pragma once

#include <cstdint>

#include "sim/cache.hpp"
#include "sim/event_queue.hpp"
#include "support/stats.hpp"
#include "support/units.hpp"

namespace tdo::sim {

struct HostParams {
  support::Frequency frequency = support::Frequency::from_ghz(1.2);
  /// Average cycles per instruction before memory stalls; the A7 is a
  /// partial dual-issue in-order core, so sustained CPI is a bit below 1.
  double base_cpi = 0.85;
  /// Table I: 128 pJ per instruction, caches included.
  support::Energy energy_per_inst = support::Energy::from_pj(128);
  int cores = 2;  // reported in Table I; the evaluated kernels are 1-thread
};

/// Categories of retired instructions; kept separately for reporting and for
/// the MACs-per-CIM-write metric of Figure 6.
struct InstBundle {
  std::uint32_t int_alu = 0;   // address arithmetic, loop bookkeeping
  std::uint32_t fp_ops = 0;    // scalar FLOPs
  std::uint32_t loads = 0;     // charged separately via load(); counted here
  std::uint32_t stores = 0;
  std::uint32_t branches = 0;

  [[nodiscard]] std::uint32_t total() const {
    return int_alu + fp_ops + loads + stores + branches;
  }
};

class HostCpu {
 public:
  HostCpu(HostParams params, CacheHierarchy& caches);

  /// Retires non-memory work (ALU/FP/branch) without cache traffic.
  void issue(const InstBundle& bundle);

  /// Retires one load/store of `bytes` at physical address `addr`, including
  /// its stall cycles from the cache hierarchy.
  void load(PhysAddr addr, std::uint32_t bytes = 4);
  void store(PhysAddr addr, std::uint32_t bytes = 4);

  /// Charges `n` generic instructions (driver / syscall overhead modelling).
  void charge_instructions(std::uint64_t n);

  /// Charges pure stall cycles (e.g. spin-wait residency).
  void charge_cycles(std::uint64_t cycles);

  /// Busy-waits until `target` (event-queue ticks), charging polling
  /// instructions at `poll_period_cycles` intervals — the "wait on spinlock"
  /// mode of Section II-E. Returns polled iterations.
  std::uint64_t spin_until(Tick target, std::uint64_t poll_period_cycles = 64);

  /// Event-driven wait: the core sleeps (WFI) until the completion interrupt
  /// at `target` and pays only the interrupt entry/exit instructions — the
  /// "continue with other tasks" mode of Section II-E, used by the stream
  /// layer instead of spin-polling. Returns 1 when a wait happened.
  std::uint64_t block_until(Tick target);

  [[nodiscard]] std::uint64_t cycles() const { return cycles_.value(); }
  [[nodiscard]] std::uint64_t instructions() const { return insts_.value(); }
  [[nodiscard]] std::uint64_t fp_instructions() const { return fp_insts_.value(); }
  [[nodiscard]] support::Energy energy() const { return energy_.total(); }
  [[nodiscard]] support::Duration elapsed() const {
    return params_.frequency.cycles(static_cast<double>(cycles_.value()));
  }
  [[nodiscard]] const HostParams& params() const { return params_; }

  void register_stats(support::StatsRegistry& registry) const;

 private:
  void retire(std::uint32_t insts);

  HostParams params_;
  CacheHierarchy& caches_;
  double cycle_fraction_ = 0.0;  // carries sub-cycle CPI remainders

  support::Counter cycles_;
  support::Counter insts_;
  support::Counter fp_insts_;
  support::Counter mem_insts_;
  support::Counter stall_cycles_;
  support::Counter spin_polls_;
  support::Counter irq_waits_;
  support::EnergyAccumulator energy_;
};

}  // namespace tdo::sim
