// Flat simulated physical memory, allocated lazily in 4 KiB pages.
//
// Both the host (through the cache hierarchy) and the accelerator DMA
// (uncacheable) read and write the same SimMemory, which is what makes the
// shared-memory offload contract of the paper (Section II-E) observable in
// this reproduction: data written by the interpreted host program is the data
// the crossbar is programmed from.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <unordered_map>

#include "support/stats.hpp"

namespace tdo::sim {

using PhysAddr = std::uint64_t;

inline constexpr std::uint64_t kPageSize = 4096;
inline constexpr std::uint64_t kPageShift = 12;

[[nodiscard]] constexpr std::uint64_t page_of(PhysAddr a) { return a >> kPageShift; }
[[nodiscard]] constexpr std::uint64_t page_offset(PhysAddr a) {
  return a & (kPageSize - 1);
}
[[nodiscard]] constexpr PhysAddr page_base(PhysAddr a) {
  return a & ~(kPageSize - 1);
}

/// Backing store for physical memory. Pages materialize on first touch and
/// read as zero before that, like fresh anonymous mappings.
class SimMemory {
 public:
  explicit SimMemory(std::uint64_t size_bytes) : size_bytes_{size_bytes} {}

  [[nodiscard]] std::uint64_t size() const { return size_bytes_; }

  void read(PhysAddr addr, std::span<std::uint8_t> out) const;
  void write(PhysAddr addr, std::span<const std::uint8_t> in);

  template <typename T>
  [[nodiscard]] T read_scalar(PhysAddr addr) const {
    static_assert(std::is_trivially_copyable_v<T>);
    std::array<std::uint8_t, sizeof(T)> buf;
    read(addr, buf);
    T value;
    std::memcpy(&value, buf.data(), sizeof(T));
    return value;
  }

  template <typename T>
  void write_scalar(PhysAddr addr, T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::array<std::uint8_t, sizeof(T)> buf;
    std::memcpy(buf.data(), &value, sizeof(T));
    write(addr, buf);
  }

  /// Number of pages currently materialized (for footprint assertions).
  [[nodiscard]] std::size_t resident_pages() const { return pages_.size(); }

 private:
  using Page = std::array<std::uint8_t, kPageSize>;

  [[nodiscard]] Page& page_for(PhysAddr addr);
  [[nodiscard]] const Page* page_for_read(PhysAddr addr) const;

  std::uint64_t size_bytes_;
  // unordered_map of unique_ptr keeps page addresses stable across rehash.
  mutable std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
};

}  // namespace tdo::sim
