// Ablation (extension): start-gap wear leveling under the hot-row write
// pattern that GEMV-like offloads produce.
//
// The paper argues its compile-time endurance optimizations are orthogonal
// to architectural wear leveling (Section V). This bench composes the two:
// a skewed row-write trace (small stationary tiles always landing on rows
// 0..k-1, as repeated small GEMV offloads do) is replayed with and without
// the start-gap remapper, and the resulting wear skew (max / mean cell
// writes) is compared.
#include <iostream>

#include "pcm/crossbar.hpp"
#include "pcm/wear_leveling.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main() {
  using tdo::support::TextTable;
  constexpr std::uint32_t kRows = 64;
  constexpr std::uint32_t kCols = 64;
  constexpr int kJobs = 4096;
  constexpr std::uint32_t kHotRows = 8;  // small stationary tiles

  auto run = [&](bool leveled) {
    tdo::pcm::CrossbarParams params;
    params.rows = kRows + 1;  // one spare row for the gap
    params.cols = kCols;
    tdo::pcm::Crossbar xbar{params};
    tdo::pcm::StartGapRemapper remap{kRows, /*gap_move_interval=*/16};
    tdo::support::Rng rng{11};
    std::vector<std::int8_t> row(kCols);

    for (int job = 0; job < kJobs; ++job) {
      for (std::uint32_t r = 0; r < kHotRows; ++r) {
        for (auto& w : row) {
          w = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
        }
        const std::uint32_t phys = leveled ? remap.physical_row(r) : r;
        (void)xbar.write_row(phys, row);
        if (leveled && remap.record_write()) {
          // Gap migration costs one extra row write (the displaced row).
          (void)xbar.write_row(remap.gap_position() == kRows
                                   ? 0
                                   : remap.gap_position() + 1,
                               row);
        }
      }
    }
    const double total = static_cast<double>(xbar.total_cell_writes());
    const double mean = total / (static_cast<double>(kRows + 1) * kCols * 2);
    return std::pair<double, double>(
        static_cast<double>(xbar.max_cell_writes()), mean);
  };

  const auto [naive_max, naive_mean] = run(false);
  const auto [leveled_max, leveled_mean] = run(true);

  TextTable table("Ablation - start-gap wear leveling (hot 8-row trace)");
  table.set_header({"Config", "Max cell writes", "Mean cell writes",
                    "Skew (max/mean)"});
  table.add_row({"no wear leveling", TextTable::fmt(naive_max, 0),
                 TextTable::fmt(naive_mean, 1),
                 TextTable::fmt_ratio(naive_max / naive_mean)});
  table.add_row({"start-gap", TextTable::fmt(leveled_max, 0),
                 TextTable::fmt(leveled_mean, 1),
                 TextTable::fmt_ratio(leveled_max / leveled_mean)});
  table.print(std::cout);
  std::cout << "Device lifetime is set by the most-worn cell: start-gap cuts "
               "the wear skew by "
            << TextTable::fmt_ratio((naive_max / naive_mean) /
                                    (leveled_max / leveled_mean))
            << " on this trace, composing with TDO-CIM's compile-time "
               "write reduction.\n";
  return 0;
}
