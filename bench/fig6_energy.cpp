// Reproduces Figure 6 (left): energy (mJ) of the host (Arm-A7) vs host+CIM
// per PolyBench kernel, the MACs-per-CIM-write compute-intensity line, and
// the Geomean / Selective-Geomean summary bars.
//
// Expected shape (paper): GEMM-like kernels (2mm, 3mm, gemm, conv) win by
// one-to-two orders of magnitude; GEMV-like kernels (gesummv, bicg, mvt)
// lose (improvement < 1x) because their compute intensity is ~4 orders of
// magnitude lower; the all-kernel geomean sits far below the selective
// (GEMM-like only / cost-model-approved) geomean.
#include <cmath>
#include <iostream>

#include "polybench/harness.hpp"
#include "support/table.hpp"

int main() {
  using tdo::support::TextTable;
  TextTable table("Figure 6 (left) - Energy per kernel");
  table.set_header({"Kernel", "Host (mJ)", "Host+CIM (mJ)", "Improvement",
                    "MACs per cim-write", "CIM result OK"});

  double log_sum_all = 0.0;
  int count_all = 0;
  double log_sum_selective = 0.0;
  int count_selective = 0;

  for (const std::string& name : tdo::pb::kernel_names()) {
    auto workload = tdo::pb::make_workload(name, tdo::pb::Preset::kPaper);
    if (!workload.is_ok()) continue;
    const auto host = tdo::pb::run_host(*workload);
    const auto cim = tdo::pb::run_cim(*workload);
    if (!host.is_ok() || !cim.is_ok()) {
      std::cerr << name << " failed: " << host.status() << " / "
                << cim.status() << "\n";
      return 1;
    }
    const double improvement =
        host->total_energy / cim->total_energy;
    log_sum_all += std::log(improvement);
    ++count_all;
    // The selective cost model (MACs-per-write threshold) approves exactly
    // the GEMM-like kernels; their geomean is the paper's "Selective" bar.
    if (cim->macs_per_cim_write >= 16.0) {
      log_sum_selective += std::log(improvement);
      ++count_selective;
    }
    table.add_row({name, TextTable::fmt(host->total_energy.millijoules(), 4),
                   TextTable::fmt(cim->total_energy.millijoules(), 4),
                   TextTable::fmt_ratio(improvement),
                   TextTable::fmt(cim->macs_per_cim_write, 1),
                   cim->correct ? "yes" : "NO"});
  }

  const double geomean_all =
      count_all > 0 ? std::exp(log_sum_all / count_all) : 0.0;
  const double geomean_selective =
      count_selective > 0 ? std::exp(log_sum_selective / count_selective) : 0.0;
  table.add_row({"Geomean (all)", "", "", TextTable::fmt_ratio(geomean_all), "", ""});
  table.add_row({"Selective Geomean (GEMM-like)", "", "",
                 TextTable::fmt_ratio(geomean_selective), "", ""});
  table.print(std::cout);
  std::cout << "Paper reference points: Geomean 3.2x, Selective Geomean "
               "32.6x; GEMV-like kernels lose (<1x).\n";
  return 0;
}
