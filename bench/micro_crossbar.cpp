// Google-benchmark microbenchmarks of the analog-model hot paths: crossbar
// GEMV evaluation, row programming, and tile quantization. These measure
// simulator throughput (how fast the model itself runs), which bounds how
// large the PolyBench presets can be.
#include <benchmark/benchmark.h>

#include <vector>

#include "cim/cim_tile.hpp"
#include "pcm/crossbar.hpp"
#include "support/fixed_point.hpp"
#include "support/rng.hpp"

namespace {

void BM_CrossbarGemv(benchmark::State& state) {
  const auto rows = static_cast<std::uint32_t>(state.range(0));
  const auto cols = static_cast<std::uint32_t>(state.range(0));
  tdo::pcm::CrossbarParams params;
  params.rows = rows;
  params.cols = cols;
  tdo::pcm::Crossbar xbar{params};
  tdo::support::Rng rng{1};
  std::vector<std::int8_t> row(cols);
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (auto& w : row) w = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
    xbar.write_row(r, row);
  }
  std::vector<std::int8_t> input(rows);
  for (auto& v : input) v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));

  for (auto _ : state) {
    benchmark::DoNotOptimize(xbar.gemv(input, rows, cols));
  }
  state.SetItemsProcessed(state.iterations() * rows * cols);
}
BENCHMARK(BM_CrossbarGemv)->Arg(64)->Arg(128)->Arg(256);

void BM_CrossbarRowProgram(benchmark::State& state) {
  const auto cols = static_cast<std::uint32_t>(state.range(0));
  tdo::pcm::CrossbarParams params;
  params.rows = 4;
  params.cols = cols;
  tdo::pcm::Crossbar xbar{params};
  std::vector<std::int8_t> row(cols, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(xbar.write_row(0, row));
  }
  state.SetItemsProcessed(state.iterations() * cols);
}
BENCHMARK(BM_CrossbarRowProgram)->Arg(64)->Arg(256);

void BM_QuantizeTile(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  tdo::support::Rng rng{2};
  std::vector<float> values(count);
  for (auto& v : values) v = rng.uniform_f(-2.0f, 2.0f);
  const auto scale = tdo::support::QuantScale::for_max_abs(2.0);
  std::vector<std::int8_t> out(count);
  for (auto _ : state) {
    for (std::size_t i = 0; i < count; ++i) out[i] = scale.quantize(values[i]);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_QuantizeTile)->Arg(256)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
