// Design-space exploration — the use-case the paper's conclusion motivates:
// "We expect our compiler and Gem5 emulator to boost researches in the field
// by providing a transparent and automatic flow to compile entire
// applications on the CIM architecture and perform domains-space exploration
// by tweaking our simulator."
//
// Sweeps the crossbar geometry and the PCM write latency for the gemm
// workload and reports energy / runtime / EDP improvement over the host, all
// through the unmodified compilation flow (the compiler re-plans tiling for
// each geometry).
#include <iostream>

#include "polybench/harness.hpp"
#include "support/table.hpp"

int main() {
  using tdo::support::TextTable;
  auto workload = tdo::pb::make_workload("gemm", tdo::pb::Preset::kPaper);
  if (!workload.is_ok()) return 1;
  const auto host = tdo::pb::run_host(*workload);
  if (!host.is_ok()) {
    std::cerr << host.status() << "\n";
    return 1;
  }

  TextTable geometry("DSE - crossbar geometry sweep (gemm 256^3)");
  geometry.set_header({"Crossbar", "Energy improvement", "Runtime improvement",
                       "EDP improvement", "Correct"});
  for (const std::uint32_t dim : {64u, 128u, 256u, 512u}) {
    tdo::pb::HarnessOptions options;
    options.compile.crossbar_rows = dim;
    options.compile.crossbar_cols = dim;
    // The accelerator model matches the compiler's view of the hardware.
    options.accelerator.tile.crossbar.rows = dim;
    options.accelerator.tile.crossbar.cols = dim;
    const auto cim = tdo::pb::run_cim(*workload, options);
    if (!cim.is_ok()) {
      std::cerr << cim.status() << "\n";
      return 1;
    }
    geometry.add_row(
        {std::to_string(dim) + "x" + std::to_string(dim),
         TextTable::fmt_ratio(host->total_energy / cim->total_energy),
         TextTable::fmt_ratio(host->runtime / cim->runtime),
         TextTable::fmt_ratio(host->edp() / cim->edp()),
         cim->correct ? "yes" : "NO"});
  }
  geometry.print(std::cout);

  TextTable latency("DSE - PCM write-latency sensitivity (gemm 256^3)");
  latency.set_header({"Write latency / row", "Runtime improvement",
                      "EDP improvement"});
  for (const double us : {0.5, 1.0, 2.5, 5.0, 10.0}) {
    tdo::pb::HarnessOptions options;
    options.accelerator.energy.write_latency_per_row =
        tdo::support::Duration::from_us(us);
    const auto cim = tdo::pb::run_cim(*workload, options);
    if (!cim.is_ok()) {
      std::cerr << cim.status() << "\n";
      return 1;
    }
    latency.add_row({TextTable::fmt(us, 1) + " us",
                     TextTable::fmt_ratio(host->runtime / cim->runtime),
                     TextTable::fmt_ratio(host->edp() / cim->edp())});
  }
  latency.print(std::cout);
  std::cout << "Each design point runs the complete, unmodified compilation\n"
               "flow against a re-parameterized accelerator model.\n";
  return 0;
}
