// Sweep: accelerators x stream depth x async copies.
//
// Locates the knee of the multi-device scaling curve for the asynchronous
// offload path: how deep the command stream must be before submission stops
// being the bottleneck, how many accelerator instances the tiled stripes can
// feed, and how much of the remaining time the transfer engine's
// stream-resident copies buy back. Runs the 256^3 PolyBench GEMM with
// 128x128 crossbars so every configuration has several chained tile jobs
// per stripe to pipeline.
//
// Copies and the engine's own weight/vector DMA contend on the per-channel
// busy-window timeline, so the table also reports the contention the copies
// absorbed (ticks waited, chains migrated off the copy channel) and the
// scatter-gather segment count — overlap numbers are exact, not optimistic.
//
// `--smoke` runs a reduced grid on the test-size workload (CI bench-rot
// guard for the copy path).
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "polybench/harness.hpp"
#include "support/table.hpp"

namespace {

struct Sample {
  std::size_t accelerators = 1;
  std::size_t depth = 1;
  bool async_copies = false;
  double seconds = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using tdo::support::TextTable;
  bool smoke = false;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    }
  }
  tdo::benchutil::TraceSession trace{trace_path};
  auto workload = tdo::pb::make_workload(
      "gemm", smoke ? tdo::pb::Preset::kTest : tdo::pb::Preset::kPaper);
  if (!workload.is_ok()) {
    std::cerr << workload.status() << "\n";
    return 1;
  }

  TextTable table(smoke ? "Stream sweep - gemm (smoke)"
                        : "Stream sweep - gemm 256^3, 128x128 tiles");
  table.set_header({"Accels", "Depth", "Async copies", "Runtime",
                    "Overlap ticks", "Copy KiB on stream", "Overlapped KiB",
                    "SG segs", "Contended ticks", "Migrations", "Correct"});

  const std::vector<std::size_t> accel_counts =
      smoke ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4};
  const std::vector<std::size_t> depths =
      smoke ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4, 8};

  std::vector<Sample> samples;
  tdo::benchutil::Json points = tdo::benchutil::Json::array();
  for (const std::size_t accelerators : accel_counts) {
    for (const std::size_t depth : depths) {
      for (const bool async_copies : {false, true}) {
        tdo::pb::HarnessOptions options;
        options.accelerators = accelerators;
        options.runtime.stream.depth = depth;
        options.runtime.xfer.async_copies = async_copies;
        options.compile.crossbar_rows = 128;
        options.compile.crossbar_cols = 128;
        options.accelerator.tile.crossbar.rows = 128;
        options.accelerator.tile.crossbar.cols = 128;
        if (smoke) options.runtime.xfer.min_async_bytes = 1024;
        const auto report = tdo::pb::run_cim(*workload, options);
        if (!report.is_ok()) {
          std::cerr << report.status() << "\n";
          return 1;
        }
        samples.push_back(Sample{accelerators, depth, async_copies,
                                 report->runtime.seconds()});
        {
          using tdo::benchutil::Json;
          Json p = Json::object();
          p.set("accelerators",
                Json::number(static_cast<std::uint64_t>(accelerators)));
          p.set("depth", Json::number(static_cast<std::uint64_t>(depth)));
          p.set("async_copies", Json::boolean(async_copies));
          p.set("runtime_s", Json::number(report->runtime.seconds()));
          p.set("overlap_ticks", Json::number(report->overlap_ticks));
          p.set("copy_bytes", Json::number(report->copy_bytes));
          p.set("overlapped_copy_bytes",
                Json::number(report->overlapped_copy_bytes));
          p.set("copy_segments", Json::number(report->copy_segments));
          p.set("copy_contended_ticks",
                Json::number(report->copy_contended_ticks));
          p.set("correct", Json::boolean(report->correct));
          points.push(std::move(p));
        }
        table.add_row({std::to_string(accelerators), std::to_string(depth),
                       async_copies ? "on" : "off",
                       report->runtime.to_string(),
                       std::to_string(report->overlap_ticks),
                       std::to_string(report->copy_bytes / 1024),
                       std::to_string(report->overlapped_copy_bytes / 1024),
                       std::to_string(report->copy_segments),
                       std::to_string(report->copy_contended_ticks),
                       std::to_string(report->copy_migrations),
                       report->correct ? "yes" : "NO"});
      }
    }
  }
  table.print(std::cout);

  // The knee: per accelerator count, the smallest depth (async copies on)
  // within 2% of that count's best runtime — deeper queues past this point
  // buy nothing, so it is where the scaling curve flattens.
  const auto find = [&samples](std::size_t accelerators, std::size_t depth,
                               bool async_copies) -> const Sample* {
    for (const Sample& s : samples) {
      if (s.accelerators == accelerators && s.depth == depth &&
          s.async_copies == async_copies) {
        return &s;
      }
    }
    return nullptr;
  };
  std::cout << "\nKnee of the scaling curve (async copies on):\n";
  for (const std::size_t accelerators : accel_counts) {
    double best = 0.0;
    for (const std::size_t depth : depths) {
      const Sample* s = find(accelerators, depth, true);
      if (s != nullptr && (best == 0.0 || s->seconds < best)) best = s->seconds;
    }
    for (const std::size_t depth : depths) {
      const Sample* knee = find(accelerators, depth, true);
      if (knee == nullptr || knee->seconds > 1.02 * best) continue;
      std::printf("  %zu accelerator(s): depth %zu (%.3f ms, best %.3f ms)",
                  accelerators, depth, knee->seconds * 1e3, best * 1e3);
      // Async-copy payoff measured at this knee configuration.
      const Sample* sync = find(accelerators, depth, false);
      if (sync != nullptr) {
        std::printf(" - async copies %.1f%% faster",
                    (sync->seconds / knee->seconds - 1.0) * 100.0);
      }
      std::printf("\n");
      break;
    }
  }

  tdo::benchutil::Json results = tdo::benchutil::Json::object();
  results.set("points", std::move(points));
  tdo::benchutil::write_bench_json("sweep_stream", std::move(results));
  return 0;
}
