// Sweep: two-tier CIM fabric - local crossbars vs CXL-style far pools.
//
// Models the disaggregated-memory serving scenario: a few near accelerators
// on the host bus plus a pool of far accelerators behind a contended link
// with a latency multiplier L (DMA derated by L, completions delivered as
// withhold-response messages over the link). A Zipf-weighted serving loop
// runs against the fabric twice per configuration:
//
//   * aware  - the runtime carries the topo::Topology map: placement weighs
//     queue depth by the link multiplier, so near crossbars absorb work
//     until their queues are ~L jobs deep and only the spill rides the far
//     pool (the DTO_IS_NUMA_AWARE analogue);
//   * blind  - no topology attached: flat round-robin over all devices, the
//     pre-tier baseline.
//
// The table shows the placement knee over L x load: at L >= 3 the sweep
// *enforces* that aware placement strictly beats blind round-robin on both
// p99 latency and EDP (exit 1 otherwise). A second experiment migrates a
// resident weight tile near->far over the peer-to-peer path and over the
// host-bounce reference path and enforces that P2P is strictly faster on
// migrated-bytes latency.
//
// `--smoke` runs one tiny configuration of each experiment (CI gate).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cim/accelerator.hpp"
#include "runtime/cim_blas.hpp"
#include "serve/scheduler.hpp"
#include "sim/system.hpp"
#include "support/fixed_point.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "topo/topology.hpp"

namespace {

using tdo::benchutil::ZipfSampler;
using tdo::benchutil::random_matrix;
using tdo::support::Duration;
using tdo::support::Energy;

struct TopoConfig {
  std::size_t near = 2;
  std::size_t far = 2;
  double mult = 4.0;   // far-link latency multiplier L
  bool aware = true;   // topology-aware placement vs blind round-robin
  std::size_t weight_sets = 6;
  std::size_t requests = 64;
  std::uint64_t m = 32, n = 64, k = 64;
  double zipf_s = 1.0;
};

struct TopoResult {
  Duration p99;
  Duration mean;
  Duration runtime;
  double edp = 0.0;
  std::uint64_t near_jobs = 0;
  std::uint64_t far_jobs = 0;
  std::uint64_t link_contended_ticks = 0;
  std::uint64_t withheld_responses = 0;
  bool correct = true;
};

/// Accelerator parameters for a device behind a far link: the pooling hop
/// derates every DMA burst by the link multiplier (bandwidth down, setup
/// up), exactly how CXL-attached memory looks from a DMA engine's seat.
[[nodiscard]] tdo::cim::AcceleratorParams far_params(
    tdo::cim::AcceleratorParams base, std::size_t index, double mult) {
  auto params = tdo::cim::instance_params(std::move(base), index);
  params.dma.bandwidth_bytes_per_sec /= mult;
  params.dma.burst_setup =
      Duration::from_ps(params.dma.burst_setup.picoseconds() * mult);
  return params;
}

/// The two-tier test bench: device ids [0, near) are near-tier, [near,
/// near+far) sit behind one shared far link.
struct Fabric {
  tdo::sim::System system;
  tdo::topo::Link far_link;
  tdo::topo::Topology topology;
  std::vector<std::unique_ptr<tdo::cim::Accelerator>> accels;
  std::unique_ptr<tdo::rt::CimRuntime> runtime;

  Fabric(const TopoConfig& cfg, const tdo::rt::RuntimeConfig& rt_config)
      : far_link{[&] {
          tdo::topo::LinkParams lp;
          lp.latency_multiplier = cfg.mult;
          lp.name = "farlink";
          return lp;
        }()} {
    tdo::cim::AcceleratorParams base;
    for (std::size_t d = 0; d < cfg.near + cfg.far; ++d) {
      const bool is_far = d >= cfg.near;
      auto params = is_far ? far_params(base, d, cfg.mult)
                           : tdo::cim::instance_params(base, d);
      accels.push_back(
          std::make_unique<tdo::cim::Accelerator>(params, system));
      if (is_far) {
        accels.back()->set_response_link(&far_link);
        topology.add_device(tdo::topo::Topology::kFarTier, &far_link);
      } else {
        topology.add_device(tdo::topo::Topology::kNearTier);
      }
    }
    runtime = std::make_unique<tdo::rt::CimRuntime>(rt_config, system,
                                                    *accels.front());
    for (std::size_t d = 1; d < accels.size(); ++d) {
      runtime->add_accelerator(*accels[d]);
    }
    if (cfg.aware) runtime->set_topology(&topology);
  }

  [[nodiscard]] tdo::support::StatusOr<tdo::sim::VirtAddr> upload(
      const std::vector<float>& data) {
    auto va = runtime->malloc_device(data.size() * 4);
    if (!va.is_ok()) return va.status();
    auto pa = system.mmu().translate(*va);
    if (!pa.is_ok()) return pa.status();
    system.memory().write(
        *pa, std::span(reinterpret_cast<const std::uint8_t*>(data.data()),
                       data.size() * 4));
    return *va;
  }
};

[[nodiscard]] tdo::support::StatusOr<TopoResult> run_serving(
    const TopoConfig& cfg) {
  tdo::rt::RuntimeConfig rt_config;
  // Deep enough queues that the near tier can actually back up past the
  // multiplier - the spill knee the sweep is after. (With depth < L the
  // near queue never costs more than an idle far device and the far pool
  // sits unused.)
  rt_config.stream.depth = 8;
  rt_config.residency.enabled = true;
  Fabric fabric{cfg, rt_config};
  TDO_RETURN_IF_ERROR(fabric.runtime->init(0));

  tdo::serve::SchedulerParams serve_params;
  // Static admission knobs: the sweep compares placement policies, and
  // adaptive probing would route a few requests to the host on both sides
  // of the comparison for no informational gain here. Batching is off for
  // the same reason - per-request launches keep the load a stream of
  // individually-placed jobs, which is what the placement knee is about.
  serve_params.admission.adaptive = false;
  serve_params.batching = false;
  serve_params.max_queue_per_tenant = cfg.requests + 1;
  tdo::serve::Scheduler scheduler{serve_params, *fabric.runtime};

  const std::uint64_t elems_b = cfg.k * cfg.n;
  const std::uint64_t elems_a = cfg.m * cfg.k;
  const std::uint64_t elems_c = cfg.m * cfg.n;
  std::vector<tdo::sim::VirtAddr> weights(cfg.weight_sets);
  std::vector<std::vector<float>> weight_data(cfg.weight_sets);
  for (std::size_t w = 0; w < cfg.weight_sets; ++w) {
    weight_data[w] = random_matrix(elems_b, 1.0, 100 + w);
    auto va = fabric.upload(weight_data[w]);
    if (!va.is_ok()) return va.status();
    weights[w] = *va;
  }
  const std::vector<float> input = random_matrix(elems_a, 1.0, 7);
  auto va_a = fabric.upload(input);
  if (!va_a.is_ok()) return va_a.status();
  std::vector<tdo::sim::VirtAddr> va_c(cfg.requests);
  for (std::size_t r = 0; r < cfg.requests; ++r) {
    auto c = fabric.upload(std::vector<float>(elems_c, 0.0f));
    if (!c.is_ok()) return c.status();
    va_c[r] = *c;
  }

  // Warm-up: program every weight set once. This is where placement earns
  // its keep - the tile a weight set is programmed on is where every future
  // request for it streams (residency affinity), so blind round-robin
  // parks ~half the sets behind the far link and pays the multiplier on
  // every hit-path stream phase afterwards, while aware placement keeps
  // them on near silicon until the near tier genuinely runs out of queue.
  for (std::size_t w = 0; w < cfg.weight_sets; ++w) {
    tdo::serve::Request request;
    request.m = cfg.m;
    request.n = cfg.n;
    request.k = cfg.k;
    request.a = va_a.value();
    request.b = weights[w];
    request.c = va_c[w % cfg.requests];
    request.lda = cfg.k;
    request.ldb = cfg.n;
    request.ldc = cfg.n;
    auto id = scheduler.submit(request);
    if (!id.is_ok()) return id.status();
  }
  TDO_RETURN_IF_ERROR(scheduler.drain());
  (void)scheduler.take_completions();

  // ROI: steady-state Zipf traffic over the warmed caches.
  ZipfSampler zipf{cfg.weight_sets, cfg.zipf_s, 42};
  std::vector<std::size_t> choice(cfg.requests);
  const auto before = fabric.system.snapshot();
  const Duration t0 = fabric.system.global_time();
  for (std::size_t r = 0; r < cfg.requests; ++r) {
    choice[r] = zipf.next();
    tdo::serve::Request request;
    request.tenant = static_cast<std::uint32_t>(r % 4);
    request.m = cfg.m;
    request.n = cfg.n;
    request.k = cfg.k;
    request.a = va_a.value();
    request.b = weights[choice[r]];
    request.c = va_c[r];
    request.lda = cfg.k;
    request.ldb = cfg.n;
    request.ldc = cfg.n;
    auto id = scheduler.submit(request);
    if (!id.is_ok()) return id.status();
  }
  TDO_RETURN_IF_ERROR(scheduler.drain());
  const Duration t1 = fabric.system.global_time();
  const auto delta = fabric.system.snapshot().delta_since(before);

  TopoResult result;
  result.runtime = t1 - t0;
  std::vector<Duration> latencies;
  for (const auto& completion : scheduler.take_completions()) {
    latencies.push_back(completion.latency());
  }
  if (latencies.size() != cfg.requests) {
    return tdo::support::internal_error("lost completions");
  }
  std::sort(latencies.begin(), latencies.end(),
            [](Duration a, Duration b) { return a.ticks() < b.ticks(); });
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(0.99 * static_cast<double>(latencies.size())));
  result.p99 = latencies[rank == 0 ? 0 : rank - 1];
  Duration sum;
  for (const Duration d : latencies) sum += d;
  result.mean = Duration::from_ps(sum.picoseconds() /
                                  static_cast<double>(latencies.size()));
  Energy energy;
  for (const auto& [name, pj] : delta.energies_pj) {
    (void)name;
    energy += Energy::from_pj(pj);
  }
  result.edp = tdo::support::energy_delay_product(energy, result.runtime);
  for (std::size_t d = 0; d < fabric.accels.size(); ++d) {
    const std::uint64_t jobs = fabric.accels[d]->jobs_completed();
    if (d < cfg.near) {
      result.near_jobs += jobs;
    } else {
      result.far_jobs += jobs;
      result.withheld_responses += fabric.accels[d]->withheld_responses();
    }
  }
  result.link_contended_ticks = fabric.far_link.contended_ticks();

  // Validate the last request against a host reference (quantization-level
  // tolerance) - far placement and withheld responses must not change math.
  std::vector<float> got(elems_c);
  auto pa_c = fabric.system.mmu().translate(va_c[cfg.requests - 1]);
  if (!pa_c.is_ok()) return pa_c.status();
  fabric.system.memory().read(
      *pa_c, std::span(reinterpret_cast<std::uint8_t*>(got.data()),
                       got.size() * 4));
  const std::vector<float>& b = weight_data[choice[cfg.requests - 1]];
  for (std::uint64_t i = 0; i < cfg.m && result.correct; ++i) {
    for (std::uint64_t j = 0; j < cfg.n; ++j) {
      double acc = 0.0;
      for (std::uint64_t kk = 0; kk < cfg.k; ++kk) {
        acc += static_cast<double>(input[i * cfg.k + kk]) *
               static_cast<double>(b[kk * cfg.n + j]);
      }
      if (std::fabs(acc - static_cast<double>(got[i * cfg.n + j])) > 0.5) {
        result.correct = false;
        break;
      }
    }
  }
  return result;
}

struct MigrationResult {
  Duration elapsed;    ///< migrate + drain, measured from quiescent
  bool adopted = false;  ///< destination serves the tile as a residency hit
  bool correct = true;
};

/// Programs one weight tile on the near device, migrates it to the far
/// device over the requested path, and times the transfer from a quiescent
/// runtime. A follow-up GEMM must hit the migrated tile and stay bit-exact
/// with the host reference.
[[nodiscard]] tdo::support::StatusOr<MigrationResult> run_migration(
    const TopoConfig& cfg, bool peer_to_peer) {
  tdo::rt::RuntimeConfig rt_config;
  rt_config.residency.enabled = true;
  Fabric fabric{cfg, rt_config};
  TDO_RETURN_IF_ERROR(fabric.runtime->init(0));
  auto& runtime = *fabric.runtime;

  const std::uint64_t elems_b = cfg.k * cfg.n;
  const std::vector<float> b_data = random_matrix(elems_b, 1.0, 11);
  const std::vector<float> a_data = random_matrix(cfg.m * cfg.k, 1.0, 12);
  auto va_b = fabric.upload(b_data);
  if (!va_b.is_ok()) return va_b.status();
  auto va_a = fabric.upload(a_data);
  if (!va_a.is_ok()) return va_a.status();
  auto va_c = fabric.upload(std::vector<float>(cfg.m * cfg.n, 0.0f));
  if (!va_c.is_ok()) return va_c.status();

  // Prime: one cacheable GEMM programs the tile on a near crossbar.
  TDO_RETURN_IF_ERROR(runtime.sgemm_async(
      cfg.m, cfg.n, cfg.k, 1.0f, *va_a, cfg.k, *va_b, cfg.n, 0.0f, *va_c,
      cfg.n, tdo::cim::StationaryOperand::kB, /*cacheable=*/true));
  TDO_RETURN_IF_ERROR(runtime.synchronize());

  // The dispatch path's tile key for a single-tile stationary-B GEMM.
  auto pa_b = fabric.system.mmu().translate(*va_b);
  if (!pa_b.is_ok()) return pa_b.status();
  double max_abs = 0.0;
  for (const float v : b_data) {
    max_abs = std::max(max_abs, static_cast<double>(std::fabs(v)));
  }
  tdo::rt::WeightKey key;
  key.rect = tdo::rt::Rect{*pa_b, cfg.n * 4, cfg.n * 4, cfg.k};
  key.ld = cfg.n;
  key.scale = tdo::support::QuantScale::for_max_abs(max_abs).scale;
  key.layout = tdo::cim::StationaryOperand::kB;
  key.rows = static_cast<std::uint32_t>(cfg.k);
  key.cols = static_cast<std::uint32_t>(cfg.n);

  const int to_device = static_cast<int>(cfg.near);  // first far device
  const Duration t0 = fabric.system.global_time();
  TDO_RETURN_IF_ERROR(runtime.migrate_residency(key, to_device, peer_to_peer));
  TDO_RETURN_IF_ERROR(runtime.synchronize());
  MigrationResult result;
  result.elapsed = fabric.system.global_time() - t0;

  // The migrated tile must serve the next request as a hit on the far
  // device, with results matching the host reference.
  const auto hits_before = runtime.residency().report().hits;
  TDO_RETURN_IF_ERROR(runtime.sgemm_async(
      cfg.m, cfg.n, cfg.k, 1.0f, *va_a, cfg.k, *va_b, cfg.n, 0.0f, *va_c,
      cfg.n, tdo::cim::StationaryOperand::kB, /*cacheable=*/true));
  TDO_RETURN_IF_ERROR(runtime.synchronize());
  result.adopted = runtime.residency().report().hits > hits_before &&
                   runtime.residency().report().migrations == 1;

  std::vector<float> got(cfg.m * cfg.n);
  auto pa_c = fabric.system.mmu().translate(*va_c);
  if (!pa_c.is_ok()) return pa_c.status();
  fabric.system.memory().read(
      *pa_c, std::span(reinterpret_cast<std::uint8_t*>(got.data()),
                       got.size() * 4));
  for (std::uint64_t i = 0; i < cfg.m && result.correct; ++i) {
    for (std::uint64_t j = 0; j < cfg.n; ++j) {
      double acc = 0.0;
      for (std::uint64_t kk = 0; kk < cfg.k; ++kk) {
        acc += static_cast<double>(a_data[i * cfg.k + kk]) *
               static_cast<double>(b_data[kk * cfg.n + j]);
      }
      if (std::fabs(acc - static_cast<double>(got[i * cfg.n + j])) > 0.5) {
        result.correct = false;
        break;
      }
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::size_t requests = 64;
  std::size_t weight_sets = 6;
  std::string trace_path;
  tdo::topo::TopologySpec spec;
  spec.near = 2;
  spec.far = 2;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--requests" && i + 1 < argc) {
      requests = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--weight-sets" && i + 1 < argc) {
      weight_sets = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--topology" && i + 1 < argc) {
      const auto parsed = tdo::topo::parse_topology_spec(argv[++i]);
      if (!parsed) {
        std::fprintf(stderr, "bad --topology spec (near:N,far:M[xL])\n");
        return 1;
      }
      spec = *parsed;
    } else {
      std::printf(
          "usage: bench_sweep_topology [--smoke] [--requests R] "
          "[--weight-sets W] [--topology near:N,far:M[xL]] "
          "[--trace out.json]\n");
      return arg == "--help" ? 0 : 1;
    }
  }
  if (spec.far == 0) {
    std::fprintf(stderr, "the sweep needs at least one far device\n");
    return 1;
  }
  tdo::benchutil::TraceSession trace{trace_path};
  using tdo::support::TextTable;

  const std::vector<double> multipliers =
      smoke ? std::vector<double>{4.0} : std::vector<double>{1.5, 2.0, 4.0, 8.0};
  const std::vector<std::size_t> loads =
      smoke ? std::vector<std::size_t>{12} : std::vector<std::size_t>{16, requests};

  TextTable table(
      "Topology sweep - near crossbars vs far CIM pool, aware vs blind "
      "placement");
  table.set_header({"Link x", "Requests", "Placement", "p99", "Mean",
                    "Runtime", "EDP", "Near jobs", "Far jobs", "Link cont.",
                    "Withheld", "Correct"});

  bool gates_ok = true;
  tdo::benchutil::Json points = tdo::benchutil::Json::array();
  for (const double mult : multipliers) {
    for (const std::size_t load : loads) {
      TopoResult results[2];
      for (const bool aware : {false, true}) {
        TopoConfig cfg;
        cfg.near = spec.near;
        cfg.far = spec.far;
        cfg.mult = mult;
        cfg.aware = aware;
        cfg.weight_sets = smoke ? 4 : weight_sets;
        cfg.requests = load;
        const auto result = run_serving(cfg);
        if (!result.is_ok()) {
          std::cerr << result.status() << "\n";
          return 1;
        }
        results[aware ? 1 : 0] = *result;
        char linkx[32], edp[32];
        std::snprintf(linkx, sizeof linkx, "%.1f", mult);
        std::snprintf(edp, sizeof edp, "%.3e", result->edp);
        table.add_row({linkx, std::to_string(load),
                       aware ? "aware" : "blind",
                       result->p99.to_string(), result->mean.to_string(),
                       result->runtime.to_string(), edp,
                       std::to_string(result->near_jobs),
                       std::to_string(result->far_jobs),
                       std::to_string(result->link_contended_ticks),
                       std::to_string(result->withheld_responses),
                       result->correct ? "yes" : "NO"});
        gates_ok = gates_ok && result->correct;
        {
          using tdo::benchutil::Json;
          Json p = Json::object();
          p.set("link_multiplier", Json::number(mult));
          p.set("requests", Json::number(static_cast<std::uint64_t>(load)));
          p.set("aware", Json::boolean(aware));
          p.set("p99_us", Json::number(result->p99.microseconds()));
          p.set("mean_us", Json::number(result->mean.microseconds()));
          p.set("runtime_s", Json::number(result->runtime.seconds()));
          p.set("edp", Json::number(result->edp));
          p.set("near_jobs", Json::number(result->near_jobs));
          p.set("far_jobs", Json::number(result->far_jobs));
          p.set("link_contended_ticks",
                Json::number(result->link_contended_ticks));
          p.set("correct", Json::boolean(result->correct));
          points.push(std::move(p));
        }
      }
      if (mult >= 3.0) {
        // The placement gate: past 3x link latency, topology-aware placement
        // must strictly beat blind round-robin on tail latency and EDP.
        const TopoResult& blind = results[0];
        const TopoResult& aware = results[1];
        if (aware.p99.ticks() >= blind.p99.ticks()) {
          std::fprintf(stderr,
                       "GATE FAILED: aware p99 %s !< blind p99 %s at %.1fx\n",
                       aware.p99.to_string().c_str(),
                       blind.p99.to_string().c_str(), mult);
          gates_ok = false;
        }
        if (aware.edp >= blind.edp) {
          std::fprintf(stderr,
                       "GATE FAILED: aware EDP %.3e !< blind EDP %.3e at "
                       "%.1fx\n",
                       aware.edp, blind.edp, mult);
          gates_ok = false;
        }
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nNear crossbars absorb work until their queues run ~L jobs "
               "deep; only the spill rides the far pool, so the aware rows "
               "keep the tail on near silicon while blind round-robin pays "
               "the link on half its requests.\n\n";

  // --- migration: peer-to-peer vs host-bounce ---
  TextTable migration_table("Residency migration near->far, one weight tile");
  migration_table.set_header(
      {"Path", "Migrated latency", "Adopted", "Correct"});
  Duration elapsed[2];
  for (const bool p2p : {false, true}) {
    TopoConfig cfg;
    cfg.near = 1;
    cfg.far = 1;
    cfg.mult = smoke ? 4.0 : multipliers.back();
    const auto result = run_migration(cfg, p2p);
    if (!result.is_ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    elapsed[p2p ? 1 : 0] = result->elapsed;
    migration_table.add_row({p2p ? "peer-to-peer" : "host-bounce",
                             result->elapsed.to_string(),
                             result->adopted ? "yes" : "NO",
                             result->correct ? "yes" : "NO"});
    gates_ok = gates_ok && result->adopted && result->correct;
  }
  migration_table.print(std::cout);
  if (elapsed[1].ticks() >= elapsed[0].ticks()) {
    std::fprintf(stderr,
                 "GATE FAILED: P2P migration %s !< host-bounce %s\n",
                 elapsed[1].to_string().c_str(),
                 elapsed[0].to_string().c_str());
    gates_ok = false;
  }
  std::cout << "\nPeer-to-peer migration moves the tile in one dev->dev hop; "
               "the host-bounce reference serializes two transfers through a "
               "host staging buffer and drains between them.\n";

  {
    using tdo::benchutil::Json;
    Json results = Json::object();
    results.set("points", std::move(points));
    Json migration = Json::object();
    migration.set("host_bounce_us", Json::number(elapsed[0].microseconds()));
    migration.set("peer_to_peer_us", Json::number(elapsed[1].microseconds()));
    results.set("migration", std::move(migration));
    results.set("ok", Json::boolean(gates_ok));
    tdo::benchutil::write_bench_json("sweep_topology", std::move(results));
  }

  if (!gates_ok) {
    std::cerr << "FAILED: a topology gate did not hold\n";
    return 1;
  }
  return 0;
}
