// Reproduces Table I: CIM and host system configuration + energy model.
// Prints the exact constants every other bench charges, straight from the
// parameter structs (so this table can never drift from the simulation).
#include <iostream>

#include "cim/accelerator.hpp"
#include "pcm/energy_model.hpp"
#include "sim/system.hpp"
#include "support/table.hpp"

int main() {
  using tdo::support::TextTable;
  const tdo::pcm::CimEnergyParams e;
  const tdo::cim::AcceleratorParams accel;
  const tdo::sim::SystemParams sys;

  TextTable cim("Table I - CIM parameters");
  cim.set_header({"CIM Parameter", "Value"});
  cim.add_row({"PCM crossbar technology",
               std::to_string(accel.tile.crossbar.rows) + "x" +
                   std::to_string(accel.tile.crossbar.cols) +
                   " @8-bit (2x 4-bit IBM PCM columns)"});
  cim.add_row({"Compute latency / GEMV", e.compute_latency_per_gemv.to_string()});
  cim.add_row({"Write latency / row", e.write_latency_per_row.to_string()});
  cim.add_row({"Compute energy / 8-bit MAC", e.compute_per_mac8.to_string()});
  cim.add_row({"Write energy / 8-bit weight", e.write_per_weight8.to_string()});
  cim.add_row({"Mixed-signal energy / GEMV", e.mixed_signal_per_gemv.to_string()});
  cim.add_row({"I/O buffer energy / byte-access",
               e.buffer_per_byte_access.to_string()});
  cim.add_row({"Digital logic / GEMV weighted sum",
               e.digital_weighted_sum_per_gemv.to_string()});
  cim.add_row({"Digital logic / extra ALU op",
               e.digital_per_extra_alu_op.to_string()});
  cim.add_row({"DMA + micro-engine / op", e.dma_engine_per_op.to_string()});
  cim.add_row({"ADC sharing (columns per ADC)",
               std::to_string(accel.tile.adc.columns_per_adc)});
  cim.print(std::cout);

  TextTable host("Table I - Host CPU spec");
  host.set_header({"Host Parameter", "Value"});
  host.add_row({"Cores", std::to_string(sys.host.cores) + "x Arm-A7 class @ " +
                             sys.host.frequency.to_string()});
  host.add_row({"L1-I / L1-D", std::to_string(sys.l1i.size_bytes / 1024) +
                                   " KiB / " +
                                   std::to_string(sys.l1d.size_bytes / 1024) +
                                   " KiB"});
  host.add_row({"L2 (shared)", std::to_string(sys.l2.size_bytes / 1024 / 1024) +
                                   " MiB"});
  host.add_row({"Energy / instruction (incl. caches)",
                sys.host.energy_per_inst.to_string()});
  host.add_row({"Base CPI (in-order, partial dual-issue)",
                TextTable::fmt(sys.host.base_cpi, 2)});
  host.add_row({"L2 hit / DRAM latency (cycles)",
                std::to_string(sys.latencies.l2_hit_cycles) + " / " +
                    std::to_string(sys.latencies.dram_cycles)});
  host.print(std::cout);
  return 0;
}
