// Ablation: endurance-aware tiling + interchange (Section III-B, Listing 3)
// on a 512^3 GEMM whose stationary operand does not fit the 256x256
// crossbar. The reuse-friendly order programs each stationary tile once;
// the naive order reprograms it per column chunk.
#include <cstdio>
#include <iostream>

#include "polybench/harness.hpp"
#include "support/table.hpp"

int main() {
  using tdo::support::TextTable;
  const std::int64_t n = 512;
  char source[512];
  std::snprintf(source, sizeof source, R"(
kernel big_gemm(SIZE = %lld) {
  array float A[SIZE][SIZE];
  array float B[SIZE][SIZE];
  array float C[SIZE][SIZE];
  for (i = 0; i < SIZE; i++)
    for (j = 0; j < SIZE; j++)
      for (k = 0; k < SIZE; k++)
        C[i][j] += A[i][k] * B[k][j];
}
)",
                static_cast<long long>(n));

  tdo::pb::Workload w;
  w.name = "big_gemm";
  w.source = source;
  const auto nn = static_cast<std::size_t>(n * n);
  w.inputs["A"] = std::vector<float>(nn, 0.5f);
  w.inputs["B"] = std::vector<float>(nn, 0.25f);
  w.inputs["C"] = std::vector<float>(nn, 0.0f);
  w.expected["C"] =
      std::vector<float>(nn, static_cast<float>(n) * 0.5f * 0.25f);
  w.outputs = {"C"};
  w.tolerance = 2.0;

  TextTable table("Ablation - tiling order for oversized GEMM (512^3)");
  table.set_header({"Tile-loop order", "CIM weights written", "Energy",
                    "Runtime", "Correct"});
  for (const bool interchange : {true, false}) {
    tdo::pb::HarnessOptions options;
    options.compile.enable_tiling = interchange;
    const auto report = tdo::pb::run_cim(w, options);
    if (!report.is_ok()) {
      std::cerr << report.status() << "\n";
      return 1;
    }
    table.add_row({interchange ? "ii,kk (Listing 3 interchange)"
                               : "ii,jj,kk (naive)",
                   std::to_string(report->cim_writes),
                   report->total_energy.to_string(),
                   report->runtime.to_string(),
                   report->correct ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "Expected: the interchange halves crossbar writes at 512^3 "
               "(N / crossbar_cols = 2 column chunks).\n";
  return 0;
}
