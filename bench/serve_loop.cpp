// Serving-scheduler load harness: open- and closed-loop Zipf-tenant traffic.
//
// Models the ROADMAP's end state — many tenants hammering a pool of CIM
// accelerators with inference-style GEMMs against a Zipf-popular universe of
// weight sets — and measures the serving metrics that matter at that level:
// throughput, p50/p95/p99 tail latency per deadline class, residency hit
// rate, CPU-fallback ratio, and batch coalescing.
//
// Three experiments:
//   1. Closed loop, full scheduler (dynamic batching + residency-affinity
//      placement + adaptive admission) vs the no-batching FIFO baseline.
//      The bench FAILS unless the full scheduler strictly beats the
//      baseline on both throughput and p99 latency.
//   2. Open loop at a configured arrival rate (reporting only).
//   3. Adaptive-admission convergence: a static sweep over the
//      min_macs_per_write ladder on a mixed-intensity load finds the best
//      static threshold; the bench FAILS unless the adaptive controller
//      lands within one ladder rung of it.
//
// `--overload` runs only the overload-hardening suite instead: calibrated
// shed-vs-no-shed interactive tails, weighted-DRR shares, the tenant-scale
// flat-cost table, and (with --threads) a cross-thread flood of the
// pump-time per-tenant bound.
//
// `--smoke` shrinks everything for CI. See --help for the load knobs.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "cim/accelerator.hpp"
#include "obs/critical_path.hpp"
#include "obs/energy.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "serve/scheduler.hpp"
#include "topo/topology.hpp"
#include "sim/system.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

namespace {

using tdo::benchutil::ZipfSampler;
using tdo::benchutil::random_matrix;
using tdo::support::Duration;

struct Options {
  bool smoke = false;
  bool overload = false;  ///< run only the overload-hardening suite
  bool dump = false;  ///< print per-request completion records
  std::size_t threads = 0;  ///< submitter threads; 0 skips thread experiments
  std::size_t accelerators = 2;
  std::size_t tenants = 4;
  std::size_t clients_per_tenant = 4;
  std::size_t requests_per_client = 16;
  std::size_t weight_sets = 8;
  double zipf_alpha = 1.0;
  std::size_t batch_max = 8;
  double max_wait_us = 25.0;
  double open_rate_rps = 20000.0;
  std::uint64_t seed = 42;
  std::uint64_t m = 16, n = 64, k = 64;
  /// Two-tier fabric shape (--topology near:N,far:M[xL]); nullopt keeps the
  /// legacy flat fleet of `accelerators` identical devices.
  std::optional<tdo::topo::TopologySpec> topology;
  /// Fabric placement policy for every scheduler in this run (--placement).
  tdo::topo::Placement placement = tdo::topo::Placement::kBufferCentric;
  bool placement_set = false;  ///< --placement given explicitly
  /// Non-empty: run the traced serving experiment and write Perfetto JSON
  /// here (--trace out.json).
  std::string trace_path;
  /// Non-empty: run the SLO burn-rate experiment and write the overloaded
  /// point's sampled metrics JSON here (--metrics out.json).
  std::string metrics_path;
};

/// A fully wired platform plus the serving state one load run needs. With a
/// TopologySpec the fleet splits into a near tier plus a far pool behind one
/// shared link: far devices see their DMA derated by the link multiplier
/// (bandwidth down, burst setup up) and signal completions through the link's
/// withhold-response path, and the runtime gets the topology for
/// placement-cost routing.
struct Platform {
  tdo::sim::System system;
  std::unique_ptr<tdo::topo::Link> far_link;
  tdo::topo::Topology topology;
  std::vector<std::unique_ptr<tdo::cim::Accelerator>> accels;
  std::unique_ptr<tdo::rt::CimRuntime> runtime;

  explicit Platform(std::size_t accelerators,
                    tdo::rt::RuntimeConfig config = {},
                    const std::optional<tdo::topo::TopologySpec>& spec = {}) {
    tdo::cim::AcceleratorParams accel_params;
    const std::size_t count =
        spec.has_value() ? spec->device_count() : accelerators;
    if (spec.has_value() && spec->far > 0) {
      tdo::topo::LinkParams lp;
      lp.latency_multiplier = spec->far_multiplier;
      lp.name = "farlink";
      far_link = std::make_unique<tdo::topo::Link>(lp);
      // The link's counters and energy sink join the registry so metrics
      // samples carry them and the traced run's span-vs-accumulator energy
      // reconciliation sees every charged joule.
      far_link->register_stats(system.stats());
    }
    for (std::size_t i = 0; i < count; ++i) {
      const bool is_far = spec.has_value() && i >= spec->near;
      auto params = tdo::cim::instance_params(accel_params, i);
      if (is_far) {
        params.dma.bandwidth_bytes_per_sec /= spec->far_multiplier;
        params.dma.burst_setup = Duration::from_ps(
            params.dma.burst_setup.picoseconds() * spec->far_multiplier);
      }
      accels.push_back(
          std::make_unique<tdo::cim::Accelerator>(params, system));
      if (is_far) {
        accels.back()->set_response_link(far_link.get());
        topology.add_device(tdo::topo::Topology::kFarTier, far_link.get());
      } else {
        topology.add_device(tdo::topo::Topology::kNearTier);
      }
    }
    config.stream.depth = 2;
    runtime = std::make_unique<tdo::rt::CimRuntime>(config, system,
                                                    *accels.front());
    for (std::size_t i = 1; i < count; ++i) {
      runtime->add_accelerator(*accels[i]);
    }
    if (spec.has_value()) runtime->set_topology(&topology);
  }

  [[nodiscard]] tdo::support::StatusOr<tdo::sim::VirtAddr> upload(
      const std::vector<float>& data) {
    auto va = runtime->malloc_device(data.size() * 4);
    if (!va.is_ok()) return va.status();
    auto pa = system.mmu().translate(*va);
    if (!pa.is_ok()) return pa.status();
    system.memory().write(
        *pa, std::span(reinterpret_cast<const std::uint8_t*>(data.data()),
                       data.size() * 4));
    return *va;
  }
};

struct LoadResult {
  double throughput_rps = 0.0;
  Duration p50, p95, p99;
  double hit_rate = 0.0;
  double fallback_ratio = 0.0;
  double mean_batch = 1.0;
  tdo::serve::ServeReport serve;
  std::vector<tdo::serve::Completion> completions;  // --dump diagnostics
  /// Per-device load split, captured so --dump can print per-tier queue and
  /// occupancy columns after the Platform itself is gone.
  struct DeviceLoad {
    int tier = 0;
    std::uint64_t jobs = 0;  ///< device-side jobs completed (lifetime)
  };
  std::vector<DeviceLoad> devices;
  std::uint64_t link_contended_ticks = 0;
  std::uint64_t link_responses = 0;
  /// Per-deadline-class tails (BENCH_*.json wants class-resolved latency,
  /// not just the merged histogram the table shows).
  struct ClassLatency {
    std::string cls;
    std::uint64_t count = 0;
    Duration p50, p95, p99;
  };
  std::vector<ClassLatency> classes;
  double energy_uj = 0.0;  ///< modeled energy over the ROI, all sinks
  double edp_uj_s = 0.0;   ///< energy-delay product: energy_uj * elapsed s
};

#define BENCH_CHECK(expr)                                        \
  do {                                                           \
    const auto _status = (expr);                                 \
    if (!_status.is_ok()) {                                      \
      std::cerr << #expr << ": " << _status.to_string() << "\n"; \
      std::exit(1);                                              \
    }                                                            \
  } while (0)

/// Shared serving state: weight universe + per-client activation/output
/// buffer pools (rotating so back-to-back requests of one client do not
/// collide on C while the stream pipelines).
struct ServingState {
  std::vector<tdo::sim::VirtAddr> weights;
  struct Client {
    std::uint32_t tenant = 0;
    tdo::serve::DeadlineClass deadline = tdo::serve::DeadlineClass::kStandard;
    std::vector<tdo::sim::VirtAddr> va_a, va_c;
    std::vector<float> host_a;  ///< payload re-uploaded per request
    std::size_t submitted = 0;
    std::size_t completed = 0;
    bool busy = false;
  };
  std::vector<Client> clients;
  ZipfSampler zipf;

  ServingState(Platform& platform, const Options& opts)
      : zipf{opts.weight_sets, opts.zipf_alpha, opts.seed} {
    constexpr std::size_t kPool = 6;
    for (std::size_t w = 0; w < opts.weight_sets; ++w) {
      auto va = platform.upload(
          random_matrix(opts.k * opts.n, 1.0, opts.seed + 100 + w));
      BENCH_CHECK(va.status());
      weights.push_back(*va);
    }
    for (std::size_t t = 0; t < opts.tenants; ++t) {
      for (std::size_t c = 0; c < opts.clients_per_tenant; ++c) {
        Client client;
        client.tenant = static_cast<std::uint32_t>(t);
        client.deadline =
            static_cast<tdo::serve::DeadlineClass>(t % tdo::serve::kDeadlineClasses);
        client.host_a =
            random_matrix(opts.m * opts.k, 1.0, opts.seed + 7 + t * 31 + c);
        for (std::size_t p = 0; p < kPool; ++p) {
          auto a = platform.upload(client.host_a);
          BENCH_CHECK(a.status());
          auto out = platform.upload(std::vector<float>(opts.m * opts.n, 0.0f));
          BENCH_CHECK(out.status());
          client.va_a.push_back(*a);
          client.va_c.push_back(*out);
        }
        clients.push_back(std::move(client));
      }
    }
  }

  [[nodiscard]] tdo::serve::Request next_request(const Options& opts,
                                                 std::size_t client_index) {
    Client& client = clients[client_index];
    const std::size_t w = zipf.next();
    const std::size_t pool = client.submitted % client.va_a.size();
    tdo::serve::Request request;
    request.tenant = client.tenant;
    request.deadline = client.deadline;
    request.op = tdo::serve::Op::kSgemm;
    request.m = opts.m;
    request.n = opts.n;
    request.k = opts.k;
    request.a = client.va_a[pool];
    request.b = weights[w];
    request.c = client.va_c[pool];
    request.lda = opts.k;
    request.ldb = opts.n;
    request.ldc = opts.n;
    request.cacheable = true;
    client.submitted += 1;
    client.busy = true;
    return request;
  }
};

/// Counter baseline captured at the warm-up ROI marker so the reported
/// rates describe steady state, not the cold start (the same
/// snapshot-around-ROI discipline the latency histograms use).
struct RoiBase {
  std::uint64_t residency_hits = 0, residency_misses = 0;
  std::uint64_t stream_enqueued = 0, stream_fallbacks = 0;
  std::uint64_t serve_launches = 0, serve_completed = 0;
  double energy_pj = 0.0;  ///< every registered sink, for ROI energy deltas

  static RoiBase capture(Platform& platform,
                         tdo::serve::Scheduler& scheduler) {
    RoiBase base;
    for (const auto& [name, pj] :
         platform.system.stats().snapshot().energies_pj) {
      base.energy_pj += pj;
    }
    const auto residency = platform.runtime->residency().report();
    base.residency_hits = residency.hits;
    base.residency_misses = residency.misses;
    const auto stream = platform.runtime->stream().report();
    base.stream_enqueued = stream.enqueued;
    base.stream_fallbacks = stream.cpu_fallbacks;
    const auto serve = scheduler.report();
    base.serve_launches = serve.launches;
    base.serve_completed = serve.completed;
    return base;
  }
};

[[nodiscard]] LoadResult finish_result(Platform& platform,
                                       tdo::serve::Scheduler& scheduler,
                                       const RoiBase& roi,
                                       std::uint64_t completed,
                                       Duration elapsed) {
  LoadResult result;
  result.throughput_rps =
      static_cast<double>(completed) / std::max(elapsed.seconds(), 1e-12);
  tdo::support::LatencyHistogram all;
  for (std::size_t c = 0; c < tdo::serve::kDeadlineClasses; ++c) {
    const auto hist =
        scheduler.class_latency(static_cast<tdo::serve::DeadlineClass>(c));
    all.merge(hist);
    if (hist.count() > 0) {
      result.classes.push_back(LoadResult::ClassLatency{
          tdo::serve::to_string(static_cast<tdo::serve::DeadlineClass>(c)),
          hist.count(), hist.quantile(0.50), hist.quantile(0.95),
          hist.quantile(0.99)});
    }
  }
  result.p50 = all.quantile(0.50);
  result.p95 = all.quantile(0.95);
  result.p99 = all.quantile(0.99);
  double energy_pj = 0.0;
  for (const auto& [name, pj] :
       platform.system.stats().snapshot().energies_pj) {
    energy_pj += pj;
  }
  result.energy_uj = (energy_pj - roi.energy_pj) * 1e-6;
  result.edp_uj_s = result.energy_uj * elapsed.seconds();
  const auto residency = platform.runtime->residency().report();
  const std::uint64_t hits = residency.hits - roi.residency_hits;
  const std::uint64_t lookups =
      hits + residency.misses - roi.residency_misses;
  result.hit_rate = lookups == 0 ? 0.0
                                 : static_cast<double>(hits) /
                                       static_cast<double>(lookups);
  const auto stream = platform.runtime->stream().report();
  const std::uint64_t enqueued = stream.enqueued - roi.stream_enqueued;
  result.fallback_ratio =
      enqueued == 0
          ? 0.0
          : static_cast<double>(stream.cpu_fallbacks - roi.stream_fallbacks) /
                static_cast<double>(enqueued);
  result.serve = scheduler.report();
  const std::uint64_t launches = result.serve.launches - roi.serve_launches;
  result.mean_batch =
      launches == 0
          ? 1.0
          : static_cast<double>(result.serve.completed - roi.serve_completed) /
                static_cast<double>(launches);
  for (std::size_t d = 0; d < platform.accels.size(); ++d) {
    result.devices.push_back(LoadResult::DeviceLoad{
        platform.topology.tier(d), platform.accels[d]->jobs_completed()});
  }
  if (platform.far_link) {
    result.link_contended_ticks = platform.far_link->contended_ticks();
    result.link_responses = platform.far_link->responses();
  }
  return result;
}

/// Closed loop: every client keeps exactly one request in flight.
[[nodiscard]] LoadResult run_closed_loop(const Options& opts, bool batching,
                                         bool affinity, bool adaptive) {
  Platform platform{opts.accelerators, {}, opts.topology};
  BENCH_CHECK(platform.runtime->init(0));
  ServingState state{platform, opts};

  tdo::serve::SchedulerParams params;
  params.batching = batching;
  params.residency_affinity = affinity;
  params.placement = opts.placement;
  params.admission.adaptive = adaptive;
  params.admission.probe_period = 0;  // bootstrap probes only (steady load)
  params.batcher.max_batch = opts.batch_max;
  params.batcher.max_wait = Duration::from_us(opts.max_wait_us);
  tdo::serve::Scheduler scheduler{params, *platform.runtime};

  std::map<std::uint64_t, std::size_t> owner;  // request id -> client
  std::vector<tdo::serve::Completion> all_completions;
  std::uint64_t completed = 0;
  const std::uint64_t target =
      opts.tenants * opts.clients_per_tenant * opts.requests_per_client;
  // Steady-state ROI: the first quarter warms the residency cache and the
  // admission EWMAs; stats and timing restart at the ROI marker.
  const std::uint64_t warmup = std::max<std::uint64_t>(
      state.clients.size(), target / 4);
  bool roi_open = false;
  std::uint64_t roi_completed = 0;
  RoiBase roi = RoiBase::capture(platform, scheduler);
  Duration t0 = platform.system.global_time();

  while (completed < target) {
    if (!roi_open && completed >= warmup) {
      scheduler.reset_latency_stats();
      roi = RoiBase::capture(platform, scheduler);
      t0 = platform.system.global_time();
      roi_open = true;
    }
    bool progressed = false;
    for (std::size_t i = 0; i < state.clients.size(); ++i) {
      auto& client = state.clients[i];
      if (client.busy || client.submitted >= opts.requests_per_client) continue;
      const auto request = state.next_request(opts, i);
      auto id = scheduler.submit(request);
      BENCH_CHECK(id.status());
      owner[*id] = i;
      progressed = true;
    }
    BENCH_CHECK(scheduler.pump());
    for (const auto& completion : scheduler.take_completions()) {
      auto it = owner.find(completion.id);
      if (it != owner.end()) {
        state.clients[it->second].busy = false;
        state.clients[it->second].completed += 1;
        owner.erase(it);
      }
      all_completions.push_back(completion);
      completed += 1;
      if (roi_open) roi_completed += 1;
      progressed = true;
    }
    if (progressed || completed >= target) continue;
    if (!scheduler.advance_to_next_event()) BENCH_CHECK(scheduler.drain());
  }
  BENCH_CHECK(scheduler.drain());
  for (const auto& completion : scheduler.take_completions()) {
    all_completions.push_back(completion);
    completed += 1;
    if (roi_open) roi_completed += 1;
  }
  const Duration elapsed = platform.system.global_time() - t0;
  LoadResult result =
      finish_result(platform, scheduler, roi, roi_completed, elapsed);
  result.completions = std::move(all_completions);
  return result;
}

/// Open loop: requests arrive on a fixed-rate jittered schedule regardless
/// of completion progress (arrival stamps predate submission when the
/// scheduler falls behind, so latency includes front-end backlog).
[[nodiscard]] LoadResult run_open_loop(const Options& opts) {
  Platform platform{opts.accelerators, {}, opts.topology};
  BENCH_CHECK(platform.runtime->init(0));
  ServingState state{platform, opts};

  tdo::serve::SchedulerParams params;
  params.batcher.max_batch = opts.batch_max;
  params.batcher.max_wait = Duration::from_us(opts.max_wait_us);
  params.admission.probe_period = 0;
  tdo::serve::Scheduler scheduler{params, *platform.runtime};

  const std::uint64_t total =
      opts.tenants * opts.clients_per_tenant * opts.requests_per_client;
  // Deterministic jittered arrivals around the configured rate; client
  // round-robin keeps per-client request ordering sane.
  tdo::support::Rng jitter{opts.seed ^ 0x5eedull};
  const double gap_us = 1e6 / opts.open_rate_rps;
  std::vector<std::pair<Duration, std::size_t>> arrivals;
  double at_us = 1.0;
  for (std::uint64_t r = 0; r < total; ++r) {
    arrivals.emplace_back(Duration::from_us(at_us),
                          static_cast<std::size_t>(r % state.clients.size()));
    at_us += gap_us * jitter.uniform(0.5, 1.5);
  }

  std::uint64_t completed = 0;
  std::uint64_t roi_completed = 0;
  const std::uint64_t warmup = std::max<std::uint64_t>(
      state.clients.size(), total / 4);
  bool roi_open = false;
  std::size_t next_arrival = 0;
  RoiBase roi = RoiBase::capture(platform, scheduler);
  Duration t0 = platform.system.global_time();
  while (completed < total) {
    if (!roi_open && completed >= warmup) {
      scheduler.reset_latency_stats();
      roi = RoiBase::capture(platform, scheduler);
      t0 = platform.system.global_time();
      roi_open = true;
    }
    const Duration now = platform.system.global_time();
    bool progressed = false;
    while (next_arrival < arrivals.size() &&
           arrivals[next_arrival].first <= now) {
      auto request = state.next_request(opts, arrivals[next_arrival].second);
      request.arrival = arrivals[next_arrival].first;
      auto id = scheduler.submit(request);
      BENCH_CHECK(id.status());
      next_arrival += 1;
      progressed = true;
    }
    BENCH_CHECK(scheduler.pump());
    const auto done = scheduler.take_completions();
    completed += done.size();
    if (roi_open) roi_completed += done.size();
    progressed = progressed || !done.empty();
    if (progressed || completed >= total) continue;

    std::optional<tdo::sim::Tick> arrival_wake;
    if (next_arrival < arrivals.size()) {
      arrival_wake = arrivals[next_arrival].first.ticks();
    }
    if (!scheduler.advance_to_next_event(arrival_wake)) {
      BENCH_CHECK(scheduler.drain());
    }
  }
  BENCH_CHECK(scheduler.drain());
  roi_completed += scheduler.take_completions().size();
  const Duration elapsed = platform.system.global_time() - t0;
  return finish_result(platform, scheduler, roi, roi_completed, elapsed);
}

/// Adaptive-admission convergence experiment: mixed-intensity sequential
/// load, static threshold sweep vs the adaptive controller.
struct AdmissionOutcome {
  int best_static_rung = 0;
  double best_static = 0.0;
  int adaptive_rung = 0;
  double adaptive = 0.0;
  bool converged = false;
};

[[nodiscard]] Duration run_admission_load(const Options& opts, bool adaptive,
                                          double static_threshold,
                                          double* adaptive_knob) {
  tdo::rt::RuntimeConfig config;
  config.stream.min_macs_per_write = adaptive ? 0.0 : static_threshold;
  Platform platform{1, config};
  BENCH_CHECK(platform.runtime->init(0));

  tdo::serve::SchedulerParams params;
  params.batching = false;  // per-request launches: the threshold's domain
  params.residency_affinity = false;
  params.admission.adaptive = adaptive;
  params.admission.probe_period = 8;
  tdo::serve::Scheduler scheduler{params, *platform.runtime};

  // Mixed intensities: m sweeps the ladder around the knee; every request is
  // uncacheable so each one pays (or dodges) the programming cost the
  // threshold arbitrates.
  const std::vector<std::uint64_t> ms{1, 2, 4, 8, 16, 32, 64};
  const std::uint64_t n = 64, k = 64;
  const std::size_t rounds = opts.smoke ? 6 : 16;

  std::vector<tdo::sim::VirtAddr> va_a, va_b, va_c;
  for (const std::uint64_t m : ms) {
    auto a = platform.upload(random_matrix(m * k, 1.0, opts.seed + m));
    auto b = platform.upload(random_matrix(k * n, 1.0, opts.seed + 200 + m));
    auto c = platform.upload(std::vector<float>(m * n, 0.0f));
    BENCH_CHECK(a.status());
    BENCH_CHECK(b.status());
    BENCH_CHECK(c.status());
    va_a.push_back(*a);
    va_b.push_back(*b);
    va_c.push_back(*c);
  }

  const Duration t0 = platform.system.global_time();
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t s = 0; s < ms.size(); ++s) {
      // Fresh activations ride the scheduler's measured upload path, feeding
      // the adaptive min_async_bytes break-even estimate.
      BENCH_CHECK(scheduler.upload(va_a[s], va_a[s], ms[s] * k * 4));
      tdo::serve::Request request;
      request.tenant = 0;
      request.op = tdo::serve::Op::kSgemm;
      request.m = ms[s];
      request.n = n;
      request.k = k;
      request.a = va_a[s];
      request.b = va_b[s];
      request.c = va_c[s];
      request.lda = k;
      request.ldb = n;
      request.ldc = n;
      request.cacheable = false;
      BENCH_CHECK(scheduler.submit(request).status());
      BENCH_CHECK(scheduler.drain());  // sequential: isolate per-site costs
    }
  }
  if (adaptive_knob != nullptr) {
    *adaptive_knob = scheduler.admission().report().min_macs_per_write;
  }
  return platform.system.global_time() - t0;
}

[[nodiscard]] AdmissionOutcome run_admission_experiment(const Options& opts) {
  // The sweep and the controller share one ladder, so "within one rung" is
  // well defined.
  tdo::serve::AdmissionController ladder{{}, 0.0, 0};
  AdmissionOutcome outcome;
  Duration best = Duration::from_sec(1e18);
  const int rungs = opts.smoke ? 8 : 10;
  for (int i = 0; i < rungs; ++i) {
    const double threshold = ladder.rung(i);
    const Duration elapsed =
        run_admission_load(opts, /*adaptive=*/false, threshold, nullptr);
    std::printf("  static min_macs_per_write %-8.0f -> %s\n", threshold,
                elapsed.to_string().c_str());
    if (elapsed < best) {
      best = elapsed;
      outcome.best_static = threshold;
      outcome.best_static_rung = i;
    }
  }
  double knob = 0.0;
  const Duration adaptive_time =
      run_admission_load(opts, /*adaptive=*/true, 0.0, &knob);
  outcome.adaptive = knob;
  outcome.adaptive_rung = ladder.rung_index(knob);
  outcome.converged =
      std::abs(outcome.adaptive_rung - outcome.best_static_rung) <= 1;
  std::printf("  adaptive                      -> %s (knob %.0f, rung %d; "
              "best static %.0f, rung %d)\n",
              adaptive_time.to_string().c_str(), knob, outcome.adaptive_rung,
              outcome.best_static, outcome.best_static_rung);
  return outcome;
}

// --- thread-parallel submission experiments ---
//
// The container may have a single core, so every headline number here is
// *simulated*: submitter threads advance per-shard simulated clocks
// (SchedulerParams::submit_cost per request), and the tables read those
// clocks back. Real OS threads still run the ring/atomic paths, so a
// ThreadSanitizer build exercises the actual concurrency.

/// Submit-scaling run: N real threads push pre-built requests through the
/// scheduler's sharded submission ring, each charged `submit_cost` on its
/// own simulated shard clock. Submitted-request throughput is the request
/// count over the widest shard clock — deterministic regardless of OS
/// interleaving (end-to-end completion rate can wiggle with dispatch order).
struct SubmitScale {
  std::size_t threads = 0;
  double submit_rps = 0.0;
  double e2e_rps = 0.0;
  std::uint64_t ring_contended = 0;
  std::uint64_t latency_contended = 0;
  std::uint64_t stream_ring_contended = 0;
  std::uint64_t rejected = 0;
};

[[nodiscard]] SubmitScale run_submit_scaling(const Options& opts,
                                             std::size_t threads) {
  Platform platform{opts.accelerators, {}, opts.topology};
  BENCH_CHECK(platform.runtime->init(0));
  ServingState state{platform, opts};

  tdo::serve::SchedulerParams params;
  params.batcher.max_batch = opts.batch_max;
  params.batcher.max_wait = Duration::from_us(opts.max_wait_us);
  params.admission.probe_period = 0;
  params.submit_cost = Duration::from_us(2.0).ticks();
  tdo::serve::Scheduler scheduler{params, *platform.runtime};

  const std::uint64_t total =
      opts.tenants * opts.clients_per_tenant * opts.requests_per_client;
  std::vector<tdo::serve::Request> requests;
  requests.reserve(total);
  for (std::uint64_t r = 0; r < total; ++r) {
    requests.push_back(state.next_request(opts, r % state.clients.size()));
  }

  // Shard clocks start at current simulated time; their widest advance is
  // the N-wide submission span.
  scheduler.sync_submit_clocks();
  const tdo::sim::Tick base = scheduler.max_submit_clock();
  std::atomic<std::uint64_t> rejected{0};
  std::vector<std::thread> submitters;
  submitters.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    submitters.emplace_back([&, t] {
      for (std::uint64_t r = t; r < total; r += threads) {
        if (!scheduler.submit_from_thread(requests[r]).is_ok()) {
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& submitter : submitters) submitter.join();
  const tdo::sim::Tick span = scheduler.max_submit_clock() - base;

  // Join the submitters' timelines before driving: requests carry arrival
  // stamps from the shard clocks, so simulated time first catches up to the
  // last submission, then the driver pumps the backlog to completion.
  platform.system.events().advance_to(scheduler.max_submit_clock());
  const std::uint64_t accepted = total - rejected.load();
  std::uint64_t completed = 0;
  while (completed < accepted) {
    BENCH_CHECK(scheduler.pump());
    completed += scheduler.take_completions().size();
    if (completed >= accepted) break;
    if (!scheduler.advance_to_next_event()) BENCH_CHECK(scheduler.drain());
  }
  BENCH_CHECK(scheduler.drain());
  completed += scheduler.take_completions().size();

  SubmitScale result;
  result.threads = threads;
  result.submit_rps = static_cast<double>(accepted) /
                      std::max(tdo::sim::from_ticks(span).seconds(), 1e-12);
  result.e2e_rps =
      static_cast<double>(completed) /
      std::max(platform.system.global_time().seconds(), 1e-12);
  result.ring_contended = scheduler.ring_lock_contended();
  result.latency_contended = scheduler.latency_lock_contended();
  result.stream_ring_contended = platform.runtime->stream().ring_lock_contended();
  result.rejected = rejected.load();
  return result;
}

/// Matched-arrival contended run: one external arrival schedule shared by
/// every thread count, at a demand rate one submitter cannot sustain
/// (submit_cost > gap). Request latency counts from the *external* arrival,
/// so the front-end backlog a lone submitter accumulates shows up in p99 —
/// and extra submitter threads remove it. Single-threaded simulated
/// replay: fully deterministic.
struct ContendedLoad {
  std::size_t threads = 0;
  Duration p50, p99;
  Duration worst_wait;  ///< max submission-pipeline delay vs external arrival
};

[[nodiscard]] ContendedLoad run_contended_loop(const Options& opts,
                                               std::size_t threads) {
  Platform platform{opts.accelerators, {}, opts.topology};
  BENCH_CHECK(platform.runtime->init(0));
  ServingState state{platform, opts};

  tdo::serve::SchedulerParams params;
  params.batcher.max_batch = opts.batch_max;
  params.batcher.max_wait = Duration::from_us(opts.max_wait_us);
  params.admission.probe_period = 0;
  tdo::serve::Scheduler scheduler{params, *platform.runtime};

  const std::uint64_t total =
      opts.tenants * opts.clients_per_tenant * opts.requests_per_client;
  // Demand every 40 us; each submission pipelines 120 us of front-end work.
  // One thread falls behind (3x oversubscribed), four keep up with margin.
  const Duration gap = Duration::from_us(40.0);
  const Duration submit_cost = Duration::from_us(120.0);
  struct Slot {
    Duration arrival, ready;
    std::size_t client = 0;
  };
  std::vector<Slot> schedule;
  schedule.reserve(total);
  std::vector<Duration> clocks(threads, platform.system.global_time());
  Duration at = platform.system.global_time() + Duration::from_us(1.0);
  Duration worst_wait = Duration::zero();
  for (std::uint64_t r = 0; r < total; ++r) {
    Duration& clock = clocks[r % threads];
    clock = std::max(clock, at) + submit_cost;
    schedule.push_back(Slot{at, clock, r % state.clients.size()});
    worst_wait = std::max(worst_wait, clock - at);
    at += gap;
  }

  std::uint64_t completed = 0;
  std::size_t next = 0;
  while (completed < total) {
    const Duration now = platform.system.global_time();
    bool progressed = false;
    while (next < schedule.size() && schedule[next].ready <= now) {
      auto request = state.next_request(opts, schedule[next].client);
      request.arrival = schedule[next].arrival;
      BENCH_CHECK(scheduler.submit(request).status());
      next += 1;
      progressed = true;
    }
    BENCH_CHECK(scheduler.pump());
    const auto done = scheduler.take_completions();
    completed += done.size();
    progressed = progressed || !done.empty();
    if (progressed || completed >= total) continue;
    std::optional<tdo::sim::Tick> wake;
    if (next < schedule.size()) wake = schedule[next].ready.ticks();
    if (!scheduler.advance_to_next_event(wake)) BENCH_CHECK(scheduler.drain());
  }
  BENCH_CHECK(scheduler.drain());
  (void)scheduler.take_completions();

  ContendedLoad result;
  result.threads = threads;
  tdo::support::LatencyHistogram all;
  for (std::size_t c = 0; c < tdo::serve::kDeadlineClasses; ++c) {
    all.merge(scheduler.class_latency(static_cast<tdo::serve::DeadlineClass>(c)));
  }
  result.p50 = all.quantile(0.50);
  result.p99 = all.quantile(0.99);
  result.worst_wait = worst_wait;
  return result;
}

// --- overload-hardening experiments (--overload) ---
//
// The suite that gates this PR's serving-layer hardening: calibrated
// overload points (shed vs no-shed vs uncontended interactive p99), the
// weighted-DRR share table, the tenant-scale flat-cost table, and — with
// --threads — a cross-thread flood that exercises the pump-time per-tenant
// bound under real submitters. `--overload` runs only this suite, so CI can
// gate it separately from the headline serving experiments.

/// One calibrated load point: batch-class heavies from tenant 0 paced at
/// `load_factor` x the measured service rate, a modest interactive stream
/// from tenant 1 across the first 85% of the heavy horizon (steady-state
/// overload only — once arrivals stop, shedding winds down and the residual
/// backlog coalesces into full-width batches, a drain-down artifact the
/// shed-vs-no-shed comparison is not about).
struct OverloadPoint {
  double load_factor = 0.0;
  Duration interactive_p50, interactive_p99;
  std::uint64_t interactive_done = 0;
  std::uint64_t shed = 0;
  Duration heavy_service;
};

/// What one metrics-sampled overload point recorded (--metrics): the SLO
/// monitor's breach sequence plus the exported time-series JSON.
struct MetricsCapture {
  std::vector<tdo::obs::SloBreach> breaches;
  std::uint64_t samples = 0;
  std::uint64_t evicted = 0;
  std::string json;  ///< the point's tdo.metrics.v1 export
};

[[nodiscard]] OverloadPoint run_overload_point(
    const Options& opts, bool shed_enabled, double load_factor,
    MetricsCapture* metrics = nullptr) {
  Platform platform{1};
  BENCH_CHECK(platform.runtime->init(0));

  constexpr std::uint64_t kHeavyM = 64, kLightM = 8, kN = 64, kK = 64;
  constexpr std::size_t kPool = 8;
  auto va_b = platform.upload(random_matrix(kK * kN, 1.0, opts.seed + 500));
  auto heavy_a =
      platform.upload(random_matrix(kHeavyM * kK, 1.0, opts.seed + 501));
  auto light_a =
      platform.upload(random_matrix(kLightM * kK, 1.0, opts.seed + 502));
  BENCH_CHECK(va_b.status());
  BENCH_CHECK(heavy_a.status());
  BENCH_CHECK(light_a.status());
  std::vector<tdo::sim::VirtAddr> heavy_c, light_c;
  for (std::size_t p = 0; p < kPool; ++p) {
    auto hc = platform.upload(std::vector<float>(kHeavyM * kN, 0.0f));
    auto lc = platform.upload(std::vector<float>(kLightM * kN, 0.0f));
    BENCH_CHECK(hc.status());
    BENCH_CHECK(lc.status());
    heavy_c.push_back(*hc);
    light_c.push_back(*lc);
  }

  tdo::serve::SchedulerParams params;
  params.shed.enabled = shed_enabled;
  params.batcher.max_batch = 4;
  params.batcher.max_wait = Duration::from_us(10.0);
  // Static admission: the shedder's capacity estimate is the scheduler's own
  // service EWMA, and adaptive knob retunes under overload would move the
  // host/device knee mid-run.
  params.admission.adaptive = false;
  tdo::serve::Scheduler scheduler{params, *platform.runtime};

  const auto make = [&](bool heavy, std::size_t index) {
    tdo::serve::Request request;
    request.tenant = heavy ? 0 : 1;
    request.deadline = heavy ? tdo::serve::DeadlineClass::kBatch
                             : tdo::serve::DeadlineClass::kInteractive;
    request.op = tdo::serve::Op::kSgemm;
    request.m = heavy ? kHeavyM : kLightM;
    request.n = kN;
    request.k = kK;
    request.a = heavy ? *heavy_a : *light_a;
    request.b = *va_b;
    request.c = heavy ? heavy_c[index % kPool] : light_c[index % kPool];
    request.lda = kK;
    request.ldb = kN;
    request.ldc = kN;
    request.cacheable = true;
    return request;
  };

  // Warm the service EWMA and measure the uncontended heavy service time
  // that calibrates the offered load.
  auto& events = platform.system.events();
  for (int i = 0; i < 12; ++i) {
    BENCH_CHECK(scheduler.submit(make(true, i)).status());
    BENCH_CHECK(scheduler.drain());
    BENCH_CHECK(scheduler.submit(make(false, i)).status());
    BENCH_CHECK(scheduler.drain());
  }
  const tdo::sim::Tick measure_start = events.now();
  for (int i = 0; i < 8; ++i) {
    BENCH_CHECK(scheduler.submit(make(true, i)).status());
    BENCH_CHECK(scheduler.drain());
  }
  const tdo::sim::Tick heavy_service =
      std::max<tdo::sim::Tick>((events.now() - measure_start) / 8, 1);
  (void)scheduler.take_completions();
  scheduler.reset_latency_stats();

  // Metrics sampling + SLO monitor over the measured window only (warm-up
  // excluded, same ROI discipline the histograms use). Windows and the
  // interactive latency target are calibrated from the measured heavy
  // service time, so the same specs hold across machines and --seed.
  std::optional<tdo::obs::SloMonitor> slo;
  if (metrics != nullptr) {
    tdo::obs::SloParams slo_params;
    slo_params.fast_window_ticks = 6 * heavy_service;
    slo_params.slow_window_ticks = 18 * heavy_service;
    std::vector<tdo::obs::SloSpec> specs;
    // At 0.5x load the windowed mean interactive latency sits well under
    // one heavy service time (most requests wait behind nothing; the
    // unlucky ones behind a fraction of one heavy job), while a no-shed
    // flood queues interactive arrivals behind a standing heavy backlog,
    // pushing the mean past several heavy service times. 2x splits the two
    // regimes with margin on both sides.
    specs.push_back(
        tdo::obs::SloSpec{"interactive", 2 * heavy_service, 0.02});
    slo.emplace(slo_params, std::move(specs));
    slo->attach(platform.system.stats());
    tdo::obs::MetricsParams metrics_params;
    metrics_params.sample_every =
        std::max<std::uint64_t>(heavy_service / 4, 1);
    auto& registry = tdo::obs::MetricsRegistry::instance();
    registry.start(&platform.system.stats(), metrics_params);
    registry.attach_slo(&*slo);
  }

  constexpr int kHeavy = 96;
  constexpr int kLight = 24;
  tdo::support::Rng rng{opts.seed ^ 0x0f0adull};
  struct Arrival {
    tdo::sim::Tick at = 0;
    bool heavy = false;
  };
  const tdo::sim::Tick start = events.now();
  const tdo::sim::Tick heavy_gap = std::max<tdo::sim::Tick>(
      static_cast<tdo::sim::Tick>(static_cast<double>(heavy_service) /
                                  load_factor),
      1);
  std::vector<Arrival> schedule;
  schedule.reserve(kHeavy + kLight);
  for (int i = 0; i < kHeavy; ++i) {
    const auto jitter = static_cast<tdo::sim::Tick>(
        rng.uniform_int(0, static_cast<std::int64_t>(heavy_gap / 4) + 1));
    schedule.push_back(Arrival{
        start + static_cast<tdo::sim::Tick>(i) * heavy_gap + jitter, true});
  }
  const tdo::sim::Tick light_gap =
      std::max<tdo::sim::Tick>(
          static_cast<tdo::sim::Tick>(kHeavy) * heavy_gap * 85 /
              (100 * kLight),
          1);
  for (int i = 0; i < kLight; ++i) {
    const auto jitter = static_cast<tdo::sim::Tick>(
        rng.uniform_int(0, static_cast<std::int64_t>(light_gap / 4) + 1));
    schedule.push_back(Arrival{
        start + static_cast<tdo::sim::Tick>(i) * light_gap + jitter, false});
  }
  std::sort(schedule.begin(), schedule.end(),
            [](const Arrival& a, const Arrival& b) { return a.at < b.at; });

  std::size_t next = 0;
  std::size_t sequence = 0;
  while (next < schedule.size()) {
    if (events.now() >= schedule[next].at) {
      BENCH_CHECK(
          scheduler.submit(make(schedule[next].heavy, sequence)).status());
      sequence += 1;
      next += 1;
      continue;
    }
    BENCH_CHECK(scheduler.pump());
    (void)scheduler.take_completions();
    scheduler.advance_to_next_event(schedule[next].at);
  }
  BENCH_CHECK(scheduler.drain());
  (void)scheduler.take_completions();

  if (metrics != nullptr) {
    auto& registry = tdo::obs::MetricsRegistry::instance();
    registry.force_sample(events.now());  // final state always recorded
    std::ostringstream json;
    registry.export_json(json);
    metrics->json = json.str();
    metrics->samples = registry.samples().size();
    metrics->evicted = registry.evicted();
    metrics->breaches = slo->breaches();
    registry.attach_slo(nullptr);
    registry.stop();
    slo->detach(platform.system.stats());
  }

  OverloadPoint point;
  point.load_factor = load_factor;
  const auto interactive =
      scheduler.class_latency(tdo::serve::DeadlineClass::kInteractive);
  point.interactive_p50 = interactive.quantile(0.50);
  point.interactive_p99 = interactive.quantile(0.99);
  point.interactive_done = interactive.count();
  point.shed = scheduler.report().shed;
  point.heavy_service = tdo::sim::from_ticks(heavy_service);
  return point;
}

/// Weighted-DRR share measurement: three tenants with 3:2:1 weights, all
/// backlogged on one device with batching off (completion order is pull
/// order), shares counted over a window cut before the heaviest tenant's
/// queue can run dry.
struct DrrShares {
  struct Tenant {
    std::uint32_t weight = 0;
    double share = 0.0;
    double expected = 0.0;
  };
  std::vector<Tenant> tenants;
  bool within_tolerance = true;
};

[[nodiscard]] DrrShares run_drr_shares(const Options& opts) {
  Platform platform{1};
  BENCH_CHECK(platform.runtime->init(0));

  constexpr std::uint64_t kM = 8, kN = 32, kK = 32;
  constexpr std::size_t kPool = 8;
  auto va_b = platform.upload(random_matrix(kK * kN, 1.0, opts.seed + 510));
  auto va_a = platform.upload(random_matrix(kM * kK, 1.0, opts.seed + 511));
  BENCH_CHECK(va_b.status());
  BENCH_CHECK(va_a.status());
  std::vector<tdo::sim::VirtAddr> va_c;
  for (std::size_t p = 0; p < kPool; ++p) {
    auto c = platform.upload(std::vector<float>(kM * kN, 0.0f));
    BENCH_CHECK(c.status());
    va_c.push_back(*c);
  }

  const std::vector<std::uint32_t> weights{3, 2, 1};
  const std::size_t per_tenant = opts.smoke ? 48 : 120;
  tdo::serve::SchedulerParams params;
  params.batching = false;  // completion order == DRR pull order
  params.admission.adaptive = false;
  params.max_queue_per_tenant = per_tenant;
  tdo::serve::Scheduler scheduler{params, *platform.runtime};
  for (std::size_t t = 0; t < weights.size(); ++t) {
    scheduler.set_tenant_weight(static_cast<std::uint32_t>(t), weights[t]);
  }

  for (std::size_t r = 0; r < per_tenant; ++r) {
    for (std::size_t t = 0; t < weights.size(); ++t) {
      tdo::serve::Request request;
      request.tenant = static_cast<std::uint32_t>(t);
      request.deadline = tdo::serve::DeadlineClass::kStandard;
      request.op = tdo::serve::Op::kSgemm;
      request.m = kM;
      request.n = kN;
      request.k = kK;
      request.a = *va_a;
      request.b = *va_b;
      request.c = va_c[(r * weights.size() + t) % kPool];
      request.lda = kK;
      request.ldb = kN;
      request.ldc = kN;
      BENCH_CHECK(scheduler.submit(request).status());
    }
  }
  BENCH_CHECK(scheduler.drain());
  const auto completions = scheduler.take_completions();

  // While every tenant is backlogged each DRR round serves 3+2+1; the
  // heaviest tenant runs dry first, after per_tenant * (sum/max) total
  // completions — cut the window 10% short of that.
  std::uint32_t sum_w = 0, max_w = 0;
  for (const std::uint32_t w : weights) {
    sum_w += w;
    max_w = std::max(max_w, w);
  }
  const std::size_t window =
      per_tenant * sum_w / max_w * 9 / 10;
  std::vector<std::size_t> counts(weights.size(), 0);
  for (std::size_t i = 0; i < window && i < completions.size(); ++i) {
    counts[completions[i].tenant] += 1;
  }
  DrrShares shares;
  for (std::size_t t = 0; t < weights.size(); ++t) {
    DrrShares::Tenant row;
    row.weight = weights[t];
    row.share = static_cast<double>(counts[t]) / static_cast<double>(window);
    row.expected =
        static_cast<double>(weights[t]) / static_cast<double>(sum_w);
    shares.within_tolerance =
        shares.within_tolerance &&
        std::abs(row.share / row.expected - 1.0) <= 0.15;
    shares.tenants.push_back(row);
  }
  return shares;
}

/// One row of the tenant-scale table: host nanoseconds of scheduling work
/// per served request with the per-tenant maps holding `tenants` entries.
/// The maps are pre-populated through set_tenant_weight (registration is the
/// cheap part); the timed region drives a fixed request count through the
/// full submit -> pump -> complete path, so the measured cost is the DRR
/// active-list churn plus map lookups — flat when pop_next_request is O(1),
/// linear in `tenants` if a full-scan scheduler ever regresses.
struct ScalePoint {
  std::size_t tenants = 0;
  double ns_per_request = 0.0;
};

[[nodiscard]] ScalePoint run_scale_point(const Options& opts,
                                         std::size_t tenants) {
  Platform platform{1};
  BENCH_CHECK(platform.runtime->init(0));

  constexpr std::uint64_t kM = 4, kN = 32, kK = 32;
  constexpr std::size_t kPool = 16;
  auto va_b = platform.upload(random_matrix(kK * kN, 1.0, opts.seed + 520));
  auto va_a = platform.upload(random_matrix(kM * kK, 1.0, opts.seed + 521));
  BENCH_CHECK(va_b.status());
  BENCH_CHECK(va_a.status());
  std::vector<tdo::sim::VirtAddr> va_c;
  for (std::size_t p = 0; p < kPool; ++p) {
    auto c = platform.upload(std::vector<float>(kM * kN, 0.0f));
    BENCH_CHECK(c.status());
    va_c.push_back(*c);
  }

  tdo::serve::SchedulerParams params;
  params.admission.adaptive = false;
  params.track_tenant_latency = false;  // a histogram per tenant dominates
  tdo::serve::Scheduler scheduler{params, *platform.runtime};
  for (std::size_t t = 0; t < tenants; ++t) {
    scheduler.set_tenant_weight(static_cast<std::uint32_t>(t), 1);
  }

  const std::size_t requests = opts.smoke ? 1024 : 4096;
  const std::size_t stride = std::max<std::size_t>(tenants / requests, 1);
  const auto run_trial = [&]() -> double {
    std::size_t submitted = 0, completed = 0;
    const auto t0 = std::chrono::steady_clock::now();
    while (completed < requests) {
      while (submitted < requests && submitted - completed < 64) {
        tdo::serve::Request request;
        request.tenant =
            static_cast<std::uint32_t>((submitted * stride) % tenants);
        request.deadline = tdo::serve::DeadlineClass::kStandard;
        request.op = tdo::serve::Op::kSgemm;
        request.m = kM;
        request.n = kN;
        request.k = kK;
        request.a = *va_a;
        request.b = *va_b;
        request.c = va_c[submitted % kPool];
        request.lda = kK;
        request.ldb = kN;
        request.ldc = kN;
        BENCH_CHECK(scheduler.submit(request).status());
        submitted += 1;
      }
      BENCH_CHECK(scheduler.pump());
      completed += scheduler.take_completions().size();
      if (completed < requests && !scheduler.advance_to_next_event()) {
        BENCH_CHECK(scheduler.drain());
        completed += scheduler.take_completions().size();
      }
    }
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           static_cast<double>(requests);
  };
  // Two trials, keep the faster: the first also warms allocator and caches.
  const double first = run_trial();
  const double second = run_trial();
  ScalePoint point;
  point.tenants = tenants;
  point.ns_per_request = std::min(first, second);
  return point;
}

/// Cross-thread flood for the pump-time tenant bound: N submitter threads
/// push well past max_queue_per_tenant through the sharded ring while the
/// driver is idle, then the driver drains. Every ring-accepted request must
/// come back exactly once — as a completion or a pump-time rejection.
struct FloodOutcome {
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;  ///< pump-time per-tenant bound drops
  bool accounted = false;
};

[[nodiscard]] FloodOutcome run_overload_flood(const Options& opts) {
  Platform platform{1};
  BENCH_CHECK(platform.runtime->init(0));

  constexpr std::uint64_t kM = 4, kN = 32, kK = 32;
  auto va_b = platform.upload(random_matrix(kK * kN, 1.0, opts.seed + 530));
  auto va_a = platform.upload(random_matrix(kM * kK, 1.0, opts.seed + 531));
  auto va_c = platform.upload(std::vector<float>(kM * kN, 0.0f));
  BENCH_CHECK(va_b.status());
  BENCH_CHECK(va_a.status());
  BENCH_CHECK(va_c.status());

  tdo::serve::SchedulerParams params;
  params.admission.adaptive = false;
  params.max_queue_per_tenant = 32;
  tdo::serve::Scheduler scheduler{params, *platform.runtime};

  constexpr std::uint32_t kTenants = 4;
  const std::size_t per_thread = 256;
  std::atomic<std::uint64_t> ring_rejected{0};
  std::vector<std::thread> submitters;
  submitters.reserve(opts.threads);
  for (std::size_t t = 0; t < opts.threads; ++t) {
    submitters.emplace_back([&, t] {
      for (std::size_t r = 0; r < per_thread; ++r) {
        tdo::serve::Request request;
        request.tenant = static_cast<std::uint32_t>((t + r) % kTenants);
        request.deadline = tdo::serve::DeadlineClass::kStandard;
        request.op = tdo::serve::Op::kSgemm;
        request.m = kM;
        request.n = kN;
        request.k = kK;
        request.a = *va_a;
        request.b = *va_b;
        request.c = *va_c;
        request.lda = kK;
        request.ldb = kN;
        request.ldc = kN;
        if (!scheduler.submit_from_thread(request).is_ok()) {
          ring_rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& submitter : submitters) submitter.join();
  BENCH_CHECK(scheduler.drain());
  (void)scheduler.take_completions();

  FloodOutcome outcome;
  outcome.accepted =
      opts.threads * per_thread - ring_rejected.load();
  const auto report = scheduler.report();
  outcome.completed = report.completed;
  outcome.rejected = report.rejected;
  outcome.accounted =
      outcome.completed + outcome.rejected == outcome.accepted;
  return outcome;
}

[[nodiscard]] int run_overload_suite(const Options& opts) {
  using tdo::support::TextTable;
  bool ok = true;

  constexpr double kOverloadFactor = 3.0;  // offered load vs capacity
  const OverloadPoint uncontended =
      run_overload_point(opts, /*shed_enabled=*/true, 0.5);
  const OverloadPoint shed =
      run_overload_point(opts, /*shed_enabled=*/true, kOverloadFactor);
  const OverloadPoint no_shed =
      run_overload_point(opts, /*shed_enabled=*/false, kOverloadFactor);

  TextTable points("Overload shedding - interactive tail (1 accelerator, "
                   "batch-class flood)");
  points.set_header({"Config", "Load", "Intr p50 us", "Intr p99 us",
                     "Intr done", "Shed"});
  const auto add_point = [&](const std::string& name,
                             const OverloadPoint& p) {
    char load[32], p50[32], p99[32];
    std::snprintf(load, sizeof load, "%.1fx", p.load_factor);
    std::snprintf(p50, sizeof p50, "%.1f", p.interactive_p50.microseconds());
    std::snprintf(p99, sizeof p99, "%.1f", p.interactive_p99.microseconds());
    points.add_row({name, load, p50, p99,
                    std::to_string(p.interactive_done),
                    std::to_string(p.shed)});
  };
  add_point("shed uncontended", uncontended);
  add_point("shed overloaded", shed);
  add_point("no-shed overloaded", no_shed);
  points.print(std::cout);

  if (shed.shed == 0) {
    std::fprintf(stderr,
                 "FAILED: shedding never fired at %.1fx offered load\n",
                 kOverloadFactor);
    ok = false;
  }
  if (uncontended.shed != 0) {
    std::fprintf(stderr,
                 "FAILED: shedding fired %llu times at 0.5x offered load\n",
                 static_cast<unsigned long long>(uncontended.shed));
    ok = false;
  }
  if (!(shed.interactive_p99 < no_shed.interactive_p99)) {
    std::fprintf(stderr,
                 "FAILED: shed interactive p99 %.1f us does not strictly "
                 "beat the no-shed reference %.1f us\n",
                 shed.interactive_p99.microseconds(),
                 no_shed.interactive_p99.microseconds());
    ok = false;
  }
  if (!(shed.interactive_p99.picoseconds() <=
        3.0 * uncontended.interactive_p99.picoseconds())) {
    std::fprintf(stderr,
                 "FAILED: shed interactive p99 %.1f us exceeds 3x the "
                 "uncontended value %.1f us\n",
                 shed.interactive_p99.microseconds(),
                 uncontended.interactive_p99.microseconds());
    ok = false;
  }

  const DrrShares shares = run_drr_shares(opts);
  TextTable drr("Weighted DRR shares (backlogged, batching off)");
  drr.set_header({"Tenant", "Weight", "Share", "Expected", "Error"});
  for (std::size_t t = 0; t < shares.tenants.size(); ++t) {
    const auto& row = shares.tenants[t];
    char share[32], expected[32], error[32];
    std::snprintf(share, sizeof share, "%.1f%%", row.share * 100.0);
    std::snprintf(expected, sizeof expected, "%.1f%%", row.expected * 100.0);
    std::snprintf(error, sizeof error, "%+.1f%%",
                  (row.share / row.expected - 1.0) * 100.0);
    drr.add_row({std::to_string(t), std::to_string(row.weight), share,
                 expected, error});
  }
  std::printf("\n");
  drr.print(std::cout);
  if (!shares.within_tolerance) {
    std::fprintf(stderr,
                 "FAILED: a weighted-DRR share is more than 15%% off its "
                 "configured weight\n");
    ok = false;
  }

  std::vector<std::size_t> scales{100, 1000, 10000};
  if (!opts.smoke) scales.push_back(100000);
  TextTable scale("Tenant-scale pump cost (fixed request count, "
                  "pre-registered tenants)");
  scale.set_header({"Tenants", "ns/request", "vs 10^2"});
  std::vector<ScalePoint> scale_points;
  for (const std::size_t tenants : scales) {
    scale_points.push_back(run_scale_point(opts, tenants));
    const ScalePoint& p = scale_points.back();
    char ns[32], ratio[32];
    std::snprintf(ns, sizeof ns, "%.0f", p.ns_per_request);
    std::snprintf(ratio, sizeof ratio, "%.2fx",
                  p.ns_per_request / scale_points.front().ns_per_request);
    scale.add_row({std::to_string(tenants), ns, ratio});
  }
  std::printf("\n");
  scale.print(std::cout);
  const double worst_ratio =
      scale_points.back().ns_per_request /
      scale_points.front().ns_per_request;
  if (worst_ratio > 1.25) {
    std::fprintf(stderr,
                 "FAILED: per-request pump cost grows %.2fx from %zu to %zu "
                 "tenants (flat-cost gate is 1.25x)\n",
                 worst_ratio, scales.front(), scales.back());
    ok = false;
  }

  if (opts.threads > 0) {
    const FloodOutcome flood = run_overload_flood(opts);
    std::printf("\nCross-thread flood (%zu threads, tenant bound 32): "
                "%llu accepted -> %llu completed + %llu rejected at pump\n",
                opts.threads,
                static_cast<unsigned long long>(flood.accepted),
                static_cast<unsigned long long>(flood.completed),
                static_cast<unsigned long long>(flood.rejected));
    if (!flood.accounted) {
      std::fprintf(stderr,
                   "FAILED: flood accounting mismatch (accepted != "
                   "completed + rejected)\n");
      ok = false;
    }
    if (flood.rejected == 0) {
      std::fprintf(stderr,
                   "FAILED: the pump-time per-tenant bound never rejected "
                   "during the flood\n");
      ok = false;
    }
  }

  // Machine-readable results (simulated-clock quantities only — the
  // wall-clock scale/flood sections would make the baseline diff flaky).
  {
    using tdo::benchutil::Json;
    const auto point_json = [](const OverloadPoint& p) {
      Json j = Json::object();
      j.set("load_factor", Json::number(p.load_factor));
      j.set("interactive_p50_us",
            Json::number(p.interactive_p50.microseconds()));
      j.set("interactive_p99_us",
            Json::number(p.interactive_p99.microseconds()));
      j.set("interactive_done", Json::number(p.interactive_done));
      j.set("shed", Json::number(p.shed));
      return j;
    };
    Json results = Json::object();
    results.set("shed_uncontended", point_json(uncontended));
    results.set("shed_overloaded", point_json(shed));
    results.set("no_shed_overloaded", point_json(no_shed));
    Json drr_json = Json::array();
    for (const auto& tenant : shares.tenants) {
      Json t = Json::object();
      t.set("weight", Json::number(static_cast<std::uint64_t>(tenant.weight)));
      t.set("share", Json::number(tenant.share));
      t.set("expected", Json::number(tenant.expected));
      drr_json.push(std::move(t));
    }
    results.set("drr_shares", std::move(drr_json));
    results.set("ok", Json::boolean(ok));
    tdo::benchutil::write_bench_json("serve_loop_overload",
                                     std::move(results));
  }

  return ok ? 0 : 1;
}

// --- pseudo-asynchronous host/device split experiment ---

/// One measured point of the split sweep (or the auto-tuned run).
struct SplitPoint {
  double fraction = 0.0;
  Duration elapsed;
  std::uint64_t split_calls = 0;
  std::uint64_t host_macs = 0;
  std::uint64_t device_macs = 0;
  Duration stripe_mean;  ///< mean host-stripe span (join latency per stripe)
};

[[nodiscard]] SplitPoint run_split_load(const Options& opts, double fraction,
                                        std::size_t reps) {
  tdo::rt::RuntimeConfig config;
  config.split.enabled = true;
  config.split.cpu_fraction = fraction;
  config.split.pool.workers = 4;
  config.stream.min_macs_per_write = 0.0;  // isolate the split effect
  Platform platform{1, config};
  BENCH_CHECK(platform.runtime->init(0));

  const std::uint64_t d = opts.smoke ? 128 : 256;
  auto va_a = platform.upload(random_matrix(d * d, 1.0, opts.seed + 301));
  auto va_b = platform.upload(random_matrix(d * d, 1.0, opts.seed + 302));
  auto va_c = platform.upload(std::vector<float>(d * d, 0.0f));
  BENCH_CHECK(va_a.status());
  BENCH_CHECK(va_b.status());
  BENCH_CHECK(va_c.status());

  const Duration t0 = platform.system.global_time();
  for (std::size_t rep = 0; rep < reps; ++rep) {
    BENCH_CHECK(platform.runtime->sgemm_async(
        d, d, d, 1.0f, *va_a, d, *va_b, d, 0.0f, *va_c, d,
        tdo::cim::StationaryOperand::kB));
    BENCH_CHECK(platform.runtime->synchronize());  // the stripe join point
  }
  SplitPoint point;
  point.fraction = fraction;
  point.elapsed = platform.system.global_time() - t0;
  const auto& stats = platform.runtime->stats();
  point.split_calls = stats.split_calls;
  point.host_macs = stats.split_host_macs;
  point.device_macs = stats.split_device_macs;
  const auto pool = platform.runtime->host_pool().report();
  if (pool.jobs > 0) {
    point.stripe_mean = tdo::sim::from_ticks(pool.busy_ticks / pool.jobs);
  }
  return point;
}

struct SplitOutcome {
  std::vector<SplitPoint> sweep;  ///< index = ladder rung (0 = device only)
  int best_rung = 0;
  double adaptive_fraction = 0.0;
  int adaptive_rung = 0;
  bool split_wins = false;
  bool converged = false;
};

[[nodiscard]] SplitOutcome run_split_experiment(const Options& opts) {
  tdo::serve::AdmissionController ladder{{}, 0.0, 0};
  SplitOutcome outcome;
  const std::size_t reps = opts.smoke ? 2 : 3;
  const int rungs = 10;
  Duration best = Duration::from_sec(1e18);
  for (int i = 0; i <= rungs; ++i) {
    SplitPoint point = run_split_load(opts, ladder.split_rung(i), reps);
    if (opts.dump) {
      std::printf(
          "  static split %-7.4f -> %-12s (stripes %llu, host/dev MACs "
          "%llu/%llu, stripe mean %s)\n",
          point.fraction, point.elapsed.to_string().c_str(),
          static_cast<unsigned long long>(point.split_calls),
          static_cast<unsigned long long>(point.host_macs),
          static_cast<unsigned long long>(point.device_macs),
          point.stripe_mean.to_string().c_str());
    }
    if (point.elapsed < best) {
      best = point.elapsed;
      outcome.best_rung = i;
    }
    outcome.sweep.push_back(std::move(point));
  }
  outcome.split_wins =
      outcome.best_rung > 0 && best < outcome.sweep.front().elapsed;

  // Auto-tune: the scheduler feeds the admission controller's device and
  // host EWMAs (device jobs + pool stripes + host probes) and pushes the
  // quantized ideal fraction into the runtime at each dispatch.
  tdo::rt::RuntimeConfig config;
  config.split.enabled = true;
  config.split.pool.workers = 4;
  config.stream.min_macs_per_write = 0.0;
  Platform platform{1, config};
  BENCH_CHECK(platform.runtime->init(0));
  tdo::serve::SchedulerParams params;
  params.batching = false;
  params.residency_affinity = false;
  params.admission.adaptive = true;
  params.admission.probe_period = 4;
  tdo::serve::Scheduler scheduler{params, *platform.runtime};

  const std::uint64_t d = opts.smoke ? 128 : 256;
  auto va_a = platform.upload(random_matrix(d * d, 1.0, opts.seed + 311));
  auto va_b = platform.upload(random_matrix(d * d, 1.0, opts.seed + 312));
  auto va_c = platform.upload(std::vector<float>(d * d, 0.0f));
  BENCH_CHECK(va_a.status());
  BENCH_CHECK(va_b.status());
  BENCH_CHECK(va_c.status());
  const std::size_t adaptive_reps = opts.smoke ? 6 : 14;
  for (std::size_t rep = 0; rep < adaptive_reps; ++rep) {
    tdo::serve::Request request;
    request.tenant = 0;
    request.op = tdo::serve::Op::kSgemm;
    request.m = d;
    request.n = d;
    request.k = d;
    request.a = *va_a;
    request.b = *va_b;
    request.c = *va_c;
    request.lda = d;
    request.ldb = d;
    request.ldc = d;
    request.cacheable = false;
    BENCH_CHECK(scheduler.submit(request).status());
    BENCH_CHECK(scheduler.drain());
  }
  outcome.adaptive_fraction = platform.runtime->split_fraction();
  outcome.adaptive_rung = ladder.split_rung_index(outcome.adaptive_fraction);
  outcome.converged =
      std::abs(outcome.adaptive_rung - outcome.best_rung) <= 1;
  std::printf(
      "  device-only %s; best static split %.4f (rung %d) -> %s; auto-tuned "
      "%.4f (rung %d)\n",
      outcome.sweep.front().elapsed.to_string().c_str(),
      outcome.sweep[static_cast<std::size_t>(outcome.best_rung)].fraction,
      outcome.best_rung, best.to_string().c_str(), outcome.adaptive_fraction,
      outcome.adaptive_rung);
  return outcome;
}

// --- SLO burn-rate experiment (--metrics) ---

/// Self-gated burn-rate check: the monitor must stay silent on a healthy
/// 0.5x point and must page (>= 1 interactive latency breach) on a 3x
/// batch-class flood with shedding disabled. The overloaded point's sampled
/// series is exported to the --metrics path.
struct MetricsOutcome {
  MetricsCapture low, high;
  std::uint64_t high_interactive_latency = 0;
  bool ok = true;
};

[[nodiscard]] MetricsOutcome run_metrics_experiment(const Options& opts) {
  MetricsOutcome outcome;
  const OverloadPoint low_point =
      run_overload_point(opts, /*shed_enabled=*/true, 0.5, &outcome.low);
  const OverloadPoint high_point =
      run_overload_point(opts, /*shed_enabled=*/false, 3.0, &outcome.high);

  tdo::support::TextTable table(
      "SLO burn-rate monitor (interactive: latency 2x heavy svc, shed 2%)");
  table.set_header({"Config", "Load", "Samples", "Breaches", "First breach"});
  const auto add = [&](const std::string& name, const OverloadPoint& p,
                       const MetricsCapture& m) {
    char load[32];
    std::snprintf(load, sizeof load, "%.1fx", p.load_factor);
    std::string first = "-";
    if (!m.breaches.empty()) {
      const auto& b = m.breaches.front();
      char at[64];
      std::snprintf(at, sizeof at, "%s.%s @ %.0f us", b.cls.c_str(),
                    b.kind.c_str(), static_cast<double>(b.tick) / 1e6);
      first = at;
    }
    table.add_row({name, load, std::to_string(m.samples),
                   std::to_string(m.breaches.size()), first});
  };
  add("shed 0.5x", low_point, outcome.low);
  add("no-shed 3.0x", high_point, outcome.high);
  table.print(std::cout);

  for (const auto& breach : outcome.high.breaches) {
    if (breach.cls == "interactive" && breach.kind == "latency") {
      outcome.high_interactive_latency += 1;
    }
  }
  if (!outcome.low.breaches.empty()) {
    std::fprintf(stderr,
                 "FAILED: SLO monitor fired %zu breach(es) at 0.5x offered "
                 "load\n",
                 outcome.low.breaches.size());
    outcome.ok = false;
  }
  if (outcome.high_interactive_latency == 0) {
    std::fprintf(stderr,
                 "FAILED: no interactive latency breach at 3.0x offered "
                 "load with shedding disabled\n");
    outcome.ok = false;
  }

  std::ofstream out(opts.metrics_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open --metrics path %s\n",
                 opts.metrics_path.c_str());
    outcome.ok = false;
  } else {
    out << outcome.high.json;
    std::printf("metrics: %llu samples (%llu evicted) -> %s\n",
                static_cast<unsigned long long>(outcome.high.samples),
                static_cast<unsigned long long>(outcome.high.evicted),
                opts.metrics_path.c_str());
  }
  return outcome;
}

// --- simulation-time tracing experiment (--trace) ---

/// What the traced run proved, for the bench's self-gates.
struct TraceOutcome {
  std::vector<tdo::obs::RequestPath> paths;
  std::size_t span_track_kinds = 0;  ///< of {engine, dma, link, sched, pool}
  std::size_t events = 0;
  std::uint64_t dropped = 0;
  std::uint64_t completed = 0;
  bool reconciled = true;  ///< every path: segment sum == e2e exactly
  bool joined_any = false;  ///< at least one request joined an engine job
  /// Per-segment energy attribution over the trace's span population.
  tdo::obs::EnergyBreakdown energy;
  bool energy_reconciled = false;  ///< segment sum == span total, exactly
  /// Span-derived total matches the live accumulators (tiny fJ-vs-double
  /// rounding tolerance) — proves the spans saw every charged joule.
  bool energy_matches_accumulators = false;
  std::uint64_t metrics_samples = 0;  ///< samples riding the trace run
};

/// Dedicated traced serving run (the headline experiments above deliberately
/// run untraced so their numbers stay bit-identical with tracing off). The
/// fleet is forced two-tier and the pseudo-async split is enabled so every
/// span family — engine jobs, DMA copy windows, far-link responses,
/// host-pool stripes, per-class request spans — appears in one trace.
[[nodiscard]] TraceOutcome run_traced(const Options& opts) {
  tdo::obs::Tracer::instance().start({});

  tdo::rt::RuntimeConfig config;
  config.split.enabled = true;
  config.split.cpu_fraction = 1.0 / 16.0;
  config.split.min_macs = 1;  // serve-sized GEMMs sit below the default gate
  config.split.pool.workers = 2;
  // Serve-sized activation uploads (m*k floats) ride the async DMA path so
  // the trace carries dma/<accel>.ch<k> copy-window spans.
  config.xfer.min_async_bytes = 256;
  std::optional<tdo::topo::TopologySpec> spec = opts.topology;
  if (!spec.has_value()) {
    tdo::topo::TopologySpec two_tier;
    two_tier.near = 1;
    two_tier.far = 2;
    two_tier.far_multiplier = 2.0;
    spec = two_tier;
  }
  Platform platform{spec->device_count(), config, spec};
  BENCH_CHECK(platform.runtime->init(0));
  ServingState state{platform, opts};

  // Metrics ride the traced run so the counter trajectories land as
  // Perfetto counter tracks under the same spans (50 us sample grid).
  auto& metrics_registry = tdo::obs::MetricsRegistry::instance();
  tdo::obs::MetricsParams metrics_params;
  metrics_params.sample_every = 50'000'000;
  metrics_registry.start(&platform.system.stats(), metrics_params);

  tdo::serve::SchedulerParams params;
  // Caller-centric by default: near fills to depth first and the overflow
  // spills to the far pool, so far-link response spans are guaranteed under
  // closed-loop pressure. An explicit --placement wins.
  params.placement = opts.placement_set
                         ? opts.placement
                         : tdo::topo::Placement::kCallerCentric;
  params.batcher.max_batch = opts.batch_max;
  params.batcher.max_wait = Duration::from_us(opts.max_wait_us);
  // Static knobs: adaptive admission would override the forced split
  // fraction with its cold EWMA and starve the host-pool track.
  params.admission.adaptive = false;
  params.admission.probe_period = 0;
  tdo::serve::Scheduler scheduler{params, *platform.runtime};

  auto& tracer = tdo::obs::Tracer::instance();
  TraceOutcome outcome;
  const std::uint64_t target =
      opts.tenants * opts.clients_per_tenant * opts.requests_per_client;
  std::map<std::uint64_t, std::size_t> owner;
  while (outcome.completed < target) {
    bool progressed = false;
    for (std::size_t i = 0; i < state.clients.size(); ++i) {
      auto& client = state.clients[i];
      if (client.busy || client.submitted >= opts.requests_per_client) {
        continue;
      }
      const tdo::serve::Request request = state.next_request(opts, i);
      // Fresh activations arrive through the measured upload path — the
      // copy's DMA window (and any contention stall) lands in the trace.
      BENCH_CHECK(scheduler.upload(request.a, request.a,
                                   opts.m * opts.k * sizeof(float)));
      auto id = scheduler.submit(request);
      BENCH_CHECK(id.status());
      owner[*id] = i;
      progressed = true;
    }
    BENCH_CHECK(scheduler.pump());
    tracer.pump();  // keep the driver shard bounded on long runs
    for (const auto& completion : scheduler.take_completions()) {
      const auto it = owner.find(completion.id);
      if (it != owner.end()) {
        state.clients[it->second].busy = false;
        owner.erase(it);
      }
      outcome.completed += 1;
      progressed = true;
    }
    if (progressed || outcome.completed >= target) continue;
    if (!scheduler.advance_to_next_event()) BENCH_CHECK(scheduler.drain());
  }
  BENCH_CHECK(scheduler.drain());
  outcome.completed += scheduler.take_completions().size();

  tracer.pump();
  metrics_registry.force_sample(platform.system.events().now());
  outcome.metrics_samples = metrics_registry.samples().size();
  metrics_registry.append_counter_tracks();
  metrics_registry.stop();
  tracer.pump();
  const std::vector<tdo::obs::TraceEvent> events = tracer.sorted_events();
  outcome.events = events.size();
  outcome.dropped = tracer.dropped();
  outcome.paths = tdo::obs::decompose(events);
  for (const auto& path : outcome.paths) {
    outcome.reconciled =
        outcome.reconciled && path.segment_sum() == path.e2e();
    outcome.joined_any = outcome.joined_any || path.device_joined;
  }
  bool engine = false, dma = false, link = false, sched = false, pool = false;
  for (const auto& event : events) {
    if (event.phase != tdo::obs::Phase::kSpan) continue;
    engine = engine || event.track.rfind("engine/", 0) == 0;
    dma = dma || event.track.rfind("dma/", 0) == 0;
    link = link || event.track.rfind("link/", 0) == 0;
    sched = sched || event.track.rfind("sched/", 0) == 0;
    pool = pool || event.track.rfind("host_pool/", 0) == 0;
  }
  outcome.span_track_kinds = static_cast<std::size_t>(engine) + dma + link +
                             sched + pool;

  // Per-segment energy attribution over the same span population, checked
  // two ways: the integer-femtojoule segment buckets must sum exactly to
  // the span-derived total (no joule double-counted or lost in the
  // segment mapping), and that total must match the live accumulators the
  // cost model charged (no charged joule missing a span).
  outcome.energy =
      tdo::obs::attribute_energy(events, tdo::obs::default_energy_params());
  outcome.energy_reconciled =
      outcome.energy.segment_sum() == outcome.energy.total_fj &&
      outcome.energy.total_fj > 0 && outcome.energy.host_pool_fj > 0;
  double accumulated_pj = 0.0;
  for (const auto& [name, pj] :
       platform.system.stats().snapshot().energies_pj) {
    // The attributable sinks: the six per-accelerator engine buckets
    // ("<accel>.energy.<sink>"), the host worker pool, and the far link.
    // "host.energy" (synchronous host-CPU fallback) has no spans and is
    // deliberately outside the attribution.
    if (name.find(".energy.") != std::string::npos ||
        name == "host_pool.energy" || name == "farlink.energy") {
      accumulated_pj += pj;
    }
  }
  const double span_pj = static_cast<double>(outcome.energy.total_fj) * 1e-3;
  outcome.energy_matches_accumulators =
      std::abs(span_pj - accumulated_pj) <=
      1e-6 * std::max(1.0, accumulated_pj);
  if (!outcome.energy_matches_accumulators) {
    std::fprintf(stderr,
                 "energy mismatch: spans %.3f pJ vs accumulators %.3f pJ "
                 "(write %llu stream %llu engine-dma %llu copy-dma %llu "
                 "link %llu pool %llu fJ)\n",
                 span_pj, accumulated_pj,
                 static_cast<unsigned long long>(outcome.energy.engine_write_fj),
                 static_cast<unsigned long long>(outcome.energy.engine_stream_fj),
                 static_cast<unsigned long long>(outcome.energy.engine_dma_fj),
                 static_cast<unsigned long long>(outcome.energy.copy_dma_fj),
                 static_cast<unsigned long long>(outcome.energy.link_fj),
                 static_cast<unsigned long long>(outcome.energy.host_pool_fj));
    for (const auto& [name, pj] :
         platform.system.stats().snapshot().energies_pj) {
      std::fprintf(stderr, "  sink %-32s %.3f pJ\n", name.c_str(), pj);
    }
  }

  std::ofstream out(opts.trace_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open --trace path %s\n",
                 opts.trace_path.c_str());
    std::exit(1);
  }
  tracer.export_json(out);
  tracer.stop();
  return outcome;
}

/// Tail-decomposition table: per deadline class, the mean and the p99
/// request's latency split into the seven critical-path segments.
void print_decomposition(const std::vector<tdo::obs::RequestPath>& paths) {
  tdo::support::TextTable table(
      "Critical-path decomposition (per class, us)");
  std::vector<std::string> header{"Class", "Metric", "n", "e2e"};
  for (std::size_t s = 0; s < tdo::obs::kSegmentCount; ++s) {
    header.emplace_back(tdo::obs::segment_name(s));
  }
  table.set_header(header);

  const auto us = [](double ticks) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", ticks / 1e6);
    return std::string(buf);
  };
  for (std::size_t c = 0; c < tdo::serve::kDeadlineClasses; ++c) {
    const char* cls =
        tdo::serve::to_string(static_cast<tdo::serve::DeadlineClass>(c));
    std::vector<const tdo::obs::RequestPath*> in_class;
    for (const auto& path : paths) {
      if (path.cls == cls) in_class.push_back(&path);
    }
    if (in_class.empty()) continue;
    std::sort(in_class.begin(), in_class.end(),
              [](const auto* a, const auto* b) { return a->e2e() < b->e2e(); });

    std::vector<std::string> mean_row{cls, "mean",
                                      std::to_string(in_class.size())};
    double e2e_sum = 0.0;
    std::array<double, tdo::obs::kSegmentCount> seg_sum{};
    for (const auto* path : in_class) {
      e2e_sum += static_cast<double>(path->e2e());
      for (std::size_t s = 0; s < tdo::obs::kSegmentCount; ++s) {
        seg_sum[s] += static_cast<double>(path->seg[s]);
      }
    }
    const double n = static_cast<double>(in_class.size());
    mean_row.push_back(us(e2e_sum / n));
    for (const double sum : seg_sum) mean_row.push_back(us(sum / n));
    table.add_row(mean_row);

    const std::size_t rank = (in_class.size() * 99 + 99) / 100;  // ceil(.99n)
    const auto* p99 = in_class[rank - 1];
    std::vector<std::string> tail_row{cls, "p99", "1",
                                      us(static_cast<double>(p99->e2e()))};
    for (const std::uint64_t seg : p99->seg) {
      tail_row.push_back(us(static_cast<double>(seg)));
    }
    table.add_row(tail_row);
  }
  table.print(std::cout);
}

/// Per-class joules-per-segment table (--dump companion to the ticks one):
/// each class's share of every segment's attributed energy, split in
/// proportion to the class's segment ticks.
void print_energy_table(const std::vector<tdo::obs::RequestPath>& paths,
                        const tdo::obs::EnergyBreakdown& breakdown) {
  const tdo::obs::PerClassEnergy per_class =
      tdo::obs::per_class_energy(paths, breakdown);
  tdo::support::TextTable table(
      "Per-class energy attribution (per segment, nJ)");
  std::vector<std::string> header{"Class", "total"};
  for (std::size_t s = 0; s < tdo::obs::kSegmentCount; ++s) {
    header.emplace_back(tdo::obs::segment_name(s));
  }
  table.set_header(header);
  const auto nj = [](double fj) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", fj * 1e-6);
    return std::string(buf);
  };
  for (const auto& [cls, seg_fj] : per_class) {
    double total = 0.0;
    for (const double fj : seg_fj) total += fj;
    std::vector<std::string> row{cls, nj(total)};
    for (const double fj : seg_fj) row.push_back(nj(fj));
    table.add_row(row);
  }
  std::vector<std::string> all{"(all)",
                               nj(static_cast<double>(breakdown.total_fj))};
  for (const std::uint64_t fj : breakdown.seg_fj) {
    all.push_back(nj(static_cast<double>(fj)));
  }
  table.add_row(all);
  table.print(std::cout);
}

void add_result_row(tdo::support::TextTable& table, const std::string& name,
                    const LoadResult& r) {
  char throughput[32], p50[32], p95[32], p99[32], hit[32], fb[32], batch[32];
  std::snprintf(throughput, sizeof throughput, "%.0f", r.throughput_rps);
  std::snprintf(p50, sizeof p50, "%.1f", r.p50.microseconds());
  std::snprintf(p95, sizeof p95, "%.1f", r.p95.microseconds());
  std::snprintf(p99, sizeof p99, "%.1f", r.p99.microseconds());
  std::snprintf(hit, sizeof hit, "%.1f%%", r.hit_rate * 100.0);
  std::snprintf(fb, sizeof fb, "%.1f%%", r.fallback_ratio * 100.0);
  std::snprintf(batch, sizeof batch, "%.2f", r.mean_batch);
  table.add_row({name, throughput, p50, p95, p99, hit, fb, batch,
                 std::to_string(r.serve.affinity_routed),
                 std::to_string(r.serve.rejected)});
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> double { return std::atof(argv[++i]); };
    if (arg == "--smoke") {
      opts.smoke = true;
    } else if (arg == "--overload") {
      opts.overload = true;
    } else if (arg == "--dump") {
      opts.dump = true;
    } else if (arg == "--tenants" && i + 1 < argc) {
      opts.tenants = static_cast<std::size_t>(value());
    } else if (arg == "--clients" && i + 1 < argc) {
      opts.clients_per_tenant = static_cast<std::size_t>(value());
    } else if (arg == "--requests" && i + 1 < argc) {
      opts.requests_per_client = static_cast<std::size_t>(value());
    } else if (arg == "--weights" && i + 1 < argc) {
      opts.weight_sets = static_cast<std::size_t>(value());
    } else if (arg == "--alpha" && i + 1 < argc) {
      opts.zipf_alpha = value();
    } else if (arg == "--accels" && i + 1 < argc) {
      opts.accelerators = static_cast<std::size_t>(value());
    } else if (arg == "--batch-max" && i + 1 < argc) {
      opts.batch_max = static_cast<std::size_t>(value());
    } else if (arg == "--max-wait-us" && i + 1 < argc) {
      opts.max_wait_us = value();
    } else if (arg == "--rate-rps" && i + 1 < argc) {
      opts.open_rate_rps = value();
    } else if (arg == "--seed" && i + 1 < argc) {
      opts.seed = static_cast<std::uint64_t>(value());
    } else if (arg == "--threads" && i + 1 < argc) {
      opts.threads = static_cast<std::size_t>(value());
    } else if (arg == "--trace" && i + 1 < argc) {
      opts.trace_path = argv[++i];
    } else if (arg == "--metrics" && i + 1 < argc) {
      opts.metrics_path = argv[++i];
    } else if (arg == "--placement" && i + 1 < argc) {
      const std::string policy = argv[++i];
      opts.placement_set = true;
      if (policy == "blind") {
        opts.placement = tdo::topo::Placement::kBlind;
      } else if (policy == "caller") {
        opts.placement = tdo::topo::Placement::kCallerCentric;
      } else if (policy == "buffer") {
        opts.placement = tdo::topo::Placement::kBufferCentric;
      } else {
        std::fprintf(stderr,
                     "bad --placement (want blind|caller|buffer): %s\n",
                     policy.c_str());
        return 1;
      }
    } else if (arg == "--topology" && i + 1 < argc) {
      const auto spec = tdo::topo::parse_topology_spec(argv[++i]);
      if (!spec.has_value()) {
        std::fprintf(stderr, "bad --topology (want near:N,far:M[xL]): %s\n",
                     argv[i]);
        return 1;
      }
      opts.topology = *spec;
      opts.accelerators = spec->device_count();
    } else {
      std::printf(
          "usage: bench_serve_loop [--smoke] [--overload] [--tenants N]\n"
          "       [--clients C] [--requests R] [--weights W] [--alpha Z]\n"
          "       [--accels A] [--batch-max B] [--max-wait-us U]\n"
          "       [--rate-rps X] [--seed S] [--threads T]\n"
          "       [--topology near:N,far:M[xL]] [--trace out.json]\n"
          "       [--metrics out.json] [--placement blind|caller|buffer]\n");
      return arg == "--help" ? 0 : 1;
    }
  }
  if (opts.smoke) {
    opts.tenants = 2;
    opts.clients_per_tenant = 3;
    opts.requests_per_client = 6;
    opts.weight_sets = 4;
  }
  if (opts.overload) return run_overload_suite(opts);

  using tdo::support::TextTable;
  TextTable table("Serving scheduler - Zipf(" +
                  std::to_string(opts.zipf_alpha) + ") tenants, " +
                  std::to_string(opts.accelerators) + " accelerator(s)");
  table.set_header({"Config", "Req/s", "p50 us", "p95 us", "p99 us",
                    "Hit rate", "Fallback", "Batch", "Affinity", "Rejected"});

  const LoadResult baseline = run_closed_loop(opts, /*batching=*/false,
                                              /*affinity=*/false,
                                              /*adaptive=*/false);
  const LoadResult full = run_closed_loop(opts, /*batching=*/true,
                                          /*affinity=*/true,
                                          /*adaptive=*/false);
  const LoadResult adaptive = run_closed_loop(opts, /*batching=*/true,
                                              /*affinity=*/true,
                                              /*adaptive=*/true);
  const LoadResult open = run_open_loop(opts);
  add_result_row(table, "closed FIFO baseline", baseline);
  add_result_row(table, "closed batch+affinity", full);
  add_result_row(table, "closed +adaptive", adaptive);
  add_result_row(table, "open full scheduler", open);
  table.print(std::cout);

  if (opts.dump) {
    const auto tier_of = [&](int device) {
      if (!opts.topology.has_value() || device < 0) return 0;
      return device >= static_cast<int>(opts.topology->near) ? 1 : 0;
    };
    for (const auto* run : {&baseline, &full}) {
      std::printf("\n-- completions (%s) --\n",
                  run == &baseline ? "baseline" : "batch+affinity");
      for (const auto& c : run->completions) {
        std::printf(
            "  id %3llu tenant %u cls %-11s arr %9.1f disp %9.1f done %9.1f "
            "lat %8.1f us batch %u dev %d tier %d %s\n",
            static_cast<unsigned long long>(c.id), c.tenant,
            tdo::serve::to_string(c.deadline), c.arrival.microseconds(),
            c.dispatch.microseconds(), c.done.microseconds(),
            c.latency().microseconds(), c.batch_size, c.device,
            tier_of(c.device), c.offloaded ? "dev" : "host");
      }
      // Per-tier queue/occupancy split: scheduler-side routed requests
      // ("queue") vs device-side jobs actually retired ("jobs"; batching
      // and runtime-internal launches make the two differ).
      std::printf("-- per-device load (%s) --\n",
                  run == &baseline ? "baseline" : "batch+affinity");
      std::vector<std::uint64_t> routed(run->devices.size(), 0);
      for (const auto& c : run->completions) {
        if (c.device >= 0 && static_cast<std::size_t>(c.device) < routed.size()) {
          ++routed[static_cast<std::size_t>(c.device)];
        }
      }
      for (std::size_t d = 0; d < run->devices.size(); ++d) {
        std::printf("  dev %zu tier %-4s queue %4llu jobs %4llu\n", d,
                    run->devices[d].tier == 1 ? "far" : "near",
                    static_cast<unsigned long long>(routed[d]),
                    static_cast<unsigned long long>(run->devices[d].jobs));
      }
      if (opts.topology.has_value() && opts.topology->far > 0) {
        std::printf("  far link: contended ticks %llu, responses %llu, "
                    "far-routed %llu\n",
                    static_cast<unsigned long long>(run->link_contended_ticks),
                    static_cast<unsigned long long>(run->link_responses),
                    static_cast<unsigned long long>(run->serve.far_routed));
      }
    }
  }

  std::optional<TraceOutcome> trace;
  if (!opts.trace_path.empty()) {
    trace = run_traced(opts);
    std::printf(
        "\nTrace: %zu events -> %s (%llu dropped); %zu/%zu request spans "
        "device-joined; %zu/5 span track kinds\n",
        trace->events, opts.trace_path.c_str(),
        static_cast<unsigned long long>(trace->dropped),
        [&] {
          std::size_t joined = 0;
          for (const auto& p : trace->paths) joined += p.device_joined ? 1 : 0;
          return joined;
        }(),
        trace->paths.size(), trace->span_track_kinds);
    const auto share = [&](std::size_t s) {
      return trace->energy.total_fj == 0
                 ? 0.0
                 : 100.0 * static_cast<double>(trace->energy.seg_fj[s]) /
                       static_cast<double>(trace->energy.total_fj);
    };
    std::printf(
        "Energy attribution: %.3f uJ over %llu spans (weights %.1f%%, "
        "stream %.1f%%, dma %.1f%%, link %.1f%%); %llu metrics samples\n",
        static_cast<double>(trace->energy.total_fj) * 1e-9,
        static_cast<unsigned long long>(trace->energy.spans_counted),
        share(tdo::obs::kSegWeights), share(tdo::obs::kSegStream),
        share(tdo::obs::kSegDmaWait), share(tdo::obs::kSegLink),
        static_cast<unsigned long long>(trace->metrics_samples));
    if (opts.dump) {
      print_decomposition(trace->paths);
      print_energy_table(trace->paths, trace->energy);
    }
  }

  std::optional<MetricsOutcome> metrics;
  if (!opts.metrics_path.empty()) {
    std::printf("\n");
    metrics = run_metrics_experiment(opts);
  }

  std::printf("\nAdmission convergence (static sweep vs adaptive EWMA):\n");
  const AdmissionOutcome admission = run_admission_experiment(opts);

  std::printf("\nPseudo-async host/device split (%s GEMM, static sweep vs "
              "auto-tune):\n",
              opts.smoke ? "128^3" : "256^3");
  const SplitOutcome split = run_split_experiment(opts);

  std::vector<SubmitScale> scaling;
  std::vector<ContendedLoad> contended;
  if (opts.threads > 0) {
    std::vector<std::size_t> ladder{1, 2, 4, 8};
    if (std::find(ladder.begin(), ladder.end(), opts.threads) ==
        ladder.end()) {
      ladder.push_back(opts.threads);
      std::sort(ladder.begin(), ladder.end());
    }
    TextTable submit_table("Thread-parallel submission (simulated clocks, "
                           "submit cost 2 us)");
    if (opts.dump) {
      submit_table.set_header({"Threads", "Submit req/s", "Scaling",
                               "E2E req/s", "Ring lock", "Latency lock",
                               "Stream lock", "Rejected"});
    } else {
      submit_table.set_header(
          {"Threads", "Submit req/s", "Scaling", "E2E req/s", "Rejected"});
    }
    for (const std::size_t threads : ladder) {
      scaling.push_back(run_submit_scaling(opts, threads));
      const SubmitScale& s = scaling.back();
      char rps[32], scale[32], e2e[32];
      std::snprintf(rps, sizeof rps, "%.0f", s.submit_rps);
      std::snprintf(scale, sizeof scale, "%.2fx",
                    s.submit_rps / scaling.front().submit_rps);
      std::snprintf(e2e, sizeof e2e, "%.0f", s.e2e_rps);
      if (opts.dump) {
        submit_table.add_row({std::to_string(threads), rps, scale, e2e,
                              std::to_string(s.ring_contended),
                              std::to_string(s.latency_contended),
                              std::to_string(s.stream_ring_contended),
                              std::to_string(s.rejected)});
      } else {
        submit_table.add_row({std::to_string(threads), rps, scale, e2e,
                              std::to_string(s.rejected)});
      }
    }
    std::printf("\n");
    submit_table.print(std::cout);

    TextTable tail_table("Matched-arrival tail latency (demand 25k req/s, "
                         "submit cost 120 us)");
    tail_table.set_header(
        {"Threads", "p50 us", "p99 us", "Worst front-end wait us"});
    for (const std::size_t threads : ladder) {
      contended.push_back(run_contended_loop(opts, threads));
      const ContendedLoad& c = contended.back();
      char p50[32], p99[32], wait[32];
      std::snprintf(p50, sizeof p50, "%.1f", c.p50.microseconds());
      std::snprintf(p99, sizeof p99, "%.1f", c.p99.microseconds());
      std::snprintf(wait, sizeof wait, "%.1f", c.worst_wait.microseconds());
      tail_table.add_row({std::to_string(threads), p50, p99, wait});
    }
    std::printf("\n");
    tail_table.print(std::cout);
  }

  std::printf(
      "\nDynamic batching coalesces the Zipf head into shared-weight "
      "launches,\nresidency affinity pins them to the accelerator already "
      "holding the\nweights, and the admission EWMA re-derives the offload "
      "knee at runtime.\n");

  bool ok = true;
  if (!(full.throughput_rps > baseline.throughput_rps &&
        full.p99 < baseline.p99)) {
    std::fprintf(stderr,
                 "FAILED: full scheduler does not strictly beat the "
                 "no-batching FIFO baseline (throughput %.0f vs %.0f rps, "
                 "p99 %.1f vs %.1f us)\n",
                 full.throughput_rps, baseline.throughput_rps,
                 full.p99.microseconds(), baseline.p99.microseconds());
    ok = false;
  }
  if (!admission.converged) {
    std::fprintf(stderr,
                 "FAILED: adaptive admission (rung %d) not within one ladder "
                 "step of the best static threshold (rung %d)\n",
                 admission.adaptive_rung, admission.best_static_rung);
    ok = false;
  }
  if (trace.has_value()) {
    if (!trace->reconciled) {
      std::fprintf(stderr,
                   "FAILED: critical-path segments do not sum to the "
                   "end-to-end latency on every request span\n");
      ok = false;
    }
    if (trace->paths.size() != trace->completed) {
      std::fprintf(stderr,
                   "FAILED: %zu request spans for %llu completions\n",
                   trace->paths.size(),
                   static_cast<unsigned long long>(trace->completed));
      ok = false;
    }
    if (trace->span_track_kinds < 5) {
      std::fprintf(stderr,
                   "FAILED: only %zu of the 5 span track kinds (engine, dma, "
                   "link, sched, host_pool) appear in the trace\n",
                   trace->span_track_kinds);
      ok = false;
    }
    if (!trace->joined_any) {
      std::fprintf(stderr,
                   "FAILED: no request span joined its engine job span\n");
      ok = false;
    }
    if (trace->dropped != 0) {
      std::fprintf(stderr,
                   "FAILED: %llu trace events dropped (shard overflow)\n",
                   static_cast<unsigned long long>(trace->dropped));
      ok = false;
    }
    if (!trace->energy_reconciled) {
      std::fprintf(
          stderr,
          "FAILED: per-segment energy does not reconcile exactly (segment "
          "sum %llu fJ vs span total %llu fJ, host-pool %llu fJ)\n",
          static_cast<unsigned long long>(trace->energy.segment_sum()),
          static_cast<unsigned long long>(trace->energy.total_fj),
          static_cast<unsigned long long>(trace->energy.host_pool_fj));
      ok = false;
    }
    if (!trace->energy_matches_accumulators) {
      std::fprintf(stderr,
                   "FAILED: span-derived energy diverges from the live "
                   "accumulators (some charged joule has no span)\n");
      ok = false;
    }
    if (trace->metrics_samples == 0) {
      std::fprintf(stderr,
                   "FAILED: metrics sampler took no samples during the "
                   "traced run\n");
      ok = false;
    }
  }
  if (metrics.has_value() && !metrics->ok) ok = false;
  // Thread-parallel and split gates are simulated-deterministic, but smoke
  // shrinks the load below the margins they assume — report-only there.
  if (!opts.smoke) {
    if (!split.split_wins) {
      std::fprintf(stderr,
                   "FAILED: no static split fraction beats device-only "
                   "(best rung %d)\n",
                   split.best_rung);
      ok = false;
    }
    if (!split.converged) {
      std::fprintf(stderr,
                   "FAILED: auto-tuned split fraction %.4f (rung %d) not "
                   "within one ladder rung of the swept optimum (rung %d)\n",
                   split.adaptive_fraction, split.adaptive_rung,
                   split.best_rung);
      ok = false;
    }
    if (opts.threads >= 2) {
      const auto find_threads = [&](const auto& rows) {
        std::size_t index = 0;
        for (std::size_t i = 0; i < rows.size(); ++i) {
          if (rows[i].threads == opts.threads) index = i;
        }
        return index;
      };
      const SubmitScale& wide = scaling[find_threads(scaling)];
      const double ratio = wide.submit_rps / scaling.front().submit_rps;
      if (ratio < 0.75 * static_cast<double>(opts.threads)) {
        std::fprintf(stderr,
                     "FAILED: %zu-thread submitted-request throughput only "
                     "%.2fx the 1-thread rate (need >= %.2fx)\n",
                     opts.threads, ratio,
                     0.75 * static_cast<double>(opts.threads));
        ok = false;
      }
      const ContendedLoad& tail = contended[find_threads(contended)];
      if (!(tail.p99 < contended.front().p99)) {
        std::fprintf(stderr,
                     "FAILED: %zu-thread p99 %.1f us does not strictly beat "
                     "the 1-thread p99 %.1f us\n",
                     opts.threads, tail.p99.microseconds(),
                     contended.front().p99.microseconds());
        ok = false;
      }
    }
  }

  // Machine-readable results. Only simulated-clock quantities: wall-clock
  // measurements (thread scaling, tenant-scale ns/request) would make the
  // committed baseline diff flaky.
  {
    using tdo::benchutil::Json;
    const auto load_json = [](const LoadResult& r) {
      Json j = Json::object();
      j.set("throughput_rps", Json::number(r.throughput_rps));
      j.set("p50_us", Json::number(r.p50.microseconds()));
      j.set("p95_us", Json::number(r.p95.microseconds()));
      j.set("p99_us", Json::number(r.p99.microseconds()));
      Json classes = Json::object();
      for (const auto& c : r.classes) {
        Json cj = Json::object();
        cj.set("count", Json::number(c.count));
        cj.set("p50_us", Json::number(c.p50.microseconds()));
        cj.set("p95_us", Json::number(c.p95.microseconds()));
        cj.set("p99_us", Json::number(c.p99.microseconds()));
        classes.set(c.cls, std::move(cj));
      }
      j.set("classes", std::move(classes));
      j.set("hit_rate", Json::number(r.hit_rate));
      j.set("fallback_ratio", Json::number(r.fallback_ratio));
      j.set("mean_batch", Json::number(r.mean_batch));
      j.set("energy_uj", Json::number(r.energy_uj));
      j.set("edp_uj_s", Json::number(r.edp_uj_s));
      j.set("completed", Json::number(r.serve.completed));
      j.set("rejected", Json::number(r.serve.rejected));
      j.set("affinity_routed", Json::number(r.serve.affinity_routed));
      return j;
    };
    Json results = Json::object();
    results.set("closed_fifo", load_json(baseline));
    results.set("closed_batch_affinity", load_json(full));
    results.set("closed_adaptive", load_json(adaptive));
    results.set("open_loop", load_json(open));
    if (trace.has_value()) {
      Json t = Json::object();
      t.set("events",
            Json::number(static_cast<std::uint64_t>(trace->events)));
      t.set("request_spans",
            Json::number(static_cast<std::uint64_t>(trace->paths.size())));
      t.set("metrics_samples", Json::number(trace->metrics_samples));
      Json energy = Json::object();
      energy.set("total_fj", Json::number(trace->energy.total_fj));
      energy.set("host_pool_fj", Json::number(trace->energy.host_pool_fj));
      energy.set("link_fj", Json::number(trace->energy.link_fj));
      Json segments = Json::object();
      for (std::size_t s = 0; s < tdo::obs::kSegmentCount; ++s) {
        segments.set(tdo::obs::segment_name(s),
                     Json::number(trace->energy.seg_fj[s]));
      }
      energy.set("segments_fj", std::move(segments));
      t.set("energy", std::move(energy));
      results.set("trace", std::move(t));
    }
    if (metrics.has_value()) {
      Json slo = Json::object();
      slo.set("low_breaches",
              Json::number(
                  static_cast<std::uint64_t>(metrics->low.breaches.size())));
      slo.set("high_breaches",
              Json::number(
                  static_cast<std::uint64_t>(metrics->high.breaches.size())));
      slo.set("high_interactive_latency_breaches",
              Json::number(metrics->high_interactive_latency));
      slo.set("high_samples", Json::number(metrics->high.samples));
      results.set("slo", std::move(slo));
    }
    results.set("ok", Json::boolean(ok));
    tdo::benchutil::write_bench_json("serve_loop", std::move(results));
  }

  return ok ? 0 : 1;
}
