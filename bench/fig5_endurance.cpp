// Reproduces Figure 5: impact of the TDO-CIM fusion transformation on PCM
// crossbar lifetime for the Listing-2 workload (two GEMMs sharing input A).
//
//   SystemLifeTime = CellEndurance * S / B        (Eq. 1)
//
// "Naive mapping" compiles with fusion disabled: each GEMM keeps its moving
// operand (B, then E) stationary in the crossbar, so both are written.
// "Smart mapping" enables the fusion pass: one batched job keeps the shared
// A stationary and streams B and E, halving the write traffic B and thus
// doubling the expected lifetime, as in the paper.
//
// The paper assumes 4096^2 byte-element matrices and a 512 KB crossbar; we
// measure the write traffic of a simulated execution (paper-preset size) and
// report Eq. 1 across the same 10..40 million write endurance sweep.
#include <cstdio>
#include <iostream>

#include "frontend/parser.hpp"
#include "pcm/endurance.hpp"
#include "polybench/harness.hpp"
#include "support/table.hpp"

namespace {

/// Listing 2 of the paper: two independent GEMMs sharing input A.
tdo::pb::Workload make_listing2(std::int64_t n) {
  char source[1024];
  std::snprintf(source, sizeof source, R"(
kernel listing2(N = %lld) {
  array float A[N][N];
  array float B[N][N];
  array float E[N][N];
  array float C[N][N];
  array float D[N][N];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
      C[i][j] = 0.0;
      for (k = 0; k < N; k++)
        C[i][j] += A[i][k] * B[k][j];
    }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
      D[i][j] = 0.0;
      for (k = 0; k < N; k++)
        D[i][j] += A[i][k] * E[k][j];
    }
}
)",
                static_cast<long long>(n));

  tdo::pb::Workload w;
  w.name = "listing2";
  w.source = source;
  auto fill = [n](int salt) {
    std::vector<float> m(static_cast<std::size_t>(n * n));
    for (std::int64_t i = 0; i < n * n; ++i) {
      m[static_cast<std::size_t>(i)] =
          static_cast<float>(((i * (salt + 3)) % 13 - 6) / 6.0);
    }
    return m;
  };
  w.inputs["A"] = fill(1);
  w.inputs["B"] = fill(2);
  w.inputs["E"] = fill(3);
  w.inputs["C"] = std::vector<float>(static_cast<std::size_t>(n * n), 0.0f);
  w.inputs["D"] = std::vector<float>(static_cast<std::size_t>(n * n), 0.0f);
  // References are checked by the test suite; the bench only needs traffic.
  w.expected["C"] = w.inputs["C"];
  w.expected["D"] = w.inputs["D"];
  w.outputs = {};
  w.tolerance = 1e9;
  return w;
}

}  // namespace

int main() {
  using tdo::support::TextTable;
  const std::int64_t n = 256;
  const tdo::pb::Workload workload = make_listing2(n);

  tdo::pb::HarnessOptions smart;
  smart.compile.enable_fusion = true;
  tdo::pb::HarnessOptions naive;
  naive.compile.enable_fusion = false;

  const auto smart_report = tdo::pb::run_cim(workload, smart);
  const auto naive_report = tdo::pb::run_cim(workload, naive);
  if (!smart_report.is_ok() || !naive_report.is_ok()) {
    std::cerr << "fig5 run failed: " << smart_report.status() << " / "
              << naive_report.status() << "\n";
    return 1;
  }

  TextTable traffic("Figure 5 setup - measured crossbar write traffic (Listing 2, N=" +
                    std::to_string(n) + ")");
  traffic.set_header({"Mapping", "Weights written (bytes)", "Kernel time",
                      "Write traffic B (GB/s)"});
  const tdo::pcm::WriteTraffic naive_traffic{naive_report->cim_writes,
                                             naive_report->runtime};
  const tdo::pcm::WriteTraffic smart_traffic{smart_report->cim_writes,
                                             smart_report->runtime};
  traffic.add_row({"Naive (no fusion)", std::to_string(naive_report->cim_writes),
                   naive_report->runtime.to_string(),
                   TextTable::fmt(naive_traffic.bytes_per_second() / 1e9, 4)});
  traffic.add_row({"Smart (TDO-CIM fusion)",
                   std::to_string(smart_report->cim_writes),
                   smart_report->runtime.to_string(),
                   TextTable::fmt(smart_traffic.bytes_per_second() / 1e9, 4)});
  traffic.print(std::cout);

  const double write_ratio = static_cast<double>(naive_report->cim_writes) /
                             static_cast<double>(smart_report->cim_writes);
  std::cout << "Write-traffic reduction from fusion: "
            << TextTable::fmt_ratio(write_ratio)
            << " (paper: 2x for Listing 2)\n\n";

  // Eq. 1 sweep at the paper's scale: S = 512 KB crossbar.
  const std::uint64_t s_bytes = 512ull * 1024;
  TextTable fig5("Figure 5 - System lifetime (years) vs PCM cell endurance");
  fig5.set_header({"Endurance (M writes)", "Naive mapping (years)",
                   "Smart mapping (years)", "Smart / Naive"});
  for (std::uint64_t endurance_m = 10; endurance_m <= 40; endurance_m += 5) {
    const std::uint64_t endurance = endurance_m * 1'000'000ull;
    const double naive_years =
        tdo::pcm::system_lifetime_years(endurance, s_bytes, naive_traffic);
    const double smart_years =
        tdo::pcm::system_lifetime_years(endurance, s_bytes, smart_traffic);
    fig5.add_row({std::to_string(endurance_m), TextTable::fmt(naive_years, 2),
                  TextTable::fmt(smart_years, 2),
                  TextTable::fmt_ratio(smart_years / naive_years)});
  }
  fig5.print(std::cout);
  std::cout << "Expected shape: smart mapping doubles lifetime at every "
               "endurance point (paper Figure 5).\n\n";

  // --- Paper-scale analytic projection -------------------------------------
  // The paper assumes squared matrices of 4096 byte-elements on a 512 KB
  // crossbar. Functionally simulating 2 x 4096^3 MACs is prohibitive, so we
  // project the write traffic with the same Table I latency model that the
  // simulator charges (tile count x row-program time + streamed GEMVs).
  {
    const double nn = 4096.0;
    const double tile = 256.0;
    const double tiles_per_gemm = (nn / tile) * (nn / tile);
    const double write_time_s = tiles_per_gemm * tile * 2.5e-6;
    const double stream_time_s = tiles_per_gemm * nn * 1e-6;
    const double bytes_per_matrix = nn * nn;  // byte elements, as in the paper

    // Smart: one fused job, A written once, B and E streamed.
    const double smart_time = write_time_s + 2.0 * stream_time_s;
    const double smart_bw = bytes_per_matrix / smart_time;
    // Naive: two jobs, B then E written, A streamed twice.
    const double naive_time = 2.0 * (write_time_s + stream_time_s);
    const double naive_bw = 2.0 * bytes_per_matrix / naive_time;

    TextTable proj(
        "Figure 5 - paper-scale projection (4096^2 byte matrices, S=512KB)");
    proj.set_header({"Endurance (M writes)", "Naive (years)", "Smart (years)",
                     "Smart / Naive"});
    for (std::uint64_t endurance_m = 10; endurance_m <= 40; endurance_m += 5) {
      const double endurance = static_cast<double>(endurance_m) * 1e6;
      const double naive_years = endurance * static_cast<double>(s_bytes) /
                                 naive_bw / tdo::pcm::kSecondsPerYear;
      const double smart_years = endurance * static_cast<double>(s_bytes) /
                                 smart_bw / tdo::pcm::kSecondsPerYear;
      proj.add_row({std::to_string(endurance_m),
                    TextTable::fmt(naive_years, 1),
                    TextTable::fmt(smart_years, 1),
                    TextTable::fmt_ratio(smart_years / naive_years)});
    }
    proj.print(std::cout);
    std::cout << "Paper Figure 5 spans roughly 0-48 years over the same "
                 "endurance interval with a ~2x naive-vs-smart separation.\n";
  }
  return 0;
}
