// Ablation: double buffering at both levels of the offload stack.
//
// Engine level (Section II-C: "supports double buffering for all the
// registers in the accelerator to hide the data latency of the memory
// accesses"): job latency with the DMA fill/compute/store pipeline enabled
// vs serialized.
//
// Stream level: an oversized GEMM (k = 2 crossbar heights -> chained tile
// jobs) executed through the asynchronous command stream at depth 2 (jobs
// chain back-to-back on the device, next tile's weight DMA prefetched under
// the current tile's streaming) vs depth 1 (the paper's synchronous
// submit/wait round trips).
//
// Transfer level: host<->device copies riding the stream as DMA commands
// (rectangle-hazard ordered, executing on the otherwise-idle DMA channel)
// vs the paper's blocking host memcpy behind a full drain.
#include <iostream>

#include "polybench/harness.hpp"
#include "support/table.hpp"

int main() {
  using tdo::support::TextTable;
  auto workload = tdo::pb::make_workload("gemm", tdo::pb::Preset::kPaper);
  if (!workload.is_ok()) return 1;

  TextTable table("Ablation - micro-engine double buffering (gemm 256^3)");
  table.set_header({"Config", "Runtime", "Energy", "Correct"});
  double runtimes[2] = {0, 0};
  int idx = 0;
  for (const bool db : {true, false}) {
    tdo::pb::HarnessOptions options;
    options.runtime.double_buffering = db;
    const auto report = tdo::pb::run_cim(*workload, options);
    if (!report.is_ok()) {
      std::cerr << report.status() << "\n";
      return 1;
    }
    runtimes[idx++] = report->runtime.seconds();
    table.add_row({db ? "double buffering ON" : "double buffering OFF",
                   report->runtime.to_string(),
                   report->total_energy.to_string(),
                   report->correct ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "Serializing fill/compute/store lengthens the job by "
            << TextTable::fmt((runtimes[1] / runtimes[0] - 1.0) * 100.0, 1)
            << "% (DMA latency no longer hidden).\n\n";

  // A 128x128 crossbar turns the 256^3 GEMM into 4 chained tile jobs; the
  // stream pipelines them, depth 1 reproduces the synchronous round trips.
  TextTable stream_table(
      "Ablation - stream-level double buffering (gemm 256^3, 128x128 tiles)");
  stream_table.set_header(
      {"Config", "Runtime", "Overlap ticks", "Peak in-flight", "Correct"});
  double stream_runtimes[2] = {0, 0};
  idx = 0;
  for (const std::size_t depth : {2, 1}) {
    tdo::pb::HarnessOptions options;
    options.runtime.stream.depth = depth;
    options.compile.crossbar_rows = 128;
    options.compile.crossbar_cols = 128;
    options.accelerator.tile.crossbar.rows = 128;
    options.accelerator.tile.crossbar.cols = 128;
    const auto report = tdo::pb::run_cim(*workload, options);
    if (!report.is_ok()) {
      std::cerr << report.status() << "\n";
      return 1;
    }
    stream_runtimes[idx++] = report->runtime.seconds();
    stream_table.add_row(
        {depth >= 2 ? "stream depth 2 (async)" : "stream depth 1 (serialized)",
         report->runtime.to_string(), std::to_string(report->overlap_ticks),
         std::to_string(report->stream_occupancy),
         report->correct ? "yes" : "NO"});
  }
  stream_table.print(std::cout);
  std::cout << "Serializing the command stream lengthens the kernel by "
            << TextTable::fmt(
                   (stream_runtimes[1] / stream_runtimes[0] - 1.0) * 100.0, 1)
            << "% (submit overhead and weight DMA no longer overlapped).\n\n";

  // Transfer engine: the same workload with copies riding the stream vs the
  // synchronous host memcpy path.
  TextTable xfer_table("Ablation - async copies on the stream (gemm 256^3)");
  xfer_table.set_header({"Config", "Runtime", "Copies on stream", "Copy KiB",
                         "Overlapped KiB", "Correct"});
  double xfer_runtimes[2] = {0, 0};
  idx = 0;
  for (const bool async_copies : {true, false}) {
    tdo::pb::HarnessOptions options;
    options.runtime.stream.depth = 2;
    options.runtime.xfer.async_copies = async_copies;
    const auto report = tdo::pb::run_cim(*workload, options);
    if (!report.is_ok()) {
      std::cerr << report.status() << "\n";
      return 1;
    }
    xfer_runtimes[idx++] = report->runtime.seconds();
    xfer_table.add_row(
        {async_copies ? "async copies (DMA commands)" : "synchronous memcpy",
         report->runtime.to_string(), std::to_string(report->copies_enqueued),
         std::to_string(report->copy_bytes / 1024),
         std::to_string(report->overlapped_copy_bytes / 1024),
         report->correct ? "yes" : "NO"});
  }
  xfer_table.print(std::cout);
  std::cout << "Synchronous copies lengthen the kernel by "
            << TextTable::fmt((xfer_runtimes[1] / xfer_runtimes[0] - 1.0) * 100.0,
                              1)
            << "% (transfers stall the host instead of riding the DMA"
               " channel).\n";
  return 0;
}
