// Ablation: micro-engine double buffering (Section II-C: "supports double
// buffering for all the registers in the accelerator to hide the data
// latency of the memory accesses"). Measures job latency with the DMA
// fill/compute/store pipeline enabled vs serialized.
#include <iostream>

#include "polybench/harness.hpp"
#include "support/table.hpp"

int main() {
  using tdo::support::TextTable;
  auto workload = tdo::pb::make_workload("gemm", tdo::pb::Preset::kPaper);
  if (!workload.is_ok()) return 1;

  TextTable table("Ablation - micro-engine double buffering (gemm 256^3)");
  table.set_header({"Config", "Runtime", "Energy", "Correct"});
  double runtimes[2] = {0, 0};
  int idx = 0;
  for (const bool db : {true, false}) {
    tdo::pb::HarnessOptions options;
    options.runtime.double_buffering = db;
    const auto report = tdo::pb::run_cim(*workload, options);
    if (!report.is_ok()) {
      std::cerr << report.status() << "\n";
      return 1;
    }
    runtimes[idx++] = report->runtime.seconds();
    table.add_row({db ? "double buffering ON" : "double buffering OFF",
                   report->runtime.to_string(),
                   report->total_energy.to_string(),
                   report->correct ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "Serializing fill/compute/store lengthens the job by "
            << TextTable::fmt((runtimes[1] / runtimes[0] - 1.0) * 100.0, 1)
            << "% (DMA latency no longer hidden).\n";
  return 0;
}
