// Shared load-generation helpers for the serving/sweep benches.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "support/rng.hpp"

namespace tdo::benchutil {

/// Scoped `--trace out.json` support for a whole bench run: starts the
/// tracer on construction (when a path was given) and exports + stops on
/// destruction. Benches that need finer control (bench_serve_loop's traced
/// experiment) drive obs::Tracer directly instead.
class TraceSession {
 public:
  explicit TraceSession(std::string path) : path_{std::move(path)} {
    if (!path_.empty()) obs::Tracer::instance().start({});
  }
  ~TraceSession() { finish(); }
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  void finish() {
    if (path_.empty() || finished_) return;
    finished_ = true;
    auto& tracer = obs::Tracer::instance();
    tracer.pump();
    std::ofstream out(path_, std::ios::binary);
    if (out) {
      tracer.export_json(out);
      std::printf("trace: %zu events -> %s (%llu dropped)\n",
                  tracer.collected_count(), path_.c_str(),
                  static_cast<unsigned long long>(tracer.dropped()));
    } else {
      std::fprintf(stderr, "trace: cannot open %s\n", path_.c_str());
    }
    tracer.stop();
  }

 private:
  std::string path_;
  bool finished_ = false;
};

/// Zipf(s) sampler over {0, ..., count-1} via inverse-CDF on a precomputed
/// table (rank 0 most popular).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t count, double s, std::uint64_t seed) : rng_{seed} {
    cdf_.reserve(count);
    double total = 0.0;
    for (std::size_t i = 1; i <= count; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i), s);
      cdf_.push_back(total);
    }
    for (double& v : cdf_) v /= total;
  }
  [[nodiscard]] std::size_t next() {
    const double u = rng_.uniform(0.0, 1.0);
    for (std::size_t i = 0; i < cdf_.size(); ++i) {
      if (u <= cdf_[i]) return i;
    }
    return cdf_.size() - 1;
  }

 private:
  support::Rng rng_;
  std::vector<double> cdf_;
};

/// Deterministic random float matrix in [-range, range].
[[nodiscard]] inline std::vector<float> random_matrix(std::size_t count,
                                                      double range,
                                                      std::uint64_t seed) {
  support::Rng rng{seed};
  std::vector<float> out(count);
  for (float& v : out) {
    v = rng.uniform_f(static_cast<float>(-range), static_cast<float>(range));
  }
  return out;
}

}  // namespace tdo::benchutil
