// Shared load-generation helpers for the serving/sweep benches.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/rng.hpp"

namespace tdo::benchutil {

/// Scoped `--trace out.json` support for a whole bench run: starts the
/// tracer on construction (when a path was given) and exports + stops on
/// destruction. Benches that need finer control (bench_serve_loop's traced
/// experiment) drive obs::Tracer directly instead.
///
/// A traced bench run is a correctness gate, not best-effort telemetry: if
/// any shard ring overflowed (dropped events), downstream consumers
/// (energy attribution, critical-path decomposition) would silently
/// under-count, so finish() fails the whole bench instead.
class TraceSession {
 public:
  explicit TraceSession(std::string path) : path_{std::move(path)} {
    if (!path_.empty()) obs::Tracer::instance().start({});
  }
  ~TraceSession() { finish(); }
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  void finish() {
    if (path_.empty() || finished_) return;
    finished_ = true;
    auto& tracer = obs::Tracer::instance();
    tracer.pump();
    // Sampled metrics ride along as Perfetto counter tracks so the
    // trajectory lines up under the spans in the same UI.
    obs::MetricsRegistry::instance().append_counter_tracks();
    tracer.pump();
    std::ofstream out(path_, std::ios::binary);
    if (out) {
      tracer.export_json(out);
      std::printf("trace: %zu events -> %s (%llu dropped)\n",
                  tracer.collected_count(), path_.c_str(),
                  static_cast<unsigned long long>(tracer.dropped()));
    } else {
      std::fprintf(stderr, "trace: cannot open %s\n", path_.c_str());
    }
    if (tracer.dropped() != 0) {
      std::fprintf(stderr,
                   "FAILED: %llu trace events dropped (shard overflow)\n",
                   static_cast<unsigned long long>(tracer.dropped()));
      tracer.stop();
      std::exit(1);
    }
    tracer.stop();
  }

 private:
  std::string path_;
  bool finished_ = false;
};

/// Minimal ordered JSON document builder for the machine-readable bench
/// results (`BENCH_<name>.json`). Insertion order is preserved and doubles
/// print with enough digits to round-trip, so the same run produces
/// byte-identical files — which is what lets tools/bench_diff.py gate on
/// them in CI without flakiness.
class Json {
 public:
  static Json object() { return Json{Kind::kObject}; }
  static Json array() { return Json{Kind::kArray}; }
  static Json number(std::uint64_t v) {
    Json j{Kind::kUint};
    j.uint_ = v;
    return j;
  }
  static Json number(double v) {
    Json j{Kind::kDouble};
    j.double_ = v;
    return j;
  }
  static Json string(std::string v) {
    Json j{Kind::kString};
    j.string_ = std::move(v);
    return j;
  }
  static Json boolean(bool v) {
    Json j{Kind::kBool};
    j.bool_ = v;
    return j;
  }

  Json& set(const std::string& key, Json value) {
    members_.emplace_back(key, std::move(value));
    return *this;
  }
  Json& push(Json value) {
    items_.push_back(std::move(value));
    return *this;
  }

  void dump(std::ostream& os) const {
    switch (kind_) {
      case Kind::kObject: {
        os << '{';
        bool first = true;
        for (const auto& [key, value] : members_) {
          if (!first) os << ',';
          first = false;
          write_string(os, key);
          os << ':';
          value.dump(os);
        }
        os << '}';
        break;
      }
      case Kind::kArray: {
        os << '[';
        bool first = true;
        for (const Json& value : items_) {
          if (!first) os << ',';
          first = false;
          value.dump(os);
        }
        os << ']';
        break;
      }
      case Kind::kUint:
        os << uint_;
        break;
      case Kind::kDouble: {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.17g", double_);
        os << buf;
        break;
      }
      case Kind::kString:
        write_string(os, string_);
        break;
      case Kind::kBool:
        os << (bool_ ? "true" : "false");
        break;
    }
  }

 private:
  enum class Kind { kObject, kArray, kUint, kDouble, kString, kBool };
  explicit Json(Kind kind) : kind_{kind} {}

  static void write_string(std::ostream& os, const std::string& s) {
    os << '"';
    for (const char c : s) {
      switch (c) {
        case '"':
          os << "\\\"";
          break;
        case '\\':
          os << "\\\\";
          break;
        case '\n':
          os << "\\n";
          break;
        case '\t':
          os << "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(c));
            os << buf;
          } else {
            os << c;
          }
      }
    }
    os << '"';
  }

  Kind kind_;
  std::vector<std::pair<std::string, Json>> members_;
  std::vector<Json> items_;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  bool bool_ = false;
};

/// Writes `BENCH_<name>.json` in the working directory, wrapping `body`
/// in the shared `tdo.bench.v1` envelope. Silent on success: the benches'
/// stdout is part of the determinism contract, so machine-readable output
/// must not perturb it.
inline void write_bench_json(const std::string& name, Json body) {
  Json root = Json::object();
  root.set("schema", Json::string("tdo.bench.v1"));
  root.set("bench", Json::string(name));
  root.set("results", std::move(body));
  const std::string path = "BENCH_" + name + ".json";
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "bench json: cannot open %s\n", path.c_str());
    return;
  }
  root.dump(out);
  out << '\n';
}

/// Zipf(s) sampler over {0, ..., count-1} via inverse-CDF on a precomputed
/// table (rank 0 most popular).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t count, double s, std::uint64_t seed) : rng_{seed} {
    cdf_.reserve(count);
    double total = 0.0;
    for (std::size_t i = 1; i <= count; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i), s);
      cdf_.push_back(total);
    }
    for (double& v : cdf_) v /= total;
  }
  [[nodiscard]] std::size_t next() {
    const double u = rng_.uniform(0.0, 1.0);
    for (std::size_t i = 0; i < cdf_.size(); ++i) {
      if (u <= cdf_[i]) return i;
    }
    return cdf_.size() - 1;
  }

 private:
  support::Rng rng_;
  std::vector<double> cdf_;
};

/// Deterministic random float matrix in [-range, range].
[[nodiscard]] inline std::vector<float> random_matrix(std::size_t count,
                                                      double range,
                                                      std::uint64_t seed) {
  support::Rng rng{seed};
  std::vector<float> out(count);
  for (float& v : out) {
    v = rng.uniform_f(static_cast<float>(-range), static_cast<float>(range));
  }
  return out;
}

}  // namespace tdo::benchutil
