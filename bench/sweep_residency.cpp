// Sweep: weight-residency cache capacity x accelerators on a serving loop.
//
// Models the ROADMAP's repeated-inference scenario: W distinct weight sets
// (stationary B matrices resident on device), a stream of requests whose
// weight-set choice follows a Zipf distribution (a few hot models take most
// of the traffic, a long tail takes the rest), each request a GEMM against
// its weight set. Without the residency cache every request reprograms the
// crossbar; with it, hot weight sets stay programmed and requests route to
// the accelerator that holds them.
//
// For each {capacity x accelerators x cache on/off} configuration the sweep
// prints the hit rate, crossbar weight writes (performed vs saved), runtime,
// EDP, and the PCM lifetime extension factor Eq. (1) attributes to the
// avoided writes.
//
// `--smoke` runs a single tiny configuration (CI bench-rot guard).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cim/accelerator.hpp"
#include "pcm/endurance.hpp"
#include "runtime/cim_blas.hpp"
#include "sim/system.hpp"
#include "topo/topology.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

namespace {

using tdo::benchutil::ZipfSampler;
using tdo::benchutil::random_matrix;
using tdo::support::Duration;
using tdo::support::Energy;

struct LoopConfig {
  std::size_t accelerators = 1;
  std::uint32_t capacity_rows = 0;  // 0 = full crossbar
  bool cache = true;
  std::size_t weight_sets = 8;
  std::size_t requests = 64;
  std::uint64_t m = 32, n = 64, k = 64;
  double zipf_s = 1.0;
  /// Two-tier fabric (--topology near:N,far:M[xL]); nullopt = flat fleet.
  std::optional<tdo::topo::TopologySpec> topology;
};

struct LoopResult {
  double hit_rate = 0.0;
  std::uint64_t weight_writes = 0;
  std::uint64_t weight_writes_saved = 0;
  std::uint64_t evictions = 0;
  Duration runtime;
  double edp = 0.0;
  double lifetime_x = 1.0;
  bool correct = true;
  std::uint64_t near_jobs = 0;  ///< per-tier occupancy (--dump columns)
  std::uint64_t far_jobs = 0;
  std::uint64_t link_contended = 0;
  std::uint64_t withheld = 0;
};

[[nodiscard]] tdo::support::StatusOr<LoopResult> run_loop(const LoopConfig& cfg) {
  tdo::sim::System system;
  tdo::cim::AcceleratorParams accel_params;
  std::unique_ptr<tdo::topo::Link> far_link;
  tdo::topo::Topology topology;
  const std::size_t count =
      cfg.topology.has_value() ? cfg.topology->device_count()
                               : cfg.accelerators;
  if (cfg.topology.has_value() && cfg.topology->far > 0) {
    tdo::topo::LinkParams lp;
    lp.latency_multiplier = cfg.topology->far_multiplier;
    lp.name = "farlink";
    far_link = std::make_unique<tdo::topo::Link>(lp);
  }
  std::vector<std::unique_ptr<tdo::cim::Accelerator>> accels;
  for (std::size_t i = 0; i < count; ++i) {
    const bool is_far = cfg.topology.has_value() && i >= cfg.topology->near;
    auto params = tdo::cim::instance_params(accel_params, i);
    if (is_far) {
      // The pooling hop derates every far DMA burst by the link multiplier.
      params.dma.bandwidth_bytes_per_sec /= cfg.topology->far_multiplier;
      params.dma.burst_setup = Duration::from_ps(
          params.dma.burst_setup.picoseconds() * cfg.topology->far_multiplier);
    }
    accels.push_back(std::make_unique<tdo::cim::Accelerator>(params, system));
    if (is_far) {
      accels.back()->set_response_link(far_link.get());
      topology.add_device(tdo::topo::Topology::kFarTier, far_link.get());
    } else {
      topology.add_device(tdo::topo::Topology::kNearTier);
    }
  }
  tdo::rt::RuntimeConfig rt_config;
  rt_config.stream.depth = 2;
  rt_config.residency.enabled = cfg.cache;
  rt_config.residency.capacity_rows = cfg.capacity_rows;
  tdo::rt::CimRuntime runtime{rt_config, system, *accels.front()};
  for (std::size_t i = 1; i < count; ++i) {
    runtime.add_accelerator(*accels[i]);
  }
  if (cfg.topology.has_value()) runtime.set_topology(&topology);
  TDO_RETURN_IF_ERROR(runtime.init(0));

  const std::uint64_t elems_b = cfg.k * cfg.n;
  const std::uint64_t elems_a = cfg.m * cfg.k;
  const std::uint64_t elems_c = cfg.m * cfg.n;
  auto upload = [&](const std::vector<float>& data)
      -> tdo::support::StatusOr<tdo::sim::VirtAddr> {
    auto va = runtime.malloc_device(data.size() * 4);
    if (!va.is_ok()) return va.status();
    auto pa = system.mmu().translate(*va);
    if (!pa.is_ok()) return pa.status();
    system.memory().write(
        *pa, std::span(reinterpret_cast<const std::uint8_t*>(data.data()),
                       data.size() * 4));
    return *va;
  };

  // W weight sets, plus a small rotating pool of request inputs/outputs so
  // consecutive requests do not collide on C (the serving analogue of
  // per-request activation buffers) and the stream can pipeline.
  std::vector<tdo::sim::VirtAddr> weights(cfg.weight_sets);
  std::vector<std::vector<float>> weight_data(cfg.weight_sets);
  for (std::size_t w = 0; w < cfg.weight_sets; ++w) {
    weight_data[w] = random_matrix(elems_b, 1.0, 100 + w);
    auto va = upload(weight_data[w]);
    if (!va.is_ok()) return va.status();
    weights[w] = *va;
  }
  constexpr std::size_t kPool = 4;
  const std::vector<float> input = random_matrix(elems_a, 1.0, 7);
  std::vector<tdo::sim::VirtAddr> va_a(kPool), va_c(kPool);
  for (std::size_t p = 0; p < kPool; ++p) {
    auto a = upload(input);
    if (!a.is_ok()) return a.status();
    va_a[p] = *a;
    auto c = upload(std::vector<float>(elems_c, 0.0f));
    if (!c.is_ok()) return c.status();
    va_c[p] = *c;
  }

  ZipfSampler zipf{cfg.weight_sets, cfg.zipf_s, 42};
  std::size_t last_w = 0;
  std::size_t last_pool = 0;

  const auto before = system.snapshot();
  const Duration t0 = system.global_time();
  for (std::size_t r = 0; r < cfg.requests; ++r) {
    const std::size_t w = zipf.next();
    const std::size_t pool = r % kPool;
    TDO_RETURN_IF_ERROR(runtime.sgemm_async(
        cfg.m, cfg.n, cfg.k, 1.0f, va_a[pool], cfg.k, weights[w], cfg.n, 0.0f,
        va_c[pool], cfg.n, tdo::cim::StationaryOperand::kB,
        /*cacheable=*/true));
    last_w = w;
    last_pool = pool;
  }
  TDO_RETURN_IF_ERROR(runtime.synchronize());
  const Duration t1 = system.global_time();
  const auto delta = system.snapshot().delta_since(before);

  LoopResult result;
  result.runtime = t1 - t0;
  auto report = accels.front()->report();
  for (std::size_t i = 1; i < accels.size(); ++i) {
    const auto rep = accels[i]->report();
    report.weight_writes8 += rep.weight_writes8;
    report.weight_writes_saved8 += rep.weight_writes_saved8;
  }
  for (std::size_t i = 0; i < accels.size(); ++i) {
    if (topology.tier(i) == tdo::topo::Topology::kFarTier) {
      result.far_jobs += accels[i]->jobs_completed();
    } else {
      result.near_jobs += accels[i]->jobs_completed();
    }
  }
  if (far_link) {
    result.link_contended = far_link->contended_ticks();
    result.withheld = far_link->responses();
  }
  result.weight_writes = report.weight_writes8;
  result.weight_writes_saved = report.weight_writes_saved8;
  const auto res = runtime.residency().report();
  result.evictions = res.evictions;
  const std::uint64_t lookups = res.hits + res.misses;
  result.hit_rate = lookups == 0
                        ? 0.0
                        : static_cast<double>(res.hits) /
                              static_cast<double>(lookups);
  Energy energy;
  for (const auto& [name, pj] : delta.energies_pj) {
    (void)name;
    energy += Energy::from_pj(pj);
  }
  result.edp = tdo::support::energy_delay_product(energy, result.runtime);
  result.lifetime_x = tdo::pcm::lifetime_extension(result.weight_writes,
                                                   result.weight_writes_saved);

  // Validate the last request against a host reference (quantization-level
  // tolerance).
  std::vector<float> got(elems_c);
  auto pa_c = system.mmu().translate(va_c[last_pool]);
  if (!pa_c.is_ok()) return pa_c.status();
  system.memory().read(
      *pa_c, std::span(reinterpret_cast<std::uint8_t*>(got.data()),
                       got.size() * 4));
  const std::vector<float>& b = weight_data[last_w];
  for (std::uint64_t i = 0; i < cfg.m && result.correct; ++i) {
    for (std::uint64_t j = 0; j < cfg.n; ++j) {
      double acc = 0.0;
      for (std::uint64_t kk = 0; kk < cfg.k; ++kk) {
        acc += static_cast<double>(input[i * cfg.k + kk]) *
               static_cast<double>(b[kk * cfg.n + j]);
      }
      if (std::fabs(acc - static_cast<double>(got[i * cfg.n + j])) > 0.5) {
        result.correct = false;
        break;
      }
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  // Capacity-planning knobs (ROADMAP follow-up): the Zipf skew, weight-set
  // universe, and request count are CLI flags so the sweep doubles as a
  // what-if tool for sizing per-accelerator row capacity under a workload's
  // real popularity curve.
  bool smoke = false;
  bool dump = false;
  double alpha = 1.0;
  std::size_t weight_sets = 8;
  std::size_t requests = 64;
  std::string trace_path;
  std::optional<tdo::topo::TopologySpec> topology;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--dump") {
      dump = true;
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--alpha" && i + 1 < argc) {
      alpha = std::atof(argv[++i]);
    } else if (arg == "--weight-sets" && i + 1 < argc) {
      weight_sets = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--requests" && i + 1 < argc) {
      requests = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--topology" && i + 1 < argc) {
      const auto spec = tdo::topo::parse_topology_spec(argv[++i]);
      if (!spec.has_value()) {
        std::fprintf(stderr, "bad --topology (want near:N,far:M[xL]): %s\n",
                     argv[i]);
        return 1;
      }
      topology = *spec;
    } else {
      std::printf(
          "usage: bench_sweep_residency [--smoke] [--dump] [--alpha Z] "
          "[--weight-sets W]\n"
          "       [--requests R] [--topology near:N,far:M[xL]] "
          "[--trace out.json]\n");
      return arg == "--help" ? 0 : 1;
    }
  }
  tdo::benchutil::TraceSession trace{trace_path};
  using tdo::support::TextTable;

  std::vector<std::size_t> accel_counts = smoke ? std::vector<std::size_t>{2}
                                                : std::vector<std::size_t>{1, 2, 4};
  // A topology spec fixes the fleet shape, so the accelerator-count
  // dimension collapses to that one configuration.
  if (topology.has_value()) accel_counts = {topology->device_count()};
  // Capacities in crossbar rows: 64 holds one 64-row tile per accelerator,
  // 128 two, 256 (the full crossbar) four.
  std::vector<std::uint32_t> capacities =
      smoke ? std::vector<std::uint32_t>{128}
            : std::vector<std::uint32_t>{64, 128, 0};

  char title[160];
  std::snprintf(title, sizeof title,
                "Residency sweep - serving loop, Zipf(%.2f) requests over "
                "%zu weight sets",
                alpha, weight_sets);
  TextTable table(title);
  std::vector<std::string> header{"Accels", "Cap rows", "Cache", "Hit rate",
                                  "Writes8", "Saved8", "Evictions", "Runtime",
                                  "EDP", "Lifetime x", "Correct"};
  if (dump) {
    // Per-tier queue/occupancy split (all jobs land near on a flat fleet).
    header.insert(header.end(),
                  {"Near jobs", "Far jobs", "Link cont.", "Withheld"});
  }
  table.set_header(header);

  bool all_correct = true;
  tdo::benchutil::Json points = tdo::benchutil::Json::array();
  for (const std::size_t accelerators : accel_counts) {
    for (const std::uint32_t capacity : capacities) {
      for (const bool cache : {false, true}) {
        LoopConfig cfg;
        cfg.accelerators = accelerators;
        cfg.capacity_rows = capacity;
        cfg.cache = cache;
        cfg.zipf_s = alpha;
        cfg.weight_sets = weight_sets;
        cfg.requests = smoke ? 12 : requests;
        cfg.topology = topology;
        const auto result = run_loop(cfg);
        if (!result.is_ok()) {
          std::cerr << result.status() << "\n";
          return 1;
        }
        char hit[32], edp[32], life[32];
        std::snprintf(hit, sizeof hit, "%.1f%%", result->hit_rate * 100.0);
        std::snprintf(edp, sizeof edp, "%.3e", result->edp);
        std::snprintf(life, sizeof life, "%.2f", result->lifetime_x);
        std::vector<std::string> row{std::to_string(accelerators),
                                     capacity == 0 ? "full"
                                                   : std::to_string(capacity),
                                     cache ? "on" : "off", hit,
                                     std::to_string(result->weight_writes),
                                     std::to_string(result->weight_writes_saved),
                                     std::to_string(result->evictions),
                                     result->runtime.to_string(), edp, life,
                                     result->correct ? "yes" : "NO"};
        if (dump) {
          row.insert(row.end(), {std::to_string(result->near_jobs),
                                 std::to_string(result->far_jobs),
                                 std::to_string(result->link_contended),
                                 std::to_string(result->withheld)});
        }
        table.add_row(row);
        all_correct = all_correct && result->correct;
        {
          using tdo::benchutil::Json;
          Json p = Json::object();
          p.set("accelerators",
                Json::number(static_cast<std::uint64_t>(accelerators)));
          p.set("capacity_rows",
                Json::number(static_cast<std::uint64_t>(capacity)));
          p.set("cache", Json::boolean(cache));
          p.set("hit_rate", Json::number(result->hit_rate));
          p.set("weight_writes8", Json::number(result->weight_writes));
          p.set("weight_writes_saved8",
                Json::number(result->weight_writes_saved));
          p.set("evictions", Json::number(result->evictions));
          p.set("runtime_s", Json::number(result->runtime.seconds()));
          p.set("edp", Json::number(result->edp));
          p.set("lifetime_x", Json::number(result->lifetime_x));
          p.set("correct", Json::boolean(result->correct));
          points.push(std::move(p));
        }
      }
    }
  }
  table.print(std::cout);

  {
    tdo::benchutil::Json results = tdo::benchutil::Json::object();
    results.set("points", std::move(points));
    results.set("ok", tdo::benchutil::Json::boolean(all_correct));
    tdo::benchutil::write_bench_json("sweep_residency", std::move(results));
  }

  std::cout << "\nHot weight sets stay programmed: the cache turns the "
               "Zipf head's reprogramming cost into hits, and affinity "
               "routing keeps each hot set pinned to one accelerator's "
               "crossbar rows.\n";
  if (!all_correct) {
    std::cerr << "FAILED: a configuration produced incorrect results\n";
    return 1;
  }
  return 0;
}
